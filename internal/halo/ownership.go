package halo

import (
	"fmt"

	"op2ca/internal/core"
)

// DeriveOwnership assigns an owner rank to every element of every set of the
// program. The primary set's owners are given; every other set inherits
// ownership through maps, transitively (OP2 partitions secondary sets
// "along" their maps): an element of a map's From set takes the owner of its
// first map target, and an element of a To set with no other path takes the
// owner of the first element referencing it. Sets unreachable from the
// primary set through any chain of maps cause an error.
func DeriveOwnership(prog *core.Program, primary *core.Set, primaryOwners []int32) ([][]int32, error) {
	if len(primaryOwners) != primary.Size {
		return nil, fmt.Errorf("halo: %d owners for primary set %s of size %d",
			len(primaryOwners), primary.Name, primary.Size)
	}
	owners := make([][]int32, len(prog.Sets))
	owners[primary.ID] = primaryOwners

	for changed := true; changed; {
		changed = false
		// Forward inheritance: From element -> owner of first target.
		for _, m := range prog.Maps {
			if owners[m.From.ID] != nil || owners[m.To.ID] == nil {
				continue
			}
			to := owners[m.To.ID]
			own := make([]int32, m.From.Size)
			for e := 0; e < m.From.Size; e++ {
				own[e] = to[m.Values[e*m.Arity]]
			}
			owners[m.From.ID] = own
			changed = true
		}
		// Reverse inheritance: To element -> owner of the first (lowest
		// index) From element referencing it.
		for _, m := range prog.Maps {
			if owners[m.To.ID] != nil || owners[m.From.ID] == nil {
				continue
			}
			from := owners[m.From.ID]
			own := make([]int32, m.To.Size)
			claimed := make([]bool, m.To.Size)
			for e := 0; e < m.From.Size; e++ {
				for _, t := range m.Targets(e) {
					if !claimed[t] {
						claimed[t] = true
						own[t] = from[e]
					}
				}
			}
			for t, ok := range claimed {
				if !ok {
					return nil, fmt.Errorf("halo: set %s element %d unreferenced by map %s; cannot derive its owner",
						m.To.Name, t, m.Name)
				}
			}
			owners[m.To.ID] = own
			changed = true
		}
	}
	for _, s := range prog.Sets {
		if owners[s.ID] == nil {
			if s.Size == 0 {
				owners[s.ID] = []int32{}
				continue
			}
			return nil, fmt.Errorf("halo: set %s has no map path to primary set %s; cannot derive ownership",
				s.Name, primary.Name)
		}
	}
	return owners, nil
}

// reverseMap is the CSR transpose of a core.Map: for every target element,
// the source elements that reference it.
type reverseMap struct {
	offsets []int32 // len To.Size+1
	sources []int32 // len From.Size*Arity
}

func buildReverse(m *core.Map) reverseMap {
	rm := reverseMap{
		offsets: make([]int32, m.To.Size+1),
		sources: make([]int32, len(m.Values)),
	}
	for _, t := range m.Values {
		rm.offsets[t+1]++
	}
	for i := 1; i <= m.To.Size; i++ {
		rm.offsets[i] += rm.offsets[i-1]
	}
	cursor := make([]int32, m.To.Size)
	for e := 0; e < m.From.Size; e++ {
		for a := 0; a < m.Arity; a++ {
			t := m.Values[e*m.Arity+a]
			rm.sources[rm.offsets[t]+cursor[t]] = int32(e)
			cursor[t]++
		}
	}
	return rm
}

// sourcesOf returns the source elements referencing target t.
func (rm reverseMap) sourcesOf(t int32) []int32 {
	return rm.sources[rm.offsets[t]:rm.offsets[t+1]]
}
