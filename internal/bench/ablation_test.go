package bench

import (
	"fmt"
	"testing"
)

// fmtSscan parses one float from a table cell.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestAblationDepthShape(t *testing.T) {
	tab := AblationDepth(tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Deeper-than-needed halos must be slower (monotone CA time).
	var prev float64
	for i, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[1], &v); err != nil {
			t.Fatalf("bad time cell %q", row[1])
		}
		if i > 0 && v <= prev {
			t.Errorf("CA time should grow with excess halo depth: %v", tab.Rows)
		}
		prev = v
	}
}

func TestAblationGroupingWins(t *testing.T) {
	tab := AblationGrouping(tiny())
	for _, row := range tab.Rows {
		var perDat, grouped float64
		if _, err := sscan(row[2], &perDat); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &grouped); err != nil {
			t.Fatal(err)
		}
		if grouped >= perDat {
			t.Errorf("grouped messages should beat per-dat messages: %v", row)
		}
	}
}

func TestAblationPartitionerComplete(t *testing.T) {
	tab := AblationPartitioner(tiny())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// The random partition must have the worst cut.
	var kwayCut, randCut float64
	for _, row := range tab.Rows {
		var cut float64
		if _, err := sscan(row[1], &cut); err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "kway":
			kwayCut = cut
		case "random":
			randCut = cut
		}
	}
	if randCut <= kwayCut {
		t.Errorf("random cut %g should exceed kway cut %g", randCut, kwayCut)
	}
}

func TestAblationGPULaunch(t *testing.T) {
	tab := AblationGPULaunch(tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// CA must win at every overhead setting on the GPU model.
	for _, row := range tab.Rows {
		var g float64
		if _, err := sscan(row[3], &g); err != nil {
			t.Fatal(err)
		}
		if g <= 0 {
			t.Errorf("CA should win on the GPU model at overhead %s: gain %g%%", row[0], g)
		}
	}
}

// sscan parses one float from a table cell.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}
