package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary mesh format: a fixed magic/version header followed by the FV3D
// fields in declaration order, each array length-prefixed. Everything is
// little-endian; int32 for counts and connectivity, float64 for geometry.
const (
	meshMagic   = "OP2CAMSH"
	meshVersion = 1
)

// Write serialises the mesh.
func (m *FV3D) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(meshMagic); err != nil {
		return err
	}
	header := []int32{
		meshVersion,
		int32(m.NI), int32(m.NJ), int32(m.NK),
		int32(m.NNodes), int32(m.NEdges), int32(m.NBedges),
		int32(m.NPedges), int32(m.NCbnd),
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	for _, arr := range [][]int32{m.EdgeNodes, m.BedgeNodes, m.BedgeGroups, m.PedgeNodes, m.CbndNodes} {
		if err := writeI32s(bw, arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]float64{m.Coords, m.Volumes, m.EdgeWeights, m.BedgeWeights} {
		if err := writeF64s(bw, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFV3D deserialises a mesh written by Write, validating structure.
func ReadFV3D(r io.Reader) (*FV3D, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(meshMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mesh: reading magic: %w", err)
	}
	if string(magic) != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %q", magic)
	}
	header := make([]int32, 9)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("mesh: reading header: %w", err)
	}
	if header[0] != meshVersion {
		return nil, fmt.Errorf("mesh: unsupported version %d", header[0])
	}
	m := &FV3D{
		NI: int(header[1]), NJ: int(header[2]), NK: int(header[3]),
		NNodes: int(header[4]), NEdges: int(header[5]), NBedges: int(header[6]),
		NPedges: int(header[7]), NCbnd: int(header[8]),
	}
	if m.NNodes < 0 || m.NEdges < 0 || m.NBedges < 0 || m.NPedges < 0 || m.NCbnd < 0 {
		return nil, fmt.Errorf("mesh: negative counts in header")
	}
	var err error
	read32 := func(want int) []int32 {
		if err != nil {
			return nil
		}
		var arr []int32
		arr, err = readI32s(br, want)
		return arr
	}
	read64 := func(want int) []float64 {
		if err != nil {
			return nil
		}
		var arr []float64
		arr, err = readF64s(br, want)
		return arr
	}
	m.EdgeNodes = read32(2 * m.NEdges)
	m.BedgeNodes = read32(m.NBedges)
	m.BedgeGroups = read32(m.NBedges)
	m.PedgeNodes = read32(2 * m.NPedges)
	m.CbndNodes = read32(m.NCbnd)
	m.Coords = read64(3 * m.NNodes)
	m.Volumes = read64(m.NNodes)
	m.EdgeWeights = read64(3 * m.NEdges)
	m.BedgeWeights = read64(3 * m.NBedges)
	if err != nil {
		return nil, err
	}
	// Connectivity validation: everything must index real nodes.
	for _, arr := range [][]int32{m.EdgeNodes, m.BedgeNodes, m.PedgeNodes, m.CbndNodes} {
		for i, v := range arr {
			if v < 0 || int(v) >= m.NNodes {
				return nil, fmt.Errorf("mesh: connectivity entry %d = %d out of range [0,%d)", i, v, m.NNodes)
			}
		}
	}
	return m, nil
}

// SaveFile writes the mesh to path.
func (m *FV3D) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a mesh from path.
func LoadFile(path string) (*FV3D, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFV3D(f)
}

func writeI32s(w io.Writer, arr []int32) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func writeF64s(w io.Writer, arr []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func readI32s(r io.Reader, want int) ([]int32, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("mesh: reading array length: %w", err)
	}
	if int(n) != want {
		return nil, fmt.Errorf("mesh: array length %d, header implies %d", n, want)
	}
	arr := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, fmt.Errorf("mesh: reading int32 array: %w", err)
	}
	return arr, nil
}

func readF64s(r io.Reader, want int) ([]float64, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("mesh: reading array length: %w", err)
	}
	if int(n) != want {
		return nil, fmt.Errorf("mesh: array length %d, header implies %d", n, want)
	}
	arr := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, fmt.Errorf("mesh: reading float64 array: %w", err)
	}
	return arr, nil
}
