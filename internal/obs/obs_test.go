package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if e := tr.NewEpoch("x"); e != 0 { // must not panic
		t.Fatalf("nil tracer NewEpoch = %d", e)
	}
	tr.Emit(0, TrackExec, Compute, "k", 0, 1, 0)
	tr.EmitEdge(Edge{Kind: EdgeMsg, From: 0, To: 1, Begin: 0, End: 1})
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded spans")
	}
	if tr.NumEdges() != 0 || tr.Edges() != nil {
		t.Fatal("nil tracer recorded edges")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events", len(doc.TraceEvents))
	}
	mw := NewMetricsWriter(&buf)
	tr.WriteSpanMetrics(mw) // must not panic
}

func TestKindNames(t *testing.T) {
	want := []string{"compute", "pack", "send", "wait", "unpack", "redundant", "reduce", "stage", "retry", "giveup", "tune", "checkpoint", "restore", "restart", "watchdog", "idle"}
	kinds := Kinds()
	if len(kinds) != len(want) {
		t.Fatalf("Kinds() = %d entries, want %d", len(kinds), len(want))
	}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

// TestKindTablesExhaustive pins both name tables to their enums: a kind
// added without a name would stringify as "" (the array's zero value), and
// duplicate names would break metric and report labelling. The fixed-size
// name arrays already make a *missing* entry a compile-time length check
// impossible (arrays are padded), so this is the runtime guard.
func TestKindTablesExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		n := k.String()
		if n == "" || n == "unknown" {
			t.Errorf("span kind %d has no name", k)
		}
		if seen[n] {
			t.Errorf("span kind name %q duplicated", n)
		}
		seen[n] = true
	}
	seenE := map[string]bool{}
	for _, k := range EdgeKinds() {
		n := k.String()
		if n == "" || n == "unknown" {
			t.Errorf("edge kind %d has no name", k)
		}
		if seenE[n] {
			t.Errorf("edge kind name %q duplicated", n)
		}
		seenE[n] = true
	}
	if want := []string{"msg", "retry", "reduce"}; len(EdgeKinds()) != len(want) {
		t.Fatalf("EdgeKinds() = %d entries, want %d", len(EdgeKinds()), len(want))
	}
	if EdgeKind(200).String() != "unknown" {
		t.Error("out-of-range edge kind should stringify as unknown")
	}
}

func TestEdgesCanonicalOrderAndEpochs(t *testing.T) {
	tr := New()
	if e := tr.NewEpoch("a"); e != 0 {
		t.Fatalf("first epoch = %d", e)
	}
	tr.EmitEdge(Edge{Kind: EdgeMsg, From: 1, To: 0, Begin: 2, End: 3})
	tr.EmitEdge(Edge{Kind: EdgeMsg, From: 0, To: 1, Begin: 0, End: 1})
	tr.EmitEdge(Edge{Kind: EdgeReduce, From: 2, To: 0, Begin: 1, End: 3})
	if e := tr.NewEpoch("b"); e != 1 {
		t.Fatalf("second epoch = %d", e)
	}
	tr.EmitEdge(Edge{Kind: EdgeRetry, From: 0, To: 0, Begin: 5, End: 4}) // clamped
	edges := tr.Edges()
	if len(edges) != 4 || tr.NumEdges() != 4 {
		t.Fatalf("got %d edges", len(edges))
	}
	order := []struct {
		epoch int32
		from  int32
		to    int32
	}{{0, 2, 0}, {0, 1, 0}, {0, 0, 1}, {1, 0, 0}}
	for i, w := range order {
		e := edges[i]
		if e.Epoch != w.epoch || e.From != w.from || e.To != w.to {
			t.Fatalf("edge %d = %+v, want epoch %d from %d to %d", i, e, w.epoch, w.from, w.to)
		}
	}
	if edges[3].Dur() != 0 {
		t.Fatalf("negative-duration edge not clamped: %+v", edges[3])
	}
}

func TestSpansCanonicalOrder(t *testing.T) {
	tr := New()
	tr.NewEpoch("a")
	tr.Emit(1, TrackExec, Wait, "w", 2, 3, 0)
	tr.Emit(0, TrackExec, Compute, "c", 1, 2, 0)
	tr.Emit(0, TrackExec, Pack, "p", 0, 1, 8)
	tr.NewEpoch("b")
	tr.Emit(0, TrackExec, Compute, "c2", 0, 1, 0)
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	order := []struct {
		epoch int32
		rank  int32
		name  string
	}{{0, 0, "p"}, {0, 0, "c"}, {0, 1, "w"}, {1, 0, "c2"}}
	for i, w := range order {
		s := spans[i]
		if s.Epoch != w.epoch || s.Rank != w.rank || s.Name != w.name {
			t.Fatalf("span %d = %+v, want epoch %d rank %d name %s", i, s, w.epoch, w.rank, w.name)
		}
	}
	if tr.EpochLabel(0) != "a" || tr.EpochLabel(1) != "b" || tr.EpochLabel(9) != "run" {
		t.Fatal("epoch labels wrong")
	}
}

func TestEmitClampsNegativeDuration(t *testing.T) {
	tr := New()
	tr.Emit(0, TrackExec, Wait, "w", 5, 4, 0)
	if s := tr.Spans()[0]; s.Dur() != 0 {
		t.Fatalf("negative-duration span not clamped: %+v", s)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	tr.NewEpoch("cluster-ca x2")
	tr.Emit(0, TrackExec, Compute, "edge_flux", 0, 1e-5, 0)
	tr.Emit(1, TrackStage, Stage, "synth d2h", 1e-5, 2e-5, 4096)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	var compute, stage, meta int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
		case e.Ph == "X" && e.Cat == "compute":
			compute++
			if e.Tid != 0 || e.Ts != 0 || e.Dur != 10 {
				t.Fatalf("compute event mapped wrong: %+v", e)
			}
		case e.Ph == "X" && e.Cat == "stage":
			stage++
			if e.Tid != 3 { // rank 1, staging track
				t.Fatalf("stage event tid = %d, want 3", e.Tid)
			}
		}
	}
	if compute != 1 || stage != 1 || meta == 0 {
		t.Fatalf("events: compute %d stage %d meta %d", compute, stage, meta)
	}
	if !strings.Contains(buf.String(), "cluster-ca x2") {
		t.Fatal("epoch label missing from process metadata")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		tr := New()
		tr.NewEpoch("e")
		for r := int32(0); r < 3; r++ {
			tr.Emit(r, TrackExec, Compute, "k", float64(r)*1e-6, float64(r+1)*1e-6, 0)
			tr.Emit(r, TrackExec, Send, "k", 0, 1e-6, 128)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical tracers exported different bytes")
	}
}

func TestMetricsWriter(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMetricsWriter(&buf)
	mw.Declare("m_total", "counter", "help text")
	mw.Declare("m_total", "counter", "help text") // deduped
	mw.Sample("m_total", []Label{{"loop", "a b"}}, 3)
	mw.Sample("m_total", nil, 0.5)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# HELP m_total") != 1 {
		t.Fatalf("HELP not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `m_total{loop="a b"} 3`+"\n") {
		t.Fatalf("labelled sample missing:\n%s", out)
	}
	if !strings.Contains(out, "m_total 0.5\n") {
		t.Fatalf("bare sample missing:\n%s", out)
	}
}

func TestSpanMetricsHistogram(t *testing.T) {
	tr := New()
	tr.Emit(0, TrackExec, Pack, "x", 0, 5e-6, 100) // lands in le=1e-05 and up
	tr.Emit(0, TrackExec, Pack, "y", 0, 5e-4, 50)  // lands in le=0.001 and up
	var buf bytes.Buffer
	mw := NewMetricsWriter(&buf)
	tr.WriteSpanMetrics(mw, Label{"run", "r1"})
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`op2ca_span_seconds_bucket{kind="pack",le="1e-06",run="r1"} 0`,
		`op2ca_span_seconds_bucket{kind="pack",le="1e-05",run="r1"} 1`,
		`op2ca_span_seconds_bucket{kind="pack",le="0.001",run="r1"} 2`,
		`op2ca_span_seconds_bucket{kind="pack",le="+Inf",run="r1"} 2`,
		`op2ca_span_seconds_count{kind="pack",run="r1"} 2`,
		`op2ca_span_bytes_total{kind="pack",run="r1"} 150`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `kind="send"`) {
		t.Fatal("kinds with no spans should be omitted")
	}
}
