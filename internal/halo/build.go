package halo

import (
	"fmt"
	"sort"

	"op2ca/internal/core"
)

// selem addresses one element of one set during mixed-set graph traversals.
type selem struct {
	set  int32
	elem int32
}

// Build constructs the per-rank local layouts of prog for the given
// per-set ownership (from DeriveOwnership), with halo shells of the given
// depth and core prefixes supporting chains of up to maxChainLen loops.
func Build(prog *core.Program, owners [][]int32, nparts, depth, maxChainLen int) []*Layout {
	if depth < 1 {
		panic(fmt.Sprintf("halo: depth %d < 1", depth))
	}
	if maxChainLen < 1 {
		panic(fmt.Sprintf("halo: maxChainLen %d < 1", maxChainLen))
	}
	if len(owners) != len(prog.Sets) {
		panic(fmt.Sprintf("halo: ownership for %d sets, program has %d", len(owners), len(prog.Sets)))
	}
	nsets := len(prog.Sets)

	// Reverse maps and per-set map indices.
	rev := make([]reverseMap, len(prog.Maps))
	mapsFrom := make([][]*core.Map, nsets)
	mapsTo := make([][]*core.Map, nsets)
	for i, m := range prog.Maps {
		rev[i] = buildReverse(m)
		mapsFrom[m.From.ID] = append(mapsFrom[m.From.ID], m)
		mapsTo[m.To.ID] = append(mapsTo[m.To.ID], m)
	}

	// Owned-element buckets per set and rank.
	ownedBy := make([][][]int32, nsets)
	for s := range ownedBy {
		ownedBy[s] = make([][]int32, nparts)
		for e, r := range owners[s] {
			ownedBy[s][r] = append(ownedBy[s][r], int32(e))
		}
	}

	// Boundary marks: an element is boundary (for its owner) when a map
	// entry connects it to an element with a different owner.
	boundary := make([][]bool, nsets)
	for s, set := range prog.Sets {
		boundary[s] = make([]bool, set.Size)
	}
	for _, m := range prog.Maps {
		fo, to := owners[m.From.ID], owners[m.To.ID]
		for e := 0; e < m.From.Size; e++ {
			for _, t := range m.Targets(e) {
				if fo[e] != to[t] {
					boundary[m.From.ID][e] = true
					boundary[m.To.ID][t] = true
				}
			}
		}
	}

	// Scratch arrays reused across ranks, reset through touched lists.
	status := make([][]int8, nsets) // 0 unknown, 1 owned, 2 exec, 3 nonexec
	ilvl := make([][]int32, nsets)  // interior level of owned elements
	for s, set := range prog.Sets {
		status[s] = make([]int8, set.Size)
		ilvl[s] = make([]int32, set.Size)
	}
	var touched []selem

	cap32 := int32(2*maxChainLen + 1)
	layouts := make([]*Layout, nparts)

	for rank := 0; rank < nparts; rank++ {
		touched = touched[:0]

		// Mark owned and seed the interior-level BFS from boundary
		// elements.
		var bfs []selem
		for s := 0; s < nsets; s++ {
			for _, e := range ownedBy[s][rank] {
				status[s][e] = 1
				touched = append(touched, selem{int32(s), e})
				if boundary[s][e] {
					ilvl[s][e] = 1
					bfs = append(bfs, selem{int32(s), e})
				}
			}
		}
		boundaryOwned := append([]selem(nil), bfs...)

		// Interior levels: union-graph BFS inward over owned elements.
		relax := func(s2 int32, e2 int32, next int32) []selem {
			if status[s2][e2] == 1 && ilvl[s2][e2] == 0 {
				ilvl[s2][e2] = next
				return []selem{{s2, e2}}
			}
			return nil
		}
		for head := 0; head < len(bfs); head++ {
			cur := bfs[head]
			next := ilvl[cur.set][cur.elem] + 1
			if next > cap32 {
				continue
			}
			for _, m := range mapsFrom[cur.set] {
				for _, t := range m.Targets(int(cur.elem)) {
					bfs = append(bfs, relax(int32(m.To.ID), t, next)...)
				}
			}
			for _, m := range mapsTo[cur.set] {
				for _, a := range rev[m.ID].sourcesOf(cur.elem) {
					bfs = append(bfs, relax(int32(m.From.ID), a, next)...)
				}
			}
		}
		for s := 0; s < nsets; s++ {
			for _, e := range ownedBy[s][rank] {
				if ilvl[s][e] == 0 {
					ilvl[s][e] = cap32 + 1
				}
			}
		}

		// Halo shells.
		execEls := make([][][]int32, nsets)
		nonexecEls := make([][][]int32, nsets)
		for s := 0; s < nsets; s++ {
			execEls[s] = make([][]int32, depth)
			nonexecEls[s] = make([][]int32, depth)
		}
		frontier := boundaryOwned
		for d := 0; d < depth; d++ {
			var next []selem
			// Execute shell: foreign elements with a forward map entry
			// into the current closure (sources of frontier elements).
			for _, cur := range frontier {
				for _, m := range mapsTo[cur.set] {
					sf := int32(m.From.ID)
					for _, a := range rev[m.ID].sourcesOf(cur.elem) {
						if status[sf][a] == 0 {
							status[sf][a] = 2
							execEls[sf][d] = append(execEls[sf][d], a)
							touched = append(touched, selem{sf, a})
							next = append(next, selem{sf, a})
						}
					}
				}
			}
			// Non-execute shell: unseen targets of this shell's execute
			// elements (and of boundary owned elements for shell 1).
			producers := next
			if d == 0 {
				producers = append(append([]selem(nil), next...), boundaryOwned...)
			}
			for _, cur := range producers {
				if status[cur.set][cur.elem] == 3 {
					continue
				}
				for _, m := range mapsFrom[cur.set] {
					st := int32(m.To.ID)
					for _, t := range m.Targets(int(cur.elem)) {
						if status[st][t] == 0 {
							status[st][t] = 3
							nonexecEls[st][d] = append(nonexecEls[st][d], t)
							touched = append(touched, selem{st, t})
							next = append(next, selem{st, t})
						}
					}
				}
			}
			frontier = next
		}

		// Local numbering and per-set layouts.
		l := &Layout{
			Rank: rank, NParts: nparts, Depth: depth, MaxChainLen: maxChainLen,
			Sets: make([]*SetLayout, nsets),
			Maps: make([][]int32, len(prog.Maps)),
		}
		for s, set := range prog.Sets {
			sl := &SetLayout{Set: set}
			own := append([]int32(nil), ownedBy[s][rank]...)
			lv := ilvl[s]
			sort.Slice(own, func(i, j int) bool {
				if lv[own[i]] != lv[own[j]] {
					return lv[own[i]] > lv[own[j]]
				}
				return own[i] < own[j]
			})
			sl.NOwned = len(own)
			sl.corePrefix = make([]int32, maxChainLen)
			for loop := 0; loop < maxChainLen; loop++ {
				need := int32(2 * (loop + 1))
				// own is sorted by decreasing level: find the prefix.
				n := sort.Search(len(own), func(i int) bool { return lv[own[i]] < need })
				sl.corePrefix[loop] = int32(n)
			}

			sl.L2G = own
			sl.ExecStart = make([]int32, depth+1)
			sl.ExecStart[0] = int32(len(own))
			sl.ImportExec = make([][]ImportRange, depth)
			sl.ImportNonexec = make([][]ImportRange, depth)
			sl.ExportExec = make([][]ExportList, depth)
			sl.ExportNonexec = make([][]ExportList, depth)

			appendShell := func(els []int32) []ImportRange {
				sort.Slice(els, func(i, j int) bool {
					oi, oj := owners[s][els[i]], owners[s][els[j]]
					if oi != oj {
						return oi < oj
					}
					return els[i] < els[j]
				})
				var ranges []ImportRange
				for i := 0; i < len(els); {
					j := i
					for j < len(els) && owners[s][els[j]] == owners[s][els[i]] {
						j++
					}
					ranges = append(ranges, ImportRange{
						Rank:  owners[s][els[i]],
						Start: int32(len(sl.L2G)),
						Count: int32(j - i),
					})
					sl.L2G = append(sl.L2G, els[i:j]...)
					i = j
				}
				return ranges
			}
			for d := 0; d < depth; d++ {
				sl.ImportExec[d] = appendShell(execEls[s][d])
				sl.ExecStart[d+1] = int32(len(sl.L2G))
			}
			sl.NonexecStart = make([]int32, depth+1)
			sl.NonexecStart[0] = int32(len(sl.L2G))
			for d := 0; d < depth; d++ {
				sl.ImportNonexec[d] = appendShell(nonexecEls[s][d])
				sl.NonexecStart[d+1] = int32(len(sl.L2G))
			}
			sl.G2L = make(map[int32]int32, len(sl.L2G))
			for loc, g := range sl.L2G {
				sl.G2L[g] = int32(loc)
			}
			sl.ExecOrder = make([]int32, sl.ExecEnd(depth))
			for i := range sl.ExecOrder {
				sl.ExecOrder[i] = int32(i)
			}
			sort.Slice(sl.ExecOrder, func(i, j int) bool {
				return sl.L2G[sl.ExecOrder[i]] < sl.L2G[sl.ExecOrder[j]]
			})
			l.Sets[s] = sl
		}

		// Localized maps: rows for the executable region, -1 elsewhere.
		for mi, m := range prog.Maps {
			from := l.Sets[m.From.ID]
			to := l.Sets[m.To.ID]
			vals := make([]int32, from.Total()*m.Arity)
			for i := range vals {
				vals[i] = -1
			}
			for loc := 0; loc < from.ExecEnd(depth); loc++ {
				g := from.L2G[loc]
				for a := 0; a < m.Arity; a++ {
					tg := m.Values[int(g)*m.Arity+a]
					if tl, ok := to.G2L[tg]; ok {
						vals[loc*m.Arity+a] = tl
					}
				}
			}
			l.Maps[mi] = vals
		}
		layouts[rank] = l

		// Reset scratch.
		for _, c := range touched {
			status[c.set][c.elem] = 0
			ilvl[c.set][c.elem] = 0
		}
	}

	fillExports(prog, layouts)
	fillNeighbours(layouts)
	return layouts
}

// fillExports derives each rank's export lists from every other rank's
// import ranges, preserving the importer's storage order.
func fillExports(prog *core.Program, layouts []*Layout) {
	for _, l := range layouts {
		for s := range prog.Sets {
			sl := l.Sets[s]
			fill := func(imports [][]ImportRange, exports func(*SetLayout) *[][]ExportList, d int) {
				for _, r := range imports[d] {
					src := layouts[r.Rank].Sets[s]
					locals := make([]int32, r.Count)
					for i := int32(0); i < r.Count; i++ {
						g := sl.L2G[r.Start+i]
						loc, ok := src.G2L[g]
						if !ok || int(loc) >= src.NOwned {
							panic(fmt.Sprintf("halo: rank %d imports %s element %d from rank %d which does not own it",
								l.Rank, sl.Set.Name, g, r.Rank))
						}
						locals[i] = loc
					}
					ex := exports(src)
					(*ex)[d] = append((*ex)[d], ExportList{Rank: int32(l.Rank), Locals: locals})
				}
			}
			for d := 0; d < l.Depth; d++ {
				fill(sl.ImportExec, func(x *SetLayout) *[][]ExportList { return &x.ExportExec }, d)
				fill(sl.ImportNonexec, func(x *SetLayout) *[][]ExportList { return &x.ExportNonexec }, d)
			}
		}
	}
	for _, l := range layouts {
		for _, sl := range l.Sets {
			for d := 0; d < l.Depth; d++ {
				sort.Slice(sl.ExportExec[d], func(i, j int) bool {
					return sl.ExportExec[d][i].Rank < sl.ExportExec[d][j].Rank
				})
				sort.Slice(sl.ExportNonexec[d], func(i, j int) bool {
					return sl.ExportNonexec[d][i].Rank < sl.ExportNonexec[d][j].Rank
				})
			}
		}
	}
}

func fillNeighbours(layouts []*Layout) {
	for _, l := range layouts {
		seen := make(map[int32]bool)
		for _, sl := range l.Sets {
			for d := 0; d < l.Depth; d++ {
				for _, r := range sl.ImportExec[d] {
					seen[r.Rank] = true
				}
				for _, r := range sl.ImportNonexec[d] {
					seen[r.Rank] = true
				}
				for _, e := range sl.ExportExec[d] {
					seen[e.Rank] = true
				}
				for _, e := range sl.ExportNonexec[d] {
					seen[e.Rank] = true
				}
			}
		}
		l.Neighbours = make([]int32, 0, len(seen))
		for r := range seen {
			l.Neighbours = append(l.Neighbours, r)
		}
		sort.Slice(l.Neighbours, func(i, j int) bool { return l.Neighbours[i] < l.Neighbours[j] })
	}
}
