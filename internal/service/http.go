package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler exposes a Service over HTTP:
//
//	POST   /v1/jobs              submit a JobSpec            -> 202 JobView
//	GET    /v1/jobs[?tenant=t]   list jobs                   -> 200 [JobView]
//	GET    /v1/jobs/{id}         job status                  -> 200 JobView
//	GET    /v1/jobs/{id}/result  final result                -> 200 Result
//	GET    /v1/jobs/{id}/events  NDJSON lifecycle stream     -> 200 Event...
//	DELETE /v1/jobs/{id}         cancel                      -> 202 JobView
//	POST   /v1/jobs/{id}/preempt vacate + migrate            -> 202 JobView
//	GET    /healthz              liveness                    -> 200 Health
//	GET    /metrics              Prometheus text exposition  -> 200
//
// Errors are JSON {"error": "..."} with the status the error class maps
// to: 400 invalid spec, 404 unknown job, 409 result not ready, 429
// admission shed (with Retry-After), 503 shutting down.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, &ValidationError{Err: fmt.Errorf("decoding job spec: %w", err)})
			return
		}
		v, err := s.Submit(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		views := s.List(r.URL.Query().Get("tenant"))
		if views == nil {
			views = []JobView{}
		}
		writeJSON(w, http.StatusOK, views)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		after := 0
		for {
			evs, terminal, err := s.Events(r.Context(), id, after)
			if err != nil {
				if after == 0 && errors.Is(err, ErrNotFound) {
					writeError(w, err)
				}
				return
			}
			for _, e := range evs {
				if enc.Encode(e) != nil {
					return
				}
			}
			after += len(evs)
			if fl != nil {
				fl.Flush()
			}
			if terminal {
				return
			}
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/preempt", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Preempt(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps the service's error classes to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	var ve *ValidationError
	var oe *OverloadError
	var nr *NotReadyError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &ve):
		status = http.StatusBadRequest
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(oe.RetryAfter))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.As(err, &nr):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
