package machine

import (
	"testing"

	"op2ca/internal/core"
)

func TestIterTimeRoofline(t *testing.T) {
	m := &Machine{FlopRate: 1e9, MemBandwidth: 1e8}
	flopBound := &core.Kernel{Flops: 1000, MemBytes: 1}
	memBound := &core.Kernel{Flops: 1, MemBytes: 1000}
	if got := m.IterTime(flopBound); got != 1000/1e9 {
		t.Errorf("flop-bound IterTime = %g", got)
	}
	if got := m.IterTime(memBound); got != 1000/1e8 {
		t.Errorf("mem-bound IterTime = %g", got)
	}
}

func TestGPURates(t *testing.T) {
	c := Cirrus()
	if c.GPU == nil {
		t.Fatal("Cirrus must have a GPU")
	}
	k := &core.Kernel{Flops: 1000, MemBytes: 100}
	cpu := ARCHER2()
	if c.IterTime(k) >= cpu.IterTime(k) {
		t.Error("a V100 rank should out-compute an EPYC core per iteration")
	}
	if cpu.LaunchOverhead() != 0 {
		t.Error("CPU machines have no launch overhead")
	}
	if c.LaunchOverhead() <= 0 {
		t.Error("GPU machines must charge launch overhead")
	}
	if cpu.StageTime(1000) != 0 {
		t.Error("CPU machines have no staging cost")
	}
	if c.StageTime(0) != 0 {
		t.Error("zero bytes stage for free")
	}
	if c.StageTime(1<<20) <= c.GPU.PCIeLatency {
		t.Error("staging a megabyte must cost more than bare latency")
	}
}

func TestMachinePresetsSane(t *testing.T) {
	for _, m := range []*Machine{ARCHER2(), Cirrus(), Laptop()} {
		if m.RanksPerNode < 1 || m.FlopRate <= 0 || m.MemBandwidth <= 0 ||
			m.Latency <= 0 || m.Bandwidth <= 0 || m.PackRate <= 0 {
			t.Errorf("%s has non-positive parameters: %+v", m.Name, m)
		}
	}
	if ARCHER2().RanksPerNode != 128 {
		t.Error("ARCHER2 runs 128 ranks per node (2x64-core EPYC 7742)")
	}
	if Cirrus().RanksPerNode != 4 {
		t.Error("Cirrus runs 4 ranks per node (one per V100)")
	}
}

// TestLaunchAndStagingGatedOnGPU: CPU presets must not charge GPU-only
// costs, and the GPU preset's roofline must use the device rates.
func TestLaunchAndStagingGatedOnGPU(t *testing.T) {
	if m := Laptop(); m.GPU != nil {
		t.Error("Laptop is a CPU machine")
	}
	if ARCHER2().GPU != nil {
		t.Error("ARCHER2 is a CPU machine")
	}
	c := Cirrus()
	k := &core.Kernel{Flops: 1e6, MemBytes: 10}
	if got, want := c.IterTime(k), 1e6/c.GPU.FlopRate; got != want {
		t.Errorf("GPU flop-bound IterTime = %g, want %g", got, want)
	}
	if c.StageTime(-1) != 0 {
		// Negative bytes never occur; document that only positive volumes
		// are charged rather than producing a negative time.
		t.Skip("negative staging volume is out of contract")
	}
}

// TestPresetLatencyOrdering: the interconnect presets must keep their
// relative ordering (Slingshot < laptop loopback-ish < none), which the
// calibration priors and the break-even analyses rely on.
func TestPresetLatencyOrdering(t *testing.T) {
	a, c, l := ARCHER2(), Cirrus(), Laptop()
	if a.Latency <= 0 || c.Latency <= 0 || l.Latency <= 0 {
		t.Fatal("latencies must be positive")
	}
	if l.Latency >= a.Latency {
		t.Error("shared-memory laptop ranks must see lower latency than Slingshot at scale")
	}
	if c.GPU.PCIeBandwidth >= c.Bandwidth*100 {
		t.Error("PCIe bandwidth out of any plausible ratio to the network")
	}
}
