package op2ca

import "testing"

// TestFacade exercises the public API end to end: declare a program over a
// generated mesh, run a two-loop chain on the sequential and CA back-ends,
// and compare.
func TestFacade(t *testing.T) {
	build := func() (*Program, *Set, *Map, *Dat, *Dat) {
		m := Rotor(6, 5, 4)
		p := NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		edges := p.DeclSet(m.NEdges, "edges")
		e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
		src := p.DeclDat(nodes, 1, nil, "src")
		dst := p.DeclDat(nodes, 1, nil, "dst")
		for i := range src.Data {
			src.Data[i] = float64(i%5 - 2)
		}
		return p, nodes, e2n, src, dst
	}
	k := &Kernel{Name: "diffuse", Flops: 2, MemBytes: 32, Fn: func(a [][]float64) {
		a[0][0] += a[2][0]
		a[1][0] += a[3][0]
	}}
	run := func(b Backend, p *Program) {
		edges := p.SetByName("edges")
		e2n := p.MapByName("e2n")
		src, dst := p.DatByName("src"), p.DatByName("dst")
		b.ChainBegin("facade")
		b.ParLoop(NewLoop(k, edges,
			ArgDat(dst, 0, e2n, Inc), ArgDat(dst, 1, e2n, Inc),
			ArgDat(src, 1, e2n, Read), ArgDat(src, 0, e2n, Read)))
		b.ParLoop(NewLoop(k, edges,
			ArgDat(src, 0, e2n, Inc), ArgDat(src, 1, e2n, Inc),
			ArgDat(dst, 1, e2n, Read), ArgDat(dst, 0, e2n, Read)))
		b.ChainEnd()
	}

	pRef, _, _, srcRef, _ := build()
	run(NewSeq(), pRef)

	p, nodes, _, src, _ := build()
	m := Rotor(6, 5, 4)
	cb, err := NewCluster(ClusterConfig{
		Prog: p, Primary: nodes,
		Assign: RIB(m.Coords, 3, 3), NParts: 3,
		Depth: 3, MaxChainLen: 2, CA: true, Machine: ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	run(cb, p)
	got := cb.GatherDat(src)
	for i := range srcRef.Data {
		if got[i] != srcRef.Data[i] {
			t.Fatalf("src[%d] = %g, want %g", i, got[i], srcRef.Data[i])
		}
	}
	if cb.MaxClock() <= 0 {
		t.Error("virtual clock did not advance")
	}
	if cfg, err := ParseChainConfig("chain facade maxhe=3"); err != nil || cfg.Get("facade") == nil {
		t.Errorf("ParseChainConfig failed: %v", err)
	}
	// Model facade: a trivial sanity evaluation.
	net := ModelNet{L: 2e-6, B: 1e9}
	loops := []ModelLoopParams{{G: 1e-8, CoreIters: 1000, HaloIters: 100, NDats: 1, Neighbours: 4, MsgBytes: 1024}}
	if TOp2Chain(loops, net) <= 0 {
		t.Error("TOp2Chain must be positive")
	}
	if TCAChain(ModelChainParams{Loops: loops, Neighbours: 4, GroupedBytes: 2048}, net) <= 0 {
		t.Error("TCAChain must be positive")
	}
}

// TestFacadePartitioners checks the remaining facade constructors.
func TestFacadePartitioners(t *testing.T) {
	m := RotorForNodes(500)
	if got := m.NNodes; got < 100 {
		t.Fatalf("RotorForNodes(500) built only %d nodes", got)
	}
	for name, a := range map[string]Assignment{
		"kway":  KWay(m.NodeAdjacency(), 4),
		"rcb":   RCB(m.Coords, 3, 4),
		"block": BlockPartition(m.NNodes, 4),
	} {
		if len(a) != m.NNodes {
			t.Errorf("%s: wrong assignment length", name)
		}
	}
	q := NewQuad2D(3, 3)
	if q.NCells != 9 {
		t.Errorf("quad cells = %d", q.NCells)
	}
	if Laptop().RanksPerNode < 1 || Cirrus().GPU == nil {
		t.Error("machine presets broken")
	}
}
