package core

import "fmt"

// AccessMode describes how a parallel-loop argument accesses its data,
// mirroring OP2's OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN and OP_MAX
// access descriptors.
type AccessMode int

const (
	// Read declares read-only access (OP_READ).
	Read AccessMode = iota
	// Write declares write-only access (OP_WRITE).
	Write
	// ReadWrite declares read-write access (OP_RW).
	ReadWrite
	// Inc declares an increment: the kernel adds contributions to the
	// argument (OP_INC). Increments commute, so iteration order within a
	// loop does not affect the result beyond floating-point rounding.
	Inc
	// Min declares a minimum reduction (OP_MIN), valid for global args.
	Min
	// Max declares a maximum reduction (OP_MAX), valid for global args.
	Max
)

// String returns the OP2 name of the access mode.
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "OP_READ"
	case Write:
		return "OP_WRITE"
	case ReadWrite:
		return "OP_RW"
	case Inc:
		return "OP_INC"
	case Min:
		return "OP_MIN"
	case Max:
		return "OP_MAX"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// Reads reports whether the mode observes existing data values.
func (m AccessMode) Reads() bool {
	return m == Read || m == ReadWrite || m == Inc || m == Min || m == Max
}

// Writes reports whether the mode modifies data values. Increments count as
// writes: after a loop increments a dat its halo copies are stale.
func (m AccessMode) Writes() bool {
	return m == Write || m == ReadWrite || m == Inc || m == Min || m == Max
}

// Valid reports whether m is one of the declared access modes.
func (m AccessMode) Valid() bool {
	return m >= Read && m <= Max
}
