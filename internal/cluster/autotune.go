package cluster

// autotune.go wires the model-driven autotuner (package autotune) into the
// chain execution path. A tuned chain first runs ProbeWindows windows
// per-loop (the standard OP2 baseline) while the calibrator collects
// measured exchange spans, pack volumes and per-loop execution parameters;
// then the tuner fits the machine parameters, derives Equation (3) inputs
// for every feasible CA policy from the halo layouts, scores all candidates
// with the analytic model and commits to the winner. Every subsequent
// window runs the chosen policy and compares its measured time against the
// prediction; divergence beyond Tune.ReplanPct re-tunes at the next window
// boundary.
//
// Every candidate policy — per-loop OP2, CA at any feasible halo depth,
// grouped or per-dat messages — produces bit-identical data (the
// equivalence property the repo's tests enforce), so the tuner changes
// virtual time only, never results. The one place that could break is a
// configured chain whose pinned halo extensions sit *below* the
// conservative analysis: there CA execution is a deliberate
// application-knowledge override and per-loop probing would compute
// different (safe, but different) values. Such chains are excluded from
// tuning up front and recorded in AutoTuneStats.Skipped.

import (
	"fmt"

	"op2ca/internal/autotune"
	"op2ca/internal/ca"
	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/halo"
	"op2ca/internal/model"
	"op2ca/internal/obs"
)

// tuneKey identifies one tuned chain: name plus structural signature, so a
// lazy chain whose auto-detected composition varies between flushes gets
// one tuner state per distinct structure.
type tuneKey struct {
	chain string
	sig   string
}

// tunedLoop is one chain position's measured Equation (1) parameters from
// the most recent complete per-loop window (G is filled from the
// calibration at decision time).
type tunedLoop struct {
	kernel string
	p      model.LoopParams
}

// chainTune is the tuner state of one chain.
type chainTune struct {
	chain string
	cfg   autotune.Config
	cal   *autotune.Calibrator
	// skip marks chains excluded from tuning (invariance guard); they run
	// the static configuration unchanged.
	skip   bool
	probes int
	// dirty records the dat IDs observed dirty at window entry during
	// per-loop windows: the runtime validity state decides which of a CA
	// plan's required exchanges actually ship, so candidate message shapes
	// are derived from plan.Required filtered to these dats.
	dirty map[int]bool
	// window collects the current per-loop window's parameters; op2Params
	// holds the most recent complete window (the Equation (2) baseline).
	window    []tunedLoop
	op2Params []tunedLoop
	decision  *autotune.Decision
}

func (ct *chainTune) beginWindow() { ct.window = ct.window[:0] }

// endWindow publishes a completed per-loop window's parameters. Windows
// that ran CA leave the slice empty and keep the previous baseline.
func (ct *chainTune) endWindow() {
	if len(ct.window) > 0 {
		ct.op2Params = append(ct.op2Params[:0], ct.window...)
	}
}

// noteLoop records one loop execution of the sampled chain: a calibration
// sample (to solve for g) and the window's Equation (1) parameters.
func (ct *chainTune) noteLoop(kernel string, p model.LoopParams, seconds float64) {
	ct.cal.AddLoop(kernel, p, seconds)
	ct.window = append(ct.window, tunedLoop{kernel: kernel, p: p})
}

// noteExchange records one per-loop exchange of the sampled chain: which
// dats were dirty, and the pack throughput samples.
func (ct *chainTune) noteExchange(specs []exchangeSpec, sendBytes []int64, packRate float64) {
	for _, sp := range specs {
		ct.dirty[sp.dat.ID] = true
	}
	ct.notePack(sendBytes, packRate)
}

// notePack records per-rank pack volumes as throughput samples (the
// simulator charges packing at the machine's PackRate, so bytes/rate is the
// measured span).
func (ct *chainTune) notePack(sendBytes []int64, packRate float64) {
	for _, n := range sendBytes {
		if n > 0 {
			ct.cal.AddPack(n, float64(n)/packRate)
		}
	}
}

// tuneFor returns the tuner state for a chain about to execute with CA, or
// nil when the chain is not tuned (autotuning off and no per-chain auto
// flag, single-loop chain, disabled chain, or excluded by the invariance
// guard).
func (b *Backend) tuneFor(name string, loops []core.Loop, cfgChain *chaincfg.Chain) *chainTune {
	if !b.cfg.CA || len(loops) < 2 {
		return nil
	}
	if cfgChain != nil && cfgChain.Disabled {
		return nil
	}
	if !b.cfg.AutoTune && (cfgChain == nil || !cfgChain.Auto) {
		return nil
	}
	key := tuneKey{chain: name, sig: ca.ChainSignature(loops, nil)}
	if ct, ok := b.tunes[key]; ok {
		if ct.skip {
			return nil
		}
		return ct
	}
	b.stats.AutoTune.Enabled = true
	ct := &chainTune{
		chain: name,
		cfg:   b.cfg.Tune.WithDefaults(),
		cal:   autotune.NewCalibrator(),
		dirty: map[int]bool{},
	}
	m := b.cfg.Machine
	ct.cal.EagerThreshold = float64(m.EagerThreshold)
	if m.GPU != nil && !b.cfg.GPUDirect {
		// Measured message spans cover the network leg alone; the model
		// prices staged exchanges with the enlarged latency Λ.
		ct.cal.ExtraLatency = m.GPU.ExchangeLatency(m.Latency) - m.Latency
	}
	if reason := b.tuneInvariant(name, loops, cfgChain); reason != "" {
		ct.skip = true
		b.stats.AutoTune.skip(name, reason)
	}
	b.tunes[key] = ct
	if ct.skip {
		return nil
	}
	return ct
}

// tuneInvariant checks that tuning cannot change the chain's results: a
// configured chain whose pinned halo extensions sit below the conservative
// analysis computes different values under CA than per-loop execution (a
// deliberate application-knowledge override, e.g. Hydra's paper
// configuration), so probing it per-loop would alter data. Returns a
// non-empty reason to exclude the chain from tuning.
func (b *Backend) tuneInvariant(name string, loops []core.Loop, cfgChain *chaincfg.Chain) string {
	if cfgChain == nil {
		return ""
	}
	over, err := cfgChain.HEOverrides(len(loops))
	if err != nil {
		panic("cluster: " + err.Error())
	}
	base, errB := ca.Inspect(name, loops, over)
	safe, errS := ca.Inspect(name, loops, nil)
	if errB != nil || errS != nil {
		// Infeasible chains fall back to per-loop execution on every path;
		// nothing to guard.
		return ""
	}
	for i := range base.HE {
		if base.HE[i] < safe.HE[i] {
			return fmt.Sprintf("configured HE %v below conservative analysis %v: per-loop probing would change results",
				base.HE, safe.HE)
		}
	}
	return ""
}

// runTuned executes one window of a tuned chain: a per-loop probe window
// while calibrating, the decided policy afterwards, re-tuning when the
// measured window time diverges from the prediction.
func (b *Backend) runTuned(ct *chainTune, name string, loops []core.Loop, cfgChain *chaincfg.Chain, cs *ChainStats) {
	t0 := b.maxClock()
	ct.beginWindow()
	b.tuneSampling = ct
	decided := ct.decision
	if decided != nil && decided.ChosenPolicy.CA {
		b.runChainImpl(name, loops, cfgChain, decided.ChosenPolicy.HE, decided.ChosenPolicy.Grouped, decided.ChosenPolicy.Overlap, cs, true)
	} else {
		b.runPerLoop(name, loops, cs, t0)
	}
	b.tuneSampling = nil
	ct.endWindow()

	if decided == nil {
		ct.probes++
		if ct.probes >= ct.cfg.ProbeWindows {
			b.tuneDecide(ct, name, loops, cfgChain)
		}
		return
	}
	measured := b.maxClock() - t0
	decided.Windows++
	decided.Measured = measured
	if autotune.ShouldReplan(decided.Predicted, measured, ct.cfg.ReplanPct) {
		b.tuneDecide(ct, name, loops, cfgChain)
	}
}

// tuneDecide fits the calibration, enumerates and scores the candidate
// policies and commits the winner. Called at a window boundary, so a policy
// switch takes effect with the next window; the superseded policy's cached
// plan is invalidated.
func (b *Backend) tuneDecide(ct *chainTune, name string, loops []core.Loop, cfgChain *chaincfg.Chain) {
	m := b.cfg.Machine
	prior := autotune.Calib{
		L:              b.modelNet(0).L,
		B:              m.Bandwidth,
		PackRate:       m.PackRate,
		EagerThreshold: float64(m.EagerThreshold),
		Handshake:      m.HandshakeTime(),
		G:              make(map[string]float64, len(loops)),
	}
	for _, l := range loops {
		prior.G[l.Kernel.Name] = m.IterTime(l.Kernel)
	}
	cal := ct.cal.Fit(prior)

	in := autotune.ChainInputs{Chain: name}
	in.Op2 = make([]model.LoopParams, len(ct.op2Params))
	for i, tl := range ct.op2Params {
		p := tl.p
		p.G = cal.GFor(tl.kernel, m.IterTime(loops[i].Kernel))
		in.Op2[i] = p
	}
	var reason string
	in.CA, reason = b.caCandidates(name, loops, cfgChain, ct, cal)

	d, err := autotune.Score(in, cal)
	if err != nil {
		// Degenerate calibration (e.g. a broken custom machine model):
		// keep the OP2 baseline rather than guessing.
		d = autotune.Decision{Chain: name, Chosen: autotune.Policy{}.Key(), Reason: err.Error()}
	} else if d.Reason == "" {
		d.Reason = reason
	}
	if prev := ct.decision; prev != nil {
		d.Replans = prev.Replans + 1
		d.Windows = prev.Windows
		d.Measured = prev.Measured
		if prev.ChosenPolicy.CA && !prev.ChosenPolicy.Equal(d.ChosenPolicy) {
			// The superseded policy's plan (and its exchange schedules)
			// will not be replayed; drop it from the cache. A warm
			// (checkpoint-restored, not yet rebuilt) entry counts the same
			// invalidation the uninterrupted run would have.
			key := planKey{chain: name, sig: ca.ChainSignature(loops, prev.ChosenPolicy.HE)}
			if e, ok := b.plans[key.chain+"\x00"+key.sig]; ok {
				b.invalidatePlan(e)
			} else if b.warmPlans[key] {
				delete(b.warmPlans, key)
				b.planInvalidations++
			}
		}
	}
	ct.decision = &d
	b.stats.AutoTune.note(&d, cal)
	if b.tracer.Enabled() {
		t := b.maxClock()
		b.tracer.Emit(0, obs.TrackExec, obs.Tune, name+" -> "+d.Chosen, t, t, 0)
	}
}

// caCandidates enumerates the feasible CA policies for a chain: the base
// plan (Algorithm 3 plus any configured overrides) and every uniformly
// deeper halo extension up to the back-end's built halo depth, each grouped
// and ungrouped. A non-empty reason explains an empty or truncated
// candidate set.
func (b *Backend) caCandidates(name string, loops []core.Loop, cfgChain *chaincfg.Chain, ct *chainTune, cal autotune.Calib) ([]autotune.CACandidate, string) {
	if len(loops) > b.cfg.MaxChainLen {
		return nil, fmt.Sprintf("chain length %d exceeds MaxChainLen %d", len(loops), b.cfg.MaxChainLen)
	}
	var baseOver []int
	if cfgChain != nil {
		var err error
		baseOver, err = cfgChain.HEOverrides(len(loops))
		if err != nil {
			panic("cluster: " + err.Error())
		}
	}
	base, err := ca.Inspect(name, loops, baseOver)
	if err != nil {
		return nil, fmt.Sprintf("CA infeasible: %v", err)
	}
	if base.MaxDepth > b.cfg.Depth {
		return nil, fmt.Sprintf("chain needs halo depth %d, back-end built with Depth %d", base.MaxDepth, b.cfg.Depth)
	}
	var out []autotune.CACandidate
	// Overlap is a policy dimension only for overlap-eligible chains
	// (Config.Overlap or the chain's "overlap" token): each feasible
	// (depth, grouping) pair is then scored both bulk and overlapped, so
	// the op2-vs-CA comparison stays honest when pipelining changes which
	// CA shape wins. Bulk-only configurations enumerate exactly as before.
	modes := []bool{false}
	if b.overlapFor(cfgChain) {
		modes = []bool{false, true}
	}
	addPlan := func(p ca.Plan, over []int) {
		for _, ov := range modes {
			if !b.cfg.NoGroupedMsgs {
				out = append(out, b.caCandidate(loops, p, over, true, ov, ct, cal))
			}
			out = append(out, b.caCandidate(loops, p, over, false, ov, ct, cal))
		}
	}
	// The base plan's policy carries exactly the overrides the static path
	// would use, so its plan-cache key matches a static run's.
	addPlan(base, baseOver)
	for r := base.MaxDepth + 1; r <= b.cfg.Depth; r++ {
		over := make([]int, len(loops))
		for i := range over {
			over[i] = r
		}
		p, err := ca.Inspect(name, loops, over)
		if err != nil || p.MaxDepth != r {
			continue
		}
		addPlan(p, over)
	}
	return out, ""
}

// caCandidate prices one (plan, grouping) pair: Equation (3) parameters
// from the halo layouts — per-loop core/halo iteration splits mirroring
// runChainImpl's ranges exactly — and the message shape from the plan's
// required exchanges filtered to the dats observed dirty during probing.
func (b *Backend) caCandidate(loops []core.Loop, p ca.Plan, over []int, grouped, overlap bool, ct *chainTune, cal autotune.Calib) autotune.CACandidate {
	m := b.cfg.Machine
	var specs []exchangeSpec
	for _, r := range p.Required {
		if ct.dirty[r.Dat.ID] {
			specs = append(specs, exchangeSpec{dat: r.Dat, execDepth: r.ExecDepth, nonexecDepth: r.NonexecDepth})
		}
	}
	maxMsg, maxNeigh, nMsgs := b.exchangeShape(specs, grouped)
	exchanging := nMsgs > 0

	n := len(loops)
	lp := make([]model.LoopParams, n)
	for i, l := range loops {
		lp[i].G = cal.GFor(l.Kernel.Name, m.IterTime(l.Kernel))
	}
	for r := 0; r < b.cfg.NParts; r++ {
		lay := b.layouts[r]
		for i, l := range loops {
			sl := lay.SetL(l.Set)
			e := sl.ExecEnd(p.HE[i])
			c := e
			if exchanging {
				c = min(sl.CorePrefix(i), e)
			}
			halo := e - c
			if p.HN[i] > 0 {
				halo += int(sl.NonexecStart[p.HN[i]]) - int(sl.NonexecStart[0])
			}
			if f := float64(c); f > lp[i].CoreIters {
				lp[i].CoreIters = f
			}
			if f := float64(halo); f > lp[i].HaloIters {
				lp[i].HaloIters = f
			}
		}
	}
	cand := autotune.CACandidate{
		Policy: autotune.Policy{CA: true, Depth: p.MaxDepth, HE: over, Grouped: grouped, Overlap: overlap},
		Params: model.ChainParams{
			Loops:        lp,
			Neighbours:   float64(maxNeigh),
			GroupedBytes: float64(maxMsg),
		},
	}
	if grouped {
		cand.PackBytes = float64(maxMsg)
	}
	return cand
}

// exchangeShape walks the export lists for a spec set without moving any
// data: the largest single message, the largest per-rank neighbour count
// and the total message count, under either grouping. Mirrors doExchange's
// message formation.
func (b *Backend) exchangeShape(specs []exchangeSpec, grouped bool) (maxMsg int64, maxNeigh, nMsgs int) {
	for r := 0; r < b.cfg.NParts; r++ {
		byDest := map[int32]int64{}
		msgs := 0
		for _, sp := range specs {
			sl := b.layouts[r].SetL(sp.dat.Set)
			add := func(exports [][]halo.ExportList, depth int) {
				for d := 0; d < depth; d++ {
					for _, ex := range exports[d] {
						if len(ex.Locals) == 0 {
							continue
						}
						bytes := int64(len(ex.Locals) * sp.dat.Dim * 8)
						if grouped {
							byDest[ex.Rank] += bytes
							continue
						}
						byDest[ex.Rank] += bytes // neighbour dedup only
						msgs++
						if bytes > maxMsg {
							maxMsg = bytes
						}
					}
				}
			}
			add(sl.ExportExec, sp.execDepth)
			add(sl.ExportNonexec, sp.nonexecDepth)
		}
		if grouped {
			msgs = len(byDest)
			for _, bts := range byDest {
				if bts > maxMsg {
					maxMsg = bts
				}
			}
		}
		if len(byDest) > maxNeigh {
			maxNeigh = len(byDest)
		}
		nMsgs += msgs
	}
	return maxMsg, maxNeigh, nMsgs
}
