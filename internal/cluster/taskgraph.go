package cluster

// taskgraph.go is the overlap-capable task-graph executor for CA loop-chains.
// A bulk-synchronous chain execution (chain.go) prices its exchange as a
// serial block: every message charges the full L + m/B (+ rendezvous
// handshake) on the sender's NIC before the receiver's wait completes. The
// task-graph executor instead runs the window as a five-stage pipeline per
// exchange boundary:
//
//	pack          the sender gathers halo elements into the grouped
//	              message (the c term of Equation (3)), as before;
//	post-send     the send is posted: the rendezvous handshake starts
//	              immediately and the payload injects behind earlier
//	              injections from the same sender — only m/B serialises
//	              on the NIC (netsim.DeliverOverlapped);
//	compute-core  the core prefix (owned elements touching no halo data)
//	              runs while messages are in flight, exactly as in the
//	              bulk executor — this is the MAX term of Equation (1);
//	complete-recv the receiver's wait completes one wire latency after
//	              the last inbound injection finishes, so only the
//	              portion of L + m/B not hidden behind core compute is
//	              charged as wait;
//	compute-halo  the redundant halo region runs after the wait.
//
// Only virtual-time arithmetic changes: the data pass is the same canonical
// ascending-element-order execution as every other policy, so results are
// bitwise identical to the sequential reference. Per-loop exchanges never
// overlap — they are the probe/calibration baseline whose per-message spans
// must decompose as h*L + m/B for the network fit (calibrate.go), and their
// per-dat eager messages have little pipeline to exploit.

import (
	"op2ca/internal/chaincfg"
	"op2ca/internal/faults"
	"op2ca/internal/netsim"
	"op2ca/internal/obs"
)

// overlapFor resolves whether a chain runs the overlap executor: the
// backend-wide Config.Overlap switch, or the chain's own "overlap"
// configuration token. The autotuner layers its per-policy choice on top
// (see runTuned): a tuned chain follows the decided policy's Overlap bit.
func (b *Backend) overlapFor(c *chaincfg.Chain) bool {
	if b.cfg.Overlap {
		return true
	}
	return c != nil && c.Overlap
}

// deliverOverlapped is the pipelined counterpart of the bulk delivery in
// recovery.go, reached through deliver with overlap set. The clean path is
// netsim.DeliverOverlapped; the faulted path repeats the same attempt loop
// as the bulk path with the overlapped arithmetic: each attempt starts at
// max(NIC free, post + handshake), occupies the NIC for m/B (scaled by
// straggler factors), and arrives one wire latency later. With a plan that
// injects nothing the factors are exactly 1.0, so the faulted path computes
// the clean path's clocks operation for operation — the same zero-bit
// invariant the bulk path keeps. Retries do not re-pay the handshake: the
// rendezvous completed before the first attempt, so a retransmission waits
// only for detection, backoff and the NIC.
//
// Calibration sampling is deliberately absent: an overlapped span is
// m/B + L minus queueing, which would poison the h*L + m/B regression the
// per-loop probe windows feed (they always deliver bulk).
func (b *Backend) deliverOverlapped(seq uint64, post []float64, msgs []netsim.Message, owner string, maxRetries int) delivery {
	plan := b.cfg.Faults
	if !plan.Enabled() {
		b.scr.arrivals = b.net.DeliverOverlappedInto(b.scr.arrivals[:0], b.scr.busy, post, msgs)
		return delivery{arrivals: b.scr.arrivals}
	}
	fs := &b.stats.Faults
	traced := b.tracer.Enabled()
	d := delivery{arrivals: make([]float64, len(msgs))}
	busy := make(map[int32]float64, len(post))
	for i, m := range msgs {
		start, ok := busy[m.From]
		if !ok {
			start = post[m.From]
		}
		base := float64(m.Bytes) / b.net.Bandwidth
		hsReady := post[m.From] + b.net.HandshakeTime(m.Bytes)
		for try := 0; ; try++ {
			v := plan.Judge(faults.Attempt{Exchange: seq, Msg: i, Try: try, From: m.From, To: m.To})
			s := start
			if hsReady > s {
				s = hsReady
			}
			inj := s + base*v.Slow*v.Delay
			arr := inj + b.net.Latency
			busy[m.From] = inj
			if v.Delay > 1 {
				fs.Delays++
			}
			if !v.Failed() {
				d.arrivals[i] = arr
				break
			}
			if v.Drop {
				fs.Drops++
			} else {
				fs.Corrupts++
			}
			if try >= maxRetries {
				fs.Giveups++
				d.giveups++
				d.arrivals[i] = arr
				if arr > d.failAt {
					d.failAt = arr
				}
				if traced {
					b.tracer.Emit(m.From, obs.TrackExec, obs.Giveup, owner,
						arr, arr+b.retryTimeout, m.Bytes)
				}
				break
			}
			fs.Retries++
			next := arr + b.retryTimeout + b.retryBackoff*backoffFactor(try)
			if traced {
				b.tracer.Emit(m.From, obs.TrackExec, obs.Retry, owner, arr, next, m.Bytes)
				b.tracer.EmitEdge(obs.Edge{
					Kind: obs.EdgeRetry, Name: owner, From: m.From, To: m.From,
					Post: arr, Begin: arr, End: next, Ready: arr, Bytes: m.Bytes,
				})
			}
			busy[m.From] = next
			start = next
		}
	}
	return d
}

// sendStartTimesOverlapped replays the overlapped per-sender injection
// serialisation to recover each message's transmission-begin time for the
// trace, mirroring sendStartTimes for the bulk path. A message begins
// injecting at max(NIC free, post + handshake); the NIC frees at the final
// attempt's injection end, which is the recorded arrival minus one wire
// latency — exact for clean and faulted deliveries alike, since both paths
// leave busy at arrival - L after a message completes.
func sendStartTimesOverlapped(net netsim.Network, post []float64, msgs []netsim.Message, arrivals []float64) []float64 {
	starts := make([]float64, len(msgs))
	busy := make(map[int32]float64, len(post))
	for i, m := range msgs {
		start, ok := busy[m.From]
		if !ok {
			start = post[m.From]
		}
		if hs := post[m.From] + net.HandshakeTime(m.Bytes); hs > start {
			start = hs
		}
		starts[i] = start
		busy[m.From] = arrivals[i] - net.Latency
	}
	return starts
}
