package checkpoint

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Spec is the parsed form of the -checkpoint command-line flag:
// "every=N,path=P" requests a snapshot to P after every N measured
// iterations. The same file is overwritten each time (atomically), so a
// crash always finds the most recent complete snapshot.
type Spec struct {
	Every int
	Path  string
}

// Enabled reports whether the spec requests periodic snapshots.
func (s Spec) Enabled() bool { return s.Every > 0 && s.Path != "" }

// ParseSpec parses "every=N,path=P" (both keys required, any order).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Spec{}, fmt.Errorf("checkpoint spec: %q is not key=value", field)
		}
		switch key {
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("checkpoint spec: every=%q must be a positive integer", val)
			}
			spec.Every = n
		case "path":
			if val == "" {
				return Spec{}, fmt.Errorf("checkpoint spec: path must not be empty")
			}
			spec.Path = val
		default:
			return Spec{}, fmt.Errorf("checkpoint spec: unknown key %q (want every, path)", key)
		}
	}
	if !spec.Enabled() {
		return Spec{}, fmt.Errorf("checkpoint spec: both every=N and path=P are required")
	}
	return spec, nil
}

// AtomicWriteFile writes a snapshot produced by write to path via a
// temporary file and rename, so a crash mid-write never leaves a truncated
// checkpoint where a complete one stood.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile decodes the snapshot stored at path.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
