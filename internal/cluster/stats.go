package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// LoopStats aggregates the executions of one named loop outside chains.
type LoopStats struct {
	Name string
	// Executions counts op_par_loop calls.
	Executions int
	// Msgs and Bytes total the halo messages sent across all ranks.
	Msgs  int64
	Bytes int64
	// DatsExchanged totals, over executions, the number of dats whose
	// halos were exchanged (the d_l term).
	DatsExchanged int64
	// MaxNeighbours is the largest per-rank neighbour count seen (p).
	MaxNeighbours int
	// MaxMsgBytes is the largest single message (m).
	MaxMsgBytes int64
	// CoreIters and HaloIters split iterations into those overlapped with
	// communication and those executed after the wait, totalled over
	// ranks and executions.
	CoreIters int64
	HaloIters int64
	// Time is the virtual wall time attributed to this loop (max over
	// ranks, summed over executions).
	Time float64
}

// ChainStats aggregates the executions of one named loop-chain.
type ChainStats struct {
	Name  string
	NLoop int
	// Executions counts ChainEnd calls; CAExecutions counts those that
	// ran with Algorithm 2 rather than falling back to per-loop code.
	Executions   int
	CAExecutions int
	// HE records the halo extension of each loop from the last CA run.
	HE []int
	// Msgs and Bytes total the grouped messages.
	Msgs  int64
	Bytes int64
	// DatsExchanged totals dats included in the grouped message.
	DatsExchanged int64
	// MaxNeighbours is the largest per-rank neighbour count (p).
	MaxNeighbours int
	// MaxMsgBytes is the largest single grouped message (the m^r term).
	MaxMsgBytes int64
	// MaxRankBytes is the largest per-rank total grouped send volume
	// (the p*m^r proxy of Table 2).
	MaxRankBytes int64
	// CoreIters and HaloIters are as in LoopStats, totalled over loops.
	CoreIters int64
	HaloIters int64
	// Time is the virtual wall time of the chain (max over ranks, summed
	// over executions).
	Time float64
}

// Stats collects instrumentation for one Backend.
type Stats struct {
	Loops  map[string]*LoopStats
	Chains map[string]*ChainStats
}

func newStats() *Stats {
	return &Stats{Loops: map[string]*LoopStats{}, Chains: map[string]*ChainStats{}}
}

func (s *Stats) loop(name string) *LoopStats {
	ls, ok := s.Loops[name]
	if !ok {
		ls = &LoopStats{Name: name}
		s.Loops[name] = ls
	}
	return ls
}

func (s *Stats) chain(name string) *ChainStats {
	cs, ok := s.Chains[name]
	if !ok {
		cs = &ChainStats{Name: name}
		s.Chains[name] = cs
	}
	return cs
}

// String renders a compact report, loops then chains, alphabetically.
func (s *Stats) String() string {
	var b strings.Builder
	var names []string
	for n := range s.Loops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := s.Loops[n]
		fmt.Fprintf(&b, "loop %-20s x%-5d msgs %-8d bytes %-12d core %-10d halo %-10d t %.6fs\n",
			l.Name, l.Executions, l.Msgs, l.Bytes, l.CoreIters, l.HaloIters, l.Time)
	}
	names = names[:0]
	for n := range s.Chains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := s.Chains[n]
		fmt.Fprintf(&b, "chain %-19s x%-5d (CA %d) msgs %-8d bytes %-12d core %-10d halo %-10d t %.6fs HE%v\n",
			c.Name, c.Executions, c.CAExecutions, c.Msgs, c.Bytes, c.CoreIters, c.HaloIters, c.Time, c.HE)
	}
	return b.String()
}
