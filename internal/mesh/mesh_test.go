package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuad2DCounts(t *testing.T) {
	// Figure 1 of the paper: 2x2 cells => 9 nodes, 12 edges, 4 cells.
	m := NewQuad2D(2, 2)
	if m.NNodes != 9 || m.NEdges != 12 || m.NCells != 4 {
		t.Fatalf("counts = %d nodes %d edges %d cells, want 9 12 4", m.NNodes, m.NEdges, m.NCells)
	}
	if len(m.EdgeNodes) != 2*m.NEdges || len(m.EdgeCells) != 2*m.NEdges {
		t.Fatal("edge map lengths inconsistent")
	}
	if len(m.CellNodes) != 4*m.NCells || len(m.Coords) != 2*m.NNodes {
		t.Fatal("cell map / coords lengths inconsistent")
	}
}

func TestQuad2DInvariants(t *testing.T) {
	f := func(nx8, ny8 uint8) bool {
		nx, ny := int(nx8%7)+1, int(ny8%7)+1
		m := NewQuad2D(nx, ny)
		// Euler-style count: edges = nx*(ny+1) + ny*(nx+1).
		if m.NEdges != nx*(ny+1)+ny*(nx+1) {
			return false
		}
		for i, v := range m.EdgeNodes {
			if v < 0 || int(v) >= m.NNodes {
				t.Logf("edge node %d out of range: %d", i, v)
				return false
			}
		}
		for i, v := range m.EdgeCells {
			if v < 0 || int(v) >= m.NCells {
				t.Logf("edge cell %d out of range: %d", i, v)
				return false
			}
		}
		for i, v := range m.CellNodes {
			if v < 0 || int(v) >= m.NNodes {
				t.Logf("cell node %d out of range: %d", i, v)
				return false
			}
		}
		// Interior edge cell-adjacency count: every cell is adjacent to 4 edges.
		cnt := make([]int, m.NCells)
		for e := 0; e < m.NEdges; e++ {
			a, b := m.EdgeCells[2*e], m.EdgeCells[2*e+1]
			cnt[a]++
			if b != a {
				cnt[b]++
			}
		}
		for c, n := range cnt {
			if n != 4 {
				t.Logf("cell %d has %d adjacent edges, want 4", c, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuad2DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dimensions")
		}
	}()
	NewQuad2D(0, 3)
}

func checkFV3D(t *testing.T, m *FV3D, periodic bool) {
	t.Helper()
	ni, nj, nk := m.NI, m.NJ, m.NK
	if m.NNodes != ni*nj*nk {
		t.Fatalf("NNodes = %d, want %d", m.NNodes, ni*nj*nk)
	}
	wantEdges := 3*ni*nj*nk - nj*nk - ni*nk - ni*nj
	if m.NEdges != wantEdges {
		t.Fatalf("NEdges = %d, want %d", m.NEdges, wantEdges)
	}
	if len(m.EdgeNodes) != 2*m.NEdges || len(m.EdgeWeights) != 3*m.NEdges {
		t.Fatal("edge array lengths inconsistent")
	}
	if len(m.Coords) != 3*m.NNodes || len(m.Volumes) != m.NNodes {
		t.Fatal("node array lengths inconsistent")
	}
	for _, v := range m.Volumes {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("non-positive volume %g", v)
		}
	}
	for e := 0; e < m.NEdges; e++ {
		a, b := m.EdgeNodes[2*e], m.EdgeNodes[2*e+1]
		if a == b || a < 0 || b < 0 || int(a) >= m.NNodes || int(b) >= m.NNodes {
			t.Fatalf("edge %d bad endpoints %d,%d", e, a, b)
		}
	}
	wantB := 2*nj*nk + 2*ni*nk
	if !periodic {
		wantB += 2 * ni * nj
	}
	if m.NBedges != wantB {
		t.Fatalf("NBedges = %d, want %d", m.NBedges, wantB)
	}
	if len(m.BedgeNodes) != m.NBedges || len(m.BedgeWeights) != 3*m.NBedges ||
		len(m.BedgeGroups) != m.NBedges {
		t.Fatal("bedge array lengths inconsistent")
	}
	if periodic {
		if m.NPedges != ni*nj {
			t.Fatalf("NPedges = %d, want %d", m.NPedges, ni*nj)
		}
		for p := 0; p < m.NPedges; p++ {
			a, b := m.PedgeNodes[2*p], m.PedgeNodes[2*p+1]
			if a == b {
				t.Fatalf("pedge %d pairs node with itself", p)
			}
			// Periodic partners share axial and radial position => same x.
			if math.Abs(m.Coords[3*a]-m.Coords[3*b]) > 1e-12 {
				t.Fatalf("pedge %d partners differ in x", p)
			}
		}
	} else if m.NPedges != 0 {
		t.Fatalf("box mesh has %d pedges, want 0", m.NPedges)
	}
	if m.NCbnd < 1 || m.NCbnd > m.NBedges+m.NNodes {
		t.Fatalf("NCbnd = %d out of range", m.NCbnd)
	}
}

func TestBox(t *testing.T)   { checkFV3D(t, Box(4, 3, 5), false) }
func TestRotor(t *testing.T) { checkFV3D(t, Rotor(6, 5, 4), true) }

func TestRotorForNodes(t *testing.T) {
	for _, n := range []int{100, 5000, 60000} {
		m := RotorForNodes(n)
		got := m.NNodes
		if got < n/3 || got > n*3 {
			t.Errorf("RotorForNodes(%d) produced %d nodes (off by >3x)", n, got)
		}
		checkFV3D(t, m, true)
	}
	if m := RotorForNodes(0); m.NNodes < 8 {
		t.Errorf("tiny request produced %d nodes", m.NNodes)
	}
}

func TestFV3DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too-small dimensions")
		}
	}()
	Box(1, 4, 4)
}

func TestNodeAdjacencySymmetric(t *testing.T) {
	m := Rotor(5, 4, 4)
	adj := m.NodeAdjacency()
	if len(adj) != m.NNodes {
		t.Fatalf("len(adj) = %d, want %d", len(adj), m.NNodes)
	}
	deg := 0
	for n := range adj {
		deg += len(adj[n])
		for _, o := range adj[n] {
			found := false
			for _, back := range adj[o] {
				if int(back) == n {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", n, o)
			}
		}
	}
	if deg != 2*(m.NEdges+m.NPedges) {
		t.Fatalf("total degree %d, want %d", deg, 2*(m.NEdges+m.NPedges))
	}
}

func TestHierarchy(t *testing.T) {
	fine := Rotor(16, 12, 12)
	h := NewHierarchy(fine, 3, true)
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(h.Levels))
	}
	if len(h.FineToCoarse) != 2 {
		t.Fatalf("maps = %d, want 2", len(h.FineToCoarse))
	}
	for l := 0; l < len(h.FineToCoarse); l++ {
		f, c := h.Levels[l], h.Levels[l+1]
		if len(h.FineToCoarse[l]) != f.NNodes {
			t.Fatalf("level %d map has %d entries, want %d", l, len(h.FineToCoarse[l]), f.NNodes)
		}
		seen := make([]bool, c.NNodes)
		for _, v := range h.FineToCoarse[l] {
			if v < 0 || int(v) >= c.NNodes {
				t.Fatalf("level %d map value %d out of range", l, v)
			}
			seen[v] = true
		}
		for n, s := range seen {
			if !s {
				t.Fatalf("coarse node %d at level %d unreferenced (restriction would lose it)", n, l+1)
			}
		}
		if c.NNodes >= f.NNodes {
			t.Fatalf("level %d did not coarsen: %d -> %d nodes", l, f.NNodes, c.NNodes)
		}
	}
}

func TestHierarchyStopsEarly(t *testing.T) {
	h := NewHierarchy(Rotor(2, 2, 3), 5, true)
	if len(h.Levels) != 1 {
		t.Fatalf("tiny mesh coarsened to %d levels, want 1", len(h.Levels))
	}
}
