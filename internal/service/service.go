package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/supervise"
)

// Config sizes a Service.
type Config struct {
	// Workers is the executor pool size: each worker stands in for a
	// cluster node hosting one simulated run at a time. Default 2.
	Workers int
	// QueueCap bounds jobs awaiting placement; admissions beyond it are
	// shed with an OverloadError. Requeues (preemption, supervised
	// restart) are exempt — an admitted job is never shed. Default 8.
	QueueCap int
	// TenantCap bounds one tenant's share of the queue. Default QueueCap.
	TenantCap int
	// DataDir holds the per-job checkpoint rings. Default: a fresh
	// temporary directory, removed on Close.
	DataDir string
	// Keep is the ring generations retained per job. Default 3.
	Keep int
}

const defaultKeep = 3

// Sentinel and typed errors the HTTP layer maps onto status codes.
var (
	ErrNotFound = errors.New("service: no such job")
	ErrClosed   = errors.New("service: shutting down")
)

// ValidationError marks a rejected job spec (HTTP 400).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return "invalid job spec: " + e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// OverloadError reports admission-control shedding (HTTP 429): the queue
// is full, or the tenant has used up its share of it.
type OverloadError struct {
	Scope      string // "queue" or "tenant"
	Tenant     string
	RetryAfter int // seconds
}

func (e *OverloadError) Error() string {
	if e.Scope == "tenant" {
		return fmt.Sprintf("service: tenant %q queue quota exhausted, retry after %ds", e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("service: admission queue full, retry after %ds", e.RetryAfter)
}

// NotReadyError reports a result request for a job with no result: still
// in flight, or terminal without one (failed, cancelled). HTTP 409.
type NotReadyError struct {
	ID    string
	State State
	Cause string
}

func (e *NotReadyError) Error() string {
	msg := fmt.Sprintf("service: job %s has no result (state %s)", e.ID, e.State)
	if e.Cause != "" {
		msg += ": " + e.Cause
	}
	return msg
}

// worker is one executor slot. busy and load are guarded by the service
// mutex; the channel carries at most the one job the dispatcher assigned
// while the worker was idle.
type worker struct {
	name string
	ch   chan *job
	busy *job
	load float64 // virtual seconds of completed attempts
	jobs int     // jobs finished here
}

// Service is the multi-tenant job service over the simulated cluster.
type Service struct {
	cfg     Config
	dataDir string
	ownsDir bool
	wg      sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every job state change
	closed  bool
	nextID  int
	jobs    map[string]*job
	order   []string
	queue   []*job // runnable jobs awaiting placement, FIFO
	workers []*worker

	// Counters for /metrics.
	submitted  map[string]int // accepted, by tenant
	shedQueue  int
	shedTenant int
	nDone      int
	nFailed    int
	nCancelled int
	preempts   int
	restarts   int
}

// New starts a Service: cfg defaults applied, data directory resolved,
// worker pool running.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.TenantCap <= 0 {
		cfg.TenantCap = cfg.QueueCap
	}
	if cfg.Keep <= 0 {
		cfg.Keep = defaultKeep
	}
	s := &Service{
		cfg:       cfg,
		dataDir:   cfg.DataDir,
		jobs:      make(map[string]*job),
		submitted: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.dataDir == "" {
		dir, err := os.MkdirTemp("", "op2ca-service-*")
		if err != nil {
			return nil, err
		}
		s.dataDir, s.ownsDir = dir, true
	} else if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{name: fmt.Sprintf("w%02d", i), ch: make(chan *job, 1)}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.workerLoop(w)
	}
	return s, nil
}

// Submit admits a job. Spec errors return a *ValidationError; a full
// queue or an exhausted tenant quota returns an *OverloadError with a
// retry hint; otherwise the job is queued and its view returned.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	w, err := spec.Validate()
	if err != nil {
		return JobView{}, &ValidationError{Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.shedQueue++
		return JobView{}, &OverloadError{Scope: "queue", Tenant: w.spec.Tenant, RetryAfter: s.retryAfterLocked()}
	}
	queued := 0
	for _, q := range s.queue {
		if q.w.spec.Tenant == w.spec.Tenant {
			queued++
		}
	}
	if queued >= s.cfg.TenantCap {
		s.shedTenant++
		return JobView{}, &OverloadError{Scope: "tenant", Tenant: w.spec.Tenant, RetryAfter: s.retryAfterLocked()}
	}

	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	ring, err := checkpoint.NewRing(checkpoint.Spec{
		Every: w.spec.CheckpointEvery, Path: filepath.Join(s.dataDir, id+".ck"), Keep: s.cfg.Keep,
	})
	if err != nil {
		return JobView{}, err
	}
	j := &job{
		id: id, w: w, ring: ring,
		sup:   supervise.NewSupervisor(w.sv, w.plan, ring, nil),
		state: StateQueued, submitted: time.Now(),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	s.submitted[w.spec.Tenant]++
	s.eventLocked(j, StateQueued, "", "accepted")
	s.dispatchLocked()
	return s.viewLocked(j), nil
}

// retryAfterLocked estimates how long a shed client should wait before
// resubmitting: the expected queue drain time, computed from the pool's
// observed throughput. Each worker's load/jobs counters give the mean
// virtual seconds per completed job (1s before anything has finished);
// the queue drains at that rate across all workers. Rounded up, and never
// below the old hardcoded hint of one second.
func (s *Service) retryAfterLocked() int {
	var load float64
	var jobs int
	for _, w := range s.workers {
		load += w.load
		jobs += w.jobs
	}
	perJob := 1.0
	if jobs > 0 {
		perJob = load / float64(jobs)
	}
	drain := perJob * float64(len(s.queue)) / float64(len(s.workers))
	after := int(math.Ceil(drain))
	if after < 1 {
		after = 1
	}
	return after
}

// Get returns a job's status view.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobView{}, ErrNotFound
	}
	return s.viewLocked(j), nil
}

// List returns every job's view in submission order, optionally filtered
// by tenant ("" = all).
func (s *Service) List(tenant string) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobView
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant == "" || j.w.spec.Tenant == tenant {
			out = append(out, s.viewLocked(j))
		}
	}
	return out
}

// Result returns a done job's committed result; a *NotReadyError
// otherwise.
func (s *Service) Result(id string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	if j.result == nil {
		return nil, &NotReadyError{ID: id, State: j.state, Cause: j.errMsg}
	}
	return j.result, nil
}

// Cancel requests cancellation: a queued job cancels immediately, a
// running one at its next exchange boundary (the worker observes the
// cooperative flag and abandons the attempt). Idempotent; cancelling a
// terminal job is a no-op returning its final view.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobView{}, ErrNotFound
	}
	if !j.state.Terminal() && !j.cancelled {
		j.cancelled = true
		switch j.state {
		case StateQueued, StatePreempted:
			s.unqueueLocked(j)
			s.finishLocked(j, StateCancelled, "cancelled while queued")
		case StateRunning:
			s.eventLocked(j, StateRunning, j.worker, "cancel requested")
			if j.backend != nil {
				j.backend.Cancel()
			}
		}
		s.dispatchLocked()
	}
	return s.viewLocked(j), nil
}

// Preempt asks the job to vacate its worker at the next exchange
// boundary and requeue for a different one, resuming from its newest
// ring generation; the supervise budget is not charged. Preempting a
// queued job marks the intent — the first attempt yields immediately,
// which still forces a worker migration. No-op on terminal jobs.
func (s *Service) Preempt(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobView{}, ErrNotFound
	}
	if !j.state.Terminal() && !j.cancelled && !j.preempt {
		j.preempt = true
		s.eventLocked(j, j.state, j.worker, "preempt requested")
		if j.state == StateRunning && j.backend != nil {
			j.backend.Cancel()
		}
	}
	return s.viewLocked(j), nil
}

// Events returns the job's lifecycle events after index `after`,
// blocking until new ones exist, the job is terminal, the service
// closes, or ctx is done.  terminal=true means the stream is complete.
func (s *Service) Events(ctx context.Context, id string, after int) (evs []Event, terminal bool, err error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		j := s.jobs[id]
		if j == nil {
			return nil, false, ErrNotFound
		}
		if after > len(j.events) {
			after = len(j.events)
		}
		if len(j.events) > after || j.state.Terminal() || s.closed {
			return append([]Event(nil), j.events[after:]...), j.state.Terminal() || s.closed, nil
		}
		s.cond.Wait()
	}
}

// Health is the liveness summary.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Jobs    int    `json:"jobs"`
}

// Health reports pool and queue occupancy.
func (s *Service) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Status: "ok", Workers: len(s.workers), Queued: len(s.queue), Jobs: len(s.jobs)}
	if s.closed {
		h.Status = "shutting down"
	}
	for _, w := range s.workers {
		if w.busy != nil {
			h.Running++
		}
	}
	return h
}

// Drain blocks until every admitted job is terminal.
func (s *Service) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		settled := true
		for _, j := range s.jobs {
			if !j.state.Terminal() {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		s.cond.Wait()
	}
}

// Close stops the service: queued jobs are cancelled, running attempts
// are cancelled cooperatively and their jobs marked cancelled, workers
// exit once their current attempt unwinds. Blocks until the pool is
// down. A service-owned data directory is removed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, j := range s.queue {
		j.cancelled = true
		s.finishLocked(j, StateCancelled, "service shutting down")
	}
	s.queue = nil
	for _, w := range s.workers {
		if w.busy != nil {
			w.busy.cancelled = true
			if w.busy.backend != nil {
				w.busy.backend.Cancel()
			}
		}
		close(w.ch)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.ownsDir {
		os.RemoveAll(s.dataDir)
	}
}

// dispatchLocked pairs runnable jobs with idle workers, least-loaded
// first, until one side runs dry. A job that has already run somewhere
// is never placed back on that worker while the pool has alternatives:
// preemption and crash recovery must migrate.
func (s *Service) dispatchLocked() {
	if s.closed {
		return
	}
	for {
		placed := false
		for _, j := range s.queue {
			w := s.placeLocked(j)
			if w == nil {
				continue // every idle worker is this job's excluded one
			}
			s.unqueueLocked(j)
			j.state = StateRunning
			j.worker = w.name
			j.attempts++
			if len(j.workers) == 0 || j.workers[len(j.workers)-1] != w.name {
				j.workers = append(j.workers, w.name)
			}
			s.eventLocked(j, StateRunning, w.name, fmt.Sprintf("attempt %d", j.attempts))
			w.busy = j
			w.ch <- j // cap-1 buffer, worker idle: never blocks
			placed = true
			break
		}
		if !placed {
			return
		}
	}
}

// placeLocked picks the least-loaded idle worker for j, excluding the
// worker j last ran on whenever the pool has more than one worker — even
// if that means waiting for a busy alternative to free up.
func (s *Service) placeLocked(j *job) *worker {
	var best *worker
	for _, w := range s.workers {
		if w.busy != nil {
			continue
		}
		if len(s.workers) > 1 && j.worker == w.name && j.attempts > 0 {
			continue
		}
		if best == nil || w.load < best.load {
			best = w
		}
	}
	return best
}

func (s *Service) unqueueLocked(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// requeueLocked puts a preempted or restarting job back in line, unless
// cancellation or shutdown overtook it.
func (s *Service) requeueLocked(j *job, st State, msg string) {
	if s.closed {
		s.finishLocked(j, StateCancelled, "service shutting down")
		return
	}
	if j.cancelled {
		s.finishLocked(j, StateCancelled, "cancelled")
		return
	}
	j.state = st
	s.queue = append(s.queue, j)
	s.eventLocked(j, st, j.worker, msg)
}

// finishLocked commits a terminal state.
func (s *Service) finishLocked(j *job, st State, msg string) {
	j.state = st
	j.errMsg = ""
	if st != StateDone {
		j.errMsg = msg
	}
	j.finished = time.Now()
	s.eventLocked(j, st, j.worker, msg)
	switch st {
	case StateDone:
		s.nDone++
	case StateFailed:
		s.nFailed++
	case StateCancelled:
		s.nCancelled++
	}
	if st != StateFailed {
		// Scrub the ring: the job is settled, its generations are dead
		// weight. Failed jobs keep theirs for post-mortems.
		if gens, err := j.ring.Generations(); err == nil {
			for _, g := range gens {
				os.Remove(g.Path)
			}
		}
	}
}

// eventLocked appends to the job's lifecycle log and wakes every waiter.
func (s *Service) eventLocked(j *job, st State, worker, msg string) {
	j.events = append(j.events, Event{
		Seq: len(j.events), Time: time.Now(), State: st, Worker: worker, Msg: msg,
	})
	s.cond.Broadcast()
}

func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID: j.id, Tenant: j.w.spec.Tenant, App: j.w.spec.App,
		State: j.state, Worker: j.worker,
		Workers:  append([]string(nil), j.workers...),
		Attempts: j.attempts, Preemptions: j.preemptions, Restarts: j.restarts,
		Error: j.errMsg, Submitted: j.submitted,
		Events: append([]Event(nil), j.events...),
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// workerLoop is one executor: take the assigned job, run one attempt,
// settle it, repeat until the channel closes at shutdown.
func (s *Service) workerLoop(w *worker) {
	defer s.wg.Done()
	for j := range w.ch {
		s.runJob(w, j)
	}
}

// runJob executes one attempt of j on w and settles the outcome: done,
// cancelled, preempted (requeue, no budget), supervised restart
// (requeue, budget charged) or failed. The supervisor and ring are
// exclusively ours between dispatch and settlement, so Recover/OnFailure
// run without the service lock.
func (s *Service) runJob(w *worker, j *job) {
	st, err := j.sup.Recover()
	var out attemptOutcome
	if err == nil {
		err = catchRun(func() error {
			var e error
			out, e = j.w.runAttempt(st, j.sup, j.ring, func(b *cluster.Backend) {
				s.mu.Lock()
				j.backend = b
				// An intent that landed before the backend existed takes
				// effect at the attempt's first exchange boundary.
				if j.cancelled || j.preempt {
					b.Cancel()
				}
				s.mu.Unlock()
			})
			return e
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.backend = nil
	w.busy = nil
	j.restarts = j.sup.Restarts()

	var ce *cluster.CancelledError
	switch {
	case err == nil:
		w.load += out.maxClock
		w.jobs++
		j.sup.Finish(out.stats)
		j.restarts = j.sup.Restarts()
		j.result = newResult(j.id, j.w, out, j.sup, j.attempts, j.preemptions, j.workers)
		s.finishLocked(j, StateDone, fmt.Sprintf("checksum %s", out.checksum))
	case errors.As(err, &ce) && j.cancelled:
		s.finishLocked(j, StateCancelled, err.Error())
	case errors.As(err, &ce):
		// Preemption: the ring keeps the pre-cancel generations, so the
		// next attempt resumes where the last snapshot left off — on a
		// different worker, and with no supervise budget charged.
		j.preempt = false
		j.preemptions++
		s.preempts++
		s.requeueLocked(j, StatePreempted, err.Error())
	default:
		if ferr := j.sup.OnFailure(err); ferr != nil {
			s.finishLocked(j, StateFailed, ferr.Error())
		} else {
			s.restarts++
			s.requeueLocked(j, StateQueued, "supervised restart: "+err.Error())
		}
	}
	s.dispatchLocked()
}
