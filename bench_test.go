package op2ca

import (
	"testing"

	"op2ca/internal/bench"
	"op2ca/internal/halo"
	"op2ca/internal/hydra"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/partition"
)

// benchConfig sizes the paper-experiment benchmarks for testing.B: small
// meshes, paper-shaped rank scaling. For full-scale reproductions run
// cmd/op2ca-bench.
func benchConfig() bench.Config {
	return bench.Config{Nodes8M: 8000, Nodes24M: 24000, RankScale: 0.004, Iters: 1, Parallel: true}
}

// Paper-experiment benchmarks: one per table and figure of the evaluation.

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(benchConfig())
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(benchConfig())
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(benchConfig())
	}
}

func BenchmarkTable3and4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3and4(benchConfig())
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig12(benchConfig())
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig13(benchConfig())
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5(benchConfig())
	}
}

// Component microbenchmarks.

func BenchmarkMeshRotor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mesh.RotorForNodes(20000)
	}
}

func BenchmarkPartitionKWay(b *testing.B) {
	m := mesh.RotorForNodes(20000)
	adj := m.NodeAdjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.KWay(adj, 16)
	}
}

func BenchmarkPartitionRIB(b *testing.B) {
	m := mesh.RotorForNodes(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.RIB(m.Coords, 3, 16)
	}
}

func BenchmarkHaloBuildDepth1(b *testing.B) { benchHaloBuild(b, 1) }
func BenchmarkHaloBuildDepth2(b *testing.B) { benchHaloBuild(b, 2) }
func BenchmarkHaloBuildDepth4(b *testing.B) { benchHaloBuild(b, 4) }

func benchHaloBuild(b *testing.B, depth int) {
	m := mesh.RotorForNodes(20000)
	app := hydra.New(m)
	assign := partition.RIB(m.Coords, 3, 16)
	owners, err := halo.DeriveOwnership(app.Prog, app.Nodes, assign)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		halo.Build(app.Prog, owners, 16, depth, 6)
	}
}

func BenchmarkSeqParLoop(b *testing.B) {
	m := mesh.RotorForNodes(20000)
	h := mesh.NewHierarchy(m, 1, true)
	app := mgcfd.New(h)
	seq := NewSeq()
	app.Init(seq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Sweep(seq, app.Levels[0])
	}
}

func benchClusterIteration(b *testing.B, ca bool) {
	m := mesh.RotorForNodes(20000)
	h := mesh.NewHierarchy(m, 1, true)
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	cb, err := NewCluster(ClusterConfig{
		Prog: app.Prog, Primary: app.Primary,
		Assign: partition.KWay(m.NodeAdjacency(), 8), NParts: 8,
		Depth: 2, MaxChainLen: 8, CA: ca, Parallel: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	app.Init(cb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn.Run(cb, 4, ca)
	}
}

func BenchmarkClusterChainOP2(b *testing.B) { benchClusterIteration(b, false) }
func BenchmarkClusterChainCA(b *testing.B)  { benchClusterIteration(b, true) }

// benchPlanCache measures the inspect-once/execute-many plan cache: the
// same CA chain executed many times over a small, rank-heavy decomposition
// where inspection and exchange-buffer churn dominate. With the cache on,
// steady-state executions skip ca.Inspect and reuse precomputed pack/unpack
// schedules and buffers, so allocs/op in the exchange path drop to ~zero.
func benchPlanCache(b *testing.B, noCache bool) {
	m := mesh.RotorForNodes(3000)
	h := mesh.NewHierarchy(m, 1, true)
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	cb, err := NewCluster(ClusterConfig{
		Prog: app.Prog, Primary: app.Primary,
		Assign: partition.KWay(m.NodeAdjacency(), 16), NParts: 16,
		Depth: 2, MaxChainLen: 8, CA: true, NoPlanCache: noCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	app.Init(cb)
	syn.Run(cb, 4, true) // warm: inspection + schedule build on first executions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 10 chained executions per op: the steady state the cache targets.
		for j := 0; j < 10; j++ {
			syn.Run(cb, 1, true)
		}
	}
}

func BenchmarkChainExecCached(b *testing.B)   { benchPlanCache(b, false) }
func BenchmarkChainExecUncached(b *testing.B) { benchPlanCache(b, true) }

// BenchmarkChainExecParallel measures wall-clock scaling of the persistent
// worker-pool rank executor: the same cached-plan CA chain workload as
// BenchmarkChainExecCached, but compute-sized and built with Parallel on,
// so `-cpu 1,4,8` sweeps the pool width (the backend sizes its pool from
// GOMAXPROCS at construction, which -cpu sets per variant). The -cpu 1
// variant dispatches serially; the ratio of its ns/op to a wider variant's
// is the host-parallel speedup CI gates on.
func BenchmarkChainExecParallel(b *testing.B) {
	m := mesh.RotorForNodes(20000)
	h := mesh.NewHierarchy(m, 1, true)
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	cb, err := NewCluster(ClusterConfig{
		Prog: app.Prog, Primary: app.Primary,
		Assign: partition.KWay(m.NodeAdjacency(), 16), NParts: 16,
		Depth: 2, MaxChainLen: 8, CA: true, Parallel: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cb.Close()
	app.Init(cb)
	syn.Run(cb, 4, true) // warm: inspection + schedule build on first executions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn.Run(cb, 4, true)
	}
}

func BenchmarkHydraIterationCA(b *testing.B) {
	m := mesh.RotorForNodes(20000)
	app := hydra.New(m)
	cb, err := NewCluster(ClusterConfig{
		Prog: app.Prog, Primary: app.Nodes,
		Assign: partition.RIB(m.Coords, 3, 8), NParts: 8,
		Depth: 2, MaxChainLen: 6, CA: true,
		Chains: hydra.MustPaperConfig(), Parallel: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	app.RunSetup(cb, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.RunIteration(cb, true)
	}
}
