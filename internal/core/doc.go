// Package core implements the OP2-style domain-specific abstraction for
// unstructured-mesh computations: sets of mesh elements, explicit
// connectivity maps between sets, data declared on sets, and parallel loops
// over sets described by access descriptors.
//
// The abstraction follows Mudalige et al., "OP2: An active library framework
// for solving unstructured mesh-based applications on multi-core and
// many-core architectures" (InPar 2012), as used by the communication-
// avoiding back-end of Ekanayake et al. (ICPP 2023).
//
// A Program collects declarations (the analogue of op_decl_set, op_decl_map,
// op_decl_dat). Computation is expressed as Loops (op_par_loop) executed
// through a Backend. Package core provides the sequential reference backend;
// package cluster provides the distributed-memory backend with standard
// per-loop halo exchanges; package ca provides the communication-avoiding
// loop-chain backend.
package core
