package netsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMessageTime(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9}
	if got := n.MessageTime(1000); !almost(got, 1e-6+1e-6) {
		t.Errorf("MessageTime(1000) = %g, want 2e-6", got)
	}
	if got := n.MessageTime(0); !almost(got, 1e-6) {
		t.Errorf("MessageTime(0) = %g, want latency only", got)
	}
}

func TestDeliverSerialisesPerSender(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	post := []float64{10, 20}
	msgs := []Message{
		{From: 0, To: 1, Bytes: 2}, // 10 + (1+2) = 13
		{From: 0, To: 1, Bytes: 3}, // 13 + (1+3) = 17
		{From: 1, To: 0, Bytes: 1}, // 20 + (1+1) = 22
	}
	arr := n.Deliver(post, msgs)
	want := []float64{13, 17, 22}
	for i := range want {
		if !almost(arr[i], want[i]) {
			t.Errorf("arrival[%d] = %g, want %g", i, arr[i], want[i])
		}
	}
}

func TestEagerRendezvousThreshold(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 1024}
	small := n.MessageTime(1024) // at the threshold: still eager
	large := n.MessageTime(1025) // one byte over: rendezvous round trip
	if diff := large - small; diff < 2*n.Latency {
		t.Errorf("rendezvous penalty = %g, want >= 2L", diff)
	}
	// Disabled threshold: no penalty anywhere.
	n.EagerThreshold = 0
	if n.MessageTime(1<<20) != n.Latency+float64(1<<20)/n.Bandwidth {
		t.Error("disabled threshold must not add penalties")
	}
}

// TestEagerBoundaryExact pins the protocol-switch boundary: a message of
// exactly EagerThreshold bytes is still eager (no handshake); one byte
// more pays the full rendezvous surcharge. The boundary held historically
// but was untested, leaving it one refactor away from silently inverting.
func TestEagerBoundaryExact(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 1024}
	if hs := n.HandshakeTime(1024); hs != 0 {
		t.Errorf("HandshakeTime(threshold) = %g, want 0 (eager)", hs)
	}
	if hs := n.HandshakeTime(1025); !almost(hs, 2*n.Latency) {
		t.Errorf("HandshakeTime(threshold+1) = %g, want 2L", hs)
	}
	if hs := n.HandshakeTime(0); hs != 0 {
		t.Errorf("HandshakeTime(0) = %g, want 0", hs)
	}
}

// TestHandshakeResolution pins the Handshake field's semantics: zero
// defaults to 2*Latency (the historical hardcoded round trip), an
// explicit value replaces the default, and Validate rejects nonsense.
// The machine presets and the model.Net pricing both lean on this.
func TestHandshakeResolution(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 100}
	if hs := n.HandshakeTime(200); !almost(hs, 2e-6) {
		t.Errorf("default handshake = %g, want 2*Latency", hs)
	}
	n.Handshake = 5e-6
	if hs := n.HandshakeTime(200); !almost(hs, 5e-6) {
		t.Errorf("explicit handshake = %g, want 5e-6", hs)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		b := Network{Latency: 1e-6, Bandwidth: 1e9, Handshake: bad}
		if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "Handshake") {
			t.Errorf("Validate(Handshake=%g) = %v, want Handshake error", bad, err)
		}
	}
}

// TestDeliverOverlappedSingleMatchesBulk: a sender's first message prices
// identically in both modes — max(NIC free, post+handshake) + m/B + L
// collapses to post + handshake + m/B + L — equal up to floating-point
// summation order, so single-message exchanges cost the same and the
// overlap executor stays backward compatible.
func TestDeliverOverlappedSingleMatchesBulk(t *testing.T) {
	n := &Network{Latency: 3e-6, Bandwidth: 1e8, EagerThreshold: 512}
	post := []float64{1.5, 2.25, 0.125}
	for _, bytes := range []int64{0, 100, 512, 513, 1 << 16} {
		msgs := []Message{{From: 0, To: 1, Bytes: bytes}, {From: 1, To: 2, Bytes: bytes}, {From: 2, To: 0, Bytes: bytes}}
		bulk := n.Deliver(post, msgs)
		ov := n.DeliverOverlapped(post, msgs)
		for i := range bulk {
			if !almost(bulk[i], ov[i]) {
				t.Errorf("bytes=%d msg %d: bulk %v != overlapped %v", bytes, i, bulk[i], ov[i])
			}
		}
	}
}

// TestDeliverOverlappedPipelines: k messages from one sender save exactly
// (k-1) latencies (and handshakes, above the eager threshold) relative to
// bulk delivery — the serial fraction the pipeline hides.
func TestDeliverOverlappedPipelines(t *testing.T) {
	n := &Network{Latency: 2, Bandwidth: 1, EagerThreshold: 4}
	post := []float64{10, 0}
	msgs := []Message{
		{From: 0, To: 1, Bytes: 8}, // rendezvous: 4 handshake applies
		{From: 0, To: 1, Bytes: 8},
		{From: 0, To: 1, Bytes: 8},
	}
	// Bulk: each message costs L + m/B + 2L = 2+8+4 = 14; arrivals 24, 38, 52.
	// Overlapped: handshake (start 10, done 14) then 8s injections back to
	// back — ends 22, 30, 38 — plus L: arrivals 24, 32, 40.
	bulk := n.Deliver(post, msgs)
	ov := n.DeliverOverlapped(post, msgs)
	wantBulk := []float64{24, 38, 52}
	wantOv := []float64{24, 32, 40}
	for i := range msgs {
		if !almost(bulk[i], wantBulk[i]) || !almost(ov[i], wantOv[i]) {
			t.Errorf("msg %d: bulk %g (want %g), overlapped %g (want %g)",
				i, bulk[i], wantBulk[i], ov[i], wantOv[i])
		}
	}
	// Last arrival saves (k-1)*(L + handshake) = 2*(2+4) = 12.
	if diff := bulk[2] - ov[2]; !almost(diff, 12) {
		t.Errorf("pipeline saving = %g, want 12", diff)
	}
}

// Property: overlapped arrivals never beat post + handshake + m/B + L for
// their own message, never exceed the bulk arrivals, and stay monotone
// (non-strictly: zero-byte messages inject nothing) per sender.
func TestDeliverOverlappedProperty(t *testing.T) {
	n := &Network{Latency: 2e-6, Bandwidth: 5e8, EagerThreshold: 4096}
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		post := []float64{1.0}
		msgs := make([]Message, len(sizes))
		for i, s := range sizes {
			msgs[i] = Message{From: 0, To: 0, Bytes: int64(s)}
		}
		bulk := n.Deliver(post, msgs)
		ov := n.DeliverOverlapped(post, msgs)
		prev := 0.0
		for i, a := range ov {
			floor := post[0] + n.HandshakeTime(msgs[i].Bytes) + float64(msgs[i].Bytes)/n.Bandwidth + n.Latency
			if a < floor-1e-12 || a > bulk[i]+1e-12 || a < prev-1e-12 {
				t.Logf("arrival %d = %g: floor %g, bulk %g, prev %g", i, a, floor, bulk[i], prev)
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeliverOverlappedPanicsOnBadRank(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid sender")
		}
	}()
	n.DeliverOverlapped([]float64{0}, []Message{{From: 5, To: 0, Bytes: 1}})
}

func TestWaitAll(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	ready := []float64{5, 30}
	msgs := []Message{{From: 0, To: 1, Bytes: 1}, {From: 1, To: 0, Bytes: 1}}
	arr := []float64{12, 40}
	done := n.WaitAll(ready, msgs, arr)
	if !almost(done[0], 40) || !almost(done[1], 30) {
		t.Errorf("done = %v, want [40 30]", done)
	}
}

// TestValidate: zero/negative Bandwidth used to yield Inf/negative
// MessageTime and negative Latency/EagerThreshold were silently accepted;
// all four must now be rejected with a clear error.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		n    Network
		want string
	}{
		{"zero bandwidth", Network{Latency: 1e-6}, "Bandwidth"},
		{"negative bandwidth", Network{Latency: 1e-6, Bandwidth: -1}, "Bandwidth"},
		{"inf bandwidth", Network{Latency: 1e-6, Bandwidth: math.Inf(1)}, "Bandwidth"},
		{"nan bandwidth", Network{Latency: 1e-6, Bandwidth: math.NaN()}, "Bandwidth"},
		{"negative latency", Network{Latency: -1e-6, Bandwidth: 1e9}, "Latency"},
		{"nan latency", Network{Latency: math.NaN(), Bandwidth: 1e9}, "Latency"},
		{"negative eager", Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: -1}, "EagerThreshold"},
	}
	for _, tc := range cases {
		err := tc.n.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.n)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
	good := []Network{
		{Latency: 0, Bandwidth: 1},
		{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 65536},
	}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate rejected valid %+v: %v", n, err)
		}
	}
}

// TestDeliverRejectsInvalidNetwork: the first exchange through a
// misconfigured network must fail loudly, not hand out Inf arrival times.
func TestDeliverRejectsInvalidNetwork(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 0}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Bandwidth") {
			t.Fatalf("panic %v does not name Bandwidth", r)
		}
	}()
	n.Deliver([]float64{0}, []Message{{From: 0, To: 0, Bytes: 8}})
}

func TestDeliverPanicsOnBadRank(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid sender")
		}
	}()
	n.Deliver([]float64{0}, []Message{{From: 5, To: 0, Bytes: 1}})
}

func TestReduceTime(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1e9}
	if n.ReduceTime(1, 100) != 0 {
		t.Error("single rank reduce should be free")
	}
	t2 := n.ReduceTime(2, 8)
	t8 := n.ReduceTime(8, 8)
	t9 := n.ReduceTime(9, 8)
	if !(t2 < t8 && t8 < t9) {
		t.Errorf("reduce times not increasing: %g %g %g", t2, t8, t9)
	}
	if steps := t8 / n.MessageTime(8); !almost(steps, 3) {
		t.Errorf("8-rank reduce = %g steps, want 3", steps)
	}
}

// Property: arrivals never precede post time plus one latency, and are
// monotone in per-sender order.
func TestDeliverProperty(t *testing.T) {
	n := &Network{Latency: 2e-6, Bandwidth: 5e8}
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		post := []float64{1.0}
		msgs := make([]Message, len(sizes))
		for i, s := range sizes {
			msgs[i] = Message{From: 0, To: 0, Bytes: int64(s)}
		}
		arr := n.Deliver(post, msgs)
		prev := post[0]
		for i, a := range arr {
			if a < post[0]+n.Latency || a <= prev {
				t.Logf("arrival %d = %g not serialised", i, a)
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
