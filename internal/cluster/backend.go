package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync/atomic"

	"op2ca/internal/autotune"
	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/halo"
	"op2ca/internal/machine"
	"op2ca/internal/model"
	"op2ca/internal/netsim"
	"op2ca/internal/obs"
)

// Config configures a distributed back-end.
type Config struct {
	// Prog is the program (global mesh and data) to distribute.
	Prog *core.Program
	// Primary is the partitioned set; Assign maps its elements to ranks.
	Primary *core.Set
	Assign  []int32
	// NParts is the number of ranks.
	NParts int
	// Depth is the number of halo shells to build; it must cover the
	// largest halo extension of any chain executed with CA. Default 1.
	Depth int
	// MaxChainLen is the longest CA chain to support (core prefixes are
	// precomputed per chain position). Default 8.
	MaxChainLen int
	// Machine parameterises the virtual-time cost model. Default Laptop.
	Machine *machine.Machine
	// CA enables Algorithm 2 for demarcated chains; when false, chains
	// fall back to per-loop execution (the paper's baseline OP2).
	CA bool
	// Chains optionally configures per-chain halo extensions and
	// disables (the paper's Section 3.4 configuration file).
	Chains *chaincfg.Config
	// Parallel executes ranks on multiple OS threads. Results are
	// identical; only host wall time changes.
	Parallel bool
	// NoGroupedMsgs makes CA chains exchange one message per dat and
	// halo kind instead of one grouped message per neighbour (Figure 8
	// disabled). An ablation knob: isolates the message-count reduction
	// from the per-loop-exchange elimination.
	NoGroupedMsgs bool
	// Overlap switches CA chain exchanges to the overlap-capable
	// task-graph executor (see taskgraph.go): delivery splits into post
	// and complete halves, so message latencies and rendezvous handshakes
	// pipeline behind payload injection instead of serialising on the
	// sender's NIC, and the receiver's wait is charged only for the
	// fraction of L + m/B its core computation does not hide. Data
	// effects are untouched — results stay bitwise identical to
	// bulk-synchronous execution; only virtual time changes. Individual
	// chains opt in via the configuration file's "overlap" flag even when
	// this is false. Per-loop (OP2) exchanges always run
	// bulk-synchronous: they are the probe/calibration baseline, and
	// their per-dat eager messages have little pipeline to exploit.
	Overlap bool
	// GPUDirect transfers halos GPU-to-GPU without PCIe staging, but —
	// as the paper observed on Cirrus (Section 3.3) — the transfers do
	// not overlap with compute kernels, so core computation no longer
	// hides communication. Only meaningful on GPU machines.
	GPUDirect bool
	// Tracer, when non-nil, records typed spans (compute, pack, send,
	// wait, unpack, redundant, reduce, stage) on per-rank virtual-time
	// tracks as loops execute; see package obs for the exporters. A nil
	// tracer disables tracing at near-zero cost, and tracing never feeds
	// back into the virtual-time arithmetic: traced and untraced runs
	// produce bit-identical clocks and results.
	Tracer *obs.Tracer
	// Lazy defers loop execution and auto-detects chains at runtime (the
	// paper's stated future work: code-gen automation via lazy
	// evaluation). Loops queue until a synchronisation point — a global
	// reduction, an observation (GatherDat, MaxClock, Stats), an explicit
	// chain boundary, or MaxChainLen loops — then execute as a CA chain
	// when feasible, falling back to per-loop execution otherwise.
	// Requires CA.
	Lazy bool
	// NoPlanCache disables the inspect-once/execute-many execution-plan
	// cache: every chain execution re-runs ca.Inspect and rebuilds its
	// pack/unpack schedules from the halo layouts. An ablation and
	// debugging knob — cached and uncached execution are bit-identical.
	NoPlanCache bool
	// Faults, when non-nil, injects deterministic message faults (drops,
	// corruption, delays, stragglers) into every exchange. Lost and
	// corrupt messages are retransmitted with timeout plus exponential
	// backoff, charged in virtual time; a grouped CA exchange that
	// exhausts MaxRetries degrades (grouped -> per-dat messages ->
	// per-loop OP2 execution) instead of failing. Fault injection never
	// touches the simulated data: results stay bit-identical to the
	// fault-free run, only clocks, stats and fault counters differ.
	Faults *faults.Plan
	// MaxRetries bounds retransmissions per message. Zero selects the
	// fault plan's maxretries clause when present, else 4; negative is
	// rejected. Per-chain overrides come from the chain configuration
	// file's maxretries option.
	MaxRetries int
	// RetryTimeout is the virtual-time delay before a lost or corrupt
	// message is detected and retransmission scheduled. Zero defaults to
	// 4x the machine latency.
	RetryTimeout float64
	// RetryBackoff is the base of the exponential retransmission backoff
	// (attempt k waits RetryBackoff * 2^k beyond the timeout). Zero
	// defaults to the machine latency.
	RetryBackoff float64
	// AutoTune hands every eligible chain's execution policy to the
	// model-driven autotuner: calibrate Equations (1)-(4) from measured
	// probe windows, score per-loop OP2 against CA at every feasible halo
	// depth (grouped and ungrouped), run the predicted winner, and re-plan
	// when predictions diverge from measurements. Individual chains opt in
	// via the configuration file's "auto" flag even when this is false.
	// Requires CA. Tuning never changes results — every candidate policy
	// is bit-identical — only virtual time.
	AutoTune bool
	// Tune holds the autotuner knobs (probe window count, re-plan
	// threshold); zero values select defaults.
	Tune autotune.Config
}

// validity tracks how many halo shells of a dat currently hold owner-fresh
// values; 0 means dirty (the paper's dirty-bit generalised to depth).
type validity struct{ exec, nonexec int }

// Backend is the distributed-memory OP2 back-end (standard and CA).
type Backend struct {
	cfg     Config
	net     netsim.Network
	owners  [][]int32
	layouts []*halo.Layout
	// dats[rank][datID] is the rank-local storage of each dat.
	dats   [][][]float64
	valid  []validity
	clock  []float64
	stats  *Stats
	tracer *obs.Tracer
	// epoch is this backend's trace epoch index (see obs.Tracer.NewEpoch);
	// Profile analyses exactly this epoch when a sweep shares one tracer.
	epoch int32

	rec   *recording
	lazyQ []core.Loop

	// tunes holds per-chain autotuner state; tuneSampling points at the
	// chain whose window is currently executing with calibration sampling
	// on (see autotune.go).
	tunes        map[tuneKey]*chainTune
	tuneSampling *chainTune

	// plans is the execution-plan cache: memoised inspection results and
	// exchange schedules, keyed by chain name + structural signature
	// (joined with a NUL so steady-state lookups build the key in scratch
	// bytes without allocating). See plancache.go.
	plans             map[string]*planEntry
	planHits          int64
	planMisses        int64
	planInvalidations int64

	// Fault-recovery state: the per-message retransmission budget and the
	// timeout/backoff charges, resolved from Config at construction, and
	// the exchange sequence number keying deterministic fault decisions.
	maxRetries   int
	retryTimeout float64
	retryBackoff float64
	faultSeq     uint64
	// crashArmed gates the fault plan's crash clauses, one flag per clause
	// in schedule order: all true on a freshly constructed backend, all
	// false after Restore — a restored run resumes from before the crash
	// point and must not die there again (the real-world analogue: the
	// failed node was replaced). A supervisor re-arms the clauses that have
	// not fired yet via ArmCrashes, so later clauses still fire on the
	// resumed run.
	crashArmed []bool
	// watchdog is the no-progress deadline in virtual seconds (0 = off):
	// if the run's maximum virtual clock advances more than this past
	// lastProgress without an exchange completing, deliver panics with a
	// typed *HangError for the supervisor to catch. lastProgress is the
	// max clock at the end of the last completed exchange.
	watchdog     float64
	lastProgress float64
	// cancelled is the cooperative cancellation flag (see Cancel): set from
	// any goroutine, observed by deliver at the next exchange boundary,
	// which panics with a typed *CancelledError. Sticky for the lifetime of
	// the Backend instance — a cancelled run is abandoned, not resumed in
	// place; resumption happens on a fresh Backend via RestoreState.
	cancelled atomic.Bool
	// warmPlans records plan-cache keys restored from a checkpoint whose
	// entries must be rebuilt on first use but accounted as cache hits,
	// so PlanCacheStats continue exactly as in the uninterrupted run.
	warmPlans map[planKey]bool

	// pool is the persistent fork/join executor behind forEachRank, nil
	// in serial mode (or on a single-slot machine); see workerpool.go.
	pool *rankPool
	// wsc is per-worker kernel-call scratch, indexed by the worker id a
	// fork hands to its function; wsc[0] serves serial execution.
	wsc []workerScratch
	// scr is the per-Backend reusable execution scratch: every per-rank
	// phase array, key-building buffer and accounting map the hot paths
	// would otherwise allocate per execution. One fork runs at a time, so
	// a single instance serves both the standard and chain executors.
	scr execScratch
	// recScratch backs ChainBegin/ChainEnd recording without per-chain
	// allocation; rec points at it while a chain is open.
	recScratch recording
	// heCache memoises chaincfg HEOverrides slices per configured chain.
	heCache map[*chaincfg.Chain]heOverrides
	// Prebuilt fork functions: the parameters they need live in scr, so
	// steady-state dispatch creates no closures.
	fnStdRank   func(w, r int)
	fnChainPrep func(w, r int)
	fnChainExec func(w, r int)
}

// workerScratch is the per-worker reusable state of runLoopOnRank: the
// kernel view table and per-argument data/map slices. Each executor owns
// one instance (no sharing, no clearing — every entry read is written
// first by the same call), padded to keep concurrent workers off each
// other's cache lines.
type workerScratch struct {
	views [][]float64
	data  [][]float64
	maps  [][]int32
	_pad  [8]uint64
}

// heOverrides memoises one chain configuration's resolved halo-extension
// overrides for a given loop count.
type heOverrides struct {
	n    int
	over []int
}

// execScratch holds every reusable buffer of the steady-state execution
// paths. Fields are grouped by owner; "std" fields belong to runStandard,
// "chain" fields to runChainImpl. All are sized once (NParts, MaxChainLen)
// and reused, so cached-plan chain execution allocates nothing per
// iteration (asserted by TestChainExecZeroAlloc).
type execScratch struct {
	// runStandard per-rank phase arrays and fork parameters.
	stdCoreEnd    []int
	stdEnd        []int
	stdPost       []float64
	stdRecvLast   []float64
	stdLoop       core.Loop
	stdIndirect   bool
	stdExchanging bool
	stdSendBytes  []int64
	stdGbl        [][][]float64

	// runChainImpl per-rank × per-loop matrices and fork parameters.
	chainCores    [][]int
	chainHalos    [][]int
	chainExecEnds [][]int
	chainNxs      [][]nxRange
	chainPost     []float64
	chainRecvLast []float64
	chainLoops    []core.Loop
	chainHE       []int
	chainHN       []int
	chainExch     bool
	chainSend     []int64

	// Per-chain work vectors (iteration-time table, model parameters).
	g  []float64
	lp []model.LoopParams

	// Stats-accounting maps, cleared per use (clear() frees nothing).
	neigh   map[[2]int32]bool
	perRank map[int32]int

	// Key-building byte buffers: chain signatures, plan-cache keys and
	// schedule fingerprints are built here and looked up via the
	// alloc-free map[string(buf)] form.
	sigBuf []byte
	keyBuf []byte
	fpBuf  []byte

	// Clean-path delivery scratch (the faulted path allocates freely).
	arrivals []float64
	busy     []float64

	// filterNeeds output, aliased by the execution that requested it.
	filtered []exchangeSpec

	// emptyBytes is a permanently all-zero per-rank byte-count slice,
	// aliased by exchanges with nothing to send (callers only read it).
	emptyBytes []int64
}

// recording buffers the loops of an open chain.
type recording struct {
	name  string
	loops []core.Loop
}

// New builds the distributed back-end: derives per-set ownership, constructs
// halo layouts, and scatters every dat into per-rank local storage.
func New(cfg Config) (*Backend, error) {
	if cfg.Prog == nil || cfg.Primary == nil {
		return nil, fmt.Errorf("cluster: Prog and Primary are required")
	}
	if cfg.NParts < 1 {
		return nil, fmt.Errorf("cluster: NParts %d < 1", cfg.NParts)
	}
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("cluster: Depth %d < 0", cfg.Depth)
	}
	if cfg.MaxChainLen < 0 {
		return nil, fmt.Errorf("cluster: MaxChainLen %d < 0", cfg.MaxChainLen)
	}
	if len(cfg.Assign) != cfg.Primary.Size {
		return nil, fmt.Errorf("cluster: %d assignments for primary set %s of size %d",
			len(cfg.Assign), cfg.Primary.Name, cfg.Primary.Size)
	}
	for i, a := range cfg.Assign {
		if a < 0 || int(a) >= cfg.NParts {
			return nil, fmt.Errorf("cluster: Assign[%d] = %d outside [0, %d)", i, a, cfg.NParts)
		}
	}
	if cfg.Lazy && !cfg.CA {
		return nil, fmt.Errorf("cluster: Lazy requires CA (lazy chains execute with Algorithm 2)")
	}
	if cfg.AutoTune && !cfg.CA {
		return nil, fmt.Errorf("cluster: AutoTune requires CA (the tuner picks between per-loop and Algorithm 2 execution)")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("cluster: MaxRetries %d < 0", cfg.MaxRetries)
	}
	if cfg.MaxRetries > maxRetryBudget {
		return nil, fmt.Errorf("cluster: MaxRetries %d > %d (backoff would exceed any useful virtual time)", cfg.MaxRetries, maxRetryBudget)
	}
	if cfg.Faults != nil && cfg.Faults.MaxRetries > maxRetryBudget {
		return nil, fmt.Errorf("cluster: fault plan maxretries %d > %d", cfg.Faults.MaxRetries, maxRetryBudget)
	}
	if cfg.Chains != nil {
		for _, name := range cfg.Chains.Order {
			if c := cfg.Chains.Get(name); c != nil && c.MaxRetries > maxRetryBudget {
				return nil, fmt.Errorf("cluster: chain %s maxretries %d > %d", c.Name, c.MaxRetries, maxRetryBudget)
			}
		}
	}
	if cfg.RetryTimeout < 0 || math.IsNaN(cfg.RetryTimeout) || math.IsInf(cfg.RetryTimeout, 0) {
		return nil, fmt.Errorf("cluster: RetryTimeout %g must be a non-negative, finite time", cfg.RetryTimeout)
	}
	if cfg.RetryBackoff < 0 || math.IsNaN(cfg.RetryBackoff) || math.IsInf(cfg.RetryBackoff, 0) {
		return nil, fmt.Errorf("cluster: RetryBackoff %g must be a non-negative, finite time", cfg.RetryBackoff)
	}
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.MaxChainLen == 0 {
		cfg.MaxChainLen = 8
	}
	if cfg.Machine == nil {
		cfg.Machine = machine.Laptop()
	}
	owners, err := halo.DeriveOwnership(cfg.Prog, cfg.Primary, cfg.Assign)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		cfg: cfg,
		net: netsim.Network{Latency: cfg.Machine.Latency, Bandwidth: cfg.Machine.Bandwidth,
			EagerThreshold: cfg.Machine.EagerThreshold, Handshake: cfg.Machine.Handshake},
		owners:     owners,
		layouts:    halo.Build(cfg.Prog, owners, cfg.NParts, cfg.Depth, cfg.MaxChainLen),
		dats:       make([][][]float64, cfg.NParts),
		valid:      make([]validity, len(cfg.Prog.Dats)),
		clock:      make([]float64, cfg.NParts),
		stats:      newStats(),
		plans:      map[string]*planEntry{},
		tunes:      map[tuneKey]*chainTune{},
		warmPlans:  map[planKey]bool{},
		heCache:    map[*chaincfg.Chain]heOverrides{},
		crashArmed: armAll(len(cfg.Faults.CrashSchedule())),
	}
	b.initScratch()
	workers := 1
	if cfg.Parallel && cfg.NParts > 1 {
		workers = runtime.GOMAXPROCS(0)
		if workers > cfg.NParts {
			workers = cfg.NParts
		}
	}
	b.installPool(workers)
	if err := b.net.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: machine %s: %v", cfg.Machine.Name, err)
	}
	b.maxRetries = cfg.MaxRetries
	if b.maxRetries == 0 {
		if cfg.Faults != nil && cfg.Faults.MaxRetries > 0 {
			b.maxRetries = cfg.Faults.MaxRetries
		} else {
			b.maxRetries = 4
		}
	}
	b.retryTimeout = cfg.RetryTimeout
	if b.retryTimeout == 0 {
		b.retryTimeout = 4 * cfg.Machine.Latency
	}
	b.retryBackoff = cfg.RetryBackoff
	if b.retryBackoff == 0 {
		b.retryBackoff = cfg.Machine.Latency
	}
	for r := range b.dats {
		b.dats[r] = make([][]float64, len(cfg.Prog.Dats))
		for _, d := range cfg.Prog.Dats {
			sl := b.layouts[r].SetL(d.Set)
			local := make([]float64, sl.Total()*d.Dim)
			for loc := 0; loc < sl.Total(); loc++ {
				g := int(sl.L2G[loc])
				copy(local[loc*d.Dim:(loc+1)*d.Dim], d.Data[g*d.Dim:(g+1)*d.Dim])
			}
			b.dats[r][d.ID] = local
		}
	}
	for i := range b.valid {
		b.valid[i] = validity{exec: cfg.Depth, nonexec: cfg.Depth}
	}
	b.tracer = cfg.Tracer
	// Each backend instance opens its own trace epoch: its virtual clock
	// starts at zero, so runs sharing one tracer (benchmark sweeps) must
	// not share a timeline.
	b.epoch = b.tracer.NewEpoch(fmt.Sprintf("%s x%d (%s)", b.Name(), cfg.NParts, cfg.Machine.Name))
	return b, nil
}

// Name implements core.Backend.
func (b *Backend) Name() string {
	if b.cfg.CA {
		return "cluster-ca"
	}
	return "cluster-op2"
}

// Stats returns the instrumentation counters, flushing any lazily queued
// loops first.
func (b *Backend) Stats() *Stats {
	b.FlushLazy()
	return b.stats
}

// Clocks returns the per-rank virtual clocks, flushing any lazily queued
// loops first.
func (b *Backend) Clocks() []float64 {
	b.FlushLazy()
	return b.clock
}

// MaxClock returns the virtual time of the slowest rank, flushing any
// lazily queued loops first.
func (b *Backend) MaxClock() float64 {
	b.FlushLazy()
	return b.maxClock()
}

// armAll builds the initial all-armed crash mask for n schedule clauses.
func armAll(n int) []bool {
	if n == 0 {
		return nil
	}
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// ArmCrashes sets the per-clause crash mask (indexed like the fault plan's
// CrashSchedule). A supervisor uses it after restoring from a snapshot to
// re-arm the clauses that have not fired yet — Restore itself disarms all of
// them, which is correct for manual -restore but would let a multi-crash
// schedule fire only its first clause under supervision. Entries beyond the
// schedule length are ignored; a nil mask disarms everything.
func (b *Backend) ArmCrashes(mask []bool) {
	n := len(b.cfg.Faults.CrashSchedule())
	b.crashArmed = make([]bool, n)
	for i := 0; i < n && i < len(mask); i++ {
		b.crashArmed[i] = mask[i]
	}
}

// ArmedCrashes returns a copy of the per-clause crash mask.
func (b *Backend) ArmedCrashes() []bool {
	out := make([]bool, len(b.crashArmed))
	copy(out, b.crashArmed)
	return out
}

// SetWatchdog sets the no-progress deadline in virtual seconds (0 disables
// it): if the maximum virtual clock advances more than deadline past the end
// of the last completed exchange, the next exchange panics with a typed
// *HangError. The progress marker resets to the current clock, so arming the
// watchdog on a restored backend does not trip it retroactively.
func (b *Backend) SetWatchdog(deadline float64) {
	b.watchdog = deadline
	b.lastProgress = b.maxClock()
}

// maxClock is MaxClock without the lazy flush, for internal accounting.
func (b *Backend) maxClock() float64 {
	m := 0.0
	for _, t := range b.clock {
		if t > m {
			m = t
		}
	}
	return m
}

// NParts returns the rank count.
func (b *Backend) NParts() int { return b.cfg.NParts }

// ChainBegin implements core.Backend: start recording a loop-chain. An
// explicit chain boundary flushes any lazily queued loops first. The
// recording reuses one Backend-owned buffer, so steady-state chain
// re-execution records without allocating.
func (b *Backend) ChainBegin(name string) {
	if b.rec != nil {
		panic(fmt.Sprintf("cluster: nested loop-chain %q inside %q", name, b.rec.name))
	}
	b.FlushLazy()
	b.recScratch.name = name
	b.recScratch.loops = b.recScratch.loops[:0]
	b.rec = &b.recScratch
}

// ChainEnd implements core.Backend: execute the recorded chain, with
// Algorithm 2 when CA is enabled and the chain is not disabled by
// configuration, else as ordinary per-loop OP2 code.
func (b *Backend) ChainEnd() {
	if b.rec == nil {
		panic("cluster: ChainEnd without ChainBegin")
	}
	rec := b.rec
	b.rec = nil

	cs := b.stats.chain(rec.name)
	cs.Executions++
	cs.noteLen(len(rec.loops))

	chainCfg := b.cfg.Chains.Get(rec.name)
	useCA := b.cfg.CA && len(rec.loops) > 1 && (chainCfg == nil || !chainCfg.Disabled)
	if !useCA {
		b.runPerLoop(rec.name, rec.loops, cs, b.maxClock())
		return
	}
	if ct := b.tuneFor(rec.name, rec.loops, chainCfg); ct != nil {
		b.runTuned(ct, rec.name, rec.loops, chainCfg, cs)
		return
	}
	b.runChain(rec.name, rec.loops, chainCfg, cs)
}

// ParLoop implements core.Backend.
func (b *Backend) ParLoop(l core.Loop) {
	if err := l.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	if b.rec != nil {
		if l.HasGlobalReduction() {
			panic(fmt.Sprintf("cluster: loop %q with global reduction inside chain %q",
				l.Kernel.Name, b.rec.name))
		}
		b.rec.loops = append(b.rec.loops, l)
		return
	}
	if b.cfg.Lazy {
		if l.HasGlobalReduction() {
			// A global reduction is a synchronisation point: it ends any
			// implicit chain.
			b.FlushLazy()
			b.runStandard(l, "")
			return
		}
		b.lazyQ = append(b.lazyQ, l)
		if len(b.lazyQ) >= b.cfg.MaxChainLen {
			b.FlushLazy()
		}
		return
	}
	b.runStandard(l, "")
}

// FlushLazy executes any lazily queued loops: as an automatically detected
// CA chain when two or more loops are queued and their dependencies allow,
// else as ordinary per-loop code. It is a no-op outside lazy mode or when
// the queue is empty.
func (b *Backend) FlushLazy() {
	q := b.lazyQ
	if len(q) == 0 {
		return
	}
	b.lazyQ = nil
	// Every flush counts as one execution of the "lazy" chain, single-loop
	// flushes included, and the chain-length spread is tracked via
	// noteLen: auto-detected chain lengths vary from flush to flush, so a
	// single last-writer NLoop would misreport the row.
	cs := b.stats.chain("lazy")
	cs.Executions++
	cs.noteLen(len(q))
	if len(q) == 1 {
		// One queued loop: no chain to build. Run it per-loop, attributed
		// to the lazy chain exactly like a chain fallback.
		b.runPerLoop("lazy", q, cs, b.maxClock())
		return
	}
	if ct := b.tuneFor("lazy", q, b.cfg.Chains.Get("lazy")); ct != nil {
		b.runTuned(ct, "lazy", q, b.cfg.Chains.Get("lazy"), cs)
		return
	}
	b.runChainAuto("lazy", q, cs)
}

// GatherDat assembles the global values of d from the owning ranks,
// flushing any lazily queued loops first (it observes their results).
func (b *Backend) GatherDat(d *core.Dat) []float64 {
	b.FlushLazy()
	out := make([]float64, d.Set.Size*d.Dim)
	for r := 0; r < b.cfg.NParts; r++ {
		sl := b.layouts[r].SetL(d.Set)
		local := b.dats[r][d.ID]
		for loc := 0; loc < sl.NOwned; loc++ {
			g := int(sl.L2G[loc])
			copy(out[g*d.Dim:(g+1)*d.Dim], local[loc*d.Dim:(loc+1)*d.Dim])
		}
	}
	return out
}

// ChecksumDats returns an FNV-1a hash over the gathered global values of
// every declared dat, in declaration order. Two backends that executed the
// same program produce the same checksum iff their final states are
// bit-identical — the check behind the fault-injection invariant (faults
// shape virtual time, never data).
func (b *Backend) ChecksumDats() string {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range b.cfg.Prog.Dats {
		h.Write([]byte(d.Name))
		for _, v := range b.GatherDat(d) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ScatterDat pushes fresh global values of d to every rank (owned and halo
// copies), marking the dat fully valid. Use it to (re)initialise data
// between experiment phases.
func (b *Backend) ScatterDat(d *core.Dat, global []float64) {
	b.FlushLazy()
	if len(global) != d.Set.Size*d.Dim {
		panic(fmt.Sprintf("cluster: ScatterDat %s: %d values, want %d", d.Name, len(global), d.Set.Size*d.Dim))
	}
	for r := 0; r < b.cfg.NParts; r++ {
		sl := b.layouts[r].SetL(d.Set)
		local := b.dats[r][d.ID]
		for loc := 0; loc < sl.Total(); loc++ {
			g := int(sl.L2G[loc])
			copy(local[loc*d.Dim:(loc+1)*d.Dim], global[g*d.Dim:(g+1)*d.Dim])
		}
	}
	b.valid[d.ID] = validity{exec: b.cfg.Depth, nonexec: b.cfg.Depth}
}

// forEachRank runs f(w, r) for every rank r, through the persistent worker
// pool when one is installed (Parallel mode on a multi-slot machine), else
// serially on the caller's goroutine as worker 0. f must only touch state
// owned by rank r, plus per-worker scratch indexed by w. Worker panics are
// re-raised on the caller's goroutine (see rankPool.forEach), so panic
// semantics are identical in serial and parallel modes.
func (b *Backend) forEachRank(f func(w, r int)) {
	if b.pool == nil {
		for r := 0; r < b.cfg.NParts; r++ {
			f(0, r)
		}
		return
	}
	b.pool.forEach(b.cfg.NParts, f)
}

// installPool sets the fork/join executor to the given worker count (1
// removes the pool: serial dispatch) and sizes the per-worker scratch to
// match. Tests use it to force multi-worker pools on single-slot machines.
func (b *Backend) installPool(workers int) {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
	}
	if workers > 1 {
		b.pool = newRankPool(workers)
		// The pool's goroutines reference only the pool, so an
		// unreachable Backend can be collected; the finalizer then stops
		// the workers. Close does the same deterministically.
		runtime.SetFinalizer(b, (*Backend).finalize)
	}
	n := workers
	if n < 1 {
		n = 1
	}
	if len(b.wsc) < n {
		b.wsc = make([]workerScratch, n)
	}
}

func (b *Backend) finalize() { b.Close() }

// Close stops the worker pool's goroutines; subsequent executions run
// serially (results are identical either way). Optional — an unreachable
// Backend's pool is stopped by a finalizer — but deterministic for callers
// that construct many parallel backends.
func (b *Backend) Close() {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
		runtime.SetFinalizer(b, nil)
	}
}

// workers returns the executor count of the current dispatch setup.
func (b *Backend) workers() int {
	if b.pool == nil {
		return 1
	}
	return b.pool.workers
}

// initScratch sizes the per-Backend execution scratch from the
// configuration. Chain matrices are MaxChainLen wide; every per-rank array
// is NParts long.
func (b *Backend) initScratch() {
	n, cl := b.cfg.NParts, b.cfg.MaxChainLen
	s := &b.scr
	s.stdCoreEnd = make([]int, n)
	s.stdEnd = make([]int, n)
	s.stdPost = make([]float64, n)
	s.stdRecvLast = make([]float64, n)
	s.chainPost = make([]float64, n)
	s.chainRecvLast = make([]float64, n)
	s.chainCores = make([][]int, n)
	s.chainHalos = make([][]int, n)
	s.chainExecEnds = make([][]int, n)
	s.chainNxs = make([][]nxRange, n)
	flatI := make([]int, 3*n*cl)
	flatNx := make([]nxRange, n*cl)
	for r := 0; r < n; r++ {
		s.chainCores[r] = flatI[(3*r+0)*cl : (3*r+1)*cl]
		s.chainHalos[r] = flatI[(3*r+1)*cl : (3*r+2)*cl]
		s.chainExecEnds[r] = flatI[(3*r+2)*cl : (3*r+3)*cl]
		s.chainNxs[r] = flatNx[r*cl : (r+1)*cl]
	}
	s.g = make([]float64, cl)
	s.lp = make([]model.LoopParams, cl)
	s.neigh = map[[2]int32]bool{}
	s.perRank = map[int32]int{}
	s.busy = make([]float64, n)
	s.emptyBytes = make([]int64, n)
	b.fnStdRank = func(w, r int) { b.stdRank(w, r) }
	b.fnChainPrep = func(w, r int) { b.chainPrepRank(w, r) }
	b.fnChainExec = func(w, r int) { b.chainExecRank(w, r) }
}

// runLoopOnRank executes iterations [lo, hi) of loop l on rank r, as
// worker w (indexing the per-worker view/data/map scratch). Ranges within
// the executable region run in the layout's canonical ExecOrder (ascending
// global index), so indirect increments accumulate identically on every
// rank and every execution policy — per-loop, CA at any depth — and match
// the sequential reference bit for bit. Non-execute refresh ranges write
// elementwise and run in storage order. gblScratch, when non-nil, holds
// per-argument redirection buffers for global reduction arguments.
func (b *Backend) runLoopOnRank(w, r int, l core.Loop, lo, hi int, gblScratch [][]float64) {
	if lo >= hi {
		return
	}
	nargs := len(l.Args)
	// Reused per-worker tables. Stale entries at global-argument positions
	// are never read (the view loop below redirects globals to Gbl or the
	// scratch buffer), and every view slot is rewritten before the kernel
	// runs, so no clearing is needed.
	ws := &b.wsc[w]
	views := growSlices(&ws.views, l.NumViews())
	data := growSlices(&ws.data, nargs)
	maps := growMaps(&ws.maps, nargs)
	for i, a := range l.Args {
		switch {
		case a.IsGlobal():
			continue
		case a.Indirect():
			data[i] = b.dats[r][a.Dat.ID]
			maps[i] = b.layouts[r].MapL(a.Map)
		default:
			data[i] = b.dats[r][a.Dat.ID]
		}
	}
	deref := func(i int, a core.Arg, iter, slot int) []float64 {
		e := int(maps[i][iter*a.Map.Arity+slot])
		if e < 0 {
			panic(fmt.Sprintf("cluster: rank %d loop %q iteration %d dereferences element beyond halo depth (map %s slot %d)",
				r, l.Kernel.Name, iter, a.Map.Name, slot))
		}
		return data[i][e*a.Dat.Dim : (e+1)*a.Dat.Dim]
	}
	run := func(iter int) {
		vi := 0
		for i, a := range l.Args {
			switch {
			case a.IsGlobal():
				if gblScratch != nil && gblScratch[i] != nil {
					views[vi] = gblScratch[i]
				} else {
					views[vi] = a.Gbl
				}
				vi++
			case a.Indirect() && a.Idx == core.VecAll:
				for slot := 0; slot < a.Map.Arity; slot++ {
					views[vi] = deref(i, a, iter, slot)
					vi++
				}
			case a.Indirect():
				views[vi] = deref(i, a, iter, a.Idx)
				vi++
			default:
				views[vi] = data[i][iter*a.Dat.Dim : (iter+1)*a.Dat.Dim]
				vi++
			}
		}
		l.Kernel.Fn(views)
	}
	if order := b.layouts[r].SetL(l.Set).ExecOrder; hi <= len(order) {
		for _, iter := range order {
			if it := int(iter); it >= lo && it < hi {
				run(it)
			}
		}
		return
	}
	for iter := lo; iter < hi; iter++ {
		run(iter)
	}
}

// growSlices returns s resized to n entries, reallocating only on growth.
func growSlices(s *[][]float64, n int) [][]float64 {
	if cap(*s) < n {
		*s = make([][]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// growMaps is growSlices for map-index tables.
func growMaps(s *[][]int32, n int) [][]int32 {
	if cap(*s) < n {
		*s = make([][]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

// prepareGlobals returns per-rank scratch buffers for global reduction
// arguments of l (identity-initialised), or nil when l has none.
func (b *Backend) prepareGlobals(l core.Loop) [][][]float64 {
	if !l.HasGlobalReduction() {
		return nil
	}
	scratch := make([][][]float64, b.cfg.NParts)
	for r := range scratch {
		scratch[r] = make([][]float64, len(l.Args))
		for i, a := range l.Args {
			if !a.IsGlobal() || a.Mode == core.Read {
				continue
			}
			buf := make([]float64, len(a.Gbl))
			switch a.Mode {
			case core.Min:
				for j := range buf {
					buf[j] = math.Inf(1)
				}
			case core.Max:
				for j := range buf {
					buf[j] = math.Inf(-1)
				}
			}
			scratch[r][i] = buf
		}
	}
	return scratch
}

// reduceGlobals combines per-rank partial reductions into the user buffers
// and returns the payload bytes reduced (for the allreduce time charge).
func (b *Backend) reduceGlobals(l core.Loop, scratch [][][]float64) int64 {
	if scratch == nil {
		return 0
	}
	var bytes int64
	for i, a := range l.Args {
		if !a.IsGlobal() || a.Mode == core.Read {
			continue
		}
		bytes += int64(len(a.Gbl) * 8)
		for r := 0; r < b.cfg.NParts; r++ {
			part := scratch[r][i]
			for j := range a.Gbl {
				switch a.Mode {
				case core.Inc:
					a.Gbl[j] += part[j]
				case core.Min:
					if part[j] < a.Gbl[j] {
						a.Gbl[j] = part[j]
					}
				case core.Max:
					if part[j] > a.Gbl[j] {
						a.Gbl[j] = part[j]
					}
				}
			}
		}
	}
	return bytes
}

// updateValidity applies OP2's dirty-bit rule after executing loop l: any
// dat the loop writes (OP_WRITE, OP_INC or OP_RW, direct or indirect) has
// stale halo copies afterwards and must be re-exchanged before its next
// halo-dependent read.
func (b *Backend) updateValidity(l core.Loop) {
	for _, a := range l.Args {
		if a.IsGlobal() || !a.Mode.Writes() {
			continue
		}
		b.valid[a.Dat.ID] = validity{}
	}
}
