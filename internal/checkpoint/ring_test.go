package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGen(t *testing.T, r *Ring, note string) string {
	t.Helper()
	s := sampleState()
	s.Note = note
	path, err := r.Write(func(w io.Writer) error {
		_, err := Encode(w, s)
		return err
	})
	if err != nil {
		t.Fatalf("ring write %q: %v", note, err)
	}
	return path
}

func TestRingRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 3}
	r, err := NewRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		writeGen(t, r, fmt.Sprintf("gen=%d", i))
	}
	gens, err := r.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("keep=3 after 5 writes: %d generations (%+v)", len(gens), gens)
	}
	for i, want := range []int{4, 3, 2} {
		if gens[i].Seq != want {
			t.Errorf("generation %d has seq %d, want %d (newest first)", i, gens[i].Seq, want)
		}
	}
	st, gen, tried, quarantined, err := r.RecoverNewest()
	if err != nil || st == nil {
		t.Fatalf("RecoverNewest: %v, state %v", err, st)
	}
	if st.Note != "gen=4" || gen.Seq != 4 || tried != 1 || quarantined != 0 {
		t.Errorf("RecoverNewest = note %q seq %d tried %d quarantined %d, want gen=4/4/1/0",
			st.Note, gen.Seq, tried, quarantined)
	}
}

func TestRingRecoveryQuarantinesCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRing(Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, r, "gen=0")
	newest := writeGen(t, r, "gen=1")
	// Chop the checksum off the newest generation: valid header, bad tail.
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()-9); err != nil {
		t.Fatal(err)
	}
	st, gen, tried, quarantined, err := r.RecoverNewest()
	if err != nil || st == nil {
		t.Fatalf("RecoverNewest: %v, state %v", err, st)
	}
	if st.Note != "gen=0" || tried != 2 || quarantined != 1 {
		t.Errorf("RecoverNewest = note %q seq %d tried %d quarantined %d, want fallback to gen=0 with one quarantine",
			st.Note, gen.Seq, tried, quarantined)
	}
	if _, err := os.Stat(newest + quarantineSuffix); err != nil {
		t.Errorf("corrupt generation not quarantined: %v", err)
	}
	// The quarantined file is invisible to further recovery scans.
	gens, err := r.Generations()
	if err != nil || len(gens) != 1 {
		t.Fatalf("generations after quarantine = %+v, %v", gens, err)
	}
}

func TestRingWriteVerificationRejectsBadSnapshot(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRing(Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, r, "good")
	_, err = r.Write(func(w io.Writer) error {
		_, err := w.Write([]byte("not a checkpoint"))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("garbage write accepted: %v", err)
	}
	if r.VerifyFailures != 1 {
		t.Errorf("VerifyFailures = %d, want 1", r.VerifyFailures)
	}
	// The good generation is still the recovery point.
	st, _, _, _, err := r.RecoverNewest()
	if err != nil || st == nil || st.Note != "good" {
		t.Fatalf("recovery after failed write: %v, %v", st, err)
	}
}

func TestRingSingleFileLayout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.bin")
	r, err := NewRing(Spec{Every: 1, Path: path, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gens, _ := r.Generations(); len(gens) != 0 {
		t.Fatalf("empty ring lists %d generations", len(gens))
	}
	writeGen(t, r, "a")
	got := writeGen(t, r, "b")
	if got != path {
		t.Errorf("keep=1 wrote %s, want overwrite of %s", got, path)
	}
	st, gen, _, _, err := r.RecoverNewest()
	if err != nil || st == nil || st.Note != "b" || gen.Path != path {
		t.Fatalf("single-file recovery: %+v %+v %v", st, gen, err)
	}
}

func TestRingResumesNumbering(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 4}
	r, err := NewRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, r, "x")
	writeGen(t, r, "y")
	// A second ring over the same path (supervised restart) continues the
	// numbering instead of overwriting the generations it would recover.
	r2, err := NewRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := writeGen(t, r2, "z")
	if !strings.HasSuffix(p, ".g000002") {
		t.Errorf("resumed ring wrote %s, want seq 2", p)
	}
}

func TestParseSpecKeep(t *testing.T) {
	spec, err := ParseSpec("every=2,path=ck.bin,keep=5")
	if err != nil || spec.Keep != 5 {
		t.Fatalf("ParseSpec keep = %+v, %v", spec, err)
	}
	for _, bad := range []string{"every=1,path=x,keep=0", "every=1,path=x,keep=-2", "every=1,path=x,keep=z"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
