package cluster

import (
	"errors"
	"fmt"

	"op2ca/internal/ca"
	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/model"
	"op2ca/internal/obs"
)

// runChain executes a loop-chain with the communication-avoiding scheme of
// Algorithm 2: inspect (Algorithm 3 plus configuration overrides), exchange
// one grouped message per neighbour covering all required halo shells, run
// every loop's core region while messages are in flight, wait once, then run
// every loop's halo regions up to its halo extension.
func (b *Backend) runChain(name string, loops []core.Loop, cfgChain *chaincfg.Chain, cs *ChainStats) {
	b.runChainImpl(name, loops, cfgChain, b.overridesFor(cfgChain, len(loops)), !b.cfg.NoGroupedMsgs, b.overlapFor(cfgChain), cs, false)
}

// runChainAuto is runChain for automatically detected (lazy) chains:
// instead of treating an under-built halo depth as a configuration error,
// it falls back to per-loop execution.
func (b *Backend) runChainAuto(name string, loops []core.Loop, cs *ChainStats) {
	cfgChain := b.cfg.Chains.Get(name)
	b.runChainImpl(name, loops, cfgChain, b.overridesFor(cfgChain, len(loops)), !b.cfg.NoGroupedMsgs, b.overlapFor(cfgChain), cs, true)
}

// overridesFor resolves a chain configuration's per-loop halo-extension
// overrides; nil for an unconfigured chain, matching ca.Inspect's "no
// override" convention. The resolution is memoised per configured chain
// (configurations are static for a Backend's lifetime), so steady-state
// chain execution does not re-derive it.
func (b *Backend) overridesFor(cfgChain *chaincfg.Chain, n int) []int {
	if cfgChain == nil {
		return nil
	}
	if c, ok := b.heCache[cfgChain]; ok && c.n == n {
		return c.over
	}
	over, err := cfgChain.HEOverrides(n)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	b.heCache[cfgChain] = heOverrides{n: n, over: over}
	return over
}

// runPerLoop executes a chain's loops as ordinary per-loop OP2 code,
// attributing time and the Equation (2) prediction (the sum of per-loop
// Equation (1) predictions) to the chain. It is the CA fallback path, the
// explicit-chain path when CA is off, and the autotuner's probe window.
func (b *Backend) runPerLoop(name string, loops []core.Loop, cs *ChainStats, t0 float64) {
	for _, l := range loops {
		ls := b.stats.loop(name + "/" + l.Kernel.Name)
		before := ls.Predicted
		b.runStandard(l, name)
		cs.Predicted += ls.Predicted - before
	}
	cs.Time += b.maxClock() - t0
}

// runChainImpl is the CA chain executor. overrides, grouped and overlap are
// the policy knobs: the static path derives them from the configuration
// (overridesFor, !NoGroupedMsgs, overlapFor), the autotuner passes its
// chosen policy. With overlap the exchange runs the task-graph pipeline of
// taskgraph.go; the degradation ladder's ungrouped rung keeps the chain's
// overlap mode, while the per-loop rung is bulk by construction.
func (b *Backend) runChainImpl(name string, loops []core.Loop, cfgChain *chaincfg.Chain,
	overrides []int, grouped, overlap bool, cs *ChainStats, auto bool) {
	t0 := b.maxClock()
	m := b.cfg.Machine

	fallback := func() {
		b.runPerLoop(name, loops, cs, t0)
	}

	// Inspect once, execute many: the plan cache memoises the inspection
	// result (and, below, the exchange schedules) per chain structure.
	entry := b.planEntry(name, loops, overrides)
	var plan ca.Plan
	var err error
	if entry != nil {
		plan, err = entry.plan, entry.err
	} else {
		plan, err = ca.Inspect(name, loops, overrides)
	}
	if errors.Is(err, ca.ErrInfeasible) {
		// Dependencies not satisfiable by redundant computation: run the
		// chain as ordinary per-loop OP2 code.
		fallback()
		return
	}
	if err != nil {
		panic("cluster: " + err.Error())
	}
	if plan.MaxDepth > b.cfg.Depth {
		if auto {
			fallback()
			return
		}
		panic(fmt.Sprintf("cluster: chain %q needs halo depth %d but the back-end was built with Depth %d; raise Config.Depth",
			name, plan.MaxDepth, b.cfg.Depth))
	}
	if len(loops) > b.cfg.MaxChainLen {
		if auto {
			fallback()
			return
		}
		panic(fmt.Sprintf("cluster: chain %q has %d loops but the back-end was built with MaxChainLen %d; raise Config.MaxChainLen",
			name, len(loops), b.cfg.MaxChainLen))
	}

	// Snapshot the validity state before filterNeeds bumps it: the
	// per-loop degradation rung re-executes the window through
	// runStandard, whose exchanges must see the pre-chain dirty state.
	var savedValid []validity
	if b.cfg.Faults.Enabled() {
		savedValid = append([]validity(nil), b.valid...)
	}
	specs := entry.specsFor(plan)
	specs = b.filterNeeds(specs)
	res := b.exchangeFor(entry, specs, grouped)
	if ct := b.tuneSampling; ct != nil {
		ct.notePack(res.sendBytes, m.PackRate)
	}
	exchanging := len(res.msgs) > 0

	n := len(loops)
	sc := &b.scr
	g := sc.g[:n]
	for i, l := range loops {
		g[i] = m.IterTime(l.Kernel)
	}
	launch := m.LaunchOverhead()

	// Phase split: derive every rank's iteration ranges and post times
	// first, deliver (and possibly degrade) second, run the loops last.
	// post depends only on the pre-chain clocks, so hoisting it ahead of
	// loop execution changes nothing — and a window that degrades to
	// per-loop execution must not have run its loops (Inc arguments would
	// double-apply). The per-rank × per-loop matrices and the fork
	// parameters live in Backend scratch: prebuilt fork functions, no
	// per-execution allocation.
	nparts := b.cfg.NParts
	coreEnds, haloIters := sc.chainCores, sc.chainHalos
	post := sc.chainPost
	sc.chainLoops, sc.chainHE, sc.chainHN = loops, plan.HE, plan.HN
	sc.chainExch, sc.chainSend = exchanging, res.sendBytes
	b.forEachRank(b.fnChainPrep)

	maxR := b.maxRetriesFor(cfgChain)
	d := b.deliver(post, res.msgs, name, maxR, overlap)
	if d.giveups > 0 {
		// Degradation ladder: the CA exchange could not complete within
		// its retransmission budget. The cached plan's schedules are what
		// failed, so the entry is evicted either way; the next execution
		// of this chain re-inspects and repopulates the cache.
		b.invalidatePlan(entry)
		restart := d.restartTime(b.retryTimeout)
		recovered := false
		if grouped {
			// Rung 2: repeat the exchange with one message per dat and
			// halo kind (CA without grouping), re-paying pack and staging
			// from the failure-detection time.
			cs.FallbackUngrouped++
			b.stats.Faults.FallbackUngrouped++
			res2 := b.doExchange(specs, false)
			post2 := make([]float64, nparts)
			for r := range post2 {
				t := restart
				if post[r] > t {
					t = post[r]
				}
				t += float64(res2.sendBytes[r]) / m.PackRate
				if !b.cfg.GPUDirect {
					t += m.StageTime(res2.sendBytes[r])
				}
				post2[r] = t
			}
			d2 := b.deliver(post2, res2.msgs, name, maxR, overlap)
			if d2.giveups == 0 {
				res, post, d = res2, post2, d2
				grouped = false
				recovered = true
			} else {
				restart = d2.restartTime(b.retryTimeout)
			}
		}
		if !recovered {
			// Rung 3: re-execute the whole window as per-loop OP2 code
			// from the failure-detection time, with the pre-chain
			// validity restored so every loop re-exchanges its depth-1
			// halos (per-loop giveups are terminal: see runStandard).
			cs.FallbackPerLoop++
			b.stats.Faults.FallbackPerLoop++
			for r := range b.clock {
				if restart > b.clock[r] {
					b.clock[r] = restart
				}
			}
			copy(b.valid, savedValid)
			fallback()
			return
		}
	}
	arrivals := d.arrivals

	b.forEachRank(b.fnChainExec)
	gpuDirect := b.cfg.GPUDirect && m.GPU != nil
	recvLast := sc.chainRecvLast
	clear(recvLast)
	for i, msg := range res.msgs {
		if arrivals[i] > recvLast[msg.To] {
			recvLast[msg.To] = arrivals[i]
		}
	}
	traced := b.tracer.Enabled()
	var inbound [][]int
	var sendStarts []float64
	if traced && exchanging {
		if overlap {
			sendStarts = sendStartTimesOverlapped(b.net, post, res.msgs, arrivals)
		} else {
			sendStarts = sendStartTimes(post, res.msgs, arrivals)
		}
		b.emitPackSpans(name, res.sendBytes)
		b.emitSendSpans(name, sendStarts, res.msgs, arrivals)
		inbound = inboundIndex(b.cfg.NParts, res.msgs)
	}
	for r := 0; r < b.cfg.NParts; r++ {
		var t float64
		if gpuDirect {
			// GPUDirect transfers do not overlap with compute kernels
			// (the paper's observation on Cirrus): all computation waits
			// for the exchange, then runs back to back.
			t = post[r]
			if recvLast[r] > t {
				t = recvLast[r]
			}
			if traced && exchanging {
				b.emitWaitSpans(name, r, post[r], inbound[r], res.msgs, arrivals, post, sendStarts)
			}
			if grouped {
				if traced && res.recvBytes[r] > 0 {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Unpack, name,
						t, t+float64(res.recvBytes[r])/m.PackRate, res.recvBytes[r])
				}
				t += float64(res.recvBytes[r]) / m.PackRate
			}
			for i := range loops {
				segStart := t
				t += launch + g[i]*float64(coreEnds[r][i])
				if traced && coreEnds[r][i] > 0 {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Compute, loops[i].Kernel.Name, segStart, t, 0)
				}
				if halo := haloIters[r][i]; halo > 0 {
					haloStart := t
					if exchanging {
						t += launch
					}
					t += g[i] * float64(halo)
					if traced {
						b.tracer.Emit(int32(r), obs.TrackExec, obs.Redundant, loops[i].Kernel.Name, haloStart, t, 0)
					}
				}
			}
			b.clock[r] = t
			continue
		}
		afterCore := post[r]
		for i := range loops {
			segStart := afterCore
			afterCore += launch + g[i]*float64(coreEnds[r][i])
			if traced && coreEnds[r][i] > 0 {
				b.tracer.Emit(int32(r), obs.TrackExec, obs.Compute, loops[i].Kernel.Name, segStart, afterCore, 0)
			}
		}
		t = afterCore
		if recvLast[r] > 0 {
			if traced {
				stageEnd := recvLast[r]
				if m.GPU != nil {
					stageEnd = m.GPU.TraceStage(b.tracer, int32(r), name+" h2d", recvLast[r], res.recvBytes[r])
				}
				if grouped && res.recvBytes[r] > 0 {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Unpack, name,
						stageEnd, stageEnd+float64(res.recvBytes[r])/m.PackRate, res.recvBytes[r])
				}
			}
			ready := recvLast[r] + m.StageTime(res.recvBytes[r])
			if grouped {
				// Unpacking the grouped message into the per-dat arrays
				// is the c term of Equation (3); per-dat messages land
				// directly and pay nothing here.
				ready += float64(res.recvBytes[r]) / m.PackRate
			}
			if ready > t {
				t = ready
			}
		}
		if traced && exchanging {
			b.emitWaitSpans(name, r, afterCore, inbound[r], res.msgs, arrivals, post, sendStarts)
		}
		for i := range loops {
			if halo := haloIters[r][i]; halo > 0 {
				haloStart := t
				if exchanging {
					t += launch
				}
				t += g[i] * float64(halo)
				if traced {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Redundant, loops[i].Kernel.Name, haloStart, t, 0)
				}
			}
		}
		b.clock[r] = t
	}

	for _, l := range loops {
		b.updateValidity(l)
	}

	cs.CAExecutions++
	cs.HE = append(cs.HE[:0], plan.HE...)
	cs.Msgs += int64(len(res.msgs))
	cs.Bytes += bytesTotal(res)
	cs.DatsExchanged += int64(res.nDats)
	// Neighbour counts dedup (From, To) pairs: with NoGroupedMsgs a rank
	// sends several per-dat messages to the same neighbour, and counting
	// raw messages would inflate the p term of Equation (3).
	neigh, perRank := sc.neigh, sc.perRank
	clear(neigh)
	clear(perRank)
	var execMaxMsg int64
	for _, msg := range res.msgs {
		if pair := [2]int32{msg.From, msg.To}; !neigh[pair] {
			neigh[pair] = true
			perRank[msg.From]++
		}
		if msg.Bytes > execMaxMsg {
			execMaxMsg = msg.Bytes
		}
	}
	if execMaxMsg > cs.MaxMsgBytes {
		cs.MaxMsgBytes = execMaxMsg
	}
	execNeigh := 0
	for _, c := range perRank {
		if c > execNeigh {
			execNeigh = c
		}
	}
	if execNeigh > cs.MaxNeighbours {
		cs.MaxNeighbours = execNeigh
	}
	for r := range res.sendBytes {
		if res.sendBytes[r] > cs.MaxRankBytes {
			cs.MaxRankBytes = res.sendBytes[r]
		}
	}
	lp := sc.lp[:n]
	for i := 0; i < n; i++ {
		lp[i] = model.LoopParams{G: g[i]}
	}
	for r := 0; r < b.cfg.NParts; r++ {
		for i := 0; i < n; i++ {
			cs.CoreIters += int64(coreEnds[r][i])
			cs.HaloIters += int64(haloIters[r][i])
			if c := float64(coreEnds[r][i]); c > lp[i].CoreIters {
				lp[i].CoreIters = c
			}
			if h := float64(haloIters[r][i]); h > lp[i].HaloIters {
				lp[i].HaloIters = h
			}
		}
	}
	// Equation (3) prediction from this execution's measured parameters:
	// per-loop max core/halo iterations across ranks, the grouped message
	// size m^r, and the unpack cost c (zero when grouping is disabled).
	var unpack float64
	if grouped {
		unpack = float64(execMaxMsg) / m.PackRate
	}
	net := b.modelNet(unpack)
	net.Overlap = overlap
	cs.Predicted += model.TCAChain(model.ChainParams{
		Loops:        lp,
		Neighbours:   float64(execNeigh),
		GroupedBytes: float64(execMaxMsg),
	}, net)
	cs.Time += b.maxClock() - t0
}

// nxRange is one loop's non-execute refresh range on one rank (direct
// loops re-iterate non-execute halo copies of their outputs).
type nxRange struct{ lo, hi int }

// chainPrepRank is the first fork of a CA chain execution: derive rank r's
// per-loop iteration ranges (core prefix, execute end, non-execute refresh
// range) and its send-post time. Parameters arrive via Backend scratch.
func (b *Backend) chainPrepRank(w, r int) {
	sc := &b.scr
	m := b.cfg.Machine
	loops, he, hn := sc.chainLoops, sc.chainHE, sc.chainHN
	lay := b.layouts[r]
	cores, halos := sc.chainCores[r], sc.chainHalos[r]
	execEnd, nx := sc.chainExecEnds[r], sc.chainNxs[r]
	for i, l := range loops {
		sl := lay.SetL(l.Set)
		e := sl.ExecEnd(he[i])
		c := e
		if sc.chainExch {
			c = min(sl.CorePrefix(i), e)
		}
		cores[i], execEnd[i] = c, e
		halos[i] = e - c
		nx[i] = nxRange{}
		if hn[i] > 0 {
			// Direct loops additionally refresh non-execute halo copies
			// of their outputs by iterating them.
			nx[i] = nxRange{int(sl.NonexecStart[0]), int(sl.NonexecStart[hn[i]])}
			halos[i] += nx[i].hi - nx[i].lo
		}
	}
	post := b.clock[r] + float64(sc.chainSend[r])/m.PackRate
	if !b.cfg.GPUDirect {
		post += m.StageTime(sc.chainSend[r])
	}
	sc.chainPost[r] = post
}

// chainExecRank is the data pass of a CA chain execution on rank r: each
// loop runs completely, in chain order, in the canonical element order
// (see runLoopOnRank) — exactly the sequence the sequential reference and
// the per-loop path apply. Algorithm 2's core/halo phase split (lines
// 8-18) lives entirely in the caller's virtual-time arithmetic; splitting
// the data pass too would re-order float accumulations per rank and
// policy.
func (b *Backend) chainExecRank(w, r int) {
	sc := &b.scr
	execEnd, nx := sc.chainExecEnds[r], sc.chainNxs[r]
	for i, l := range sc.chainLoops {
		b.runLoopOnRank(w, r, l, 0, execEnd[i], nil)
		b.runLoopOnRank(w, r, l, nx[i].lo, nx[i].hi, nil)
	}
}

func bytesTotal(res exchangeResult) int64 {
	var total int64
	for _, msg := range res.msgs {
		total += msg.Bytes
	}
	return total
}
