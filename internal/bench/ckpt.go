package bench

// ckpt.go gives the experiments checkpoint/restart: with CheckpointEvery and
// Ring set, every measured run snapshots its backend periodically through
// the verified generation ring, and with Resume set, the one run whose label
// matches the snapshot's resume point restores mid-measurement while every
// other run simply re-executes — the simulation is deterministic, so
// re-executed runs reproduce their results bitwise and the resumed
// invocation's checksums equal an uninterrupted run's.

import (
	"encoding/json"
	"io"

	"op2ca/internal/cluster"
)

// resumePoint is the JSON note a bench checkpoint carries: which measured
// run the snapshot belongs to, how many measured iterations were complete,
// and the run's measurement baseline (taken before the measured loop, so a
// resumed run reports the same table values as an uninterrupted one).
type resumePoint struct {
	Label string          `json:"label"`
	Done  int             `json:"done"`
	Ctx   json.RawMessage `json:"ctx,omitempty"`
}

// tick writes a periodic snapshot after a measured iteration completes.
// done counts completed measured iterations; ctx is the run's measurement
// baseline, restored verbatim on resume.
func (c Config) tick(b *cluster.Backend, label string, done int, ctx any) {
	if c.CheckpointEvery <= 0 || c.Ring == nil || done%c.CheckpointEvery != 0 {
		return
	}
	raw, err := json.Marshal(ctx)
	if err != nil {
		panic("bench: " + err.Error())
	}
	note, err := json.Marshal(resumePoint{Label: label, Done: done, Ctx: raw})
	if err != nil {
		panic("bench: " + err.Error())
	}
	if _, err := c.Ring.Write(func(w io.Writer) error {
		return b.Checkpoint(w, string(note))
	}); err != nil {
		panic("bench: checkpoint: " + err.Error())
	}
}

// resume restores the pending snapshot when it belongs to the run labelled
// label, unmarshals the snapshot's measurement baseline into ctx, and
// returns the restored backend plus the number of measured iterations
// already complete. Any other run gets (nil, 0) and executes from scratch.
func (c Config) resume(label string, cfg cluster.Config, ctx any) (*cluster.Backend, int) {
	if c.Resume == nil {
		return nil, 0
	}
	var rp resumePoint
	if err := json.Unmarshal([]byte(c.Resume.Note), &rp); err != nil || rp.Label != label {
		return nil, 0
	}
	b, err := cluster.RestoreState(c.Resume, cfg)
	if err != nil {
		panic("bench: restore: " + err.Error())
	}
	c.adopt(b)
	if len(rp.Ctx) > 0 && ctx != nil {
		if err := json.Unmarshal(rp.Ctx, ctx); err != nil {
			panic("bench: restore: " + err.Error())
		}
	}
	return b, rp.Done
}

// mgResumeCtx is runMGPoint's measurement baseline: the virtual-time and
// counter snapshot taken after warm-up, before the measured loop.
type mgResumeCtx struct {
	T0         float64 `json:"t0"`
	LoopBytes  int64   `json:"loop_bytes"`
	LoopCore   int64   `json:"loop_core"`
	LoopHalo   int64   `json:"loop_halo"`
	ChainBytes int64   `json:"chain_bytes"`
	ChainCore  int64   `json:"chain_core"`
	ChainHalo  int64   `json:"chain_halo"`
}

func mgCtxOf(t0 float64, s mgSnapshot) mgResumeCtx {
	return mgResumeCtx{T0: t0, LoopBytes: s.loopBytes, LoopCore: s.loopCore, LoopHalo: s.loopHalo,
		ChainBytes: s.chainBytes, ChainCore: s.chainCore, ChainHalo: s.chainHalo}
}

func (c mgResumeCtx) snapshot() mgSnapshot {
	return mgSnapshot{loopBytes: c.LoopBytes, loopCore: c.LoopCore, loopHalo: c.LoopHalo,
		chainBytes: c.ChainBytes, chainCore: c.ChainCore, chainHalo: c.ChainHalo}
}

// hydraResumeCtx is runHydraPoint's baseline: per-chain cumulative counters
// read after warm-up.
type hydraResumeCtx struct {
	Before map[string]hydraMeasJSON `json:"before"`
}

type hydraMeasJSON struct {
	Time  float64 `json:"time"`
	Comm  float64 `json:"comm"`
	Pmr   float64 `json:"pmr"`
	Core  float64 `json:"core"`
	Halo  float64 `json:"halo"`
	Execs int     `json:"execs"`
}

func measJSONOf(m hydraMeas) hydraMeasJSON {
	return hydraMeasJSON{Time: m.time, Comm: m.comm, Pmr: m.pmr, Core: m.core, Halo: m.halo, Execs: m.execs}
}

func (m hydraMeasJSON) meas() hydraMeas {
	return hydraMeas{time: m.Time, comm: m.Comm, pmr: m.Pmr, core: m.Core, halo: m.Halo, execs: m.Execs}
}

// synResumeCtx is runSyntheticOnce's baseline.
type synResumeCtx struct {
	T0 float64 `json:"t0"`
}
