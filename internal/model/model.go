// Package model implements the paper's analytic performance model for
// loop-chains (Section 3.2, Equations (1)-(4)): the runtime of standard OP2
// loops with per-loop halo exchanges, the runtime of the equivalent
// communication-avoiding chain with one grouped message per neighbour, the
// grouped message size, and the derived comparison components reported in
// Tables 2 and 5 (communication volumes, core/halo iteration splits, gain,
// communication reduction and computation increase percentages).
//
// The model consumes either hand-set parameters or counters measured by the
// cluster back-end, and machine parameters from package machine.
package model

import (
	"fmt"
	"math"
)

// LoopParams parameterises one OP2 loop for Equation (1).
type LoopParams struct {
	// G is g_l, the compute time of one iteration (seconds).
	G float64
	// CoreIters is S_l^c, iterations overlappable with communication.
	CoreIters float64
	// HaloIters is S_l^1 for standard execution (the single execute-halo
	// layer) or S_l^h for CA execution (all execute-halo levels).
	HaloIters float64
	// NDats is d_l, the dats whose halos the loop exchanges.
	NDats float64
	// Neighbours is p_l, the maximum neighbours per rank.
	Neighbours float64
	// MsgBytes is m_l^1, the maximum per-neighbour message size in bytes.
	MsgBytes float64
}

// Validate rejects parameter combinations that would silently poison every
// Equation (1)-(3) evaluation: a non-finite or negative per-iteration cost,
// or negative/non-finite counters. The autotuner calls this before scoring
// calibrated parameters; ModelReport before printing predictions.
func (p LoopParams) Validate() error {
	if p.G < 0 || math.IsNaN(p.G) || math.IsInf(p.G, 0) {
		return fmt.Errorf("model: G %g must be a non-negative, finite time", p.G)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CoreIters", p.CoreIters}, {"HaloIters", p.HaloIters},
		{"NDats", p.NDats}, {"Neighbours", p.Neighbours}, {"MsgBytes", p.MsgBytes},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("model: %s %g must be a non-negative, finite count", f.name, f.v)
		}
	}
	return nil
}

// Net holds the network parameters of Equations (1)-(3).
type Net struct {
	// L is the per-message latency (Λ for staged GPU transfers).
	L float64
	// B is the per-rank bandwidth in bytes/s.
	B float64
	// C is the per-neighbour pack/unpack cost of the grouped message
	// (the c term of Equation (3)); zero for standard loops.
	C float64
	// EagerThreshold is the eager/rendezvous protocol switch in bytes:
	// messages strictly larger pay Handshake on top of L + m/B, mirroring
	// netsim.Network.MessageTime. Zero disables the switch.
	EagerThreshold float64
	// Handshake is the extra per-message cost above EagerThreshold
	// (2·network-latency in netsim; the handshake crosses the wire even
	// when L itself is the staged-GPU Λ).
	Handshake float64
	// Overlap switches CommTime to the pipelined (post/complete) delivery
	// of netsim.Network.DeliverOverlapped: rendezvous handshakes are
	// initiated at post time and proceed concurrently, and only the m/B
	// injection term serialises on the sender's NIC, so a k-message
	// exchange hides (k-1) latencies and handshakes behind the pipeline.
	// The executors set it per policy; it never changes MsgTime itself.
	Overlap bool
}

// MsgTime prices one m-byte point-to-point message: L + m/B, plus the
// rendezvous handshake when m exceeds the eager threshold. This is the
// model-side mirror of netsim.Network.MessageTime.
func (n Net) MsgTime(m float64) float64 {
	t := n.L + m/n.B
	if n.EagerThreshold > 0 && m > n.EagerThreshold {
		t += n.Handshake
	}
	return t
}

// CommTime prices the full communication term of an exchange in which one
// rank sends (or receives) k messages of m bytes each: the virtual time
// from the sends being posted to the last arrival. Bulk-synchronous
// delivery serialises the complete per-message cost on the NIC, k times
// MsgTime; overlapped delivery (Overlap set, mirroring
// netsim.Network.DeliverOverlapped) serialises only the injection term, so
// latency and the rendezvous handshake are paid once: k*m/B + L
// (+ Handshake above the eager threshold). The two agree at k = 1.
func (n Net) CommTime(k, m float64) float64 {
	if k <= 0 {
		return 0
	}
	if !n.Overlap {
		return k * n.MsgTime(m)
	}
	t := k*(m/n.B) + n.L
	if n.EagerThreshold > 0 && m > n.EagerThreshold {
		t += n.Handshake
	}
	return t
}

// Validate rejects network parameters that would produce meaningless model
// times (mirrors netsim.Network.Validate): a non-positive or non-finite
// bandwidth yields Inf or negative transfer terms, and negative latency or
// pack cost invert the cost model.
func (n Net) Validate() error {
	if n.B <= 0 || math.IsNaN(n.B) || math.IsInf(n.B, 0) {
		return fmt.Errorf("model: B %g must be a positive, finite byte rate", n.B)
	}
	if n.L < 0 || math.IsNaN(n.L) || math.IsInf(n.L, 0) {
		return fmt.Errorf("model: L %g must be a non-negative, finite time", n.L)
	}
	if n.C < 0 || math.IsNaN(n.C) || math.IsInf(n.C, 0) {
		return fmt.Errorf("model: C %g must be a non-negative, finite time", n.C)
	}
	if n.EagerThreshold < 0 || math.IsNaN(n.EagerThreshold) || math.IsInf(n.EagerThreshold, 0) {
		return fmt.Errorf("model: EagerThreshold %g must be a non-negative, finite byte count", n.EagerThreshold)
	}
	if n.Handshake < 0 || math.IsNaN(n.Handshake) || math.IsInf(n.Handshake, 0) {
		return fmt.Errorf("model: Handshake %g must be a non-negative, finite time", n.Handshake)
	}
	return nil
}

// TOp2Loop is Equation (1): the runtime of one standard OP2 loop,
// MAX[g*S^c, 2*d*p*(L+m/B)] + g*S^1, with the per-message cost carrying
// the rendezvous handshake above the eager threshold and the 2*d*p message
// aggregation priced by Net.CommTime — bulk-synchronous by default, the
// pipelined overlap term (only m/B serialises) when Net.Overlap is set.
func TOp2Loop(p LoopParams, n Net) float64 {
	comm := n.CommTime(2*p.NDats*p.Neighbours, p.MsgBytes)
	t := p.G * p.CoreIters
	if comm > t {
		t = comm
	}
	return t + p.G*p.HaloIters
}

// TOp2Chain is Equation (2): the chain runtime without CA is the sum of its
// loops' Equation (1) times.
func TOp2Chain(loops []LoopParams, n Net) float64 {
	t := 0.0
	for _, l := range loops {
		t += TOp2Loop(l, n)
	}
	return t
}

// ChainParams parameterises Equation (3) for a CA-executed chain. Loops
// carry the CA iteration splits (CoreIters shrink, HaloIters cover all halo
// levels); communication happens once with the grouped message.
type ChainParams struct {
	Loops []LoopParams
	// Neighbours is p, the maximum neighbours per rank for the grouped
	// exchange.
	Neighbours float64
	// GroupedBytes is m^r, the maximum grouped message size per
	// neighbour (Equation (4)).
	GroupedBytes float64
}

// TCAChain is Equation (3): MAX[Σ g_l*S_l^c, p*(L + m^r/B + c)] + Σ g_l*S_l^h,
// with the grouped message priced so the rendezvous handshake applies once
// m^r crosses the eager threshold (the common case: grouping pushes
// per-neighbour payloads past it). The p-message aggregation goes through
// Net.CommTime: under Overlap only the injection term serialises, so p-1
// latencies and handshakes leave the communication term; the per-neighbour
// pack/unpack cost c stays per message in both modes.
func TCAChain(c ChainParams, n Net) float64 {
	coreSum, haloSum := 0.0, 0.0
	for _, l := range c.Loops {
		coreSum += l.G * l.CoreIters
		haloSum += l.G * l.HaloIters
	}
	comm := n.CommTime(c.Neighbours, c.GroupedBytes) + c.Neighbours*n.C
	t := coreSum
	if comm > t {
		t = comm
	}
	return t + haloSum
}

// DatHalo describes one dat's halo contribution to the grouped message of
// one loop, for Equation (4).
type DatHalo struct {
	// EehElems is S_d^{eeh,h_l}: export-execute elements up to the loop's
	// halo extension.
	EehElems float64
	// EnhElems is S_d^{enh,h_l}: export-non-execute elements of the
	// updated levels.
	EnhElems float64
	// ElemBytes is delta, the per-element size in bytes.
	ElemBytes float64
}

// GroupedMsgSize is Equation (4): the grouped message size m^r, summing the
// eeh and enh contributions of every halo-exchanged dat of every loop.
// Note the equation (faithfully) counts a dat once per loop that exchanges
// it; the implementation's grouped message deduplicates dats, so measured
// sizes can be smaller.
func GroupedMsgSize(loops [][]DatHalo) float64 {
	m := 0.0
	for _, dats := range loops {
		for _, d := range dats {
			m += (d.EehElems + d.EnhElems) * d.ElemBytes
		}
	}
	return m
}

// Components are the Table 2 / Table 5 model columns for one chain
// configuration.
type Components struct {
	// Op2CommBytes is Σ(2*d*p*m^1) over the chain's loops.
	Op2CommBytes float64
	// Op2CoreIters and Op2HaloIters are Σ S^c and Σ S^1.
	Op2CoreIters float64
	Op2HaloIters float64
	// CACommBytes is p*m^r.
	CACommBytes float64
	// CACoreIters and CAHaloIters are the CA splits Σ S^c and Σ S^h.
	CACoreIters float64
	CAHaloIters float64
	// GainPct is the modelled runtime reduction of CA over OP2 in
	// percent (negative when CA is slower).
	GainPct float64
	// CommReducPct is the communication-volume reduction in percent.
	CommReducPct float64
	// CompIncPct is the halo (redundant) computation increase in percent
	// of the OP2 total iterations.
	CompIncPct float64
}

// Compare evaluates both sides of the model and derives the comparison
// columns of Tables 2 and 5.
func Compare(op2 []LoopParams, ca ChainParams, n Net) Components {
	var c Components
	for _, l := range op2 {
		c.Op2CommBytes += 2 * l.NDats * l.Neighbours * l.MsgBytes
		c.Op2CoreIters += l.CoreIters
		c.Op2HaloIters += l.HaloIters
	}
	c.CACommBytes = ca.Neighbours * ca.GroupedBytes
	for _, l := range ca.Loops {
		c.CACoreIters += l.CoreIters
		c.CAHaloIters += l.HaloIters
	}
	tOp2 := TOp2Chain(op2, n)
	tCA := TCAChain(ca, n)
	if tOp2 > 0 {
		c.GainPct = (tOp2 - tCA) / tOp2 * 100
	}
	if c.Op2CommBytes > 0 {
		c.CommReducPct = (c.Op2CommBytes - c.CACommBytes) / c.Op2CommBytes * 100
	}
	op2Total := c.Op2CoreIters + c.Op2HaloIters
	caTotal := c.CACoreIters + c.CAHaloIters
	if op2Total > 0 {
		c.CompIncPct = (caTotal - op2Total) / op2Total * 100
	}
	return c
}

// Validation pairs a model prediction with a measurement of the same
// quantity. The cluster back-end accumulates one prediction per loop/chain
// execution from that execution's own measured parameters (Equations (1)
// and (3)), so every simulated run doubles as a model-validation
// experiment; see cluster.Backend.ModelReport.
type Validation struct {
	Predicted, Measured float64
}

// ErrPct returns the signed percent error of the prediction relative to
// the measurement (0 when the measurement is 0).
func (v Validation) ErrPct() float64 {
	if v.Measured == 0 {
		return 0
	}
	return (v.Predicted - v.Measured) / v.Measured * 100
}

// BreakEvenNeighbourBytes returns, for a chain whose loops are fixed, the
// grouped message size at which the modelled CA and OP2 times are equal,
// holding everything else constant. It answers the paper's question of
// when a loop-chain profits from CA: chains whose m^r stays below the
// break-even profit; chains that must ship many extra halo layers do not.
// Returns +Inf when CA wins at any message size (comm never dominates).
func BreakEvenNeighbourBytes(op2 []LoopParams, ca ChainParams, n Net) float64 {
	tOp2 := TOp2Chain(op2, n)
	coreSum, haloSum := 0.0, 0.0
	for _, l := range ca.Loops {
		coreSum += l.G * l.CoreIters
		haloSum += l.G * l.HaloIters
	}
	// CA time = MAX[coreSum, p*(L + m/B + c)] + haloSum = tOp2.
	target := tOp2 - haloSum
	if target <= coreSum {
		// Even with zero communication CA cannot reach tOp2 from above,
		// or wins regardless of message size.
		if coreSum+haloSum >= tOp2 {
			return 0
		}
	}
	if ca.Neighbours == 0 {
		return math.Inf(1)
	}
	// The communication term is piecewise in m: solve the eager branch
	// first, and if the solution lands above the threshold re-solve with
	// the rendezvous handshake included. When the two branches disagree
	// (eager solution above the threshold, rendezvous solution below it)
	// the cost jump at the threshold straddles the target, so the
	// break-even is the threshold itself. Under Overlap the term is
	// p*m/B + L (+Handshake) + p*c — latency and handshake paid once —
	// and the same two-branch inversion applies.
	invert := func(handshake float64) float64 {
		if n.Overlap {
			return (target - n.L - handshake - ca.Neighbours*n.C) * n.B / ca.Neighbours
		}
		return (target/ca.Neighbours - n.L - handshake - n.C) * n.B
	}
	m := invert(0)
	if n.EagerThreshold > 0 && m > n.EagerThreshold {
		if mr := invert(n.Handshake); mr > n.EagerThreshold {
			m = mr
		} else {
			m = n.EagerThreshold
		}
	}
	if m < 0 {
		return 0
	}
	return m
}
