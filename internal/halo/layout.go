package halo

import (
	"fmt"

	"op2ca/internal/core"
)

// ImportRange is a contiguous run of halo elements imported from one owner
// rank; imports are contiguous because shell elements are grouped by owner.
type ImportRange struct {
	Rank  int32 // owning rank
	Start int32 // absolute local index of the first element
	Count int32
}

// ExportList names the locally-owned elements one neighbour imports, in the
// exact order the neighbour stores them, so the receiver unpacks with a
// single contiguous copy.
type ExportList struct {
	Rank   int32 // destination rank
	Locals []int32
}

// SetLayout is one rank's local view of one set: local numbering
// [owned | exec shells 1..Depth | non-exec shells 1..Depth] with owned
// elements sorted by decreasing interior level and shell elements grouped
// by owner.
type SetLayout struct {
	Set *core.Set

	// L2G maps local to global indices; G2L is its inverse.
	L2G []int32
	G2L map[int32]int32

	// NOwned is the number of locally owned elements.
	NOwned int
	// ExecStart[d] is the absolute local index where execute shell d+1
	// begins; ExecStart[0] == NOwned and ExecStart[Depth] is the end of
	// the last execute shell. len == Depth+1.
	ExecStart []int32
	// NonexecStart[d] is the analogue for non-execute shells;
	// NonexecStart[0] == ExecStart[Depth] and NonexecStart[Depth] is the
	// total local size.
	NonexecStart []int32

	// corePrefix[l] is the number of owned elements whose iterations are
	// safe to execute while halo exchanges are in flight when the element
	// is iterated by the l-th loop of a chain (interior level >= 2(l+1)).
	corePrefix []int32

	// ExecOrder lists the local indices of the executable region
	// [0, ExecEnd(Depth)) sorted by ascending global index. Kernels apply
	// their data effects in this order on every rank, so indirect
	// increments accumulate in the same sequence everywhere — owned
	// elements, redundantly computed halo copies and the sequential
	// reference all agree bit for bit, whatever partitioning or execution
	// policy produced them. The virtual-time model is unaffected: it
	// prices iteration counts, not orderings.
	ExecOrder []int32

	// ImportExec[d-1] / ImportNonexec[d-1] are the owner-grouped import
	// runs of shell d.
	ImportExec    [][]ImportRange
	ImportNonexec [][]ImportRange
	// ExportExec[d-1] / ExportNonexec[d-1] mirror the imports on the
	// sending side, sorted by destination rank.
	ExportExec    [][]ExportList
	ExportNonexec [][]ExportList
}

// Total returns the local element count including all halo shells.
func (sl *SetLayout) Total() int { return int(sl.NonexecStart[len(sl.NonexecStart)-1]) }

// NExec returns the number of execute-halo elements up to shell depth d.
func (sl *SetLayout) NExec(d int) int { return int(sl.ExecStart[d]) - sl.NOwned }

// ExecEnd returns the absolute local index one past execute shell d;
// iterating [0, ExecEnd(d)) executes owned plus execute shells 1..d.
func (sl *SetLayout) ExecEnd(d int) int { return int(sl.ExecStart[d]) }

// NNonexec returns the number of non-execute-halo elements up to shell d.
func (sl *SetLayout) NNonexec(d int) int {
	return int(sl.NonexecStart[d] - sl.NonexecStart[0])
}

// CorePrefix returns the number of leading owned elements executable before
// the halo wait by the l-th loop of a chain (l = 0 for standalone loops).
func (sl *SetLayout) CorePrefix(l int) int {
	if l < 0 {
		l = 0
	}
	if l >= len(sl.corePrefix) {
		l = len(sl.corePrefix) - 1
	}
	return int(sl.corePrefix[l])
}

// Layout is one rank's local view of the whole program.
type Layout struct {
	Rank   int
	NParts int
	// Depth is the number of halo shells built (the r of the paper).
	Depth int
	// MaxChainLen is the longest loop-chain the core prefixes support.
	MaxChainLen int
	// Sets is indexed by core.Set.ID.
	Sets []*SetLayout
	// Maps is indexed by core.Map.ID: localized map values for the
	// executable region of each From set, -1 where the target is not
	// present locally (only reachable beyond the built halo depth).
	Maps [][]int32
	// Neighbours lists the ranks this rank exchanges halos with,
	// ascending.
	Neighbours []int32
}

// SetL returns the local layout of s.
func (l *Layout) SetL(s *core.Set) *SetLayout { return l.Sets[s.ID] }

// MapL returns the localized values of m.
func (l *Layout) MapL(m *core.Map) []int32 { return l.Maps[m.ID] }

func (l *Layout) String() string {
	return fmt.Sprintf("layout(rank %d/%d, depth %d)", l.Rank, l.NParts, l.Depth)
}
