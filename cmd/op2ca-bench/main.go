// Command op2ca-bench regenerates the tables and figures of the paper's
// evaluation section (Ekanayake et al., ICPP 2023). Each experiment runs
// both the standard OP2 back-end and the communication-avoiding back-end
// over scaled synthetic rotor meshes under the ARCHER2/Cirrus machine
// models, and prints a paper-style table.
//
// Usage:
//
//	op2ca-bench                         # all experiments, default scale
//	op2ca-bench -experiment fig10,table5
//	op2ca-bench -quick                  # CI-sized scale
//	op2ca-bench -nodes8m 120000 -rankscale 0.02 -iters 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"op2ca/internal/bench"
)

func main() {
	var (
		experiments = flag.String("experiment", "all",
			"comma-separated experiments: "+strings.Join(bench.ExperimentOrder(), ",")+" or all")
		quick     = flag.Bool("quick", false, "CI-sized configuration")
		nodes8m   = flag.Int("nodes8m", 0, "override scaled 8M-class mesh node count")
		nodes24m  = flag.Int("nodes24m", 0, "override scaled 24M-class mesh node count")
		rankScale = flag.Float64("rankscale", 0, "override paper-nodes -> ranks scale factor")
		iters     = flag.Int("iters", 0, "override measured main-loop iterations")
		serial    = flag.Bool("serial", false, "run simulated ranks on one host thread")
		out       = flag.String("o", "", "also write results to this file")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *nodes8m > 0 {
		cfg.Nodes8M = *nodes8m
	}
	if *nodes24m > 0 {
		cfg.Nodes24M = *nodes24m
	}
	if *rankScale > 0 {
		cfg.RankScale = *rankScale
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *serial {
		cfg.Parallel = false
	}

	var names []string
	if *experiments == "all" {
		names = bench.ExperimentOrder()
	} else {
		names = strings.Split(*experiments, ",")
	}
	registry := bench.Experiments()

	var sink *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	emit(fmt.Sprintf("op2ca-bench: meshes %d/%d nodes, rank scale %g, %d iterations\n\n",
		cfg.Nodes8M, cfg.Nodes24M, cfg.RankScale, cfg.Iters))
	for _, name := range names {
		name = strings.TrimSpace(name)
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "op2ca-bench: unknown experiment %q (have %s)\n",
				name, strings.Join(bench.ExperimentOrder(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		table := run(cfg)
		if *csv {
			emit(fmt.Sprintf("# %s\n%s\n", table.Title, table.CSV()))
		} else {
			emit(table.String())
			emit(fmt.Sprintf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds()))
		}
	}
}
