package netsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMessageTime(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9}
	if got := n.MessageTime(1000); !almost(got, 1e-6+1e-6) {
		t.Errorf("MessageTime(1000) = %g, want 2e-6", got)
	}
	if got := n.MessageTime(0); !almost(got, 1e-6) {
		t.Errorf("MessageTime(0) = %g, want latency only", got)
	}
}

func TestDeliverSerialisesPerSender(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	post := []float64{10, 20}
	msgs := []Message{
		{From: 0, To: 1, Bytes: 2}, // 10 + (1+2) = 13
		{From: 0, To: 1, Bytes: 3}, // 13 + (1+3) = 17
		{From: 1, To: 0, Bytes: 1}, // 20 + (1+1) = 22
	}
	arr := n.Deliver(post, msgs)
	want := []float64{13, 17, 22}
	for i := range want {
		if !almost(arr[i], want[i]) {
			t.Errorf("arrival[%d] = %g, want %g", i, arr[i], want[i])
		}
	}
}

func TestEagerRendezvousThreshold(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 1024}
	small := n.MessageTime(1024) // at the threshold: still eager
	large := n.MessageTime(1025) // one byte over: rendezvous round trip
	if diff := large - small; diff < 2*n.Latency {
		t.Errorf("rendezvous penalty = %g, want >= 2L", diff)
	}
	// Disabled threshold: no penalty anywhere.
	n.EagerThreshold = 0
	if n.MessageTime(1<<20) != n.Latency+float64(1<<20)/n.Bandwidth {
		t.Error("disabled threshold must not add penalties")
	}
}

func TestWaitAll(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	ready := []float64{5, 30}
	msgs := []Message{{From: 0, To: 1, Bytes: 1}, {From: 1, To: 0, Bytes: 1}}
	arr := []float64{12, 40}
	done := n.WaitAll(ready, msgs, arr)
	if !almost(done[0], 40) || !almost(done[1], 30) {
		t.Errorf("done = %v, want [40 30]", done)
	}
}

// TestValidate: zero/negative Bandwidth used to yield Inf/negative
// MessageTime and negative Latency/EagerThreshold were silently accepted;
// all four must now be rejected with a clear error.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		n    Network
		want string
	}{
		{"zero bandwidth", Network{Latency: 1e-6}, "Bandwidth"},
		{"negative bandwidth", Network{Latency: 1e-6, Bandwidth: -1}, "Bandwidth"},
		{"inf bandwidth", Network{Latency: 1e-6, Bandwidth: math.Inf(1)}, "Bandwidth"},
		{"nan bandwidth", Network{Latency: 1e-6, Bandwidth: math.NaN()}, "Bandwidth"},
		{"negative latency", Network{Latency: -1e-6, Bandwidth: 1e9}, "Latency"},
		{"nan latency", Network{Latency: math.NaN(), Bandwidth: 1e9}, "Latency"},
		{"negative eager", Network{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: -1}, "EagerThreshold"},
	}
	for _, tc := range cases {
		err := tc.n.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.n)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
	good := []Network{
		{Latency: 0, Bandwidth: 1},
		{Latency: 1e-6, Bandwidth: 1e9, EagerThreshold: 65536},
	}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate rejected valid %+v: %v", n, err)
		}
	}
}

// TestDeliverRejectsInvalidNetwork: the first exchange through a
// misconfigured network must fail loudly, not hand out Inf arrival times.
func TestDeliverRejectsInvalidNetwork(t *testing.T) {
	n := &Network{Latency: 1e-6, Bandwidth: 0}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Bandwidth") {
			t.Fatalf("panic %v does not name Bandwidth", r)
		}
	}()
	n.Deliver([]float64{0}, []Message{{From: 0, To: 0, Bytes: 8}})
}

func TestDeliverPanicsOnBadRank(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid sender")
		}
	}()
	n.Deliver([]float64{0}, []Message{{From: 5, To: 0, Bytes: 1}})
}

func TestReduceTime(t *testing.T) {
	n := &Network{Latency: 1, Bandwidth: 1e9}
	if n.ReduceTime(1, 100) != 0 {
		t.Error("single rank reduce should be free")
	}
	t2 := n.ReduceTime(2, 8)
	t8 := n.ReduceTime(8, 8)
	t9 := n.ReduceTime(9, 8)
	if !(t2 < t8 && t8 < t9) {
		t.Errorf("reduce times not increasing: %g %g %g", t2, t8, t9)
	}
	if steps := t8 / n.MessageTime(8); !almost(steps, 3) {
		t.Errorf("8-rank reduce = %g steps, want 3", steps)
	}
}

// Property: arrivals never precede post time plus one latency, and are
// monotone in per-sender order.
func TestDeliverProperty(t *testing.T) {
	n := &Network{Latency: 2e-6, Bandwidth: 5e8}
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		post := []float64{1.0}
		msgs := make([]Message, len(sizes))
		for i, s := range sizes {
			msgs[i] = Message{From: 0, To: 0, Bytes: int64(s)}
		}
		arr := n.Deliver(post, msgs)
		prev := post[0]
		for i, a := range arr {
			if a < post[0]+n.Latency || a <= prev {
				t.Logf("arrival %d = %g not serialised", i, a)
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
