package mesh

import (
	"fmt"
	"math"
)

// Boundary group identifiers for FV3D boundary faces.
const (
	BndInflow = iota
	BndOutflow
	BndHub
	BndCasing
	BndSideLo
	BndSideHi
)

// FV3D is a node-centred finite-volume mesh: the dual of a structured
// curvilinear hex grid. Edges connect pairs of adjacent nodes and carry the
// dual-face area vector between their control volumes, the structure used by
// MG-CFD and Hydra. Boundary faces (bedges) close control volumes on solid
// or flow boundaries; periodic edges (pedges) pair matching nodes across the
// circumferential periodic faces of rotor meshes.
type FV3D struct {
	// Structured generator dimensions (informational).
	NI, NJ, NK int

	NNodes int
	// Coords holds 3 coordinates per node.
	Coords []float64
	// Volumes holds the control volume of each node.
	Volumes []float64

	NEdges int
	// EdgeNodes holds the e2n map, 2 node indices per edge.
	EdgeNodes []int32
	// EdgeWeights holds the dual-face area vector, 3 values per edge,
	// oriented from EdgeNodes[2e] to EdgeNodes[2e+1].
	EdgeWeights []float64

	NBedges int
	// BedgeNodes holds the b2n map, 1 node index per boundary face.
	BedgeNodes []int32
	// BedgeWeights holds the outward area vector, 3 values per face.
	BedgeWeights []float64
	// BedgeGroups holds the Bnd* group of each boundary face.
	BedgeGroups []int32

	NPedges int
	// PedgeNodes holds the p2n map, 2 node indices per periodic pair
	// (the node on the low side, then its match on the high side).
	PedgeNodes []int32

	NCbnd int
	// CbndNodes holds the cb2n map, 1 node index per centreline-boundary
	// face (the hub patch nearest the inflow), a small subset used by the
	// Hydra proxy's centreline loops.
	CbndNodes []int32
}

// nodeIndex returns the node id of structured coordinates (i,j,k).
func (m *FV3D) nodeIndex(i, j, k int) int32 {
	return int32((i*m.NJ+j)*m.NK + k)
}

// geometry maps structured coordinates to physical space.
type geometry interface {
	point(i, j, k int) (x, y, z float64)
	// periodicK reports whether the k direction wraps periodically
	// (rotor passage) rather than ending in solid boundaries (box).
	periodicK() bool
}

// boxGeom is a rectilinear unit-spacing box.
type boxGeom struct{}

func (boxGeom) point(i, j, k int) (float64, float64, float64) {
	return float64(i), float64(j), float64(k)
}
func (boxGeom) periodicK() bool { return false }

// rotorGeom is an annular sector: i axial, j radial, k circumferential,
// with a mild axial twist to mimic a blade passage.
type rotorGeom struct {
	ni, nj, nk             int
	length, rHub, rTip     float64
	sectorRadians, twistAt float64
}

func (g rotorGeom) point(i, j, k int) (float64, float64, float64) {
	fi := float64(i) / float64(maxInt(g.ni-1, 1))
	fj := float64(j) / float64(maxInt(g.nj-1, 1))
	fk := float64(k) / float64(maxInt(g.nk-1, 1))
	x := fi * g.length
	r := g.rHub + fj*(g.rTip-g.rHub)
	theta := fk*g.sectorRadians + fi*g.twistAt
	return x, r * math.Cos(theta), r * math.Sin(theta)
}
func (rotorGeom) periodicK() bool { return true }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Box generates a rectilinear finite-volume mesh with ni*nj*nk nodes.
// All six faces are boundary patches.
func Box(ni, nj, nk int) *FV3D {
	return generateFV3D(ni, nj, nk, boxGeom{})
}

// Rotor generates a rotor-like annular-sector finite-volume mesh with
// ni*nj*nk nodes. The k faces are periodic (pedges); inflow, outflow, hub
// and casing are boundary patches; the hub patch nearest the inflow forms
// the centreline-boundary set.
func Rotor(ni, nj, nk int) *FV3D {
	g := rotorGeom{
		ni: ni, nj: nj, nk: nk,
		length: 1.0, rHub: 0.5, rTip: 1.0,
		sectorRadians: 2 * math.Pi / 36, twistAt: 0.3,
	}
	return generateFV3D(ni, nj, nk, g)
}

// RotorForNodes generates a Rotor mesh with approximately n nodes, keeping
// the paper meshes' roughly 4:3:2 axial:radial:circumferential aspect.
func RotorForNodes(n int) *FV3D {
	if n < 8 {
		n = 8
	}
	// ni:nj:nk = 4:3:2 => ni*nj*nk = 24 c^3.
	c := math.Cbrt(float64(n) / 24.0)
	ni := maxInt(2, int(math.Round(4*c)))
	nj := maxInt(2, int(math.Round(3*c)))
	nk := maxInt(3, int(math.Round(2*c)))
	return Rotor(ni, nj, nk)
}

func generateFV3D(ni, nj, nk int, g geometry) *FV3D {
	if ni < 2 || nj < 2 || nk < 2 {
		panic(fmt.Sprintf("mesh: FV3D dimensions %dx%dx%d too small (need >= 2)", ni, nj, nk))
	}
	m := &FV3D{NI: ni, NJ: nj, NK: nk, NNodes: ni * nj * nk}
	m.Coords = make([]float64, 3*m.NNodes)
	m.Volumes = make([]float64, m.NNodes)

	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				n := m.nodeIndex(i, j, k)
				x, y, z := g.point(i, j, k)
				m.Coords[3*n] = x
				m.Coords[3*n+1] = y
				m.Coords[3*n+2] = z
			}
		}
	}

	// spacing returns the local grid spacing of node (i,j,k) along axis.
	spacing := func(i, j, k, axis int) float64 {
		var lo, hi int32
		switch axis {
		case 0:
			lo, hi = m.nodeIndex(maxInt(i-1, 0), j, k), m.nodeIndex(minInt(i+1, ni-1), j, k)
		case 1:
			lo, hi = m.nodeIndex(i, maxInt(j-1, 0), k), m.nodeIndex(i, minInt(j+1, nj-1), k)
		default:
			lo, hi = m.nodeIndex(i, j, maxInt(k-1, 0)), m.nodeIndex(i, j, minInt(k+1, nk-1))
		}
		dx := m.Coords[3*hi] - m.Coords[3*lo]
		dy := m.Coords[3*hi+1] - m.Coords[3*lo+1]
		dz := m.Coords[3*hi+2] - m.Coords[3*lo+2]
		d := math.Sqrt(dx*dx+dy*dy+dz*dz) / 2
		if d == 0 {
			d = 1e-12
		}
		return d
	}

	addEdge := func(a, b int32, area float64, axis int) {
		m.EdgeNodes = append(m.EdgeNodes, a, b)
		dx := m.Coords[3*b] - m.Coords[3*a]
		dy := m.Coords[3*b+1] - m.Coords[3*a+1]
		dz := m.Coords[3*b+2] - m.Coords[3*a+2]
		norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if norm == 0 {
			norm = 1
		}
		m.EdgeWeights = append(m.EdgeWeights, area*dx/norm, area*dy/norm, area*dz/norm)
		_ = axis
	}

	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				n := m.nodeIndex(i, j, k)
				hx, hy, hz := spacing(i, j, k, 0), spacing(i, j, k, 1), spacing(i, j, k, 2)
				m.Volumes[n] = hx * hy * hz
				if i+1 < ni {
					addEdge(n, m.nodeIndex(i+1, j, k), hy*hz, 0)
				}
				if j+1 < nj {
					addEdge(n, m.nodeIndex(i, j+1, k), hx*hz, 1)
				}
				if k+1 < nk {
					addEdge(n, m.nodeIndex(i, j, k+1), hx*hy, 2)
				}
			}
		}
	}
	m.NEdges = len(m.EdgeNodes) / 2

	addBedge := func(n int32, area float64, group int32, sign float64, axis int) {
		m.BedgeNodes = append(m.BedgeNodes, n)
		w := [3]float64{}
		w[axis] = sign * area
		m.BedgeWeights = append(m.BedgeWeights, w[0], w[1], w[2])
		m.BedgeGroups = append(m.BedgeGroups, group)
	}

	for j := 0; j < nj; j++ {
		for k := 0; k < nk; k++ {
			hy := spacing(0, j, k, 1)
			hz := spacing(0, j, k, 2)
			addBedge(m.nodeIndex(0, j, k), hy*hz, BndInflow, -1, 0)
			hy = spacing(ni-1, j, k, 1)
			hz = spacing(ni-1, j, k, 2)
			addBedge(m.nodeIndex(ni-1, j, k), hy*hz, BndOutflow, +1, 0)
		}
	}
	for i := 0; i < ni; i++ {
		for k := 0; k < nk; k++ {
			hx := spacing(i, 0, k, 0)
			hz := spacing(i, 0, k, 2)
			addBedge(m.nodeIndex(i, 0, k), hx*hz, BndHub, -1, 1)
			hx = spacing(i, nj-1, k, 0)
			hz = spacing(i, nj-1, k, 2)
			addBedge(m.nodeIndex(i, nj-1, k), hx*hz, BndCasing, +1, 1)
		}
	}
	if g.periodicK() {
		for i := 0; i < ni; i++ {
			for j := 0; j < nj; j++ {
				m.PedgeNodes = append(m.PedgeNodes,
					m.nodeIndex(i, j, 0), m.nodeIndex(i, j, nk-1))
			}
		}
		m.NPedges = len(m.PedgeNodes) / 2
	} else {
		for i := 0; i < ni; i++ {
			for j := 0; j < nj; j++ {
				hx := spacing(i, j, 0, 0)
				hy := spacing(i, j, 0, 1)
				addBedge(m.nodeIndex(i, j, 0), hx*hy, BndSideLo, -1, 2)
				hx = spacing(i, j, nk-1, 0)
				hy = spacing(i, j, nk-1, 1)
				addBedge(m.nodeIndex(i, j, nk-1), hx*hy, BndSideHi, +1, 2)
			}
		}
	}
	m.NBedges = len(m.BedgeNodes)

	// Centreline boundary: the hub patch nearest the inflow (first eighth
	// of the axial extent, at least one station).
	ci := maxInt(1, ni/8)
	for i := 0; i < ci; i++ {
		for k := 0; k < nk; k++ {
			m.CbndNodes = append(m.CbndNodes, m.nodeIndex(i, 0, k))
		}
	}
	m.NCbnd = len(m.CbndNodes)
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NodeAdjacency returns, for every node, the list of neighbouring nodes
// connected by an edge or a periodic pair: the graph used for partitioning.
func (m *FV3D) NodeAdjacency() [][]int32 {
	adj := make([][]int32, m.NNodes)
	deg := make([]int, m.NNodes)
	for e := 0; e < m.NEdges; e++ {
		deg[m.EdgeNodes[2*e]]++
		deg[m.EdgeNodes[2*e+1]]++
	}
	for p := 0; p < m.NPedges; p++ {
		deg[m.PedgeNodes[2*p]]++
		deg[m.PedgeNodes[2*p+1]]++
	}
	for n := range adj {
		adj[n] = make([]int32, 0, deg[n])
	}
	for e := 0; e < m.NEdges; e++ {
		a, b := m.EdgeNodes[2*e], m.EdgeNodes[2*e+1]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for p := 0; p < m.NPedges; p++ {
		a, b := m.PedgeNodes[2*p], m.PedgeNodes[2*p+1]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}
