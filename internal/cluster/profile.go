package cluster

import "op2ca/internal/obs/analysis"

// Profile runs the critical-path, communication-matrix and load-imbalance
// analysis over this backend's trace epoch, attaches the result to Stats
// (so Stats.String and WriteMetrics report it) and returns it. It requires
// a Tracer — an untraced backend profiles to nil. The analysis reads the
// recorded spans and edges only; it never touches the clocks, so a
// profiled run stays bit-identical to an unprofiled one.
func (b *Backend) Profile() *analysis.Profile {
	if !b.tracer.Enabled() {
		return nil
	}
	b.FlushLazy()
	p := analysis.Analyze(b.tracer, b.epoch)
	b.stats.Profile = p
	return p
}
