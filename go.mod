module op2ca

go 1.23
