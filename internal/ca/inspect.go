// Package ca implements the inspection phase of the communication-avoiding
// back-end (the paper's Section 3): identifying the dats a loop-chain must
// exchange, computing per-loop halo extensions (Algorithm 3), and assembling
// the chain plan the distributed executor (package cluster) runs with
// Algorithm 2.
//
// Two halo-extension analyses are provided. CalcHaloLayers is the paper's
// Algorithm 3, transcribed literally; it reproduces the published extensions
// for the MG-CFD synthetic chain and the gradl/vflux/iflux/jacob chains of
// Tables 3-4. SafeHaloLayers is a conservative demand-propagation analysis
// that is provably sufficient for exact results under redundant computation;
// it is used to validate configured extensions. The paper's configuration
// file supplies per-loop maximum halo extensions (Section 3.4); package
// chaincfg parses it and its values override the automatic analysis, exactly
// as in the paper's tool flow.
package ca

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"op2ca/internal/core"
)

// CalcHaloLayers is Algorithm 3 of the paper: walk the chain backwards once
// per halo-exchanged dat, tracking the accumulated halo extension, and take
// the per-loop maximum over dats. The returned slice holds one extension per
// loop (>= 1).
func CalcHaloLayers(loops []core.Loop) []int {
	he := make([]int, len(loops))
	for i := range he {
		he[i] = 1
	}
	for _, d := range chainDats(loops) {
		haloExt := 0
		indRd := false
		for l := len(loops) - 1; l >= 0; l-- {
			hed := 1
			arg, accessed := datAccess(loops[l], d)
			if accessed {
				switch {
				case indRd && arg.Mode.Writes():
					// A write (OP_WRITE, OP_INC or OP_RW) feeding a later
					// indirect read: extend by one layer.
					hed = haloExt + 1
					haloExt = 0
					indRd = false
				case arg.Indirect() && (arg.Mode == core.Read || arg.Mode == core.ReadWrite):
					// Consecutive indirect reads share one layer of demand;
					// only a write feeding a read extends the halo. (This is
					// the reading of Algorithm 3 consistent with the paper's
					// published extensions: the synthetic MG-CFD chain has
					// r = 2 at every loop count, and Table 3's period chain
					// keeps HE = 1 across its repeated reads.)
					if !indRd {
						haloExt++
					}
					hed = haloExt
					indRd = true
				case !arg.Indirect() && (arg.Mode == core.Read || arg.Mode == core.ReadWrite):
					hed = 1
					haloExt = 0
					indRd = false
				}
			}
			if hed > he[l] {
				he[l] = hed
			}
		}
	}
	return he
}

// SafeHaloLayers returns the execute-shell depths of SafeAnalysis; see
// there for semantics. Chains that SafeAnalysis rejects still get depths
// (the infeasibility concerns non-execute refreshes, not execute depths).
func SafeHaloLayers(loops []core.Loop) []int {
	he, _, _ := SafeAnalysis(loops)
	return he
}

// SafeAnalysis computes per-loop halo extensions by backward demand
// propagation over both halo kinds. A loop indirectly writing a dat that
// later loops need valid on shells <= D must execute over D+1 execute
// shells (it refreshes execute and non-execute copies one shell shallower
// than its depth); a loop writing only directly refreshes exactly the
// shells it iterates, and — having no maps to localise — may additionally
// iterate non-execute shells (the PyOP2-style direct halo execution),
// reported in hn. The result is always sufficient for bit-reproducible
// redundant computation, at the cost of deeper halos than Algorithm 3 on
// some chains.
//
// A chain is rejected when a loop with indirection writes a dat directly
// while a later loop needs that dat's non-execute copies: such copies
// cannot be refreshed by redundant computation (the writer's halo
// iterations stop at the execute shells), so the chain must fall back to
// per-loop execution.
func SafeAnalysis(loops []core.Loop) (he, hn []int, err error) {
	he = make([]int, len(loops))
	hn = make([]int, len(loops))
	type demand struct{ exec, nonexec int }
	demands := map[*core.Dat]demand{}
	for l := len(loops) - 1; l >= 0; l-- {
		allDirect := !loops[l].HasIndirection()
		h, n := 1, 0
		for _, a := range loops[l].Args {
			if a.IsGlobal() || !a.Mode.Writes() {
				continue
			}
			d := demands[a.Dat]
			switch {
			case a.Indirect():
				if need := maxInt(d.exec, d.nonexec) + 1; need > h {
					h = need
				}
			case allDirect:
				if d.exec > h {
					h = d.exec
				}
				if d.nonexec > n {
					n = d.nonexec
				}
			default: // direct write in a loop with indirection
				if d.exec > h {
					h = d.exec
				}
				if d.nonexec > 0 && err == nil {
					err = fmt.Errorf("%w: loop %d (%s) writes %s directly but a later loop reads its non-execute halo copies",
						ErrInfeasible, l, loops[l].Kernel.Name, a.Dat.Name)
				}
			}
		}
		he[l], hn[l] = h, n
		for _, a := range loops[l].Args {
			if a.IsGlobal() {
				continue
			}
			d := demands[a.Dat]
			switch {
			case a.Indirect() && (a.Mode == core.Read || a.Mode == core.ReadWrite):
				d.exec = maxInt(d.exec, h)
				d.nonexec = maxInt(d.nonexec, h)
			case a.Indirect() && a.Mode == core.Inc:
				// Increments need valid base values where results are
				// consumed, one shell shallower than the execution depth.
				d.exec = maxInt(d.exec, h-1)
				d.nonexec = maxInt(d.nonexec, h-1)
			case !a.Indirect() && a.Mode.Reads():
				d.exec = maxInt(d.exec, h)
				if allDirect {
					d.nonexec = maxInt(d.nonexec, n)
				}
			}
			demands[a.Dat] = d
		}
	}
	return he, hn, err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// chainDats returns the dats accessed anywhere in the chain that are halo
// exchange candidates: indirectly read (OP_READ or OP_RW) by some loop —
// the halo_exch_dats step of Algorithm 2 — in first-access order.
func chainDats(loops []core.Loop) []*core.Dat {
	var dats []*core.Dat
	seen := map[*core.Dat]bool{}
	for _, l := range loops {
		for _, a := range l.Args {
			if a.IsGlobal() || seen[a.Dat] {
				continue
			}
			if a.Indirect() && (a.Mode == core.Read || a.Mode == core.ReadWrite) {
				seen[a.Dat] = true
				dats = append(dats, a.Dat)
			}
		}
	}
	return dats
}

// datAccess returns the access descriptor of dat d in loop l. When a loop
// accesses the same dat through several descriptors (e.g. both map slots),
// the strongest access wins: writes dominate reads, indirect dominates
// direct.
func datAccess(l core.Loop, d *core.Dat) (core.Arg, bool) {
	var best core.Arg
	found := false
	for _, a := range l.Args {
		if a.IsGlobal() || a.Dat != d {
			continue
		}
		if !found {
			best, found = a, true
			continue
		}
		if (a.Mode.Writes() && !best.Mode.Writes()) ||
			(a.Indirect() && !best.Indirect() && a.Mode.Writes() == best.Mode.Writes()) {
			best = a
		}
	}
	return best, found
}

// ErrInfeasible marks chains whose dependencies cannot be satisfied by
// redundant computation over multi-layered halos; the executor falls back
// to per-loop execution.
var ErrInfeasible = errors.New("ca: chain infeasible for communication-avoiding execution")

// ChainSignature returns a comparable fingerprint of everything Inspect
// depends on: each loop's kernel, iteration set and access descriptors, plus
// the configured halo-extension overrides. Within one program, two chains
// with equal signatures produce identical plans, so an executor can inspect
// once and reuse the plan across executions (the inspector/executor
// amortisation the runtime is built around).
func ChainSignature(loops []core.Loop, configHE []int) string {
	return string(AppendChainSignature(nil, loops, configHE))
}

// AppendChainSignature appends the chain signature to dst and returns the
// extended slice. It is the allocation-free form of ChainSignature: callers
// on a hot path (the executor's plan-cache lookup) pass reusable scratch.
// The output is byte-identical to ChainSignature's.
func AppendChainSignature(dst []byte, loops []core.Loop, configHE []int) []byte {
	for _, l := range loops {
		dst = append(dst, l.Kernel.Name...)
		dst = append(dst, '@')
		dst = strconv.AppendInt(dst, int64(l.Set.ID), 10)
		dst = append(dst, '(')
		for _, a := range l.Args {
			if a.IsGlobal() {
				dst = append(dst, 'g')
				dst = strconv.AppendInt(dst, int64(a.Mode), 10)
				dst = append(dst, ',')
				continue
			}
			mapID := -1
			if a.Indirect() {
				mapID = a.Map.ID
			}
			dst = strconv.AppendInt(dst, int64(a.Dat.ID), 10)
			dst = append(dst, '.')
			dst = strconv.AppendInt(dst, int64(mapID), 10)
			dst = append(dst, '.')
			dst = strconv.AppendInt(dst, int64(a.Idx), 10)
			dst = append(dst, '.')
			dst = strconv.AppendInt(dst, int64(a.Mode), 10)
			dst = append(dst, ',')
		}
		dst = append(dst, ')')
	}
	if len(configHE) > 0 {
		// Matches fmt's %v rendering of []int: "[a b c]".
		dst = append(dst, "|he["...)
		for i, he := range configHE {
			if i > 0 {
				dst = append(dst, ' ')
			}
			dst = strconv.AppendInt(dst, int64(he), 10)
		}
		dst = append(dst, ']')
	}
	return dst
}

// DatExchange is one dat's contribution to the grouped message exchanged at
// the start of a chain: how many execute and non-execute halo shells of the
// dat must be imported.
type DatExchange struct {
	Dat          *core.Dat
	ExecDepth    int
	NonexecDepth int
}

// Plan is the inspection result for one loop-chain.
type Plan struct {
	Name string
	// HE is the halo extension (execute-shell execution depth) of each
	// loop.
	HE []int
	// HN is the non-execute-shell execution depth of each loop; non-zero
	// only for loops without indirection, which refresh their directly
	// written dats' read-only halo copies by iterating them (they have no
	// maps to localise, so this is always possible).
	HN []int
	// MaxDepth is the deepest halo shell the plan touches.
	MaxDepth int
	// Required lists, per dat, the shell depths that must be valid at
	// chain entry (before filtering against the runtime dirty state).
	Required []DatExchange
}

// Describe renders the plan as a human-readable inspection report: per-loop
// halo extensions and the grouped message's per-dat shell depths.
func (p Plan) Describe(loops []core.Loop) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain %s: %d loops, max halo depth %d\n", p.Name, len(p.HE), p.MaxDepth)
	for i, l := range loops {
		fmt.Fprintf(&b, "  loop %-20s over %-8s HE=%d", l.Kernel.Name, l.Set.Name, p.HE[i])
		if i < len(p.HN) && p.HN[i] > 0 {
			fmt.Fprintf(&b, " (+%d non-exec shells)", p.HN[i])
		}
		b.WriteByte('\n')
	}
	if len(p.Required) == 0 {
		b.WriteString("  grouped message: none (all halos valid or never read)\n")
		return b.String()
	}
	b.WriteString("  grouped message ships:\n")
	for _, r := range p.Required {
		if r.NonexecDepth == 0 {
			fmt.Fprintf(&b, "    %-12s exec shells 1..%d\n", r.Dat.Name, r.ExecDepth)
			continue
		}
		fmt.Fprintf(&b, "    %-12s exec shells 1..%d, non-exec shells 1..%d\n",
			r.Dat.Name, r.ExecDepth, r.NonexecDepth)
	}
	return b.String()
}

// Inspect builds the chain plan: halo extensions from Algorithm 3, deepened
// where the conservative analysis demands more (exotic chains such as
// repeated increments without intervening reads), then overridden by the
// optional per-loop configured extensions (the paper's configuration file,
// which encodes application knowledge the automatic analyses lack), then
// per-dat required validity depths. configHE may be nil; entries <= 0 mean
// "no override".
func Inspect(name string, loops []core.Loop, configHE []int) (Plan, error) {
	if len(loops) == 0 {
		return Plan{}, fmt.Errorf("ca: chain %q is empty", name)
	}
	for _, l := range loops {
		if l.HasGlobalReduction() {
			return Plan{}, fmt.Errorf("ca: chain %q contains loop %q with a global reduction (a global synchronisation point)",
				name, l.Kernel.Name)
		}
	}
	he := CalcHaloLayers(loops)
	safeHE, hn, err := SafeAnalysis(loops)
	if err != nil {
		return Plan{}, err
	}
	for i, safe := range safeHE {
		if safe > he[i] {
			he[i] = safe
		}
	}
	if configHE != nil {
		if len(configHE) != len(loops) {
			return Plan{}, fmt.Errorf("ca: chain %q has %d loops but %d configured halo extensions",
				name, len(loops), len(configHE))
		}
		for i, v := range configHE {
			if v > 0 {
				he[i] = v
			}
		}
	}
	p := Plan{Name: name, HE: he, HN: hn}
	req := map[*core.Dat]*DatExchange{}
	order := []*core.Dat{}
	need := func(d *core.Dat, exec, nonexec int) {
		r, ok := req[d]
		if !ok {
			r = &DatExchange{Dat: d}
			req[d] = r
			order = append(order, d)
		}
		if exec > r.ExecDepth {
			r.ExecDepth = exec
		}
		if nonexec > r.NonexecDepth {
			r.NonexecDepth = nonexec
		}
	}
	// Grouped-message contents follow the paper's Equation (4): every
	// halo-exchange dat (indirectly read somewhere in the chain, the
	// halo_exch_dats step) ships its halo shells up to the halo extension
	// of each loop that accesses it; directly read dats ship the execute
	// shells their loop iterates (all chained loops, direct ones
	// included, execute over their extension's execute shells).
	exchDats := map[*core.Dat]bool{}
	for _, d := range chainDats(loops) {
		exchDats[d] = true
	}
	for i, l := range loops {
		h, n := he[i], hn[i]
		if h > p.MaxDepth {
			p.MaxDepth = h
		}
		if n > p.MaxDepth {
			p.MaxDepth = n
		}
		for _, a := range l.Args {
			if a.IsGlobal() {
				continue
			}
			switch {
			case a.Indirect() && exchDats[a.Dat]:
				need(a.Dat, h, h)
			case !a.Indirect() && a.Mode.Reads():
				need(a.Dat, h, n)
			}
		}
	}
	for _, d := range order {
		p.Required = append(p.Required, *req[d])
	}
	return p, nil
}
