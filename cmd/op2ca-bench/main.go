// Command op2ca-bench regenerates the tables and figures of the paper's
// evaluation section (Ekanayake et al., ICPP 2023). Each experiment runs
// both the standard OP2 back-end and the communication-avoiding back-end
// over scaled synthetic rotor meshes under the ARCHER2/Cirrus machine
// models, and prints a paper-style table.
//
// Usage:
//
//	op2ca-bench                         # all experiments, default scale
//	op2ca-bench -experiment fig10,table5
//	op2ca-bench -quick                  # CI-sized scale
//	op2ca-bench -nodes8m 120000 -rankscale 0.02 -iters 5
//	op2ca-bench -quick -profile -json results.json
//	op2ca-bench -compare -thresholds default=2% old.json new.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"op2ca/internal/bench"
	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/faults"
	"op2ca/internal/obs"
	"op2ca/internal/supervise"
)

func main() {
	var (
		experiments = flag.String("experiment", "all",
			"comma-separated experiments: "+strings.Join(bench.ExperimentOrder(), ",")+" or all")
		quick       = flag.Bool("quick", false, "CI-sized configuration")
		nodes8m     = flag.Int("nodes8m", 0, "override scaled 8M-class mesh node count")
		nodes24m    = flag.Int("nodes24m", 0, "override scaled 24M-class mesh node count")
		rankScale   = flag.Float64("rankscale", 0, "override paper-nodes -> ranks scale factor")
		iters       = flag.Int("iters", 0, "override measured main-loop iterations")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		out         = flag.String("o", "", "also write results to this file")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonPath    = flag.String("json", "", "write machine-readable results to this JSON file")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline of every run (one pid per backend)")
		metricsPath = flag.String("metrics", "", "write Prometheus text metrics for every run to this file (\"-\" for stdout)")
		modelCheck  = flag.Bool("model-check", false, "print Equation (1)/(3) predictions vs measured time after each run")
		profile     = flag.Bool("profile", false,
			"run the critical-path / communication-matrix analysis after each measured run (forces tracing; results stay bit-identical) and embed per-run summaries in the -json document")
		compare = flag.Bool("compare", false,
			"compare two -json snapshots given as positional arguments (old new); exits 1 on regression, 2 on usage error")
		thresholds = flag.String("thresholds", "",
			"per-table relative tolerances for -compare, e.g. default=2%,table2=5% (fractions or percentages; unlisted tables use default, which defaults to exact)")
		autoTune = flag.Bool("autotune", false,
			"let the model-driven autotuner pick each chain's execution policy in the CA runs (results stay bit-identical; ablations keep their pinned configurations)")
		overlap = flag.Bool("overlap", false,
			"run the CA back-ends on the overlap-capable task-graph chain executor (results stay bit-identical; the dedicated overlap experiment measures both modes regardless)")
		faultSpec = flag.String("faults", "",
			"deterministic fault-injection spec, e.g. drop=0.05,seed=1 (see internal/faults); results stay bit-identical, virtual times include recovery")
		ckptSpec = flag.String("checkpoint", "",
			"periodic snapshots, e.g. every=1,path=ck.bin,keep=3: each measured run checkpoints its backend after every N measured iterations, rotating keep=K verified generations")
		restorePath = flag.String("restore", "",
			"resume from a checkpoint file a crashed invocation wrote: the matching run restores mid-measurement, all others re-execute deterministically")
		superviseFlag = flag.String("supervise", "",
			"self-healing supervised execution, e.g. on or budget=8,backoff=1,watchdog=50: catch injected crashes, exchange failures and no-progress stalls, restore from the newest valid checkpoint generation and retry the experiment (incompatible with -restore)")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *thresholds))
	}

	var plan *faults.Plan
	if *faultSpec != "" {
		p, err := faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		plan = p
	}

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *nodes8m > 0 {
		cfg.Nodes8M = *nodes8m
	}
	if *nodes24m > 0 {
		cfg.Nodes24M = *nodes24m
	}
	if *rankScale > 0 {
		cfg.RankScale = *rankScale
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *serial {
		cfg.Parallel = false
	}
	if *tracePath != "" || *profile {
		cfg.Tracer = obs.New()
	}
	cfg.Faults = plan
	cfg.AutoTune = *autoTune
	cfg.Overlap = *overlap
	svSpec, err := supervise.ParseSpec(*superviseFlag)
	if err != nil {
		fatal(err)
	}
	if svSpec.Enabled && *restorePath != "" {
		fatal(fmt.Errorf("-supervise and -restore are incompatible: the supervisor recovers from the checkpoint ring itself"))
	}
	var ring *checkpoint.Ring
	if *ckptSpec != "" {
		spec, err := checkpoint.ParseSpec(*ckptSpec)
		if err != nil {
			fatal(err)
		}
		// Key the ring path by the workload fingerprint: resume-by-default
		// must never adopt a leftover ring from an invocation whose results
		// would differ (same labels, different mesh sizes or iteration
		// count). See Config.RingSpec.
		spec = cfg.RingSpec(spec)
		fmt.Fprintf(os.Stderr, "op2ca-bench: checkpoint ring %s\n", spec.Path)
		r, err := checkpoint.NewRing(spec)
		if err != nil {
			fatal(err)
		}
		ring = r
		cfg.CheckpointEvery = spec.Every
		cfg.Ring = ring
	}
	if *restorePath != "" {
		st, err := checkpoint.ReadFile(*restorePath)
		if err != nil {
			fatal(err)
		}
		cfg.Resume = st
	}
	var sup *supervise.Supervisor
	if svSpec.Enabled {
		sup = supervise.NewSupervisor(svSpec, plan, ring, cfg.Tracer)
	}

	// The metrics file accumulates every run under a distinct run label;
	// HELP/TYPE lines are deduplicated so the exposition stays valid.
	var metricsFile *os.File
	var mw *obs.MetricsWriter
	if *metricsPath != "" {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			metricsFile = f
			w = f
		}
		mw = obs.NewMetricsWriter(w)
	}
	// The Observe hook composes every per-run consumer: model checks,
	// metrics export, fault-counter aggregation, profiling and (for -json)
	// per-run dat checksums, so a faulted run can be diffed against a
	// fault-free one. Per-label consumers keep the last observation:
	// supervised retries re-execute runs deterministically, so counting a
	// re-executed run twice would inflate the totals.
	faultByLabel := map[string]cluster.FaultStats{}
	var checksums map[string]string
	var tuneRuns []bench.AutoTuneRun
	tuneIdx := map[string]int{}
	var profiles []bench.ProfileRecord
	profiled := map[string]bool{}
	profileErrs := 0
	if *jsonPath != "" {
		checksums = map[string]string{}
	}
	if *modelCheck || mw != nil || checksums != nil || plan != nil || *autoTune || *profile {
		cfg.Observe = func(label string, b *cluster.Backend) {
			if *profile {
				if p := b.Profile(); p != nil {
					// Self-check the tentpole invariant on every profiled
					// run: the critical path tiles the makespan exactly.
					mc := b.MaxClock()
					if math.Abs(p.Path.Length-mc) > 1e-9*math.Max(mc, 1) {
						fmt.Fprintf(os.Stderr,
							"op2ca-bench: %s: critical path %.9fs != makespan %.9fs\n",
							label, p.Path.Length, mc)
						profileErrs++
					}
					// Experiments reuse labels across tables (fig10 and
					// table2 measure the same configurations); identical
					// runs profile identically, so keep the first.
					if !profiled[label] {
						profiled[label] = true
						profiles = append(profiles, bench.NewProfileRecord(label, p))
					}
				}
			}
			if *modelCheck {
				fmt.Printf("-- %s --\n%s", label, b.ModelReport())
			}
			if mw != nil {
				b.Stats().WriteMetrics(mw, obs.Label{Key: "run", Value: label})
			}
			if checksums != nil {
				checksums[label] = b.ChecksumDats()
			}
			if at := b.Stats().AutoTune; at.Enabled && *jsonPath != "" {
				rec := bench.AutoTuneRun{Run: label, Calibration: at.Calib}
				for _, name := range at.Order {
					rec.Decisions = append(rec.Decisions, at.Decisions[name])
				}
				if len(at.Skipped) > 0 {
					rec.Skipped = at.Skipped
				}
				if i, ok := tuneIdx[label]; ok {
					tuneRuns[i] = rec
				} else {
					tuneIdx[label] = len(tuneRuns)
					tuneRuns = append(tuneRuns, rec)
				}
			}
			faultByLabel[label] = b.Stats().Faults
		}
	}

	var names []string
	if *experiments == "all" {
		names = bench.ExperimentOrder()
	} else {
		names = strings.Split(*experiments, ",")
	}
	registry := bench.Experiments()

	var sink *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	snap := bench.Snapshot{Nodes8M: cfg.Nodes8M, Nodes24M: cfg.Nodes24M,
		RankScale: cfg.RankScale, Iters: cfg.Iters}
	cfg.OverlapSink = func(r *bench.OverlapRecord) { snap.Overlap = r }
	emit(fmt.Sprintf("op2ca-bench: meshes %d/%d nodes, rank scale %g, %d iterations\n\n",
		cfg.Nodes8M, cfg.Nodes24M, cfg.RankScale, cfg.Iters))
	for _, name := range names {
		name = strings.TrimSpace(name)
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "op2ca-bench: unknown experiment %q (have %s)\n",
				name, strings.Join(bench.ExperimentOrder(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		var table *bench.Table
		if sup != nil {
			t, err := runSupervised(sup, run, &cfg, name)
			if err != nil {
				fatal(err)
			}
			table = t
		} else {
			t, crash := runRecovering(run, cfg)
			if crash != nil {
				fmt.Fprintf(os.Stderr, "op2ca-bench: injected crash of rank %d at exchange %d during %q\n",
					crash.Rank, crash.Exchange, name)
				if ring != nil {
					if gens, err := ring.Generations(); err == nil && len(gens) > 0 {
						fmt.Fprintf(os.Stderr, "op2ca-bench: resume with -restore %s (drop the crash= clause), or rerun with -supervise on\n",
							gens[0].Path)
					}
				}
				os.Exit(3)
			}
			table = t
		}
		elapsed := time.Since(start).Seconds()
		if *csv {
			emit(fmt.Sprintf("# %s\n%s\n", table.Title, table.CSV()))
		} else {
			emit(table.String())
			emit(fmt.Sprintf("(%s took %.1fs)\n\n", name, elapsed))
		}
		snap.Results = append(snap.Results, bench.Result{
			Name: name, Title: table.Title, Header: table.Header,
			Rows: table.Rows, Notes: table.Notes, Seconds: elapsed,
		})
	}

	if *profile {
		for _, p := range profiles {
			emit(fmt.Sprintf("profile %s: critpath %.6fs (makespan %.6fs), imbalance %.3f\n",
				p.Run, p.CritPath, p.Makespan, p.Imbalance))
		}
		if len(profiles) > 0 {
			emit("\n")
		}
	}
	var faultTotals cluster.FaultStats
	for _, fs := range faultByLabel {
		faultTotals.Add(fs)
	}
	var svStats cluster.SuperviseStats
	if sup != nil {
		sup.Finish(nil)
		svStats = sup.Stats()
		if svStats.Restarts > 0 {
			emit(fmt.Sprintf("supervise: recovered from %d failures (crash %d exchange %d watchdog %d), %d generations quarantined, backoff %.3fs virtual\n\n",
				svStats.Restarts, svStats.CrashRestarts, svStats.ExchangeRestarts,
				svStats.WatchdogTrips, svStats.Quarantined, svStats.BackoffVirtual))
		}
	}
	if plan != nil {
		emit(fmt.Sprintf("faults: %s -> drops %d corrupts %d delays %d retries %d giveups %d fallback_ungrouped %d fallback_perloop %d\n\n",
			plan.String(), faultTotals.Drops, faultTotals.Corrupts, faultTotals.Delays,
			faultTotals.Retries, faultTotals.Giveups,
			faultTotals.FallbackUngrouped, faultTotals.FallbackPerLoop))
	}
	if mw != nil {
		if err := mw.Flush(); err != nil {
			fatal(err)
		}
		if metricsFile != nil {
			fmt.Printf("metrics: written to %s\n", *metricsPath)
		}
	}
	if *tracePath != "" {
		if err := cfg.Tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d spans written to %s (open in Perfetto or chrome://tracing)\n",
			cfg.Tracer.Len(), *tracePath)
	}
	if *jsonPath != "" {
		if plan != nil {
			snap.FaultSpec = plan.String()
		}
		snap.Faults = &bench.FaultTotals{
			Drops:             faultTotals.Drops,
			Corrupts:          faultTotals.Corrupts,
			Delays:            faultTotals.Delays,
			Retries:           faultTotals.Retries,
			Giveups:           faultTotals.Giveups,
			FallbackUngrouped: faultTotals.FallbackUngrouped,
			FallbackPerLoop:   faultTotals.FallbackPerLoop,
		}
		snap.Checksums = checksums
		snap.AutoTune = tuneRuns
		snap.Profiles = profiles
		if sup != nil {
			snap.Supervise = bench.NewSuperviseRecord(svStats)
		}
		if err := snap.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("json: results written to %s\n", *jsonPath)
	}
	if profileErrs > 0 {
		fmt.Fprintf(os.Stderr, "op2ca-bench: %d run(s) failed the critical-path == makespan self-check\n", profileErrs)
		os.Exit(4)
	}
}

// runCompare implements -compare old.json new.json: load both snapshots,
// diff them under the -thresholds spec, print the report and return the
// process exit code (0 ok, 1 regression, 2 usage/IO error).
func runCompare(args []string, spec string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "op2ca-bench: -compare needs exactly two snapshot paths: old.json new.json")
		return 2
	}
	th, err := bench.ParseThresholds(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
		return 2
	}
	oldS, err := bench.ReadSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
		return 2
	}
	newS, err := bench.ReadSnapshot(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
		return 2
	}
	r := bench.CompareSnapshots(oldS, newS, th)
	fmt.Printf("compare %s -> %s\n%s", args[0], args[1], r)
	if !r.OK() {
		return 1
	}
	return 0
}

// runSupervised executes one experiment under the supervisor's retry loop:
// each attempt begins with a checkpoint-ring recovery scan (quarantining
// corrupt generations), carries the per-clause crash-arming mask and the
// escalating watchdog deadline into every backend the experiment builds, and
// a supervised failure charges the restart budget and retries. Runs whose
// label does not match the recovered snapshot re-execute deterministically,
// so the completed experiment's table is bitwise identical to an
// uninterrupted run's.
func runSupervised(sup *supervise.Supervisor, run func(bench.Config) *bench.Table,
	cfg *bench.Config, name string) (*bench.Table, error) {
	for {
		st, err := sup.Recover()
		if err != nil {
			return nil, err
		}
		cfg.Resume = st
		cfg.ArmedCrashes = sup.Armed()
		cfg.Watchdog = sup.Watchdog()
		var table *bench.Table
		err = supervise.Catch(func() error {
			table = run(*cfg)
			return nil
		})
		if err == nil {
			return table, nil
		}
		fmt.Fprintf(os.Stderr, "op2ca-bench: supervised failure during %q: %v\n", name, err)
		if ferr := sup.OnFailure(err); ferr != nil {
			return nil, ferr
		}
	}
}

// runRecovering executes one experiment, converting an injected crash fault
// (the crash=rankN@E grammar) into a reportable value instead of a panic
// trace, so main can point at the last checkpoint and exit with a distinct
// status.
func runRecovering(run func(bench.Config) *bench.Table, cfg bench.Config) (t *bench.Table, crash *faults.CrashError) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*faults.CrashError)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	return run(cfg), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
	os.Exit(1)
}
