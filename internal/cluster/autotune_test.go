package cluster

import (
	"bytes"
	"strings"
	"testing"

	"op2ca/internal/chaincfg"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// tunedResult runs the mini-app with the autotuner engaged and returns the
// final dats and the backend.
func tunedResult(t *testing.T, m *mesh.FV3D, steps, nparts int, tweak func(*Config)) (map[string][]float64, *Backend) {
	t.Helper()
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	cfg := Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), nparts),
		NParts: nparts, Depth: 2, MaxChainLen: 4, CA: true, AutoTune: true,
		Machine: machine.ARCHER2(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, steps, true)
	return map[string][]float64{
		"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux),
	}, b
}

// TestAutoTuneRequiresCA: the tuner picks between per-loop and Algorithm 2
// execution, so it is meaningless on an op2-only backend.
func TestAutoTuneRequiresCA(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	a := newMiniApp(m)
	_, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.Block(m.NNodes, 3),
		NParts: 3, Depth: 2, MaxChainLen: 4, AutoTune: true,
		Machine: machine.ARCHER2(),
	})
	if err == nil || !strings.Contains(err.Error(), "AutoTune requires CA") {
		t.Fatalf("err = %v, want AutoTune-requires-CA", err)
	}
}

// TestAutoTuneBitIdentical: the tuner is pure performance surface — an
// autotuned run's results must match both the sequential reference and the
// static CA run bit for bit, whatever policies it probed or chose.
func TestAutoTuneBitIdentical(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	const steps, nparts = 6, 5
	want := seqResult(m, steps)
	tuned, b := tunedResult(t, m, steps, nparts, nil)
	compareExact(t, "autotune vs seq", tuned, want)
	static, _ := clusterResult(t, m, steps, nparts, true, true, false,
		partition.KWay(m.NodeAdjacency(), nparts))
	compareExact(t, "autotune vs static CA", tuned, static)
	if !b.Stats().AutoTune.Enabled {
		t.Fatal("tuner never engaged")
	}
	if len(b.Stats().AutoTune.Decisions) == 0 {
		t.Fatal("no decision recorded")
	}
}

// TestAutoTuneChoosesPredictedMinimum: the chosen policy must be the
// predicted minimum over the scored candidates, with OP2 keeping ties
// (candidates are scored OP2-first, so jq's min_by agrees).
func TestAutoTuneChoosesPredictedMinimum(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	_, b := tunedResult(t, m, 6, 5, nil)
	at := b.Stats().AutoTune
	if len(at.Order) == 0 {
		t.Fatal("no decisions")
	}
	for _, name := range at.Order {
		d := at.Decisions[name]
		if len(d.Candidates) == 0 {
			t.Fatalf("%s: decision with no candidates: %+v", name, d)
		}
		best := d.Candidates[0]
		for _, c := range d.Candidates[1:] {
			if c.Predicted < best.Predicted {
				best = c
			}
		}
		if d.Chosen != best.Policy {
			t.Errorf("%s: chose %q, predicted minimum is %q (%+v)", name, d.Chosen, best.Policy, d.Candidates)
		}
		if d.Predicted != best.Predicted {
			t.Errorf("%s: Predicted %g != winner's %g", name, d.Predicted, best.Predicted)
		}
		if d.Windows == 0 {
			t.Errorf("%s: no decided windows measured", name)
		}
	}
}

// TestAutoTuneSelectsCAWhenModelFavoursIt: under a latency-dominated
// machine the grouped CA exchange must price (and get chosen) below OP2's
// per-loop exchanges, and the chain must then actually execute with CA.
func TestAutoTuneSelectsCAWhenModelFavoursIt(t *testing.T) {
	m := mesh.Rotor(10, 8, 6)
	slow := machine.ARCHER2()
	slow.Latency = 200e-6 // make per-loop message latencies dominate
	_, b := tunedResult(t, m, 6, 6, func(c *Config) { c.Machine = slow })
	d := b.Stats().AutoTune.Decisions["synth"]
	if d == nil {
		t.Fatal("no decision for synth")
	}
	if !d.ChosenPolicy.CA {
		t.Fatalf("latency-dominated machine must choose CA: %+v", d)
	}
	if cs := b.Stats().Chains["synth"]; cs == nil || cs.CAExecutions == 0 {
		t.Fatal("decision chose CA but no CA execution ran")
	}
	// Fast network, heavy redundant compute: model must keep OP2.
	fast := machine.ARCHER2()
	fast.Latency = 1e-12
	fast.Bandwidth = 1e15
	_, b2 := tunedResult(t, m, 6, 6, func(c *Config) { c.Machine = fast })
	d2 := b2.Stats().AutoTune.Decisions["synth"]
	if d2 == nil {
		t.Fatal("no decision for synth on the fast machine")
	}
	if d2.ChosenPolicy.CA {
		t.Fatalf("near-free communication must keep OP2: %+v", d2)
	}
}

// TestAutoTuneReplans: an unreachable accuracy bar forces a re-tune after
// every decided window, still bit-identically.
func TestAutoTuneReplans(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	const steps = 6
	want := seqResult(m, steps)
	got, b := tunedResult(t, m, steps, 5, func(c *Config) { c.Tune.ReplanPct = 1e-12 })
	compareExact(t, "replanning run vs seq", got, want)
	d := b.Stats().AutoTune.Decisions["synth"]
	if d == nil {
		t.Fatal("no decision for synth")
	}
	if d.Replans == 0 {
		t.Fatal("a 1e-12% accuracy bar must force re-planning")
	}
}

// TestAutoTuneSkipsUnsafeConfiguredChain: a configured chain whose pinned
// halo extensions sit below the conservative analysis (the Hydra paper
// configuration pattern) computes different values per-loop than with CA,
// so the tuner must refuse to probe it and leave the static policy alone.
func TestAutoTuneSkipsUnsafeConfiguredChain(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	chains, err := chaincfg.ParseString("chain synth maxhe=1\n")
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	got, b := tunedResult(t, m, steps, 5, func(c *Config) { c.Chains = chains })
	at := b.Stats().AutoTune
	if len(at.Skipped) == 0 {
		t.Fatalf("capped chain must be skipped: %+v", at)
	}
	if _, ok := at.Decisions["synth"]; ok {
		t.Fatal("skipped chain must not be tuned")
	}
	// The static capped-HE run is the reference the tuner must not disturb.
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	ref, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 5),
		NParts: 5, Depth: 2, MaxChainLen: 4, CA: true, Chains: chains,
		Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(ref, steps, true)
	compareExact(t, "skipped chain vs static capped run", got,
		map[string][]float64{"res": ref.GatherDat(a.res), "flux": ref.GatherDat(a.flux)})
}

// TestChainAutoFlagEnablesTuning: the chaincfg "auto" token opts a single
// chain into tuning without the backend-wide AutoTune switch.
func TestChainAutoFlagEnablesTuning(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	chains, err := chaincfg.ParseString("chain synth auto\n")
	if err != nil {
		t.Fatal(err)
	}
	_, b := tunedResult(t, m, 5, 5, func(c *Config) {
		c.AutoTune = false
		c.Chains = chains
	})
	if d := b.Stats().AutoTune.Decisions["synth"]; d == nil {
		t.Fatal("per-chain auto flag must engage the tuner")
	}
}

// TestAutoTuneLazyChains: lazily detected chains tune too, keyed by their
// structural signature, and stay bit-identical to the eager static run.
func TestAutoTuneLazyChains(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	const steps = 6
	want := seqResult(m, steps)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 5),
		NParts: 5, Depth: 2, MaxChainLen: 4, CA: true, Lazy: true, AutoTune: true,
		Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, steps, false) // no explicit chain demarcation
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "lazy autotune vs seq", got, want)
	if !b.Stats().AutoTune.Enabled {
		t.Fatal("lazy chains never engaged the tuner")
	}
}

// TestAutoTuneObservability: decisions surface through the stats report,
// the Prometheus export and a zero-length tune trace span.
func TestAutoTuneObservability(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	tr := obs.New()
	_, b := tunedResult(t, m, 6, 5, func(c *Config) { c.Tracer = tr })
	s := b.Stats().String()
	if !strings.Contains(s, "autotune: chain synth") || !strings.Contains(s, "candidate op2") {
		t.Errorf("stats report missing autotune lines:\n%s", s)
	}
	var buf bytes.Buffer
	mw := obs.NewMetricsWriter(&buf)
	b.Stats().WriteMetrics(mw)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"op2ca_autotune_decisions_total", "op2ca_autotune_predicted_seconds",
		"op2ca_autotune_latency_seconds", "op2ca_autotune_g_seconds",
	} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("metrics missing %s", metric)
		}
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.Kind == obs.Tune {
			found = true
			if sp.End != sp.Begin {
				t.Errorf("tune span must be zero-length: %+v", sp)
			}
			if !strings.HasPrefix(sp.Name, "synth -> ") {
				t.Errorf("tune span name = %q", sp.Name)
			}
		}
	}
	if !found {
		t.Error("no tune span emitted")
	}
}
