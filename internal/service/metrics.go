package service

import (
	"io"
	"sort"

	"op2ca/internal/obs"
)

// WriteMetrics renders the service counters and gauges in Prometheus
// text exposition format, reusing the repo's metrics plumbing
// (obs.MetricsWriter) so the server's /metrics endpoint speaks the same
// dialect as op2ca-bench -metrics.
func (s *Service) WriteMetrics(w io.Writer) error {
	mw := obs.NewMetricsWriter(w)
	s.mu.Lock()
	defer s.mu.Unlock()

	mw.Declare("op2ca_service_jobs_submitted_total", "counter",
		"Jobs accepted for execution, by tenant.")
	tenants := make([]string, 0, len(s.submitted))
	for t := range s.submitted {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		mw.Sample("op2ca_service_jobs_submitted_total",
			[]obs.Label{{Key: "tenant", Value: t}}, float64(s.submitted[t]))
	}

	mw.Declare("op2ca_service_jobs_rejected_total", "counter",
		"Jobs shed at admission, by reason.")
	mw.Sample("op2ca_service_jobs_rejected_total",
		[]obs.Label{{Key: "reason", Value: "queue_full"}}, float64(s.shedQueue))
	mw.Sample("op2ca_service_jobs_rejected_total",
		[]obs.Label{{Key: "reason", Value: "tenant_quota"}}, float64(s.shedTenant))

	mw.Declare("op2ca_service_jobs_completed_total", "counter",
		"Jobs reaching a terminal state, by state.")
	for _, c := range []struct {
		state string
		n     int
	}{{"done", s.nDone}, {"failed", s.nFailed}, {"cancelled", s.nCancelled}} {
		mw.Sample("op2ca_service_jobs_completed_total",
			[]obs.Label{{Key: "state", Value: c.state}}, float64(c.n))
	}

	mw.Declare("op2ca_service_preemptions_total", "counter",
		"Attempts vacated by preemption (requeued without charging the supervise budget).")
	mw.Sample("op2ca_service_preemptions_total", nil, float64(s.preempts))

	mw.Declare("op2ca_service_restarts_total", "counter",
		"Supervised restarts across all jobs (crash faults, exchange giveups, watchdog trips).")
	mw.Sample("op2ca_service_restarts_total", nil, float64(s.restarts))

	mw.Declare("op2ca_service_queue_depth", "gauge",
		"Jobs awaiting placement.")
	mw.Sample("op2ca_service_queue_depth", nil, float64(len(s.queue)))

	running := 0
	for _, wk := range s.workers {
		if wk.busy != nil {
			running++
		}
	}
	mw.Declare("op2ca_service_jobs_running", "gauge", "Attempts executing now.")
	mw.Sample("op2ca_service_jobs_running", nil, float64(running))

	mw.Declare("op2ca_service_workers", "gauge", "Executor pool size.")
	mw.Sample("op2ca_service_workers", nil, float64(len(s.workers)))

	mw.Declare("op2ca_service_worker_virtual_seconds_total", "counter",
		"Virtual seconds of completed attempts, by worker (the placement load signal).")
	mw.Declare("op2ca_service_worker_jobs_total", "counter",
		"Attempts settled, by worker.")
	for _, wk := range s.workers {
		lbl := []obs.Label{{Key: "worker", Value: wk.name}}
		mw.Sample("op2ca_service_worker_virtual_seconds_total", lbl, wk.load)
		mw.Sample("op2ca_service_worker_jobs_total", lbl, float64(wk.jobs))
	}
	return mw.Flush()
}
