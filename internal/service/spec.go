package service

import (
	"fmt"
	"regexp"
	"strings"

	"op2ca/internal/chaincfg"
	"op2ca/internal/cmdutil"
	"op2ca/internal/faults"
	"op2ca/internal/hydra"
	"op2ca/internal/machine"
	"op2ca/internal/supervise"
)

// JobSpec is the wire form of a job submission: which mini-app to run, how
// big, on how many simulated ranks, under which fault/supervision regime.
// The zero value of every optional field means "use the service default";
// Validate fills the defaults in, so the spec echoed back in views and
// results is fully resolved.
type JobSpec struct {
	// Tenant namespaces the job for admission control and accounting.
	// Required; a short token of letters, digits, '.', '_' and '-'.
	Tenant string `json:"tenant"`
	// App selects the workload: "mgcfd" (multigrid Euler solver with
	// optional synthetic loop-chains) or "hydra" (the paper's six
	// published loop-chains in an RK5 skeleton). Required.
	App string `json:"app"`
	// MeshNodes is the approximate node count of the synthetic rotor
	// mesh (finest level for mgcfd). Default 2000.
	MeshNodes int `json:"mesh_nodes,omitempty"`
	// Levels is the mgcfd multigrid depth (default 2). mgcfd only.
	Levels int `json:"levels,omitempty"`
	// NChains is the number of synthetic chain pairs mgcfd interleaves
	// per iteration (default 2; 0 disables). mgcfd only.
	NChains int `json:"nchains,omitempty"`
	// Ranks is the simulated MPI rank count. Default 4.
	Ranks int `json:"ranks,omitempty"`
	// Backend is "op2" or "ca" (default "ca"). The sequential reference
	// is not served: it has no virtual clock and nothing to checkpoint.
	Backend string `json:"backend,omitempty"`
	// Overlap runs the job's CA chains on the overlap-capable task-graph
	// executor (see internal/cluster/taskgraph.go). Results stay bitwise
	// identical to the bulk-synchronous run; only virtual time moves.
	Overlap bool `json:"overlap,omitempty"`
	// Iters is the main-loop iteration count. Default 5.
	Iters int `json:"iters,omitempty"`
	// Machine is the performance model: archer2, cirrus or laptop
	// (default archer2, matching the CLI defaults).
	Machine string `json:"machine,omitempty"`
	// Partitioner is kway, rib, rcb or block (default kway for mgcfd,
	// rib for hydra, matching the CLI defaults).
	Partitioner string `json:"partitioner,omitempty"`
	// Chains is an inline chaincfg file overriding hydra's built-in
	// paper configuration. hydra only.
	Chains string `json:"chains,omitempty"`
	// Faults is a fault-injection plan in the -faults grammar, crash
	// clauses included (chaos testing of the service rides on these).
	Faults string `json:"faults,omitempty"`
	// Supervise is a -supervise spec. Empty enables supervision with
	// defaults: every served job is supervised, because the supervisor's
	// ring is also what makes it preemptible.
	Supervise string `json:"supervise,omitempty"`
	// CheckpointEvery is the ring snapshot cadence in iterations
	// (default 1). Denser rings make preemption cheaper.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Admission bounds. They cap what one job may ask of a worker, not what
// the grammar can express: a served job shares its worker pool.
const (
	MaxMeshNodes = 200_000
	MaxRanks     = 64
	MaxIters     = 500
	MaxLevels    = 6
	MaxNChains   = 64
	MaxCkptEvery = 500
)

var tenantRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// workload is a validated, fully resolved job: the normalized spec plus
// every parsed artifact the runner needs (fault plan, supervise spec,
// machine model, hydra chain configuration and halo depth).
type workload struct {
	spec   JobSpec
	plan   *faults.Plan
	sv     supervise.Spec
	mach   *machine.Machine
	chains *chaincfg.Config // hydra only
	depth  int
}

// Validate checks spec against the job grammar and admission bounds,
// fills defaults, and returns the resolved workload. Every error it
// returns maps to HTTP 400: nothing here inspects service state.
func (s JobSpec) Validate() (*workload, error) {
	if !tenantRE.MatchString(s.Tenant) {
		return nil, fmt.Errorf("tenant %q: need 1-64 chars of [a-zA-Z0-9._-] starting alphanumeric", s.Tenant)
	}
	if s.App != "mgcfd" && s.App != "hydra" {
		return nil, fmt.Errorf("app %q: want mgcfd or hydra", s.App)
	}
	if s.Backend == "" {
		s.Backend = "ca"
	}
	if s.Backend != "op2" && s.Backend != "ca" {
		return nil, fmt.Errorf("backend %q: want op2 or ca", s.Backend)
	}
	if s.MeshNodes == 0 {
		s.MeshNodes = 2000
	}
	if s.MeshNodes < 60 || s.MeshNodes > MaxMeshNodes {
		return nil, fmt.Errorf("mesh_nodes %d outside [60, %d]", s.MeshNodes, MaxMeshNodes)
	}
	if s.Ranks == 0 {
		s.Ranks = 4
	}
	if s.Ranks < 2 || s.Ranks > MaxRanks {
		return nil, fmt.Errorf("ranks %d outside [2, %d]", s.Ranks, MaxRanks)
	}
	if s.Iters == 0 {
		s.Iters = 5
	}
	if s.Iters < 1 || s.Iters > MaxIters {
		return nil, fmt.Errorf("iters %d outside [1, %d]", s.Iters, MaxIters)
	}
	if s.CheckpointEvery == 0 {
		s.CheckpointEvery = 1
	}
	if s.CheckpointEvery < 1 || s.CheckpointEvery > MaxCkptEvery {
		return nil, fmt.Errorf("checkpoint_every %d outside [1, %d]", s.CheckpointEvery, MaxCkptEvery)
	}

	switch s.App {
	case "mgcfd":
		if s.Chains != "" {
			return nil, fmt.Errorf("chains is hydra-only")
		}
		if s.Levels == 0 {
			s.Levels = 2
		}
		if s.Levels < 1 || s.Levels > MaxLevels {
			return nil, fmt.Errorf("levels %d outside [1, %d]", s.Levels, MaxLevels)
		}
		if s.NChains < 0 || s.NChains > MaxNChains {
			return nil, fmt.Errorf("nchains %d outside [0, %d]", s.NChains, MaxNChains)
		}
		if s.Partitioner == "" {
			s.Partitioner = "kway"
		}
	case "hydra":
		if s.Levels != 0 || s.NChains != 0 {
			return nil, fmt.Errorf("levels/nchains are mgcfd-only")
		}
		if s.Partitioner == "" {
			s.Partitioner = "rib"
		}
	}
	switch s.Partitioner {
	case "kway", "rib", "rcb", "block":
	default:
		return nil, fmt.Errorf("partitioner %q: want kway, rib, rcb or block", s.Partitioner)
	}
	if s.Machine == "" {
		s.Machine = "archer2"
	}
	mach, err := cmdutil.MachineByName(s.Machine)
	if err != nil {
		return nil, err
	}

	w := &workload{mach: mach, depth: 2}
	if s.App == "hydra" {
		w.chains = hydra.MustPaperConfig()
		if s.Chains != "" {
			cfg, err := chaincfg.Parse(strings.NewReader(s.Chains))
			if err != nil {
				return nil, err
			}
			w.chains = cfg
			// A custom file may pin deeper extensions; build generously.
			for _, name := range cfg.Order {
				c := cfg.Chains[name]
				if c.MaxHE > w.depth {
					w.depth = c.MaxHE
				}
				for _, l := range c.Loops {
					if l.HE > w.depth {
						w.depth = l.HE
					}
				}
			}
		}
	}
	if s.Faults != "" {
		if w.plan, err = faults.Parse(s.Faults); err != nil {
			return nil, err
		}
	}
	if s.Supervise == "" {
		w.sv = supervise.Spec{Enabled: true, Budget: supervise.DefaultBudget, Backoff: supervise.DefaultBackoff}
	} else if w.sv, err = supervise.ParseSpec(s.Supervise); err != nil {
		return nil, err
	}
	if !w.sv.Enabled {
		return nil, fmt.Errorf("supervise %q parsed to disabled; served jobs must be supervised", s.Supervise)
	}
	s.Supervise = w.sv.String()
	w.spec = s
	return w, nil
}
