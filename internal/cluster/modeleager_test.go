package cluster

import (
	"math"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestModelEagerTermImprovesLargeMessages: on a CA chain whose grouped
// messages exceed the MPI eager threshold, the network simulator charges
// the two-latency rendezvous handshake per message, so the Equation (3)
// prediction must carry the same term. The model's |predicted - measured|
// error must be strictly smaller than what the old model — which priced
// every message as eager — would have produced on the same run.
func TestModelEagerTermImprovesLargeMessages(t *testing.T) {
	const (
		dim   = 1024 // 8 KiB per node: any halo beyond 8 nodes crosses the 64 KiB eager limit
		iters = 6
	)
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	q := p.DeclDat(nodes, dim, nil, "q")
	for i := range q.Data {
		q.Data[i] = float64(i%5 - 2)
	}
	kern := &core.Kernel{Name: "k_eager", Fn: func(a [][]float64) {
		a[0][0] += 0.25 * a[1][0]
	}}
	loop := core.NewLoop(kern, edges,
		core.ArgDat(q, 0, e2n, core.Inc),
		core.ArgDat(q, 1, e2n, core.Read))

	mach := machine.ARCHER2()
	b, err := New(Config{
		Prog: p, Primary: nodes, Assign: partition.Block(m.NNodes, 2),
		NParts: 2, Depth: 2, CA: true, Machine: mach,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		b.ChainBegin("big")
		b.ParLoop(loop)
		b.ParLoop(loop)
		b.ChainEnd()
	}

	cs := b.Stats().Chains["big"]
	if cs == nil {
		t.Fatal("no stats recorded for chain big")
	}
	if cs.CAExecutions != iters {
		t.Fatalf("chain fell back to per-loop execution: %d/%d CA", cs.CAExecutions, iters)
	}
	if cs.MaxMsgBytes <= mach.EagerThreshold {
		t.Fatalf("workload too small: largest grouped message %d bytes <= eager threshold %d",
			cs.MaxMsgBytes, mach.EagerThreshold)
	}
	if cs.MaxNeighbours != 1 || cs.Msgs%2 != 0 {
		t.Fatalf("unexpected exchange shape: neighbours=%d msgs=%d", cs.MaxNeighbours, cs.Msgs)
	}

	// With two ranks each sending one grouped message per exchanged
	// execution, Msgs/2 executions exchanged, and each contributed exactly
	// p·Handshake = 1·2L to the Equation (3) prediction. The old model
	// omitted that term, so it predicted the handshake total less.
	handshake := 2 * mach.Latency
	oldPredicted := cs.Predicted - float64(cs.Msgs/2)*handshake

	errNew := math.Abs(cs.Predicted - cs.Time)
	errOld := math.Abs(oldPredicted - cs.Time)
	if errOld <= errNew {
		t.Errorf("eager-term fix did not improve the model: |err| old %g <= new %g (measured %g, predicted %g)",
			errOld, errNew, cs.Time, cs.Predicted)
	}
}
