package hydra

import (
	"math"
	"testing"

	"op2ca/internal/ca"
	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// recorder captures the loops a chain method issues, for inspector tests.
type recorder struct{ loops []core.Loop }

func (r *recorder) ParLoop(l core.Loop) { r.loops = append(r.loops, l) }
func (r *recorder) ChainBegin(string)   {}
func (r *recorder) ChainEnd()           {}
func (r *recorder) Name() string        { return "recorder" }
func (r *recorder) reset() []core.Loop  { l := r.loops; r.loops = nil; return l }

func testMesh() *mesh.FV3D { return mesh.Rotor(10, 8, 6) }

// TestChainHaloExtensions reproduces the halo-extension columns of Tables 3
// and 4 from Algorithm 3 running on the proxy's access descriptors.
func TestChainHaloExtensions(t *testing.T) {
	a := New(testMesh())
	rec := &recorder{}

	cases := []struct {
		name string
		emit func()
		want []int
	}{
		{"period", func() { a.RunPeriod(rec, false) }, []int{2, 2, 1, 2, 1, 1}},
		{"gradl", func() { a.RunGradl(rec, false) }, []int{2, 1}},
		{"vflux", func() { a.RunVflux(rec, false) }, []int{1, 1}},
		{"iflux", func() { a.RunIflux(rec, false) }, []int{1, 1}},
		{"jacob", func() { a.RunJacob(rec, false) }, []int{1, 1, 1}},
	}
	for _, c := range cases {
		c.emit()
		loops := rec.reset()
		got := ca.CalcHaloLayers(loops)
		if len(got) != len(c.want) {
			t.Fatalf("%s: %d loops, want %d", c.name, len(got), len(c.want))
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: Algorithm 3 HE = %v, want %v (Table 3/4)", c.name, got, c.want)
				break
			}
		}
	}

	// The weight chain's published extensions come from the configuration
	// file (application knowledge); check the config reproduces Table 3.
	a.RunWeight(rec, false)
	loops := rec.reset()
	cfg := MustPaperConfig()
	over, err := cfg.Get("weight").HEOverrides(len(loops))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ca.Inspect("weight", loops, over)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 2, 2, 1}
	for i := range want {
		if plan.HE[i] != want[i] {
			t.Fatalf("weight configured HE = %v, want %v", plan.HE, want)
		}
	}
}

func TestIterationStaysFinite(t *testing.T) {
	a := New(testMesh())
	b := core.NewSeq()
	a.RunSetup(b, false)
	for it := 0; it < 20; it++ {
		a.RunIteration(b, false)
	}
	for _, d := range []*core.Dat{a.Qp, a.Ql, a.Qo, a.Vol, a.Jac, a.Res, a.Qmu, a.Qrg} {
		for i, v := range d.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Fatalf("%s[%d] = %g after 20 iterations", d.Name, i, v)
			}
		}
	}
}

func runApp(b core.Backend, a *App, iters int, chained bool) {
	a.RunSetup(b, chained)
	for it := 0; it < iters; it++ {
		a.RunIteration(b, chained)
	}
}

func maxRelDiff(got, want []float64) float64 {
	worst := 0.0
	for i := range want {
		rel := math.Abs(got[i]-want[i]) / (math.Abs(want[i]) + 1e-30)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func TestDistributedOP2MatchesSeq(t *testing.T) {
	m := testMesh()
	ref := New(m)
	runApp(core.NewSeq(), ref, 3, false)

	a := New(m)
	assign := partition.RIB(m.Coords, 3, 4) // Hydra's default partitioner
	b, err := cluster.New(cluster.Config{
		Prog: a.Prog, Primary: a.Nodes, Assign: assign, NParts: 4, Depth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runApp(b, a, 3, false)
	for _, pair := range [][2]*core.Dat{
		{a.Qp, ref.Qp}, {a.Ql, ref.Ql}, {a.Qo, ref.Qo}, {a.Vol, ref.Vol},
		{a.Jac, ref.Jac}, {a.Res, ref.Res}, {a.Qrg, ref.Qrg},
	} {
		if rel := maxRelDiff(b.GatherDat(pair[0]), pair[1].Data); rel > 1e-9 {
			t.Fatalf("%s: max rel diff %g vs sequential", pair[0].Name, rel)
		}
	}
}

// TestCASafeModeMatchesSeq checks exactness when the inspector's safe
// analysis picks the halo extensions (deeper than the paper's for the
// weight and period chains).
func TestCASafeModeMatchesSeq(t *testing.T) {
	m := testMesh()
	ref := New(m)
	runApp(core.NewSeq(), ref, 3, true)

	a := New(m)
	assign := partition.RIB(m.Coords, 3, 4)
	b, err := cluster.New(cluster.Config{
		Prog: a.Prog, Primary: a.Nodes, Assign: assign, NParts: 4,
		Depth: 5, MaxChainLen: 6, CA: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runApp(b, a, 3, true)
	for _, pair := range [][2]*core.Dat{
		{a.Qp, ref.Qp}, {a.Ql, ref.Ql}, {a.Qo, ref.Qo}, {a.Vol, ref.Vol},
		{a.Jac, ref.Jac}, {a.Res, ref.Res}, {a.Qrg, ref.Qrg},
	} {
		if rel := maxRelDiff(b.GatherDat(pair[0]), pair[1].Data); rel > 1e-9 {
			t.Fatalf("%s: max rel diff %g vs sequential (safe mode must be exact)", pair[0].Name, rel)
		}
	}
	for _, name := range []string{"weight", "period", "gradl", "vflux", "iflux", "jacob"} {
		cs := b.Stats().Chains[name]
		if cs == nil || cs.CAExecutions == 0 {
			t.Errorf("chain %s did not execute with CA: %+v", name, cs)
		}
	}
}

// TestCAPaperConfigBoundedDeviation runs the published halo extensions
// (Tables 3-4). The weight and period chains' published extensions are
// shallower than the conservative analysis requires, so results may deviate
// at partition boundaries; the paper relies on the production numerics
// tolerating this. The test quantifies the deviation and requires it small.
func TestCAPaperConfigBoundedDeviation(t *testing.T) {
	m := testMesh()
	ref := New(m)
	runApp(core.NewSeq(), ref, 3, true)

	a := New(m)
	assign := partition.RIB(m.Coords, 3, 4)
	b, err := cluster.New(cluster.Config{
		Prog: a.Prog, Primary: a.Nodes, Assign: assign, NParts: 4,
		Depth: 2, MaxChainLen: 6, CA: true, Chains: MustPaperConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runApp(b, a, 3, true)
	worst := 0.0
	for _, pair := range [][2]*core.Dat{
		{a.Qp, ref.Qp}, {a.Ql, ref.Ql}, {a.Qo, ref.Qo}, {a.Vol, ref.Vol}, {a.Res, ref.Res},
	} {
		rel := maxRelDiff(b.GatherDat(pair[0]), pair[1].Data)
		t.Logf("%s: max rel deviation %.3g under published halo extensions", pair[0].Name, rel)
		if rel > worst {
			worst = rel
		}
		for _, v := range b.GatherDat(pair[0]) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s contains non-finite values", pair[0].Name)
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("deviation %.3g exceeds 2%%; published extensions should only perturb boundary values slightly", worst)
	}
}

// TestLazyModeMatchesSeq: the Hydra proxy with NO chain annotations under
// lazy mode (automatic chain detection) must match the sequential reference.
func TestLazyModeMatchesSeq(t *testing.T) {
	m := testMesh()
	ref := New(m)
	runApp(core.NewSeq(), ref, 2, false)

	a := New(m)
	b, err := cluster.New(cluster.Config{
		Prog: a.Prog, Primary: a.Nodes, Assign: partition.RIB(m.Coords, 3, 4), NParts: 4,
		Depth: 5, MaxChainLen: 6, CA: true, Lazy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runApp(b, a, 2, false) // chained=false: lazy mode finds the chains
	for _, pair := range [][2]*core.Dat{{a.Qp, ref.Qp}, {a.Qo, ref.Qo}, {a.Res, ref.Res}} {
		if rel := maxRelDiff(b.GatherDat(pair[0]), pair[1].Data); rel > 1e-9 {
			t.Fatalf("%s: max rel diff %g under lazy mode", pair[0].Name, rel)
		}
	}
	cs := b.Stats().Chains["lazy"]
	if cs == nil || cs.CAExecutions == 0 {
		t.Fatalf("lazy mode detected no CA chains: %+v", cs)
	}
}

// TestChainMessageReduction: the period and jacob chains (highest
// communication reduction in the paper) must send fewer messages under CA.
func TestChainMessageReduction(t *testing.T) {
	m := testMesh()
	assign := partition.RIB(m.Coords, 3, 6)
	run := func(caMode bool) *cluster.Backend {
		a := New(m)
		b, err := cluster.New(cluster.Config{
			Prog: a.Prog, Primary: a.Nodes, Assign: assign, NParts: 6,
			Depth: 2, MaxChainLen: 6, CA: caMode, Chains: MustPaperConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		runApp(b, a, 2, caMode)
		return b
	}
	op2 := run(false)
	cab := run(true)
	count := func(b *cluster.Backend) int64 {
		var n int64
		for _, ls := range b.Stats().Loops {
			n += ls.Msgs
		}
		for _, cs := range b.Stats().Chains {
			n += cs.Msgs
		}
		return n
	}
	if count(cab) >= count(op2) {
		t.Fatalf("CA messages %d >= OP2 messages %d", count(cab), count(op2))
	}
}
