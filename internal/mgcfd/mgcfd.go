// Package mgcfd reimplements the MG-CFD mini-app (Owenson et al., CCPE
// 2020) on the op2ca DSL: a 3-D unstructured multi-grid finite-volume
// solver for the Euler equations of inviscid compressible flow, node-
// centred, with edge-based flux accumulation — the first evaluation
// application of the paper (Section 4.1).
//
// The package also provides the paper's synthetic loop-chain (Section
// 4.1.1): repeated (update, edge_flux) pairs with the
// increment-then-indirect-read access pattern, extendable via nchains,
// where edge_flux replicates the arithmetic of the most expensive MG-CFD
// kernel. The chain requires at most two halo layers (r = 2) at any chain
// length, matching the paper's benchmark setting.
package mgcfd

import (
	"fmt"
	"math"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
)

// Gas constants: gamma = 1.4, freestream at Mach 0.4 like MG-CFD's deck.
const (
	gamma = 1.4
	gm1   = gamma - 1
	// CFL is deliberately small: the synthetic rotor meshes are not
	// smoothed, and stability is all the benchmark needs.
	cfl = 0.05
)

// Level is one multigrid level: its sets, maps and data.
type Level struct {
	Nodes  *core.Set
	Edges  *core.Set
	Bedges *core.Set
	E2N    *core.Map
	B2N    *core.Map
	// F2C maps this level's nodes to the next coarser level's nodes;
	// nil on the coarsest level.
	F2C *core.Map

	Vars    *core.Dat // [rho, mx, my, mz, E] per node
	Fluxes  *core.Dat // accumulated residual, dim 5
	Volumes *core.Dat
	StepFac *core.Dat
	EdgeW   *core.Dat // dual-face area vectors, dim 3
	BedgeW  *core.Dat
	BedgeG  *core.Dat // boundary group as float (0..5)
	// VarsSave holds the restricted state before the coarse sweep, so
	// prolongation transfers the coarse correction; RCount holds the
	// number of fine contributors per coarse node (restriction weights).
	// Both are nil on the finest level.
	VarsSave *core.Dat
	RCount   *core.Dat
}

// App is the MG-CFD application state: a program over a multigrid
// hierarchy.
type App struct {
	Prog   *core.Program
	Levels []*Level
	// Primary is the finest level's node set (the partitioned set).
	Primary *core.Set

	syn *Synthetic
}

// New declares the MG-CFD program over the hierarchy.
func New(h *mesh.Hierarchy) *App {
	a := &App{Prog: core.NewProgram()}
	for li, m := range h.Levels {
		lv := &Level{}
		lv.Nodes = a.Prog.DeclSet(m.NNodes, fmt.Sprintf("nodes_l%d", li))
		lv.Edges = a.Prog.DeclSet(m.NEdges, fmt.Sprintf("edges_l%d", li))
		lv.Bedges = a.Prog.DeclSet(m.NBedges, fmt.Sprintf("bedges_l%d", li))
		lv.E2N = a.Prog.DeclMap(lv.Edges, lv.Nodes, 2, m.EdgeNodes, fmt.Sprintf("e2n_l%d", li))
		lv.B2N = a.Prog.DeclMap(lv.Bedges, lv.Nodes, 1, m.BedgeNodes, fmt.Sprintf("b2n_l%d", li))
		lv.Vars = a.Prog.DeclDat(lv.Nodes, 5, nil, fmt.Sprintf("vars_l%d", li))
		lv.Fluxes = a.Prog.DeclDat(lv.Nodes, 5, nil, fmt.Sprintf("fluxes_l%d", li))
		lv.Volumes = a.Prog.DeclDat(lv.Nodes, 1, m.Volumes, fmt.Sprintf("volumes_l%d", li))
		lv.StepFac = a.Prog.DeclDat(lv.Nodes, 1, nil, fmt.Sprintf("stepfac_l%d", li))
		lv.EdgeW = a.Prog.DeclDat(lv.Edges, 3, m.EdgeWeights, fmt.Sprintf("edgew_l%d", li))
		lv.BedgeW = a.Prog.DeclDat(lv.Bedges, 3, m.BedgeWeights, fmt.Sprintf("bedgew_l%d", li))
		groups := make([]float64, m.NBedges)
		for i, g := range m.BedgeGroups {
			groups[i] = float64(g)
		}
		lv.BedgeG = a.Prog.DeclDat(lv.Bedges, 1, groups, fmt.Sprintf("bedgeg_l%d", li))
		a.Levels = append(a.Levels, lv)
	}
	for li, f2c := range h.FineToCoarse {
		fine, coarse := a.Levels[li], a.Levels[li+1]
		fine.F2C = a.Prog.DeclMap(fine.Nodes, coarse.Nodes, 1, f2c, fmt.Sprintf("f2c_l%d", li))
		coarse.VarsSave = a.Prog.DeclDat(coarse.Nodes, 5, nil, fmt.Sprintf("varssave_l%d", li+1))
		counts := make([]float64, coarse.Nodes.Size)
		for _, c := range f2c {
			counts[c]++
		}
		coarse.RCount = a.Prog.DeclDat(coarse.Nodes, 1, counts, fmt.Sprintf("rcount_l%d", li+1))
	}
	a.Primary = a.Levels[0].Nodes
	return a
}

// freestream returns the freestream conserved variables (Mach 0.4 along x).
func freestream() [5]float64 {
	const (
		rho  = 1.4
		mach = 0.4
		p    = 1.0
	)
	c := math.Sqrt(gamma * p / rho)
	u := mach * c
	return [5]float64{rho, rho * u, 0, 0, p/gm1 + 0.5*rho*u*u}
}

// Kernels. Cost declarations (Flops, MemBytes) feed the performance model;
// they follow the arithmetic below.
var (
	kInitVars = &core.Kernel{Name: "initialize_variables", Flops: 5, MemBytes: 80,
		Fn: func(a [][]float64) {
			ff := freestream()
			copy(a[0], ff[:])
			for i := range a[1] {
				a[1][i] = 0
			}
		}}

	kStepFactor = &core.Kernel{Name: "compute_step_factor", Flops: 25, MemBytes: 96,
		Fn: func(a [][]float64) {
			v, vol, sf := a[0], a[1], a[2]
			rho := v[0]
			inv := 1 / rho
			u, vy, w := v[1]*inv, v[2]*inv, v[3]*inv
			speed2 := u*u + vy*vy + w*w
			p := gm1 * (v[4] - 0.5*rho*speed2)
			if p < 1e-10 {
				p = 1e-10
			}
			c := math.Sqrt(gamma * p * inv)
			sf[0] = cfl * math.Cbrt(vol[0]) / (math.Sqrt(speed2) + c)
		}}

	// kFluxEdge is compute_flux_edge: central flux with scalar
	// dissipation across the dual face between two nodes. This is the
	// most time-consuming loop of MG-CFD.
	kFluxEdge = &core.Kernel{Name: "compute_flux_edge", Flops: 110, MemBytes: 280,
		Fn: func(a [][]float64) {
			fluxA, fluxB, vA, vB, w := a[0], a[1], a[2], a[3], a[4]
			var fA, fB [5]float64
			pA := eulerFlux(vA, w, &fA)
			pB := eulerFlux(vB, w, &fB)
			area := math.Sqrt(w[0]*w[0] + w[1]*w[1] + w[2]*w[2])
			// Scalar dissipation scaled by face area and acoustic speed.
			cA := math.Sqrt(gamma * pA / vA[0])
			cB := math.Sqrt(gamma * pB / vB[0])
			eps := 0.5 * area * (cA + cB) * 0.5
			for i := 0; i < 5; i++ {
				f := 0.5*(fA[i]+fB[i]) - eps*(vB[i]-vA[i])
				fluxA[i] -= f
				fluxB[i] += f
			}
		}}

	kBndFlux = &core.Kernel{Name: "compute_bnd_flux", Flops: 40, MemBytes: 160,
		Fn: func(a [][]float64) {
			flux, v, w, grp := a[0], a[1], a[2], a[3]
			rho := v[0]
			inv := 1 / rho
			speed2 := (v[1]*v[1] + v[2]*v[2] + v[3]*v[3]) * inv * inv
			p := gm1 * (v[4] - 0.5*rho*speed2)
			switch int(grp[0]) {
			case mesh.BndHub, mesh.BndCasing, mesh.BndSideLo, mesh.BndSideHi:
				// Solid wall: pressure force only.
				flux[1] -= p * w[0]
				flux[2] -= p * w[1]
				flux[3] -= p * w[2]
			default:
				// Far field: flux of the freestream state.
				ff := freestream()
				var f [5]float64
				eulerFlux(ff[:], w, &f)
				for i := 0; i < 5; i++ {
					flux[i] -= f[i]
				}
			}
		}}

	kTimeStep = &core.Kernel{Name: "time_step", Flops: 25, MemBytes: 200,
		Fn: func(a [][]float64) {
			v, flux, sf, vol := a[0], a[1], a[2], a[3]
			scale := sf[0] / vol[0]
			for i := 0; i < 5; i++ {
				v[i] += scale * flux[i]
				flux[i] = 0
			}
		}}

	// kRestrictSum accumulates fine state onto the coarse grid (the "up"
	// kernel); kRestrictFinish divides by the contributor count and saves
	// the restricted state; kProlong pushes the coarse correction back
	// down ("down").
	kRestrictSum = &core.Kernel{Name: "restrict_sum", Flops: 5, MemBytes: 160,
		Fn: func(a [][]float64) {
			coarse, fine := a[0], a[1]
			for i := 0; i < 5; i++ {
				coarse[i] += fine[i]
			}
		}}
	kRestrictFinish = &core.Kernel{Name: "restrict_finish", Flops: 10, MemBytes: 200,
		Fn: func(a [][]float64) {
			vars, save, count := a[0], a[1], a[2]
			inv := 1 / count[0]
			for i := 0; i < 5; i++ {
				vars[i] *= inv
				save[i] = vars[i]
			}
		}}
	kProlong = &core.Kernel{Name: "prolong", Flops: 15, MemBytes: 240,
		Fn: func(a [][]float64) {
			fine, coarse, save := a[0], a[1], a[2]
			for i := 0; i < 5; i++ {
				fine[i] += 0.5 * (coarse[i] - save[i])
			}
		}}
	kZero5 = &core.Kernel{Name: "zero5", Flops: 0, MemBytes: 40,
		Fn: func(a [][]float64) {
			for i := range a[0] {
				a[0][i] = 0
			}
		}}
)

// eulerFlux writes the inviscid flux of state v through area vector w into
// f and returns the pressure.
func eulerFlux(v []float64, w []float64, f *[5]float64) float64 {
	rho := v[0]
	inv := 1 / rho
	u, vy, vz := v[1]*inv, v[2]*inv, v[3]*inv
	speed2 := u*u + vy*vy + vz*vz
	p := gm1 * (v[4] - 0.5*rho*speed2)
	if p < 1e-10 {
		p = 1e-10
	}
	vn := u*w[0] + vy*w[1] + vz*w[2] // volume flux through the face
	f[0] = rho * vn
	f[1] = v[1]*vn + p*w[0]
	f[2] = v[2]*vn + p*w[1]
	f[3] = v[3]*vn + p*w[2]
	f[4] = (v[4] + p) * vn
	return p
}

// Init sets every level to freestream with zeroed residuals.
func (a *App) Init(b core.Backend) {
	for _, lv := range a.Levels {
		b.ParLoop(core.NewLoop(kInitVars, lv.Nodes,
			core.ArgDatDirect(lv.Vars, core.Write),
			core.ArgDatDirect(lv.Fluxes, core.Write)))
	}
}

// Sweep runs one explicit smoothing sweep on one level: step factor,
// edge fluxes, boundary fluxes, explicit update.
func (a *App) Sweep(b core.Backend, lv *Level) {
	b.ParLoop(core.NewLoop(kStepFactor, lv.Nodes,
		core.ArgDatDirect(lv.Vars, core.Read),
		core.ArgDatDirect(lv.Volumes, core.Read),
		core.ArgDatDirect(lv.StepFac, core.Write)))
	b.ParLoop(core.NewLoop(kFluxEdge, lv.Edges,
		core.ArgDat(lv.Fluxes, 0, lv.E2N, core.Inc),
		core.ArgDat(lv.Fluxes, 1, lv.E2N, core.Inc),
		core.ArgDat(lv.Vars, 0, lv.E2N, core.Read),
		core.ArgDat(lv.Vars, 1, lv.E2N, core.Read),
		core.ArgDatDirect(lv.EdgeW, core.Read)))
	b.ParLoop(core.NewLoop(kBndFlux, lv.Bedges,
		core.ArgDat(lv.Fluxes, 0, lv.B2N, core.Inc),
		core.ArgDat(lv.Vars, 0, lv.B2N, core.Read),
		core.ArgDatDirect(lv.BedgeW, core.Read),
		core.ArgDatDirect(lv.BedgeG, core.Read)))
	b.ParLoop(core.NewLoop(kTimeStep, lv.Nodes,
		core.ArgDatDirect(lv.Vars, core.ReadWrite),
		core.ArgDatDirect(lv.Fluxes, core.ReadWrite),
		core.ArgDatDirect(lv.StepFac, core.Read),
		core.ArgDatDirect(lv.Volumes, core.Read)))
}

// Cycle runs one multigrid cycle: sweep each level fine to coarse,
// restricting the state (volume-average over contributing fine nodes) and
// saving it, then prolong the coarse corrections back to the finest level.
func (a *App) Cycle(b core.Backend) {
	for li, lv := range a.Levels {
		a.Sweep(b, lv)
		if lv.F2C != nil {
			coarse := a.Levels[li+1]
			b.ParLoop(core.NewLoop(kZero5, coarse.Nodes,
				core.ArgDatDirect(coarse.Vars, core.Write)))
			b.ParLoop(core.NewLoop(kRestrictSum, lv.Nodes,
				core.ArgDat(coarse.Vars, 0, lv.F2C, core.Inc),
				core.ArgDatDirect(lv.Vars, core.Read)))
			b.ParLoop(core.NewLoop(kRestrictFinish, coarse.Nodes,
				core.ArgDatDirect(coarse.Vars, core.ReadWrite),
				core.ArgDatDirect(coarse.VarsSave, core.Write),
				core.ArgDatDirect(coarse.RCount, core.Read)))
		}
	}
	for li := len(a.Levels) - 2; li >= 0; li-- {
		lv := a.Levels[li]
		coarse := a.Levels[li+1]
		b.ParLoop(core.NewLoop(kProlong, lv.Nodes,
			core.ArgDatDirect(lv.Vars, core.Inc),
			core.ArgDat(coarse.Vars, 0, lv.F2C, core.Read),
			core.ArgDat(coarse.VarsSave, 0, lv.F2C, core.Read)))
	}
}

// Residual computes the L1 norm of density on the finest level via a global
// reduction (a convergence monitor, and a test that reductions work
// end-to-end through the solver).
func (a *App) Residual(b core.Backend) float64 {
	sum := []float64{0}
	k := &core.Kernel{Name: "residual", Flops: 2, MemBytes: 16, Fn: func(args [][]float64) {
		args[1][0] += math.Abs(args[0][0])
	}}
	b.ParLoop(core.NewLoop(k, a.Levels[0].Nodes,
		core.ArgDatDirect(a.Levels[0].Vars, core.Read),
		core.ArgGbl(sum, core.Inc)))
	return sum[0]
}
