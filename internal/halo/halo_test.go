package halo

import (
	"testing"
	"testing/quick"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// buildQuadProgram declares the Figure 1 style program: nodes, edges, cells,
// e2n, e2c and one dat per set.
func buildQuadProgram(nx, ny int) (*core.Program, *core.Set) {
	m := mesh.NewQuad2D(nx, ny)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	cells := p.DeclSet(m.NCells, "cells")
	p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	p.DeclMap(edges, cells, 2, m.EdgeCells, "e2c")
	p.DeclDat(nodes, 2, nil, "res")
	p.DeclDat(cells, 4, nil, "cw")
	p.DeclDat(edges, 1, nil, "ew")
	return p, nodes
}

func TestDeriveOwnership(t *testing.T) {
	p, nodes := buildQuadProgram(3, 3)
	assign := partition.Block(nodes.Size, 4)
	owners, err := DeriveOwnership(p, nodes, assign)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != len(p.Sets) {
		t.Fatalf("owners for %d sets, want %d", len(owners), len(p.Sets))
	}
	edges := p.SetByName("edges")
	e2n := p.MapByName("e2n")
	for e := 0; e < edges.Size; e++ {
		if owners[edges.ID][e] != assign[e2n.Values[e*2]] {
			t.Fatalf("edge %d owner %d, want owner of first node %d",
				e, owners[edges.ID][e], assign[e2n.Values[e*2]])
		}
	}
	// cells reachable via e2c from edges? e2c is edges->cells so cells
	// inherit only if some map FROM cells exists... they inherit through
	// being a To set? No: ownership flows From <- To. Cells have no
	// outgoing map, so they must fail unless a map from cells exists.
	_ = owners
}

func TestDeriveOwnershipUnreachable(t *testing.T) {
	p := core.NewProgram()
	nodes := p.DeclSet(4, "nodes")
	p.DeclSet(3, "orphans")
	_, err := DeriveOwnership(p, nodes, []int32{0, 0, 1, 1})
	if err == nil {
		t.Fatal("expected error for set with no map path to primary")
	}
	if _, err := DeriveOwnership(p, nodes, []int32{0}); err == nil {
		t.Fatal("expected error for wrong owner count")
	}
}

func TestDeriveOwnershipTransitive(t *testing.T) {
	// chains: bedges -> edges -> nodes.
	p := core.NewProgram()
	nodes := p.DeclSet(4, "nodes")
	edges := p.DeclSet(3, "edges")
	bedges := p.DeclSet(2, "bedges")
	p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 3}, "e2n")
	p.DeclMap(bedges, edges, 1, []int32{0, 2}, "b2e")
	owners, err := DeriveOwnership(p, nodes, []int32{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1}
	for b, o := range owners[bedges.ID] {
		if o != want[b] {
			t.Errorf("bedge %d owner %d, want %d", b, o, want[b])
		}
	}
}

func TestReverseMap(t *testing.T) {
	p := core.NewProgram()
	nodes := p.DeclSet(3, "nodes")
	edges := p.DeclSet(3, "edges")
	m := p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 0}, "e2n")
	rm := buildReverse(m)
	for n := 0; n < nodes.Size; n++ {
		src := rm.sourcesOf(int32(n))
		if len(src) != 2 {
			t.Fatalf("node %d has %d sources, want 2", n, len(src))
		}
		for _, e := range src {
			row := m.Targets(int(e))
			if row[0] != int32(n) && row[1] != int32(n) {
				t.Fatalf("reverse map wrong: edge %d does not reference node %d", e, n)
			}
		}
	}
}

// bruteShells recomputes, from the definitions, the execute and non-execute
// shells of one rank, as sets keyed by (setID, element).
func bruteShells(p *core.Program, owners [][]int32, rank int32, depth int) (exec, nonexec []map[selem]int) {
	exec = make([]map[selem]int, 1)
	in := make(map[selem]int) // closure membership: shell number (0=owned)
	for s, set := range p.Sets {
		for e := 0; e < set.Size; e++ {
			if owners[s][e] == rank {
				in[selem{int32(s), int32(e)}] = 0
			}
		}
	}
	execShells := make([]map[selem]int, depth+1)
	nonexecShells := make([]map[selem]int, depth+1)
	for d := 1; d <= depth; d++ {
		execShells[d] = map[selem]int{}
		nonexecShells[d] = map[selem]int{}
		// exec_d: foreign unseen elements with a forward entry into the
		// closure (owned + all previous shells, exec and nonexec).
		for _, m := range p.Maps {
			for e := 0; e < m.From.Size; e++ {
				k := selem{int32(m.From.ID), int32(e)}
				if _, seen := in[k]; seen {
					continue
				}
				for _, t := range m.Targets(e) {
					if _, ok := in[selem{int32(m.To.ID), t}]; ok {
						execShells[d][k] = d
						break
					}
				}
			}
		}
		for k := range execShells[d] {
			in[k] = d
		}
		// nonexec_d: unseen targets of exec_d (and of owned for d == 1).
		addTargets := func(k selem) {
			for _, m := range p.Maps {
				if int32(m.From.ID) != k.set {
					continue
				}
				for _, t := range m.Targets(int(k.elem)) {
					tk := selem{int32(m.To.ID), t}
					if _, ok := in[tk]; !ok {
						nonexecShells[d][tk] = d
					}
				}
			}
		}
		for k := range execShells[d] {
			addTargets(k)
		}
		if d == 1 {
			for k, sh := range in {
				if sh == 0 {
					addTargets(k)
				}
			}
		}
		for k := range nonexecShells[d] {
			in[k] = d
		}
	}
	// Flatten to the return shape.
	ex := make(map[selem]int)
	ne := make(map[selem]int)
	for d := 1; d <= depth; d++ {
		for k := range execShells[d] {
			ex[k] = d
		}
		for k := range nonexecShells[d] {
			ne[k] = d
		}
	}
	return []map[selem]int{ex}, []map[selem]int{ne}
}

// checkLayouts verifies structural invariants of every rank's layout and
// compares shells against the brute-force reference.
func checkLayouts(t *testing.T, p *core.Program, primary *core.Set, assign []int32, nparts, depth, chain int) {
	t.Helper()
	owners, err := DeriveOwnership(p, primary, assign)
	if err != nil {
		t.Fatal(err)
	}
	layouts := Build(p, owners, nparts, depth, chain)
	if len(layouts) != nparts {
		t.Fatalf("got %d layouts, want %d", len(layouts), nparts)
	}

	// Owned coverage: each global element owned exactly once.
	for s, set := range p.Sets {
		seen := make([]int, set.Size)
		for _, l := range layouts {
			sl := l.Sets[s]
			for loc := 0; loc < sl.NOwned; loc++ {
				seen[sl.L2G[loc]]++
			}
		}
		for e, c := range seen {
			if c != 1 {
				t.Fatalf("set %s element %d owned by %d ranks", set.Name, e, c)
			}
		}
	}

	for _, l := range layouts {
		exRef, neRef := bruteShells(p, owners, int32(l.Rank), depth)
		for s, set := range p.Sets {
			sl := l.Sets[s]
			if len(sl.L2G) != sl.Total() {
				t.Fatalf("rank %d set %s: L2G len %d != Total %d", l.Rank, set.Name, len(sl.L2G), sl.Total())
			}
			// Bijectivity.
			if len(sl.G2L) != len(sl.L2G) {
				t.Fatalf("rank %d set %s: duplicate elements in local view", l.Rank, set.Name)
			}
			for loc, g := range sl.L2G {
				if sl.G2L[g] != int32(loc) {
					t.Fatalf("rank %d set %s: G2L/L2G mismatch at %d", l.Rank, set.Name, loc)
				}
			}
			// Owned prefix really owned; shells match brute force.
			for loc := 0; loc < sl.NOwned; loc++ {
				if owners[s][sl.L2G[loc]] != int32(l.Rank) {
					t.Fatalf("rank %d set %s: local %d not owned", l.Rank, set.Name, loc)
				}
			}
			gotExec := map[selem]int{}
			for d := 1; d <= depth; d++ {
				for loc := sl.ExecEnd(d - 1); loc < sl.ExecEnd(d); loc++ {
					gotExec[selem{int32(s), sl.L2G[loc]}] = d
				}
			}
			gotNonexec := map[selem]int{}
			for d := 1; d <= depth; d++ {
				for loc := sl.NonexecStart[d-1]; loc < sl.NonexecStart[d]; loc++ {
					gotNonexec[selem{int32(s), sl.L2G[loc]}] = d
				}
			}
			for k, d := range exRef[0] {
				if k.set != int32(s) {
					continue
				}
				if gotExec[k] != d {
					t.Fatalf("rank %d set %s: exec shell of element %d = %d, brute force says %d",
						l.Rank, set.Name, k.elem, gotExec[k], d)
				}
			}
			for k := range gotExec {
				if exRef[0][k] != gotExec[k] {
					t.Fatalf("rank %d set %s: spurious exec element %d", l.Rank, set.Name, k.elem)
				}
			}
			for k, d := range neRef[0] {
				if k.set != int32(s) {
					continue
				}
				if gotNonexec[k] != d {
					t.Fatalf("rank %d set %s: nonexec shell of element %d = %d, brute force says %d",
						l.Rank, set.Name, k.elem, gotNonexec[k], d)
				}
			}
			for k := range gotNonexec {
				if neRef[0][k] != gotNonexec[k] {
					t.Fatalf("rank %d set %s: spurious nonexec element %d", l.Rank, set.Name, k.elem)
				}
			}
			// Core prefix: level-0 core elements have all-owned targets.
			for _, m := range p.Maps {
				if m.From.ID != s {
					continue
				}
				for loc := 0; loc < sl.CorePrefix(0); loc++ {
					g := sl.L2G[loc]
					for _, tg := range m.Targets(int(g)) {
						if owners[m.To.ID][tg] != int32(l.Rank) {
							t.Fatalf("rank %d: core element %d of %s has foreign target", l.Rank, g, set.Name)
						}
					}
				}
			}
			// Core prefixes shrink with chain level.
			for lev := 1; lev < chain; lev++ {
				if sl.CorePrefix(lev) > sl.CorePrefix(lev-1) {
					t.Fatalf("rank %d set %s: core prefix grows with level", l.Rank, set.Name)
				}
			}
		}

		// Localized maps: executable rows fully resolved.
		for mi, m := range p.Maps {
			from := l.Sets[m.From.ID]
			to := l.Sets[m.To.ID]
			vals := l.Maps[mi]
			for loc := 0; loc < from.ExecEnd(depth); loc++ {
				for a := 0; a < m.Arity; a++ {
					tl := vals[loc*m.Arity+a]
					if tl < 0 {
						t.Fatalf("rank %d map %s: executable row %d slot %d unresolved",
							l.Rank, m.Name, loc, a)
					}
					// Localized value must agree with the global map.
					if to.L2G[tl] != m.Values[int(from.L2G[loc])*m.Arity+a] {
						t.Fatalf("rank %d map %s: wrong localization at row %d", l.Rank, m.Name, loc)
					}
				}
			}
		}
	}

	// Import/export mirror consistency.
	for _, l := range layouts {
		for s := range p.Sets {
			sl := l.Sets[s]
			for d := 0; d < depth; d++ {
				checkMirror(t, layouts, s, l.Rank, sl.ImportExec[d], func(x *SetLayout) []ExportList { return x.ExportExec[d] }, sl)
				checkMirror(t, layouts, s, l.Rank, sl.ImportNonexec[d], func(x *SetLayout) []ExportList { return x.ExportNonexec[d] }, sl)
			}
		}
	}
}

func checkMirror(t *testing.T, layouts []*Layout, s, rank int, imports []ImportRange,
	exports func(*SetLayout) []ExportList, sl *SetLayout) {
	t.Helper()
	for _, r := range imports {
		src := layouts[r.Rank].Sets[s]
		var match *ExportList
		for i := range exports(src) {
			if exports(src)[i].Rank == int32(rank) {
				match = &exports(src)[i]
				break
			}
		}
		if match == nil {
			t.Fatalf("rank %d imports from %d but %d has no matching export", rank, r.Rank, r.Rank)
		}
		if len(match.Locals) != int(r.Count) {
			t.Fatalf("export count %d != import count %d", len(match.Locals), r.Count)
		}
		for i := int32(0); i < r.Count; i++ {
			if src.L2G[match.Locals[i]] != sl.L2G[r.Start+i] {
				t.Fatalf("export order mismatch between ranks %d and %d", rank, r.Rank)
			}
		}
	}
}

func TestBuildQuadBlock(t *testing.T) {
	p, nodes := buildQuadProgram(6, 5)
	// cells need ownership: give them a map to nodes (c2n) so they can
	// inherit; rebuild the program with c2n included.
	m := mesh.NewQuad2D(6, 5)
	p2 := core.NewProgram()
	n2 := p2.DeclSet(m.NNodes, "nodes")
	e2 := p2.DeclSet(m.NEdges, "edges")
	c2 := p2.DeclSet(m.NCells, "cells")
	p2.DeclMap(e2, n2, 2, m.EdgeNodes, "e2n")
	p2.DeclMap(e2, c2, 2, m.EdgeCells, "e2c")
	p2.DeclMap(c2, n2, 4, m.CellNodes, "c2n")
	p2.DeclDat(n2, 2, nil, "res")
	_ = p
	_ = nodes
	for _, nparts := range []int{1, 2, 4} {
		for _, depth := range []int{1, 2, 3} {
			assign := partition.Block(n2.Size, nparts)
			checkLayouts(t, p2, n2, assign, nparts, depth, 4)
		}
	}
}

func TestBuildRotorKWay(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	bedges := p.DeclSet(m.NBedges, "bedges")
	pedges := p.DeclSet(m.NPedges, "pedges")
	p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	p.DeclMap(bedges, nodes, 1, m.BedgeNodes, "b2n")
	p.DeclMap(pedges, nodes, 2, m.PedgeNodes, "p2n")
	p.DeclDat(nodes, 5, nil, "q")
	p.DeclDat(edges, 3, nil, "w")
	assign := partition.KWay(m.NodeAdjacency(), 4)
	checkLayouts(t, p, nodes, assign, 4, 2, 3)
}

func TestBuildSingleRank(t *testing.T) {
	m := mesh.Rotor(4, 3, 3)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	owners, err := DeriveOwnership(p, nodes, make([]int32, m.NNodes))
	if err != nil {
		t.Fatal(err)
	}
	layouts := Build(p, owners, 1, 2, 4)
	l := layouts[0]
	for s, set := range p.Sets {
		sl := l.Sets[s]
		if sl.NOwned != set.Size || sl.Total() != set.Size {
			t.Fatalf("single rank set %s: owned %d total %d, want %d", set.Name, sl.NOwned, sl.Total(), set.Size)
		}
		if sl.CorePrefix(0) != set.Size {
			t.Fatalf("single rank: core prefix %d, want %d", sl.CorePrefix(0), set.Size)
		}
	}
	if len(l.Neighbours) != 0 {
		t.Fatalf("single rank has neighbours %v", l.Neighbours)
	}
}

func TestBuildPanics(t *testing.T) {
	p := core.NewProgram()
	nodes := p.DeclSet(4, "nodes")
	owners := [][]int32{{0, 0, 1, 1}}
	for name, f := range map[string]func(){
		"bad depth": func() { Build(p, owners, 2, 0, 1) },
		"bad chain": func() { Build(p, owners, 2, 1, 0) },
		"bad sets":  func() { Build(p, [][]int32{}, 2, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	_ = nodes
}

// Property: layouts on random rotor meshes with random partitions satisfy
// all structural invariants (via checkLayouts, which includes the brute-
// force shell comparison).
func TestBuildProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(ni8, nj8, nk8, parts8, depth8, seed8 uint8) bool {
		ni, nj, nk := int(ni8%4)+2, int(nj8%4)+2, int(nk8%3)+3
		m := mesh.Rotor(ni, nj, nk)
		nparts := int(parts8%5) + 1
		if nparts > m.NNodes {
			nparts = m.NNodes
		}
		depth := int(depth8%3) + 1
		p := core.NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		edges := p.DeclSet(m.NEdges, "edges")
		pedges := p.DeclSet(m.NPedges, "pedges")
		p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
		p.DeclMap(pedges, nodes, 2, m.PedgeNodes, "p2n")
		assign := partition.Random(m.NNodes, nparts, int64(seed8))
		checkLayouts(t, p, nodes, assign, nparts, depth, 3)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
