package hydra

import (
	"math"

	"op2ca/internal/core"
)

// Kernel cost declarations are calibrated so the chains' shares of total
// runtime follow the paper's Section 4.2: vflux ~18%, gradl ~8%, iflux ~5%,
// jacob ~2%, the rest in the Runge-Kutta and turbulence loops.
var (
	// --- weight chain (setup phase) ---
	kSumbwts = &core.Kernel{Name: "sumbwts", Flops: 30, MemBytes: 150,
		Fn: func(a [][]float64) {
			qo, bw := a[0], a[1]
			for c := 0; c < 6; c++ {
				qo[c] += 0.1 * math.Abs(bw[c%3])
			}
		}}
	kPeriodSym6 = &core.Kernel{Name: "periodsym", Flops: 24, MemBytes: 200,
		Fn: func(a [][]float64) {
			qa, qb := a[0], a[1]
			for c := 0; c < 6; c++ {
				s := 0.5 * (qa[c] + qb[c])
				qa[c], qb[c] = s, s
			}
		}}
	kCentreline = &core.Kernel{Name: "centreline", Flops: 12, MemBytes: 100,
		Fn: func(a [][]float64) {
			qo, cw := a[0], a[1]
			for c := 0; c < 6; c++ {
				qo[c] = cw[0] * (0.1*float64(c) + 1)
			}
		}}
	kEdgeLength = &core.Kernel{Name: "edgelength", Flops: 45, MemBytes: 250,
		Fn: func(a [][]float64) {
			qo1, qo2, ew := a[0], a[1], a[2]
			l := math.Sqrt(ew[0]*ew[0] + ew[1]*ew[1] + ew[2]*ew[2])
			for c := 0; c < 6; c++ {
				qo1[c] += 0.05 * l
				qo2[c] += 0.05 * l
			}
		}}

	// --- period chain ---
	kNegflag = &core.Kernel{Name: "negflag", Flops: 6, MemBytes: 60,
		Fn: func(a [][]float64) {
			va, vb := a[0], a[1]
			v := math.Min(va[0], vb[0])
			va[0], vb[0] = v, v
		}}
	// kLimxp updates each endpoint from its own data only (a limiter is
	// node-local); applied once per incident edge, deterministically.
	kLimxp = &core.Kernel{Name: "limxp", Flops: 150, MemBytes: 400,
		Fn: func(a [][]float64) {
			qo1, qo2, v1, v2 := a[0], a[1], a[2], a[3]
			for c := 0; c < 6; c++ {
				qo1[c] = 0.999*qo1[c] + 0.001*v1[0]
				qo2[c] = 0.999*qo2[c] + 0.001*v2[0]
			}
		}}
	kPeriodicity6 = &core.Kernel{Name: "periodicity", Flops: 24, MemBytes: 200,
		Fn: func(a [][]float64) {
			qa, qb := a[0], a[1]
			for c := 0; c < 6; c++ {
				s := 0.5 * (qa[c] + qb[c])
				qa[c], qb[c] = s, s
			}
		}}

	// --- gradl chain ---
	kEdgecon = &core.Kernel{Name: "edgecon", Flops: 300, MemBytes: 700,
		Fn: func(a [][]float64) {
			qp1, qp2, ql1, ql2, x1, x2, ew := a[0], a[1], a[2], a[3], a[4], a[5], a[6]
			for c := 0; c < 5; c++ {
				g := 0.01 * ew[c%3] * (x2[c%3] - x1[c%3])
				qp1[c] += g
				qp2[c] -= g
				ql1[c] += 0.5 * g
				ql2[c] -= 0.5 * g
			}
		}}
	kGradPeriod = &core.Kernel{Name: "period", Flops: 40, MemBytes: 320,
		Fn: func(a [][]float64) {
			qpa, qpb, qla, qlb := a[0], a[1], a[2], a[3]
			for c := 0; c < 5; c++ {
				s := 0.5 * (qpa[c] + qpb[c])
				qpa[c], qpb[c] = s, s
				s = 0.5 * (qla[c] + qlb[c])
				qla[c], qlb[c] = s, s
			}
		}}

	// --- vflux chain (the most expensive loops in Hydra) ---
	kInitres = &core.Kernel{Name: "initres", Flops: 0, MemBytes: 40,
		Fn: func(a [][]float64) {
			for i := range a[0] {
				a[0][i] = 0
			}
		}}
	kVfluxEdge = &core.Kernel{Name: "vflux_edge", Flops: 700, MemBytes: 1200,
		Fn: func(a [][]float64) {
			res1, res2 := a[0], a[1]
			qp1, qp2 := a[2], a[3]
			ql1, ql2 := a[4], a[5]
			x1, x2 := a[6], a[7]
			mu1, mu2 := a[8], a[9]
			rg1, rg2 := a[10], a[11]
			ew := a[12]
			dx := x2[0] - x1[0]
			dy := x2[1] - x1[1]
			dz := x2[2] - x1[2]
			dist := math.Sqrt(dx*dx+dy*dy+dz*dz) + 1e-12
			mu := 0.5 * (mu1[0] + mu2[0])
			rg := 0.5 * (rg1[0] + rg2[0])
			area := math.Sqrt(ew[0]*ew[0] + ew[1]*ew[1] + ew[2]*ew[2])
			coef := mu * rg * area / dist
			for c := 0; c < 5; c++ {
				f := coef * ((qp2[c] - qp1[c]) + 0.3*(ql2[c]-ql1[c]))
				res1[c] += f
				res2[c] -= f
			}
		}}

	// --- iflux chain ---
	kInitViscres = &core.Kernel{Name: "initviscres", Flops: 0, MemBytes: 40,
		Fn: func(a [][]float64) {
			for i := range a[0] {
				a[0][i] = 0
			}
		}}
	kIfluxEdge = &core.Kernel{Name: "iflux_edge", Flops: 200, MemBytes: 500,
		Fn: func(a [][]float64) {
			vr1, vr2, rg1, rg2, ew := a[0], a[1], a[2], a[3], a[4]
			d := rg2[0] - rg1[0]
			for c := 0; c < 5; c++ {
				f := d * ew[c%3] * 0.2
				vr1[c] += f
				vr2[c] -= f
			}
		}}

	// --- jacob chain ---
	kJacPeriod = &core.Kernel{Name: "jac_period", Flops: 600, MemBytes: 800,
		Fn: func(a [][]float64) {
			ja, jb, jaa, jab := a[0], a[1], a[2], a[3]
			for c := 0; c < 5; c++ {
				s := 0.5 * (ja[c] + jb[c])
				ja[c], jb[c] = s, s
				s = 0.5 * (jaa[c] + jab[c])
				jaa[c], jab[c] = s, s
			}
		}}
	kJacCentreline = &core.Kernel{Name: "jac_centreline", Flops: 200, MemBytes: 300,
		Fn: func(a [][]float64) {
			jaca, cw := a[0], a[1]
			for c := 0; c < 5; c++ {
				jaca[c] = cw[0] * 0.2 * float64(c+1)
			}
		}}
	kJacCorrections = &core.Kernel{Name: "jac_corrections", Flops: 400, MemBytes: 500,
		Fn: func(a [][]float64) {
			jac, bw := a[0], a[1]
			for c := 0; c < 5; c++ {
				jac[c] += 0.05 * bw[c%3]
			}
		}}

	// --- Runge-Kutta skeleton (the remaining ~2/3 of the runtime) ---
	kRKStep = &core.Kernel{Name: "rk_step", Flops: 1200, MemBytes: 1600,
		Fn: func(a [][]float64) {
			qp, ql, res, vres, jac := a[0], a[1], a[2], a[3], a[4]
			rk := a[5][0]
			for c := 0; c < 5; c++ {
				d := rk * (res[c] + vres[c]) / (1 + math.Abs(jac[c]))
				qp[c] = 0.995*qp[c] + d
				ql[c] = 0.9*ql[c] + 0.1*qp[c]
			}
		}}
	kTurb = &core.Kernel{Name: "turb", Flops: 150, MemBytes: 300,
		Fn: func(a [][]float64) {
			qmu, qrg, qp := a[0], a[1], a[2]
			s := 0.0
			for c := 0; c < 5; c++ {
				s += qp[c] * qp[c]
			}
			qmu[0] = 0.9*qmu[0] + 0.001*s
			qrg[0] = 0.95*qrg[0] + 0.05/(1+s)
		}}
)

// kPreprocess stands in for Hydra's mesh preprocessing, which modifies qo
// and vol before the weight and period chains run; it dirties their halos so
// the setup chains exchange, as they do in the production code.
var kPreprocess = &core.Kernel{Name: "preprocess", Flops: 20, MemBytes: 120,
	Fn: func(a [][]float64) {
		qo, vol, xp := a[0], a[1], a[2]
		for c := 0; c < 6; c++ {
			qo[c] += 0.001 * xp[c%3]
		}
		vol[0] *= 1 + 1e-6*xp[0]
	}}

// chainIf wraps loops in ChainBegin/ChainEnd when chained is true.
func chainIf(b core.Backend, name string, chained bool, body func()) {
	if chained {
		b.ChainBegin(name)
	}
	body()
	if chained {
		b.ChainEnd()
	}
}

// RunSetup executes the setup phase: preprocessing followed by the weight
// and period chains of Table 3. In the paper these chains run once, outside
// the main time-marching loop.
func (a *App) RunSetup(b core.Backend, chained bool) {
	b.ParLoop(core.NewLoop(kPreprocess, a.Nodes,
		core.ArgDatDirect(a.Qo, core.ReadWrite),
		core.ArgDatDirect(a.Vol, core.ReadWrite),
		core.ArgDatDirect(a.Xp, core.Read)))
	a.RunWeight(b, chained)
	a.RunPeriod(b, chained)
}

// RunWeight is the 5-loop weight chain of Table 3.
func (a *App) RunWeight(b core.Backend, chained bool) {
	chainIf(b, "weight", chained, func() {
		b.ParLoop(core.NewLoop(kSumbwts, a.Bnd,
			core.ArgDat(a.Qo, 0, a.B2N, core.Inc),
			core.ArgDatDirect(a.Bw, core.Read)))
		b.ParLoop(core.NewLoop(kPeriodSym6, a.Pedges,
			core.ArgDat(a.Qo, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Qo, 1, a.P2N, core.ReadWrite)))
		b.ParLoop(core.NewLoop(kCentreline, a.Cbnd,
			core.ArgDat(a.Qo, 0, a.CB2N, core.Write),
			core.ArgDatDirect(a.Cw, core.Read)))
		b.ParLoop(core.NewLoop(kEdgeLength, a.Edges,
			core.ArgDat(a.Qo, 0, a.E2N, core.ReadWrite),
			core.ArgDat(a.Qo, 1, a.E2N, core.ReadWrite),
			core.ArgDatDirect(a.Ew, core.Read)))
		b.ParLoop(core.NewLoop(kPeriodicity6, a.Pedges,
			core.ArgDat(a.Qo, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Qo, 1, a.P2N, core.ReadWrite)))
	})
}

// RunPeriod is the 6-loop period chain of Table 3: negflag, limxp,
// periodicity, limxp, periodicity, negflag.
func (a *App) RunPeriod(b core.Backend, chained bool) {
	negflag := core.NewLoop(kNegflag, a.Pedges,
		core.ArgDat(a.Vol, 0, a.P2N, core.ReadWrite),
		core.ArgDat(a.Vol, 1, a.P2N, core.ReadWrite))
	limxp := core.NewLoop(kLimxp, a.Edges,
		core.ArgDat(a.Qo, 0, a.E2N, core.ReadWrite),
		core.ArgDat(a.Qo, 1, a.E2N, core.ReadWrite),
		core.ArgDat(a.Vol, 0, a.E2N, core.Read),
		core.ArgDat(a.Vol, 1, a.E2N, core.Read))
	periodicity := core.NewLoop(kPeriodicity6, a.Pedges,
		core.ArgDat(a.Qo, 0, a.P2N, core.ReadWrite),
		core.ArgDat(a.Qo, 1, a.P2N, core.ReadWrite))
	chainIf(b, "period", chained, func() {
		b.ParLoop(negflag)
		b.ParLoop(limxp)
		b.ParLoop(periodicity)
		b.ParLoop(limxp)
		b.ParLoop(periodicity)
		b.ParLoop(negflag)
	})
}

// RunGradl is the 2-loop gradl chain of Table 3.
func (a *App) RunGradl(b core.Backend, chained bool) {
	chainIf(b, "gradl", chained, func() {
		b.ParLoop(core.NewLoop(kEdgecon, a.Edges,
			core.ArgDat(a.Qp, 0, a.E2N, core.Inc),
			core.ArgDat(a.Qp, 1, a.E2N, core.Inc),
			core.ArgDat(a.Ql, 0, a.E2N, core.Inc),
			core.ArgDat(a.Ql, 1, a.E2N, core.Inc),
			core.ArgDat(a.Xp, 0, a.E2N, core.Read),
			core.ArgDat(a.Xp, 1, a.E2N, core.Read),
			core.ArgDatDirect(a.Ew, core.Read)))
		b.ParLoop(core.NewLoop(kGradPeriod, a.Pedges,
			core.ArgDat(a.Qp, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Qp, 1, a.P2N, core.ReadWrite),
			core.ArgDat(a.Ql, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Ql, 1, a.P2N, core.ReadWrite)))
	})
}

// RunVflux is the 2-loop vflux chain of Table 4 (initres + vflux_edge, the
// most expensive loop in Hydra, 18% of runtime).
func (a *App) RunVflux(b core.Backend, chained bool) {
	chainIf(b, "vflux", chained, func() {
		b.ParLoop(core.NewLoop(kInitres, a.Nodes,
			core.ArgDatDirect(a.Res, core.Write)))
		b.ParLoop(core.NewLoop(kVfluxEdge, a.Edges,
			core.ArgDat(a.Res, 0, a.E2N, core.Inc),
			core.ArgDat(a.Res, 1, a.E2N, core.Inc),
			core.ArgDat(a.Qp, 0, a.E2N, core.Read),
			core.ArgDat(a.Qp, 1, a.E2N, core.Read),
			core.ArgDat(a.Ql, 0, a.E2N, core.Read),
			core.ArgDat(a.Ql, 1, a.E2N, core.Read),
			core.ArgDat(a.Xp, 0, a.E2N, core.Read),
			core.ArgDat(a.Xp, 1, a.E2N, core.Read),
			core.ArgDat(a.Qmu, 0, a.E2N, core.Read),
			core.ArgDat(a.Qmu, 1, a.E2N, core.Read),
			core.ArgDat(a.Qrg, 0, a.E2N, core.Read),
			core.ArgDat(a.Qrg, 1, a.E2N, core.Read),
			core.ArgDatDirect(a.Ew, core.Read)))
	})
}

// RunIflux is the 2-loop iflux chain of Table 4.
func (a *App) RunIflux(b core.Backend, chained bool) {
	chainIf(b, "iflux", chained, func() {
		b.ParLoop(core.NewLoop(kInitViscres, a.Nodes,
			core.ArgDatDirect(a.ViscRes, core.Write)))
		b.ParLoop(core.NewLoop(kIfluxEdge, a.Edges,
			core.ArgDat(a.ViscRes, 0, a.E2N, core.Inc),
			core.ArgDat(a.ViscRes, 1, a.E2N, core.Inc),
			core.ArgDat(a.Qrg, 0, a.E2N, core.Read),
			core.ArgDat(a.Qrg, 1, a.E2N, core.Read),
			core.ArgDatDirect(a.Ew, core.Read)))
	})
}

// RunJacob is the 3-loop jacob chain of Table 4.
func (a *App) RunJacob(b core.Backend, chained bool) {
	chainIf(b, "jacob", chained, func() {
		b.ParLoop(core.NewLoop(kJacPeriod, a.Pedges,
			core.ArgDat(a.Jac, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Jac, 1, a.P2N, core.ReadWrite),
			core.ArgDat(a.Jaca, 0, a.P2N, core.ReadWrite),
			core.ArgDat(a.Jaca, 1, a.P2N, core.ReadWrite)))
		b.ParLoop(core.NewLoop(kJacCentreline, a.Cbnd,
			core.ArgDat(a.Jaca, 0, a.CB2N, core.Write),
			core.ArgDatDirect(a.Cw, core.Read)))
		b.ParLoop(core.NewLoop(kJacCorrections, a.Bnd,
			core.ArgDat(a.Jac, 0, a.B2N, core.Inc),
			core.ArgDatDirect(a.Bw, core.Read)))
	})
}

// rkCoeffs are the 5-stage Runge-Kutta coefficients.
var rkCoeffs = [5]float64{0.0533, 0.1263, 0.2375, 0.4414, 1.0}

// RunRK runs the 5-stage explicit update and the turbulence loop: direct
// node loops making up the bulk (~2/3) of the per-iteration cost. They
// re-dirty qp, ql, qmu and qrg, so the next iteration's chains exchange
// again, exactly as in the production code.
func (a *App) RunRK(b core.Backend) {
	for s := 0; s < 5; s++ {
		rk := []float64{rkCoeffs[s] * 0.01}
		b.ParLoop(core.NewLoop(kRKStep, a.Nodes,
			core.ArgDatDirect(a.Qp, core.ReadWrite),
			core.ArgDatDirect(a.Ql, core.ReadWrite),
			core.ArgDatDirect(a.Res, core.Read),
			core.ArgDatDirect(a.ViscRes, core.Read),
			core.ArgDatDirect(a.Jac, core.Read),
			core.ArgGbl(rk, core.Read)))
	}
	b.ParLoop(core.NewLoop(kTurb, a.Nodes,
		core.ArgDatDirect(a.Qmu, core.ReadWrite),
		core.ArgDatDirect(a.Qrg, core.ReadWrite),
		core.ArgDatDirect(a.Qp, core.Read)))
}

// RunIteration runs one time-marching iteration: the four in-loop chains
// (gradl, vflux, iflux, jacob) and the RK skeleton. The weight and period
// chains belong to the setup phase (RunSetup), as in the paper.
func (a *App) RunIteration(b core.Backend, chained bool) {
	a.RunGradl(b, chained)
	a.RunIflux(b, chained)
	a.RunVflux(b, chained)
	a.RunJacob(b, chained)
	a.RunRK(b)
}

// chainRecorder captures loops without executing them.
type chainRecorder struct{ loops []core.Loop }

func (r *chainRecorder) ParLoop(l core.Loop) { r.loops = append(r.loops, l) }
func (r *chainRecorder) ChainBegin(string)   {}
func (r *chainRecorder) ChainEnd()           {}
func (r *chainRecorder) Name() string        { return "chain-recorder" }

// ChainNames lists the six published chains in table order.
func ChainNames() []string {
	return []string{"weight", "period", "gradl", "vflux", "iflux", "jacob"}
}

// ChainLoops returns the loop descriptors of the named chain without
// executing it, for inspection and reporting. It panics on unknown names.
func (a *App) ChainLoops(name string) []core.Loop {
	rec := &chainRecorder{}
	switch name {
	case "weight":
		a.RunWeight(rec, false)
	case "period":
		a.RunPeriod(rec, false)
	case "gradl":
		a.RunGradl(rec, false)
	case "vflux":
		a.RunVflux(rec, false)
	case "iflux":
		a.RunIflux(rec, false)
	case "jacob":
		a.RunJacob(rec, false)
	default:
		panic("hydra: unknown chain " + name)
	}
	return rec.loops
}
