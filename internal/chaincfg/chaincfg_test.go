package chaincfg

import (
	"strings"
	"testing"
)

const sample = `
# Hydra loop-chains (Tables 3 and 4)
chain weight maxhe=2
  loop sumbwts he=2
  loop periodsym he=1
  loop centreline he=2
  loop edgelength he=2
  loop periodicity he=1
chain period maxhe=2
chain vflux maxhe=1
chain gradl disable
`

func TestParse(t *testing.T) {
	cfg, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Order) != 4 {
		t.Fatalf("parsed %d chains, want 4", len(cfg.Order))
	}
	w := cfg.Get("weight")
	if w == nil || w.MaxHE != 2 || len(w.Loops) != 5 || w.Disabled {
		t.Fatalf("weight = %+v", w)
	}
	if w.Loops[2].Name != "centreline" || w.Loops[2].HE != 2 {
		t.Errorf("weight loop 2 = %+v", w.Loops[2])
	}
	if g := cfg.Get("gradl"); g == nil || !g.Disabled {
		t.Error("gradl should be disabled")
	}
	if cfg.Get("nope") != nil {
		t.Error("unknown chain should be nil")
	}
	var nilCfg *Config
	if nilCfg.Get("x") != nil {
		t.Error("nil config Get should be nil")
	}
}

func TestHEOverrides(t *testing.T) {
	cfg, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	he, err := cfg.Get("weight").HEOverrides(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 2, 2, 1}
	for i := range want {
		if he[i] != want[i] {
			t.Fatalf("weight overrides = %v, want %v", he, want)
		}
	}
	if _, err := cfg.Get("weight").HEOverrides(3); err == nil {
		t.Error("expected loop-count mismatch error")
	}
	// maxhe only: all loops capped.
	he, err = cfg.Get("period").HEOverrides(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range he {
		if v != 2 {
			t.Fatalf("period overrides = %v, want all 2", he)
		}
	}
	// No constraints at all: zeros.
	c := &Chain{Name: "free"}
	he, err = c.HEOverrides(2)
	if err != nil {
		t.Fatal(err)
	}
	if he[0] != 0 || he[1] != 0 {
		t.Fatalf("free overrides = %v, want zeros", he)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"chain",
		"loop x",
		"chain a\nchain a",
		"chain a maxhe=zero",
		"chain a maxhe=0",
		"chain a wat",
		"chain a\nloop",
		"chain a\nloop l he=-2",
		"chain a\nloop l wat=1",
		"banana split",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

// TestParseDuplicates: duplicate chain names and duplicate loop names
// within a chain are configuration mistakes (a second entry would silently
// shadow the first's overrides) and must be rejected at parse time.
func TestParseDuplicates(t *testing.T) {
	if _, err := ParseString("chain a\nchain b\nchain a\n"); err == nil ||
		!strings.Contains(err.Error(), `duplicate chain "a"`) {
		t.Errorf("duplicate chain: err = %v", err)
	}
	if _, err := ParseString("chain a\nloop x he=1\nloop y he=2\nloop x he=2\n"); err == nil ||
		!strings.Contains(err.Error(), `duplicate loop "x"`) {
		t.Errorf("duplicate loop: err = %v", err)
	}
	// The same loop name in different chains is fine.
	if _, err := ParseString("chain a\nloop x he=1\nchain b\nloop x he=2\n"); err != nil {
		t.Errorf("same loop name across chains rejected: %v", err)
	}
}

// TestParseAuto: the "auto" token opts a chain into the autotuner; it
// round-trips through String() and conflicts with "disable".
func TestParseAuto(t *testing.T) {
	cfg, err := ParseString("chain a auto\nloop x he=1\nchain b maxhe=2\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Get("a").Auto || cfg.Get("b").Auto {
		t.Fatalf("auto flags wrong: a=%+v b=%+v", cfg.Get("a"), cfg.Get("b"))
	}
	again, err := ParseString(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if !again.Get("a").Auto {
		t.Errorf("auto lost in round trip: %q", cfg.String())
	}
	if _, err := ParseString("chain a auto disable\n"); err == nil ||
		!strings.Contains(err.Error(), "cannot be both auto and disable") {
		t.Errorf("auto+disable: err = %v", err)
	}
	if _, err := ParseString("chain a disable auto\n"); err == nil {
		t.Error("disable+auto must also fail")
	}
}

func TestStringRoundtrip(t *testing.T) {
	cfg, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseString(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing String() output: %v", err)
	}
	if len(again.Order) != len(cfg.Order) {
		t.Fatalf("round trip lost chains: %v vs %v", again.Order, cfg.Order)
	}
	for _, name := range cfg.Order {
		a, b := cfg.Chains[name], again.Chains[name]
		if a.MaxHE != b.MaxHE || a.Disabled != b.Disabled || len(a.Loops) != len(b.Loops) {
			t.Fatalf("chain %s changed: %+v vs %+v", name, a, b)
		}
		for i := range a.Loops {
			if a.Loops[i] != b.Loops[i] {
				t.Fatalf("chain %s loop %d changed", name, i)
			}
		}
	}
}

func TestParseComments(t *testing.T) {
	cfg, err := Parse(strings.NewReader("# only comments\n\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Chains) != 0 {
		t.Error("empty config should have no chains")
	}
}

// TestParseOverlap: the "overlap" token opts a chain into the pipelined
// task-graph executor and round-trips through String(). It composes with
// auto (the tuner then enumerates both delivery modes) but not disable.
func TestParseOverlap(t *testing.T) {
	cfg, err := ParseString("chain a overlap\nloop x he=1\nchain b auto overlap\nchain c maxhe=2\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Get("a").Overlap || !cfg.Get("b").Overlap || cfg.Get("c").Overlap {
		t.Fatalf("overlap flags wrong: a=%+v b=%+v c=%+v", cfg.Get("a"), cfg.Get("b"), cfg.Get("c"))
	}
	if !cfg.Get("b").Auto {
		t.Error("auto must survive alongside overlap")
	}
	again, err := ParseString(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if !again.Get("a").Overlap || !again.Get("b").Overlap || again.Get("c").Overlap {
		t.Errorf("overlap lost in round trip: %q", cfg.String())
	}
}
