// Package checkpoint defines the on-disk snapshot format of the simulated
// runtime's complete backend state, for checkpoint/restart: per-rank dat
// values, the halo-validity state, virtual clocks, the fault/exchange
// sequence counter, and an opaque backend-defined continuation blob (stats,
// plan-cache fingerprints, autotuner state). The container is versioned and
// integrity-checked, so a truncated or bit-flipped file is rejected rather
// than silently resumed from.
//
// Layout (all integers little-endian):
//
//	offset  size  content
//	0       8     magic "OP2CACKP"
//	8       4     format version (uint32, currently 1)
//	12      ...   sections, each length-prefixed (uint64 count/len):
//	              fingerprint JSON, note, faultSeq (uint64), clocks
//	              ([]float64 bit patterns), validity (exec/nonexec int64
//	              pairs per dat), dats ([rank][dat][]float64), meta JSON
//	end-8   8     FNV-1a 64-bit checksum of every preceding byte
//
// Float64 values are stored as their IEEE-754 bit patterns, so a snapshot
// restores the exact values — the restore invariant (resumed run bitwise
// identical to the uninterrupted one) depends on it.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
)

const magic = "OP2CACKP"

// Version is the current container format version. Decode rejects files
// written by other versions: state layout is coupled to the runtime, and a
// cross-version resume would violate the restore invariant silently.
const Version = 1

// maxSectionLen bounds any single length prefix, so a corrupt header cannot
// drive a multi-terabyte allocation before the checksum is verified.
const maxSectionLen = 1 << 38

// State is one complete backend snapshot.
type State struct {
	// Fingerprint is the canonical JSON of the producing configuration's
	// shape (see cluster's configFingerprint). Restore refuses a snapshot
	// whose fingerprint does not match the restoring configuration: the
	// restore invariant only holds for a process-equivalent backend.
	Fingerprint []byte
	// Note is caller-defined resume context (e.g. the iteration number or
	// a benchmark resume point), opaque to this package.
	Note string
	// FaultSeq is the exchange sequence counter keying deterministic fault
	// decisions; restoring it keeps the resumed run's fault schedule
	// aligned with the uninterrupted one.
	FaultSeq uint64
	// Clocks are the per-rank virtual clocks.
	Clocks []float64
	// ValidExec and ValidNonexec are the per-dat halo validity depths.
	ValidExec    []int64
	ValidNonexec []int64
	// Dats holds every rank's local values per dat: Dats[rank][dat] is the
	// rank's slab in layout order.
	Dats [][][]float64
	// Meta is a backend-defined JSON continuation blob (stats, plan-cache
	// keys, autotuner state), opaque to this package.
	Meta []byte
}

// errWriter folds the first write error, so Encode reads as straight-line
// code; count totals bytes written.
type errWriter struct {
	w     io.Writer
	err   error
	count int64
}

func (e *errWriter) write(p []byte) {
	if e.err != nil {
		return
	}
	n, err := e.w.Write(p)
	e.count += int64(n)
	e.err = err
}

func (e *errWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.write(b[:])
}

func (e *errWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

func (e *errWriter) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.write(p)
}

func (e *errWriter) floats(f []float64) {
	e.u64(uint64(len(f)))
	buf := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	e.write(buf)
}

// Encode writes the snapshot to w and returns the encoded size in bytes.
// The trailing checksum covers every preceding byte.
func Encode(w io.Writer, s *State) (int64, error) {
	h := fnv.New64a()
	ew := &errWriter{w: io.MultiWriter(w, h)}
	ew.write([]byte(magic))
	ew.u32(Version)
	ew.bytes(s.Fingerprint)
	ew.bytes([]byte(s.Note))
	ew.u64(s.FaultSeq)
	ew.floats(s.Clocks)
	if len(s.ValidExec) != len(s.ValidNonexec) {
		return ew.count, fmt.Errorf("checkpoint: validity slices disagree: %d exec vs %d nonexec",
			len(s.ValidExec), len(s.ValidNonexec))
	}
	ew.u64(uint64(len(s.ValidExec)))
	for i := range s.ValidExec {
		ew.u64(uint64(s.ValidExec[i]))
		ew.u64(uint64(s.ValidNonexec[i]))
	}
	ew.u64(uint64(len(s.Dats)))
	for _, rank := range s.Dats {
		ew.u64(uint64(len(rank)))
		for _, dat := range rank {
			ew.floats(dat)
		}
	}
	ew.bytes(s.Meta)
	if ew.err != nil {
		return ew.count, fmt.Errorf("checkpoint: encode: %w", ew.err)
	}
	sum := h.Sum64()
	// The checksum itself is written to w alone (it cannot cover itself).
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], sum)
	n, err := w.Write(b[:])
	total := ew.count + int64(n)
	if err != nil {
		return total, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return total, nil
}

// errReader mirrors errWriter for decoding, hashing every byte it reads.
type errReader struct {
	r   io.Reader
	h   hash.Hash64
	err error
}

func (e *errReader) read(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := io.ReadFull(e.r, p); err != nil {
		e.err = err
		return
	}
	e.h.Write(p)
}

func (e *errReader) u64() uint64 {
	var b [8]byte
	e.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (e *errReader) u32() uint32 {
	var b [4]byte
	e.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (e *errReader) len() int {
	n := e.u64()
	if e.err == nil && n > maxSectionLen {
		e.err = fmt.Errorf("section length %d exceeds limit", n)
	}
	return int(n)
}

// allocChunk bounds how much readN allocates ahead of the stream proving
// it actually holds the data: a corrupt length prefix below maxSectionLen
// could still claim hundreds of gigabytes, and an upfront make of that size
// would kill the process before the checksum check ever rejects the file.
const allocChunk = 1 << 20

// readN reads exactly n bytes, growing the buffer one bounded chunk at a
// time so a lying length prefix fails with an I/O error at the stream's
// real end instead of a giant allocation.
func (e *errReader) readN(n int) []byte {
	if e.err != nil {
		return nil
	}
	if n <= allocChunk {
		p := make([]byte, n)
		e.read(p)
		return p
	}
	out := make([]byte, 0, allocChunk)
	for rem := n; rem > 0 && e.err == nil; {
		c := rem
		if c > allocChunk {
			c = allocChunk
		}
		start := len(out)
		out = append(out, make([]byte, c)...)
		e.read(out[start:])
		rem -= c
	}
	return out
}

func (e *errReader) bytes() []byte {
	return e.readN(e.len())
}

func (e *errReader) floats() []float64 {
	n := e.len()
	buf := e.readN(8 * n)
	if e.err != nil {
		return nil
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return f
}

// capFor clamps a decoded element count to a sane initial capacity.
func capFor(n int) int {
	if n < 0 {
		return 0
	}
	if n > 1024 {
		return 1024
	}
	return n
}

// Decode reads one snapshot, verifying magic, version and checksum.
func Decode(r io.Reader) (*State, error) {
	er := &errReader{r: r, h: fnv.New64a()}
	var m [len(magic)]byte
	er.read(m[:])
	if er.err == nil && string(m[:]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint file)", m[:])
	}
	if v := er.u32(); er.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", v, Version)
	}
	s := &State{}
	s.Fingerprint = er.bytes()
	s.Note = string(er.bytes())
	s.FaultSeq = er.u64()
	s.Clocks = er.floats()
	// Collection sizes grow by append as elements actually decode (capped
	// initial capacity), not by one upfront make of the claimed count: a
	// corrupt count below maxSectionLen must fail at the stream's real end,
	// not allocate terabytes first.
	nValid := er.len()
	for i := 0; i < nValid && er.err == nil; i++ {
		s.ValidExec = append(s.ValidExec, int64(er.u64()))
		s.ValidNonexec = append(s.ValidNonexec, int64(er.u64()))
	}
	nRanks := er.len()
	for r := 0; r < nRanks && er.err == nil; r++ {
		nDats := er.len()
		rank := make([][]float64, 0, capFor(nDats))
		for d := 0; d < nDats && er.err == nil; d++ {
			rank = append(rank, er.floats())
		}
		s.Dats = append(s.Dats, rank)
	}
	s.Meta = er.bytes()
	if er.err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", er.err)
	}
	want := er.h.Sum64()
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: decode checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch: file %#x, content %#x (truncated or corrupt)", got, want)
	}
	return s, nil
}

// MarshalFingerprint renders any JSON-encodable fingerprint value in
// canonical form (encoding/json sorts map keys, so equal values produce
// equal bytes).
func MarshalFingerprint(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: fingerprint: %w", err)
	}
	return b, nil
}
