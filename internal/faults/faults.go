// Package faults is the deterministic fault-injection layer of the virtual
// network. A Plan, parsed from a compact spec string, decides per message
// transmission attempt whether the attempt is dropped, corrupted, delayed,
// or slowed by a straggling rank. Decisions are pure functions of the plan
// seed and the attempt's identity (exchange sequence number, message index,
// retry number), so a given plan produces the same fault schedule on every
// run regardless of host-thread scheduling — faults are charged in virtual
// time and simulations stay bit-reproducible.
//
// Spec grammar (comma-separated key=value clauses, all optional):
//
//	drop=0.01              — attempt is lost with probability 0.01
//	corrupt=0.002          — attempt arrives truncated/garbled with probability 0.002
//	delay=5x@0.01          — attempt takes 5x its transmission time with probability 0.01
//	straggler=rank3:10x    — every attempt sent by rank 3 is 10x slower (repeatable)
//	crash=rank0@120        — rank 0 dies at exchange sequence 120 (process death;
//	                         repeatable: crash=rank0@120,crash=rank2@400 schedules
//	                         an ordered multi-crash run, each clause firing once)
//	seed=42                — decision seed (default 1)
//	maxretries=6           — per-message retransmission budget hint for the runtime
//
// Example: "drop=0.01,corrupt=0.002,delay=5x@0.01,straggler=rank3:10x,seed=42".
//
// The crash clause is categorically different from the message faults: it is
// not a probabilistic per-attempt verdict but a deterministic process death,
// raised by the runtime as a CrashError when the named rank reaches the given
// exchange sequence number. A crashed run is therefore exactly reproducible —
// the same plan kills the same run at the same virtual-time point every time —
// which is what makes checkpoint/restart testable: crash, restore from the
// last checkpoint, and the completed run must match the uninterrupted one
// bit for bit.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Attempt identifies one transmission attempt of one message. Exchange is
// the runtime's exchange sequence number, Msg the message's index within
// that exchange, and Try the 0-based retransmission count.
type Attempt struct {
	Exchange uint64
	Msg      int
	Try      int
	From, To int32
}

// Verdict is the plan's decision for one attempt. Delay and Slow are
// multipliers (>= 1) on the attempt's transmission time; Drop and Corrupt
// both mean the payload does not arrive usable and must be retransmitted.
type Verdict struct {
	Drop    bool
	Corrupt bool
	Delay   float64
	Slow    float64
}

// Failed reports whether the attempt needs a retransmission.
func (v Verdict) Failed() bool { return v.Drop || v.Corrupt }

// Plan is a parsed, immutable fault schedule. The zero value (and a nil
// plan) injects nothing.
type Plan struct {
	// Seed keys every decision; two plans differing only in seed produce
	// independent fault schedules.
	Seed uint64
	// Drop and Corrupt are per-attempt loss/corruption probabilities.
	Drop    float64
	Corrupt float64
	// DelayProb and DelayFactor: with probability DelayProb an attempt's
	// transmission time is multiplied by DelayFactor.
	DelayProb   float64
	DelayFactor float64
	// Stragglers maps rank -> slowdown factor applied to every attempt
	// that rank sends.
	Stragglers map[int32]float64
	// MaxRetries, when positive, is the plan's suggested per-message
	// retransmission budget; the runtime may override it.
	MaxRetries int
	// Crashes is the ordered multi-crash schedule: each clause kills the
	// run when the named rank reaches the given exchange sequence number
	// (see CrashError), at most once per run attempt. Unlike the message
	// faults above a crash is not recoverable by retransmission; recovery
	// is restart from a checkpoint (operator -restore, or the supervisor's
	// in-process restart, which re-arms the clauses that have not fired
	// yet). Exchange numbers are unique across clauses — two clauses at
	// the same exchange could never both fire and are rejected by Parse.
	Crashes []Crash
}

// Crash is a deterministic process-death fault: rank Rank dies when the
// runtime's exchange sequence counter reaches Exchange.
type Crash struct {
	Rank     int32
	Exchange uint64
}

// CrashSchedule returns the plan's ordered crash clauses. Safe on a nil
// plan.
func (p *Plan) CrashSchedule() []Crash {
	if p == nil {
		return nil
	}
	return p.Crashes
}

// CrashError is the typed panic value raised by a runtime honouring a crash
// fault, so drivers can distinguish the simulated process death from a bug,
// point the operator at the last checkpoint and exit distinctly.
type CrashError struct {
	Rank     int32
	Exchange uint64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: rank %d crashed at exchange %d", e.Rank, e.Exchange)
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Corrupt > 0 || p.DelayProb > 0 || len(p.Stragglers) > 0
}

// Parse builds a Plan from a spec string. An empty spec yields a valid plan
// that injects nothing. Scalar clauses (drop, corrupt, delay, seed,
// maxretries) may appear at most once — a duplicate is rejected rather than
// last-wins; straggler and crash clauses repeat, one per rank or exchange.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Seed: 1, DelayFactor: 1}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	seen := make(map[string]bool, 4)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		if key != "straggler" && key != "crash" {
			if seen[key] {
				return nil, fmt.Errorf("faults: duplicate clause %q", key)
			}
			seen[key] = true
		}
		switch key {
		case "drop":
			if err := parseProb(val, &p.Drop); err != nil {
				return nil, fmt.Errorf("faults: drop: %v", err)
			}
		case "corrupt":
			if err := parseProb(val, &p.Corrupt); err != nil {
				return nil, fmt.Errorf("faults: corrupt: %v", err)
			}
		case "delay":
			// FACTORx@PROB, e.g. 5x@0.01.
			fac, prob, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faults: delay %q is not FACTORx@PROB", val)
			}
			f, err := parseFactor(fac)
			if err != nil {
				return nil, fmt.Errorf("faults: delay: %v", err)
			}
			p.DelayFactor = f
			if err := parseProb(prob, &p.DelayProb); err != nil {
				return nil, fmt.Errorf("faults: delay: %v", err)
			}
		case "straggler":
			// rankN:FACTORx, e.g. rank3:10x.
			rankStr, fac, ok := strings.Cut(val, ":")
			if !ok || !strings.HasPrefix(rankStr, "rank") {
				return nil, fmt.Errorf("faults: straggler %q is not rankN:FACTORx", val)
			}
			rank, err := strconv.Atoi(strings.TrimPrefix(rankStr, "rank"))
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("faults: straggler rank %q", rankStr)
			}
			f, err := parseFactor(fac)
			if err != nil {
				return nil, fmt.Errorf("faults: straggler: %v", err)
			}
			if p.Stragglers == nil {
				p.Stragglers = map[int32]float64{}
			}
			if _, dup := p.Stragglers[int32(rank)]; dup {
				return nil, fmt.Errorf("faults: two straggler clauses for rank %d", rank)
			}
			p.Stragglers[int32(rank)] = f
		case "crash":
			// rankN@E, e.g. rank0@120.
			rankStr, exchStr, ok := strings.Cut(val, "@")
			if !ok || !strings.HasPrefix(rankStr, "rank") {
				return nil, fmt.Errorf("faults: crash %q is not rankN@EXCHANGE", val)
			}
			rank, err := strconv.Atoi(strings.TrimPrefix(rankStr, "rank"))
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("faults: crash rank %q", rankStr)
			}
			exch, err := strconv.ParseUint(exchStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: crash exchange %q: %v", exchStr, err)
			}
			for _, c := range p.Crashes {
				if c.Exchange == exch {
					return nil, fmt.Errorf("faults: two crash clauses at exchange %d (only the first could ever fire)", exch)
				}
			}
			p.Crashes = append(p.Crashes, Crash{Rank: int32(rank), Exchange: exch})
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			p.Seed = s
		case "maxretries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faults: maxretries %q must be a positive integer", val)
			}
			p.MaxRetries = n
		default:
			return nil, fmt.Errorf("faults: unknown clause %q", key)
		}
	}
	return p, nil
}

// MustParse is Parse for known-good specs (tests, built-in defaults).
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseProb(s string, out *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v > 1 {
		return fmt.Errorf("probability %q outside [0, 1]", s)
	}
	*out = v
	return nil
}

func parseFactor(s string) (float64, error) {
	if !strings.HasSuffix(s, "x") {
		return 0, fmt.Errorf("factor %q missing x suffix", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("factor %q must be >= 1", s)
	}
	return v, nil
}

// String renders the plan back into spec form; the result round-trips
// through Parse. Straggler clauses appear in rank order.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.Corrupt))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%gx@%g", p.DelayFactor, p.DelayProb))
	}
	ranks := make([]int32, 0, len(p.Stragglers))
	for r := range p.Stragglers {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for _, r := range ranks {
		parts = append(parts, fmt.Sprintf("straggler=rank%d:%gx", r, p.Stragglers[r]))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash=rank%d@%d", c.Rank, c.Exchange))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("maxretries=%d", p.MaxRetries))
	}
	return strings.Join(parts, ",")
}

// Judge decides the outcome of one transmission attempt. Pure: the verdict
// depends only on the plan and the attempt identity. A nil plan returns the
// clean verdict.
func (p *Plan) Judge(a Attempt) Verdict {
	v := Verdict{Delay: 1, Slow: 1}
	if p == nil {
		return v
	}
	if f, ok := p.Stragglers[a.From]; ok {
		v.Slow = f
	}
	if p.Drop == 0 && p.Corrupt == 0 && p.DelayProb == 0 {
		return v
	}
	// One independent uniform per decision stream, derived by hashing the
	// attempt identity with a per-stream salt.
	h := p.Seed
	h = mix(h, a.Exchange)
	h = mix(h, uint64(a.Msg)<<32|uint64(uint32(a.Try)))
	h = mix(h, uint64(uint32(a.From))<<32|uint64(uint32(a.To)))
	if p.Drop > 0 && uniform(mix(h, 0xd509)) < p.Drop {
		v.Drop = true
	}
	if p.Corrupt > 0 && uniform(mix(h, 0xc0de)) < p.Corrupt {
		v.Corrupt = true
	}
	if p.DelayProb > 0 && uniform(mix(h, 0xde1a)) < p.DelayProb {
		v.Delay = p.DelayFactor
	}
	return v
}

// mix is one round of splitmix64 over state^value: a fast, well-distributed
// 64-bit hash step.
func mix(state, value uint64) uint64 {
	z := state ^ value
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform maps a 64-bit hash to [0, 1) using the top 53 bits.
func uniform(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
