// Package supervise is the self-healing execution layer: a supervisor that
// drives a run, catches typed failure panics from the simulated runtime
// (injected crash faults, exchange integrity violations after retry
// give-up, no-progress watchdog trips), restores from the newest valid
// generation of a verified checkpoint ring and resumes — under a bounded
// restart budget with exponential backoff charged in virtual time.
//
// The supervisor never touches the simulated clocks: restart backoff
// accumulates on a separate SuperviseStats ledger, and the runtime's
// canonical-order execution makes the recovered run's checksums, clocks and
// stats bitwise identical to the uninterrupted run — the oracle the package
// tests pin.
package supervise

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/faults"
	"op2ca/internal/obs"
)

// Spec is the parsed form of the -supervise command-line flag:
// "on[,budget=N][,backoff=T][,watchdog=T]".
type Spec struct {
	// Enabled reports whether supervision was requested at all; the zero
	// Spec is disabled.
	Enabled bool
	// Budget is the maximum number of supervised restarts before the run
	// fails with a *BudgetError (0 = the first failure is fatal).
	Budget int
	// Backoff is the base of the exponential restart backoff in virtual
	// seconds: restart k charges Backoff * 2^(k-1) to the supervise
	// ledger (never to rank clocks).
	Backoff float64
	// Watchdog is the no-progress deadline in virtual seconds handed to
	// Backend.SetWatchdog (0 = off). Each watchdog trip doubles the
	// effective deadline for the next attempt, so deterministic
	// re-execution of a slow-but-progressing run eventually passes.
	Watchdog float64
}

// Defaults for an enabled spec that does not override them.
const (
	DefaultBudget  = 8
	DefaultBackoff = 1.0
)

// ParseSpec parses the -supervise flag value. "" is a disabled spec; "on"
// enables supervision with defaults; budget=N, backoff=T and watchdog=T
// clauses (comma-separated, any order, each implying "on") override them.
// Each key may appear at most once: duplicates are rejected rather than
// last-wins, so a mistyped spec fails loudly instead of silently dropping
// an override.
func ParseSpec(s string) (Spec, error) {
	if strings.TrimSpace(s) == "" {
		return Spec{}, nil
	}
	spec := Spec{Enabled: true, Budget: DefaultBudget, Backoff: DefaultBackoff}
	seen := make(map[string]bool, 3)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if field == "on" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("supervise spec: %q is not \"on\" or key=value", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("supervise spec: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "budget":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("supervise spec: budget=%q must be a non-negative integer", val)
			}
			spec.Budget = n
		case "backoff":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Spec{}, fmt.Errorf("supervise spec: backoff=%q must be a non-negative duration in virtual seconds", val)
			}
			spec.Backoff = f
		case "watchdog":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return Spec{}, fmt.Errorf("supervise spec: watchdog=%q must be a positive deadline in virtual seconds", val)
			}
			spec.Watchdog = f
		default:
			return Spec{}, fmt.Errorf("supervise spec: unknown key %q (want on, budget, backoff, watchdog)", key)
		}
	}
	return spec, nil
}

// String renders the spec in ParseSpec's grammar ("" when disabled).
func (s Spec) String() string {
	if !s.Enabled {
		return ""
	}
	parts := []string{"on"}
	if s.Budget != DefaultBudget {
		parts = append(parts, fmt.Sprintf("budget=%d", s.Budget))
	}
	if s.Backoff != DefaultBackoff {
		parts = append(parts, fmt.Sprintf("backoff=%g", s.Backoff))
	}
	if s.Watchdog > 0 {
		parts = append(parts, fmt.Sprintf("watchdog=%g", s.Watchdog))
	}
	return strings.Join(parts, ",")
}

// BudgetError reports a run that failed more times than the restart budget
// allows. Unwrap exposes the final failure.
type BudgetError struct {
	// Restarts is the number of supervised restarts consumed before the
	// final failure.
	Restarts int
	// Last is the failure that exhausted the budget.
	Last error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("supervise: restart budget exhausted after %d restarts: %v", e.Restarts, e.Last)
}

func (e *BudgetError) Unwrap() error { return e.Last }

// Supervisable reports whether err is a failure class the supervisor
// recovers from: an injected crash fault, an exchange integrity violation,
// or a no-progress watchdog trip. Anything else (I/O errors, programming
// bugs) stays fatal.
func Supervisable(err error) bool {
	var ce *faults.CrashError
	var ee *cluster.ExchangeError
	var he *cluster.HangError
	return errors.As(err, &ce) || errors.As(err, &ee) || errors.As(err, &he)
}

// Catch runs one attempt body, converting the typed failure panics the
// runtime throws (*faults.CrashError, *cluster.ExchangeError,
// *cluster.HangError) into returned errors. Any other panic — a genuine
// bug — propagates. An error returned by f passes through unchanged.
func Catch(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok && Supervisable(e) {
			err = e
			return
		}
		panic(r)
	}()
	return f()
}

// CatchCrash runs f, returning the *faults.CrashError it panicked with, or
// nil when it completed. Any other panic propagates. This is the shared
// helper behind the unsupervised crash-fault exit path of the demo apps
// (report the crash, exit 3, let an operator -restore).
func CatchCrash(f func()) (c *faults.CrashError) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ce, ok := r.(*faults.CrashError); ok {
			c = ce
			return
		}
		panic(r)
	}()
	f()
	return nil
}

// Supervisor holds the recovery state of one supervised run: the per-clause
// crash-arming mask, the escalating watchdog deadline, the restart budget
// ledger and the SuperviseStats it reports into.
type Supervisor struct {
	spec   Spec
	plan   *faults.Plan
	ring   *checkpoint.Ring
	tracer *obs.Tracer

	// armed tracks which crash clauses of the plan's schedule have not
	// fired yet; Adopt re-arms exactly those on a restored backend
	// (Restore disarms all of them).
	armed []bool
	// wd is the effective watchdog deadline, doubled on every trip.
	wd          float64
	restarts    int
	lastFailure error
	stats       cluster.SuperviseStats
}

// NewSupervisor builds a supervisor. plan, ring and tracer may each be nil:
// no crash schedule to track, restart-from-scratch recovery only, and no
// trace emission, respectively.
func NewSupervisor(spec Spec, plan *faults.Plan, ring *checkpoint.Ring, tracer *obs.Tracer) *Supervisor {
	s := &Supervisor{spec: spec, plan: plan, ring: ring, tracer: tracer, wd: spec.Watchdog}
	n := len(plan.CrashSchedule())
	s.armed = make([]bool, n)
	for i := range s.armed {
		s.armed[i] = true
	}
	return s
}

// Restarts returns the number of supervised restarts consumed so far.
func (s *Supervisor) Restarts() int { return s.restarts }

// Armed returns the per-clause crash mask for Backend.ArmCrashes: true for
// every clause of the plan's crash schedule that has not fired yet.
func (s *Supervisor) Armed() []bool {
	out := make([]bool, len(s.armed))
	copy(out, s.armed)
	return out
}

// Watchdog returns the effective no-progress deadline for the next attempt
// (the configured deadline doubled once per trip so far; 0 = off).
func (s *Supervisor) Watchdog() float64 { return s.wd }

// Adopt arms a freshly built or restored backend with the supervisor's
// crash mask and watchdog deadline. The attempt body must call it on every
// backend it constructs before executing loops.
func (s *Supervisor) Adopt(b *cluster.Backend) {
	b.ArmCrashes(s.armed)
	if s.wd > 0 {
		b.SetWatchdog(s.wd)
	}
}

// Recover begins one attempt: it scans the checkpoint ring newest-to-oldest
// for a valid snapshot, quarantining corrupt generations, and returns the
// state to resume from (nil = cold start). With no ring every attempt is a
// cold start.
func (s *Supervisor) Recover() (*checkpoint.State, error) {
	s.stats.Attempts++
	var st *checkpoint.State
	var gen checkpoint.Generation
	if s.ring != nil {
		var tried, quarantined int
		var err error
		st, gen, tried, quarantined, err = s.ring.RecoverNewest()
		s.stats.GenerationsTried += tried
		s.stats.Quarantined += quarantined
		if err != nil {
			return nil, err
		}
	}
	if st == nil {
		s.stats.ColdStarts++
	}
	if s.tracer.Enabled() && s.lastFailure != nil {
		src, t := "cold", 0.0
		if st != nil {
			src = filepath.Base(gen.Path)
			for _, c := range st.Clocks {
				if c > t {
					t = c
				}
			}
		}
		s.tracer.Emit(0, obs.TrackExec, obs.Restart,
			fmt.Sprintf("%v <- %s", s.lastFailure, src), t, t, 0)
	}
	return st, nil
}

// OnFailure charges one supervised failure against the restart budget. A
// nil return means the run should recover and retry; a non-nil return is
// the run's final error — the failure itself when it is not supervisable,
// or a *BudgetError when the budget is exhausted.
func (s *Supervisor) OnFailure(err error) error {
	if !Supervisable(err) {
		return err
	}
	if s.restarts >= s.spec.Budget {
		return &BudgetError{Restarts: s.restarts, Last: err}
	}
	s.restarts++
	s.stats.Restarts++
	s.stats.BackoffVirtual += s.spec.Backoff * pow2(s.restarts-1)
	var ce *faults.CrashError
	var he *cluster.HangError
	var ee *cluster.ExchangeError
	switch {
	case errors.As(err, &ce):
		s.stats.CrashRestarts++
		// The fired clause stays disarmed for the rest of the run: the
		// resumed attempt replays the pre-crash exchange sequence, and the
		// crashed node's replacement must not die at the same point again.
		for i, c := range s.plan.CrashSchedule() {
			if c.Exchange == ce.Exchange && i < len(s.armed) {
				s.armed[i] = false
			}
		}
	case errors.As(err, &he):
		s.stats.WatchdogTrips++
		// Escalate: execution is deterministic, so retrying under the same
		// deadline would trip at the same exchange forever. Doubling lets a
		// slow-but-progressing run eventually pass while a genuine hang
		// still exhausts the budget.
		s.wd *= 2
	case errors.As(err, &ee):
		s.stats.ExchangeRestarts++
	}
	s.lastFailure = err
	return nil
}

// pow2 is the saturated exponential backoff multiplier (see
// cluster.backoffFactor for the try>=63 overflow rationale).
func pow2(k int) float64 {
	if k >= 62 {
		return float64(int64(1) << 62)
	}
	return float64(int64(1) << uint(k))
}

// Finish publishes the supervisor's ledger into a run's stats (including
// write-verification quarantines the ring performed outside recovery
// scans). Call once, after the final successful attempt.
func (s *Supervisor) Finish(st *cluster.Stats) {
	s.stats.Enabled = true
	if s.ring != nil {
		s.stats.Quarantined += s.ring.VerifyFailures
	}
	if st != nil {
		st.Supervise = s.stats
	}
}

// Stats returns a copy of the supervisor's ledger (Enabled set).
func (s *Supervisor) Stats() cluster.SuperviseStats {
	out := s.stats
	out.Enabled = true
	return out
}

// Runner drives a supervised run to completion: recover, attempt, classify
// the failure, charge the budget, repeat.
type Runner struct {
	Spec   Spec
	Plan   *faults.Plan
	Ring   *checkpoint.Ring
	Tracer *obs.Tracer
	// Body runs one attempt from st (nil = cold start). It must call
	// sup.Adopt on every backend it constructs, and should write
	// checkpoints through sup's ring so later attempts can resume. A
	// returned error is fatal (no retry); supervised failures surface as
	// the typed panics Catch converts.
	Body func(st *checkpoint.State, sup *Supervisor) error
	// BeforeRecover, when set, runs after each supervised failure before
	// the next recovery scan — a chaos hook for tests to corrupt the ring
	// between attempts.
	BeforeRecover func(failure error, restarts int)
}

// Run executes the supervised loop and returns the supervisor (for Finish
// and stats) and the run's final error, nil on success.
func (r *Runner) Run() (*Supervisor, error) {
	s := NewSupervisor(r.Spec, r.Plan, r.Ring, r.Tracer)
	for {
		st, err := s.Recover()
		if err != nil {
			return s, err
		}
		err = Catch(func() error { return r.Body(st, s) })
		if err == nil {
			return s, nil
		}
		if ferr := s.OnFailure(err); ferr != nil {
			return s, ferr
		}
		if r.BeforeRecover != nil {
			r.BeforeRecover(err, s.restarts)
		}
	}
}
