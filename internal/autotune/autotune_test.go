package autotune

import (
	"testing"

	"op2ca/internal/model"
)

func TestWithDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.ProbeWindows != 1 || d.ReplanPct != 25 {
		t.Errorf("zero config resolved to %+v", d)
	}
	if got := (Config{ProbeWindows: -3}).WithDefaults().ProbeWindows; got != 1 {
		t.Errorf("ProbeWindows=-3 resolved to %d, want 1", got)
	}
	if got := (Config{ProbeWindows: 4, ReplanPct: -1}).WithDefaults(); got.ProbeWindows != 4 || got.ReplanPct != -1 {
		t.Errorf("explicit config altered: %+v", got)
	}
}

func TestPolicyKeyAndEqual(t *testing.T) {
	if (Policy{}).Key() != "op2" {
		t.Errorf("zero policy key = %q", Policy{}.Key())
	}
	ca := Policy{CA: true, Depth: 2, HE: []int{2, 1}, Grouped: true}
	if ca.Key() != "ca:he=2:grouped" {
		t.Errorf("key = %q", ca.Key())
	}
	if (Policy{CA: true, Depth: 3}).Key() != "ca:he=3:ungrouped" {
		t.Errorf("key = %q", Policy{CA: true, Depth: 3}.Key())
	}
	if !ca.Equal(Policy{CA: true, Depth: 2, HE: []int{2, 1}, Grouped: true}) {
		t.Error("identical policies must be Equal")
	}
	if ca.Equal(Policy{CA: true, Depth: 2, HE: []int{2, 2}, Grouped: true}) {
		t.Error("different HE must not be Equal")
	}
	if ca.Equal(Policy{}) {
		t.Error("CA and OP2 must not be Equal")
	}
	// Overlap is a policy dimension: it must separate keys (the plan cache
	// and the decision log key on them) and break equality.
	ov := Policy{CA: true, Depth: 2, HE: []int{2, 1}, Grouped: true, Overlap: true}
	if ov.Key() != "ca:he=2:grouped:ov" {
		t.Errorf("overlap key = %q", ov.Key())
	}
	if (Policy{CA: true, Depth: 3, Overlap: true}).Key() != "ca:he=3:ungrouped:ov" {
		t.Errorf("overlap key = %q", Policy{CA: true, Depth: 3, Overlap: true}.Key())
	}
	if ca.Equal(ov) || ov.Equal(ca) {
		t.Error("bulk and overlapped policies must not be Equal")
	}
	if !ov.Equal(Policy{CA: true, Depth: 2, HE: []int{2, 1}, Grouped: true, Overlap: true}) {
		t.Error("identical overlapped policies must be Equal")
	}
}

// TestScoreOverlapCheaper: on a latency-dominated network an overlapped CA
// candidate must score strictly below its bulk twin — (p-1) latencies and
// handshakes leave the modelled communication term — so the tuner can
// prefer it whenever the executor offers both.
func TestScoreOverlapCheaper(t *testing.T) {
	cal := Calib{L: 10e-6, B: 1e9, PackRate: 4e9}
	in := tuneFixture(150)
	bulk := in.CA[0]
	ov := bulk
	ov.Policy = Policy{CA: true, Depth: bulk.Policy.Depth, HE: bulk.Policy.HE,
		Grouped: bulk.Policy.Grouped, Overlap: true}
	in.CA = append(in.CA, ov)
	d, err := Score(in, cal)
	if err != nil {
		t.Fatal(err)
	}
	var tBulk, tOv float64
	for _, c := range d.Candidates {
		switch c.Policy {
		case "ca:he=2:grouped":
			tBulk = c.Predicted
		case "ca:he=2:grouped:ov":
			tOv = c.Predicted
		}
	}
	if tBulk == 0 || tOv == 0 {
		t.Fatalf("candidates missing: %+v", d.Candidates)
	}
	if tOv >= tBulk {
		t.Errorf("overlapped candidate not cheaper: %g vs bulk %g", tOv, tBulk)
	}
	if d.Chosen != "ca:he=2:grouped:ov" {
		t.Errorf("chosen = %q, want the overlapped candidate", d.Chosen)
	}
}

// tuneFixture builds a one-loop chain where the CA candidate's model time
// is controllable through its halo size.
func tuneFixture(haloIters float64) ChainInputs {
	op2Loop := model.LoopParams{
		G: 1e-8, CoreIters: 1000, HaloIters: 100,
		NDats: 2, Neighbours: 4, MsgBytes: 8192,
	}
	return ChainInputs{
		Chain: "c",
		Op2:   []model.LoopParams{op2Loop, op2Loop},
		CA: []CACandidate{{
			Policy: Policy{CA: true, Depth: 2, HE: []int{2, 1}, Grouped: true},
			Params: model.ChainParams{
				Loops: []model.LoopParams{
					{G: 1e-8, CoreIters: 1000, HaloIters: haloIters},
					{G: 1e-8, CoreIters: 1000, HaloIters: haloIters},
				},
				Neighbours: 4, GroupedBytes: 16384,
			},
			PackBytes: 16384,
		}},
	}
}

func TestScorePicksCheapest(t *testing.T) {
	cal := Calib{L: 10e-6, B: 1e9, PackRate: 4e9}
	d, err := Score(tuneFixture(150), cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates) != 2 {
		t.Fatalf("candidates = %+v", d.Candidates)
	}
	if d.Candidates[0].Policy != "op2" {
		t.Error("OP2 must be scored first")
	}
	wantOp2 := model.TOp2Chain(tuneFixture(150).Op2, cal.Net(0))
	if d.PredictedOp2 != wantOp2 {
		t.Errorf("PredictedOp2 = %g, want %g", d.PredictedOp2, wantOp2)
	}
	// With 10us latency and two loops' worth of per-loop exchanges, the
	// single grouped exchange must win.
	if d.Chosen != "ca:he=2:grouped" || !d.ChosenPolicy.CA {
		t.Errorf("chosen = %q (%+v)", d.Chosen, d.ChosenPolicy)
	}
	if d.Predicted >= d.PredictedOp2 {
		t.Errorf("CA won without being cheaper: %g vs %g", d.Predicted, d.PredictedOp2)
	}
}

func TestScoreKeepsOp2WhenCompeteDominates(t *testing.T) {
	// Latency-free network: OP2's exchanges cost almost nothing, CA still
	// pays its redundant halo compute.
	cal := Calib{L: 1e-12, B: 1e15, PackRate: 1e15}
	d, err := Score(tuneFixture(5000), cal)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chosen != "op2" || d.ChosenPolicy.CA {
		t.Errorf("chosen = %q, want op2", d.Chosen)
	}
	if d.Predicted != d.PredictedOp2 {
		t.Error("an OP2 decision must predict the OP2 time")
	}
}

func TestScoreTieKeepsOp2(t *testing.T) {
	// A candidate that prices exactly equal must not displace the baseline
	// (strict less-than, matching jq min_by keeping the first of equals).
	in := tuneFixture(100)
	cal := Calib{L: 1e-6, B: 1e9, PackRate: 4e9}
	op2 := model.TOp2Chain(in.Op2, cal.Net(0))
	in.CA = []CACandidate{{Policy: Policy{CA: true, Depth: 1}, Params: model.ChainParams{
		Loops: []model.LoopParams{{G: op2, CoreIters: 1}}}}}
	if got := model.TCAChain(in.CA[0].Params, cal.Net(0)); got != op2 {
		t.Fatalf("tie setup broken: %g vs %g", got, op2)
	}
	d, err := Score(in, cal)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chosen != "op2" {
		t.Errorf("tie must keep op2, chose %q", d.Chosen)
	}
}

func TestScoreValidates(t *testing.T) {
	in := tuneFixture(100)
	if _, err := Score(in, Calib{L: -1, B: 1e9, PackRate: 1}); err == nil {
		t.Error("negative latency must fail validation")
	}
	bad := tuneFixture(100)
	bad.Op2[0].G = -5
	if _, err := Score(bad, Calib{L: 1e-6, B: 1e9, PackRate: 1}); err == nil {
		t.Error("negative op2 G must fail validation")
	}
	bad2 := tuneFixture(100)
	bad2.CA[0].Params.Loops[0].CoreIters = -1
	if _, err := Score(bad2, Calib{L: 1e-6, B: 1e9, PackRate: 1}); err == nil {
		t.Error("negative CA iteration count must fail validation")
	}
}

func TestShouldReplan(t *testing.T) {
	if ShouldReplan(1.0, 1.1, 25) {
		t.Error("10% error under a 25% threshold must not re-plan")
	}
	if !ShouldReplan(1.0, 2.0, 25) {
		t.Error("50% error over a 25% threshold must re-plan")
	}
	if ShouldReplan(1.0, 2.0, -1) {
		t.Error("negative threshold disables re-planning")
	}
	if ShouldReplan(1.0, 0, 25) {
		t.Error("unmeasured window must not re-plan")
	}
}
