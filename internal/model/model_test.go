package model

import (
	"math"
	"testing"
)

var net = Net{L: 2e-6, B: 2e8, C: 1e-6}

func TestTOp2LoopOverlap(t *testing.T) {
	// Compute-bound: core hides communication entirely.
	p := LoopParams{G: 1e-6, CoreIters: 1e6, HaloIters: 100, NDats: 1, Neighbours: 4, MsgBytes: 100}
	want := 1e-6*1e6 + 1e-6*100
	if got := TOp2Loop(p, net); math.Abs(got-want) > 1e-12 {
		t.Errorf("compute-bound TOp2Loop = %g, want %g", got, want)
	}
	// Communication-bound: comm term dominates.
	p.CoreIters = 1
	comm := 2.0 * 1 * 4 * (net.L + 100/net.B)
	want = comm + 1e-6*100
	if got := TOp2Loop(p, net); math.Abs(got-want) > 1e-12 {
		t.Errorf("comm-bound TOp2Loop = %g, want %g", got, want)
	}
}

func TestTOp2ChainSums(t *testing.T) {
	p := LoopParams{G: 1e-6, CoreIters: 10, HaloIters: 5, NDats: 1, Neighbours: 2, MsgBytes: 64}
	one := TOp2Loop(p, net)
	if got := TOp2Chain([]LoopParams{p, p, p}, net); math.Abs(got-3*one) > 1e-12 {
		t.Errorf("chain of 3 = %g, want %g", got, 3*one)
	}
}

func TestTCAChainSingleMessage(t *testing.T) {
	loops := []LoopParams{
		{G: 1e-6, CoreIters: 1000, HaloIters: 300},
		{G: 2e-6, CoreIters: 800, HaloIters: 200},
	}
	ca := ChainParams{Loops: loops, Neighbours: 4, GroupedBytes: 8192}
	core := 1e-6*1000 + 2e-6*800
	halo := 1e-6*300 + 2e-6*200
	comm := 4 * (net.L + 8192/net.B + net.C)
	want := core + halo
	if comm > core {
		want = comm + halo
	}
	if got := TCAChain(ca, net); math.Abs(got-want) > 1e-15 {
		t.Errorf("TCAChain = %g, want %g", got, want)
	}
}

// TestCAWinsWithManyLoops encodes the paper's central qualitative claim:
// at fixed per-loop message cost, the OP2 time grows with the number of
// loops (messages per loop) while the CA time pays for one grouped message,
// so long chains with small cores profit.
func TestCAWinsWithManyLoops(t *testing.T) {
	mkOp2 := func(n int) []LoopParams {
		loops := make([]LoopParams, n)
		for i := range loops {
			loops[i] = LoopParams{G: 1e-7, CoreIters: 500, HaloIters: 100,
				NDats: 1, Neighbours: 8, MsgBytes: 4096}
		}
		return loops
	}
	mkCA := func(n int) ChainParams {
		loops := make([]LoopParams, n)
		for i := range loops {
			// CA: smaller cores, more redundant halo work.
			loops[i] = LoopParams{G: 1e-7, CoreIters: 350, HaloIters: 400}
		}
		return ChainParams{Loops: loops, Neighbours: 8, GroupedBytes: 2 * 4096}
	}
	gain2 := Compare(mkOp2(2), mkCA(2), net).GainPct
	gain8 := Compare(mkOp2(8), mkCA(8), net).GainPct
	gain32 := Compare(mkOp2(32), mkCA(32), net).GainPct
	if !(gain32 > gain8 && gain8 > gain2) {
		t.Errorf("gains not increasing with loop count: %g %g %g", gain2, gain8, gain32)
	}
	if gain32 <= 0 {
		t.Errorf("32-loop chain should profit from CA, gain = %g%%", gain32)
	}
}

// TestCALosesWhenComputeDominates: with huge cores relative to messages,
// the extra redundant computation makes CA slower (the paper's gradl case).
func TestCALosesWhenComputeDominates(t *testing.T) {
	op2 := []LoopParams{
		{G: 1e-6, CoreIters: 1e6, HaloIters: 1000, NDats: 1, Neighbours: 4, MsgBytes: 1024},
		{G: 1e-6, CoreIters: 1e6, HaloIters: 1000, NDats: 1, Neighbours: 4, MsgBytes: 1024},
	}
	ca := ChainParams{Loops: []LoopParams{
		{G: 1e-6, CoreIters: 1e6, HaloIters: 50000},
		{G: 1e-6, CoreIters: 1e6, HaloIters: 50000},
	}, Neighbours: 4, GroupedBytes: 4096}
	c := Compare(op2, ca, net)
	if c.GainPct >= 0 {
		t.Errorf("compute-dominated chain should lose with CA, gain = %g%%", c.GainPct)
	}
	if c.CompIncPct <= 0 {
		t.Errorf("computation increase should be positive, got %g%%", c.CompIncPct)
	}
}

func TestGroupedMsgSize(t *testing.T) {
	loops := [][]DatHalo{
		{{EehElems: 100, EnhElems: 50, ElemBytes: 16}},
		{{EehElems: 100, EnhElems: 50, ElemBytes: 16}, {EehElems: 10, EnhElems: 0, ElemBytes: 8}},
	}
	want := 150.0*16 + 150*16 + 80
	if got := GroupedMsgSize(loops); got != want {
		t.Errorf("GroupedMsgSize = %g, want %g", got, want)
	}
}

func TestCompareComponents(t *testing.T) {
	op2 := []LoopParams{{G: 1e-6, CoreIters: 100, HaloIters: 10, NDats: 2, Neighbours: 3, MsgBytes: 500}}
	ca := ChainParams{Loops: []LoopParams{{G: 1e-6, CoreIters: 80, HaloIters: 40}},
		Neighbours: 3, GroupedBytes: 600}
	c := Compare(op2, ca, net)
	if c.Op2CommBytes != 2*2*3*500 {
		t.Errorf("Op2CommBytes = %g", c.Op2CommBytes)
	}
	if c.CACommBytes != 3*600 {
		t.Errorf("CACommBytes = %g", c.CACommBytes)
	}
	if c.Op2CoreIters != 100 || c.CAHaloIters != 40 {
		t.Error("iteration components wrong")
	}
	wantComm := (6000.0 - 1800) / 6000 * 100
	if math.Abs(c.CommReducPct-wantComm) > 1e-9 {
		t.Errorf("CommReducPct = %g, want %g", c.CommReducPct, wantComm)
	}
	wantComp := (120.0 - 110) / 110 * 100
	if math.Abs(c.CompIncPct-wantComp) > 1e-9 {
		t.Errorf("CompIncPct = %g, want %g", c.CompIncPct, wantComp)
	}
}

func TestBreakEven(t *testing.T) {
	op2 := []LoopParams{
		{G: 1e-7, CoreIters: 100, HaloIters: 50, NDats: 1, Neighbours: 8, MsgBytes: 4096},
		{G: 1e-7, CoreIters: 100, HaloIters: 50, NDats: 1, Neighbours: 8, MsgBytes: 4096},
	}
	ca := ChainParams{Loops: []LoopParams{
		{G: 1e-7, CoreIters: 80, HaloIters: 150},
		{G: 1e-7, CoreIters: 80, HaloIters: 150},
	}, Neighbours: 8}
	be := BreakEvenNeighbourBytes(op2, ca, net)
	if be <= 0 {
		t.Fatalf("break-even bytes = %g, want positive", be)
	}
	// At the break-even message size the two times agree.
	ca.GroupedBytes = be
	tOp2 := TOp2Chain(op2, net)
	tCA := TCAChain(ca, net)
	if math.Abs(tOp2-tCA)/tOp2 > 1e-9 {
		t.Errorf("at break-even: OP2 %g vs CA %g", tOp2, tCA)
	}
	// Below break-even CA wins, above it loses.
	ca.GroupedBytes = be / 2
	if TCAChain(ca, net) >= tOp2 {
		t.Error("below break-even CA should win")
	}
	ca.GroupedBytes = be * 2
	if TCAChain(ca, net) <= tOp2 {
		t.Error("above break-even CA should lose")
	}
}

func TestLoopParamsValidate(t *testing.T) {
	good := LoopParams{G: 1e-8, CoreIters: 10, HaloIters: 2, NDats: 1, Neighbours: 3, MsgBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if err := (LoopParams{}).Validate(); err != nil {
		t.Fatalf("zero params are degenerate but not invalid: %v", err)
	}
	bad := []LoopParams{
		{G: -1},
		{G: math.NaN()},
		{G: math.Inf(1)},
		{CoreIters: -1},
		{HaloIters: math.NaN()},
		{NDats: -2},
		{Neighbours: math.Inf(-1)},
		{MsgBytes: -8},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] = %+v accepted", i, p)
		}
	}
}

func TestNetValidate(t *testing.T) {
	if err := (Net{L: 1e-6, B: 1e9, C: 1e-7}).Validate(); err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}
	if err := (Net{L: 0, B: 1e9}).Validate(); err != nil {
		t.Fatalf("zero latency is valid: %v", err)
	}
	bad := []Net{
		{B: 0, L: 1e-6},
		{B: -1e9},
		{B: math.NaN()},
		{B: math.Inf(1)},
		{B: 1e9, L: -1e-6},
		{B: 1e9, L: math.NaN()},
		{B: 1e9, C: -1},
		{B: 1e9, C: math.Inf(1)},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad[%d] = %+v accepted", i, n)
		}
	}
}

// TestCommTimeOverlap pins the two delivery modes of CommTime: bulk is
// k times the full per-message cost; overlapped serialises only the
// injection term, paying latency and handshake once. The two must agree
// at k = 1 (back-compat: every pre-overlap call sites priced k = 1 paths
// through MsgTime) and at the eager boundary the handshake must not leak
// into either mode.
func TestCommTimeOverlap(t *testing.T) {
	n := Net{L: 2e-6, B: 2e8, EagerThreshold: 1024, Handshake: 4e-6}
	ov := n
	ov.Overlap = true
	for _, m := range []float64{0, 100, 1024, 1025, 1 << 20} {
		if b, o := n.CommTime(1, m), ov.CommTime(1, m); math.Abs(b-o) > 1e-15 {
			t.Errorf("m=%g: k=1 bulk %g != overlapped %g", m, b, o)
		}
	}
	// k messages: overlapped saves exactly (k-1)*(L+handshake) above the
	// eager threshold, (k-1)*L below it.
	const k = 5
	for _, tc := range []struct {
		m, save float64
	}{
		{512, (k - 1) * n.L},
		{4096, (k - 1) * (n.L + n.Handshake)},
	} {
		b, o := n.CommTime(k, tc.m), ov.CommTime(k, tc.m)
		if math.Abs((b-o)-tc.save) > 1e-12 {
			t.Errorf("m=%g: bulk-overlapped = %g, want %g", tc.m, b-o, tc.save)
		}
	}
	// Eager boundary: a message of exactly EagerThreshold bytes pays no
	// handshake in either mode.
	atB := n.CommTime(1, n.EagerThreshold)
	overB := n.CommTime(1, n.EagerThreshold+1)
	if math.Abs((overB-atB)-(n.Handshake+1/n.B)) > 1e-12 {
		t.Errorf("eager boundary: cost step %g, want handshake %g", overB-atB, n.Handshake)
	}
	if n.CommTime(0, 100) != 0 || n.CommTime(-1, 100) != 0 {
		t.Error("k <= 0 must price to 0")
	}
}
