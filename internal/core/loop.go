package core

import "fmt"

// Arg is one access descriptor of a parallel loop: which dat is accessed,
// through which map slot (or directly), and in what mode. It is the analogue
// of op_arg_dat / op_arg_gbl.
type Arg struct {
	// Dat is the accessed data; nil for a global argument.
	Dat *Dat
	// Map is the connectivity used for indirect access; nil for direct
	// access (OP2's identity map, OP_ID).
	Map *Map
	// Idx selects the map slot in [0, Map.Arity) for indirect access;
	// -1 for direct access.
	Idx int
	// Mode is the declared access mode.
	Mode AccessMode
	// Gbl is the buffer of a global argument (op_arg_gbl); nil otherwise.
	// Global Inc/Min/Max arguments are reduced across ranks at loop end.
	Gbl []float64
}

// VecAll as an Arg.Idx selects every map slot at once (OP2's vector
// arguments, op_arg_dat with a negative index): the kernel receives
// Map.Arity consecutive views for the argument.
const VecAll = -2

// ArgDat builds an indirect access descriptor: dat accessed through slot idx
// of map m, in the given mode. Mirrors op_arg_dat(dat, idx, map, ...).
func ArgDat(dat *Dat, idx int, m *Map, mode AccessMode) Arg {
	return Arg{Dat: dat, Map: m, Idx: idx, Mode: mode}
}

// ArgDatVec builds a vector access descriptor: dat accessed through every
// slot of map m at once. The kernel receives m.Arity consecutive views.
func ArgDatVec(dat *Dat, m *Map, mode AccessMode) Arg {
	return Arg{Dat: dat, Map: m, Idx: VecAll, Mode: mode}
}

// Views returns how many kernel views the argument expands to.
func (a Arg) Views() int {
	if a.Indirect() && a.Idx == VecAll {
		return a.Map.Arity
	}
	return 1
}

// ArgDatDirect builds a direct access descriptor: dat defined on the loop's
// iteration set, accessed at the iteration index (OP_ID map).
func ArgDatDirect(dat *Dat, mode AccessMode) Arg {
	return Arg{Dat: dat, Map: nil, Idx: -1, Mode: mode}
}

// ArgGbl builds a global argument of the given mode. For Inc, Min and Max
// the buffer is a cross-rank reduction target; for Read it is broadcast
// loop-constant data.
func ArgGbl(buf []float64, mode AccessMode) Arg {
	return Arg{Gbl: buf, Idx: -1, Mode: mode}
}

// IsGlobal reports whether the argument is a global (op_arg_gbl) argument.
func (a Arg) IsGlobal() bool { return a.Dat == nil }

// Indirect reports whether the argument is accessed through a map.
func (a Arg) Indirect() bool { return a.Map != nil }

// String renders the descriptor in the paper's <map, mode> notation.
func (a Arg) String() string {
	if a.IsGlobal() {
		return fmt.Sprintf("<GBL,%v>", a.Mode)
	}
	if a.Indirect() {
		if a.Idx == VecAll {
			return fmt.Sprintf("<%s[*],%v>%s", a.Map.Name, a.Mode, a.Dat.Name)
		}
		return fmt.Sprintf("<%s[%d],%v>%s", a.Map.Name, a.Idx, a.Mode, a.Dat.Name)
	}
	return fmt.Sprintf("<ID,%v>%s", a.Mode, a.Dat.Name)
}

// KernelFunc is the elemental computation applied at each iteration of a
// parallel loop. args[i] is the view of the i-th loop argument for this
// iteration: a slice of Dat.Dim values for dat arguments (aliasing the
// underlying storage) or the global buffer for global arguments.
type KernelFunc func(args [][]float64)

// Kernel is a named elemental computation with a declared cost, used by the
// performance model: Flops and MemBytes per iteration feed the g_l term of
// the paper's Equation (1).
type Kernel struct {
	Name string
	Fn   KernelFunc
	// Flops is the floating-point work of one iteration.
	Flops float64
	// MemBytes is the data moved to/from memory by one iteration.
	MemBytes float64
}

// Loop describes one op_par_loop: a kernel applied over every element of a
// set with the given access descriptors.
type Loop struct {
	Kernel *Kernel
	Set    *Set
	Args   []Arg
}

// NewLoop builds and validates a loop descriptor. It panics on descriptor
// errors (mismatched sets, out-of-range map slots), which are programming
// errors in the application, mirroring OP2's runtime checks.
func NewLoop(k *Kernel, set *Set, args ...Arg) Loop {
	l := Loop{Kernel: k, Set: set, Args: args}
	if err := l.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	return l
}

// Validate checks the loop descriptor for consistency.
func (l Loop) Validate() error {
	if l.Kernel == nil || l.Kernel.Fn == nil {
		return fmt.Errorf("loop over %v has no kernel", l.Set)
	}
	if l.Set == nil {
		return fmt.Errorf("loop %q has no iteration set", l.Kernel.Name)
	}
	for i, a := range l.Args {
		if !a.Mode.Valid() {
			return fmt.Errorf("loop %q arg %d: invalid access mode %d", l.Kernel.Name, i, int(a.Mode))
		}
		if a.IsGlobal() {
			if a.Gbl == nil {
				return fmt.Errorf("loop %q arg %d: global arg with nil buffer", l.Kernel.Name, i)
			}
			if a.Mode == Write || a.Mode == ReadWrite {
				return fmt.Errorf("loop %q arg %d: global arg mode must be Read, Inc, Min or Max, got %v",
					l.Kernel.Name, i, a.Mode)
			}
			continue
		}
		if a.Mode == Min || a.Mode == Max {
			return fmt.Errorf("loop %q arg %d: Min/Max modes are only valid for global args", l.Kernel.Name, i)
		}
		if a.Indirect() {
			if a.Map.From != l.Set {
				return fmt.Errorf("loop %q arg %d: map %s is from set %s, loop iterates %s",
					l.Kernel.Name, i, a.Map.Name, a.Map.From.Name, l.Set.Name)
			}
			if a.Map.To != a.Dat.Set {
				return fmt.Errorf("loop %q arg %d: map %s targets set %s but dat %s lives on %s",
					l.Kernel.Name, i, a.Map.Name, a.Map.To.Name, a.Dat.Name, a.Dat.Set.Name)
			}
			if a.Idx != VecAll && (a.Idx < 0 || a.Idx >= a.Map.Arity) {
				return fmt.Errorf("loop %q arg %d: map slot %d out of range [0,%d)",
					l.Kernel.Name, i, a.Idx, a.Map.Arity)
			}
		} else {
			if a.Idx != -1 {
				return fmt.Errorf("loop %q arg %d: direct arg must have Idx -1, got %d", l.Kernel.Name, i, a.Idx)
			}
			if a.Dat.Set != l.Set {
				return fmt.Errorf("loop %q arg %d: direct dat %s lives on %s, loop iterates %s",
					l.Kernel.Name, i, a.Dat.Name, a.Dat.Set.Name, l.Set.Name)
			}
		}
	}
	return nil
}

// NumViews returns the number of kernel views the loop's arguments expand
// to (vector arguments occupy one view per map slot).
func (l Loop) NumViews() int {
	n := 0
	for _, a := range l.Args {
		n += a.Views()
	}
	return n
}

// HasIndirection reports whether any argument is accessed through a map.
// Loops with indirection execute their import execute halo redundantly in
// distributed runs; fully direct loops iterate owned elements only.
func (l Loop) HasIndirection() bool {
	for _, a := range l.Args {
		if a.Indirect() {
			return true
		}
	}
	return false
}

// HasGlobalReduction reports whether the loop carries a global Inc/Min/Max
// argument. Such loops are global synchronisation points and therefore
// terminate loop-chains.
func (l Loop) HasGlobalReduction() bool {
	for _, a := range l.Args {
		if a.IsGlobal() && a.Mode != Read {
			return true
		}
	}
	return false
}

// Backend executes parallel loops. The sequential reference backend runs on
// the global mesh; distributed back-ends run on partitioned local views and
// insert halo exchanges. Chain demarcation lets communication-avoiding
// back-ends apply Algorithm 2 of the paper to the enclosed loops; back-ends
// without CA support execute chained loops one by one.
type Backend interface {
	// ParLoop executes one parallel loop (op_par_loop).
	ParLoop(l Loop)
	// ChainBegin opens a loop-chain with the given name. Chains must not
	// nest and must not contain global reductions.
	ChainBegin(name string)
	// ChainEnd closes the current loop-chain, triggering CA execution.
	ChainEnd()
	// Name identifies the back-end in reports.
	Name() string
}
