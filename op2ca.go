// Package op2ca reproduces "Communication-Avoiding Optimizations for
// Large-Scale Unstructured-Mesh Applications with OP2" (Ekanayake, Reguly,
// Luporini, Mudalige; ICPP 2023) as a Go library: an OP2-style
// unstructured-mesh DSL, a distributed-memory back-end with per-loop halo
// exchanges (Algorithm 1), a communication-avoiding loop-chain back-end
// with multi-layered halos and grouped messages (Algorithms 2-3), the
// paper's analytic performance model (Equations (1)-(4)), machine models
// of the ARCHER2 and Cirrus systems, the MG-CFD mini-app and a proxy of
// Rolls-Royce's Hydra with the six published loop-chains, and a benchmark
// harness regenerating every table and figure of the evaluation.
//
// This facade re-exports the user-facing API; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// A minimal program:
//
//	p := op2ca.NewProgram()
//	nodes := p.DeclSet(nnode, "nodes")
//	edges := p.DeclSet(nedge, "edges")
//	e2n := p.DeclMap(edges, nodes, 2, en, "e2n")
//	res := p.DeclDat(nodes, 2, nil, "res")
//	...
//	b, _ := op2ca.NewCluster(op2ca.ClusterConfig{Prog: p, Primary: nodes,
//	        Assign: op2ca.KWay(adj, 8), NParts: 8, Depth: 2, CA: true})
//	b.ChainBegin("chain")
//	b.ParLoop(op2ca.NewLoop(update, edges, op2ca.ArgDat(res, 0, e2n, op2ca.Inc), ...))
//	b.ParLoop(...)
//	b.ChainEnd()
package op2ca

import (
	"op2ca/internal/chaincfg"
	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/model"
	"op2ca/internal/partition"
)

// Core DSL types (op_set, op_map, op_dat, op_par_loop).
type (
	Program    = core.Program
	Set        = core.Set
	Map        = core.Map
	Dat        = core.Dat
	Arg        = core.Arg
	Kernel     = core.Kernel
	KernelFunc = core.KernelFunc
	Loop       = core.Loop
	Backend    = core.Backend
	AccessMode = core.AccessMode
)

// Access modes (OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN, OP_MAX).
const (
	Read      = core.Read
	Write     = core.Write
	ReadWrite = core.ReadWrite
	Inc       = core.Inc
	Min       = core.Min
	Max       = core.Max
)

// NewProgram starts an empty program (the op_decl_* context).
func NewProgram() *Program { return core.NewProgram() }

// NewLoop builds a validated op_par_loop descriptor.
func NewLoop(k *Kernel, set *Set, args ...Arg) Loop { return core.NewLoop(k, set, args...) }

// ArgDat is op_arg_dat with an indirection map.
func ArgDat(d *Dat, idx int, m *Map, mode AccessMode) Arg { return core.ArgDat(d, idx, m, mode) }

// ArgDatVec is op_arg_dat over every map slot at once (OP2's vector
// arguments): the kernel receives m.Arity consecutive views.
func ArgDatVec(d *Dat, m *Map, mode AccessMode) Arg { return core.ArgDatVec(d, m, mode) }

// ArgDatDirect is op_arg_dat with the identity map (OP_ID).
func ArgDatDirect(d *Dat, mode AccessMode) Arg { return core.ArgDatDirect(d, mode) }

// ArgGbl is op_arg_gbl (loop-constant data or a global reduction).
func ArgGbl(buf []float64, mode AccessMode) Arg { return core.ArgGbl(buf, mode) }

// NewSeq returns the sequential reference backend.
func NewSeq() *core.Seq { return core.NewSeq() }

// Distributed back-end (standard OP2 and communication-avoiding).
type (
	ClusterConfig  = cluster.Config
	ClusterBackend = cluster.Backend
	Stats          = cluster.Stats
)

// NewCluster builds the distributed back-end over a partitioned program.
func NewCluster(cfg ClusterConfig) (*ClusterBackend, error) { return cluster.New(cfg) }

// Partitioners.
type Assignment = partition.Assignment

// KWay is a graph-growing k-way partitioner (the ParMETIS k-way stand-in).
func KWay(adj [][]int32, nparts int) Assignment { return partition.KWay(adj, nparts) }

// RIB is recursive inertial bisection (Hydra's default partitioner).
func RIB(coords []float64, dim, nparts int) Assignment { return partition.RIB(coords, dim, nparts) }

// RCB is recursive coordinate bisection.
func RCB(coords []float64, dim, nparts int) Assignment { return partition.RCB(coords, dim, nparts) }

// BlockPartition assigns contiguous index ranges.
func BlockPartition(n, nparts int) Assignment { return partition.Block(n, nparts) }

// Machine models (the paper's Table 1).
type Machine = machine.Machine

// ARCHER2 models the HPE Cray EX CPU system (128 ranks/node).
func ARCHER2() *Machine { return machine.ARCHER2() }

// Cirrus models the SGI/HPE 8600 V100 GPU cluster (4 ranks/node).
func Cirrus() *Machine { return machine.Cirrus() }

// Laptop models a small shared-memory test machine.
func Laptop() *Machine { return machine.Laptop() }

// Synthetic meshes.
type (
	FV3D   = mesh.FV3D
	Quad2D = mesh.Quad2D
)

// Rotor generates a rotor-like periodic annular-sector FV mesh.
func Rotor(ni, nj, nk int) *FV3D { return mesh.Rotor(ni, nj, nk) }

// RotorForNodes generates a rotor mesh of approximately n nodes.
func RotorForNodes(n int) *FV3D { return mesh.RotorForNodes(n) }

// NewQuad2D generates the Figure 1 style quadrilateral mesh.
func NewQuad2D(nx, ny int) *Quad2D { return mesh.NewQuad2D(nx, ny) }

// Box generates a rectilinear FV mesh (all faces solid boundaries).
func Box(ni, nj, nk int) *FV3D { return mesh.Box(ni, nj, nk) }

// LoadMesh reads a mesh saved in the op2ca binary format.
func LoadMesh(path string) (*FV3D, error) { return mesh.LoadFile(path) }

// Chain configuration (the paper's Section 3.4 file).
type ChainConfig = chaincfg.Config

// ParseChainConfig parses a CA configuration file from a string.
func ParseChainConfig(s string) (*ChainConfig, error) { return chaincfg.ParseString(s) }

// Analytic model (Equations (1)-(4)).
type (
	ModelNet         = model.Net
	ModelLoopParams  = model.LoopParams
	ModelChainParams = model.ChainParams
)

// TOp2Chain is Equation (2); TCAChain is Equation (3).
func TOp2Chain(loops []ModelLoopParams, n ModelNet) float64 { return model.TOp2Chain(loops, n) }

// TCAChain models the communication-avoiding chain runtime.
func TCAChain(c ModelChainParams, n ModelNet) float64 { return model.TCAChain(c, n) }
