package cluster

import (
	"bytes"
	"testing"

	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// TestNoGroupedMsgsNeighbourCount: MaxNeighbours is the p term of
// Equation (3) — the largest number of *distinct* neighbours any rank sends
// to — so it must not depend on how many messages each neighbour receives.
// With NoGroupedMsgs a chain sends several per-dat messages to the same
// neighbour; counting raw messages inflates p and corrupts the model
// prediction the model-check report compares against.
func TestNoGroupedMsgsNeighbourCount(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	assign := partition.KWay(m.NodeAdjacency(), 5)
	run := func(noGroup bool) *ChainStats {
		a := newMiniApp(m)
		a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
		b, err := New(Config{
			Prog: a.p, Primary: a.nodes, Assign: assign, NParts: 5,
			Depth: 2, MaxChainLen: 4, CA: true, NoGroupedMsgs: noGroup,
			Machine: machine.ARCHER2(),
		})
		if err != nil {
			t.Fatal(err)
		}
		a.run(b, 2, true)
		cs := b.Stats().Chains["synth"]
		if cs == nil || cs.CAExecutions == 0 {
			t.Fatalf("noGroup=%v: chain did not run with CA: %+v", noGroup, cs)
		}
		return cs
	}
	grouped := run(false)
	ungrouped := run(true)
	if ungrouped.Msgs <= grouped.Msgs {
		t.Fatalf("ungrouped chain sent %d messages, grouped %d; disabling grouping should send more",
			ungrouped.Msgs, grouped.Msgs)
	}
	if ungrouped.MaxNeighbours != grouped.MaxNeighbours {
		t.Errorf("MaxNeighbours = %d with NoGroupedMsgs, %d grouped; the neighbour count must not depend on message grouping",
			ungrouped.MaxNeighbours, grouped.MaxNeighbours)
	}
}

// TestPlanCacheEquivalence: the inspect-once/execute-many plan cache is a
// pure execution optimisation — a backend re-executing cached chains must
// produce bit-identical clocks, dats, stats and traces to one that re-runs
// inspection and rebuilds its exchange schedules every execution, across
// the knob combinations that shape the exchange.
func TestPlanCacheEquivalence(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	assign := partition.KWay(m.NodeAdjacency(), 5)
	cases := []struct {
		name  string
		chain bool // explicit chain demarcation vs lazy auto-detection
		tweak func(*Config)
	}{
		{"ca-grouped", true, func(c *Config) {}},
		{"ca-nogroupedmsgs", true, func(c *Config) { c.NoGroupedMsgs = true }},
		{"ca-gpudirect", true, func(c *Config) { c.GPUDirect = true; c.Machine = machine.Cirrus() }},
		{"lazy", false, func(c *Config) { c.Lazy = true }},
	}
	type result struct {
		clocks []float64
		dats   map[string][]float64
		stats  string
		trace  []byte
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(noCache bool) (result, *Backend) {
				tr := obs.New()
				a := newMiniApp(m)
				a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
				// MaxChainLen 5 makes lazy capacity flushes carry exactly one
				// step's loops, so auto-detected chains repeat and hit the cache.
				cfg := Config{
					Prog: a.p, Primary: a.nodes, Assign: assign, NParts: 5,
					Depth: 3, MaxChainLen: 5, CA: true, Machine: machine.ARCHER2(),
					Tracer: tr, NoPlanCache: noCache,
				}
				tc.tweak(&cfg)
				b, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				a.run(b, 4, tc.chain)
				var buf bytes.Buffer
				res := result{
					clocks: append([]float64(nil), b.Clocks()...),
					dats:   map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)},
					stats:  b.Stats().String(),
				}
				if err := tr.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
				res.trace = buf.Bytes()
				return res, b
			}
			cached, cb := run(false)
			uncached, ub := run(true)

			if hits, _, _ := cb.PlanCacheStats(); hits == 0 {
				t.Error("cached backend recorded no plan-cache hits over repeated executions")
			}
			if hits, misses, _ := ub.PlanCacheStats(); hits != 0 || misses != 0 {
				t.Errorf("NoPlanCache backend touched the cache: hits=%d misses=%d", hits, misses)
			}
			for i := range cached.clocks {
				if cached.clocks[i] != uncached.clocks[i] {
					t.Fatalf("rank %d clock differs: cached %v, uncached %v", i, cached.clocks[i], uncached.clocks[i])
				}
			}
			compareExact(t, tc.name, cached.dats, uncached.dats)
			if cached.stats != uncached.stats {
				t.Errorf("stats differ:\ncached:\n%s\nuncached:\n%s", cached.stats, uncached.stats)
			}
			if !bytes.Equal(cached.trace, uncached.trace) {
				t.Error("chrome trace output differs between cached and uncached runs")
			}
		})
	}
}

// TestPlanCacheReusesPlans: repeated executions of the same chain hit the
// cache; a chain with a different loop structure misses and gets its own
// entry.
func TestPlanCacheReusesPlans(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 2, MaxChainLen: 4, CA: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 5, true)
	hits, misses, _ := b.PlanCacheStats()
	if misses != 1 {
		t.Errorf("5 executions of one chain: misses = %d, want 1", misses)
	}
	if hits != 4 {
		t.Errorf("5 executions of one chain: hits = %d, want 4", hits)
	}
}
