package mesh

// Hierarchy is a multigrid hierarchy of finite-volume meshes, finest first,
// with fine-to-coarse node maps between consecutive levels, as used by
// MG-CFD's inter-grid transfer loops.
type Hierarchy struct {
	// Levels holds the meshes, Levels[0] finest.
	Levels []*FV3D
	// FineToCoarse[l] maps each node of Levels[l] to its nearest node of
	// Levels[l+1] (arity-1 map); len(FineToCoarse) == len(Levels)-1.
	FineToCoarse [][]int32
}

// NewHierarchy builds a hierarchy with nLevels meshes by repeatedly halving
// the structured dimensions of the finest rotor mesh. Coarsening stops early
// if a dimension would drop below the generator minimum, so the result may
// have fewer than nLevels levels.
func NewHierarchy(finest *FV3D, nLevels int, rotor bool) *Hierarchy {
	h := &Hierarchy{Levels: []*FV3D{finest}}
	for len(h.Levels) < nLevels {
		f := h.Levels[len(h.Levels)-1]
		ci, cj, ck := (f.NI+1)/2, (f.NJ+1)/2, (f.NK+1)/2
		if ci < 2 || cj < 2 || ck < 3 {
			break
		}
		var c *FV3D
		if rotor {
			c = Rotor(ci, cj, ck)
		} else {
			c = Box(ci, cj, ck)
		}
		h.FineToCoarse = append(h.FineToCoarse, fineToCoarseMap(f, c))
		h.Levels = append(h.Levels, c)
	}
	return h
}

// fineToCoarseMap maps each fine node (i,j,k) to coarse node (i/2,j/2,k/2),
// clamped to the coarse dimensions.
func fineToCoarseMap(f, c *FV3D) []int32 {
	m := make([]int32, f.NNodes)
	for i := 0; i < f.NI; i++ {
		ci := minInt(i/2, c.NI-1)
		for j := 0; j < f.NJ; j++ {
			cj := minInt(j/2, c.NJ-1)
			for k := 0; k < f.NK; k++ {
				ck := minInt(k/2, c.NK-1)
				m[f.nodeIndex(i, j, k)] = c.nodeIndex(ci, cj, ck)
			}
		}
	}
	return m
}
