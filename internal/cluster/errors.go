package cluster

import "fmt"

// ExchangeErrorKind classifies halo-exchange integrity violations.
type ExchangeErrorKind int

const (
	// ErrTruncated: a grouped message carried fewer values than the
	// receiver's import layout requires.
	ErrTruncated ExchangeErrorKind = iota
	// ErrTrailing: a grouped message carried values beyond the receiver's
	// import layout — sender and receiver disagree about the halo.
	ErrTrailing
	// ErrMissing: an expected neighbour never sent its grouped message.
	ErrMissing
	// ErrSizeMismatch: a per-dat message's payload does not match the
	// import range it addresses.
	ErrSizeMismatch
	// ErrUnexpected: a per-dat message arrived from a rank the receiver
	// does not import that dat from.
	ErrUnexpected
)

func (k ExchangeErrorKind) String() string {
	switch k {
	case ErrTruncated:
		return "truncated"
	case ErrTrailing:
		return "trailing"
	case ErrMissing:
		return "missing"
	case ErrSizeMismatch:
		return "size mismatch"
	case ErrUnexpected:
		return "unexpected"
	}
	return "unknown"
}

// HangError reports a no-progress watchdog trip: the run's maximum virtual
// clock advanced past the configured deadline without an exchange
// completing (see Backend.SetWatchdog). The exchange layer panics with a
// typed *HangError so a supervisor can catch it, restore from the newest
// valid snapshot and retry with a relaxed deadline.
type HangError struct {
	// Exchange is the fault-sequence number of the exchange that detected
	// the stall.
	Exchange uint64
	// Last is the virtual time of the last completed exchange, Clock the
	// maximum virtual clock at detection, Deadline the configured limit.
	Last, Clock, Deadline float64
}

func (e *HangError) Error() string {
	return fmt.Sprintf("cluster: watchdog: no exchange completed for %.3gs of virtual time (last progress %.6g, clock %.6g, deadline %.3g) at exchange %d",
		e.Clock-e.Last, e.Last, e.Clock, e.Deadline, e.Exchange)
}

// ExchangeError describes one halo-exchange integrity violation: which
// receiving rank detected it, which sender the message came from, which dat
// it addressed (empty for grouped messages spanning all dats), and the
// expected versus observed value counts where applicable. Exchange-layer
// invariants hold by construction, so a violation is a runtime bug; the
// unpack paths panic with a typed *ExchangeError that callers and tests can
// inspect field by field instead of substring-matching a message.
type ExchangeError struct {
	Kind ExchangeErrorKind
	// Rank is the receiving rank that detected the violation; From is the
	// sending rank of the offending (or missing) message.
	Rank int
	From int32
	// Dat names the addressed dat; empty for grouped messages.
	Dat string
	// Want and Got are the expected and observed value counts for
	// truncation/size violations (zero otherwise).
	Want, Got int
}

// Error renders the violation; the kind keywords match the historical
// string panics so existing log scrapes keep working.
func (e *ExchangeError) Error() string {
	switch e.Kind {
	case ErrTruncated:
		return fmt.Sprintf("cluster: rank %d: grouped message from rank %d truncated (%d of %d values)",
			e.Rank, e.From, e.Got, e.Want)
	case ErrTrailing:
		return fmt.Sprintf("cluster: rank %d: grouped message from rank %d has %d trailing values",
			e.Rank, e.From, e.Got)
	case ErrMissing:
		return fmt.Sprintf("cluster: rank %d: missing grouped message from rank %d", e.Rank, e.From)
	case ErrSizeMismatch:
		return fmt.Sprintf("cluster: rank %d: message for dat %s from rank %d has %d values, want %d",
			e.Rank, e.Dat, e.From, e.Got, e.Want)
	case ErrUnexpected:
		return fmt.Sprintf("cluster: rank %d: unexpected message for dat %s from rank %d",
			e.Rank, e.Dat, e.From)
	}
	return fmt.Sprintf("cluster: rank %d: exchange error from rank %d", e.Rank, e.From)
}
