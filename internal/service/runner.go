package service

import (
	"errors"
	"io"
	"os"
	"path/filepath"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/cmdutil"
	"op2ca/internal/core"
	"op2ca/internal/hydra"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/supervise"
)

// attemptOutcome is what one successful attempt leaves behind.
type attemptOutcome struct {
	checksum  string
	residual  float64
	maxClock  float64
	exchanges uint64
	stats     *cluster.Stats
}

// runAttempt executes one attempt of the workload: construct the app and
// backend (fresh on a cold start, from st otherwise), adopt it into sup
// (arming crash clauses and the watchdog), hand the live backend to
// attach so the owner can cancel or preempt it, then drive the main loop
// with ring snapshots at the configured cadence. Failures surface as the
// executor's typed panics; use catchRun around this call.
func (w *workload) runAttempt(st *checkpoint.State, sup *supervise.Supervisor,
	ring *checkpoint.Ring, attach func(*cluster.Backend)) (attemptOutcome, error) {
	var out attemptOutcome
	m := mesh.RotorForNodes(w.spec.MeshNodes)
	ca := w.spec.Backend == "ca"

	// The cluster config embeds the app's freshly constructed Dats, so
	// both must be rebuilt per attempt — a restored attempt overwrites
	// the initial state with the snapshot's.
	var (
		ccfg  cluster.Config
		body  func(b core.Backend, cb *cluster.Backend, start int) error
		resid func(b core.Backend) float64
	)
	switch w.spec.App {
	case "mgcfd":
		h := mesh.NewHierarchy(m, w.spec.Levels, true)
		app := mgcfd.New(h)
		syn := mgcfd.NewSynthetic(app)
		maxChain := 2
		if w.spec.NChains > 1 {
			maxChain = 2 * w.spec.NChains
		}
		ccfg = cluster.Config{
			Prog: app.Prog, Primary: app.Primary, NParts: w.spec.Ranks,
			Depth: w.depth, MaxChainLen: maxChain, CA: ca,
			Machine: w.mach, Parallel: false, Faults: w.plan,
			Overlap: w.spec.Overlap,
		}
		body = func(b core.Backend, cb *cluster.Backend, start int) error {
			if start == 0 {
				app.Init(b)
			}
			for it := start; it < w.spec.Iters; it++ {
				if w.spec.NChains > 0 {
					syn.Run(b, w.spec.NChains, ca)
				}
				app.Cycle(b)
				if err := w.tick(cb, ring, it); err != nil {
					return err
				}
			}
			return nil
		}
		resid = app.Residual
	case "hydra":
		app := hydra.New(m)
		ccfg = cluster.Config{
			Prog: app.Prog, Primary: app.Nodes, NParts: w.spec.Ranks,
			Depth: w.depth, MaxChainLen: 6, CA: ca, Chains: w.chains,
			Machine: w.mach, Parallel: false, Faults: w.plan,
			Overlap: w.spec.Overlap,
		}
		body = func(b core.Backend, cb *cluster.Backend, start int) error {
			if start == 0 {
				app.RunSetup(b, ca)
			}
			for it := start; it < w.spec.Iters; it++ {
				app.RunIteration(b, ca)
				if err := w.tick(cb, ring, it); err != nil {
					return err
				}
			}
			return nil
		}
	}

	assign, err := cmdutil.Assignment(m, w.spec.Partitioner, w.spec.Ranks)
	if err != nil {
		return out, err
	}
	ccfg.Assign = assign

	var cb *cluster.Backend
	start := 0
	if st == nil {
		cb, err = cluster.New(ccfg)
	} else {
		cb, err = cluster.RestoreState(st, ccfg)
	}
	if err != nil {
		return out, err
	}
	sup.Adopt(cb)
	if st != nil {
		if start, err = cmdutil.ParseIterNote(st.Note); err != nil {
			return out, err
		}
	}
	if attach != nil {
		attach(cb)
	}
	if err := body(cb, cb, start); err != nil {
		return out, err
	}
	if resid != nil {
		out.residual = resid(cb)
	}
	out.checksum = cb.ChecksumDats()
	out.maxClock = cb.MaxClock()
	out.exchanges = cb.ExchangeSeq()
	out.stats = cb.Stats()
	return out, nil
}

// tick writes a ring generation after iteration it when the cadence says
// so, noted with the completed-iteration count a resume parses back.
func (w *workload) tick(cb *cluster.Backend, ring *checkpoint.Ring, it int) error {
	if ring == nil || (it+1)%w.spec.CheckpointEvery != 0 {
		return nil
	}
	note := cmdutil.IterNote(it + 1)
	_, err := ring.Write(func(wr io.Writer) error {
		return cb.Checkpoint(wr, note)
	})
	return err
}

// catchRun runs one attempt body, converting the executor's typed panics
// — supervisable failures (crash faults, exchange giveups, watchdog
// trips) and cooperative cancellation — into returned errors. Genuine
// bugs keep panicking.
func catchRun(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok {
			var ce *cluster.CancelledError
			if supervise.Supervisable(e) || errors.As(e, &ce) {
				err = e
				return
			}
		}
		panic(r)
	}()
	return f()
}

// RunDirect validates and executes spec inline, exactly as a worker
// would but without queueing, placement or preemption: one supervisor,
// one ring, attempts until success or a final error. It is the service's
// CLI-parity oracle — a job served through the full HTTP path must
// produce a Result whose checksum, residual and max_clock_seconds are
// bitwise identical to RunDirect of the same spec.
//
// dir holds the checkpoint ring; "" uses a temporary directory removed
// on return.
func RunDirect(spec JobSpec, dir string) (*Result, error) {
	w, err := spec.Validate()
	if err != nil {
		return nil, &ValidationError{Err: err}
	}
	if dir == "" {
		if dir, err = os.MkdirTemp("", "op2ca-direct-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	ring, err := checkpoint.NewRing(checkpoint.Spec{
		Every: w.spec.CheckpointEvery, Path: filepath.Join(dir, "direct.ck"), Keep: defaultKeep,
	})
	if err != nil {
		return nil, err
	}
	sup := supervise.NewSupervisor(w.sv, w.plan, ring, nil)
	attempts := 0
	for {
		st, err := sup.Recover()
		if err != nil {
			return nil, err
		}
		attempts++
		var out attemptOutcome
		err = catchRun(func() error {
			var e error
			out, e = w.runAttempt(st, sup, ring, nil)
			return e
		})
		if err == nil {
			sup.Finish(out.stats)
			return newResult("direct", w, out, sup, attempts, 0, nil), nil
		}
		if ferr := sup.OnFailure(err); ferr != nil {
			return nil, ferr
		}
	}
}
