// Package obs is the observability layer of the simulated runtime: typed
// spans recorded on per-rank virtual-time tracks by the cluster back-end,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and Prometheus-style text metrics.
//
// The span taxonomy follows the per-phase breakdown the paper's evaluation
// rests on (pack, send, wait, unpack, core compute, redundant halo compute,
// reduce), plus a separate staging track for host<->device PCIe transfers
// on GPU machines (Section 3.3).
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op with
// no allocations, so the execution path is instrumented unconditionally and
// pays nearly nothing unless a trace was requested. Emission only ever
// reads the virtual-time arithmetic — it never feeds back into it — so a
// traced run and an untraced run produce bit-identical simulation results.
package obs

import (
	"sort"
	"sync"
)

// Kind classifies a span: one phase of the loop-execution timeline of the
// paper's Algorithms 1 (per-loop exchanges) and 2 (CA chains).
type Kind uint8

const (
	// Compute is core iterations: owned work overlappable with
	// communication (Algorithm 2 lines 8-12).
	Compute Kind = iota
	// Pack is gathering export elements into send buffers.
	Pack
	// Send is one message occupying the sender's NIC (netsim serialises
	// messages per sender, so send spans on one rank abut).
	Send
	// Wait is a receiver blocked on one inbound message beyond its core
	// computation (zero-length when the message arrived early enough to
	// be fully hidden).
	Wait
	// Unpack is scattering a received grouped message into the per-dat
	// arrays (the c term of Equation (3); per-dat messages land directly
	// and have no unpack span).
	Unpack
	// Redundant is halo-region iterations after the wait: boundary owned
	// elements plus the redundantly computed halo shells CA trades for
	// messages (Algorithm 2 lines 14-18).
	Redundant
	// Reduce is a rank participating in a global allreduce.
	Reduce
	// Stage is one host<->device PCIe staging transfer (GPU machines
	// only; lives on TrackStage).
	Stage
	// Retry is one retransmission interval on the sender's track: from
	// the failed attempt's (non-)arrival, through the detection timeout
	// and exponential backoff, to the retransmission post (fault
	// injection only).
	Retry
	// Giveup marks a message that exhausted its retransmission budget;
	// the runtime degrades the surrounding exchange instead of dying.
	Giveup
	// Tune marks an autotuner decision point: the span name carries the
	// chain and the chosen policy. Zero-length — the tuner runs in the
	// inspector, off the virtual-time critical path.
	Tune
	// Checkpoint marks a state snapshot being written; the span name
	// carries the checkpoint note. Zero-length — checkpointing is host
	// I/O, off the virtual-time critical path.
	Checkpoint
	// Restore marks a backend resuming from a snapshot.
	Restore
	// Restart marks a supervised in-process restart: the span name carries
	// the failure that triggered it and the recovery source (the snapshot
	// generation restored, or "cold"). Zero-length at the restored clock.
	Restart
	// Watchdog marks a no-progress watchdog trip: the run's maximum virtual
	// clock advanced past the deadline without an exchange completing. The
	// span covers [last progress, trip time] on the supervising track.
	Watchdog
	// Idle is never emitted by the runtime: the critical-path analyzer
	// (package analysis) synthesises Idle segments for stretches of the
	// longest path not covered by any span or edge — a rank waiting on
	// causality the trace does not capture explicitly (e.g. a degradation
	// restart barrier).
	Idle

	numKinds
)

var kindNames = [numKinds]string{
	"compute", "pack", "send", "wait", "unpack", "redundant", "reduce", "stage",
	"retry", "giveup", "tune", "checkpoint", "restore", "restart", "watchdog", "idle",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds lists every span kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Tracks within one rank's timeline.
const (
	// TrackExec is the rank's main execution track.
	TrackExec int8 = 0
	// TrackStage is the rank's PCIe staging engine (GPU machines).
	TrackStage int8 = 1
)

// Span is one interval on a rank's virtual timeline.
type Span struct {
	// Epoch groups the spans of one backend instance (one simulated
	// run); each epoch starts its virtual clock at zero.
	Epoch int32
	Rank  int32
	Track int8
	Kind  Kind
	// Name identifies the work: the kernel name for compute/redundant
	// spans, and the exchange owner (the chain name for CA chains, the
	// kernel name for per-loop exchanges) for pack/send/wait/unpack.
	Name string
	// Begin and End are virtual seconds since the epoch's clock zero.
	Begin, End float64
	// Bytes is the payload of communication spans (0 otherwise).
	Bytes int64
}

// Dur returns the span's duration in virtual seconds.
func (s Span) Dur() float64 { return s.End - s.Begin }

// EdgeKind classifies a causal edge between spans. Edges turn the flat
// per-rank span timelines into a DAG: intra-rank program order is implicit
// (spans on one rank are causally ordered by time), edges record the
// cross-rank and same-rank dependencies that are not.
type EdgeKind uint8

const (
	// EdgeMsg is one point-to-point message: transmission start on the
	// sender (Begin) to arrival at the receiver (End). Post records when
	// the sender had the message ready (pack and staging done) and Ready
	// when the receiver started waiting on it, so analysis can split wait
	// time into late-sender, NIC-serialisation and transit components.
	EdgeMsg EdgeKind = iota
	// EdgeRetry is one retransmission interval on the sender (From == To):
	// from the failed attempt's (non-)arrival through detection timeout and
	// exponential backoff to the retransmit. Retry edges lie inside their
	// message edge's [Begin, End] window and let analysis attribute the
	// retried part of a transfer separately.
	EdgeRetry
	// EdgeReduce is a global-reduction dependency: from the last rank to
	// enter the allreduce (Begin = its entry time) to each other rank's
	// exit (End). The straggler binds everyone, so the critical path runs
	// through its edge.
	EdgeReduce

	numEdgeKinds
)

var edgeKindNames = [numEdgeKinds]string{"msg", "retry", "reduce"}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return "unknown"
}

// EdgeKinds lists every edge kind in declaration order.
func EdgeKinds() []EdgeKind {
	out := make([]EdgeKind, numEdgeKinds)
	for i := range out {
		out[i] = EdgeKind(i)
	}
	return out
}

// Edge is one causal dependency in an epoch's span DAG.
type Edge struct {
	Epoch int32
	Kind  EdgeKind
	// From and To are the sender and receiver ranks (equal for EdgeRetry).
	From, To int32
	// Name is the exchange owner: the chain name for CA chains, the kernel
	// name for per-loop exchanges and reductions.
	Name string
	// Post is when the dependency could first have started moving: the
	// sender's ready-to-send time for EdgeMsg (pack and staging done), the
	// straggler's entry time for EdgeReduce.
	Post float64
	// Begin and End delimit the edge's own occupancy: NIC transmission
	// start to arrival for EdgeMsg, failed-attempt arrival to retransmit
	// for EdgeRetry, straggler entry to reduction exit for EdgeReduce.
	Begin, End float64
	// Ready is when the receiver started depending on this edge (its wait
	// start for EdgeMsg, its own reduction entry for EdgeReduce).
	Ready float64
	// Bytes is the payload carried over the edge.
	Bytes int64
}

// Dur returns the edge's occupancy duration in virtual seconds.
func (e Edge) Dur() float64 { return e.End - e.Begin }

// Tracer records spans. The zero value is ready to use; a nil *Tracer is a
// disabled tracer whose methods all no-op.
type Tracer struct {
	mu     sync.Mutex
	labels []string
	spans  []Span
	edges  []Edge
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether spans are recorded; callers may use it to skip
// preparing emission inputs entirely.
func (t *Tracer) Enabled() bool { return t != nil }

// NewEpoch opens a new span group — one simulated backend run — and makes
// it current, returning its index. The cluster back-end calls it once per
// construction, so a tracer shared across runs (e.g. a benchmark sweep)
// keeps them apart; the returned index addresses the run's spans and edges
// in later analysis. A nil tracer returns 0.
func (t *Tracer) NewEpoch(label string) int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.labels = append(t.labels, label)
	return int32(len(t.labels)) - 1
}

// Emit records one span in the current epoch. On a nil tracer it returns
// immediately without allocating. Spans may be emitted in any order;
// exporters sort into a canonical, deterministic order.
func (t *Tracer) Emit(rank int32, track int8, kind Kind, name string, begin, end float64, bytes int64) {
	if t == nil {
		return
	}
	if end < begin {
		end = begin
	}
	t.mu.Lock()
	epoch := int32(len(t.labels)) - 1
	if epoch < 0 {
		epoch = 0
	}
	t.spans = append(t.spans, Span{
		Epoch: epoch, Rank: rank, Track: track, Kind: kind,
		Name: name, Begin: begin, End: end, Bytes: bytes,
	})
	t.mu.Unlock()
}

// EmitEdge records one causal edge in the current epoch (e.Epoch is
// overwritten). On a nil tracer it returns immediately. Like Emit, edge
// emission only observes the virtual-time arithmetic — it never feeds back
// into it.
func (t *Tracer) EmitEdge(e Edge) {
	if t == nil {
		return
	}
	if e.End < e.Begin {
		e.End = e.Begin
	}
	t.mu.Lock()
	epoch := int32(len(t.labels)) - 1
	if epoch < 0 {
		epoch = 0
	}
	e.Epoch = epoch
	t.edges = append(t.edges, e)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// NumEdges returns the number of recorded edges.
func (t *Tracer) NumEdges() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.edges)
}

// Spans returns a copy of the recorded spans in canonical order: by epoch,
// rank, track, begin, end, kind, name. Because span contents are fully
// determined by the deterministic simulation, identical runs yield
// identical slices regardless of host-thread scheduling.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End > b.End // longer first: containment order for nesting
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return out
}

// Edges returns a copy of the recorded edges in canonical order: by epoch,
// receiver, end, begin, sender, kind, name. Determinism mirrors Spans.
func (t *Tracer) Edges() []Edge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Edge, len(t.edges))
	copy(out, t.edges)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return out
}

// EpochLabel returns the label of epoch i, or a generated placeholder when
// spans were emitted before any NewEpoch call.
func (t *Tracer) EpochLabel(i int32) string {
	if t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if int(i) < len(t.labels) {
			return t.labels[i]
		}
	}
	return "run"
}
