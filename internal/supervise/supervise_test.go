package supervise_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/faults"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
	"op2ca/internal/supervise"
)

const nparts = 3

// newHier builds the small deterministic MG-CFD workload the supervision
// tests run: two multigrid levels over a coarse rotor mesh.
func newHier() (*mesh.Hierarchy, partition.Assignment) {
	m := mesh.Rotor(6, 5, 4)
	return mesh.NewHierarchy(m, 2, true), partition.KWay(m.NodeAdjacency(), nparts)
}

func mkCfg(app *mgcfd.App, assign partition.Assignment, plan *faults.Plan, tracer *obs.Tracer) cluster.Config {
	return cluster.Config{
		Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: nparts,
		Depth: 2, MaxChainLen: 2, CA: true, Faults: plan, Tracer: tracer,
	}
}

// faultSeqOf snapshots b and reads back the exchange sequence counter — the
// coordinate system crash clauses are expressed in.
func faultSeqOf(t *testing.T, b *cluster.Backend) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Checkpoint(&buf, "probe"); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return st.FaultSeq
}

// TestSupervisedMultiCrashBitwiseOracle is the tentpole oracle: a supervised
// run through two injected crashes AND a corrupted newest checkpoint
// generation completes with dat checksums, virtual clocks and fault counters
// bitwise identical to the uninterrupted run.
func TestSupervisedMultiCrashBitwiseOracle(t *testing.T) {
	const iters = 6
	h, assign := newHier()

	// Uninterrupted reference, probing the exchange counter to place the
	// crash clauses: the first fires during iteration 2, the second during
	// iteration 4 of the resumed schedule.
	refApp := mgcfd.New(h)
	ref, err := cluster.New(mkCfg(refApp, assign, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	refApp.Init(ref)
	e0 := faultSeqOf(t, ref)
	for it := 0; it < iters; it++ {
		refApp.Cycle(ref)
		if it == 0 {
			e1 := faultSeqOf(t, ref)
			if e1 <= e0 {
				t.Fatalf("iteration produced no exchanges (seq %d -> %d)", e0, e1)
			}
		}
	}
	e1 := faultSeqOf(t, ref)
	perIter := (e1 - e0) / iters
	wantSum := ref.ChecksumDats()
	wantClock := ref.MaxClock()
	wantFaults := ref.Stats().Faults

	c1 := e0 + perIter + 2   // mid iteration 2
	c2 := e0 + 3*perIter + 2 // mid iteration 4
	plan := faults.MustParse(fmt.Sprintf("crash=rank0@%d,crash=rank1@%d,seed=2", c1, c2))

	dir := t.TempDir()
	ring, err := checkpoint.NewRing(checkpoint.Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.New()
	var final *cluster.Backend
	corrupted := false
	r := &supervise.Runner{
		Spec:   supervise.Spec{Enabled: true, Budget: 4, Backoff: 0.5},
		Plan:   plan,
		Ring:   ring,
		Tracer: tracer,
		Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
			app := mgcfd.New(h)
			cfg := mkCfg(app, assign, plan, tracer)
			var b *cluster.Backend
			start := 0
			if st == nil {
				var err error
				b, err = cluster.New(cfg)
				if err != nil {
					return err
				}
				sup.Adopt(b)
				app.Init(b)
			} else {
				var err error
				b, err = cluster.RestoreState(st, cfg)
				if err != nil {
					return err
				}
				sup.Adopt(b)
				if _, err := fmt.Sscanf(st.Note, "iter=%d", &start); err != nil {
					return fmt.Errorf("note %q: %w", st.Note, err)
				}
			}
			final = b
			for it := start; it < iters; it++ {
				app.Cycle(b)
				if _, err := ring.Write(func(w io.Writer) error {
					return b.Checkpoint(w, fmt.Sprintf("iter=%d", it+1))
				}); err != nil {
					return err
				}
			}
			return nil
		},
		BeforeRecover: func(failure error, restarts int) {
			// Chaos: after the first crash, truncate the newest generation
			// so recovery must quarantine it and fall back.
			if corrupted {
				return
			}
			corrupted = true
			gens, err := ring.Generations()
			if err != nil || len(gens) == 0 {
				t.Fatalf("no generation to corrupt after first crash: %v (%d gens)", err, len(gens))
			}
			info, err := os.Stat(gens[0].Path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(gens[0].Path, info.Size()-9); err != nil {
				t.Fatal(err)
			}
		},
	}
	sup, err := r.Run()
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if !corrupted {
		t.Fatal("first crash clause never fired")
	}

	if got := final.ChecksumDats(); got != wantSum {
		t.Errorf("checksums diverge: supervised %s, uninterrupted %s", got, wantSum)
	}
	if got := final.MaxClock(); got != wantClock {
		t.Errorf("virtual clock diverges: supervised %v, uninterrupted %v", got, wantClock)
	}
	if got := final.Stats().Faults; got != wantFaults {
		t.Errorf("FaultStats diverge: supervised %+v, uninterrupted %+v", got, wantFaults)
	}

	sup.Finish(final.Stats())
	sv := final.Stats().Supervise
	if !sv.Enabled || sv.Attempts != 3 || sv.Restarts != 2 || sv.CrashRestarts != 2 {
		t.Errorf("SuperviseStats = %+v, want 3 attempts, 2 crash restarts", sv)
	}
	if sv.Quarantined != 1 || sv.GenerationsTried != 2 || sv.ColdStarts != 2 {
		t.Errorf("ring recovery counters = %+v, want 1 quarantined, 2 tried, 2 cold starts", sv)
	}
	// Backoff ledger: 0.5*2^0 + 0.5*2^1 — charged off the clocks.
	if sv.BackoffVirtual != 1.5 {
		t.Errorf("BackoffVirtual = %g, want 1.5", sv.BackoffVirtual)
	}
	restartSpans := 0
	for _, sp := range tracer.Spans() {
		if sp.Kind == obs.Restart {
			restartSpans++
		}
	}
	if restartSpans != 2 {
		t.Errorf("%d restart spans in trace, want 2", restartSpans)
	}
	if s := final.Stats().String(); !bytes.Contains([]byte(s), []byte("supervise attempts 3")) {
		t.Errorf("Stats.String missing supervise line:\n%s", s)
	}
}

// TestBudgetExhaustionFailsLoudly: budget=0 means the first failure is
// final, reported as a typed *BudgetError wrapping the crash.
func TestBudgetExhaustionFailsLoudly(t *testing.T) {
	h, assign := newHier()
	plan := faults.MustParse("crash=rank0@4,seed=1")
	r := &supervise.Runner{
		Spec: supervise.Spec{Enabled: true, Budget: 0, Backoff: 1},
		Plan: plan,
		Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
			app := mgcfd.New(h)
			b, err := cluster.New(mkCfg(app, assign, plan, nil))
			if err != nil {
				return err
			}
			sup.Adopt(b)
			app.Init(b)
			for it := 0; it < 3; it++ {
				app.Cycle(b)
			}
			return nil
		},
	}
	_, err := r.Run()
	var be *supervise.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0", be.Restarts)
	}
	var ce *faults.CrashError
	if !errors.As(err, &ce) || ce.Exchange != 4 {
		t.Errorf("BudgetError should unwrap to the crash: %v", err)
	}
}

// TestWatchdogEscalation: an absurdly tight no-progress deadline trips the
// watchdog; deterministic re-execution under a doubled deadline eventually
// passes, and the completed run is bitwise identical to an unsupervised one.
func TestWatchdogEscalation(t *testing.T) {
	const iters = 2
	h, assign := newHier()

	refApp := mgcfd.New(h)
	ref, err := cluster.New(mkCfg(refApp, assign, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	refApp.Init(ref)
	for it := 0; it < iters; it++ {
		refApp.Cycle(ref)
	}
	wantSum := ref.ChecksumDats()
	wantClock := ref.MaxClock()

	var final *cluster.Backend
	r := &supervise.Runner{
		Spec: supervise.Spec{Enabled: true, Budget: 60, Backoff: 0, Watchdog: 1e-9},
		Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
			app := mgcfd.New(h)
			b, err := cluster.New(mkCfg(app, assign, nil, nil))
			if err != nil {
				return err
			}
			sup.Adopt(b)
			app.Init(b)
			for it := 0; it < iters; it++ {
				app.Cycle(b)
			}
			final = b
			return nil
		},
	}
	sup, err := r.Run()
	if err != nil {
		t.Fatalf("watchdog escalation never completed: %v", err)
	}
	st := sup.Stats()
	if st.WatchdogTrips < 1 {
		t.Fatalf("watchdog never tripped: %+v", st)
	}
	if st.WatchdogTrips != st.Restarts {
		t.Errorf("trips %d != restarts %d; no other failure class should fire", st.WatchdogTrips, st.Restarts)
	}
	if got := final.ChecksumDats(); got != wantSum {
		t.Errorf("checksums diverge: supervised %s, unsupervised %s", got, wantSum)
	}
	if got := final.MaxClock(); got != wantClock {
		t.Errorf("virtual clock diverges: supervised %v, unsupervised %v", got, wantClock)
	}
	if sup.Watchdog() <= 1e-9 {
		t.Errorf("deadline never escalated: %g", sup.Watchdog())
	}
}

// TestHangErrorIsTyped pins the watchdog's failure shape: a typed
// *cluster.HangError panic that Catch converts and Supervisable accepts.
func TestHangErrorIsTyped(t *testing.T) {
	h, assign := newHier()
	app := mgcfd.New(h)
	b, err := cluster.New(mkCfg(app, assign, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	b.SetWatchdog(1e-12)
	caught := supervise.Catch(func() error {
		app.Init(b)
		app.Cycle(b)
		return nil
	})
	var he *cluster.HangError
	if !errors.As(caught, &he) {
		t.Fatalf("caught %v, want *cluster.HangError", caught)
	}
	if he.Deadline != 1e-12 || he.Clock <= he.Last {
		t.Errorf("HangError fields: %+v", he)
	}
	if !supervise.Supervisable(he) {
		t.Error("HangError must be supervisable")
	}
}

// TestCancelledErrorNotSupervisable: cooperative cancellation is deliberate,
// not a failure — a supervisor must never burn restart budget resuming a
// run its owner asked to stop. The job service catches *CancelledError
// itself to implement preemption.
func TestCancelledErrorNotSupervisable(t *testing.T) {
	if supervise.Supervisable(&cluster.CancelledError{Exchange: 7}) {
		t.Error("CancelledError must not be supervisable")
	}
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want supervise.Spec
	}{
		{"", supervise.Spec{}},
		{"on", supervise.Spec{Enabled: true, Budget: 8, Backoff: 1}},
		{"budget=3", supervise.Spec{Enabled: true, Budget: 3, Backoff: 1}},
		{"on,budget=0,backoff=2.5,watchdog=40", supervise.Spec{Enabled: true, Budget: 0, Backoff: 2.5, Watchdog: 40}},
	} {
		got, err := supervise.ParseSpec(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{
		"off", "budget=-1", "backoff=x", "backoff=-1", "watchdog=0", "watchdog=-3", "bogus=1",
		"budget=1,budget=2",      // duplicate key
		"on,backoff=2,backoff=2", // duplicate, even with equal values
		"watchdog=5,watchdog=6",  // duplicate watchdog
	} {
		if _, err := supervise.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	// String round-trips through ParseSpec.
	for _, s := range []supervise.Spec{
		{Enabled: true, Budget: 8, Backoff: 1},
		{Enabled: true, Budget: 2, Backoff: 0.5, Watchdog: 100},
	} {
		back, err := supervise.ParseSpec(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %+v -> %q -> %+v, %v", s, s.String(), back, err)
		}
	}
}

// TestCatchPropagatesForeignPanics: only the typed failure panics are
// converted; anything else is a bug and must keep crashing the process.
func TestCatchPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	supervise.Catch(func() error { panic("a genuine bug") })
}

// TestCatchCrash covers the shared helper behind the demo apps' exit-3
// path.
func TestCatchCrash(t *testing.T) {
	if c := supervise.CatchCrash(func() {}); c != nil {
		t.Errorf("clean body returned crash %+v", c)
	}
	want := &faults.CrashError{Rank: 2, Exchange: 9}
	if c := supervise.CatchCrash(func() { panic(want) }); c != want {
		t.Errorf("crash = %+v, want %+v", c, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	supervise.CatchCrash(func() { panic("boom") })
}
