package halo

import (
	"strings"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

func TestProfile(t *testing.T) {
	m := mesh.Rotor(12, 9, 8)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	assign := partition.KWay(m.NodeAdjacency(), 6)
	owners, err := DeriveOwnership(p, nodes, assign)
	if err != nil {
		t.Fatal(err)
	}
	layouts := Build(p, owners, 6, 3, 4)
	profiles := Profile(p, layouts)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profiles))
	}
	var nodesProf, edgesProf SetProfile
	for _, pr := range profiles {
		switch pr.Set.Name {
		case "nodes":
			nodesProf = pr
		case "edges":
			edgesProf = pr
		}
	}
	// Owned averages must sum to the global sizes.
	if got := nodesProf.AvgOwned * 6; int(got+0.5) != m.NNodes {
		t.Errorf("node owned average %g x6 != %d", nodesProf.AvgOwned, m.NNodes)
	}
	// Core is a subset of owned.
	if nodesProf.AvgCore > nodesProf.AvgOwned {
		t.Error("core exceeds owned")
	}
	// Nodes have no outgoing maps: all node halo is non-execute.
	for d := 0; d < 3; d++ {
		if nodesProf.AvgExec[d] != 0 {
			t.Errorf("nodes exec shell %d = %g, want 0", d+1, nodesProf.AvgExec[d])
		}
		if nodesProf.MaxExec[d] != 0 {
			t.Errorf("nodes max exec shell %d nonzero", d+1)
		}
	}
	// Edges form the execute halo; shell 1 must be non-empty and shell 2
	// larger (the growth the paper's redundant compute pays for).
	if edgesProf.AvgExec[0] <= 0 {
		t.Fatal("edge exec shell 1 empty")
	}
	if r := edgesProf.GrowthRatio(2); r <= 1 {
		t.Errorf("edge shell growth ratio %g, want > 1", r)
	}
	if edgesProf.GrowthRatio(1) != 0 || edgesProf.GrowthRatio(99) != 0 {
		t.Error("out-of-range growth ratios should be 0")
	}
	if s := edgesProf.String(); !strings.Contains(s, "edges") || !strings.Contains(s, "d2") {
		t.Errorf("String() = %q", s)
	}
	if Profile(p, nil) != nil {
		t.Error("empty layouts should profile to nil")
	}
}
