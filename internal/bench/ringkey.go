package bench

import (
	"fmt"
	"hash/fnv"

	"op2ca/internal/checkpoint"
)

// RingSpec returns spec with its path keyed by this configuration's
// workload fingerprint. op2ca-bench resumes by default from a leftover
// ring at the -checkpoint path; without the key, a ring written by an
// unrelated earlier invocation (same path, same experiment labels,
// different mesh sizes or iteration count) would be adopted silently and
// the resumed run would complete with the wrong workload's results. With
// the key, two invocations share a ring path exactly when their results
// are interchangeable.
//
// The fingerprint deliberately excludes:
//   - crash clauses (and any fault plan reduced to injecting nothing once
//     they are stripped): a supervised rerun adds or extends the crash
//     schedule of the invocation it is recovering, and must adopt that
//     invocation's ring — mirroring the cluster-level checkpoint
//     fingerprint rule;
//   - Parallel: host-side threading never changes results or virtual
//     clocks (canonical-order execution is the repo-wide oracle);
//   - checkpoint cadence and retention (Every/Keep): they shape when
//     snapshots are taken, not what the workload computes.
func (c Config) RingSpec(spec checkpoint.Spec) checkpoint.Spec {
	fault := ""
	if c.Faults != nil {
		stripped := *c.Faults
		stripped.Crashes = nil
		if stripped.Enabled() {
			fault = stripped.String()
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "n8=%d;n24=%d;rs=%g;it=%d;at=%t;faults=%s",
		c.Nodes8M, c.Nodes24M, c.RankScale, c.Iters, c.AutoTune, fault)
	spec.Path = fmt.Sprintf("%s.%016x", spec.Path, h.Sum64())
	return spec
}
