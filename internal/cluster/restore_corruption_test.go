package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestRestoreCorruptionSweep: Restore must reject any damaged snapshot with
// a typed error and never panic — the property the supervisor's quarantine
// path rests on. The sweep covers truncation at every interesting boundary,
// a bit-flip at every single byte offset (every content byte is covered by
// the trailing checksum, and flipping the checksum itself breaks the match),
// and the valid-header/bad-tail shape a torn write leaves behind.
func TestRestoreCorruptionSweep(t *testing.T) {
	const nloops = 2
	m := mesh.Rotor(6, 5, 4)
	assign := partition.Block(m.NNodes, 2)
	w := newCkptWorkload(m, 5, nloops)
	cfg := Config{Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: 2,
		Depth: nloops + 1, MaxChainLen: nloops, CA: true}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.run(b, 0, 2, false)
	var snap bytes.Buffer
	if err := b.Checkpoint(&snap, "sweep"); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	// restore attempts a full cluster.Restore of data into a fresh
	// process-equivalent configuration, converting any panic into a
	// distinguishable error so the sweep reports it as a failure rather
	// than dying.
	restore := func(data []byte) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("PANIC: %v", r)
			}
		}()
		fresh := newCkptWorkload(m, 5, nloops)
		cfg2 := cfg
		cfg2.Prog = fresh.app.p
		cfg2.Primary = fresh.app.nodes
		_, _, err = Restore(bytes.NewReader(data), cfg2)
		return err
	}

	if err := restore(good); err != nil {
		t.Fatalf("pristine snapshot refused: %v", err)
	}

	check := func(label string, data []byte) {
		t.Helper()
		err := restore(data)
		if err == nil {
			t.Errorf("%s: corrupt snapshot accepted", label)
			return
		}
		if strings.HasPrefix(err.Error(), "PANIC:") {
			t.Errorf("%s: restore panicked: %v", label, err)
		}
	}

	// Truncations: empty, mid-magic, mid-version, mid-section-length,
	// mid-payload, and the torn-tail shapes (checksum partially or wholly
	// missing past a valid header).
	n := len(good)
	for _, cut := range []int{0, 1, 7, 8, 11, 12, 20, n / 2, n - 9, n - 8, n - 1} {
		if cut < 0 || cut >= n {
			continue
		}
		check(fmt.Sprintf("truncate@%d", cut), good[:cut])
	}

	// Bit-flip sweep over every byte: header, every section, dat payloads
	// and the trailing checksum itself.
	mut := make([]byte, n)
	for i := 0; i < n; i++ {
		copy(mut, good)
		mut[i] ^= 0x40
		check(fmt.Sprintf("bitflip@%d", i), mut)
	}
}
