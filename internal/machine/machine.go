// Package machine encodes the hardware models of the paper's Table 1 — the
// ARCHER2 HPE Cray EX CPU system and the Cirrus V100 GPU cluster — plus a
// generic laptop profile, as parameter sets for the virtual-time simulation:
// per-rank compute rates (the g_l term of Equation (1)), network latency L
// and bandwidth B, message pack/unpack rate (the c term of Equation (3))
// and, for GPU machines, kernel-launch overhead and PCIe staging costs (the
// Λ augmentation of Section 3.3).
//
// Rates are effective (achievable on irregular unstructured-mesh code), not
// peak; the reproduction targets the paper's performance *shape*, not its
// absolute times.
package machine

import (
	"op2ca/internal/core"
	"op2ca/internal/gpusim"
)

// Machine is one cluster node type; a simulation rank is one MPI process
// (one core-group on CPU machines, one GPU on GPU machines).
type Machine struct {
	Name string
	// RanksPerNode is the number of MPI processes per node.
	RanksPerNode int
	// FlopRate and MemBandwidth are effective per-rank host rates.
	FlopRate     float64
	MemBandwidth float64
	// Latency is the network latency L per message; Bandwidth is the
	// per-rank share of node injection bandwidth B.
	Latency   float64
	Bandwidth float64
	// PackRate is the message pack/unpack memory rate (the c term).
	PackRate float64
	// EagerThreshold is the MPI eager/rendezvous protocol switch in
	// bytes; larger messages pay the Handshake surcharge. Zero disables
	// the distinction.
	EagerThreshold int64
	// Handshake is the rendezvous surcharge per message above the eager
	// threshold. Zero means 2*Latency (the classic request/ack round
	// trip); interconnects with hardware-offloaded rendezvous set a
	// smaller explicit value. HandshakeTime resolves the default.
	Handshake float64
	// GPU is non-nil on accelerator machines.
	GPU *gpusim.Device
}

// HandshakeTime returns the resolved rendezvous surcharge: the explicit
// Handshake when set, else the 2*Latency default. Both the network
// simulator and the analytic model price rendezvous messages with this
// value, so a preset with Handshake != 2L cannot drift between them.
func (m *Machine) HandshakeTime() float64 {
	if m.Handshake == 0 {
		return 2 * m.Latency
	}
	return m.Handshake
}

// IterTime returns g_l: the time of one iteration of kernel k on this
// machine's compute device, using a roofline of the kernel's declared flop
// and byte counts.
func (m *Machine) IterTime(k *core.Kernel) float64 {
	fr, bw := m.FlopRate, m.MemBandwidth
	if m.GPU != nil {
		fr, bw = m.GPU.FlopRate, m.GPU.MemBandwidth
	}
	t := k.Flops / fr
	if mt := k.MemBytes / bw; mt > t {
		t = mt
	}
	return t
}

// LaunchOverhead returns the per-kernel-launch cost (zero on CPU machines).
func (m *Machine) LaunchOverhead() float64 {
	if m.GPU == nil {
		return 0
	}
	return m.GPU.LaunchOverhead
}

// StageTime returns the host<->device staging cost of moving n bytes over
// PCIe (zero on CPU machines).
func (m *Machine) StageTime(n int64) float64 {
	if m.GPU == nil {
		return 0
	}
	return m.GPU.StageTime(n)
}

// ARCHER2 models one HPE Cray EX node: 2x AMD EPYC 7742 (128 cores), 128
// MPI ranks per node, HPE Slingshot 2x100 Gb/s bidirectional per node.
func ARCHER2() *Machine {
	const ranks = 128
	return &Machine{
		Name:         "ARCHER2",
		RanksPerNode: ranks,
		FlopRate:     2.8e9, // effective DP flop/s per core on indirect code
		// Effective per-core memory bandwidth including cache reuse on
		// partition-sized working sets (the DRAM share alone would be
		// ~3 GB/s; unstructured kernels hit L2/L3 heavily).
		MemBandwidth: 8e9,
		// Effective per-message latency at scale: raw Slingshot latency
		// is ~2us, but with 128 ranks per node injecting halo messages
		// the observed per-message cost (MPI software, congestion,
		// rendezvous) sits near 8us - the regime in which the paper's
		// measured communication dominates its measured computation.
		Latency: 8.0e-6,
		// Effective per-rank message bandwidth under full-node halo
		// exchange pressure (2x100 Gb/s injection shared by 128 ranks,
		// partially relieved by intra-node neighbours).
		Bandwidth:      5e8,
		PackRate:       4e9,    // single-core memcpy rate
		EagerThreshold: 65536,  // Cray MPICH default eager limit
		Handshake:      1.6e-5, // software rendezvous: request/ack round trip (2L)
	}
}

// Cirrus models one SGI/HPE 8600 GPU node: 4x NVIDIA V100-SXM2-16GB, one
// MPI rank per GPU, FDR InfiniBand at 54.5 Gb/s per node, halos staged over
// PCIe (no GPUDirect, per the paper's Section 3.3).
func Cirrus() *Machine {
	const ranks = 4
	return &Machine{
		Name:           "Cirrus",
		RanksPerNode:   ranks,
		FlopRate:       3.0e9,
		MemBandwidth:   100e9,
		Latency:        4.0e-6,        // FDR InfiniBand + MPT per-message overhead
		Bandwidth:      6.8e9 / ranks, // FDR 54.5 Gb/s per node shared by 4 ranks
		PackRate:       8e9,
		EagerThreshold: 32768,  // SGI MPT eager limit
		Handshake:      8.0e-6, // software rendezvous: request/ack round trip (2L)
		GPU:            gpusim.V100(),
	}
}

// Laptop models a small shared-memory test machine with a fast loopback
// "network"; useful for functional runs where virtual time is irrelevant.
func Laptop() *Machine {
	return &Machine{
		Name:         "laptop",
		RanksPerNode: 8,
		FlopRate:     4e9,
		MemBandwidth: 8e9,
		Latency:      0.5e-6,
		Bandwidth:    10e9,
		PackRate:     8e9,
	}
}
