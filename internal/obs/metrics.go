package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Label is one Prometheus label pair.
type Label struct{ Key, Value string }

// MetricsWriter emits Prometheus text exposition format (version 0.0.4).
// It tracks which metric families have been declared so # HELP / # TYPE
// headers are written exactly once even when several producers (loop
// counters, chain counters, span histograms, multiple benchmark runs)
// share one writer.
type MetricsWriter struct {
	w        *bufio.Writer
	declared map[string]bool
}

// NewMetricsWriter wraps w for metrics emission.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: bufio.NewWriter(w), declared: map[string]bool{}}
}

// Declare writes the # HELP / # TYPE header of a metric family the first
// time it is seen; later calls are no-ops.
func (m *MetricsWriter) Declare(name, typ, help string) {
	if m.declared[name] {
		return
	}
	m.declared[name] = true
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample line: name{labels} value.
func (m *MetricsWriter) Sample(name string, labels []Label, v float64) {
	m.w.WriteString(name)
	if len(labels) > 0 {
		m.w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				m.w.WriteByte(',')
			}
			m.w.WriteString(l.Key)
			m.w.WriteByte('=')
			m.w.WriteString(strconv.Quote(l.Value))
		}
		m.w.WriteByte('}')
	}
	m.w.WriteByte(' ')
	m.w.WriteString(formatValue(v))
	m.w.WriteByte('\n')
}

// Flush flushes buffered output and reports any accumulated write error.
func (m *MetricsWriter) Flush() error { return m.w.Flush() }

// formatValue renders integers without an exponent and everything else in
// shortest-round-trip form, deterministically.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SpanBuckets are the histogram bucket upper bounds (virtual seconds) of
// WriteSpanMetrics: decades from 1 microsecond to 1 second.
var SpanBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// WriteSpanMetrics renders the recorded spans as per-kind duration
// histograms (op2ca_span_seconds) and byte counters
// (op2ca_span_bytes_total), with extra labels appended to every sample.
// A nil tracer writes nothing.
func (t *Tracer) WriteSpanMetrics(m *MetricsWriter, extra ...Label) {
	if t == nil {
		return
	}
	type agg struct {
		buckets []int64
		sum     float64
		count   int64
		bytes   int64
	}
	aggs := make([]agg, numKinds)
	for i := range aggs {
		aggs[i].buckets = make([]int64, len(SpanBuckets))
	}
	for _, s := range t.Spans() {
		a := &aggs[s.Kind]
		d := s.Dur()
		a.sum += d
		a.count++
		a.bytes += s.Bytes
		for i, le := range SpanBuckets {
			if d <= le {
				a.buckets[i]++
			}
		}
	}
	labels := func(kind Kind, more ...Label) []Label {
		out := append([]Label{{"kind", kind.String()}}, more...)
		return append(out, extra...)
	}
	m.Declare("op2ca_span_seconds", "histogram",
		"Virtual-time span durations by kind (pack/send/wait/compute/...).")
	for _, k := range Kinds() {
		a := aggs[k]
		if a.count == 0 {
			continue
		}
		for i, le := range SpanBuckets {
			m.Sample("op2ca_span_seconds_bucket",
				labels(k, Label{"le", strconv.FormatFloat(le, 'g', -1, 64)}),
				float64(a.buckets[i]))
		}
		m.Sample("op2ca_span_seconds_bucket", labels(k, Label{"le", "+Inf"}), float64(a.count))
		m.Sample("op2ca_span_seconds_sum", labels(k), a.sum)
		m.Sample("op2ca_span_seconds_count", labels(k), float64(a.count))
	}
	m.Declare("op2ca_span_bytes_total", "counter",
		"Total payload bytes of communication spans by kind.")
	for _, k := range Kinds() {
		if a := aggs[k]; a.count > 0 && a.bytes > 0 {
			m.Sample("op2ca_span_bytes_total", labels(k), float64(a.bytes))
		}
	}
}
