package cluster

import (
	"op2ca/internal/netsim"
	"op2ca/internal/obs"
)

// trace.go holds the tracer hook points of the execution path. All span
// emission happens after (or beside) the virtual-time arithmetic, computed
// from the same inputs that produced it, and is gated on tracer.Enabled()
// — tracing observes the clocks and can never perturb them.

// emitPackSpans records, per sending rank, the pack phase (gathering
// export elements into send buffers at PackRate) and, on staged GPU
// machines, the device-to-host PCIe transfer on the rank's staging track.
// It must run before the rank clocks are advanced past the exchange.
func (b *Backend) emitPackSpans(name string, sendBytes []int64) {
	m := b.cfg.Machine
	for r := range sendBytes {
		if sendBytes[r] == 0 {
			continue
		}
		packEnd := b.clock[r] + float64(sendBytes[r])/m.PackRate
		b.tracer.Emit(int32(r), obs.TrackExec, obs.Pack, name, b.clock[r], packEnd, sendBytes[r])
		if m.GPU != nil && !b.cfg.GPUDirect {
			m.GPU.TraceStage(b.tracer, int32(r), name+" d2h", packEnd, sendBytes[r])
		}
	}
}

// sendStartTimes replays netsim's per-sender NIC serialisation to recover
// each message's transmission start: the first message of a rank starts at
// its post time, each further message starts when the previous one left
// (its final attempt's arrival, under retransmission).
func sendStartTimes(post []float64, msgs []netsim.Message, arrivals []float64) []float64 {
	starts := make([]float64, len(msgs))
	busy := make(map[int32]float64, len(post))
	for i, msg := range msgs {
		start, ok := busy[msg.From]
		if !ok {
			start = post[msg.From]
		}
		starts[i] = start
		busy[msg.From] = arrivals[i]
	}
	return starts
}

// emitSendSpans records one Send span per message on the sender's track,
// from its NIC transmission start (see sendStartTimes) to its arrival.
func (b *Backend) emitSendSpans(name string, starts []float64, msgs []netsim.Message, arrivals []float64) {
	for i, msg := range msgs {
		b.tracer.Emit(msg.From, obs.TrackExec, obs.Send, name, starts[i], arrivals[i], msg.Bytes)
	}
}

// emitWaitSpans records one Wait span per inbound message on the
// receiver's track: from the moment the rank finished its core work
// (ready) until the message's arrival. A message fully hidden by core
// computation yields a zero-length span — still one span per neighbour
// message, so traces expose the paper's Figure 5 (one exchange per loop)
// versus Figure 8 (one grouped exchange per chain) contrast structurally.
// Each message also contributes an EdgeMsg causal edge carrying the times
// the critical-path and wait-attribution analyses need: the sender's post
// (pack and staging done), the NIC transmission start, the arrival and the
// receiver's wait start.
func (b *Backend) emitWaitSpans(name string, r int, ready float64, inbound []int,
	msgs []netsim.Message, arrivals, post, starts []float64) {
	for _, i := range inbound {
		end := arrivals[i]
		if end < ready {
			end = ready
		}
		b.tracer.Emit(int32(r), obs.TrackExec, obs.Wait, name, ready, end, msgs[i].Bytes)
		b.tracer.EmitEdge(obs.Edge{
			Kind: obs.EdgeMsg, Name: name, From: msgs[i].From, To: int32(r),
			Post: post[msgs[i].From], Begin: starts[i], End: arrivals[i],
			Ready: ready, Bytes: msgs[i].Bytes,
		})
	}
}

// inboundIndex groups message indices by receiving rank, for wait-span
// emission. Only built when tracing is enabled.
func inboundIndex(nparts int, msgs []netsim.Message) [][]int {
	inbound := make([][]int, nparts)
	for i, msg := range msgs {
		inbound[msg.To] = append(inbound[msg.To], i)
	}
	return inbound
}
