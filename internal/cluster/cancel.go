package cluster

import "fmt"

// CancelledError reports cooperative cancellation of a run: Cancel was
// called (from any goroutine) and the executor observed the flag at the
// next exchange boundary. It is raised as a typed panic from deliver, in
// the same place crash faults and watchdog trips fire, so a run never
// stops mid-exchange: every checkpoint generation written before the
// cancellation point is complete and restorable, and resuming from the
// newest one on a fresh Backend completes bitwise identical to an
// uninterrupted run.
//
// Cancellation is deliberate, not a failure: supervise.Supervisable
// deliberately does NOT classify *CancelledError as retryable, so a
// supervisor never burns restart budget resuming a run its owner asked to
// stop. Callers that want resume-after-cancel (job preemption) catch the
// error themselves and requeue.
type CancelledError struct {
	// Exchange is the fault-sequence number of the exchange boundary at
	// which the cancellation was observed.
	Exchange uint64
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("cluster: run cancelled at exchange %d", e.Exchange)
}

// Cancel requests cooperative cancellation of the run executing on this
// Backend. Safe to call from any goroutine at any time; the executing
// goroutine observes the flag at its next exchange boundary and panics
// with a typed *CancelledError. The flag is sticky for the lifetime of
// the Backend instance: a cancelled Backend stays cancelled (subsequent
// executions die at their first exchange), and resumption happens on a
// fresh Backend restored from a checkpoint.
func (b *Backend) Cancel() { b.cancelled.Store(true) }

// CancelRequested reports whether Cancel has been called on this Backend.
func (b *Backend) CancelRequested() bool { return b.cancelled.Load() }

// ExchangeSeq returns the current exchange sequence number — the count of
// exchange boundaries this run has passed. It keys deterministic fault
// decisions (crash=rankN@E clauses fire when the sequence hits E), so
// callers can probe a reference run's final sequence to place crash or
// cancellation points mid-run.
func (b *Backend) ExchangeSeq() uint64 { return b.faultSeq }
