// Package service turns the simulated-cluster executor into a
// multi-tenant job service: callers submit mesh/chain/config job specs,
// an admission controller queues them (shedding load once the queue or a
// tenant's share of it is full), and a pool of workers — each standing in
// for a cluster node that can host one simulated MPI run at a time —
// executes them least-loaded-first.
//
// Every job runs under its own supervisor and checkpoint generation ring
// (internal/supervise, internal/checkpoint), which makes jobs both
// self-healing and preemptible: an injected crash fault consumes
// supervised-restart budget and the job resumes from its newest valid
// generation on a different worker, while a preemption cancels the
// running attempt cooperatively (cluster.Cancel) and requeues the job —
// without charging the restart budget — for a replacement worker to
// resume. Canonical-order execution makes the served results bitwise
// identical to a direct run of the same spec (RunDirect), which is the
// package's test oracle.
//
// cmd/op2ca-server exposes a Service over HTTP; see NewHandler for the
// route table.
package service
