package mesh

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestMeshRoundtrip(t *testing.T) {
	for name, m := range map[string]*FV3D{
		"rotor": Rotor(7, 5, 4),
		"box":   Box(4, 3, 5),
	} {
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadFV3D(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.NNodes != m.NNodes || got.NEdges != m.NEdges ||
			got.NBedges != m.NBedges || got.NPedges != m.NPedges || got.NCbnd != m.NCbnd {
			t.Fatalf("%s: counts differ: %+v vs %+v", name, got, m)
		}
		for i := range m.EdgeNodes {
			if got.EdgeNodes[i] != m.EdgeNodes[i] {
				t.Fatalf("%s: EdgeNodes[%d] differs", name, i)
			}
		}
		for i := range m.Coords {
			if got.Coords[i] != m.Coords[i] {
				t.Fatalf("%s: Coords[%d] differs", name, i)
			}
		}
		for i := range m.EdgeWeights {
			if got.EdgeWeights[i] != m.EdgeWeights[i] {
				t.Fatalf("%s: EdgeWeights[%d] differs", name, i)
			}
		}
		for i := range m.BedgeGroups {
			if got.BedgeGroups[i] != m.BedgeGroups[i] {
				t.Fatalf("%s: BedgeGroups[%d] differs", name, i)
			}
		}
	}
}

func TestMeshFileRoundtrip(t *testing.T) {
	m := Rotor(6, 5, 4)
	path := filepath.Join(t.TempDir(), "rotor.op2ca")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNodes != m.NNodes || got.NEdges != m.NEdges {
		t.Fatal("file roundtrip lost elements")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.op2ca")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestMeshReadErrors(t *testing.T) {
	m := Rotor(4, 3, 3)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("NOTAMESH"), good[8:]...),
		"truncated":  good[:len(good)/2],
		"bad header": append([]byte(meshMagic), bytes.Repeat([]byte{0xff}, 36)...),
	}
	for name, data := range cases {
		if _, err := ReadFV3D(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Corrupt a connectivity entry to an out-of-range node.
	corrupt := append([]byte(nil), good...)
	// EdgeNodes starts after magic(8) + header(9*4) + length prefix(4).
	off := 8 + 36 + 4
	corrupt[off] = 0xff
	corrupt[off+1] = 0xff
	corrupt[off+2] = 0xff
	corrupt[off+3] = 0x7f
	if _, err := ReadFV3D(bytes.NewReader(corrupt)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("corrupt connectivity: got %v, want out-of-range error", err)
	}
}
