package ca

import (
	"strings"
	"testing"

	"op2ca/internal/core"
)

// chainFixture declares a small hydra-shaped program for inspector tests.
type chainFixture struct {
	p                        *core.Program
	nodes, edges, pedges     *core.Set
	bnd, cbnd                *core.Set
	e2n, p2n, b2n, cb2n      *core.Map
	qo, vol, qp, ql, jac, fl *core.Dat
	k                        *core.Kernel
}

func newFixture() *chainFixture {
	f := &chainFixture{p: core.NewProgram()}
	f.nodes = f.p.DeclSet(6, "nodes")
	f.edges = f.p.DeclSet(5, "edges")
	f.pedges = f.p.DeclSet(2, "pedges")
	f.bnd = f.p.DeclSet(2, "bnd")
	f.cbnd = f.p.DeclSet(2, "cbnd")
	f.e2n = f.p.DeclMap(f.edges, f.nodes, 2, []int32{0, 1, 1, 2, 2, 3, 3, 4, 4, 5}, "e2n")
	f.p2n = f.p.DeclMap(f.pedges, f.nodes, 2, []int32{0, 5, 1, 4}, "p2n")
	f.b2n = f.p.DeclMap(f.bnd, f.nodes, 1, []int32{0, 5}, "b2n")
	f.cb2n = f.p.DeclMap(f.cbnd, f.nodes, 1, []int32{2, 3}, "cb2n")
	f.qo = f.p.DeclDat(f.nodes, 1, nil, "qo")
	f.vol = f.p.DeclDat(f.nodes, 1, nil, "vol")
	f.qp = f.p.DeclDat(f.nodes, 1, nil, "qp")
	f.ql = f.p.DeclDat(f.nodes, 1, nil, "ql")
	f.jac = f.p.DeclDat(f.nodes, 1, nil, "jac")
	f.fl = f.p.DeclDat(f.nodes, 1, nil, "flux")
	f.k = &core.Kernel{Name: "k", Fn: func(a [][]float64) {}}
	return f
}

func (f *chainFixture) loop(set *core.Set, args ...core.Arg) core.Loop {
	return core.NewLoop(f.k, set, args...)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCalcHaloLayersSynthetic checks the MG-CFD synthetic chain of Section
// 4.1.1: repeating (update INC res; edge_flux READ res) pairs yields halo
// extension 2 for every update and 1 for every edge_flux, i.e. r = 2
// regardless of the loop count — exactly the paper's benchmark setting.
func TestCalcHaloLayersSynthetic(t *testing.T) {
	f := newFixture()
	res, pres := f.qo, f.vol
	update := f.loop(f.edges,
		core.ArgDat(res, 0, f.e2n, core.Inc), core.ArgDat(res, 1, f.e2n, core.Inc),
		core.ArgDat(pres, 0, f.e2n, core.Read), core.ArgDat(pres, 1, f.e2n, core.Read))
	flux := f.loop(f.edges,
		core.ArgDat(f.fl, 0, f.e2n, core.Inc), core.ArgDat(f.fl, 1, f.e2n, core.Inc),
		core.ArgDat(res, 0, f.e2n, core.Read), core.ArgDat(res, 1, f.e2n, core.Read))

	for _, nchains := range []int{1, 4, 16} {
		var loops []core.Loop
		want := []int{}
		for i := 0; i < nchains; i++ {
			loops = append(loops, update, flux)
			want = append(want, 2, 1)
		}
		got := CalcHaloLayers(loops)
		if !intsEqual(got, want) {
			t.Errorf("nchains=%d: HE = %v, want %v", nchains, got, want)
		}
	}
}

// TestCalcHaloLayersGradl reproduces Table 3's gradl chain: edgecon
// (INC qp, INC ql over edges) then period (RW qp, RW ql over pedges) gives
// extensions 2 and 1.
func TestCalcHaloLayersGradl(t *testing.T) {
	f := newFixture()
	edgecon := f.loop(f.edges,
		core.ArgDat(f.qp, 0, f.e2n, core.Inc), core.ArgDat(f.qp, 1, f.e2n, core.Inc),
		core.ArgDat(f.ql, 0, f.e2n, core.Inc), core.ArgDat(f.ql, 1, f.e2n, core.Inc))
	period := f.loop(f.pedges,
		core.ArgDat(f.qp, 0, f.p2n, core.ReadWrite), core.ArgDat(f.qp, 1, f.p2n, core.ReadWrite),
		core.ArgDat(f.ql, 0, f.p2n, core.ReadWrite), core.ArgDat(f.ql, 1, f.p2n, core.ReadWrite))
	got := CalcHaloLayers([]core.Loop{edgecon, period})
	if !intsEqual(got, []int{2, 1}) {
		t.Errorf("gradl HE = %v, want [2 1]", got)
	}
}

// TestCalcHaloLayersJacob reproduces Table 4's jacob chain (all extensions
// 1): jac_period (RW jac), jac_centreline (no halo dats), jac_corrections
// (INC jac).
func TestCalcHaloLayersJacob(t *testing.T) {
	f := newFixture()
	jacPeriod := f.loop(f.pedges,
		core.ArgDat(f.jac, 0, f.p2n, core.ReadWrite), core.ArgDat(f.jac, 1, f.p2n, core.ReadWrite))
	jacCentre := f.loop(f.cbnd, core.ArgDat(f.vol, 0, f.cb2n, core.Write))
	jacCorr := f.loop(f.bnd, core.ArgDat(f.jac, 0, f.b2n, core.Inc))
	got := CalcHaloLayers([]core.Loop{jacPeriod, jacCentre, jacCorr})
	if !intsEqual(got, []int{1, 1, 1}) {
		t.Errorf("jacob HE = %v, want [1 1 1]", got)
	}
}

// TestCalcHaloLayersVflux reproduces Table 4's vflux/iflux shape: a direct
// init loop over nodes followed by an edge loop indirectly reading several
// dats — single halo level everywhere.
func TestCalcHaloLayersVflux(t *testing.T) {
	f := newFixture()
	initres := f.loop(f.nodes, core.ArgDatDirect(f.fl, core.Write))
	vfluxEdge := f.loop(f.edges,
		core.ArgDat(f.fl, 0, f.e2n, core.Inc), core.ArgDat(f.fl, 1, f.e2n, core.Inc),
		core.ArgDat(f.qp, 0, f.e2n, core.Read), core.ArgDat(f.qp, 1, f.e2n, core.Read),
		core.ArgDat(f.ql, 0, f.e2n, core.Read), core.ArgDat(f.ql, 1, f.e2n, core.Read))
	got := CalcHaloLayers([]core.Loop{initres, vfluxEdge})
	if !intsEqual(got, []int{1, 1}) {
		t.Errorf("vflux HE = %v, want [1 1]", got)
	}
}

// TestCalcHaloLayersPeriod reproduces Table 3's period chain (6 loops):
// negflag (RW vol), limxp (RW qo, READ vol), periodicity (RW qo), limxp,
// periodicity, negflag — per-loop extensions [2 2 1 2 1 1].
func TestCalcHaloLayersPeriod(t *testing.T) {
	f := newFixture()
	negflag := f.loop(f.pedges,
		core.ArgDat(f.vol, 0, f.p2n, core.ReadWrite), core.ArgDat(f.vol, 1, f.p2n, core.ReadWrite))
	limxp := f.loop(f.edges,
		core.ArgDat(f.qo, 0, f.e2n, core.ReadWrite), core.ArgDat(f.qo, 1, f.e2n, core.ReadWrite),
		core.ArgDat(f.vol, 0, f.e2n, core.Read), core.ArgDat(f.vol, 1, f.e2n, core.Read))
	periodicity := f.loop(f.pedges,
		core.ArgDat(f.qo, 0, f.p2n, core.ReadWrite), core.ArgDat(f.qo, 1, f.p2n, core.ReadWrite))
	loops := []core.Loop{negflag, limxp, periodicity, limxp, periodicity, negflag}
	got := CalcHaloLayers(loops)
	if !intsEqual(got, []int{2, 2, 1, 2, 1, 1}) {
		t.Errorf("period HE = %v, want [2 2 1 2 1 1]", got)
	}
}

func TestSafeHaloLayersSynthetic(t *testing.T) {
	f := newFixture()
	res := f.qo
	update := f.loop(f.edges,
		core.ArgDat(res, 0, f.e2n, core.Inc),
		core.ArgDat(f.vol, 0, f.e2n, core.Read))
	flux := f.loop(f.edges,
		core.ArgDat(f.fl, 0, f.e2n, core.Inc),
		core.ArgDat(res, 0, f.e2n, core.Read))
	got := SafeHaloLayers([]core.Loop{update, flux})
	if !intsEqual(got, []int{2, 1}) {
		t.Errorf("safe HE = %v, want [2 1]", got)
	}
	// A 3-deep dependency chain: w -> x -> y.
	l0 := f.loop(f.edges, core.ArgDat(f.qp, 0, f.e2n, core.Inc), core.ArgDat(f.vol, 0, f.e2n, core.Read))
	l1 := f.loop(f.edges, core.ArgDat(f.ql, 0, f.e2n, core.Inc), core.ArgDat(f.qp, 0, f.e2n, core.Read))
	l2 := f.loop(f.edges, core.ArgDat(f.fl, 0, f.e2n, core.Inc), core.ArgDat(f.ql, 0, f.e2n, core.Read))
	got = SafeHaloLayers([]core.Loop{l0, l1, l2})
	if !intsEqual(got, []int{3, 2, 1}) {
		t.Errorf("safe HE for 3-chain = %v, want [3 2 1]", got)
	}
}

func TestSafeAtLeastAsDeepOnTables(t *testing.T) {
	f := newFixture()
	chains := [][]core.Loop{
		{
			f.loop(f.edges, core.ArgDat(f.qp, 0, f.e2n, core.Inc)),
			f.loop(f.pedges, core.ArgDat(f.qp, 0, f.p2n, core.ReadWrite)),
		},
		{
			f.loop(f.nodes, core.ArgDatDirect(f.fl, core.Write)),
			f.loop(f.edges, core.ArgDat(f.fl, 0, f.e2n, core.Inc), core.ArgDat(f.qp, 0, f.e2n, core.Read)),
		},
	}
	for i, loops := range chains {
		a3 := CalcHaloLayers(loops)
		safe := SafeHaloLayers(loops)
		for l := range loops {
			if safe[l] < a3[l] {
				t.Errorf("chain %d loop %d: safe HE %d < Algorithm 3 HE %d", i, l, safe[l], a3[l])
			}
		}
	}
}

func TestInspectRequiredDepths(t *testing.T) {
	f := newFixture()
	update := f.loop(f.edges,
		core.ArgDat(f.qo, 0, f.e2n, core.Inc),
		core.ArgDat(f.vol, 0, f.e2n, core.Read))
	ew := f.p.DeclDat(f.edges, 1, nil, "ew")
	flux := f.loop(f.edges,
		core.ArgDat(f.fl, 0, f.e2n, core.Inc),
		core.ArgDat(f.qo, 0, f.e2n, core.Read),
		core.ArgDatDirect(ew, core.Read))
	plan, err := Inspect("synth", []core.Loop{update, flux}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(plan.HE, []int{2, 1}) {
		t.Fatalf("plan HE = %v", plan.HE)
	}
	if plan.MaxDepth != 2 {
		t.Fatalf("MaxDepth = %d, want 2", plan.MaxDepth)
	}
	req := map[string]DatExchange{}
	for _, r := range plan.Required {
		req[r.Dat.Name] = r
	}
	// Equation (4): halo-exchange dats ship shells up to the halo
	// extension of every loop that accesses them.
	// vol: read indirectly by the depth-2 loop -> depth 2.
	if r := req["vol"]; r.ExecDepth != 2 || r.NonexecDepth != 2 {
		t.Errorf("vol required = %+v, want exec 2 nonexec 2", r)
	}
	// qo: read at depth 1 and incremented at depth 2 -> depth 2.
	if r := req["qo"]; r.ExecDepth != 2 || r.NonexecDepth != 2 {
		t.Errorf("qo required = %+v, want exec 2 nonexec 2", r)
	}
	// ew: direct read at depth 1 -> exec only.
	if r := req["ew"]; r.ExecDepth != 1 || r.NonexecDepth != 0 {
		t.Errorf("ew required = %+v, want exec 1 nonexec 0", r)
	}
	// flux: increment-only, never read in the chain -> not a
	// halo-exchange dat.
	if _, ok := req["flux"]; ok {
		t.Error("flux should not require exchange")
	}
}

func TestInspectOverrides(t *testing.T) {
	f := newFixture()
	l0 := f.loop(f.edges, core.ArgDat(f.qo, 0, f.e2n, core.Inc))
	l1 := f.loop(f.edges, core.ArgDat(f.qo, 0, f.e2n, core.Read))
	plan, err := Inspect("c", []core.Loop{l0, l1}, []int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(plan.HE, []int{3, 1}) {
		t.Fatalf("HE = %v, want [3 1]", plan.HE)
	}
	if _, err := Inspect("c", []core.Loop{l0, l1}, []int{1}); err == nil {
		t.Error("expected error for override length mismatch")
	}
	if _, err := Inspect("c", nil, nil); err == nil {
		t.Error("expected error for empty chain")
	}
	red := f.loop(f.nodes, core.ArgGbl(make([]float64, 1), core.Inc))
	if _, err := Inspect("c", []core.Loop{red}, nil); err == nil {
		t.Error("expected error for global reduction in chain")
	}
}

func TestPlanDescribe(t *testing.T) {
	f := newFixture()
	update := f.loop(f.edges,
		core.ArgDat(f.qo, 0, f.e2n, core.Inc),
		core.ArgDat(f.vol, 0, f.e2n, core.Read))
	flux := f.loop(f.edges,
		core.ArgDat(f.fl, 0, f.e2n, core.Inc),
		core.ArgDat(f.qo, 0, f.e2n, core.Read))
	loops := []core.Loop{update, flux}
	plan, err := Inspect("synth", loops, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Describe(loops)
	for _, want := range []string{"chain synth", "HE=2", "HE=1", "grouped message ships", "vol", "exec shells 1..2"} {
		if !containsStr(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
	// A chain with nothing to ship.
	direct := f.loop(f.nodes, core.ArgDatDirect(f.fl, core.Write))
	direct2 := f.loop(f.nodes, core.ArgDatDirect(f.vol, core.Write))
	p2, err := Inspect("empty", []core.Loop{direct, direct2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := p2.Describe([]core.Loop{direct, direct2}); !containsStr(s, "none") {
		t.Errorf("empty-plan Describe missing 'none':\n%s", s)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestDatAccessStrongestWins(t *testing.T) {
	f := newFixture()
	l := f.loop(f.edges,
		core.ArgDat(f.qo, 0, f.e2n, core.Read),
		core.ArgDat(f.qo, 1, f.e2n, core.Inc))
	a, ok := datAccess(l, f.qo)
	if !ok || a.Mode != core.Inc {
		t.Errorf("strongest access = %v, want OP_INC", a.Mode)
	}
	if _, ok := datAccess(l, f.vol); ok {
		t.Error("vol should not be found")
	}
}
