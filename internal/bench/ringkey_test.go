package bench

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"op2ca/internal/checkpoint"
	"op2ca/internal/faults"
)

// TestRingSpecKeysPathByWorkload is the regression test for the stale-ring
// adoption bug: op2ca-bench resumes by default from a leftover ring, so two
// invocations whose results differ must never share a ring path, while a
// supervised rerun (same workload plus crash clauses) must share one.
func TestRingSpecKeysPathByWorkload(t *testing.T) {
	base := checkpoint.Spec{Every: 1, Path: "ck.bin", Keep: 3}
	a := Quick()
	keyed := a.RingSpec(base)
	if !strings.HasPrefix(keyed.Path, "ck.bin.") || keyed.Path == base.Path {
		t.Fatalf("keyed path %q should extend the configured path", keyed.Path)
	}
	if keyed.Every != base.Every || keyed.Keep != base.Keep {
		t.Errorf("keying must not change cadence/retention: %+v", keyed)
	}

	// Same workload -> same path (deterministic across invocations).
	if again := a.RingSpec(base); again.Path != keyed.Path {
		t.Errorf("same config keyed to %q then %q", keyed.Path, again.Path)
	}

	// Differing workloads -> different paths.
	for _, mut := range []struct {
		name string
		mut  func(*Config)
	}{
		{"iters", func(c *Config) { c.Iters++ }},
		{"nodes8m", func(c *Config) { c.Nodes8M *= 2 }},
		{"nodes24m", func(c *Config) { c.Nodes24M *= 2 }},
		{"rankscale", func(c *Config) { c.RankScale *= 2 }},
		{"autotune", func(c *Config) { c.AutoTune = !c.AutoTune }},
		{"faults", func(c *Config) { c.Faults = faults.MustParse("drop=0.01,seed=3") }},
	} {
		b := Quick()
		mut.mut(&b)
		if got := b.RingSpec(base); got.Path == keyed.Path {
			t.Errorf("%s change kept ring path %q", mut.name, got.Path)
		}
	}

	// Crash clauses are stripped: the supervised rerun of a crashed
	// invocation extends the crash schedule but must adopt the same ring.
	crashed := Quick()
	crashed.Faults = faults.MustParse("crash=rank0@150,seed=1")
	rerun := Quick()
	rerun.Faults = faults.MustParse("crash=rank0@150,crash=rank1@50,seed=1")
	cp, rp := crashed.RingSpec(base).Path, rerun.RingSpec(base).Path
	if cp != rp {
		t.Errorf("crash-schedule change moved the ring: %q vs %q", cp, rp)
	}
	if clean := Quick().RingSpec(base).Path; clean != cp {
		t.Errorf("crash-only plan keyed differently from no plan: %q vs %q", cp, clean)
	}
	// Parallel never changes results; it must not move the ring either.
	serial := Quick()
	serial.Parallel = false
	if sp := serial.RingSpec(base).Path; sp != keyed.Path {
		t.Errorf("-serial moved the ring: %q vs %q", sp, keyed.Path)
	}

	// End to end: a ring written under workload A is invisible to workload
	// B — B's keyed path starts a fresh, empty ring.
	dir := t.TempDir()
	onDisk := checkpoint.Spec{Every: 1, Path: filepath.Join(dir, "ck.bin"), Keep: 3}
	ringA, err := checkpoint.NewRing(a.RingSpec(onDisk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ringA.Write(func(w io.Writer) error {
		_, err := checkpoint.Encode(w, &checkpoint.State{Note: "label=mgcfd,iter=3"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if gens, err := ringA.Generations(); err != nil || len(gens) != 1 {
		t.Fatalf("workload A ring = %v gens, %v; want 1", gens, err)
	}
	b := Quick()
	b.Iters++
	ringB, err := checkpoint.NewRing(b.RingSpec(onDisk))
	if err != nil {
		t.Fatal(err)
	}
	gens, err := ringB.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Errorf("workload B adopted %d generations from workload A's ring", len(gens))
	}
}
