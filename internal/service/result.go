package service

import (
	"op2ca/internal/bench"
	"op2ca/internal/supervise"
)

// Result is a finished job's committed record, in the op2ca-bench
// snapshot idiom: the resolved spec, the determinism-bearing outputs
// (checksum, residual, virtual clock, exchange count), and the fault and
// supervision ledgers. Checksum, residual and max_clock_seconds are the
// oracle fields — for a given spec they are bitwise identical however
// many preemptions, migrations and supervised restarts the job survived,
// and identical to a direct (unserved) run of the same spec.
type Result struct {
	JobID  string  `json:"job_id"`
	Tenant string  `json:"tenant"`
	Spec   JobSpec `json:"spec"`

	Checksum        string  `json:"checksum"`
	Residual        float64 `json:"residual,omitempty"` // mgcfd only
	MaxClockSeconds float64 `json:"max_clock_seconds"`
	Exchanges       uint64  `json:"exchanges"`

	FaultSpec string                 `json:"fault_spec,omitempty"`
	Faults    *bench.FaultTotals     `json:"faults,omitempty"`
	Supervise *bench.SuperviseRecord `json:"supervise,omitempty"`

	// Attempts counts attempt starts (preemptions and supervised
	// restarts included); Workers lists every worker that started one,
	// in order — a preempted or crash-restarted job shows at least two
	// distinct names here.
	Attempts    int      `json:"attempts"`
	Preemptions int      `json:"preemptions"`
	Restarts    int      `json:"restarts"`
	Workers     []string `json:"workers,omitempty"`
}

// newResult flattens a successful final attempt into the wire record.
// Call after sup.Finish so the supervise ledger includes ring
// write-verification quarantines.
func newResult(id string, w *workload, out attemptOutcome, sup *supervise.Supervisor,
	attempts, preemptions int, workers []string) *Result {
	r := &Result{
		JobID: id, Tenant: w.spec.Tenant, Spec: w.spec,
		Checksum: out.checksum, Residual: out.residual,
		MaxClockSeconds: out.maxClock, Exchanges: out.exchanges,
		Attempts: attempts, Preemptions: preemptions,
		Restarts: sup.Restarts(), Workers: workers,
	}
	if w.plan != nil {
		f := out.stats.Faults
		r.FaultSpec = w.plan.String()
		r.Faults = &bench.FaultTotals{
			Drops: f.Drops, Corrupts: f.Corrupts, Delays: f.Delays,
			Retries: f.Retries, Giveups: f.Giveups,
			FallbackUngrouped: f.FallbackUngrouped, FallbackPerLoop: f.FallbackPerLoop,
		}
	}
	r.Supervise = bench.NewSuperviseRecord(sup.Stats())
	return r
}
