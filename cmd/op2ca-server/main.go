// Command op2ca-server serves the multi-tenant job service
// (internal/service) over HTTP: clients POST mesh/chain/config job specs
// to /v1/jobs, poll status, stream lifecycle events, preempt, cancel,
// and fetch bench-snapshot-style results; /metrics exposes the service
// counters in Prometheus text format.
//
// Besides serving, two utility modes share the same job grammar:
//
//	op2ca-server -run spec.json      # execute one spec directly, print its Result
//	op2ca-server -loadgen http://... # flood a running server, print a shed/done report
//
// The -run mode is the serving path's oracle: a job submitted over HTTP
// must return the same checksum, residual and virtual clock as -run on
// the identical spec.
//
// Usage:
//
//	op2ca-server -addr 127.0.0.1:8080 -workers 4 -queue-cap 16
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"op2ca/internal/cmdutil"
	"op2ca/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers   = flag.Int("workers", 2, "executor pool size (one simulated run per worker)")
		queueCap  = flag.Int("queue-cap", 8, "admission queue bound; beyond it jobs are shed with 429")
		tenantCap = flag.Int("tenant-cap", 0, "per-tenant share of the queue (0 = queue-cap)")
		dataDir   = flag.String("data-dir", "", "checkpoint ring directory (default: a temp dir, removed on exit)")
		keep      = flag.Int("keep", 3, "checkpoint generations retained per job")
		runSpec   = flag.String("run", "", "execute one job spec (JSON file, - for stdin) directly and print its result")
		loadgen   = flag.String("loadgen", "", "flood the server at this base URL with synthetic jobs and print a report")
		jobs      = flag.Int("jobs", 32, "loadgen: jobs to submit")
		tenants   = flag.String("tenants", "acme,zeta,hog", "loadgen: comma-separated tenant names")
	)
	flag.Parse()

	switch {
	case *runSpec != "":
		if err := runDirect(*runSpec, os.Stdout); err != nil {
			fatal(err)
		}
	case *loadgen != "":
		rep, err := runLoadgen(*loadgen, *jobs, strings.Split(*tenants, ","))
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		if rep.Failed > 0 || rep.Errors > 0 {
			os.Exit(1)
		}
	default:
		cfg := service.Config{
			Workers: *workers, QueueCap: *queueCap, TenantCap: *tenantCap,
			DataDir: *dataDir, Keep: *keep,
		}
		if err := serve(*addr, cfg); err != nil {
			fatal(err)
		}
	}
}

// serve runs the HTTP service until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting, cancel everything in flight, drain the
// worker pool.
func serve(addr string, cfg service.Config) error {
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("op2ca-server: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: service.NewHandler(svc)}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "op2ca-server: shutting down")
		srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	svc.Close()
	return nil
}

// runDirect executes one spec inline and prints its Result as JSON —
// the serving path's oracle.
func runDirect(path string, w io.Writer) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("decoding job spec: %w", err)
	}
	res, err := service.RunDirect(spec, "")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// loadReport is what the load generator prints: how admission control
// split the flood, and how the admitted jobs ended.
type loadReport struct {
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Shed      int `json:"shed"` // 429 responses
	Errors    int `json:"errors"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// runLoadgen bursts n small jobs at a running server, round-robin over
// the tenants, then polls every accepted job to a terminal state. The
// burst deliberately outpaces the worker pool so a tightly provisioned
// server sheds part of it with 429s — which the report records, and
// which must never leak into failures of admitted jobs.
func runLoadgen(base string, n int, tenants []string) (loadReport, error) {
	var rep loadReport
	client := &http.Client{Timeout: 30 * time.Second}
	spec := service.JobSpec{
		App: "mgcfd", MeshNodes: 500, Ranks: 2, Iters: 2, NChains: 1, Machine: "laptop",
	}
	var ids []string
	for i := 0; i < n; i++ {
		spec.Tenant = tenants[i%len(tenants)]
		body, _ := json.Marshal(spec)
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return rep, err
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		rep.Submitted++
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v service.JobView
			if err := json.Unmarshal(rb, &v); err != nil {
				return rep, err
			}
			rep.Accepted++
			ids = append(ids, v.ID)
		case http.StatusTooManyRequests:
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	deadline := time.Now().Add(5 * time.Minute)
	for _, id := range ids {
		for {
			resp, err := client.Get(base + "/v1/jobs/" + id)
			if err != nil {
				return rep, err
			}
			var v service.JobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return rep, err
			}
			if v.State.Terminal() {
				switch v.State {
				case service.StateDone:
					rep.Done++
				case service.StateFailed:
					rep.Failed++
				default:
					rep.Cancelled++
				}
				break
			}
			if time.Now().After(deadline) {
				return rep, fmt.Errorf("job %s stuck in state %s", id, v.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return rep, nil
}

func fatal(err error) {
	cmdutil.Fatal("op2ca-server", err)
}
