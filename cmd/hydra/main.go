// Command hydra runs the Hydra-proxy application: the six published
// loop-chains of the paper's Tables 3-4 (weight, period, gradl, vflux,
// iflux, jacob) inside a 5-stage Runge-Kutta time-marching skeleton, under
// the sequential reference, the standard distributed OP2 back-end, or the
// communication-avoiding back-end.
//
// By default the CA back-end runs the paper's configured halo extensions
// (the Section 3.4 configuration file); -safe lets the inspector choose
// conservative extensions instead, and -config loads a custom file.
//
// Usage:
//
//	hydra -mesh-nodes 60000 -ranks 16 -backend ca -iters 20 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"op2ca/internal/ca"
	"op2ca/internal/chaincfg"
	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/cmdutil"
	"op2ca/internal/core"
	"op2ca/internal/hydra"
	"op2ca/internal/mesh"
	"op2ca/internal/supervise"
)

func main() {
	var (
		meshNodes   = flag.Int("mesh-nodes", 60000, "approximate node count")
		ranks       = flag.Int("ranks", 8, "simulated MPI ranks (ignored for -backend seq)")
		backendName = flag.String("backend", "ca", "backend: seq, op2 or ca")
		iters       = flag.Int("iters", 20, "time-marching iterations (the paper measures 20)")
		partName    = flag.String("partitioner", "rib", "partitioner: rib, rcb, kway or block")
		machName    = flag.String("machine", "archer2", "machine model: archer2, cirrus or laptop")
		cfgPath     = flag.String("config", "", "CA chain configuration file (default: built-in paper config)")
		safe        = flag.Bool("safe", false, "let the inspector pick conservative halo extensions")
		stats       = flag.Bool("stats", false, "print per-loop/per-chain statistics")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		overlap     = flag.Bool("overlap", false, "run CA chains on the overlap-capable task-graph executor (results are bit-identical; virtual time drops)")
		explain     = flag.Bool("explain", false, "print each chain's inspection plan and exit")
		verify      = flag.Bool("verify", false, "compare final state against the sequential reference")
		shared      cmdutil.RunFlags
	)
	shared.Register()
	flag.Parse()

	run, err := shared.Resolve("hydra", *backendName)
	if err != nil {
		fatal(err)
	}

	m := mesh.RotorForNodes(*meshNodes)
	app := hydra.New(m)

	if *explain {
		chains, _, err := chainSetup(*cfgPath, *safe)
		if err != nil {
			fatal(err)
		}
		for _, name := range hydra.ChainNames() {
			loops := app.ChainLoops(name)
			var over []int
			if cc := chains.Get(name); cc != nil {
				if over, err = cc.HEOverrides(len(loops)); err != nil {
					fatal(err)
				}
			}
			plan, err := ca.Inspect(name, loops, over)
			if err != nil {
				fmt.Printf("chain %s: %v\n", name, err)
				continue
			}
			fmt.Print(plan.Describe(loops))
		}
		return
	}
	fmt.Printf("mesh: %d nodes, %d edges, %d pedges, %d bnd, %d cbnd\n",
		m.NNodes, m.NEdges, m.NPedges, m.NBedges, m.NCbnd)

	var b core.Backend
	var cb *cluster.Backend
	startIter := 0
	switch *backendName {
	case "seq":
		b = core.NewSeq()
	case "op2", "ca":
		mach, err := cmdutil.MachineByName(*machName)
		if err != nil {
			fatal(err)
		}
		assign, err := cmdutil.Assignment(m, *partName, *ranks)
		if err != nil {
			fatal(err)
		}
		chains, depth, err := chainSetup(*cfgPath, *safe)
		if err != nil {
			fatal(err)
		}
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Nodes, Assign: assign, NParts: *ranks,
			Depth: depth, MaxChainLen: 6, CA: *backendName == "ca",
			Chains: chains, Machine: mach, Parallel: !*serial, Tracer: run.Tracer, Faults: run.Plan,
			AutoTune: run.AutoTune, Overlap: *overlap,
		}
		if run.Supervise.Enabled {
			// Supervised self-healing execution: the supervisor owns the
			// whole construct/run loop, restoring from the newest valid
			// checkpoint generation after each caught failure.
			runner := &supervise.Runner{
				Spec: run.Supervise, Plan: run.Plan, Ring: run.Ring, Tracer: run.Tracer,
				Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
					start := 0
					var err error
					if st == nil {
						cb, err = cluster.New(ccfg)
					} else {
						cb, err = cluster.RestoreState(st, ccfg)
					}
					if err != nil {
						return err
					}
					sup.Adopt(cb)
					if st != nil {
						if start, err = cmdutil.ParseIterNote(st.Note); err != nil {
							return err
						}
					}
					b = cb
					return runIters(b, cb, app, start, *iters, *backendName == "ca", run.Ckpt, run.Ring)
				},
			}
			sup, err := runner.Run()
			if err != nil {
				fatal(err)
			}
			sup.Finish(cb.Stats())
			break
		}
		if run.Restore != "" {
			f, err := os.Open(run.Restore)
			if err != nil {
				fatal(err)
			}
			var note string
			cb, note, err = cluster.Restore(f, ccfg)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if startIter, err = cmdutil.ParseIterNote(note); err != nil {
				fatal(err)
			}
			fmt.Printf("restored from %s: setup + %d iterations already complete\n", run.Restore, startIter)
		} else {
			cb, err = cluster.New(ccfg)
			if err != nil {
				fatal(err)
			}
		}
		b = cb
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}

	chained := *backendName == "ca"
	if !run.Supervise.Enabled {
		crash := supervise.CatchCrash(func() {
			if err := runIters(b, cb, app, startIter, *iters, chained, run.Ckpt, run.Ring); err != nil {
				fatal(err)
			}
		})
		if crash != nil {
			run.CrashExit(crash)
		}
	}
	fmt.Printf("backend %s: setup + %d iterations complete\n", b.Name(), *iters)
	if cb != nil {
		fmt.Printf("virtual time (slowest rank): %.6fs over %d ranks\n", cb.MaxClock(), cb.NParts())
		run.PrintRunSummary(cb)
		if run.Profile {
			// Attach the analysis to Stats before any report renders; the
			// full report prints here unless -stats already includes it.
			if p := cb.Profile(); p != nil && !*stats {
				fmt.Print(p.Report())
			}
		}
		if *stats {
			fmt.Print(cb.Stats().String())
		}
		if run.AutoTune && !*stats {
			fmt.Print(cb.Stats().AutoTune.Report())
		}
		if run.ModelCheck {
			fmt.Print(cb.ModelReport())
		}
		if err := run.WriteObservability(cb); err != nil {
			fatal(err)
		}
		if *verify {
			verifyAgainstSeq(cb, m, app, *iters, chained, *safe)
		}
	} else if run.Trace != "" || run.Metrics != "" || run.ModelCheck || run.Profile || run.Plan != nil {
		fmt.Fprintln(os.Stderr, "hydra: -trace/-metrics/-model-check/-profile/-faults need a distributed backend (op2 or ca); ignored for seq")
	}
}

// verifyAgainstSeq reruns the identical program sequentially and reports the
// worst relative difference of the primary state. Under the paper's
// configured halo extensions a small boundary-local deviation is expected
// (DESIGN.md 5b); safe mode must match to rounding.
func verifyAgainstSeq(cb *cluster.Backend, m *mesh.FV3D, app *hydra.App,
	iters int, chained, safe bool) {
	ref := hydra.New(m)
	seq := core.NewSeq()
	ref.RunSetup(seq, chained)
	for it := 0; it < iters; it++ {
		ref.RunIteration(seq, chained)
	}
	worst := 0.0
	for _, pair := range [][2]*core.Dat{{app.Qp, ref.Qp}, {app.Qo, ref.Qo}, {app.Res, ref.Res}} {
		got := cb.GatherDat(pair[0])
		want := pair[1].Data
		for i := range want {
			d := got[i] - want[i]
			if d < 0 {
				d = -d
			}
			den := want[i]
			if den < 0 {
				den = -den
			}
			if rel := d / (den + 1e-30); rel > worst {
				worst = rel
			}
		}
	}
	tol := 0.02 // published extensions perturb boundary values slightly
	if safe {
		tol = 1e-9
	}
	fmt.Printf("verify: max relative difference vs sequential reference = %.3e (tolerance %.0e)\n", worst, tol)
	if worst > tol {
		fmt.Println("verify: FAILED")
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

// chainSetup resolves the CA chain configuration and the halo depth the
// back-end must build.
func chainSetup(path string, safe bool) (*chaincfg.Config, int, error) {
	if safe {
		// No configured extensions: the inspector's conservative analysis
		// chooses; the weight/period chains need up to 5 shells.
		return nil, 5, nil
	}
	if path == "" {
		return hydra.MustPaperConfig(), 2, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	cfg, err := chaincfg.Parse(f)
	if err != nil {
		return nil, 0, err
	}
	// A custom file may pin deeper extensions; build generously.
	depth := 2
	for _, name := range cfg.Order {
		c := cfg.Chains[name]
		if c.MaxHE > depth {
			depth = c.MaxHE
		}
		for _, l := range c.Loops {
			if l.HE > depth {
				depth = l.HE
			}
		}
	}
	return cfg, depth, nil
}

// runIters drives the time-marching loop from iteration start: run setup on
// a fresh run, march, and snapshot through the checkpoint ring at the
// configured cadence.
func runIters(b core.Backend, cb *cluster.Backend, app *hydra.App,
	start, iters int, chained bool, ckpt checkpoint.Spec, ring *checkpoint.Ring) error {
	if start == 0 {
		app.RunSetup(b, chained)
	}
	for it := start; it < iters; it++ {
		app.RunIteration(b, chained)
		if ring != nil && ckpt.Enabled() && (it+1)%ckpt.Every == 0 {
			note := cmdutil.IterNote(it + 1)
			if _, err := ring.Write(func(w io.Writer) error {
				return cb.Checkpoint(w, note)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func fatal(err error) {
	cmdutil.Fatal("hydra", err)
}
