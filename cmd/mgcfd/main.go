// Command mgcfd runs the MG-CFD mini-app (3-D unstructured multigrid
// finite-volume Euler solver) on a synthetic rotor mesh, optionally with
// the paper's synthetic loop-chains, under the sequential reference, the
// standard distributed OP2 back-end, or the communication-avoiding
// back-end.
//
// Usage:
//
//	mgcfd -mesh-nodes 100000 -ranks 16 -backend ca -nchains 8 -iters 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
	"op2ca/internal/supervise"
)

func main() {
	var (
		meshNodes   = flag.Int("mesh-nodes", 60000, "approximate finest-level node count")
		levels      = flag.Int("levels", 3, "multigrid levels")
		ranks       = flag.Int("ranks", 8, "simulated MPI ranks (ignored for -backend seq)")
		backendName = flag.String("backend", "ca", "backend: seq, op2 or ca")
		nchains     = flag.Int("nchains", 4, "synthetic chain pairs per iteration (0 disables)")
		iters       = flag.Int("iters", 10, "main-loop iterations")
		partName    = flag.String("partitioner", "kway", "partitioner: kway, rib, rcb or block")
		machName    = flag.String("machine", "archer2", "machine model: archer2, cirrus or laptop")
		stats       = flag.Bool("stats", false, "print per-loop/per-chain statistics")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		verify      = flag.Bool("verify", false, "compare final state against the sequential reference")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
		metricsPath = flag.String("metrics", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
		modelCheck  = flag.Bool("model-check", false, "print Equation (1)/(3) predictions next to measured virtual times")
		profile     = flag.Bool("profile", false,
			"print the critical-path / communication-matrix / imbalance report (forces tracing; the run stays bit-identical)")
		autoTune = flag.Bool("autotune", false,
			"let the model-driven autotuner pick each chain's execution policy (requires -backend ca); results stay bit-identical to any static configuration")
		faultSpec = flag.String("faults", "",
			"deterministic fault-injection spec, e.g. drop=0.01,corrupt=0.002,seed=42 (see internal/faults); results stay bit-identical, virtual times include recovery")
		ckptFlag = flag.String("checkpoint", "",
			"periodic snapshots, e.g. every=5,path=ck.bin,keep=3: checkpoint the backend after every N iterations, rotating keep=K verified generations (requires -backend op2 or ca)")
		restorePath = flag.String("restore", "",
			"resume from a checkpoint file instead of initialising; completed iterations are skipped (requires -backend op2 or ca)")
		superviseFlag = flag.String("supervise", "",
			"self-healing supervised execution, e.g. on or budget=8,backoff=1,watchdog=50: catch injected crashes, exchange failures and no-progress stalls, restore from the newest valid checkpoint generation and resume (requires -backend op2 or ca; incompatible with -restore)")
	)
	flag.Parse()

	var ckpt checkpoint.Spec
	if *ckptFlag != "" {
		s, err := checkpoint.ParseSpec(*ckptFlag)
		if err != nil {
			fatal(err)
		}
		ckpt = s
	}
	svSpec, err := supervise.ParseSpec(*superviseFlag)
	if err != nil {
		fatal(err)
	}
	if (*ckptFlag != "" || *restorePath != "" || svSpec.Enabled) && *backendName == "seq" {
		fatal(fmt.Errorf("-checkpoint/-restore/-supervise need a distributed backend (op2 or ca)"))
	}
	if svSpec.Enabled && *restorePath != "" {
		fatal(fmt.Errorf("-supervise and -restore are incompatible: the supervisor recovers from the checkpoint ring itself"))
	}

	var tracer *obs.Tracer
	if *tracePath != "" || *profile {
		tracer = obs.New()
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		p, err := faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		plan = p
	}

	m := mesh.RotorForNodes(*meshNodes)
	h := mesh.NewHierarchy(m, *levels, true)
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	fmt.Printf("mesh: %d nodes, %d edges, %d multigrid levels\n",
		m.NNodes, m.NEdges, len(h.Levels))

	var ring *checkpoint.Ring
	if ckpt.Enabled() {
		r, err := checkpoint.NewRing(ckpt)
		if err != nil {
			fatal(err)
		}
		ring = r
	}

	var b core.Backend
	var cb *cluster.Backend
	startIter := 0
	switch *backendName {
	case "seq":
		b = core.NewSeq()
	case "op2", "ca":
		mach, err := machineByName(*machName)
		if err != nil {
			fatal(err)
		}
		assign, err := assignment(m, *partName, *ranks)
		if err != nil {
			fatal(err)
		}
		if *autoTune && *backendName != "ca" {
			fmt.Fprintln(os.Stderr, "mgcfd: -autotune requires -backend ca; ignored")
			*autoTune = false
		}
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: *ranks,
			Depth: 2, MaxChainLen: 2 * maxInt(*nchains, 1), CA: *backendName == "ca",
			Machine: mach, Parallel: !*serial, Tracer: tracer, Faults: plan,
			AutoTune: *autoTune,
		}
		if svSpec.Enabled {
			// Supervised self-healing execution: the supervisor owns the
			// whole construct/run loop, restoring from the newest valid
			// checkpoint generation after each caught failure.
			runner := &supervise.Runner{
				Spec: svSpec, Plan: plan, Ring: ring, Tracer: tracer,
				Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
					start := 0
					var err error
					if st == nil {
						cb, err = cluster.New(ccfg)
					} else {
						cb, err = cluster.RestoreState(st, ccfg)
					}
					if err != nil {
						return err
					}
					sup.Adopt(cb)
					if st != nil {
						if _, err := fmt.Sscanf(st.Note, "iter=%d", &start); err != nil {
							return fmt.Errorf("checkpoint note %q is not an iteration marker: %w", st.Note, err)
						}
					}
					b = cb
					return runIters(b, cb, app, syn, start, *iters, *nchains, *backendName == "ca", ckpt, ring)
				},
			}
			sup, err := runner.Run()
			if err != nil {
				fatal(err)
			}
			sup.Finish(cb.Stats())
			if sv := cb.Stats().Supervise; sv.Restarts > 0 {
				fmt.Printf("supervise: recovered from %d failures (crash %d exchange %d watchdog %d), %d generations quarantined\n",
					sv.Restarts, sv.CrashRestarts, sv.ExchangeRestarts, sv.WatchdogTrips, sv.Quarantined)
			}
			break
		}
		if *restorePath != "" {
			f, err := os.Open(*restorePath)
			if err != nil {
				fatal(err)
			}
			var note string
			cb, note, err = cluster.Restore(f, ccfg)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if _, err := fmt.Sscanf(note, "iter=%d", &startIter); err != nil {
				fatal(fmt.Errorf("checkpoint note %q is not an iteration marker: %w", note, err))
			}
			fmt.Printf("restored from %s: %d iterations already complete\n", *restorePath, startIter)
		} else {
			cb, err = cluster.New(ccfg)
			if err != nil {
				fatal(err)
			}
		}
		b = cb
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}

	if !svSpec.Enabled {
		crash := supervise.CatchCrash(func() {
			if err := runIters(b, cb, app, syn, startIter, *iters, *nchains, *backendName == "ca", ckpt, ring); err != nil {
				fatal(err)
			}
		})
		if crash != nil {
			fmt.Fprintf(os.Stderr, "mgcfd: injected crash of rank %d at exchange %d\n", crash.Rank, crash.Exchange)
			if ring != nil {
				if gens, err := ring.Generations(); err == nil && len(gens) > 0 {
					fmt.Fprintf(os.Stderr, "mgcfd: resume with -restore %s (drop the crash= clause), or rerun with -supervise on\n", gens[0].Path)
				}
			}
			os.Exit(3)
		}
	}
	res := app.Residual(b)
	fmt.Printf("backend %s: %d iterations, density L1 residual %.6e\n", b.Name(), *iters, res)
	if cb != nil {
		fmt.Printf("virtual time (slowest rank): %.6fs over %d ranks\n", cb.MaxClock(), cb.NParts())
		if plan != nil {
			fs := cb.Stats().Faults
			fmt.Printf("faults: %s -> drops %d corrupts %d delays %d retries %d giveups %d fallback_ungrouped %d fallback_perloop %d\n",
				plan.String(), fs.Drops, fs.Corrupts, fs.Delays, fs.Retries, fs.Giveups,
				fs.FallbackUngrouped, fs.FallbackPerLoop)
		}
		if *profile {
			// Attach the analysis to Stats before any report renders; the
			// full report prints here unless -stats already includes it.
			if p := cb.Profile(); p != nil && !*stats {
				fmt.Print(p.Report())
			}
		}
		if *stats {
			fmt.Print(cb.Stats().String())
		}
		if *autoTune && !*stats {
			fmt.Print(cb.Stats().AutoTune.Report())
		}
		if *modelCheck {
			fmt.Print(cb.ModelReport())
		}
		if err := writeObservability(tracer, *tracePath, *metricsPath, cb); err != nil {
			fatal(err)
		}
		if *verify {
			verifyAgainstSeq(cb, h, app, syn, *iters, *nchains, *backendName == "ca")
		}
	} else if *tracePath != "" || *metricsPath != "" || *modelCheck || *profile || plan != nil {
		fmt.Fprintln(os.Stderr, "mgcfd: -trace/-metrics/-model-check/-profile/-faults need a distributed backend (op2 or ca); ignored for seq")
	}
}

// writeObservability exports the trace and metrics files requested on the
// command line.
func writeObservability(tracer *obs.Tracer, tracePath, metricsPath string, cb *cluster.Backend) error {
	if tracePath != "" {
		if err := tracer.WriteChromeTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s (open in Perfetto or chrome://tracing)\n", tracer.Len(), tracePath)
	}
	if metricsPath != "" {
		w := os.Stdout
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		mw := obs.NewMetricsWriter(w)
		cb.Stats().WriteMetrics(mw)
		tracer.WriteSpanMetrics(mw)
		return mw.Flush()
	}
	return nil
}

// verifyAgainstSeq reruns the identical program sequentially and reports the
// worst relative difference of the finest-level state.
func verifyAgainstSeq(cb *cluster.Backend, h *mesh.Hierarchy, app *mgcfd.App,
	syn *mgcfd.Synthetic, iters, nchains int, chained bool) {
	ref := mgcfd.New(h)
	refSyn := mgcfd.NewSynthetic(ref)
	seq := core.NewSeq()
	ref.Init(seq)
	for it := 0; it < iters; it++ {
		if nchains > 0 {
			refSyn.Run(seq, nchains, chained)
		}
		ref.Cycle(seq)
	}
	got := cb.GatherDat(app.Levels[0].Vars)
	want := ref.Levels[0].Vars.Data
	worst := 0.0
	for i := range want {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		den := want[i]
		if den < 0 {
			den = -den
		}
		if rel := d / (den + 1e-30); rel > worst {
			worst = rel
		}
	}
	fmt.Printf("verify: max relative difference vs sequential reference = %.3e\n", worst)
	if worst > 1e-9 {
		fmt.Println("verify: FAILED (difference exceeds 1e-9)")
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

func machineByName(name string) (*machine.Machine, error) {
	switch name {
	case "archer2":
		return machine.ARCHER2(), nil
	case "cirrus":
		return machine.Cirrus(), nil
	case "laptop":
		return machine.Laptop(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

func assignment(m *mesh.FV3D, partitioner string, ranks int) (partition.Assignment, error) {
	switch partitioner {
	case "kway":
		return partition.KWay(m.NodeAdjacency(), ranks), nil
	case "rib":
		return partition.RIB(m.Coords, 3, ranks), nil
	case "rcb":
		return partition.RCB(m.Coords, 3, ranks), nil
	case "block":
		return partition.Block(m.NNodes, ranks), nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", partitioner)
}

// runIters drives the main loop from iteration start: initialise on a fresh
// run, interleave synthetic chains with multigrid cycles, and snapshot
// through the checkpoint ring at the configured cadence.
func runIters(b core.Backend, cb *cluster.Backend, app *mgcfd.App, syn *mgcfd.Synthetic,
	start, iters, nchains int, chained bool, ckpt checkpoint.Spec, ring *checkpoint.Ring) error {
	if start == 0 {
		app.Init(b)
	}
	for it := start; it < iters; it++ {
		if nchains > 0 {
			syn.Run(b, nchains, chained)
		}
		app.Cycle(b)
		if ring != nil && ckpt.Enabled() && (it+1)%ckpt.Every == 0 {
			note := fmt.Sprintf("iter=%d", it+1)
			if _, err := ring.Write(func(w io.Writer) error {
				return cb.Checkpoint(w, note)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgcfd:", err)
	os.Exit(1)
}
