package mesh

// Quad2D is an unstructured view of an nx-by-ny grid of quadrilateral cells:
// the mesh of the paper's Figure 1, with nodes, edges and cells, an
// edges-to-nodes map of arity 2 and an edges-to-cells map of arity 2.
// Boundary edges reference their single adjacent cell in both e2c slots.
type Quad2D struct {
	NNodes int
	NEdges int
	NCells int
	// EdgeNodes holds the e2n map, 2 node indices per edge.
	EdgeNodes []int32
	// EdgeCells holds the e2c map, 2 cell indices per edge.
	EdgeCells []int32
	// CellNodes holds the c2n map, 4 node indices per cell (counter-clockwise).
	CellNodes []int32
	// Coords holds 2 coordinates per node.
	Coords []float64
}

// NewQuad2D generates the quadrilateral mesh with nx*ny cells. nx and ny
// must be positive.
func NewQuad2D(nx, ny int) *Quad2D {
	if nx < 1 || ny < 1 {
		panic("mesh: Quad2D dimensions must be positive")
	}
	nnx, nny := nx+1, ny+1
	m := &Quad2D{
		NNodes: nnx * nny,
		NCells: nx * ny,
	}
	node := func(i, j int) int32 { return int32(j*nnx + i) }
	cell := func(i, j int) int32 { return int32(j*nx + i) }

	m.Coords = make([]float64, 2*m.NNodes)
	for j := 0; j < nny; j++ {
		for i := 0; i < nnx; i++ {
			n := node(i, j)
			m.Coords[2*n] = float64(i)
			m.Coords[2*n+1] = float64(j)
		}
	}

	m.CellNodes = make([]int32, 0, 4*m.NCells)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.CellNodes = append(m.CellNodes,
				node(i, j), node(i+1, j), node(i+1, j+1), node(i, j+1))
		}
	}

	// Horizontal edges connect (i,j)-(i+1,j); the cells below and above.
	// Vertical edges connect (i,j)-(i,j+1); the cells left and right.
	for j := 0; j < nny; j++ {
		for i := 0; i < nx; i++ {
			m.EdgeNodes = append(m.EdgeNodes, node(i, j), node(i+1, j))
			below, above := int32(-1), int32(-1)
			if j > 0 {
				below = cell(i, j-1)
			}
			if j < ny {
				above = cell(i, j)
			}
			if below < 0 {
				below = above
			}
			if above < 0 {
				above = below
			}
			m.EdgeCells = append(m.EdgeCells, below, above)
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nnx; i++ {
			m.EdgeNodes = append(m.EdgeNodes, node(i, j), node(i, j+1))
			left, right := int32(-1), int32(-1)
			if i > 0 {
				left = cell(i-1, j)
			}
			if i < nx {
				right = cell(i, j)
			}
			if left < 0 {
				left = right
			}
			if right < 0 {
				right = left
			}
			m.EdgeCells = append(m.EdgeCells, left, right)
		}
	}
	m.NEdges = len(m.EdgeNodes) / 2
	return m
}
