package cluster

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"op2ca/internal/checkpoint"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestCancelLeavesRestorableGeneration is the contract job preemption and
// DELETE build on: a run cancelled mid-flight dies with a typed
// *CancelledError at an exchange boundary, every ring generation written
// before the cancellation point is complete and restorable, and resuming
// from the newest one on a fresh backend completes bitwise identical to an
// uninterrupted run.
func TestCancelLeavesRestorableGeneration(t *testing.T) {
	const (
		seed   = 17
		nloops = 3
		iters  = 6
		cut    = 3 // cancel after this many repetitions
		nparts = 3
	)
	m := mesh.Rotor(6, 5, 4)
	assign := partition.KWay(m.NodeAdjacency(), nparts)
	mkCfg := func(w ckptWorkload) Config {
		return Config{
			Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: nparts,
			Depth: nloops + 1, MaxChainLen: nloops, CA: true,
		}
	}

	// Uninterrupted reference run.
	cleanW := newCkptWorkload(m, seed, nloops)
	clean, err := New(mkCfg(cleanW))
	if err != nil {
		t.Fatal(err)
	}
	cleanW.run(clean, 0, iters, false)
	wantSum := clean.ChecksumDats()
	wantClock := clean.MaxClock()

	// Cancelled run: checkpoint into a generation ring after every
	// repetition, request cancellation between repetitions, and observe the
	// typed panic at the next exchange boundary.
	ring, err := checkpoint.NewRing(checkpoint.Spec{
		Every: 1, Keep: 3, Path: filepath.Join(t.TempDir(), "cancel.ck"),
	})
	if err != nil {
		t.Fatal(err)
	}
	firstW := newCkptWorkload(m, seed, nloops)
	first, err := New(mkCfg(firstW))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < cut; it++ {
		firstW.run(first, it, it+1, false)
		note := fmt.Sprintf("iter=%d", it+1)
		if _, err := ring.Write(func(w io.Writer) error {
			return first.Checkpoint(w, note)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if first.CancelRequested() {
		t.Fatal("CancelRequested before Cancel")
	}
	first.Cancel()
	if !first.CancelRequested() {
		t.Fatal("CancelRequested false after Cancel")
	}
	cerr := func() (cerr *CancelledError) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("cancelled run completed without panicking")
			}
			var ok bool
			if cerr, ok = r.(*CancelledError); !ok {
				panic(r)
			}
		}()
		firstW.run(first, cut, iters, false)
		return nil
	}()
	if cerr.Exchange == 0 {
		t.Fatalf("CancelledError.Exchange = 0, want the boundary sequence number")
	}
	if cerr.Error() == "" {
		t.Fatal("empty CancelledError message")
	}

	// The newest generation written before the cancellation must recover
	// cleanly and carry the last pre-cancel note.
	st, gen, _, quarantined, err := ring.RecoverNewest()
	if err != nil {
		t.Fatalf("RecoverNewest after cancel: %v", err)
	}
	if quarantined != 0 {
		t.Fatalf("%d generations quarantined after cancel, want 0", quarantined)
	}
	if gen.Seq != cut-1 {
		t.Fatalf("recovered generation seq %d, want %d", gen.Seq, cut-1)
	}
	var doneIters int
	if _, err := fmt.Sscanf(st.Note, "iter=%d", &doneIters); err != nil {
		t.Fatalf("parse note %q: %v", st.Note, err)
	}
	if doneIters != cut {
		t.Fatalf("newest generation note %q, want iter=%d", st.Note, cut)
	}

	// Resume on a fresh backend and finish: bitwise identical to the
	// uninterrupted run.
	secondW := newCkptWorkload(m, seed, nloops)
	second, err := RestoreState(st, mkCfg(secondW))
	if err != nil {
		t.Fatal(err)
	}
	secondW.run(second, doneIters, iters, false)
	if got := second.ChecksumDats(); got != wantSum {
		t.Fatalf("resumed checksum %q != clean %q", got, wantSum)
	}
	if got := second.MaxClock(); got != wantClock {
		t.Fatalf("resumed clock %v != clean %v", got, wantClock)
	}
}

// TestCancelObservedMidChain pins the boundary semantics: a cancellation
// requested from a kernel function (mid-run, mid-chain) is not observed
// until the next exchange, never mid-kernel.
func TestCancelObservedMidChain(t *testing.T) {
	const (
		seed   = 29
		nloops = 3
		nparts = 3
	)
	m := mesh.Rotor(6, 5, 4)
	assign := partition.KWay(m.NodeAdjacency(), nparts)
	w := newCkptWorkload(m, seed, nloops)
	b, err := New(Config{
		Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: nparts,
		Depth: nloops + 1, MaxChainLen: nloops, CA: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One full repetition establishes a nonzero exchange sequence.
	w.run(b, 0, 1, false)
	seqBefore := b.ExchangeSeq()
	if seqBefore == 0 {
		t.Fatal("ExchangeSeq = 0 after a full repetition")
	}
	b.Cancel()
	defer func() {
		r := recover()
		ce, ok := r.(*CancelledError)
		if !ok {
			t.Fatalf("recovered %v, want *CancelledError", r)
		}
		if ce.Exchange != seqBefore {
			t.Fatalf("cancelled at exchange %d, want next boundary %d", ce.Exchange, seqBefore)
		}
	}()
	w.run(b, 1, 2, false)
	t.Fatal("run survived cancellation")
}
