package checkpoint

// ring.go is the generation ring behind "every=N,path=P,keep=K": instead of
// overwriting one snapshot file, writes rotate through K numbered generation
// files, every write is verified by decoding it back before older
// generations are pruned, and recovery scans newest-to-oldest, quarantining
// generations that fail to decode. A torn or bit-flipped newest snapshot
// therefore costs one generation of progress, not the whole run.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// quarantineSuffix marks a generation that failed decode verification. The
// file is renamed aside rather than deleted, so an operator can inspect the
// corruption; quarantined files are invisible to Generations and never
// pruned.
const quarantineSuffix = ".quarantined"

// Generation is one snapshot file of a ring.
type Generation struct {
	Path string
	// Seq is the generation's monotonically increasing write number (-1
	// for the legacy single-file layout, which has no numbering).
	Seq int
}

// Ring writes and recovers snapshot generations under a Spec. With Keep <= 1
// it degenerates to the legacy single-file layout (same path, atomic
// overwrite) while still verifying every write by read-back. A Ring is not
// safe for concurrent use; the runtime checkpoints from one goroutine.
type Ring struct {
	spec Spec
	next int
	// VerifyFailures counts writes whose read-back verification failed
	// (the snapshot was quarantined and the write reported as an error).
	VerifyFailures int
}

// NewRing builds a ring over spec, resuming the generation numbering past
// any generations already on disk (a supervised restart must not overwrite
// the snapshots it is about to recover from).
func NewRing(spec Spec) (*Ring, error) {
	if spec.Path == "" {
		return nil, fmt.Errorf("checkpoint: ring needs a path")
	}
	r := &Ring{spec: spec}
	gens, err := r.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		r.next = gens[0].Seq + 1
	}
	return r, nil
}

// Spec returns the ring's configuration.
func (r *Ring) Spec() Spec { return r.spec }

// genPath names generation seq: "P.g000042". Zero-padded, so lexical and
// numeric order agree for any plausible generation count.
func (r *Ring) genPath(seq int) string {
	return fmt.Sprintf("%s.g%06d", r.spec.Path, seq)
}

// Generations lists the ring's on-disk snapshot generations, newest first.
// Quarantined files are excluded. Under the legacy single-file layout the
// result is at most one entry (the file itself, Seq -1).
func (r *Ring) Generations() ([]Generation, error) {
	if r.spec.Keep <= 1 {
		if _, err := os.Stat(r.spec.Path); err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, err
		}
		return []Generation{{Path: r.spec.Path, Seq: -1}}, nil
	}
	matches, err := filepath.Glob(r.spec.Path + ".g*")
	if err != nil {
		return nil, err
	}
	var gens []Generation
	for _, m := range matches {
		if strings.HasSuffix(m, quarantineSuffix) || strings.HasSuffix(m, ".tmp") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimPrefix(m, r.spec.Path+".g"))
		if err != nil {
			continue
		}
		gens = append(gens, Generation{Path: m, Seq: seq})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq > gens[j].Seq })
	return gens, nil
}

// Write adds one snapshot generation: atomic write (fsynced), read-back
// decode verification, then pruning of generations beyond Keep. A snapshot
// that fails verification is quarantined and reported as an error — the
// older generations it would have displaced stay in place, so the caller
// still has a valid recovery point.
func (r *Ring) Write(encode func(w io.Writer) error) (string, error) {
	path := r.spec.Path
	if r.spec.Keep > 1 {
		path = r.genPath(r.next)
	}
	if err := AtomicWriteFile(path, encode); err != nil {
		return "", err
	}
	if _, err := ReadFile(path); err != nil {
		r.VerifyFailures++
		q, qerr := Quarantine(path)
		if qerr != nil {
			return "", fmt.Errorf("checkpoint: ring: write verification failed (%v) and quarantine failed: %v", err, qerr)
		}
		return "", fmt.Errorf("checkpoint: ring: write verification failed, snapshot quarantined to %s: %w", q, err)
	}
	if r.spec.Keep > 1 {
		r.next++
		r.prune()
	}
	return path, nil
}

// prune removes the oldest generations beyond Keep. Removal errors are
// ignored: a leftover old generation is harmless (recovery prefers newer
// ones) and the next prune retries.
func (r *Ring) prune() {
	gens, err := r.Generations()
	if err != nil {
		return
	}
	for _, g := range gens[min(len(gens), r.spec.Keep):] {
		os.Remove(g.Path)
	}
}

// Quarantine renames a corrupt snapshot aside (path -> path.quarantined)
// and returns the new name. An existing quarantine at that name is
// overwritten — the newer corpse is the interesting one.
func Quarantine(path string) (string, error) {
	q := path + quarantineSuffix
	if err := os.Rename(path, q); err != nil {
		return "", err
	}
	return q, nil
}

// RecoverNewest scans the ring newest-to-oldest for a generation that
// decodes cleanly, quarantining every corrupt generation it passes over.
// It returns the decoded state and its generation, how many generations
// were tried and how many quarantined; a nil state with a nil error means
// the ring holds no usable snapshot (cold start).
func (r *Ring) RecoverNewest() (st *State, gen Generation, tried, quarantined int, err error) {
	gens, err := r.Generations()
	if err != nil {
		return nil, Generation{}, 0, 0, err
	}
	for _, g := range gens {
		tried++
		st, derr := ReadFile(g.Path)
		if derr == nil {
			return st, g, tried, quarantined, nil
		}
		if _, qerr := Quarantine(g.Path); qerr == nil {
			quarantined++
		}
	}
	return nil, Generation{}, tried, quarantined, nil
}
