package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// forcedWorkers is the pool width the tests install explicitly:
// single-slot CI machines would otherwise never build a pool (New only
// installs one when GOMAXPROCS > 1), leaving the parallel paths untested.
const forcedWorkers = 4

// TestPoolVisitsEveryRankOnce: the chunked cursor hands every rank to
// exactly one worker, for rank counts around the chunking boundaries.
func TestPoolVisitsEveryRankOnce(t *testing.T) {
	p := newRankPool(forcedWorkers)
	defer p.close()
	for _, nparts := range []int{1, 2, 3, forcedWorkers, forcedWorkers + 1, 17, 64, 1024} {
		visits := make([]atomic.Int32, nparts)
		p.forEach(nparts, func(w, r int) {
			if w < 0 || w >= forcedWorkers {
				t.Errorf("nparts=%d: worker id %d out of range", nparts, w)
			}
			visits[r].Add(1)
		})
		for r := range visits {
			if n := visits[r].Load(); n != 1 {
				t.Fatalf("nparts=%d: rank %d executed %d times, want 1", nparts, r, n)
			}
		}
	}
}

// TestPoolBoundsConcurrency: dispatching 1024 simulated ranks runs at most
// `workers` rank bodies at once — the fork reuses the persistent workers
// instead of spawning a goroutine per rank (the executor this pool
// replaced would hit 1024 here).
func TestPoolBoundsConcurrency(t *testing.T) {
	p := newRankPool(forcedWorkers)
	defer p.close()
	var cur, max atomic.Int32
	p.forEach(1024, func(w, r int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if m := max.Load(); m > forcedWorkers {
		t.Fatalf("observed %d concurrent rank bodies, want <= %d workers", m, forcedWorkers)
	}
}

// TestPoolReRaisesTypedPanics is the panic-transparency regression test:
// a typed panic on a worker goroutine (*ExchangeError here) must surface on
// the dispatching goroutine with its original value, so callers that
// recover on typed panics behave identically in serial and parallel modes.
// Before the pool, each rank ran on its own goroutine and a panicking rank
// aborted the whole process — no recover could see it.
func TestPoolReRaisesTypedPanics(t *testing.T) {
	p := newRankPool(forcedWorkers)
	defer p.close()
	want := &ExchangeError{Kind: ErrTruncated, Rank: 13, From: 2, Dat: "res", Want: 8, Got: 3}
	for round := 0; round < 3; round++ {
		// Repeated rounds prove the pool survives a panicking fork: the
		// join completes, the run state resets, and the next fork works.
		func() {
			defer func() {
				rec := recover()
				ee, ok := rec.(*ExchangeError)
				if !ok {
					t.Fatalf("round %d: recovered %T (%v), want *ExchangeError", round, rec, rec)
				}
				if ee != want {
					t.Fatalf("round %d: recovered %v, not the original panic value", round, ee)
				}
				if len(p.run.panicStack) == 0 {
					t.Fatalf("round %d: worker stack not captured", round)
				}
			}()
			p.forEach(64, func(w, r int) {
				if r == 13 {
					panic(want)
				}
			})
			t.Fatalf("round %d: forEach returned without panicking", round)
		}()
		// The pool must still dispatch cleanly after re-raising.
		var n atomic.Int32
		p.forEach(64, func(w, r int) { n.Add(1) })
		if n.Load() != 64 {
			t.Fatalf("round %d: post-panic fork ran %d ranks, want 64", round, n.Load())
		}
	}
}

// TestParallelCrashFaultRecoverable: a *faults.CrashError raised inside a
// kernel running on a pool worker is recoverable by a caller-side deferred
// recover — the exact shape of catchCrash in cmd/mgcfd and cmd/hydra, whose
// exit-3 checkpoint-restart protocol depends on seeing the typed value.
func TestParallelCrashFaultRecoverable(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 6), NParts: 6,
		Depth: 2, MaxChainLen: 4, CA: true, Parallel: true, Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.installPool(forcedWorkers)
	crash := &faults.CrashError{Rank: 3, Exchange: 0}
	var fired atomic.Bool
	kCrash := &core.Kernel{Name: "crash_once", Fn: func(args [][]float64) {
		if args[0][0] != 0 && fired.CompareAndSwap(false, true) {
			panic(crash)
		}
	}}
	var rec any
	func() {
		defer func() { rec = recover() }()
		b.ChainBegin("crashing")
		b.ParLoop(core.NewLoop(kUpdate, a.edges,
			core.ArgDat(a.res, 0, a.e2n, core.Inc), core.ArgDat(a.res, 1, a.e2n, core.Inc),
			core.ArgDat(a.pres, 0, a.e2n, core.Read), core.ArgDat(a.pres, 1, a.e2n, core.Read)))
		b.ParLoop(core.NewLoop(kCrash, a.edges,
			core.ArgDat(a.res, 0, a.e2n, core.ReadWrite),
			core.ArgDat(a.res, 1, a.e2n, core.Read)))
		b.ChainEnd()
	}()
	ce := &faults.CrashError{}
	if !errors.As(toError(rec), &ce) {
		t.Fatalf("recovered %T (%v), want *faults.CrashError", rec, rec)
	}
	if ce != crash {
		t.Fatalf("recovered %v, not the original crash value", ce)
	}
}

// toError adapts a recovered panic value for errors.As, mirroring how
// catchCrash inspects it.
func toError(rec any) error {
	if err, ok := rec.(error); ok {
		return err
	}
	return nil
}

// TestForcedPoolMatchesSerial: the forced multi-worker pool produces
// bit-identical results, clocks and stats to serial dispatch across the
// execution modes (grouped CA, ungrouped CA, lazy chaining), with and
// without drop+straggler fault injection. This is the -race matrix entry:
// under `go test -race` it exercises every fork point — loop bodies, pack,
// unpack, schedule replay — with real worker concurrency.
func TestForcedPoolMatchesSerial(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	plans := map[string]*faults.Plan{
		"clean":  nil,
		"faulty": faults.MustParse("drop=0.2,straggler=rank1:3x,seed=7"),
	}
	for _, mode := range []string{"ca", "ca-ungrouped", "lazy",
		"ca-overlap", "ca-ungrouped-overlap", "lazy-overlap"} {
		for pname, plan := range plans {
			serialRes, serialB := faultyResult(t, m, 2, plan, mode)
			parRes, parB := pooledResult(t, m, 2, plan, mode)
			compareExact(t, mode+"/"+pname, parRes, serialRes)
			sc, pc := serialB.Clocks(), parB.Clocks()
			for r := range sc {
				if sc[r] != pc[r] {
					t.Fatalf("%s/%s: rank %d clock %g (parallel) != %g (serial)",
						mode, pname, r, pc[r], sc[r])
				}
			}
			if ss, ps := serialB.Stats().String(), parB.Stats().String(); ss != ps {
				t.Fatalf("%s/%s: stats diverge\nserial:\n%s\nparallel:\n%s", mode, pname, ss, ps)
			}
		}
	}
}

// pooledResult is faultyResult with a forced multi-worker pool.
func pooledResult(t *testing.T, m *mesh.FV3D, steps int, plan *faults.Plan, mode string) (map[string][]float64, *Backend) {
	t.Helper()
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	cfg := Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
		Depth: 2, MaxChainLen: 4, Machine: machine.ARCHER2(), Faults: plan,
		CA: true, Parallel: true,
	}
	chain := false
	switch mode {
	case "ca":
		chain = true
	case "ca-ungrouped":
		cfg.NoGroupedMsgs, chain = true, true
	case "lazy":
		cfg.Lazy = true
	case "ca-overlap":
		cfg.Overlap, chain = true, true
	case "ca-ungrouped-overlap":
		cfg.NoGroupedMsgs, cfg.Overlap, chain = true, true, true
	case "lazy-overlap":
		cfg.Lazy, cfg.Overlap = true, true
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	b.installPool(forcedWorkers)
	a.run(b, steps, chain)
	return map[string][]float64{
		"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux),
	}, b
}

// TestChainExecZeroAlloc: steady-state execution of a cached-plan chain
// allocates nothing — serially and through a forced multi-worker pool. The
// first executions populate the plan cache and its exchange schedules and
// size the Backend scratch; thereafter signature building, plan lookup,
// schedule replay, fork dispatch and loop execution all run out of
// preallocated state.
func TestChainExecZeroAlloc(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
		Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Loops are prebuilt: core.NewLoop allocates and a real application
	// constructs its loops once, not per execution.
	lUpdate := core.NewLoop(kUpdate, a.edges,
		core.ArgDat(a.res, 0, a.e2n, core.Inc), core.ArgDat(a.res, 1, a.e2n, core.Inc),
		core.ArgDat(a.pres, 0, a.e2n, core.Read), core.ArgDat(a.pres, 1, a.e2n, core.Read))
	lFlux := core.NewLoop(kFlux, a.edges,
		core.ArgDat(a.flux, 0, a.e2n, core.Inc), core.ArgDat(a.flux, 1, a.e2n, core.Inc),
		core.ArgDat(a.res, 0, a.e2n, core.Read), core.ArgDat(a.res, 1, a.e2n, core.Read),
		core.ArgDatDirect(a.ew, core.Read))
	window := func() {
		b.ChainBegin("synth")
		b.ParLoop(lUpdate)
		b.ParLoop(lFlux)
		b.ChainEnd()
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", forcedWorkers}} {
		t.Run(tc.name, func(t *testing.T) {
			b.installPool(tc.workers)
			// Warm up: populate the plan cache, build the steady-state
			// exchange schedule, and size every scratch buffer.
			for i := 0; i < 3; i++ {
				window()
			}
			if n := testing.AllocsPerRun(10, window); n != 0 {
				t.Fatalf("cached-plan chain execution allocates %v per run, want 0", n)
			}
		})
	}
	if hits, misses, _ := b.PlanCacheStats(); misses != 1 || hits < 20 {
		t.Fatalf("plan cache hits=%d misses=%d; the measured windows must replay one cached plan", hits, misses)
	}
}

// BenchmarkPoolDispatch1024 measures the fork/join overhead of dispatching
// 1024 simulated ranks through the persistent pool — the oversubscribed
// regime (ranks >> cores) where the replaced goroutine-per-rank fan-out
// paid 1024 goroutine spawns per fork point. Per-rank work is trivial, so
// ns/op is almost pure dispatch cost.
func BenchmarkPoolDispatch1024(b *testing.B) {
	p := newRankPool(forcedWorkers)
	defer p.close()
	sink := make([]int64, 1024)
	f := func(w, r int) { sink[r]++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.forEach(1024, f)
	}
}

// BenchmarkGoroutinePerRank1024 is the baseline BenchmarkPoolDispatch1024
// replaces: one goroutine per rank per fork, the executor's previous shape.
func BenchmarkGoroutinePerRank1024(b *testing.B) {
	sink := make([]int64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(1024)
		for r := 0; r < 1024; r++ {
			go func(r int) {
				defer wg.Done()
				sink[r]++
			}(r)
		}
		wg.Wait()
	}
}
