package bench

// overlap.go is the dedicated study of the overlap-capable task-graph chain
// executor (internal/cluster/taskgraph.go): the same comm-bound MG-CFD
// synthetic loop-chain configuration runs once bulk-synchronous and once
// overlapped, and the experiment reports virtual time, receiver-observed
// wait, hidden in-flight time and dat-checksum equality for both modes. The
// machine-readable OverlapRecord backs the CI smoke assertions: checksums
// must match bitwise, the overlapped run must hide a positive amount of
// communication, and its makespan must not exceed the bulk run's.
//
// Like the ablations, this study pins its knobs: faults, autotuning and
// checkpoint/resume are deliberately excluded so the two runs differ in the
// delivery pipeline alone.

import (
	"fmt"

	"op2ca/internal/cluster"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// OverlapRecord is the machine-readable result of the overlap experiment
// (the -json document's overlap field).
type OverlapRecord struct {
	Ranks int `json:"ranks"`
	Loops int `json:"loops"`
	// BulkSeconds and OverlapSeconds are the measured makespans of the two
	// modes over the same workload.
	BulkSeconds    float64 `json:"bulk_seconds"`
	OverlapSeconds float64 `json:"overlap_seconds"`
	// HiddenSeconds is the overlapped run's total in-flight message time
	// hidden behind computation; BulkHiddenSeconds the bulk run's.
	HiddenSeconds     float64 `json:"hidden_seconds"`
	BulkHiddenSeconds float64 `json:"bulk_hidden_seconds"`
	// WaitSeconds and BulkWaitSeconds are the receiver-observed waits.
	WaitSeconds     float64 `json:"wait_seconds"`
	BulkWaitSeconds float64 `json:"bulk_wait_seconds"`
	// ChecksumsEqual records the equivalence check: the two modes' final
	// dat checksums are bitwise identical.
	ChecksumsEqual bool `json:"checksums_equal"`
}

// overlapRun is one mode's measurement.
type overlapRun struct {
	clock, wait, hidden float64
	checksum            string
}

// OverlapStudy measures the task-graph executor against the bulk-synchronous
// exchange on a communication-bound configuration: the 8M-class mesh spread
// over the 64-paper-node ARCHER2 rank count (the strong-scaling regime where
// the paper's communication dominates its computation), 8 chained loops.
func OverlapStudy(c Config) *Table {
	const paperNodes = 64
	const nchains = 4
	ranks := c.ranksFor(paperNodes, archer().RanksPerNode)
	m := mesh.RotorForNodes(c.Nodes8M)
	h := mesh.NewHierarchy(m, 3, true)
	assign := partition.KWay(m.NodeAdjacency(), ranks)

	measure := func(overlap bool) overlapRun {
		mode := "bulk"
		if overlap {
			mode = "overlap"
		}
		label := fmt.Sprintf("overlap-study %s mesh=%d ranks=%d loops=%d",
			mode, c.Nodes8M, ranks, 2*nchains)
		// The hidden-wait accounting reads message edges, so the run is
		// always traced — on the invocation's tracer when present (its
		// epochs keep backends separate), else on a private one.
		tr := c.Tracer
		if tr == nil {
			tr = obs.New()
		}
		app := mgcfd.New(h)
		syn := mgcfd.NewSynthetic(app)
		b, err := cluster.New(cluster.Config{
			Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: ranks,
			Depth: 2, MaxChainLen: 2 * nchains, CA: true,
			Machine: archer(), Parallel: c.Parallel, Tracer: tr,
			Overlap: overlap,
		})
		if err != nil {
			panic("bench: " + err.Error())
		}
		app.Init(b)
		for it := 0; it < c.Iters; it++ {
			syn.Run(b, nchains, true)
			app.Cycle(b)
		}
		r := overlapRun{clock: b.MaxClock(), checksum: b.ChecksumDats()}
		if p := b.Profile(); p != nil {
			for _, cc := range p.Comm {
				r.wait += cc.Wait
				r.hidden += cc.WaitHidden
			}
		}
		c.observe(label, b)
		return r
	}
	bulk := measure(false)
	ov := measure(true)

	rec := &OverlapRecord{
		Ranks: ranks, Loops: 2 * nchains,
		BulkSeconds: bulk.clock, OverlapSeconds: ov.clock,
		HiddenSeconds: ov.hidden, BulkHiddenSeconds: bulk.hidden,
		WaitSeconds: ov.wait, BulkWaitSeconds: bulk.wait,
		ChecksumsEqual: bulk.checksum == ov.checksum,
	}
	if c.OverlapSink != nil {
		c.OverlapSink(rec)
	}

	equal := "equal"
	if !rec.ChecksumsEqual {
		equal = "DIFFER"
	}
	return &Table{
		Title:  "Overlap: task-graph chain executor vs bulk-synchronous exchange (MG-CFD synthetic, ARCHER2)",
		Header: []string{"Mode", "t(s)", "wait(s)", "hidden(s)"},
		Rows: [][]string{
			{"bulk", f6(bulk.clock), f6(bulk.wait), f6(bulk.hidden)},
			{"overlap", f6(ov.clock), f6(ov.wait), f6(ov.hidden)},
		},
		Notes: []string{
			fmt.Sprintf("%d ranks, %d chained loops, %d iterations; dat checksums %s; gain %.2f%%",
				ranks, 2*nchains, c.Iters, equal, gain(bulk.clock, ov.clock)),
			"hidden = in-flight message time overlapped with computation (charged to no wait cause)",
		},
	}
}
