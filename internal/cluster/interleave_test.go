package cluster

import (
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestInterleavedChainsAndLoops exercises the paper's "key new feature":
// standard loops interspersed with selected CA loop-chains in one program.
// Two differently named chains and standalone loops alternate; results must
// match the sequential reference and both chains must run with CA.
func TestInterleavedChainsAndLoops(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	build := func() (*core.Program, []core.Loop) {
		p := core.NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		edges := p.DeclSet(m.NEdges, "edges")
		e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
		a := p.DeclDat(nodes, 1, nil, "a")
		bd := p.DeclDat(nodes, 1, nil, "b")
		cd := p.DeclDat(nodes, 1, nil, "c")
		for i := 0; i < nodes.Size; i++ {
			a.Data[i] = float64(i%7 - 3)
		}
		inc := func(dst, src *core.Dat) core.Loop {
			k := &core.Kernel{Name: "il_" + dst.Name + src.Name, Flops: 4, MemBytes: 64,
				Fn: func(v [][]float64) {
					v[0][0] += v[2][0]
					v[1][0] -= v[3][0]
				}}
			return core.NewLoop(k, edges,
				core.ArgDat(dst, 0, e2n, core.Inc), core.ArgDat(dst, 1, e2n, core.Inc),
				core.ArgDat(src, 0, e2n, core.Read), core.ArgDat(src, 1, e2n, core.Read))
		}
		scale := core.NewLoop(&core.Kernel{Name: "il_scale", Flops: 2, MemBytes: 32,
			Fn: func(v [][]float64) { v[0][0] *= 0.5 }}, nodes,
			core.ArgDatDirect(cd, core.ReadWrite))
		return p, []core.Loop{inc(bd, a), inc(cd, bd), scale, inc(a, cd), inc(bd, a)}
	}

	run := func(b core.Backend, loops []core.Loop) {
		for t := 0; t < 2; t++ {
			b.ChainBegin("first")
			b.ParLoop(loops[0])
			b.ParLoop(loops[1])
			b.ChainEnd()
			b.ParLoop(loops[2]) // standalone direct loop between chains
			b.ChainBegin("second")
			b.ParLoop(loops[3])
			b.ParLoop(loops[4])
			b.ChainEnd()
		}
	}

	pRef, refLoops := build()
	run(core.NewSeq(), refLoops)

	p, loops := build()
	b, err := New(Config{
		Prog: p, Primary: p.SetByName("nodes"),
		Assign: partition.KWay(m.NodeAdjacency(), 5), NParts: 5,
		Depth: 3, MaxChainLen: 2, CA: true, Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	run(b, loops)

	for _, name := range []string{"a", "b", "c"} {
		got := b.GatherDat(p.DatByName(name))
		want := pRef.DatByName(name).Data
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %g, want %g", name, i, got[i], want[i])
			}
		}
	}
	for _, name := range []string{"first", "second"} {
		cs := b.Stats().Chains[name]
		if cs == nil || cs.CAExecutions != 2 {
			t.Errorf("chain %s: %+v, want 2 CA executions", name, cs)
		}
	}
	if ls := b.Stats().Loops["il_scale"]; ls == nil || ls.Executions != 2 {
		t.Error("standalone loop not recorded outside chains")
	}
}

// TestScatterDatRestoresValidity: after ScatterDat, halos are fresh and the
// next reading loop must not exchange.
func TestScatterDatRestoresValidity(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	y := p.DeclDat(nodes, 1, nil, "y")
	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 4), NParts: 4, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirty := core.NewLoop(&core.Kernel{Name: "sv_dirty", Fn: func(v [][]float64) {
		v[0][0] += 1
	}}, nodes, core.ArgDatDirect(x, core.ReadWrite))
	read := core.NewLoop(&core.Kernel{Name: "sv_read", Fn: func(v [][]float64) {
		v[0][0] += v[1][0]
	}}, edges, core.ArgDat(y, 0, e2n, core.Inc), core.ArgDat(x, 1, e2n, core.Read))

	b.ParLoop(dirty)
	fresh := make([]float64, m.NNodes)
	for i := range fresh {
		fresh[i] = float64(i)
	}
	b.ScatterDat(x, fresh)
	b.ParLoop(read)
	if msgs := b.Stats().Loops["sv_read"].Msgs; msgs != 0 {
		t.Fatalf("read after ScatterDat sent %d messages, want 0 (halos fresh)", msgs)
	}
	// And the data the loop consumed is the scattered data.
	want := make([]float64, m.NNodes)
	for e := 0; e < m.NEdges; e++ {
		want[m.EdgeNodes[2*e]] += fresh[m.EdgeNodes[2*e+1]]
	}
	got := b.GatherDat(y)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestLazyParallelComposition: lazy chain detection composed with parallel
// rank execution must equal the serial eager result.
func TestLazyParallelComposition(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	want := seqResult(m, 2)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes,
		Assign: partition.KWay(m.NodeAdjacency(), 6), NParts: 6,
		Depth: 3, MaxChainLen: 5, CA: true, Lazy: true, Parallel: true,
		Machine: machine.Cirrus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 2, false)
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "lazy-parallel", got, want)
}
