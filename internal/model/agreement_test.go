package model_test

// agreement_test.go pins the model against the network simulator across
// the machine presets: the analytic per-message and per-exchange prices
// (model.Net) must track the event-driven delivery (netsim.Network) built
// from the same machine parameters, handshake included. Before the
// Handshake field existed, netsim hardcoded the rendezvous surcharge as
// 2*Latency while a preset could only express it through the model side —
// the drift this file exists to prevent.

import (
	"math"
	"testing"

	"op2ca/internal/machine"
	"op2ca/internal/model"
	"op2ca/internal/netsim"
)

// nets builds the two pricing views from one machine preset, the same way
// the cluster backend does (cluster.Backend.modelNet).
func nets(m *machine.Machine) (netsim.Network, model.Net) {
	nw := netsim.Network{
		Latency: m.Latency, Bandwidth: m.Bandwidth,
		EagerThreshold: m.EagerThreshold, Handshake: m.Handshake,
	}
	mn := model.Net{
		L: m.Latency, B: m.Bandwidth,
		EagerThreshold: float64(m.EagerThreshold), Handshake: m.HandshakeTime(),
	}
	return nw, mn
}

// TestMsgTimeMatchesNetsim sweeps message sizes across every preset's
// eager boundary: model.Net.MsgTime and netsim.Network.MessageTime must
// agree everywhere, including at exactly the threshold (still eager) and
// one byte above it (rendezvous).
func TestMsgTimeMatchesNetsim(t *testing.T) {
	for _, m := range []*machine.Machine{machine.ARCHER2(), machine.Cirrus(), machine.Laptop()} {
		nw, mn := nets(m)
		sizes := []int64{0, 1, 512, 1 << 20}
		if th := m.EagerThreshold; th > 0 {
			sizes = append(sizes, th-1, th, th+1)
		}
		for _, b := range sizes {
			got := mn.MsgTime(float64(b))
			want := nw.MessageTime(b)
			if math.Abs(got-want) > 1e-15 {
				t.Errorf("%s: MsgTime(%d) = %g, netsim MessageTime = %g", m.Name, b, got, want)
			}
		}
	}
}

// TestCommTimeMatchesNetsimDelivery prices a k-message single-sender
// exchange both ways in both delivery modes: model.Net.CommTime must
// equal the last netsim arrival (relative to the post time) under Deliver
// for bulk and DeliverOverlapped for overlapped.
func TestCommTimeMatchesNetsimDelivery(t *testing.T) {
	const k = 4
	for _, m := range []*machine.Machine{machine.ARCHER2(), machine.Cirrus(), machine.Laptop()} {
		nw, mn := nets(m)
		sizes := []int64{100, 1 << 17}
		if th := m.EagerThreshold; th > 0 {
			sizes = append(sizes, th, th+1)
		}
		for _, b := range sizes {
			msgs := make([]netsim.Message, k)
			for i := range msgs {
				msgs[i] = netsim.Message{From: 0, To: 1, Bytes: b}
			}
			post := []float64{0, 0}
			for _, overlap := range []bool{false, true} {
				arr := nw.Deliver(post, msgs)
				if overlap {
					arr = nw.DeliverOverlapped(post, msgs)
				}
				mo := mn
				mo.Overlap = overlap
				got := mo.CommTime(k, float64(b))
				want := arr[k-1]
				if math.Abs(got-want) > 1e-12*math.Max(1, want) {
					t.Errorf("%s overlap=%v bytes=%d: CommTime = %g, netsim last arrival = %g",
						m.Name, overlap, b, got, want)
				}
			}
		}
	}
}

// TestPresetHandshakeConsistency pins each preset's declared Handshake
// against the resolved HandshakeTime and both pricing sides' view of it:
// a preset that sets Handshake explicitly must see that exact surcharge
// in netsim and in the model, and a preset leaving it zero must resolve
// to the 2*Latency default in both.
func TestPresetHandshakeConsistency(t *testing.T) {
	for _, m := range []*machine.Machine{machine.ARCHER2(), machine.Cirrus(), machine.Laptop()} {
		want := m.Handshake
		if want == 0 {
			want = 2 * m.Latency
		}
		if got := m.HandshakeTime(); got != want {
			t.Errorf("%s: HandshakeTime = %g, want %g", m.Name, got, want)
		}
		if m.EagerThreshold == 0 {
			continue // no rendezvous regime to compare
		}
		nw, mn := nets(m)
		if got := nw.HandshakeTime(m.EagerThreshold + 1); got != want {
			t.Errorf("%s: netsim handshake = %g, want %g", m.Name, got, want)
		}
		step := mn.MsgTime(float64(m.EagerThreshold+1)) - mn.MsgTime(float64(m.EagerThreshold)) -
			1/mn.B
		if math.Abs(step-want) > 1e-12 {
			t.Errorf("%s: model handshake step = %g, want %g", m.Name, step, want)
		}
	}
}
