package cluster

import (
	"op2ca/internal/core"
	"op2ca/internal/model"
	"op2ca/internal/obs"
)

// runStandard executes one loop the standard OP2 way (Algorithm 1): exchange
// dirty depth-1 halos, run core iterations while messages are in flight,
// wait, then run the remaining owned and import-execute iterations.
func (b *Backend) runStandard(l core.Loop, chainName string) {
	t0 := b.maxClock()
	m := b.cfg.Machine
	indirect := l.HasIndirection()

	specs := b.filterNeeds(standardNeeds(l))
	res := b.doExchange(specs, false)
	if ct := b.tuneSampling; ct != nil && chainName == ct.chain {
		ct.noteExchange(specs, res.sendBytes, m.PackRate)
	}

	gbl := b.prepareGlobals(l)
	g := m.IterTime(l.Kernel)
	launch := m.LaunchOverhead()

	// Per-rank phase arrays and fork parameters live in Backend scratch:
	// the fork function is prebuilt (no closure per call) and the arrays
	// are reused across executions (no allocation per call).
	sc := &b.scr
	coreEnd, end, post := sc.stdCoreEnd, sc.stdEnd, sc.stdPost
	exchanging := len(res.msgs) > 0
	sc.stdLoop, sc.stdIndirect, sc.stdExchanging = l, indirect, exchanging
	sc.stdSendBytes, sc.stdGbl = res.sendBytes, gbl
	b.forEachRank(b.fnStdRank)
	sc.stdGbl = nil

	traceKey := l.Kernel.Name
	if chainName != "" {
		traceKey = chainName + "/" + l.Kernel.Name
	}
	// Per-loop exchanges are the bottom rung of the degradation ladder:
	// messages that exhaust the retransmission budget are treated as
	// delivered by a reliable transport at the final attempt's arrival
	// (counted as giveups), and execution proceeds.
	// Always bulk delivery (never overlapped): per-loop exchanges are the
	// probe/calibration baseline, and their spans must decompose as
	// h*L + m/B for the network fit (see taskgraph.go).
	d := b.deliver(post, res.msgs, traceKey, b.maxRetries, false)
	arrivals := d.arrivals
	recvLast := sc.stdRecvLast
	clear(recvLast)
	for i, msg := range res.msgs {
		if arrivals[i] > recvLast[msg.To] {
			recvLast[msg.To] = arrivals[i]
		}
	}
	gpuDirect := b.cfg.GPUDirect && m.GPU != nil

	traced := b.tracer.Enabled()
	var inbound [][]int
	var sendStarts []float64
	if traced {
		if exchanging {
			sendStarts = sendStartTimes(post, res.msgs, arrivals)
			b.emitPackSpans(traceKey, res.sendBytes)
			b.emitSendSpans(traceKey, sendStarts, res.msgs, arrivals)
			inbound = inboundIndex(b.cfg.NParts, res.msgs)
		}
	}
	for r := 0; r < b.cfg.NParts; r++ {
		var t float64
		if gpuDirect {
			// GPUDirect transfers do not overlap with compute kernels:
			// the whole loop waits for the exchange.
			t = post[r]
			if recvLast[r] > t {
				t = recvLast[r]
			}
			if traced && exchanging {
				b.emitWaitSpans(traceKey, r, post[r], inbound[r], res.msgs, arrivals, post, sendStarts)
			}
			start := t
			t += launch + g*float64(end[r])
			if exchanging && end[r] > coreEnd[r] {
				t += launch
			}
			if traced {
				coreT := start + launch + g*float64(coreEnd[r])
				if coreEnd[r] > 0 {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Compute, l.Kernel.Name, start, coreT, 0)
				}
				if end[r] > coreEnd[r] {
					b.tracer.Emit(int32(r), obs.TrackExec, obs.Redundant, l.Kernel.Name, coreT, t, 0)
				}
			}
			b.clock[r] = t
			continue
		}
		afterCore := post[r] + launch + g*float64(coreEnd[r])
		if traced && coreEnd[r] > 0 {
			b.tracer.Emit(int32(r), obs.TrackExec, obs.Compute, l.Kernel.Name, post[r], afterCore, 0)
		}
		t = afterCore
		if recvLast[r] > 0 {
			if traced && m.GPU != nil {
				m.GPU.TraceStage(b.tracer, int32(r), traceKey+" h2d", recvLast[r], res.recvBytes[r])
			}
			if ready := recvLast[r] + m.StageTime(res.recvBytes[r]); ready > t {
				t = ready
			}
		}
		if traced && exchanging {
			b.emitWaitSpans(traceKey, r, afterCore, inbound[r], res.msgs, arrivals, post, sendStarts)
		}
		if halo := end[r] - coreEnd[r]; halo > 0 {
			haloStart := t
			if exchanging {
				t += launch // second kernel launch for the halo region
			}
			t += g * float64(halo)
			if traced {
				b.tracer.Emit(int32(r), obs.TrackExec, obs.Redundant, l.Kernel.Name, haloStart, t, 0)
			}
		}
		b.clock[r] = t
	}

	var reduceTime float64
	if bytes := b.reduceGlobals(l, gbl); bytes > 0 {
		reduceTime = b.net.ReduceTime(b.cfg.NParts, bytes)
		t := b.maxClock() + reduceTime
		if traced {
			// The last rank to enter the allreduce binds everyone: emit a
			// reduce edge from the straggler to each other rank so the
			// critical path can cross onto its timeline.
			rm := 0
			for r := 1; r < len(b.clock); r++ {
				if b.clock[r] > b.clock[rm] {
					rm = r
				}
			}
			for r := range b.clock {
				b.tracer.Emit(int32(r), obs.TrackExec, obs.Reduce, traceKey, b.clock[r], t, bytes)
				if r != rm {
					b.tracer.EmitEdge(obs.Edge{
						Kind: obs.EdgeReduce, Name: traceKey, From: int32(rm), To: int32(r),
						Post: b.clock[rm], Begin: b.clock[rm], End: t,
						Ready: b.clock[r], Bytes: bytes,
					})
				}
			}
		}
		for r := range b.clock {
			b.clock[r] = t
		}
	}

	b.updateValidity(l)
	b.recordLoopStats(l, chainName, res, coreEnd, end, t0, g, reduceTime)
}

// stdRank is runStandard's per-rank fork body: one canonical-order pass
// over the loop's full executable range (the core/halo split shapes the
// virtual-time overlap only, never the order data effects apply in — see
// runLoopOnRank), recording the split bounds and the rank's send-post
// time. Parameters arrive via Backend scratch, published before the fork.
func (b *Backend) stdRank(w, r int) {
	sc := &b.scr
	l := sc.stdLoop
	m := b.cfg.Machine
	sl := b.layouts[r].SetL(l.Set)
	e := sl.NOwned
	if sc.stdIndirect {
		e = sl.ExecEnd(1)
	}
	c := e
	if sc.stdExchanging && sl.CorePrefix(0) < e {
		c = sl.CorePrefix(0)
	}
	var gs [][]float64
	if sc.stdGbl != nil {
		gs = sc.stdGbl[r]
	}
	b.runLoopOnRank(w, r, l, 0, e, gs)
	sc.stdCoreEnd[r], sc.stdEnd[r] = c, e
	post := b.clock[r] + float64(sc.stdSendBytes[r])/m.PackRate
	if !b.cfg.GPUDirect {
		post += m.StageTime(sc.stdSendBytes[r])
	}
	sc.stdPost[r] = post
}

func (b *Backend) recordLoopStats(l core.Loop, chainName string, res exchangeResult,
	coreEnd, end []int, t0, g, reduceTime float64) {
	key := l.Kernel.Name
	if chainName != "" {
		// Loops of a chain executed per-loop (CA off or infeasible) are
		// attributed to the chain, so per-chain comparisons line up.
		key = chainName + "/" + l.Kernel.Name
	}
	ls := b.stats.loop(key)
	ls.Executions++
	ls.Msgs += int64(len(res.msgs))
	ls.DatsExchanged += int64(res.nDats)
	var execMaxMsg int64
	execMaxNeigh := 0
	neigh, perRank := b.scr.neigh, b.scr.perRank
	clear(neigh)
	clear(perRank)
	for _, msg := range res.msgs {
		ls.Bytes += msg.Bytes
		if msg.Bytes > execMaxMsg {
			execMaxMsg = msg.Bytes
		}
		if !neigh[[2]int32{msg.From, msg.To}] {
			neigh[[2]int32{msg.From, msg.To}] = true
			perRank[msg.From]++
		}
	}
	if execMaxMsg > ls.MaxMsgBytes {
		ls.MaxMsgBytes = execMaxMsg
	}
	for _, n := range perRank {
		if n > execMaxNeigh {
			execMaxNeigh = n
		}
	}
	if execMaxNeigh > ls.MaxNeighbours {
		ls.MaxNeighbours = execMaxNeigh
	}
	maxCore, maxHalo := 0, 0
	for r := range coreEnd {
		ls.CoreIters += int64(coreEnd[r])
		ls.HaloIters += int64(end[r] - coreEnd[r])
		if coreEnd[r] > maxCore {
			maxCore = coreEnd[r]
		}
		if h := end[r] - coreEnd[r]; h > maxHalo {
			maxHalo = h
		}
	}
	ls.Time += b.maxClock() - t0
	// Equation (1) prediction from this execution's measured parameters:
	// the per-execution building block of the model-vs-measured report.
	ls.Predicted += reduceTime + model.TOp2Loop(model.LoopParams{
		G: g, CoreIters: float64(maxCore), HaloIters: float64(maxHalo),
		NDats: float64(res.nDats), Neighbours: float64(execMaxNeigh),
		MsgBytes: float64(execMaxMsg),
	}, b.modelNet(0))
	if ct := b.tuneSampling; ct != nil && chainName == ct.chain {
		ct.noteLoop(l.Kernel.Name, model.LoopParams{
			CoreIters: float64(maxCore), HaloIters: float64(maxHalo),
			NDats: float64(res.nDats), Neighbours: float64(execMaxNeigh),
			MsgBytes: float64(execMaxMsg),
		}, b.maxClock()-t0-reduceTime)
	}
}

var _ core.Backend = (*Backend)(nil)
