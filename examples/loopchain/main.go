// Loopchain: the paper's Section 4.1.1 synthetic loop-chain study.
//
// Builds MG-CFD over a rotor mesh, attaches the extendable synthetic chain
// (pairs of update/edge_flux loops with the increment-then-indirect-read
// pattern), and sweeps the chain length under both back-ends, printing the
// measured virtual times, message counters, and the analytic model's
// prediction (Equations (1)-(3)) side by side.
//
//	go run ./examples/loopchain [-ranks 24] [-mesh-nodes 30000]
package main

import (
	"flag"
	"fmt"
	"os"

	"op2ca/internal/cluster"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/model"
	"op2ca/internal/partition"
)

func main() {
	var (
		meshNodes = flag.Int("mesh-nodes", 24000, "approximate mesh node count")
		ranks     = flag.Int("ranks", 48, "simulated MPI ranks")
		iters     = flag.Int("iters", 3, "measured iterations per configuration")
	)
	flag.Parse()

	m := mesh.RotorForNodes(*meshNodes)
	h := mesh.NewHierarchy(m, 1, true) // chain study: no multigrid noise
	assign := partition.KWay(m.NodeAdjacency(), *ranks)
	mach := machine.ARCHER2()
	fmt.Printf("synthetic loop-chain study: %d nodes, %d edges, %d ranks, %s model\n\n",
		m.NNodes, m.NEdges, *ranks, mach.Name)
	fmt.Printf("%-7s  %-12s  %-12s  %-8s  %-10s  %-10s\n",
		"#loops", "OP2 t(s)", "CA t(s)", "gain%", "OP2 msgs", "CA msgs")

	for _, nchains := range []int{1, 2, 4, 8, 16} {
		var times [2]float64
		var msgs [2]int64
		for mode, caMode := range []bool{false, true} {
			app := mgcfd.New(h)
			syn := mgcfd.NewSynthetic(app)
			b, err := cluster.New(cluster.Config{
				Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: *ranks,
				Depth: 2, MaxChainLen: 2 * nchains, CA: caMode,
				Machine: mach, Parallel: true,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			app.Init(b)
			syn.Run(b, nchains, caMode) // warm-up: dirty the halos
			t0 := b.MaxClock()
			for it := 0; it < *iters; it++ {
				syn.Run(b, nchains, caMode)
			}
			times[mode] = (b.MaxClock() - t0) / float64(*iters)
			for _, ls := range b.Stats().Loops {
				msgs[mode] += ls.Msgs
			}
			for _, cs := range b.Stats().Chains {
				msgs[mode] += cs.Msgs
			}
		}
		gain := (times[0] - times[1]) / times[0] * 100
		fmt.Printf("%-7d  %-12.6f  %-12.6f  %-8.2f  %-10d  %-10d\n",
			2*nchains, times[0], times[1], gain, msgs[0], msgs[1])
	}

	// Analytic model read-out for the largest configuration, using round
	// numbers in the spirit of Section 3.2.
	fmt.Println("\nanalytic model (Equations (1)-(3)) for the 32-loop chain:")
	edgesPerRank := float64(m.NEdges) / float64(*ranks)
	g := 12e-9 // per-iteration time of the synthetic kernels on ARCHER2
	op2Loop := model.LoopParams{
		G: g, CoreIters: 0.85 * edgesPerRank, HaloIters: 0.15 * edgesPerRank,
		NDats: 1, Neighbours: 8, MsgBytes: 4096,
	}
	op2 := make([]model.LoopParams, 32)
	ca := model.ChainParams{Neighbours: 8, GroupedBytes: 4 * 4096}
	for i := range op2 {
		op2[i] = op2Loop
		ca.Loops = append(ca.Loops, model.LoopParams{
			G: g, CoreIters: 0.6 * edgesPerRank, HaloIters: 0.55 * edgesPerRank,
		})
	}
	net := model.Net{L: mach.Latency, B: mach.Bandwidth, C: 4 * 4096 / mach.PackRate}
	comp := model.Compare(op2, ca, net)
	fmt.Printf("  modelled gain %.1f%%, comm reduction %.1f%%, computation increase %.1f%%\n",
		comp.GainPct, comp.CommReducPct, comp.CompIncPct)
	fmt.Printf("  break-even grouped message size: %.0f bytes per neighbour\n",
		model.BreakEvenNeighbourBytes(op2, ca, net))
}
