package core

import "fmt"

// Seq is the sequential reference backend. It executes loops directly over
// the global mesh with no partitioning or halo exchange; distributed
// back-ends are validated against it.
type Seq struct {
	// LoopsRun counts executed loops, for instrumentation.
	LoopsRun int
	// ItersRun counts executed iterations.
	ItersRun int64

	inChain bool
	views   [][]float64
}

// NewSeq returns a sequential reference backend.
func NewSeq() *Seq { return &Seq{} }

// Name implements Backend.
func (s *Seq) Name() string { return "seq" }

// ChainBegin implements Backend. The sequential backend executes chained
// loops exactly like unchained ones; demarcation is only validated.
func (s *Seq) ChainBegin(name string) {
	if s.inChain {
		panic(fmt.Sprintf("core: nested loop-chain %q", name))
	}
	s.inChain = true
}

// ChainEnd implements Backend.
func (s *Seq) ChainEnd() {
	if !s.inChain {
		panic("core: ChainEnd without ChainBegin")
	}
	s.inChain = false
}

// ParLoop implements Backend by applying the kernel to every element of the
// loop's iteration set.
func (s *Seq) ParLoop(l Loop) {
	if err := l.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	if s.inChain && l.HasGlobalReduction() {
		panic(fmt.Sprintf("core: loop %q with global reduction inside a loop-chain", l.Kernel.Name))
	}
	nv := l.NumViews()
	if cap(s.views) < nv {
		s.views = make([][]float64, nv)
	}
	views := s.views[:nv]
	n := l.Set.Size
	for iter := 0; iter < n; iter++ {
		gatherViews(l, iter, views)
		l.Kernel.Fn(views)
	}
	s.LoopsRun++
	s.ItersRun += int64(n)
}

// gatherViews fills views with the data windows of the loop's arguments at
// the given iteration; vector arguments expand to one view per map slot.
// Direct and indirect dat views alias the dat storage; global views alias
// the global buffer.
func gatherViews(l Loop, iter int, views [][]float64) {
	vi := 0
	for _, a := range l.Args {
		switch {
		case a.IsGlobal():
			views[vi] = a.Gbl
			vi++
		case a.Indirect() && a.Idx == VecAll:
			for _, e := range a.Map.Targets(iter) {
				views[vi] = a.Dat.Data[int(e)*a.Dat.Dim : (int(e)+1)*a.Dat.Dim]
				vi++
			}
		case a.Indirect():
			e := int(a.Map.Values[iter*a.Map.Arity+a.Idx])
			views[vi] = a.Dat.Data[e*a.Dat.Dim : (e+1)*a.Dat.Dim]
			vi++
		default:
			views[vi] = a.Dat.Data[iter*a.Dat.Dim : (iter+1)*a.Dat.Dim]
			vi++
		}
	}
}
