package cluster

import (
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestLazyMatchesSeq runs the mini-app WITHOUT explicit chain demarcation
// under lazy mode: the back-end must auto-detect chains at synchronisation
// points and still match the sequential reference exactly.
func TestLazyMatchesSeq(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	want := seqResult(m, 2)

	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes,
		Assign: partition.KWay(m.NodeAdjacency(), 5), NParts: 5,
		Depth: 3, MaxChainLen: 6, CA: true, Lazy: true,
		Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 2, false) // no explicit chains: lazy mode finds them
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "lazy", got, want)

	cs := b.Stats().Chains["lazy"]
	if cs == nil || cs.CAExecutions == 0 {
		t.Fatalf("lazy mode never executed an automatic CA chain: %+v", cs)
	}
}

// TestLazyFlushTriggers checks the synchronisation points: global
// reductions, observations and queue capacity all flush the implicit chain.
func TestLazyFlushTriggers(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	y := p.DeclDat(nodes, 1, nil, "y")
	for i := range x.Data {
		x.Data[i] = float64(i%5 - 2)
	}
	inc := core.NewLoop(&core.Kernel{Name: "lz_inc", Flops: 2, MemBytes: 32,
		Fn: func(a [][]float64) { a[0][0] += a[1][0] }}, edges,
		core.ArgDat(y, 0, e2n, core.Inc), core.ArgDat(x, 1, e2n, core.Read))

	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 4, MaxChainLen: 3, CA: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}

	// Queue-capacity flush: MaxChainLen loops trigger execution.
	b.ParLoop(inc)
	b.ParLoop(inc)
	if got := b.stats.chain("lazy").Executions; got != 0 {
		t.Fatalf("flushed before capacity: %d", got)
	}
	b.ParLoop(inc)
	if got := b.stats.chain("lazy").Executions; got != 1 {
		t.Fatalf("capacity flush did not fire: %d", got)
	}

	// Global-reduction flush.
	b.ParLoop(inc)
	sum := []float64{0}
	b.ParLoop(core.NewLoop(&core.Kernel{Name: "lz_sum", Fn: func(a [][]float64) {
		a[1][0] += a[0][0]
	}}, nodes, core.ArgDatDirect(y, core.Read), core.ArgGbl(sum, core.Inc)))
	if got := len(b.lazyQ); got != 0 {
		t.Fatalf("reduction did not flush the queue: %d loops pending", got)
	}

	// Observation flush: queue one loop, then GatherDat must flush.
	b.ParLoop(inc)
	if len(b.lazyQ) != 1 {
		t.Fatal("loop not queued")
	}
	_ = b.GatherDat(y)
	if len(b.lazyQ) != 0 {
		t.Fatal("GatherDat did not flush the lazy queue")
	}

	// Explicit chain boundary flush.
	b.ParLoop(inc)
	b.ChainBegin("explicit")
	if len(b.lazyQ) != 0 {
		t.Fatal("ChainBegin did not flush the lazy queue")
	}
	b.ParLoop(inc)
	b.ParLoop(inc)
	b.ChainEnd()
}

// TestLazyStatsCountEveryFlush: the "lazy" chain row must count every
// flush — single-loop flushes included — and track the min/max auto-
// detected chain length, not just whichever flush ran last.
func TestLazyStatsCountEveryFlush(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	y := p.DeclDat(nodes, 1, nil, "y")
	for i := range x.Data {
		x.Data[i] = float64(i%5 - 2)
	}
	inc := core.NewLoop(&core.Kernel{Name: "lz_len", Flops: 2, MemBytes: 32,
		Fn: func(a [][]float64) { a[0][0] += a[1][0] }}, edges,
		core.ArgDat(y, 0, e2n, core.Inc), core.ArgDat(x, 1, e2n, core.Read))

	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 2, MaxChainLen: 3, CA: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three flushes of decreasing length: 3 (capacity), 2 (observation),
	// 1 (observation, single-loop per-loop fallback).
	for i := 0; i < 3; i++ {
		b.ParLoop(inc)
	}
	b.ParLoop(inc)
	b.ParLoop(inc)
	_ = b.GatherDat(y)
	b.ParLoop(inc)
	_ = b.GatherDat(y)

	cs := b.stats.chain("lazy")
	if cs.Executions != 3 {
		t.Errorf("Executions = %d, want 3 (every flush counts, single-loop flushes included)", cs.Executions)
	}
	if cs.NLoopMin != 1 || cs.NLoopMax != 3 {
		t.Errorf("NLoopMin/NLoopMax = %d/%d, want 1/3", cs.NLoopMin, cs.NLoopMax)
	}
	if cs.NLoop != 1 {
		t.Errorf("NLoop = %d, want 1 (most recent flush)", cs.NLoop)
	}
	if cs.CAExecutions != 2 {
		t.Errorf("CAExecutions = %d, want 2 (the length-3 and length-2 chains)", cs.CAExecutions)
	}
	// The single-loop flush is attributed to the lazy chain like a chain
	// fallback, so its time lands on the chain row.
	if ls := b.stats.Loops["lazy/lz_len"]; ls == nil || ls.Executions != 1 {
		t.Errorf("single-loop flush not attributed to the lazy chain: %+v", ls)
	}
}

// TestLazyDepthOverflowFallsBack: an automatic chain needing more halo
// shells than built must fall back per-loop, not panic.
func TestLazyDepthOverflowFallsBack(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	q := make([]*core.Dat, 4)
	for i := range q {
		q[i] = p.DeclDat(nodes, 1, nil, "q"+string(rune('0'+i)))
	}
	k := &core.Kernel{Name: "lz_chain", Flops: 2, MemBytes: 32,
		Fn: func(a [][]float64) { a[0][0] += a[1][0] }}

	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 1, MaxChainLen: 4, CA: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// A 3-deep write->read dependency chain needs depth 3 > built 1.
	for i := 0; i < 3; i++ {
		b.ParLoop(core.NewLoop(k, edges,
			core.ArgDat(q[i+1], 0, e2n, core.Inc), core.ArgDat(q[i], 1, e2n, core.Read)))
	}
	b.FlushLazy()
	cs := b.stats.chain("lazy")
	if cs.Executions != 1 || cs.CAExecutions != 0 {
		t.Fatalf("deep automatic chain should fall back per-loop: %+v", cs)
	}
}

// TestGPUDirectSlowerThanStaging reproduces the paper's Section 3.3
// observation: for kernels heavy enough that core computation can hide the
// exchange, the staged PCIe pipeline (which overlaps with kernels) beats
// GPUDirect (which, as the paper measured, does not run simultaneously
// with compute kernels). For featherweight kernels the relation flips —
// GPUDirect saves the staging latencies and nothing needed hiding — which
// the test also checks.
func TestGPUDirectSlowerThanStaging(t *testing.T) {
	m := mesh.RotorForNodes(20000)
	assign := partition.KWay(m.NodeAdjacency(), 4)

	run := func(direct bool, k *core.Kernel) float64 {
		p := core.NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		edges := p.DeclSet(m.NEdges, "edges")
		e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
		x := p.DeclDat(nodes, 1, nil, "x")
		y := p.DeclDat(nodes, 1, nil, "y")
		b, err := New(Config{
			Prog: p, Primary: nodes, Assign: assign, NParts: 4,
			Depth: 2, MaxChainLen: 2, CA: true, GPUDirect: direct,
			Machine: machine.Cirrus(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 3; it++ {
			b.ChainBegin("gd")
			b.ParLoop(core.NewLoop(k, edges,
				core.ArgDat(y, 0, e2n, core.Inc), core.ArgDat(x, 1, e2n, core.Read)))
			b.ParLoop(core.NewLoop(k, edges,
				core.ArgDat(x, 0, e2n, core.Inc), core.ArgDat(y, 1, e2n, core.Read)))
			b.ChainEnd()
		}
		return b.MaxClock()
	}

	// A heavy flux-like kernel: cores hide the exchange, staging wins.
	heavy := &core.Kernel{Name: "gd_heavy", Flops: 3000, MemBytes: 6000,
		Fn: func(a [][]float64) { a[0][0] += a[1][0] }}
	staged := run(false, heavy)
	direct := run(true, heavy)
	if direct <= staged {
		t.Errorf("heavy kernels: GPUDirect (%.6fs) should be slower than the staging pipeline (%.6fs)",
			direct, staged)
	}

	// A featherweight kernel: nothing to hide, GPUDirect's saved staging
	// latencies win.
	light := &core.Kernel{Name: "gd_light", Flops: 2, MemBytes: 16,
		Fn: func(a [][]float64) { a[0][0] += a[1][0] }}
	staged = run(false, light)
	direct = run(true, light)
	if direct >= staged {
		t.Errorf("light kernels: GPUDirect (%.6fs) should beat staging (%.6fs)", direct, staged)
	}
}
