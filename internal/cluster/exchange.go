package cluster

import (
	"op2ca/internal/core"
	"op2ca/internal/halo"
	"op2ca/internal/netsim"
)

// exchangeSpec asks for halo shells of one dat: execute shells 1..execDepth
// and non-execute shells 1..nonexecDepth.
type exchangeSpec struct {
	dat          *core.Dat
	execDepth    int
	nonexecDepth int
}

// sendBuf is one packed message. Standard OP2 sends one buffer per
// (dat, halo kind, shell, neighbour); the CA back-end groups everything for
// one neighbour into a single buffer (datID < 0), the paper's Figure 8.
type sendBuf struct {
	from, to int32
	datID    int32 // -1 for grouped messages
	kind     int8  // 0 execute, 1 non-execute
	depth    int8  // shell index, 0-based
	vals     []float64
}

// exchangeResult summarises one exchange: the virtual-network messages (in
// per-sender serialisation order) and per-rank byte totals.
type exchangeResult struct {
	msgs      []netsim.Message
	bufs      []*sendBuf
	sendBytes []int64
	recvBytes []int64
	nDats     int
}

// doExchange packs, "transfers" and unpacks halo data for the given specs.
// The data movement is real (receivers' halo copies are overwritten with
// owners' current values); the returned result carries what the virtual
// network needs to charge time.
func (b *Backend) doExchange(specs []exchangeSpec, grouped bool) exchangeResult {
	if len(specs) == 0 {
		// Nothing to exchange: alias the permanently-zero byte counts
		// (callers only read them), so dirty-state-clean loops allocate
		// nothing.
		return exchangeResult{sendBytes: b.scr.emptyBytes, recvBytes: b.scr.emptyBytes}
	}
	res := exchangeResult{
		sendBytes: make([]int64, b.cfg.NParts),
		recvBytes: make([]int64, b.cfg.NParts),
		nDats:     len(specs),
	}

	// Pack.
	perRank := make([][]*sendBuf, b.cfg.NParts)
	b.forEachRank(func(w, r int) {
		var bufs []*sendBuf
		byDest := map[int32]*sendBuf{}
		for _, sp := range specs {
			sl := b.layouts[r].SetL(sp.dat.Set)
			local := b.dats[r][sp.dat.ID]
			dim := sp.dat.Dim
			pack := func(exports [][]halo.ExportList, depth int, kind int8) {
				for d := 0; d < depth; d++ {
					for _, ex := range exports[d] {
						if len(ex.Locals) == 0 {
							continue
						}
						var buf *sendBuf
						if grouped {
							buf = byDest[ex.Rank]
							if buf == nil {
								buf = &sendBuf{from: int32(r), to: ex.Rank, datID: -1}
								byDest[ex.Rank] = buf
								bufs = append(bufs, buf)
							}
						} else {
							buf = &sendBuf{from: int32(r), to: ex.Rank,
								datID: int32(sp.dat.ID), kind: kind, depth: int8(d)}
							bufs = append(bufs, buf)
						}
						for _, loc := range ex.Locals {
							buf.vals = append(buf.vals, local[int(loc)*dim:(int(loc)+1)*dim]...)
						}
					}
				}
			}
			pack(sl.ExportExec, sp.execDepth, 0)
			pack(sl.ExportNonexec, sp.nonexecDepth, 1)
		}
		perRank[r] = bufs
	})
	for r := 0; r < b.cfg.NParts; r++ {
		for _, buf := range perRank[r] {
			bytes := int64(len(buf.vals) * 8)
			res.bufs = append(res.bufs, buf)
			res.msgs = append(res.msgs, netsim.Message{From: buf.from, To: buf.to, Bytes: bytes})
			res.sendBytes[buf.from] += bytes
			res.recvBytes[buf.to] += bytes
		}
	}

	// Unpack.
	inbound := make([][]*sendBuf, b.cfg.NParts)
	for _, buf := range res.bufs {
		inbound[buf.to] = append(inbound[buf.to], buf)
	}
	b.forEachRank(func(w, r int) {
		if grouped {
			b.unpackGrouped(r, specs, inbound[r])
			return
		}
		for _, buf := range inbound[r] {
			b.unpackSingle(r, buf)
		}
	})
	return res
}

// unpackSingle applies one standard per-dat message into rank r's halo.
func (b *Backend) unpackSingle(r int, buf *sendBuf) {
	d := b.cfg.Prog.Dats[buf.datID]
	sl := b.layouts[r].SetL(d.Set)
	ranges := sl.ImportExec
	if buf.kind == 1 {
		ranges = sl.ImportNonexec
	}
	for _, rg := range ranges[buf.depth] {
		if rg.Rank != buf.from {
			continue
		}
		want := int(rg.Count) * d.Dim
		if len(buf.vals) != want {
			panic(&ExchangeError{Kind: ErrSizeMismatch, Rank: r, From: buf.from,
				Dat: d.Name, Want: want, Got: len(buf.vals)})
		}
		copy(b.dats[r][d.ID][int(rg.Start)*d.Dim:], buf.vals)
		return
	}
	panic(&ExchangeError{Kind: ErrUnexpected, Rank: r, From: buf.from, Dat: d.Name})
}

// unpackGrouped applies grouped messages into rank r's halo, walking the
// specs in the exact order senders packed them.
func (b *Backend) unpackGrouped(r int, specs []exchangeSpec, inbound []*sendBuf) {
	cursor := map[int32]int{}
	bySrc := map[int32]*sendBuf{}
	for _, buf := range inbound {
		bySrc[buf.from] = buf
	}
	take := func(src int32, n int) []float64 {
		buf := bySrc[src]
		if buf == nil {
			panic(&ExchangeError{Kind: ErrMissing, Rank: r, From: src})
		}
		at := cursor[src]
		if at+n > len(buf.vals) {
			panic(&ExchangeError{Kind: ErrTruncated, Rank: r, From: src,
				Want: n, Got: len(buf.vals) - at})
		}
		cursor[src] = at + n
		return buf.vals[at : at+n]
	}
	for _, sp := range specs {
		sl := b.layouts[r].SetL(sp.dat.Set)
		local := b.dats[r][sp.dat.ID]
		dim := sp.dat.Dim
		unpack := func(ranges [][]halo.ImportRange, depth int) {
			for d := 0; d < depth; d++ {
				for _, rg := range ranges[d] {
					copy(local[int(rg.Start)*dim:], take(rg.Rank, int(rg.Count)*dim))
				}
			}
		}
		unpack(sl.ImportExec, sp.execDepth)
		unpack(sl.ImportNonexec, sp.nonexecDepth)
	}
	for src, buf := range bySrc {
		if cursor[src] != len(buf.vals) {
			panic(&ExchangeError{Kind: ErrTrailing, Rank: r, From: src,
				Got: len(buf.vals) - cursor[src]})
		}
	}
}

// filterNeeds drops the parts of the requested exchanges already satisfied
// by the current validity state and bumps validity for what will be
// exchanged. The returned slice aliases Backend scratch, valid until the
// next filterNeeds call (each execution filters once before exchanging).
func (b *Backend) filterNeeds(specs []exchangeSpec) []exchangeSpec {
	out := b.scr.filtered[:0]
	for _, sp := range specs {
		v := &b.valid[sp.dat.ID]
		needE, needN := 0, 0
		if sp.execDepth > v.exec {
			needE = sp.execDepth
		}
		if sp.nonexecDepth > v.nonexec {
			needN = sp.nonexecDepth
		}
		if needE == 0 && needN == 0 {
			continue
		}
		out = append(out, exchangeSpec{dat: sp.dat, execDepth: needE, nonexecDepth: needN})
		if needE > v.exec {
			v.exec = needE
		}
		if needN > v.nonexec {
			v.nonexec = needN
		}
	}
	b.scr.filtered = out
	return out
}

// standardNeeds lists the depth-1 halo requirements of one standalone loop,
// OP2's per-loop dirty-bit rule: indirectly read dats need both halo kinds;
// directly read dats in indirect loops need the execute halo (their values
// are consumed by redundant halo iterations).
func standardNeeds(l core.Loop) []exchangeSpec {
	if !l.HasIndirection() {
		return nil
	}
	need := map[*core.Dat]*exchangeSpec{}
	var order []*core.Dat
	add := func(d *core.Dat, e, n int) {
		sp, ok := need[d]
		if !ok {
			sp = &exchangeSpec{dat: d}
			need[d] = sp
			order = append(order, d)
		}
		if e > sp.execDepth {
			sp.execDepth = e
		}
		if n > sp.nonexecDepth {
			sp.nonexecDepth = n
		}
	}
	for _, a := range l.Args {
		if a.IsGlobal() {
			continue
		}
		switch {
		case a.Indirect() && (a.Mode == core.Read || a.Mode == core.ReadWrite):
			add(a.Dat, 1, 1)
		case !a.Indirect() && a.Mode.Reads():
			add(a.Dat, 1, 0)
		}
	}
	out := make([]exchangeSpec, 0, len(order))
	for _, d := range order {
		out = append(out, *need[d])
	}
	return out
}
