package partition

// Multilevel k-way partitioning in the METIS style: coarsen the graph by
// heavy-edge matching until it is small, partition the coarsest graph with
// greedy growing, then project the assignment back up, refining with
// weighted FM passes at every level. This is the ParMETIS-k-way stand-in
// the paper's MG-CFD experiments rely on.
//
// Every step is deterministic: edge lists assembled from maps are sorted
// into canonical order, so the same graph always yields the same
// assignment. Downstream consumers (halo construction, the virtual-time
// simulator, the tracer) rely on this for reproducible runs.

import "sort"

// wgraph is a weighted graph in CSR form.
type wgraph struct {
	xadj   []int32 // len nv+1
	adjncy []int32
	adjwgt []int32
	vwgt   []int32 // vertex weights (fine-vertex counts)
}

func (g *wgraph) nv() int { return len(g.vwgt) }

// toCSR converts adjacency lists (possibly with duplicate entries) to a
// unit-weight CSR graph, merging duplicates into edge weights.
func toCSR(adj [][]int32) *wgraph {
	n := len(adj)
	g := &wgraph{xadj: make([]int32, n+1), vwgt: make([]int32, n)}
	for i := range g.vwgt {
		g.vwgt[i] = 1
	}
	// Merge duplicates per vertex.
	type edge struct {
		to int32
		w  int32
	}
	merged := make([][]edge, n)
	seen := make(map[int32]int32)
	for v := range adj {
		for k := range seen {
			delete(seen, k)
		}
		for _, w := range adj[v] {
			if w == int32(v) {
				continue
			}
			seen[w]++
		}
		es := make([]edge, 0, len(seen))
		for to, w := range seen {
			es = append(es, edge{to, w})
		}
		// Canonical neighbour order: map iteration order must not leak
		// into the graph, or partitions differ from run to run.
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		merged[v] = es
		g.xadj[v+1] = g.xadj[v] + int32(len(es))
	}
	g.adjncy = make([]int32, g.xadj[n])
	g.adjwgt = make([]int32, g.xadj[n])
	for v := range merged {
		at := g.xadj[v]
		for i, e := range merged[v] {
			g.adjncy[at+int32(i)] = e.to
			g.adjwgt[at+int32(i)] = e.w
		}
	}
	return g
}

// matchHeavyEdge computes a maximal matching preferring heavy edges,
// returning the coarse vertex id of every fine vertex and the coarse count.
func matchHeavyEdge(g *wgraph) ([]int32, int) {
	n := g.nv()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	cmap := make([]int32, n)
	nc := int32(0)
	for v := 0; v < n; v++ {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		bestW := int32(-1)
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			u := g.adjncy[e]
			if match[u] == -1 && g.adjwgt[e] > bestW {
				best, bestW = u, g.adjwgt[e]
			}
		}
		if best == -1 {
			match[v] = int32(v)
			cmap[v] = nc
		} else {
			match[v] = best
			match[best] = int32(v)
			cmap[v] = nc
			cmap[best] = nc
		}
		nc++
	}
	return cmap, int(nc)
}

// coarsen builds the coarse graph induced by cmap.
func coarsen(g *wgraph, cmap []int32, nc int) *wgraph {
	c := &wgraph{xadj: make([]int32, nc+1), vwgt: make([]int32, nc)}
	for v := 0; v < g.nv(); v++ {
		c.vwgt[cmap[v]] += g.vwgt[v]
	}
	// Accumulate coarse edges per coarse vertex.
	acc := make(map[int32]int32)
	bucket := make([][]int32, nc) // interleaved (to, w) pairs
	members := make([][]int32, nc)
	for v := 0; v < g.nv(); v++ {
		members[cmap[v]] = append(members[cmap[v]], int32(v))
	}
	for cv := 0; cv < nc; cv++ {
		for k := range acc {
			delete(acc, k)
		}
		for _, v := range members[cv] {
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				cu := cmap[g.adjncy[e]]
				if cu != int32(cv) {
					acc[cu] += g.adjwgt[e]
				}
			}
		}
		tos := make([]int32, 0, len(acc))
		for to := range acc {
			tos = append(tos, to)
		}
		// Canonical order, as in toCSR: keeps coarse graphs (and hence
		// the whole pipeline) deterministic.
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
		pairs := make([]int32, 0, 2*len(acc))
		for _, to := range tos {
			pairs = append(pairs, to, acc[to])
		}
		bucket[cv] = pairs
		c.xadj[cv+1] = c.xadj[cv] + int32(len(pairs)/2)
	}
	c.adjncy = make([]int32, c.xadj[nc])
	c.adjwgt = make([]int32, c.xadj[nc])
	for cv := 0; cv < nc; cv++ {
		at := c.xadj[cv]
		for i := 0; i < len(bucket[cv]); i += 2 {
			c.adjncy[at] = bucket[cv][i]
			c.adjwgt[at] = bucket[cv][i+1]
			at++
		}
	}
	return c
}

// cutWeight returns the weighted edge cut of an assignment.
func cutWeight(g *wgraph, a Assignment) int64 {
	var cut int64
	for v := 0; v < g.nv(); v++ {
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			if a[v] != a[g.adjncy[e]] {
				cut += int64(g.adjwgt[e])
			}
		}
	}
	return cut / 2
}

// growWeightedBest partitions the (small) coarsest graph several times from
// different seed vertices and keeps the best score: weighted cut plus a
// stiff penalty for imbalance (an imbalanced coarse partition is expensive
// to drain during uncoarsening).
func growWeightedBest(g *wgraph, nparts int) Assignment {
	var best Assignment
	var bestScore int64
	n := g.nv()
	totalW := int64(0)
	for _, w := range g.vwgt {
		totalW += int64(w)
	}
	target := (totalW + int64(nparts) - 1) / int64(nparts)
	for attempt := 0; attempt < 4; attempt++ {
		a := growWeighted(g, nparts, (attempt*n)/4)
		weights := make([]int64, nparts)
		for v, p := range a {
			weights[p] += int64(g.vwgt[v])
		}
		var over int64
		for _, w := range weights {
			if w > target {
				over += w - target
			}
		}
		score := cutWeight(g, a) + 8*over
		if best == nil || score < bestScore {
			best, bestScore = a, score
		}
	}
	return best
}

// growWeighted partitions a weighted graph by multi-seed frontier growth,
// with seed spreading started from the given vertex.
func growWeighted(g *wgraph, nparts, seedStart int) Assignment {
	n := g.nv()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	totalW := int32(0)
	for _, w := range g.vwgt {
		totalW += w
	}
	target := (totalW + int32(nparts) - 1) / int32(nparts)

	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = g.adjncy[g.xadj[v]:g.xadj[v+1]]
	}
	seeds := spreadSeedsFrom(adj, nparts, int32(seedStart%n))
	weights := make([]int32, nparts)
	frontiers := make([][]int32, nparts)
	for p, s := range seeds {
		if a[s] != -1 {
			continue // duplicate seed on tiny graphs
		}
		a[s] = int32(p)
		weights[p] = g.vwgt[s]
		frontiers[p] = append(frontiers[p], s)
	}
	for active := nparts; active > 0; {
		active = 0
		for p := 0; p < nparts; p++ {
			if weights[p] >= target || len(frontiers[p]) == 0 {
				continue
			}
			var next []int32
			for _, v := range frontiers[p] {
				for _, w := range adj[v] {
					if a[w] == -1 && weights[p] < target {
						a[w] = int32(p)
						weights[p] += g.vwgt[w]
						next = append(next, w)
					}
				}
				if weights[p] >= target {
					break
				}
			}
			frontiers[p] = next
			if weights[p] < target && len(next) > 0 {
				active++
			}
		}
	}
	for v := range a {
		if a[v] != -1 {
			continue
		}
		best := -1
		for _, w := range adj[v] {
			if a[w] >= 0 && (best == -1 || weights[a[w]] < weights[best]) {
				best = int(a[w])
			}
		}
		if best == -1 {
			best = 0
			for p := 1; p < nparts; p++ {
				if weights[p] < weights[best] {
					best = p
				}
			}
		}
		a[v] = int32(best)
		weights[best] += g.vwgt[v]
	}
	refineWeighted(g, a, weights, target, 4)
	return a
}

// refineWeighted runs FM-style passes on a weighted graph: move boundary
// vertices to the neighbouring part with the highest edge-weight gain,
// subject to a balance cap. Vertices in overweight parts may move at a
// loss, draining the part toward balance.
func refineWeighted(g *wgraph, a Assignment, weights []int32, target int32, passes int) {
	nparts := len(weights)
	maxW := target + target/20 + 1
	conn := make([]int64, nparts)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < g.nv(); v++ {
			if g.xadj[v] == g.xadj[v+1] {
				continue
			}
			own := a[v]
			if weights[own] <= g.vwgt[v] {
				continue
			}
			for i := range conn {
				conn[i] = 0
			}
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				conn[a[g.adjncy[e]]] += int64(g.adjwgt[e])
			}
			overweight := weights[own] > maxW
			best := own
			bestGain := int64(0)
			haveBest := false
			for p := 0; p < nparts; p++ {
				if int32(p) == own || conn[p] == 0 {
					continue
				}
				gain := conn[p] - conn[own]
				switch {
				case overweight && weights[p] < weights[own] && weights[p]+g.vwgt[v] <= maxW:
					// Balance move: accept the least-bad lighter
					// neighbouring part, even at a loss.
					if !haveBest || gain > bestGain ||
						(gain == bestGain && weights[p] < weights[best]) {
						best, bestGain, haveBest = int32(p), gain, true
					}
				case !overweight && weights[p]+g.vwgt[v] <= maxW:
					if gain > bestGain ||
						(gain == bestGain && gain > 0 && weights[p] < weights[best]) ||
						(gain == 0 && bestGain == 0 && weights[p]+g.vwgt[v] < weights[own]) {
						best, bestGain, haveBest = int32(p), gain, true
					}
				}
			}
			if haveBest && best != own {
				weights[own] -= g.vwgt[v]
				weights[best] += g.vwgt[v]
				a[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// multilevelKWay is the full pipeline. The graph must have at least nparts
// vertices.
func multilevelKWay(adj [][]int32, nparts int) Assignment {
	g := toCSR(adj)
	var levels []*wgraph
	var cmaps [][]int32
	levels = append(levels, g)
	coarsestTarget := maxIntP(128, 8*nparts)
	for levels[len(levels)-1].nv() > coarsestTarget {
		cur := levels[len(levels)-1]
		cmap, nc := matchHeavyEdge(cur)
		if nc >= cur.nv()*95/100 {
			break // matching stalled (star graphs etc.)
		}
		cmaps = append(cmaps, cmap)
		levels = append(levels, coarsen(cur, cmap, nc))
	}

	a := growWeightedBest(levels[len(levels)-1], nparts)
	// Project back up, refining at each level.
	for li := len(levels) - 2; li >= 0; li-- {
		cmap := cmaps[li]
		fine := levels[li]
		fa := make(Assignment, fine.nv())
		for v := range fa {
			fa[v] = a[cmap[v]]
		}
		weights := make([]int32, nparts)
		totalW := int32(0)
		for v := 0; v < fine.nv(); v++ {
			weights[fa[v]] += fine.vwgt[v]
			totalW += fine.vwgt[v]
		}
		target := (totalW + int32(nparts) - 1) / int32(nparts)
		refineWeighted(fine, fa, weights, target, 6)
		a = fa
	}
	// Guarantee no empty part (possible on degenerate coarse graphs):
	// steal the lightest boundary vertex repeatedly.
	fixEmptyParts(g, a, nparts)
	return a
}

func fixEmptyParts(g *wgraph, a Assignment, nparts int) {
	sizes := make([]int, nparts)
	for _, p := range a {
		sizes[p]++
	}
	for p := 0; p < nparts; p++ {
		for sizes[p] == 0 {
			// Take a vertex from the largest part.
			big := 0
			for q := 1; q < nparts; q++ {
				if sizes[q] > sizes[big] {
					big = q
				}
			}
			for v := range a {
				if int(a[v]) == big {
					a[v] = int32(p)
					sizes[big]--
					sizes[p]++
					break
				}
			}
		}
	}
}

func maxIntP(a, b int) int {
	if a > b {
		return a
	}
	return b
}
