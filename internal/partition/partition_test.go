package partition

import (
	"testing"
	"testing/quick"

	"op2ca/internal/mesh"
)

func checkValid(t *testing.T, a Assignment, n, nparts int) {
	t.Helper()
	if len(a) != n {
		t.Fatalf("assignment length %d, want %d", len(a), n)
	}
	sizes := a.PartSizes(nparts)
	for p, s := range sizes {
		if s == 0 {
			t.Errorf("part %d is empty", p)
		}
	}
	for i, p := range a {
		if p < 0 || int(p) >= nparts {
			t.Fatalf("element %d assigned to invalid part %d", i, p)
		}
	}
}

func TestBlock(t *testing.T) {
	a := Block(10, 3)
	checkValid(t, a, 10, 3)
	if a.NumParts() != 3 {
		t.Errorf("NumParts = %d, want 3", a.NumParts())
	}
	// Monotone non-decreasing part ids.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("block partition not contiguous")
		}
	}
	sizes := a.PartSizes(3)
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("block sizes %v not balanced", sizes)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 7, 42)
	b := Random(100, 7, 42)
	checkValid(t, a, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
}

func TestArgChecks(t *testing.T) {
	for name, f := range map[string]func(){
		"zero elements":  func() { Block(0, 1) },
		"zero parts":     func() { Block(5, 0) },
		"too many parts": func() { Block(5, 6) },
		"bad coords":     func() { RIB([]float64{1, 2, 3}, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKWayOnRotor(t *testing.T) {
	m := mesh.Rotor(12, 9, 8)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{2, 4, 7, 16} {
		a := KWay(adj, nparts)
		checkValid(t, a, m.NNodes, nparts)
		q := Evaluate(adj, a, nparts)
		if q.Imbalance > 1.25 {
			t.Errorf("nparts=%d imbalance %.3f > 1.25", nparts, q.Imbalance)
		}
		// The cut must beat a random partition by a wide margin.
		r := Evaluate(adj, Random(m.NNodes, nparts, 1), nparts)
		if q.EdgeCut >= r.EdgeCut/2 {
			t.Errorf("nparts=%d k-way cut %d not clearly better than random cut %d",
				nparts, q.EdgeCut, r.EdgeCut)
		}
	}
}

func TestRIBAndRCBOnRotor(t *testing.T) {
	m := mesh.Rotor(12, 9, 8)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{2, 3, 8} {
		for name, a := range map[string]Assignment{
			"RIB": RIB(m.Coords, 3, nparts),
			"RCB": RCB(m.Coords, 3, nparts),
		} {
			checkValid(t, a, m.NNodes, nparts)
			q := Evaluate(adj, a, nparts)
			if q.Imbalance > 1.05 {
				t.Errorf("%s nparts=%d imbalance %.3f > 1.05", name, nparts, q.Imbalance)
			}
			r := Evaluate(adj, Random(m.NNodes, nparts, 1), nparts)
			if nparts > 2 && q.EdgeCut >= r.EdgeCut {
				t.Errorf("%s nparts=%d cut %d not better than random %d", name, nparts, q.EdgeCut, r.EdgeCut)
			}
		}
	}
}

func TestKWaySinglePart(t *testing.T) {
	m := mesh.Box(4, 4, 4)
	a := KWay(m.NodeAdjacency(), 1)
	for _, p := range a {
		if p != 0 {
			t.Fatal("single-part partition must assign everything to 0")
		}
	}
}

func TestKWayDisconnectedGraph(t *testing.T) {
	// Two disconnected vertices plus a path; k-way must still cover them.
	adj := [][]int32{{}, {}, {3}, {2, 4}, {3}}
	a := KWay(adj, 2)
	checkValid(t, a, 5, 2)
}

func TestEvaluateCounts(t *testing.T) {
	// Path 0-1-2-3 split in the middle: cut 1, neighbours 1.
	adj := [][]int32{{1}, {0, 2}, {1, 3}, {2}}
	a := Assignment{0, 0, 1, 1}
	q := Evaluate(adj, a, 2)
	if q.EdgeCut != 1 || q.MaxNeighbours != 1 {
		t.Errorf("got cut=%d neigh=%d, want 1 1", q.EdgeCut, q.MaxNeighbours)
	}
	if q.Imbalance != 1.0 {
		t.Errorf("imbalance = %g, want 1", q.Imbalance)
	}
}

// Property: every partitioner covers all elements with valid ranks and no
// empty parts, over random mesh sizes and part counts.
func TestPartitionersProperty(t *testing.T) {
	f := func(ni8, nj8, nk8, parts8 uint8) bool {
		ni, nj, nk := int(ni8%6)+2, int(nj8%6)+2, int(nk8%6)+3
		m := mesh.Rotor(ni, nj, nk)
		nparts := int(parts8%6) + 1
		if nparts > m.NNodes {
			nparts = m.NNodes
		}
		adj := m.NodeAdjacency()
		for _, a := range []Assignment{
			Block(m.NNodes, nparts),
			KWay(adj, nparts),
			RIB(m.Coords, 3, nparts),
			RCB(m.Coords, 3, nparts),
		} {
			if len(a) != m.NNodes {
				return false
			}
			sizes := a.PartSizes(nparts)
			for _, s := range sizes {
				if s == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
