// Package netsim is the deterministic virtual-time network model under the
// distributed back-ends. Ranks carry virtual clocks; an exchange posts
// messages at each sender's clock, serialises messages on the sender's NIC,
// charges latency L plus size/B per message, and completes a receiver's wait
// at the latest arrival. This reproduces the communication terms of the
// paper's Equations (1)-(3): per-message cost L + m/B, message-count
// multipliers, and MAX-style overlap of core computation with communication.
package netsim

import (
	"fmt"
	"math"
)

// Message is one point-to-point halo message.
type Message struct {
	From  int32
	To    int32
	Bytes int64
}

// Network holds the link parameters.
type Network struct {
	// Latency is the fixed per-message cost L.
	Latency float64
	// Bandwidth is the per-rank injection bandwidth B in bytes/s.
	Bandwidth float64
	// EagerThreshold, when positive, models MPI's eager/rendezvous
	// protocol switch: messages larger than the threshold pay the
	// Handshake surcharge for the rendezvous round trip. Zero disables
	// the distinction.
	EagerThreshold int64
	// Handshake is the rendezvous surcharge per message above the eager
	// threshold. Zero defaults to 2*Latency (the classic request/ack
	// round trip), so existing configurations price exactly as before;
	// interconnects whose rendezvous cost is not two wire latencies set
	// it explicitly, and the model.Net pricing follows the same value.
	Handshake float64
}

// HandshakeTime returns the rendezvous surcharge one message of the given
// size pays: the resolved Handshake for messages above the eager
// threshold, 0 otherwise (eager messages, or no protocol distinction).
func (n *Network) HandshakeTime(bytes int64) float64 {
	if n.EagerThreshold <= 0 || bytes <= n.EagerThreshold {
		return 0
	}
	if n.Handshake == 0 {
		return 2 * n.Latency
	}
	return n.Handshake
}

// Validate rejects parameter combinations that would silently produce
// meaningless times: a zero or negative Bandwidth yields Inf or negative
// MessageTime, and negative Latency or EagerThreshold invert the cost
// model. Callers constructing a Network from user-supplied machine
// parameters should validate before first use; Deliver also checks, so a
// bad network fails loudly at its first exchange instead of corrupting
// every downstream clock.
func (n *Network) Validate() error {
	if n.Bandwidth <= 0 || math.IsNaN(n.Bandwidth) || math.IsInf(n.Bandwidth, 0) {
		return fmt.Errorf("netsim: Bandwidth %g must be a positive, finite byte rate", n.Bandwidth)
	}
	if n.Latency < 0 || math.IsNaN(n.Latency) || math.IsInf(n.Latency, 0) {
		return fmt.Errorf("netsim: Latency %g must be a non-negative, finite time", n.Latency)
	}
	if n.EagerThreshold < 0 {
		return fmt.Errorf("netsim: EagerThreshold %d must be non-negative (0 disables)", n.EagerThreshold)
	}
	if n.Handshake < 0 || math.IsNaN(n.Handshake) || math.IsInf(n.Handshake, 0) {
		return fmt.Errorf("netsim: Handshake %g must be a non-negative, finite time (0 defaults to 2*Latency)", n.Handshake)
	}
	return nil
}

// MessageTime returns the network occupancy of one message: L + bytes/B,
// plus the rendezvous handshake for messages above the eager threshold.
func (n *Network) MessageTime(bytes int64) float64 {
	return n.Latency + float64(bytes)/n.Bandwidth + n.HandshakeTime(bytes)
}

// Deliver computes the arrival time of every message. post[r] is the virtual
// time rank r posts its sends; messages from the same sender serialise on
// its NIC in slice order. The returned slice parallels msgs.
func (n *Network) Deliver(post []float64, msgs []Message) []float64 {
	return n.DeliverInto(make([]float64, 0, len(msgs)), make([]float64, len(post)), post, msgs)
}

// DeliverInto is Deliver with caller-supplied storage: arrivals are appended
// to arrival (pass a reusable slice truncated to length 0) and busy, which
// must have len(post) elements, holds per-sender NIC occupancy during the
// computation. Hot executors pass scratch so steady-state exchanges allocate
// nothing; the arithmetic is identical to Deliver's.
func (n *Network) DeliverInto(arrival, busy, post []float64, msgs []Message) []float64 {
	if err := n.Validate(); err != nil {
		panic(err.Error())
	}
	copy(busy, post)
	for i, m := range msgs {
		if int(m.From) >= len(post) || m.From < 0 {
			panic(fmt.Sprintf("netsim: message %d from invalid rank %d", i, m.From))
		}
		t := busy[m.From] + n.MessageTime(m.Bytes)
		busy[m.From] = t
		arrival = append(arrival, t)
	}
	return arrival
}

// DeliverOverlapped is the pipelined (post/complete) counterpart of
// Deliver, used by the overlap-capable chain executor. Delivery splits into
// two halves per message:
//
//	post:     the sender initiates the rendezvous handshake at its post
//	          time and injects the payload — only bytes/B occupies the
//	          NIC, so later messages queue behind earlier injections, not
//	          behind their wire latencies or handshake round trips;
//	complete: the receiver sees the message one wire latency after the
//	          injection finishes.
//
// A message therefore arrives at max(NIC free, post + handshake) + bytes/B
// + L. A sender's first (or only) message prices exactly as under Deliver
// — post + handshake + bytes/B + L, equal up to floating-point summation
// order — so single-message exchanges cost the same in both modes; each
// further message from the same sender saves its latency and handshake,
// the serial fraction the bulk-synchronous model leaves on the critical
// path. Only virtual clocks move: data effects apply in canonical order
// regardless of delivery mode, so results stay bitwise identical.
func (n *Network) DeliverOverlapped(post []float64, msgs []Message) []float64 {
	return n.DeliverOverlappedInto(make([]float64, 0, len(msgs)), make([]float64, len(post)), post, msgs)
}

// DeliverOverlappedInto is DeliverOverlapped with caller-supplied storage,
// mirroring DeliverInto: arrivals append to arrival, busy (len(post)) holds
// per-sender NIC occupancy — here the injection end, not the arrival.
func (n *Network) DeliverOverlappedInto(arrival, busy, post []float64, msgs []Message) []float64 {
	if err := n.Validate(); err != nil {
		panic(err.Error())
	}
	copy(busy, post)
	for i, m := range msgs {
		if int(m.From) >= len(post) || m.From < 0 {
			panic(fmt.Sprintf("netsim: message %d from invalid rank %d", i, m.From))
		}
		t := busy[m.From]
		if hs := post[m.From] + n.HandshakeTime(m.Bytes); hs > t {
			t = hs
		}
		t += float64(m.Bytes) / n.Bandwidth
		busy[m.From] = t
		arrival = append(arrival, t+n.Latency)
	}
	return arrival
}

// WaitAll returns, per rank, the completion time of waiting for all messages
// addressed to it: the maximum of its own readiness time and the latest
// arrival. Ranks receiving nothing complete at their readiness time.
func (n *Network) WaitAll(ready []float64, msgs []Message, arrival []float64) []float64 {
	done := make([]float64, len(ready))
	copy(done, ready)
	for i, m := range msgs {
		if int(m.To) >= len(done) || m.To < 0 {
			panic(fmt.Sprintf("netsim: message %d to invalid rank %d", i, m.To))
		}
		if arrival[i] > done[m.To] {
			done[m.To] = arrival[i]
		}
	}
	return done
}

// ReduceTime returns the cost of a tree allreduce of the given payload over
// nparts ranks: ceil(log2 p) message steps.
func (n *Network) ReduceTime(nparts int, bytes int64) float64 {
	if nparts <= 1 {
		return 0
	}
	steps := 0
	for p := nparts - 1; p > 0; p >>= 1 {
		steps++
	}
	return float64(steps) * n.MessageTime(bytes)
}
