// Package cluster is the distributed-memory back-end: it executes an OP2
// program over partitioned per-rank local views with explicit message
// passing, implementing both the standard OP2 execution of Algorithm 1
// (per-loop halo exchanges overlapped with core computation) and the
// communication-avoiding loop-chain execution of Algorithm 2 (one grouped
// message per neighbour at chain start, redundant computation over
// multi-layered halos).
//
// The back-end substitutes for MPI+CUDA on real clusters (see DESIGN.md):
// ranks are partitions driven in lock step, messages really move the bytes
// OP2 would move (so communication-avoiding results are checked bit-for-bit
// against the sequential reference), and a deterministic virtual-time model
// (package netsim, parameterised by package machine) charges compute,
// message, staging and launch costs to per-rank clocks. Reported "runtimes"
// are virtual; instrumentation counters (message counts, byte volumes,
// iteration splits) feed the paper's analytic model and Tables 2 and 5.
package cluster
