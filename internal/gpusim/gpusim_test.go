package gpusim

import "testing"

func TestStageTime(t *testing.T) {
	d := V100()
	if d.StageTime(0) != 0 {
		t.Error("zero bytes must stage for free")
	}
	small := d.StageTime(8)
	if small <= d.PCIeLatency {
		t.Error("staging must cost at least the PCIe latency")
	}
	big := d.StageTime(1 << 24)
	if big <= small {
		t.Error("staging time must grow with volume")
	}
	want := d.PCIeLatency + float64(1<<24)/d.PCIeBandwidth
	if diff := big - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("StageTime(16MiB) = %g, want %g", big, want)
	}
}

func TestExchangeLatency(t *testing.T) {
	d := V100()
	lambda := d.ExchangeLatency(4e-6)
	if lambda <= 4e-6 {
		t.Error("Λ must exceed the bare network latency")
	}
	if lambda != 4e-6+2*d.PCIeLatency {
		t.Errorf("Λ = %g, want network + 2x PCIe latency", lambda)
	}
}

func TestV100Sane(t *testing.T) {
	d := V100()
	if d.LaunchOverhead <= 0 || d.FlopRate <= 0 || d.MemBandwidth <= 0 ||
		d.PCIeLatency <= 0 || d.PCIeBandwidth <= 0 {
		t.Errorf("V100 parameters must be positive: %+v", d)
	}
	if d.FlopRate > 7.8e12 {
		t.Error("effective flop rate cannot exceed peak")
	}
	if d.MemBandwidth > 900e9 {
		t.Error("effective memory bandwidth cannot exceed peak")
	}
}

// TestExchangeLatencyEdges: a device with free staging (zero PCIe latency)
// degenerates Λ to the bare network latency, and a zero network latency
// leaves only the two staging legs.
func TestExchangeLatencyEdges(t *testing.T) {
	d := V100()
	d.PCIeLatency = 0
	if got := d.ExchangeLatency(4e-6); got != 4e-6 {
		t.Errorf("Λ with free staging = %g, want the network latency", got)
	}
	d2 := V100()
	if got := d2.ExchangeLatency(0); got != 2*d2.PCIeLatency {
		t.Errorf("Λ with free network = %g, want 2x PCIe latency", got)
	}
	if d.StageTime(1<<20) != float64(1<<20)/d.PCIeBandwidth {
		t.Error("zero PCIe latency must leave the pure bandwidth term")
	}
}

// TestTraceStageZeroBytes: a zero-byte staging buffer issues no transfer —
// no span, no time — even with a nil tracer.
func TestTraceStageZeroBytes(t *testing.T) {
	d := V100()
	if end := d.TraceStage(nil, 0, "x", 3.5, 0); end != 3.5 {
		t.Errorf("zero-byte stage advanced time to %g", end)
	}
}
