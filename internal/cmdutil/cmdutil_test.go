package cmdutil

import (
	"strings"
	"testing"

	"op2ca/internal/mesh"
)

func TestResolveValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		flags   RunFlags
		backend string
		wantErr string
	}{
		{"ckpt-needs-dist", RunFlags{Checkpoint: "every=1,path=x"}, "seq", "distributed backend"},
		{"restore-needs-dist", RunFlags{Restore: "x"}, "seq", "distributed backend"},
		{"supervise-needs-dist", RunFlags{Supervise: "on"}, "seq", "distributed backend"},
		{"supervise-vs-restore", RunFlags{Supervise: "on", Restore: "x"}, "ca", "incompatible"},
		{"bad-ckpt", RunFlags{Checkpoint: "every=0,path=x"}, "ca", "positive integer"},
		{"dup-ckpt-key", RunFlags{Checkpoint: "every=1,path=x,every=2"}, "ca", "duplicate"},
		{"bad-supervise", RunFlags{Supervise: "budget=-1"}, "ca", "non-negative"},
		{"bad-faults", RunFlags{Faults: "drop=2"}, "ca", "drop"},
	} {
		_, err := tc.flags.Resolve("test", tc.backend)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Resolve err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestResolveBuildsDerivedState(t *testing.T) {
	dir := t.TempDir()
	r, err := (&RunFlags{
		Checkpoint: "every=2,path=" + dir + "/ck.bin,keep=3",
		Supervise:  "budget=2",
		Faults:     "drop=0.01,seed=5",
		Trace:      dir + "/trace.json",
	}).Resolve("prog", "ca")
	if err != nil {
		t.Fatal(err)
	}
	if r.Ring == nil || r.Ckpt.Every != 2 || r.Ckpt.Keep != 3 {
		t.Errorf("ring/ckpt not resolved: %+v", r.Ckpt)
	}
	if !r.Supervise.Enabled || r.Supervise.Budget != 2 {
		t.Errorf("supervise spec = %+v", r.Supervise)
	}
	if r.Plan == nil || r.Plan.Drop != 0.01 {
		t.Errorf("fault plan = %+v", r.Plan)
	}
	if r.Tracer == nil {
		t.Error("tracer not created for -trace")
	}
	// AutoTune silently downgrades off the CA backend.
	r2, err := (&RunFlags{AutoTune: true}).Resolve("prog", "op2")
	if err != nil {
		t.Fatal(err)
	}
	if r2.AutoTune {
		t.Error("autotune survived a non-CA backend")
	}
}

func TestIterNoteRoundTrip(t *testing.T) {
	n, err := ParseIterNote(IterNote(17))
	if err != nil || n != 17 {
		t.Fatalf("round trip = %d, %v", n, err)
	}
	if _, err := ParseIterNote("setup complete"); err == nil {
		t.Error("non-iteration note accepted")
	}
}

func TestMachineAndPartitioner(t *testing.T) {
	for _, name := range []string{"archer2", "cirrus", "laptop"} {
		if m, err := MachineByName(name); err != nil || m == nil {
			t.Errorf("MachineByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := MachineByName("cray"); err == nil {
		t.Error("unknown machine accepted")
	}
	m := mesh.Rotor(6, 5, 4)
	for _, p := range []string{"kway", "rib", "rcb", "block"} {
		a, err := Assignment(m, p, 3)
		if err != nil || len(a) != m.NNodes {
			t.Errorf("Assignment(%q) len %d, %v", p, len(a), err)
		}
	}
	if _, err := Assignment(m, "metis", 3); err == nil {
		t.Error("unknown partitioner accepted")
	}
}
