package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"op2ca/internal/service"
)

// TestLoadgenShedsAndDrains floods a tightly provisioned service through
// the real HTTP handler: part of the burst must be shed with 429s, and
// every admitted job must still finish.
func TestLoadgenShedsAndDrains(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueCap: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	rep, err := runLoadgen(ts.URL, 16, []string{"acme", "zeta"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 16 || rep.Accepted+rep.Shed+rep.Errors != 16 {
		t.Errorf("report does not balance: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Errorf("flood against 1 worker / queue 2 shed nothing: %+v", rep)
	}
	if rep.Errors != 0 || rep.Failed != 0 || rep.Cancelled != 0 {
		t.Errorf("admitted jobs must all succeed: %+v", rep)
	}
	if rep.Done != rep.Accepted || rep.Accepted == 0 {
		t.Errorf("done %d != accepted %d", rep.Done, rep.Accepted)
	}
}

// TestRunDirectMode pins the -run oracle mode: a spec file in, a Result
// with the determinism-bearing fields out.
func TestRunDirectMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"tenant":"ci","app":"mgcfd","mesh_nodes":500,"ranks":2,"iters":2,"machine":"laptop"}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runDirect(path, &buf); err != nil {
		t.Fatal(err)
	}
	var res service.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Checksum == "" || res.MaxClockSeconds <= 0 || res.JobID != "direct" {
		t.Errorf("degenerate direct result: %+v", res)
	}
	if res.Spec.Backend != "ca" || res.Spec.Supervise != "on" {
		t.Errorf("spec defaults not echoed: %+v", res.Spec)
	}

	var buf2 bytes.Buffer
	if err := runDirect(path, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("-run is not deterministic across invocations")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"tenant":"ci","app":"mgcfd","bogus":1}`), 0o644)
	if err := runDirect(bad, io.Discard); err == nil {
		t.Error("unknown field accepted")
	}
}
