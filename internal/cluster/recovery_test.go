package cluster

import (
	"math"
	"strings"
	"testing"

	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// faultyResult runs the mini-app under a fault plan (nil for fault-free) on
// one backend mode and returns the gathered results.
func faultyResult(t *testing.T, m *mesh.FV3D, steps int, plan *faults.Plan, mode string) (map[string][]float64, *Backend) {
	t.Helper()
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	cfg := Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
		Depth: 2, MaxChainLen: 4, Machine: machine.ARCHER2(), Faults: plan,
	}
	chain := false
	switch mode {
	case "op2":
	case "ca":
		cfg.CA, chain = true, true
	case "ca-parallel":
		cfg.CA, cfg.Parallel, chain = true, true, true
	case "ca-ungrouped":
		cfg.CA, cfg.NoGroupedMsgs, chain = true, true, true
	case "lazy":
		cfg.CA, cfg.Lazy = true, true
	case "ca-overlap":
		cfg.CA, cfg.Overlap, chain = true, true, true
	case "ca-ungrouped-overlap":
		cfg.CA, cfg.NoGroupedMsgs, cfg.Overlap, chain = true, true, true, true
	case "lazy-overlap":
		cfg.CA, cfg.Lazy, cfg.Overlap = true, true, true
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, steps, chain)
	return map[string][]float64{
		"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux),
	}, b
}

// TestFaultsPreserveResultsBitIdentical is the core robustness property:
// under any fault plan, every backend mode produces results bit-identical to
// the fault-free run (and to the sequential reference) — faults shape only
// virtual time and the fault counters.
func TestFaultsPreserveResultsBitIdentical(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	want := seqResult(m, 2)
	plan := faults.MustParse("drop=0.2,corrupt=0.1,delay=3x@0.2,straggler=rank1:2x,seed=7")
	for _, mode := range []string{"op2", "ca", "ca-parallel", "ca-ungrouped", "lazy",
		"ca-overlap", "ca-ungrouped-overlap", "lazy-overlap"} {
		clean, cb := faultyResult(t, m, 2, nil, mode)
		faulty, fb := faultyResult(t, m, 2, plan, mode)
		compareExact(t, mode+"/faulty-vs-seq", faulty, want)
		compareExact(t, mode+"/faulty-vs-clean", faulty, clean)
		fs := fb.Stats().Faults
		if fs.Drops == 0 || fs.Retries == 0 {
			t.Errorf("%s: fault plan injected nothing: %+v", mode, fs)
		}
		if cfs := cb.Stats().Faults; cfs != (FaultStats{}) {
			t.Errorf("%s: fault-free run counted fault events: %+v", mode, cfs)
		}
		if fb.MaxClock() <= cb.MaxClock() {
			t.Errorf("%s: faulted clock %g not above fault-free %g (retries charge time)",
				mode, fb.MaxClock(), cb.MaxClock())
		}
	}
}

// TestFaultScheduleDeterministic: the same plan yields the identical fault
// schedule, clocks and stats on every run.
func TestFaultScheduleDeterministic(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	plan := faults.MustParse("drop=0.1,corrupt=0.05,delay=2x@0.1,seed=11")
	run := func() ([]float64, string, FaultStats) {
		_, b := faultyResult(t, m, 2, plan, "ca")
		return append([]float64(nil), b.Clocks()...), b.Stats().String(), b.Stats().Faults
	}
	c1, s1, f1 := run()
	c2, s2, f2 := run()
	for r := range c1 {
		if c1[r] != c2[r] {
			t.Fatalf("rank %d clock differs between identical runs: %v vs %v", r, c1[r], c2[r])
		}
	}
	if s1 != s2 {
		t.Errorf("stats differ between identical runs:\n%s\nvs\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("fault counters differ between identical runs: %+v vs %+v", f1, f2)
	}
	if f1.Retries == 0 {
		t.Error("plan injected no retries; determinism check is vacuous")
	}
}

// TestForcedDegradationCompletesPerLoop: under total message loss a CA chain
// must not die — it walks the degradation ladder (grouped -> per-dat ->
// per-loop OP2) and completes with correct results, recording the fallbacks
// in stats and the retry/giveup events in the trace.
func TestForcedDegradationCompletesPerLoop(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	want := seqResult(m, 3)
	plan := faults.MustParse("drop=1,seed=3,maxretries=1")
	tr := obs.New()
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
		Faults: plan, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 3, true)
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "degraded", got, want)

	// The first chain execution exchanges nothing (halos valid from the
	// initial scatter) and completes with CA; executions two and three
	// must exchange dirty halos and degrade all the way to per-loop OP2.
	cs := b.Stats().Chains["synth"]
	if cs.CAExecutions != 1 {
		t.Errorf("CAExecutions = %d, want 1 (only the exchange-free first execution): %+v",
			cs.CAExecutions, cs)
	}
	if cs.FallbackUngrouped != 2 || cs.FallbackPerLoop != 2 {
		t.Errorf("fallbacks = (ungrouped %d, perloop %d), want (2, 2)",
			cs.FallbackUngrouped, cs.FallbackPerLoop)
	}
	fs := b.Stats().Faults
	if fs.Giveups == 0 || fs.Retries == 0 || fs.Drops == 0 {
		t.Errorf("fault counters missing events: %+v", fs)
	}
	if fs.FallbackPerLoop != 2 || fs.FallbackUngrouped != 2 {
		t.Errorf("run-level fallback counters = %+v, want 2 each", fs)
	}
	hits, misses, inv := b.PlanCacheStats()
	if hits != 1 || misses != 2 || inv != 2 {
		t.Errorf("plan cache hits=%d misses=%d invalidations=%d, want 1/2/2 (each degradation evicts)",
			hits, misses, inv)
	}
	var retrySpans, giveupSpans int
	for _, sp := range tr.Spans() {
		switch sp.Kind {
		case obs.Retry:
			retrySpans++
			if sp.Dur() <= 0 {
				t.Errorf("retry span with non-positive duration: %+v", sp)
			}
		case obs.Giveup:
			giveupSpans++
		}
	}
	if retrySpans == 0 || giveupSpans == 0 {
		t.Errorf("trace recorded %d retry and %d giveup spans, want both > 0", retrySpans, giveupSpans)
	}
	if !strings.Contains(b.Stats().String(), "faults ") {
		t.Error("stats report omits the faults line")
	}
}

// TestPlanCacheInvalidationRepopulates: after a forced CA->OP2 fallback the
// entry is gone; the next fault-free execution re-inspects and repopulates,
// with the invalidation counted exactly once.
func TestPlanCacheInvalidationRepopulates(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	plan := &faults.Plan{Seed: 5, Drop: 1}
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 2, MaxChainLen: 4, CA: true, MaxRetries: 1, Machine: machine.ARCHER2(),
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: the chain's first execution exchanges nothing (halos valid
	// from the scatter), so it completes with CA and populates the cache.
	// Step 2: dirty halos force an exchange under total loss — the window
	// degrades to per-loop OP2 and evicts the cached plan.
	a.run(b, 2, true)
	hits, misses, inv := b.PlanCacheStats()
	if hits != 1 || misses != 1 || inv != 1 {
		t.Fatalf("after degraded execution: hits=%d misses=%d invalidations=%d, want 1/1/1", hits, misses, inv)
	}
	if cs := b.Stats().Chains["synth"]; cs.FallbackPerLoop != 1 {
		t.Fatalf("expected one per-loop fallback, got %+v", cs)
	}
	// Heal the network: the backend shares this plan pointer, so zeroing
	// the drop probability makes all subsequent exchanges clean.
	plan.Drop = 0
	a.run(b, 2, true)
	hits, misses, inv = b.PlanCacheStats()
	if misses != 2 {
		t.Errorf("fault-free re-execution did not re-inspect: misses=%d, want 2", misses)
	}
	if inv != 1 {
		t.Errorf("invalidations=%d, want exactly 1", inv)
	}
	if hits != 2 {
		t.Errorf("hits=%d, want 2 (final execution replays the repopulated plan)", hits)
	}
	if cs := b.Stats().Chains["synth"]; cs.CAExecutions != 3 || cs.Executions != 4 {
		t.Errorf("chain stats after healing: %+v, want 3 CA of 4 executions", cs)
	}
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "recache", got, seqResult(m, 4))
}

// TestChainMaxRetriesOverride: the chain configuration's maxretries option
// reaches the exchange layer (a budget of 1 under total loss gives up after
// exactly two attempts per message on the grouped rung).
func TestChainMaxRetriesOverride(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.Block(m.NNodes, 3), NParts: 3,
		Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
		Faults: faults.MustParse("drop=1,seed=2,maxretries=5"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.maxRetriesFor(nil); got != 5 {
		t.Errorf("default budget = %d, want 5 from the plan's maxretries clause", got)
	}
	cfg, err := chaincfg.ParseString("chain synth maxretries=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.maxRetriesFor(cfg.Get("synth")); got != 1 {
		t.Errorf("chain override budget = %d, want 1", got)
	}
}

// TestNewRejectsInvalidNetworkAndRetryKnobs: construction-time validation of
// the machine's network parameters and the retry configuration.
func TestNewRejectsInvalidNetworkAndRetryKnobs(t *testing.T) {
	mk := func() Config {
		p := core.NewProgram()
		nodes := p.DeclSet(4, "nodes")
		return Config{Prog: p, Primary: nodes, Assign: []int32{0, 0, 0, 0}, NParts: 1}
	}
	bad := *machine.Laptop()
	bad.Bandwidth = 0
	cfg := mk()
	cfg.Machine = &bad
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Bandwidth") {
		t.Errorf("zero-bandwidth machine accepted: %v", err)
	}
	cfg = mk()
	cfg.MaxRetries = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxRetries accepted")
	}
	cfg = mk()
	cfg.RetryTimeout = -1e-6
	if _, err := New(cfg); err == nil {
		t.Error("negative RetryTimeout accepted")
	}
	cfg = mk()
	cfg.RetryBackoff = math.Inf(1)
	if _, err := New(cfg); err == nil {
		t.Error("infinite RetryBackoff accepted")
	}
}
