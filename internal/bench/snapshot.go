package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"op2ca/internal/autotune"
	"op2ca/internal/cluster"
	"op2ca/internal/obs/analysis"
)

// Snapshot is the machine-readable document op2ca-bench -json writes: the
// effective configuration, every experiment's table, per-run dat checksums
// and (under -profile) per-run critical-path and communication summaries.
// Committed BENCH_*.json files of this shape form the repo's perf
// trajectory; CompareSnapshots diffs two of them with per-table thresholds
// (see compare.go).
type Snapshot struct {
	Nodes8M   int               `json:"nodes8m"`
	Nodes24M  int               `json:"nodes24m"`
	RankScale float64           `json:"rankscale"`
	Iters     int               `json:"iters"`
	FaultSpec string            `json:"fault_spec,omitempty"`
	Faults    *FaultTotals      `json:"faults,omitempty"`
	Checksums map[string]string `json:"checksums,omitempty"`
	AutoTune  []AutoTuneRun     `json:"autotune,omitempty"`
	Profiles  []ProfileRecord   `json:"profiles,omitempty"`
	Supervise *SuperviseRecord  `json:"supervise,omitempty"`
	Overlap   *OverlapRecord    `json:"overlap,omitempty"`
	Results   []Result          `json:"results"`
}

// SuperviseRecord is the committed summary of a supervised invocation's
// recovery ledger (op2ca-bench -supervise): how many attempts ran, how many
// restarts each failure class consumed, and what the checkpoint ring did.
// All restarts resolved deterministically — the results in the same snapshot
// are bitwise identical to an uninterrupted run's.
type SuperviseRecord struct {
	Attempts         int     `json:"attempts"`
	Restarts         int     `json:"restarts"`
	CrashRestarts    int     `json:"crash_restarts"`
	ExchangeRestarts int     `json:"exchange_restarts"`
	WatchdogTrips    int     `json:"watchdog_trips"`
	GenerationsTried int     `json:"generations_tried"`
	Quarantined      int     `json:"quarantined"`
	ColdStarts       int     `json:"cold_starts"`
	BackoffVirtual   float64 `json:"backoff_virtual_seconds"`
}

// NewSuperviseRecord flattens a supervisor's ledger into its snapshot form.
func NewSuperviseRecord(s cluster.SuperviseStats) *SuperviseRecord {
	return &SuperviseRecord{
		Attempts: s.Attempts, Restarts: s.Restarts,
		CrashRestarts: s.CrashRestarts, ExchangeRestarts: s.ExchangeRestarts,
		WatchdogTrips: s.WatchdogTrips, GenerationsTried: s.GenerationsTried,
		Quarantined: s.Quarantined, ColdStarts: s.ColdStarts,
		BackoffVirtual: s.BackoffVirtual,
	}
}

// Result is one experiment's table plus its wall time. Wall time is the
// only nondeterministic field; comparisons ignore it.
type Result struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Seconds float64    `json:"seconds"`
}

// FaultTotals mirrors cluster.FaultStats with stable JSON names, summed
// over every backend the experiments construct. All zeros on a fault-free
// run.
type FaultTotals struct {
	Drops             int64 `json:"drops"`
	Corrupts          int64 `json:"corrupts"`
	Delays            int64 `json:"delays"`
	Retries           int64 `json:"retries"`
	Giveups           int64 `json:"giveups"`
	FallbackUngrouped int64 `json:"fallback_ungrouped"`
	FallbackPerLoop   int64 `json:"fallback_perloop"`
}

// AutoTuneRun is one measured run's autotuner record: the calibrated
// machine/loop parameters and, per chain, the candidates scored, the chosen
// policy, predicted and measured times and the re-plan count. Chains the
// tuner refused to probe (policy invariance) appear under skipped.
type AutoTuneRun struct {
	Run         string               `json:"run"`
	Calibration autotune.Calib       `json:"calibration"`
	Decisions   []*autotune.Decision `json:"decisions"`
	Skipped     map[string]string    `json:"skipped,omitempty"`
}

// ProfileRecord is the committed summary of one run's profile: the
// critical-path length and its per-kind split, the makespan it must equal,
// the load-imbalance ratio and per-owner communication totals. Full
// rank×rank matrices stay in memory (analysis.ChainComm); the snapshot
// keeps the trajectory-worthy scalars.
type ProfileRecord struct {
	Run       string             `json:"run"`
	Makespan  float64            `json:"makespan_seconds"`
	CritPath  float64            `json:"critpath_seconds"`
	ByKind    map[string]float64 `json:"critpath_by_kind_seconds"`
	Imbalance float64            `json:"imbalance_ratio"`
	Comm      []CommRecord       `json:"comm,omitempty"`
}

// CommRecord is one exchange owner's communication totals with the
// wait-time attribution (see analysis.ChainComm).
type CommRecord struct {
	Owner          string  `json:"owner"`
	Msgs           int64   `json:"msgs"`
	Bytes          int64   `json:"bytes"`
	WaitSeconds    float64 `json:"wait_seconds"`
	LateSeconds    float64 `json:"late_seconds"`
	NICSeconds     float64 `json:"nic_seconds"`
	RetrySeconds   float64 `json:"retry_seconds"`
	TransitSeconds float64 `json:"transit_seconds"`
	HiddenSeconds  float64 `json:"hidden_seconds,omitempty"`
}

// NewProfileRecord flattens an analysis.Profile into its snapshot form.
func NewProfileRecord(run string, p *analysis.Profile) ProfileRecord {
	rec := ProfileRecord{
		Run:       run,
		Makespan:  p.Makespan,
		CritPath:  p.Path.Length,
		ByKind:    map[string]float64{},
		Imbalance: p.Imbalance.Ratio,
	}
	for k, v := range p.Path.ByKind {
		rec.ByKind[k.String()] = v
	}
	for _, cc := range p.Comm {
		rec.Comm = append(rec.Comm, CommRecord{
			Owner: cc.Name, Msgs: cc.Msgs, Bytes: cc.Bytes,
			WaitSeconds: cc.Wait, LateSeconds: cc.WaitLate, NICSeconds: cc.WaitNIC,
			RetrySeconds: cc.WaitRetry, TransitSeconds: cc.WaitTransit,
			HiddenSeconds: cc.WaitHidden,
		})
	}
	sort.Slice(rec.Comm, func(i, j int) bool { return rec.Comm[i].Owner < rec.Comm[j].Owner })
	return rec
}

// ReadSnapshot loads a -json results file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// WriteFile writes the snapshot as indented JSON (the committed format).
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
