package partition

// Quality summarises a partition of a graph: the quantities that drive
// distributed-memory communication cost in the paper's model (halo sizes
// scale with edge cut, message counts with neighbour counts, critical-path
// compute with imbalance).
type Quality struct {
	// EdgeCut is the number of graph edges whose endpoints lie in
	// different parts.
	EdgeCut int
	// MaxNeighbours is the largest number of distinct adjacent parts of
	// any part: the p term of Equation (1).
	MaxNeighbours int
	// Imbalance is max part size divided by mean part size; 1.0 is
	// perfect balance.
	Imbalance float64
}

// Evaluate computes partition quality for the given symmetric adjacency.
func Evaluate(adj [][]int32, a Assignment, nparts int) Quality {
	var q Quality
	neigh := make(map[[2]int32]struct{})
	for v := range adj {
		for _, w := range adj[v] {
			if a[v] != a[w] {
				if int32(v) < w {
					q.EdgeCut++
				}
				neigh[[2]int32{a[v], a[w]}] = struct{}{}
			}
		}
	}
	counts := make([]int, nparts)
	for pair := range neigh {
		counts[pair[0]]++
	}
	for _, c := range counts {
		if c > q.MaxNeighbours {
			q.MaxNeighbours = c
		}
	}
	sizes := a.PartSizes(nparts)
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	mean := float64(len(a)) / float64(nparts)
	if mean > 0 {
		q.Imbalance = float64(maxSize) / mean
	}
	return q
}
