// Calibration: fit the analytic model's free parameters from measured
// probe executions. The machine's effective latency L and bandwidth B come
// from an ordinary-least-squares fit of per-message exchange spans against
// message size (Equation (1)'s L + m/B term); the pack rate comes from the
// aggregate pack throughput; and each loop's per-iteration cost g_l is
// solved from Equation (1) itself using the measured loop span and the
// already-fitted network parameters. Wherever the samples cannot identify
// a parameter (no exchanges observed, a single message size, a loop whose
// span is entirely communication) the machine-model prior is kept, so a
// fit never degrades below the static model.
package autotune

import (
	"fmt"
	"math"
	"sort"

	"op2ca/internal/model"
)

// Sample is one measured (bytes, seconds) observation.
type Sample struct {
	Bytes   float64 `json:"bytes"`
	Seconds float64 `json:"seconds"`
}

// loopSample is one measured loop execution together with the Equation (1)
// parameters that held during it (G is ignored; it is what we solve for).
type loopSample struct {
	p       model.LoopParams
	seconds float64
}

// Calibrator accumulates probe measurements and fits a Calib from them.
// It is not safe for concurrent use; the cluster back-end only feeds it
// from the serial coordination path, never from per-rank goroutines.
type Calibrator struct {
	// ExtraLatency is added to the *fitted* latency only. On a staged GPU
	// machine the model scores exchanges with the enlarged latency
	// Λ = L + 2·PCIe, but the measured per-message spans cover the network
	// leg alone (staging is charged to pack/unpack), so the fit recovers
	// the network L and this correction restores Λ. Priors already hold Λ
	// and need no correction.
	ExtraLatency float64
	// EagerThreshold is the machine's eager/rendezvous switch in bytes.
	// Samples above it paid the rendezvous handshake (two extra network
	// latencies), so the fit must not absorb that step into the bandwidth
	// slope; see fitNet. Zero means no protocol switch.
	EagerThreshold float64

	exch  []Sample
	pack  []Sample
	loops map[string][]loopSample
	order []string // loop names in first-seen order, for determinism
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{loops: make(map[string][]loopSample)}
}

// AddExchange records one measured point-to-point message: its payload and
// the span from NIC-ready to arrival.
func (c *Calibrator) AddExchange(bytes int64, seconds float64) {
	if bytes <= 0 || seconds <= 0 {
		return
	}
	c.exch = append(c.exch, Sample{Bytes: float64(bytes), Seconds: seconds})
}

// AddPack records one measured pack (or unpack) of an export buffer.
func (c *Calibrator) AddPack(bytes int64, seconds float64) {
	if bytes <= 0 || seconds <= 0 {
		return
	}
	c.pack = append(c.pack, Sample{Bytes: float64(bytes), Seconds: seconds})
}

// AddLoop records one measured execution of a loop: the Equation (1)
// parameters that held (core iterations, halo iterations, dats exchanged,
// neighbour count, largest message) and the measured wall span.
func (c *Calibrator) AddLoop(name string, p model.LoopParams, seconds float64) {
	if seconds <= 0 || p.CoreIters+p.HaloIters <= 0 {
		return
	}
	if _, ok := c.loops[name]; !ok {
		c.order = append(c.order, name)
	}
	c.loops[name] = append(c.loops[name], loopSample{p: p, seconds: seconds})
}

// Samples reports how many exchange, pack and loop observations have been
// accumulated.
func (c *Calibrator) Samples() (exch, pack, loop int) {
	for _, ls := range c.loops {
		loop += len(ls)
	}
	return len(c.exch), len(c.pack), loop
}

// Calib holds one fitted (or prior) parameter set for the analytic model.
type Calib struct {
	// L, B are the effective per-message latency (s) and bandwidth (B/s).
	L float64 `json:"latency_seconds"`
	B float64 `json:"bandwidth_bytes_per_second"`
	// PackRate converts grouped-message bytes into Equation (3)'s pack
	// cost c = m/PackRate.
	PackRate float64 `json:"pack_rate_bytes_per_second"`
	// EagerThreshold and Handshake carry the eager/rendezvous protocol
	// switch into the model network (model.Net.MsgTime): messages above
	// the threshold cost Handshake extra. A fit recovers Handshake as two
	// fitted network latencies; priors hold the machine values.
	EagerThreshold float64 `json:"eager_threshold_bytes"`
	Handshake      float64 `json:"handshake_seconds"`
	// G maps loop kernel name to the fitted per-iteration cost g_l (s).
	G map[string]float64 `json:"g_seconds"`

	// NetMeasured and PackMeasured report whether the network and pack
	// parameters come from regression or from the machine-model prior.
	NetMeasured  bool `json:"net_measured"`
	PackMeasured bool `json:"pack_measured"`
	// Sample counts that backed the fit.
	ExchangeSamples int `json:"exchange_samples"`
	PackSamples     int `json:"pack_samples"`
	LoopSamples     int `json:"loop_samples"`
}

// Net returns the model network for this calibration; packBytes is the
// grouped payload the receiver must unpack (Equation (3)'s c term), zero
// for ungrouped or OP2 execution.
func (c Calib) Net(packBytes float64) model.Net {
	n := model.Net{L: c.L, B: c.B, EagerThreshold: c.EagerThreshold, Handshake: c.Handshake}
	if packBytes > 0 && c.PackRate > 0 {
		n.C = packBytes / c.PackRate
	}
	return n
}

// GFor returns the calibrated per-iteration cost for a loop, or fallback
// when the loop was never seen (neither probed nor in the prior).
func (c Calib) GFor(name string, fallback float64) float64 {
	if g, ok := c.G[name]; ok && g > 0 {
		return g
	}
	return fallback
}

// String renders the calibration for run logs.
func (c Calib) String() string {
	src := "prior"
	if c.NetMeasured {
		src = fmt.Sprintf("fit of %d msgs", c.ExchangeSamples)
	}
	s := fmt.Sprintf("calib: L=%.3gs B=%.3gB/s (%s) pack=%.3gB/s", c.L, c.B, src, c.PackRate)
	names := make([]string, 0, len(c.G))
	for n := range c.G {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s += fmt.Sprintf(" g[%s]=%.3gs", n, c.G[n])
	}
	return s
}

// Fit solves for the machine parameters from the accumulated samples,
// falling back to prior for anything the samples cannot identify. The
// returned Calib's G map covers every loop in prior.G plus every probed
// loop; probed values win.
func (c *Calibrator) Fit(prior Calib) Calib {
	out := prior
	out.NetMeasured = false
	out.PackMeasured = false
	out.ExchangeSamples = len(c.exch)
	out.PackSamples = len(c.pack)
	_, _, out.LoopSamples = c.Samples()

	if l, b, ok := fitNet(c.exch, c.EagerThreshold); ok {
		out.L = l + c.ExtraLatency
		out.B = b
		out.EagerThreshold = c.EagerThreshold
		// The rendezvous surcharge is two network latencies; the fitted l
		// is the network leg (ExtraLatency excluded by construction).
		out.Handshake = 2 * l
		out.NetMeasured = true
	}
	if r, ok := fitRate(c.pack); ok {
		out.PackRate = r
		out.PackMeasured = true
	}

	out.G = make(map[string]float64, len(prior.G)+len(c.order))
	for k, v := range prior.G {
		out.G[k] = v
	}
	for _, name := range c.order {
		if g, ok := solveG(c.loops[name], model.Net{
			L: out.L, B: out.B,
			EagerThreshold: out.EagerThreshold, Handshake: out.Handshake,
		}); ok {
			out.G[name] = g
		}
	}
	return out
}

// fitNet fits the protocol-aware message cost t = L·h + bytes/B by exact
// least squares, where h counts the latencies a message pays: 1 below the
// eager threshold, 3 above it (L plus the two-latency rendezvous
// handshake). Fitting both regimes with one line would absorb the 2L step
// into the bandwidth slope as size-dependent bias; regressing on h keeps
// the step where it belongs. With threshold 0 (or samples on one side
// only) h is constant and the fit reduces exactly to the ordinary
// intercept+slope regression. It refuses the fit (ok=false) when fewer
// than two samples, a single distinct message size, or a non-positive
// slope leave the parameters unidentifiable, and clamps a slightly
// negative latency to zero (small-sample noise; a negative latency would
// fail model validation).
func fitNet(s []Sample, eagerThreshold float64) (l, b float64, ok bool) {
	if len(s) < 2 {
		return 0, 0, false
	}
	// Normal equations for t = l·h + σ·m with σ = 1/B:
	//   Shh·l + Shm·σ = Sht
	//   Shm·l + Smm·σ = Smt
	var shh, shm, smm, sht, smt float64
	for _, p := range s {
		h := 1.0
		if eagerThreshold > 0 && p.Bytes > eagerThreshold {
			h = 3
		}
		shh += h * h
		shm += h * p.Bytes
		smm += p.Bytes * p.Bytes
		sht += h * p.Seconds
		smt += p.Bytes * p.Seconds
	}
	det := shh*smm - shm*shm
	// det == 0 iff all (h, m) pairs are proportional — in the constant-h
	// case, iff every message has the same size. Guard with a relative
	// tolerance so near-singular systems don't launder rounding noise
	// into parameters.
	if det <= 1e-12*shh*smm {
		return 0, 0, false
	}
	slope := (shh*smt - shm*sht) / det
	if slope <= 0 {
		return 0, 0, false
	}
	l = (sht*smm - shm*smt) / det
	if l < 0 {
		l = 0
	}
	b = 1 / slope
	if !isFinitePos(b) {
		return 0, 0, false
	}
	return l, b, true
}

// fitRate fits seconds = bytes/rate through the origin (aggregate
// throughput), which is exact for a linear pack cost.
func fitRate(s []Sample) (rate float64, ok bool) {
	var bytes, secs float64
	for _, p := range s {
		bytes += p.Bytes
		secs += p.Seconds
	}
	if secs <= 0 || bytes <= 0 {
		return 0, false
	}
	rate = bytes / secs
	if !isFinitePos(rate) {
		return 0, false
	}
	return rate, true
}

// solveG inverts Equation (1) for g given a measured span T:
//
//	T = max(g·S^c, comm) + g·S^1, comm = 2·d·p·MsgTime(m)
//
// T is monotone in g, so the solution is unique. Try the compute-bound
// branch g = T/(S^c+S^1) first; if it is inconsistent (g·S^c < comm) the
// loop was communication-bound and g = (T - comm)/S^1. Samples that
// cannot identify g (pure-communication spans, no halo region to expose g
// behind a comm-bound core) are skipped; the per-loop result is the mean
// of the identifiable samples.
func solveG(samples []loopSample, net model.Net) (float64, bool) {
	var sum float64
	n := 0
	for _, s := range samples {
		comm := 2 * s.p.NDats * s.p.Neighbours * net.MsgTime(s.p.MsgBytes)
		total := s.p.CoreIters + s.p.HaloIters
		if total <= 0 {
			continue
		}
		g := s.seconds / total
		if g*s.p.CoreIters+1e-15 >= comm {
			sum += g
			n++
			continue
		}
		// Communication-bound: the core is hidden behind comm and only the
		// post-wait halo region exposes g.
		if s.p.HaloIters <= 0 {
			continue
		}
		g = (s.seconds - comm) / s.p.HaloIters
		if g <= 0 || g*s.p.CoreIters > comm+1e-15 {
			continue // fitted net disagrees with this sample; not identifiable
		}
		sum += g
		n++
	}
	if n == 0 {
		return 0, false
	}
	g := sum / float64(n)
	return g, isFinitePos(g)
}

func isFinitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// LoopSample is one serialisable loop observation (CalibratorState).
type LoopSample struct {
	Params  model.LoopParams `json:"params"`
	Seconds float64          `json:"seconds"`
}

// LoopSamples groups one loop's observations under its kernel name.
type LoopSamples struct {
	Name    string       `json:"name"`
	Samples []LoopSample `json:"samples"`
}

// CalibratorState is the complete serialisable content of a Calibrator,
// used by checkpoint/restart: restoring it and continuing to feed the
// calibrator yields the same Fit as an uninterrupted run.
type CalibratorState struct {
	ExtraLatency   float64       `json:"extra_latency_seconds"`
	EagerThreshold float64       `json:"eager_threshold_bytes"`
	Exchanges      []Sample      `json:"exchanges,omitempty"`
	Packs          []Sample      `json:"packs,omitempty"`
	Loops          []LoopSamples `json:"loops,omitempty"`
}

// State snapshots the calibrator. Loops appear in first-seen order, so the
// snapshot is deterministic for a deterministic run.
func (c *Calibrator) State() CalibratorState {
	s := CalibratorState{
		ExtraLatency:   c.ExtraLatency,
		EagerThreshold: c.EagerThreshold,
		Exchanges:      append([]Sample(nil), c.exch...),
		Packs:          append([]Sample(nil), c.pack...),
	}
	for _, name := range c.order {
		ls := LoopSamples{Name: name}
		for _, smp := range c.loops[name] {
			ls.Samples = append(ls.Samples, LoopSample{Params: smp.p, Seconds: smp.seconds})
		}
		s.Loops = append(s.Loops, ls)
	}
	return s
}

// NewCalibratorFromState rebuilds a calibrator from a snapshot.
func NewCalibratorFromState(s CalibratorState) *Calibrator {
	c := NewCalibrator()
	c.ExtraLatency = s.ExtraLatency
	c.EagerThreshold = s.EagerThreshold
	c.exch = append(c.exch, s.Exchanges...)
	c.pack = append(c.pack, s.Packs...)
	for _, ls := range s.Loops {
		for _, smp := range ls.Samples {
			c.AddLoop(ls.Name, smp.Params, smp.Seconds)
		}
	}
	return c
}
