package autotune

import (
	"math"
	"strings"
	"testing"

	"op2ca/internal/model"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

// TestFitRecoversLine feeds noiseless t = L + m/B samples and expects the
// OLS fit to recover L and B exactly (to rounding).
func TestFitRecoversLine(t *testing.T) {
	const L, B = 2e-6, 10e9
	c := NewCalibrator()
	for _, bytes := range []int64{100, 1000, 10000, 100000} {
		c.AddExchange(bytes, L+float64(bytes)/B)
	}
	cal := c.Fit(Calib{L: 1, B: 1, PackRate: 1})
	if !cal.NetMeasured {
		t.Fatal("four distinct sizes must identify the network")
	}
	approx(t, "L", cal.L, L, 1e-9)
	approx(t, "B", cal.B, B, 1e-9)
	if cal.ExchangeSamples != 4 {
		t.Errorf("ExchangeSamples = %d, want 4", cal.ExchangeSamples)
	}
}

// TestFitDegenerateKeepsPrior covers every refusal path of fitLine: too few
// samples, a single message size, and spans that shrink with size.
func TestFitDegenerateKeepsPrior(t *testing.T) {
	prior := Calib{L: 3e-6, B: 25e9, PackRate: 4e9}
	cases := map[string]func(c *Calibrator){
		"empty":       func(c *Calibrator) {},
		"one sample":  func(c *Calibrator) { c.AddExchange(100, 1e-6) },
		"single size": func(c *Calibrator) { c.AddExchange(100, 1e-6); c.AddExchange(100, 2e-6) },
		"negative slope": func(c *Calibrator) {
			c.AddExchange(100, 2e-6)
			c.AddExchange(1000, 1e-6)
		},
	}
	for name, fill := range cases {
		c := NewCalibrator()
		fill(c)
		cal := c.Fit(prior)
		if cal.NetMeasured {
			t.Errorf("%s: fit should be refused", name)
		}
		if cal.L != prior.L || cal.B != prior.B {
			t.Errorf("%s: prior not kept: L=%g B=%g", name, cal.L, cal.B)
		}
	}
}

// TestFitClampsNegativeIntercept: sample noise can pull the fitted
// intercept below zero; a negative latency would fail model validation.
func TestFitClampsNegativeIntercept(t *testing.T) {
	c := NewCalibrator()
	// Positive slope whose extension crosses below zero: intercept < 0.
	c.AddExchange(1000, 0.5e-6)
	c.AddExchange(2000, 1.6e-6)
	cal := c.Fit(Calib{L: 1, B: 1, PackRate: 1})
	if !cal.NetMeasured {
		t.Fatal("two sizes with positive slope must fit")
	}
	if cal.L != 0 {
		t.Errorf("negative intercept must clamp to 0, got %g", cal.L)
	}
}

// TestFitPackRate: the through-origin throughput fit is exact for a linear
// pack cost.
func TestFitPackRate(t *testing.T) {
	const rate = 4e9
	c := NewCalibrator()
	for _, bytes := range []int64{512, 4096, 65536} {
		c.AddPack(bytes, float64(bytes)/rate)
	}
	cal := c.Fit(Calib{L: 1e-6, B: 1e9, PackRate: 1})
	if !cal.PackMeasured {
		t.Fatal("pack samples must identify the rate")
	}
	approx(t, "PackRate", cal.PackRate, rate, 1e-12)
	// Non-positive observations are rejected at Add time.
	c2 := NewCalibrator()
	c2.AddPack(0, 1e-6)
	c2.AddPack(100, 0)
	if cal2 := c2.Fit(Calib{PackRate: 7}); cal2.PackMeasured || cal2.PackRate != 7 {
		t.Error("degenerate pack samples must keep the prior")
	}
}

// TestSolveGComputeBound: a loop whose span is pure compute must invert to
// g = T/(S^c+S^1) on the compute-bound branch.
func TestSolveGComputeBound(t *testing.T) {
	const g = 5e-8
	net := model.Net{L: 1e-6, B: 10e9}
	p := model.LoopParams{CoreIters: 10000, HaloIters: 500, NDats: 1, Neighbours: 2, MsgBytes: 100}
	comm := 2 * p.NDats * p.Neighbours * (net.L + p.MsgBytes/net.B)
	span := g*p.CoreIters + g*p.HaloIters // compute-bound: g*S^c > comm
	if g*p.CoreIters <= comm {
		t.Fatal("test setup must be compute-bound")
	}
	c := NewCalibrator()
	c.AddLoop("k", p, span)
	got, ok := solveG(c.loops["k"], net)
	if !ok {
		t.Fatal("compute-bound sample must be identifiable")
	}
	approx(t, "g", got, g, 1e-12)
}

// TestSolveGCommBound: when comm hides the core, only the halo region
// exposes g and the comm-bound branch must be taken.
func TestSolveGCommBound(t *testing.T) {
	const g = 1e-8
	net := model.Net{L: 100e-6, B: 1e9}
	p := model.LoopParams{CoreIters: 100, HaloIters: 400, NDats: 2, Neighbours: 4, MsgBytes: 10000}
	comm := 2 * p.NDats * p.Neighbours * (net.L + p.MsgBytes/net.B)
	if g*p.CoreIters >= comm {
		t.Fatal("test setup must be comm-bound")
	}
	span := comm + g*p.HaloIters
	c := NewCalibrator()
	c.AddLoop("k", p, span)
	got, ok := solveG(c.loops["k"], net)
	if !ok {
		t.Fatal("comm-bound sample with a halo region must be identifiable")
	}
	approx(t, "g", got, g, 1e-9)

	// Without a halo region g hides entirely behind comm: a span strictly
	// below comm cannot identify g and must be skipped.
	p2 := p
	p2.HaloIters = 0
	c2 := NewCalibrator()
	c2.AddLoop("k", p2, 0.9*comm)
	if _, ok := solveG(c2.loops["k"], net); ok {
		t.Error("pure-communication span must be skipped")
	}
}

// TestFitSolvesLoopsAndKeepsPriorG: probed loops override the prior's g,
// unprobed prior entries survive.
func TestFitSolvesLoopsAndKeepsPriorG(t *testing.T) {
	const g = 2e-8
	c := NewCalibrator()
	for _, bytes := range []int64{100, 1000} {
		c.AddExchange(bytes, 1e-6+float64(bytes)/10e9)
	}
	p := model.LoopParams{CoreIters: 50000, HaloIters: 1000, NDats: 1, Neighbours: 1, MsgBytes: 64}
	c.AddLoop("probed", p, g*(p.CoreIters+p.HaloIters))
	cal := c.Fit(Calib{L: 1e-6, B: 10e9, PackRate: 1e9,
		G: map[string]float64{"probed": 99, "unprobed": 7e-8}})
	approx(t, "g[probed]", cal.G["probed"], g, 1e-9)
	if cal.G["unprobed"] != 7e-8 {
		t.Errorf("unprobed prior g lost: %g", cal.G["unprobed"])
	}
	if cal.GFor("probed", 1) == 1 || cal.GFor("never-seen", 3e-8) != 3e-8 {
		t.Error("GFor fallback semantics broken")
	}
}

// TestExtraLatencyAddedToFitOnly: the staged-GPU correction Λ-L applies to
// the fitted latency but never to the prior.
func TestExtraLatencyAddedToFitOnly(t *testing.T) {
	const L, B, extra = 2e-6, 10e9, 20e-6
	mk := func(fill bool) Calib {
		c := NewCalibrator()
		c.ExtraLatency = extra
		if fill {
			for _, bytes := range []int64{100, 1000, 10000} {
				c.AddExchange(bytes, L+float64(bytes)/B)
			}
		}
		return c.Fit(Calib{L: 5e-6, B: 1e9, PackRate: 1e9})
	}
	fitted := mk(true)
	approx(t, "fitted L", fitted.L, L+extra, 1e-9)
	if prior := mk(false); prior.L != 5e-6 {
		t.Errorf("prior L must stay uncorrected, got %g", prior.L)
	}
}

// TestCalibNetAndString covers the pack-cost plumbing and the log format.
func TestCalibNetAndString(t *testing.T) {
	cal := Calib{L: 1e-6, B: 1e9, PackRate: 2e9, G: map[string]float64{"k": 1e-8}}
	if n := cal.Net(0); n.C != 0 {
		t.Error("no grouped payload, no pack cost")
	}
	if n := cal.Net(4e9); n.C != 2 {
		t.Errorf("Net(4e9).C = %g, want 2", n.C)
	}
	s := cal.String()
	if !strings.Contains(s, "prior") || !strings.Contains(s, "g[k]") {
		t.Errorf("String() = %q", s)
	}
	cal.NetMeasured = true
	cal.ExchangeSamples = 9
	if s := cal.String(); !strings.Contains(s, "fit of 9 msgs") {
		t.Errorf("String() = %q", s)
	}
}

// TestFitProtocolAware feeds noiseless samples straddling the eager
// threshold, obeying t = L·h + m/B with h = 1 (eager) or 3 (rendezvous:
// one latency plus the two-latency handshake). The protocol-aware fit must
// recover L, B and Handshake = 2L exactly, and must beat a single-line fit
// over the same data, which absorbs the 2L step into its parameters.
func TestFitProtocolAware(t *testing.T) {
	const (
		L   = 8e-6
		B   = 5e8
		thr = 65536.0
	)
	sizes := []int64{1024, 8192, 32768, 65536, 131072, 524288, 1 << 21}
	span := func(bytes int64) float64 {
		h := 1.0
		if float64(bytes) > thr {
			h = 3
		}
		return L*h + float64(bytes)/B
	}
	c := NewCalibrator()
	c.EagerThreshold = thr
	for _, bytes := range sizes {
		c.AddExchange(bytes, span(bytes))
	}
	cal := c.Fit(Calib{L: 1, B: 1, PackRate: 1})
	if !cal.NetMeasured {
		t.Fatal("samples straddling the threshold must identify the network")
	}
	approx(t, "L", cal.L, L, 1e-9)
	approx(t, "B", cal.B, B, 1e-9)
	approx(t, "Handshake", cal.Handshake, 2*L, 1e-9)
	if cal.EagerThreshold != thr {
		t.Errorf("EagerThreshold = %g, want %g", cal.EagerThreshold, thr)
	}

	// The old single-line fit (threshold ignored) over the same data: its
	// recovered parameters mispredict the samples, while the protocol-aware
	// fit reproduces them exactly.
	naive := NewCalibrator()
	for _, bytes := range sizes {
		naive.AddExchange(bytes, span(bytes))
	}
	ncal := naive.Fit(Calib{L: 1, B: 1, PackRate: 1})
	if !ncal.NetMeasured {
		t.Fatal("naive fit refused")
	}
	var errAware, errNaive float64
	for _, bytes := range sizes {
		m := float64(bytes)
		errAware += math.Abs(cal.Net(0).MsgTime(m) - span(bytes))
		// The naive fit has no protocol term: its prediction is L + m/B.
		errNaive += math.Abs(ncal.L + m/ncal.B - span(bytes))
	}
	if errAware >= errNaive {
		t.Errorf("protocol-aware fit error %g >= naive fit error %g", errAware, errNaive)
	}
	if errAware > 1e-12 {
		t.Errorf("protocol-aware fit should reproduce noiseless samples exactly, error %g", errAware)
	}
}

// TestFitEagerOnlyReducesToLine: with every sample below the threshold h is
// constant, so the protocol-aware regression must coincide with the plain
// intercept+slope fit (and still report the two-latency handshake for any
// future rendezvous message).
func TestFitEagerOnlyReducesToLine(t *testing.T) {
	const L, B, thr = 8e-6, 5e8, 65536.0
	c := NewCalibrator()
	c.EagerThreshold = thr
	for _, bytes := range []int64{512, 1024, 4096, 16384} {
		c.AddExchange(bytes, L+float64(bytes)/B)
	}
	cal := c.Fit(Calib{L: 1, B: 1, PackRate: 1})
	if !cal.NetMeasured {
		t.Fatal("four distinct sizes must identify the network")
	}
	approx(t, "L", cal.L, L, 1e-9)
	approx(t, "B", cal.B, B, 1e-9)
	approx(t, "Handshake", cal.Handshake, 2*L, 1e-9)
}
