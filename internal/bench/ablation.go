package bench

import (
	"fmt"

	"op2ca/internal/chaincfg"
	"op2ca/internal/cluster"
	"op2ca/internal/halo"
	"op2ca/internal/hydra"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/partition"
)

// hydraApp and hydraPaperConfig keep the ablation code terse.
func hydraApp(m *mesh.FV3D) *hydra.App   { return hydra.New(m) }
func hydraPaperConfig() *chaincfg.Config { return hydra.MustPaperConfig() }

// Ablations isolate the design choices DESIGN.md calls out: halo depth
// (redundant compute vs communication), message grouping (Figure 8),
// partitioner choice (neighbour counts), and GPU launch overhead.

// runSyntheticOnce runs the MG-CFD synthetic chain for one configuration
// and returns the per-iteration virtual time.
func (c Config) runSyntheticOnce(cfg cluster.Config, h *mesh.Hierarchy, nchains int, chained bool) float64 {
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	cfg.Prog = app.Prog
	cfg.Primary = app.Primary
	cfg.Tracer = c.Tracer
	cfg.Faults = c.Faults
	label := fmt.Sprintf("synthetic ca=%v depth=%d grouped=%v loops=%d ranks=%d",
		cfg.CA, cfg.Depth, !cfg.NoGroupedMsgs, 2*nchains, cfg.NParts)
	var rctx synResumeCtx
	b, start := c.resume(label, cfg, &rctx)
	if b == nil {
		var err error
		b, err = cluster.New(cfg)
		if err != nil {
			panic("bench: " + err.Error())
		}
		c.adopt(b)
		app.Init(b)
		syn.Run(b, nchains, chained) // warm-up
		rctx.T0 = b.MaxClock()
	}
	for it := start; it < c.Iters; it++ {
		syn.Run(b, nchains, chained)
		c.tick(b, label, it+1, rctx)
	}
	c.observe(label, b)
	return (b.MaxClock() - rctx.T0) / float64(c.Iters)
}

// AblationDepth sweeps the configured halo extension of the synthetic chain
// above the required r=2: deeper halos buy nothing here and cost redundant
// computation plus message volume — the paper's Section 3.2 trade-off made
// visible.
func AblationDepth(c Config) *Table {
	t := &Table{
		Title:  "Ablation: halo depth vs runtime (MG-CFD synthetic chain, 16 loops, ARCHER2)",
		Header: []string{"Configured HE", "CA t(s)", "vs OP2 gain%"},
		Notes: []string{
			"the chain needs r = 2; deeper extensions add redundant computation and bytes for no dependency benefit",
		},
	}
	ranks := c.ranksFor(64, 128)
	m := mesh.RotorForNodes(c.Nodes8M)
	h := mesh.NewHierarchy(m, 1, true)
	assign := partition.KWay(m.NodeAdjacency(), ranks)
	const nchains = 8

	base := cluster.Config{
		Assign: assign, NParts: ranks, MaxChainLen: 2 * nchains,
		Machine: machine.ARCHER2(), Parallel: c.Parallel,
	}
	op2Cfg := base
	op2Cfg.Depth = 2
	op2Time := c.runSyntheticOnce(op2Cfg, h, nchains, false)

	for _, he := range []int{2, 3, 4} {
		cfg := base
		cfg.CA = true
		cfg.Depth = he
		if he > 2 {
			// The inspector picks r = 2 naturally; pin every loop deeper
			// to expose the cost of excess redundancy.
			spec := "chain synthetic\n"
			for i := 0; i < 2*nchains; i++ {
				spec += fmt.Sprintf("loop l%d he=%d\n", i, he)
			}
			chains, err := chaincfg.ParseString(spec)
			if err != nil {
				panic("bench: " + err.Error())
			}
			cfg.Chains = chains
		}
		caTime := c.runSyntheticOnce(cfg, h, nchains, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(he), f6(caTime), f2(gain(op2Time, caTime)),
		})
	}
	return t
}

// AblationGrouping compares the CA chain with grouped messages (Figure 8)
// against CA with per-dat messages: same redundant computation and byte
// volume, different message counts.
func AblationGrouping(c Config) *Table {
	t := &Table{
		Title:  "Ablation: grouped vs per-dat chain messages (MG-CFD synthetic chain, ARCHER2)",
		Header: []string{"#Loops", "OP2 t(s)", "CA per-dat t(s)", "CA grouped t(s)", "grouped gain% over per-dat"},
		Notes: []string{
			"per-dat CA still eliminates per-loop exchanges; grouping additionally collapses messages per neighbour",
		},
	}
	ranks := c.ranksFor(64, 128)
	m := mesh.RotorForNodes(c.Nodes8M)
	h := mesh.NewHierarchy(m, 1, true)
	assign := partition.KWay(m.NodeAdjacency(), ranks)

	for _, nchains := range []int{2, 8} {
		base := cluster.Config{
			Assign: assign, NParts: ranks, Depth: 2, MaxChainLen: 2 * nchains,
			Machine: machine.ARCHER2(), Parallel: c.Parallel,
		}
		op2Cfg := base
		op2Time := c.runSyntheticOnce(op2Cfg, h, nchains, false)
		perDat := base
		perDat.CA = true
		perDat.NoGroupedMsgs = true
		perDatTime := c.runSyntheticOnce(perDat, h, nchains, true)
		grouped := base
		grouped.CA = true
		groupedTime := c.runSyntheticOnce(grouped, h, nchains, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(2 * nchains), f6(op2Time), f6(perDatTime), f6(groupedTime),
			f2(gain(perDatTime, groupedTime)),
		})
	}
	return t
}

// AblationPartitioner runs the synthetic chain under the available
// partitioners: partition quality (edge cut, neighbour count) drives both
// back-ends' communication, and bad partitions amplify CA's redundant halo
// computation.
func AblationPartitioner(c Config) *Table {
	t := &Table{
		Title:  "Ablation: partitioner choice (MG-CFD synthetic chain, 16 loops, ARCHER2)",
		Header: []string{"Partitioner", "EdgeCut", "MaxNeigh", "Imbal", "OP2 t(s)", "CA t(s)", "Gain%"},
	}
	ranks := c.ranksFor(64, 128)
	m := mesh.RotorForNodes(c.Nodes8M)
	h := mesh.NewHierarchy(m, 1, true)
	adj := m.NodeAdjacency()
	const nchains = 8

	parts := []struct {
		name   string
		assign partition.Assignment
	}{
		{"kway", partition.KWay(adj, ranks)},
		{"rib", partition.RIB(m.Coords, 3, ranks)},
		{"rcb", partition.RCB(m.Coords, 3, ranks)},
		{"block", partition.Block(m.NNodes, ranks)},
		{"random", partition.Random(m.NNodes, ranks, 7)},
	}
	for _, pc := range parts {
		q := partition.Evaluate(adj, pc.assign, ranks)
		base := cluster.Config{
			Assign: pc.assign, NParts: ranks, Depth: 2, MaxChainLen: 2 * nchains,
			Machine: machine.ARCHER2(), Parallel: c.Parallel,
		}
		op2Time := c.runSyntheticOnce(base, h, nchains, false)
		caCfg := base
		caCfg.CA = true
		caTime := c.runSyntheticOnce(caCfg, h, nchains, true)
		t.Rows = append(t.Rows, []string{
			pc.name, fmt.Sprint(q.EdgeCut), fmt.Sprint(q.MaxNeighbours),
			f2(q.Imbalance), f6(op2Time), f6(caTime), f2(gain(op2Time, caTime)),
		})
	}
	return t
}

// AblationGPUDirect compares the paper's staged PCIe exchange pipeline
// against GPUDirect transfers (Section 3.3: the authors chose staging
// because GPUDirect "in many cases did not run simultaneously with the
// computing kernels"). The vflux-heavy Hydra iteration reproduces that
// choice; see cluster.TestGPUDirectSlowerThanStaging for the light-kernel
// counterexample.
func AblationGPUDirect(c Config) *Table {
	t := &Table{
		Title:  "Ablation: staged PCIe pipeline vs GPUDirect (Hydra iteration, Cirrus)",
		Header: []string{"#Ranks", "Staged CA t(s)", "GPUDirect CA t(s)", "staging gain%"},
		Notes: []string{
			"GPUDirect removes PCIe staging but does not overlap with kernels (the paper's measurement)",
			"staging wins when per-GPU kernels are heavy enough to hide the transfers; at very small per-rank loads GPUDirect's saved latencies win instead",
		},
	}
	m := mesh.RotorForNodes(c.Nodes8M)
	for _, ranks := range []int{2, 4} {
		assign := partition.RIB(m.Coords, 3, ranks)
		run := func(direct bool) float64 {
			app := hydraApp(m)
			b, err := cluster.New(cluster.Config{
				Prog: app.Prog, Primary: app.Nodes, Assign: assign, NParts: ranks,
				Depth: 2, MaxChainLen: 6, CA: true, GPUDirect: direct,
				Chains: hydraPaperConfig(), Machine: machine.Cirrus(), Parallel: c.Parallel,
				Tracer: c.Tracer, Faults: c.Faults,
			})
			if err != nil {
				panic("bench: " + err.Error())
			}
			c.adopt(b)
			app.RunSetup(b, true)
			app.RunIteration(b, true)
			t0 := b.MaxClock()
			for it := 0; it < c.Iters; it++ {
				app.RunIteration(b, true)
			}
			c.observe(fmt.Sprintf("hydra ca gpudirect=%v ranks=%d (Cirrus)", direct, ranks), b)
			return (b.MaxClock() - t0) / float64(c.Iters)
		}
		staged := run(false)
		direct := run(true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ranks), f6(staged), f6(direct), f2(gain(direct, staged)),
		})
	}
	return t
}

// AblationGPULaunch sweeps the GPU kernel-launch overhead. Both back-ends
// launch two kernels per loop (core and halo phases), so the overhead is a
// common cost: growing it dilutes the relative CA gain, isolating how much
// of the GPU win comes from message/staging reduction rather than launches.
func AblationGPULaunch(c Config) *Table {
	t := &Table{
		Title:  "Ablation: GPU launch overhead sensitivity (MG-CFD synthetic chain, 16 loops, Cirrus)",
		Header: []string{"Launch overhead", "OP2 t(s)", "CA t(s)", "Gain%"},
		Notes: []string{
			"launch overhead is paid equally by both back-ends (two launches per loop); it dilutes the relative gain",
		},
	}
	ranks := gpuRanksFor(8)
	m := mesh.RotorForNodes(c.Nodes8M)
	h := mesh.NewHierarchy(m, 1, true)
	assign := partition.KWay(m.NodeAdjacency(), ranks)
	const nchains = 8

	for _, overhead := range []float64{0, 8e-6, 32e-6} {
		mach := machine.Cirrus()
		mach.GPU.LaunchOverhead = overhead
		base := cluster.Config{
			Assign: assign, NParts: ranks, Depth: 2, MaxChainLen: 2 * nchains,
			Machine: mach, Parallel: c.Parallel,
		}
		op2Time := c.runSyntheticOnce(base, h, nchains, false)
		caCfg := base
		caCfg.CA = true
		caTime := c.runSyntheticOnce(caCfg, h, nchains, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0fus", overhead*1e6), f6(op2Time), f6(caTime),
			f2(gain(op2Time, caTime)),
		})
	}
	return t
}

// HaloProfile reports the halo-shell structure of the rotor mesh under the
// strong-scaling rank counts: the Section 3.2 determinants (core sizes,
// shell sizes, shell growth ratios) that decide whether a chain profits
// from CA, measured rather than modelled.
func HaloProfile(c Config) *Table {
	t := &Table{
		Title: "Halo profile: shell sizes per rank (rotor mesh, depth 3)",
		Header: []string{"#Ranks", "Set", "Owned", "Core", "Exec d1", "Exec d2", "Exec d3",
			"Nonexec d1", "Nonexec d2", "Nonexec d3", "d2/d1 growth"},
		Notes: []string{
			"per-rank averages; exec shells are redundantly computed by CA chains, the growth ratio is the per-layer cost",
		},
	}
	m := mesh.RotorForNodes(c.Nodes8M)
	app := hydraApp(m)
	for _, paperNodes := range []int{4, 16, 64} {
		ranks := c.ranksFor(paperNodes, 128)
		assign := partition.RIB(m.Coords, 3, ranks)
		owners, err := halo.DeriveOwnership(app.Prog, app.Nodes, assign)
		if err != nil {
			panic("bench: " + err.Error())
		}
		layouts := halo.Build(app.Prog, owners, ranks, 3, 6)
		for _, p := range halo.Profile(app.Prog, layouts) {
			if p.Set.Name != "nodes" && p.Set.Name != "edges" && p.Set.Name != "pedges" {
				continue
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(ranks), p.Set.Name, f2(p.AvgOwned), f2(p.AvgCore),
				f2(p.AvgExec[0]), f2(p.AvgExec[1]), f2(p.AvgExec[2]),
				f2(p.AvgNonexec[0]), f2(p.AvgNonexec[1]), f2(p.AvgNonexec[2]),
				f2(p.GrowthRatio(2)),
			})
		}
	}
	return t
}
