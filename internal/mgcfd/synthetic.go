package mgcfd

import "op2ca/internal/core"

// Synthetic is the paper's synthetic loop-chain (Section 4.1.1): pairs of
// (update, edge_flux) loops over the finest level's edges. update
// increments sres (making it dirty); edge_flux — a replica of
// compute_flux_edge's access pattern and cost — indirectly reads sres.
// Repeating the pair nchains times builds a 2*nchains-loop chain whose halo
// requirement stays at r = 2 regardless of length, so the grouped CA
// message size is constant while standard OP2 exchanges grow linearly with
// the loop count.
type Synthetic struct {
	app   *App
	sres  *core.Dat
	spres *core.Dat
	sflux *core.Dat
}

// kSynUpdate increments the residual from pressure-like differences. The
// increment depends only on read-mode data, keeping it commutative as
// OP_INC requires.
var kSynUpdate = &core.Kernel{Name: "update", Flops: 20, MemBytes: 240,
	Fn: func(a [][]float64) {
		res1, res2, pres1, pres2 := a[0], a[1], a[2], a[3]
		for i := 0; i < 5; i++ {
			res1[i] += 0.05 * (pres1[i] - pres2[i])
			res2[i] += 0.05 * (pres2[i] - pres1[i])
		}
	}}

// kSynFlux replicates compute_flux_edge's arithmetic shape and cost,
// reading sres indirectly (the dirty dat) and the edge weights directly.
var kSynFlux = &core.Kernel{Name: "edge_flux", Flops: 110, MemBytes: 280,
	Fn: func(a [][]float64) {
		flux1, flux2, res1, res2, w := a[0], a[1], a[2], a[3], a[4]
		area := w[0]*w[0] + w[1]*w[1] + w[2]*w[2]
		for i := 0; i < 5; i++ {
			f := 0.5*(res1[i]+res2[i])*area - 0.25*(res2[i]-res1[i])
			flux1[i] -= 0.01 * f
			flux2[i] += 0.01 * f
		}
	}}

// kSynAdvance evolves the pressure-like field from the residual between
// chain executions (outside the chain), dirtying spres, and damps the
// residual and flux fields to keep all values bounded over long runs.
var kSynAdvance = &core.Kernel{Name: "advance", Flops: 25, MemBytes: 240,
	Fn: func(a [][]float64) {
		pres, res, flux := a[0], a[1], a[2]
		for i := 0; i < 5; i++ {
			pres[i] += 0.1*res[i] - 0.05*pres[i]
			res[i] *= 0.9
			flux[i] *= 0.5
		}
	}}

// NewSynthetic declares the synthetic chain's dats on the finest level.
func NewSynthetic(a *App) *Synthetic {
	if a.syn != nil {
		return a.syn
	}
	s := &Synthetic{app: a}
	nodes := a.Levels[0].Nodes
	s.sres = a.Prog.DeclDat(nodes, 5, nil, "sres")
	s.spres = a.Prog.DeclDat(nodes, 5, nil, "spres")
	s.sflux = a.Prog.DeclDat(nodes, 5, nil, "sflux")
	for i := range s.spres.Data {
		s.spres.Data[i] = float64(i%9-4) * 0.125
	}
	a.syn = s
	return s
}

// Dats exposes the synthetic dats for verification.
func (s *Synthetic) Dats() (sres, spres, sflux *core.Dat) { return s.sres, s.spres, s.sflux }

// Run executes one outer iteration: the 2*nchains-loop chain (demarcated
// when chained is true), then the advance loop that re-dirties spres.
func (s *Synthetic) Run(b core.Backend, nchains int, chained bool) {
	lv := s.app.Levels[0]
	if chained {
		b.ChainBegin("synthetic")
	}
	for c := 0; c < nchains; c++ {
		b.ParLoop(core.NewLoop(kSynUpdate, lv.Edges,
			core.ArgDat(s.sres, 0, lv.E2N, core.Inc),
			core.ArgDat(s.sres, 1, lv.E2N, core.Inc),
			core.ArgDat(s.spres, 0, lv.E2N, core.Read),
			core.ArgDat(s.spres, 1, lv.E2N, core.Read)))
		b.ParLoop(core.NewLoop(kSynFlux, lv.Edges,
			core.ArgDat(s.sflux, 0, lv.E2N, core.Inc),
			core.ArgDat(s.sflux, 1, lv.E2N, core.Inc),
			core.ArgDat(s.sres, 0, lv.E2N, core.Read),
			core.ArgDat(s.sres, 1, lv.E2N, core.Read),
			core.ArgDatDirect(lv.EdgeW, core.Read)))
	}
	if chained {
		b.ChainEnd()
	}
	b.ParLoop(core.NewLoop(kSynAdvance, lv.Nodes,
		core.ArgDatDirect(s.spres, core.ReadWrite),
		core.ArgDatDirect(s.sres, core.ReadWrite),
		core.ArgDatDirect(s.sflux, core.ReadWrite)))
}
