package cluster

// recovery.go is the fault-tolerant delivery layer between the deterministic
// fault plan (package faults) and the virtual network (package netsim). All
// simulated transfers move data reliably — pack and unpack copy values
// unconditionally — so injected faults shape only the virtual clocks, the
// fault counters and the trace: a faulted run's results are bit-identical to
// the fault-free run by construction, exactly as a real fault-tolerant
// transport hides losses from the application.
//
// A lost or corrupt attempt is detected one RetryTimeout after its
// (non-)arrival and retransmitted after an exponential backoff
// (RetryBackoff * 2^attempt); every retransmission occupies the sender's NIC
// for another L + m/B. A message that exhausts its budget of MaxRetries
// retransmissions is a giveup: per-loop exchanges treat it as delivered by a
// reliable transport at the final attempt's arrival, while CA chains degrade
// the whole window (see runChainImpl's degradation ladder).

import (
	"op2ca/internal/chaincfg"
	"op2ca/internal/faults"
	"op2ca/internal/netsim"
	"op2ca/internal/obs"
)

// delivery is the outcome of one exchange's message delivery.
type delivery struct {
	// arrivals parallels the exchange's messages: the arrival time of the
	// first usable copy, or of the final failed attempt for given-up
	// messages.
	arrivals []float64
	// giveups counts messages that exhausted the retransmission budget.
	giveups int
	// failAt is the latest final-attempt arrival among given-up messages.
	failAt float64
}

// restartTime is the virtual time the runtime learns the exchange cannot
// complete: one detection timeout after the last given-up attempt's arrival.
func (d delivery) restartTime(timeout float64) float64 { return d.failAt + timeout }

// deliver computes message arrival times under the configured fault plan,
// charging retransmissions, backoff and straggler slowdowns in virtual time
// and counting every event into the run's FaultStats. With no plan (or a
// plan that injects nothing) it reduces to netsim.Deliver — the arithmetic
// of the clean path is identical operation for operation, so enabling fault
// injection with zero probabilities does not perturb a single clock bit.
// owner labels the retry/giveup trace spans (the chain or kernel name).
// overlap selects the pipelined post/complete delivery of the task-graph
// executor (see taskgraph.go) instead of bulk-synchronous NIC serialisation.
func (b *Backend) deliver(post []float64, msgs []netsim.Message, owner string, maxRetries int, overlap bool) delivery {
	seq := b.exchangeGate(owner)
	plan := b.cfg.Faults
	if overlap {
		return b.deliverOverlapped(seq, post, msgs, owner, maxRetries)
	}
	if !plan.Enabled() {
		b.scr.arrivals = b.net.DeliverInto(b.scr.arrivals[:0], b.scr.busy, post, msgs)
		arrivals := b.scr.arrivals
		if ct := b.tuneSampling; ct != nil {
			// Calibration sampling: replay the per-sender serialisation to
			// recover each message's own span (NIC-ready to arrival). Only
			// clean deliveries feed the fit — retransmission noise under
			// fault injection would poison the L/B regression.
			busy := make(map[int32]float64, len(post))
			for i, m := range msgs {
				start, ok := busy[m.From]
				if !ok {
					start = post[m.From]
				}
				ct.cal.AddExchange(m.Bytes, arrivals[i]-start)
				busy[m.From] = arrivals[i]
			}
		}
		return delivery{arrivals: arrivals}
	}
	fs := &b.stats.Faults
	traced := b.tracer.Enabled()
	d := delivery{arrivals: make([]float64, len(msgs))}
	busy := make(map[int32]float64, len(post))
	for i, m := range msgs {
		start, ok := busy[m.From]
		if !ok {
			start = post[m.From]
		}
		base := b.net.MessageTime(m.Bytes)
		for try := 0; ; try++ {
			v := plan.Judge(faults.Attempt{Exchange: seq, Msg: i, Try: try, From: m.From, To: m.To})
			arr := start + base*v.Slow*v.Delay
			busy[m.From] = arr
			if v.Delay > 1 {
				fs.Delays++
			}
			if !v.Failed() {
				d.arrivals[i] = arr
				break
			}
			if v.Drop {
				fs.Drops++
			} else {
				fs.Corrupts++
			}
			if try >= maxRetries {
				fs.Giveups++
				d.giveups++
				d.arrivals[i] = arr
				if arr > d.failAt {
					d.failAt = arr
				}
				if traced {
					b.tracer.Emit(m.From, obs.TrackExec, obs.Giveup, owner,
						arr, arr+b.retryTimeout, m.Bytes)
				}
				break
			}
			fs.Retries++
			// Detection one timeout after the failed attempt, then the
			// exponential backoff; the NIC sits idle until the retransmit.
			next := arr + b.retryTimeout + b.retryBackoff*backoffFactor(try)
			if traced {
				b.tracer.Emit(m.From, obs.TrackExec, obs.Retry, owner, arr, next, m.Bytes)
				// The retry edge lets the critical-path walk and the wait
				// attribution charge this stretch of the message's window
				// to retransmission rather than transit.
				b.tracer.EmitEdge(obs.Edge{
					Kind: obs.EdgeRetry, Name: owner, From: m.From, To: m.From,
					Post: arr, Begin: arr, End: next, Ready: arr, Bytes: m.Bytes,
				})
			}
			busy[m.From] = next
			start = next
		}
	}
	return d
}

// exchangeGate runs the per-exchange control checks shared by the bulk and
// overlapped delivery paths — sequence numbering, cooperative cancellation,
// scheduled crashes and the no-progress watchdog — and returns the
// exchange's sequence number.
func (b *Backend) exchangeGate(owner string) uint64 {
	seq := b.faultSeq
	b.faultSeq++
	// Cooperative cancellation is observed only here, at the exchange
	// boundary — never mid-kernel or mid-pack — so every ring generation
	// written before this point is complete and restorable. An atomic load
	// keeps the clean path allocation-free and branch-cheap.
	if b.cancelled.Load() {
		panic(&CancelledError{Exchange: seq})
	}
	plan := b.cfg.Faults
	// Crash faults fire before any message arithmetic: the process dies at
	// a deterministic exchange sequence number, recoverable only by
	// restarting from a checkpoint. Each clause is gated by its own armed
	// flag: Restore disarms all of them (a manually resumed run replays the
	// pre-crash exchanges without dying again), while a supervisor re-arms
	// the clauses that have not fired yet so the rest of a multi-crash
	// schedule still fires on the resumed run.
	for i, c := range plan.CrashSchedule() {
		if seq == c.Exchange && i < len(b.crashArmed) && b.crashArmed[i] {
			b.crashArmed[i] = false
			panic(&faults.CrashError{Rank: c.Rank, Exchange: c.Exchange})
		}
	}
	// The no-progress watchdog trips when the clock has advanced past the
	// deadline since the last completed exchange — the virtual-time
	// signature of a stall (e.g. a giveup storm inflating retry backoff).
	if b.watchdog > 0 {
		now := b.maxClock()
		if now-b.lastProgress > b.watchdog {
			if b.tracer.Enabled() {
				b.tracer.Emit(0, obs.TrackExec, obs.Watchdog, owner, b.lastProgress, now, 0)
			}
			panic(&HangError{Exchange: seq, Last: b.lastProgress, Clock: now, Deadline: b.watchdog})
		}
		b.lastProgress = now
	}
	return seq
}

// maxRetryBudget bounds every user-settable retransmission budget (Config,
// fault-plan and per-chain maxretries). Well before 1000 retries the
// exponential backoff dwarfs any simulated runtime; rejecting larger values
// in cluster.New keeps the backoff arithmetic far from its try>=63
// saturation point (see backoffFactor).
const maxRetryBudget = 1000

// backoffFactor is the exponential backoff multiplier 2^try, saturated at
// 2^62: `int64(1) << try` overflows to a *negative* factor at try >= 63,
// which would move the retransmission back in virtual time. maxretries= is
// user-settable (chaincfg), so the boundary is reachable from config.
func backoffFactor(try int) float64 {
	if try >= 62 {
		return float64(int64(1) << 62)
	}
	return float64(int64(1) << uint(try))
}

// maxRetriesFor resolves the per-message retransmission budget for one
// chain: the chain configuration's maxretries override when present, else
// the backend-wide budget.
func (b *Backend) maxRetriesFor(c *chaincfg.Chain) int {
	if c != nil && c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return b.maxRetries
}
