package cluster

import (
	"fmt"
	"sort"
	"strings"

	"op2ca/internal/autotune"
	"op2ca/internal/obs"
	"op2ca/internal/obs/analysis"
)

// LoopStats aggregates the executions of one named loop outside chains.
type LoopStats struct {
	Name string
	// Executions counts op_par_loop calls.
	Executions int
	// Msgs and Bytes total the halo messages sent across all ranks.
	Msgs  int64
	Bytes int64
	// DatsExchanged totals, over executions, the number of dats whose
	// halos were exchanged (the d_l term).
	DatsExchanged int64
	// MaxNeighbours is the largest per-rank neighbour count seen (p).
	MaxNeighbours int
	// MaxMsgBytes is the largest single message (m).
	MaxMsgBytes int64
	// CoreIters and HaloIters split iterations into those overlapped with
	// communication and those executed after the wait, totalled over
	// ranks and executions.
	CoreIters int64
	HaloIters int64
	// Time is the virtual wall time attributed to this loop (max over
	// ranks, summed over executions).
	Time float64
	// Predicted accumulates, per execution, the Equation (1) model
	// prediction evaluated with that execution's measured parameters.
	Predicted float64
}

// ChainStats aggregates the executions of one named loop-chain.
type ChainStats struct {
	Name string
	// NLoop is the loop count of the most recent execution; NLoopMin and
	// NLoopMax track the spread across executions (auto-detected lazy
	// chains vary in length from flush to flush).
	NLoop    int
	NLoopMin int
	NLoopMax int
	// Executions counts ChainEnd calls; CAExecutions counts those that
	// ran with Algorithm 2 rather than falling back to per-loop code.
	Executions   int
	CAExecutions int
	// HE records the halo extension of each loop from the last CA run.
	HE []int
	// Msgs and Bytes total the grouped messages.
	Msgs  int64
	Bytes int64
	// DatsExchanged totals dats included in the grouped message.
	DatsExchanged int64
	// MaxNeighbours is the largest per-rank neighbour count (p).
	MaxNeighbours int
	// MaxMsgBytes is the largest single grouped message (the m^r term).
	MaxMsgBytes int64
	// MaxRankBytes is the largest per-rank total grouped send volume
	// (the p*m^r proxy of Table 2).
	MaxRankBytes int64
	// CoreIters and HaloIters are as in LoopStats, totalled over loops.
	CoreIters int64
	HaloIters int64
	// Time is the virtual wall time of the chain (max over ranks, summed
	// over executions).
	Time float64
	// Predicted accumulates, per CA execution, the Equation (3) model
	// prediction (or the Equation (2) sum of per-loop predictions when the
	// chain fell back to per-loop execution).
	Predicted float64
	// FallbackUngrouped and FallbackPerLoop count degradations under fault
	// injection: grouped exchanges that exhausted their retransmission
	// budget and retried with per-dat messages, and chain windows that
	// degraded all the way to per-loop OP2 execution.
	FallbackUngrouped int
	FallbackPerLoop   int
}

// FaultStats aggregates fault-injection and recovery events across a run.
// All zeros on a fault-free run.
type FaultStats struct {
	// Drops, Corrupts and Delays count injected fault events per
	// transmission attempt.
	Drops    int64
	Corrupts int64
	Delays   int64
	// Retries counts retransmissions; Giveups counts messages that
	// exhausted their retransmission budget.
	Retries int64
	Giveups int64
	// FallbackUngrouped and FallbackPerLoop total the chain degradations
	// (see ChainStats).
	FallbackUngrouped int64
	FallbackPerLoop   int64
}

// Add accumulates o's counters into s, for aggregation across backends.
func (s *FaultStats) Add(o FaultStats) {
	s.Drops += o.Drops
	s.Corrupts += o.Corrupts
	s.Delays += o.Delays
	s.Retries += o.Retries
	s.Giveups += o.Giveups
	s.FallbackUngrouped += o.FallbackUngrouped
	s.FallbackPerLoop += o.FallbackPerLoop
}

// CkptStats counts checkpoint/restart activity. Checkpoint writes and
// restores are host I/O off the virtual-time critical path, so these
// counters never influence simulated clocks or results.
type CkptStats struct {
	// Checkpoints counts snapshots written; CheckpointBytes totals their
	// encoded size.
	Checkpoints     int64
	CheckpointBytes int64
	// Restores counts backends rebuilt from a snapshot (at most 1 per
	// backend: the restored backend starts with the snapshot's count plus
	// its own restore).
	Restores int64
}

// SuperviseStats summarises a supervised run's recovery activity: restart
// counts by failure class, checkpoint-ring recovery work and the virtual
// time charged to restart backoff. Like CkptStats these counters live off
// the virtual-time critical path — a supervised run's simulated clocks and
// results are bitwise identical to the uninterrupted run's.
type SuperviseStats struct {
	// Enabled reports whether the run executed under a supervisor.
	Enabled bool
	// Attempts counts run attempts (1 on an undisturbed run); Restarts
	// counts supervised recoveries, split by failure class below.
	Attempts int
	Restarts int
	// CrashRestarts, ExchangeRestarts and WatchdogTrips split Restarts by
	// the failure that triggered them: injected crash faults, exchange
	// integrity violations after retry give-up, and no-progress watchdog
	// trips.
	CrashRestarts    int
	ExchangeRestarts int
	WatchdogTrips    int
	// GenerationsTried and Quarantined count checkpoint-ring recovery work:
	// snapshot generations examined and generations quarantined as corrupt.
	GenerationsTried int
	Quarantined      int
	// ColdStarts counts attempts begun without a usable snapshot (the
	// first attempt of a fresh run included).
	ColdStarts int
	// BackoffVirtual is the total virtual time charged to restart backoff.
	// It is a separate ledger, never added to rank clocks — restart policy
	// must not perturb the simulated timeline.
	BackoffVirtual float64
}

// Add accumulates o's counters into s, for aggregation across attempts.
func (s *SuperviseStats) Add(o SuperviseStats) {
	s.Enabled = s.Enabled || o.Enabled
	s.Attempts += o.Attempts
	s.Restarts += o.Restarts
	s.CrashRestarts += o.CrashRestarts
	s.ExchangeRestarts += o.ExchangeRestarts
	s.WatchdogTrips += o.WatchdogTrips
	s.GenerationsTried += o.GenerationsTried
	s.Quarantined += o.Quarantined
	s.ColdStarts += o.ColdStarts
	s.BackoffVirtual += o.BackoffVirtual
}

// AutoTuneStats records the model-driven autotuner's activity: the most
// recent calibration, the latest decision per chain, and the chains the
// invariance guard excluded from tuning (with why).
type AutoTuneStats struct {
	// Enabled reports whether any chain engaged the tuner this run.
	Enabled bool
	// Calib is the most recent fitted parameter set.
	Calib autotune.Calib
	// Decisions maps chain name to its latest decision (updated in place
	// as windows and re-plans accumulate); Order preserves first-decision
	// order for reporting.
	Decisions map[string]*autotune.Decision
	Order     []string
	// Skipped maps chains excluded from tuning to the reason; SkipOrder
	// preserves first-seen order.
	Skipped   map[string]string
	SkipOrder []string
}

func (a *AutoTuneStats) note(d *autotune.Decision, cal autotune.Calib) {
	a.Enabled = true
	a.Calib = cal
	if _, ok := a.Decisions[d.Chain]; !ok {
		a.Order = append(a.Order, d.Chain)
	}
	a.Decisions[d.Chain] = d
}

func (a *AutoTuneStats) skip(name, reason string) {
	a.Enabled = true
	if _, ok := a.Skipped[name]; !ok {
		a.SkipOrder = append(a.SkipOrder, name)
	}
	a.Skipped[name] = reason
}

// Report renders the tuner's decisions for run logs; empty when the tuner
// never engaged.
func (a *AutoTuneStats) Report() string {
	if !a.Enabled {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "autotune: %s\n", a.Calib.String())
	for _, n := range a.Order {
		d := a.Decisions[n]
		fmt.Fprintf(&b, "autotune: chain %-16s -> %-18s predicted %.6fs (op2 %.6fs) measured %.6fs windows %d replans %d",
			n, d.Chosen, d.Predicted, d.PredictedOp2, d.Measured, d.Windows, d.Replans)
		if d.Reason != "" {
			fmt.Fprintf(&b, " (%s)", d.Reason)
		}
		b.WriteByte('\n')
		for _, c := range d.Candidates {
			fmt.Fprintf(&b, "autotune:   candidate %-18s %.6fs\n", c.Policy, c.Predicted)
		}
	}
	for _, n := range a.SkipOrder {
		fmt.Fprintf(&b, "autotune: chain %-16s not tuned: %s\n", n, a.Skipped[n])
	}
	return b.String()
}

// Stats collects instrumentation for one Backend.
type Stats struct {
	Loops  map[string]*LoopStats
	Chains map[string]*ChainStats
	Faults FaultStats
	Ckpt   CkptStats
	// Supervise is filled by the supervisor (package supervise) after the
	// run completes; the backend itself never writes it.
	Supervise SuperviseStats
	AutoTune  AutoTuneStats
	// Profile is the critical-path/communication/imbalance analysis of the
	// run's trace epoch; nil until Backend.Profile is called (requires a
	// Tracer). Not serialised into checkpoints — a restored run re-profiles
	// its own epoch.
	Profile *analysis.Profile `json:"-"`
}

func newStats() *Stats {
	return &Stats{
		Loops:  map[string]*LoopStats{},
		Chains: map[string]*ChainStats{},
		AutoTune: AutoTuneStats{
			Decisions: map[string]*autotune.Decision{},
			Skipped:   map[string]string{},
		},
	}
}

func (s *Stats) loop(name string) *LoopStats {
	ls, ok := s.Loops[name]
	if !ok {
		ls = &LoopStats{Name: name}
		s.Loops[name] = ls
	}
	return ls
}

// noteLen records the loop count of one chain execution.
func (cs *ChainStats) noteLen(n int) {
	cs.NLoop = n
	if cs.NLoopMin == 0 || n < cs.NLoopMin {
		cs.NLoopMin = n
	}
	if n > cs.NLoopMax {
		cs.NLoopMax = n
	}
}

func (s *Stats) chain(name string) *ChainStats {
	cs, ok := s.Chains[name]
	if !ok {
		cs = &ChainStats{Name: name}
		s.Chains[name] = cs
	}
	return cs
}

// String renders a compact report, loops then chains, alphabetically.
func (s *Stats) String() string {
	var b strings.Builder
	var names []string
	for n := range s.Loops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := s.Loops[n]
		fmt.Fprintf(&b, "loop %-20s x%-5d msgs %-8d bytes %-12d dats %-4d nbmax %-3d msgmax %-10d core %-10d halo %-10d t %.6fs\n",
			l.Name, l.Executions, l.Msgs, l.Bytes, l.DatsExchanged, l.MaxNeighbours, l.MaxMsgBytes,
			l.CoreIters, l.HaloIters, l.Time)
	}
	names = names[:0]
	for n := range s.Chains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := s.Chains[n]
		fmt.Fprintf(&b, "chain %-19s x%-5d (CA %d) msgs %-8d bytes %-12d dats %-4d nbmax %-3d msgmax %-10d rankmax %-10d core %-10d halo %-10d t %.6fs HE%v\n",
			c.Name, c.Executions, c.CAExecutions, c.Msgs, c.Bytes, c.DatsExchanged, c.MaxNeighbours,
			c.MaxMsgBytes, c.MaxRankBytes, c.CoreIters, c.HaloIters, c.Time, c.HE)
	}
	if f := s.Faults; f != (FaultStats{}) {
		fmt.Fprintf(&b, "faults drops %d corrupts %d delays %d retries %d giveups %d fallback_ungrouped %d fallback_perloop %d\n",
			f.Drops, f.Corrupts, f.Delays, f.Retries, f.Giveups, f.FallbackUngrouped, f.FallbackPerLoop)
	}
	if c := s.Ckpt; c != (CkptStats{}) {
		fmt.Fprintf(&b, "checkpoint writes %d bytes %d restores %d\n",
			c.Checkpoints, c.CheckpointBytes, c.Restores)
	}
	if sv := s.Supervise; sv.Enabled {
		fmt.Fprintf(&b, "supervise attempts %d restarts %d (crash %d exchange %d watchdog %d) generations tried %d quarantined %d cold starts %d backoff %.3fs\n",
			sv.Attempts, sv.Restarts, sv.CrashRestarts, sv.ExchangeRestarts, sv.WatchdogTrips,
			sv.GenerationsTried, sv.Quarantined, sv.ColdStarts, sv.BackoffVirtual)
	}
	b.WriteString(s.AutoTune.Report())
	b.WriteString(s.Profile.Report())
	return b.String()
}

// WriteMetrics exposes the loop and chain counters in Prometheus text
// exposition format. extra labels (e.g. a run or machine label) are appended
// to every sample, so several backends can share one MetricsWriter.
func (s *Stats) WriteMetrics(mw *obs.MetricsWriter, extra ...obs.Label) {
	mw.Declare("op2ca_loop_executions_total", "counter", "op_par_loop calls outside CA chains.")
	mw.Declare("op2ca_loop_msgs_total", "counter", "Halo messages sent by standard loops.")
	mw.Declare("op2ca_loop_bytes_total", "counter", "Halo bytes sent by standard loops.")
	mw.Declare("op2ca_loop_core_iters_total", "counter", "Iterations overlapped with communication.")
	mw.Declare("op2ca_loop_halo_iters_total", "counter", "Iterations executed after the wait.")
	mw.Declare("op2ca_loop_seconds_total", "counter", "Virtual seconds attributed to the loop.")
	mw.Declare("op2ca_loop_model_seconds_total", "counter", "Equation (1) predicted virtual seconds.")
	var names []string
	for n := range s.Loops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := s.Loops[n]
		lb := append([]obs.Label{{Key: "loop", Value: n}}, extra...)
		mw.Sample("op2ca_loop_executions_total", lb, float64(l.Executions))
		mw.Sample("op2ca_loop_msgs_total", lb, float64(l.Msgs))
		mw.Sample("op2ca_loop_bytes_total", lb, float64(l.Bytes))
		mw.Sample("op2ca_loop_core_iters_total", lb, float64(l.CoreIters))
		mw.Sample("op2ca_loop_halo_iters_total", lb, float64(l.HaloIters))
		mw.Sample("op2ca_loop_seconds_total", lb, l.Time)
		mw.Sample("op2ca_loop_model_seconds_total", lb, l.Predicted)
	}
	mw.Declare("op2ca_chain_executions_total", "counter", "ChainEnd calls.")
	mw.Declare("op2ca_chain_ca_executions_total", "counter", "Chain executions that ran Algorithm 2.")
	mw.Declare("op2ca_chain_msgs_total", "counter", "Grouped messages sent by CA chains.")
	mw.Declare("op2ca_chain_bytes_total", "counter", "Grouped bytes sent by CA chains.")
	mw.Declare("op2ca_chain_core_iters_total", "counter", "Chain iterations overlapped with communication.")
	mw.Declare("op2ca_chain_halo_iters_total", "counter", "Chain iterations executed after the wait.")
	mw.Declare("op2ca_chain_max_msg_bytes", "gauge", "Largest grouped message per neighbour (m^r).")
	mw.Declare("op2ca_chain_max_neighbours", "gauge", "Largest per-rank neighbour count (p).")
	mw.Declare("op2ca_chain_seconds_total", "counter", "Virtual seconds attributed to the chain.")
	mw.Declare("op2ca_chain_model_seconds_total", "counter", "Equation (3) predicted virtual seconds.")
	names = names[:0]
	for n := range s.Chains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := s.Chains[n]
		lb := append([]obs.Label{{Key: "chain", Value: n}}, extra...)
		mw.Sample("op2ca_chain_executions_total", lb, float64(c.Executions))
		mw.Sample("op2ca_chain_ca_executions_total", lb, float64(c.CAExecutions))
		mw.Sample("op2ca_chain_msgs_total", lb, float64(c.Msgs))
		mw.Sample("op2ca_chain_bytes_total", lb, float64(c.Bytes))
		mw.Sample("op2ca_chain_core_iters_total", lb, float64(c.CoreIters))
		mw.Sample("op2ca_chain_halo_iters_total", lb, float64(c.HaloIters))
		mw.Sample("op2ca_chain_max_msg_bytes", lb, float64(c.MaxMsgBytes))
		mw.Sample("op2ca_chain_max_neighbours", lb, float64(c.MaxNeighbours))
		mw.Sample("op2ca_chain_seconds_total", lb, c.Time)
		mw.Sample("op2ca_chain_model_seconds_total", lb, c.Predicted)
	}
	mw.Declare("op2ca_fault_drops_total", "counter", "Injected message drops (per transmission attempt).")
	mw.Declare("op2ca_fault_corrupts_total", "counter", "Injected message corruptions (per transmission attempt).")
	mw.Declare("op2ca_fault_delays_total", "counter", "Injected message delays (per transmission attempt).")
	mw.Declare("op2ca_fault_retries_total", "counter", "Message retransmissions charged in virtual time.")
	mw.Declare("op2ca_fault_giveups_total", "counter", "Messages that exhausted their retransmission budget.")
	mw.Declare("op2ca_fault_fallback_ungrouped_total", "counter", "Grouped CA exchanges degraded to per-dat messages.")
	mw.Declare("op2ca_fault_fallback_perloop_total", "counter", "Chain windows degraded to per-loop OP2 execution.")
	f := s.Faults
	mw.Sample("op2ca_fault_drops_total", extra, float64(f.Drops))
	mw.Sample("op2ca_fault_corrupts_total", extra, float64(f.Corrupts))
	mw.Sample("op2ca_fault_delays_total", extra, float64(f.Delays))
	mw.Sample("op2ca_fault_retries_total", extra, float64(f.Retries))
	mw.Sample("op2ca_fault_giveups_total", extra, float64(f.Giveups))
	mw.Sample("op2ca_fault_fallback_ungrouped_total", extra, float64(f.FallbackUngrouped))
	mw.Sample("op2ca_fault_fallback_perloop_total", extra, float64(f.FallbackPerLoop))

	mw.Declare("op2ca_checkpoint_total", "counter", "State snapshots written.")
	mw.Declare("op2ca_checkpoint_bytes_total", "counter", "Encoded bytes of state snapshots written.")
	mw.Declare("op2ca_checkpoint_restores_total", "counter", "Backends rebuilt from a state snapshot.")
	mw.Sample("op2ca_checkpoint_total", extra, float64(s.Ckpt.Checkpoints))
	mw.Sample("op2ca_checkpoint_bytes_total", extra, float64(s.Ckpt.CheckpointBytes))
	mw.Sample("op2ca_checkpoint_restores_total", extra, float64(s.Ckpt.Restores))

	if sv := s.Supervise; sv.Enabled {
		mw.Declare("op2ca_supervise_attempts_total", "counter", "Supervised run attempts (1 on an undisturbed run).")
		mw.Declare("op2ca_supervise_restarts_total", "counter", "Supervised in-process restarts, by failure class.")
		mw.Declare("op2ca_supervise_generations_tried_total", "counter", "Checkpoint-ring generations examined during recovery.")
		mw.Declare("op2ca_supervise_quarantined_total", "counter", "Checkpoint generations quarantined as corrupt.")
		mw.Declare("op2ca_supervise_cold_starts_total", "counter", "Attempts begun without a usable snapshot.")
		mw.Declare("op2ca_supervise_backoff_virtual_seconds_total", "counter", "Virtual time charged to restart backoff (separate ledger, never on rank clocks).")
		mw.Sample("op2ca_supervise_attempts_total", extra, float64(sv.Attempts))
		for _, c := range []struct {
			cause string
			v     int
		}{{"crash", sv.CrashRestarts}, {"exchange", sv.ExchangeRestarts}, {"watchdog", sv.WatchdogTrips}} {
			mw.Sample("op2ca_supervise_restarts_total",
				append([]obs.Label{{Key: "cause", Value: c.cause}}, extra...), float64(c.v))
		}
		mw.Sample("op2ca_supervise_generations_tried_total", extra, float64(sv.GenerationsTried))
		mw.Sample("op2ca_supervise_quarantined_total", extra, float64(sv.Quarantined))
		mw.Sample("op2ca_supervise_cold_starts_total", extra, float64(sv.ColdStarts))
		mw.Sample("op2ca_supervise_backoff_virtual_seconds_total", extra, sv.BackoffVirtual)
	}

	if a := &s.AutoTune; a.Enabled {
		mw.Declare("op2ca_autotune_decisions_total", "counter", "Chains the autotuner decided a policy for.")
		mw.Declare("op2ca_autotune_replans_total", "counter", "Autotuner re-plans triggered by prediction divergence.")
		mw.Declare("op2ca_autotune_windows_total", "counter", "Decided (non-probe) windows executed under tuned policies.")
		mw.Declare("op2ca_autotune_candidates", "gauge", "Policies scored for the chain's latest decision.")
		mw.Declare("op2ca_autotune_predicted_seconds", "gauge", "Chosen policy's predicted per-window time.")
		mw.Declare("op2ca_autotune_predicted_op2_seconds", "gauge", "OP2 baseline's predicted per-window time.")
		mw.Declare("op2ca_autotune_measured_seconds", "gauge", "Most recent decided window's measured time.")
		mw.Declare("op2ca_autotune_chosen_ca", "gauge", "1 when the chosen policy is communication-avoiding.")
		mw.Declare("op2ca_autotune_latency_seconds", "gauge", "Calibrated per-message latency L.")
		mw.Declare("op2ca_autotune_bandwidth_bytes_per_second", "gauge", "Calibrated per-rank bandwidth B.")
		mw.Declare("op2ca_autotune_pack_rate_bytes_per_second", "gauge", "Calibrated pack/unpack rate.")
		mw.Declare("op2ca_autotune_g_seconds", "gauge", "Calibrated per-iteration cost g_l.")
		var replans, windows int64
		names := make([]string, 0, len(a.Decisions))
		for n := range a.Decisions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			d := a.Decisions[n]
			replans += int64(d.Replans)
			windows += int64(d.Windows)
			lb := append([]obs.Label{{Key: "chain", Value: n}}, extra...)
			mw.Sample("op2ca_autotune_candidates", lb, float64(len(d.Candidates)))
			mw.Sample("op2ca_autotune_predicted_seconds", lb, d.Predicted)
			mw.Sample("op2ca_autotune_predicted_op2_seconds", lb, d.PredictedOp2)
			mw.Sample("op2ca_autotune_measured_seconds", lb, d.Measured)
			ca := 0.0
			if d.ChosenPolicy.CA {
				ca = 1
			}
			mw.Sample("op2ca_autotune_chosen_ca", lb, ca)
		}
		mw.Sample("op2ca_autotune_decisions_total", extra, float64(len(a.Decisions)))
		mw.Sample("op2ca_autotune_replans_total", extra, float64(replans))
		mw.Sample("op2ca_autotune_windows_total", extra, float64(windows))
		mw.Sample("op2ca_autotune_latency_seconds", extra, a.Calib.L)
		mw.Sample("op2ca_autotune_bandwidth_bytes_per_second", extra, a.Calib.B)
		mw.Sample("op2ca_autotune_pack_rate_bytes_per_second", extra, a.Calib.PackRate)
		names = names[:0]
		for n := range a.Calib.G {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			lb := append([]obs.Label{{Key: "loop", Value: n}}, extra...)
			mw.Sample("op2ca_autotune_g_seconds", lb, a.Calib.G[n])
		}
	}

	if p := s.Profile; p != nil {
		mw.Declare("op2ca_critpath_seconds", "gauge", "Critical-path length through the run's span DAG (equals the virtual makespan).")
		mw.Declare("op2ca_critpath_kind_seconds", "gauge", "Critical-path time attributed to one span kind.")
		mw.Declare("op2ca_critpath_rank_seconds", "gauge", "Critical-path time spent on one rank's timeline.")
		mw.Declare("op2ca_critpath_segments", "gauge", "Number of segments on the critical path.")
		mw.Declare("op2ca_critpath_edges", "gauge", "Number of causal edges the critical path traversed.")
		mw.Declare("op2ca_imbalance_ratio", "gauge", "Compute load imbalance: max over mean per-rank compute time.")
		mw.Declare("op2ca_imbalance_compute_seconds", "gauge", "Per-rank compute time (core plus redundant).")
		mw.Declare("op2ca_comm_wait_seconds", "gauge", "Receiver-observed wait per exchange owner, split by cause.")
		mw.Declare("op2ca_comm_hidden_seconds", "gauge", "In-flight message time hidden behind the receiver's computation, per exchange owner.")
		mw.Sample("op2ca_critpath_seconds", extra, p.Path.Length)
		mw.Sample("op2ca_critpath_segments", extra, float64(len(p.Path.Segments)))
		mw.Sample("op2ca_critpath_edges", extra, float64(len(p.Path.Edges)))
		for _, k := range obs.Kinds() {
			if v, ok := p.Path.ByKind[k]; ok {
				mw.Sample("op2ca_critpath_kind_seconds",
					append([]obs.Label{{Key: "kind", Value: k.String()}}, extra...), v)
			}
		}
		for r := 0; r < p.Ranks; r++ {
			if v, ok := p.Path.ByRank[int32(r)]; ok {
				mw.Sample("op2ca_critpath_rank_seconds",
					append([]obs.Label{{Key: "rank", Value: fmt.Sprint(r)}}, extra...), v)
			}
		}
		mw.Sample("op2ca_imbalance_ratio", extra, p.Imbalance.Ratio)
		for r, v := range p.Imbalance.ComputeByRank {
			mw.Sample("op2ca_imbalance_compute_seconds",
				append([]obs.Label{{Key: "rank", Value: fmt.Sprint(r)}}, extra...), v)
		}
		for _, cc := range p.Comm {
			for _, c := range []struct {
				cause string
				v     float64
			}{{"late", cc.WaitLate}, {"nic", cc.WaitNIC}, {"retry", cc.WaitRetry}, {"transit", cc.WaitTransit}} {
				mw.Sample("op2ca_comm_wait_seconds",
					append([]obs.Label{{Key: "owner", Value: cc.Name}, {Key: "cause", Value: c.cause}}, extra...), c.v)
			}
			mw.Sample("op2ca_comm_hidden_seconds",
				append([]obs.Label{{Key: "owner", Value: cc.Name}}, extra...), cc.WaitHidden)
		}
	}
}
