// Package chaincfg parses the communication-avoiding back-end's
// configuration file. The paper's Section 3.4: the only addition to OP2's
// code-generation flow is "a configuration file specifying the list of loops
// to be chained in the application. The file details loop names, loop count
// and maximum halo extension of loops." This package implements that file:
//
//	# comment
//	chain period maxhe=2
//	  loop negflag he=2
//	  loop limxp he=2
//	  loop periodicity he=1
//	chain vflux maxhe=1 disable
//
// A chain line opens a chain with a name, an optional maximum halo extension
// and an optional "disable" flag (the chain runs as plain OP2 loops) or
// "auto" flag (the model-driven autotuner picks the chain's policy at run
// time). Loop lines list the constituent loops in order, optionally pinning
// their halo extension, overriding Algorithm 3. Chain and loop names must
// be unique: a duplicate would silently shadow the earlier entry, so both
// are rejected at parse time.
package chaincfg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoopCfg is one loop entry of a chain.
type LoopCfg struct {
	Name string
	// HE pins the loop's halo extension; 0 means "use Algorithm 3".
	HE int
}

// Chain is one configured loop-chain.
type Chain struct {
	Name string
	// MaxHE caps every loop's halo extension; 0 means uncapped.
	MaxHE int
	// Disabled chains execute as ordinary per-loop OP2 code.
	Disabled bool
	// Auto hands the chain's execution policy to the model-driven
	// autotuner (cluster Config.AutoTune enables it for every chain);
	// mutually exclusive with Disabled.
	Auto bool
	// MaxRetries overrides the back-end's per-message retransmission
	// budget for this chain's exchanges under fault injection; 0 means
	// "use the back-end default".
	MaxRetries int
	// Overlap runs this chain's CA exchanges on the overlap-capable
	// task-graph executor (pipelined post/complete delivery); results are
	// bit-identical to bulk-synchronous execution, only virtual time moves.
	Overlap bool
	// Loops lists the constituent loops in chain order; may be empty when
	// the application demarcates chains itself.
	Loops []LoopCfg
}

// HEOverrides returns the per-loop halo-extension override slice for a chain
// of n loops, suitable for ca.Inspect: configured HE values (capped by
// MaxHE), 0 where unconstrained. A mismatch between n and the configured
// loop count is an error.
func (c *Chain) HEOverrides(n int) ([]int, error) {
	he := make([]int, n)
	if len(c.Loops) != 0 {
		if len(c.Loops) != n {
			return nil, fmt.Errorf("chaincfg: chain %q configured with %d loops, application chained %d",
				c.Name, len(c.Loops), n)
		}
		for i, l := range c.Loops {
			he[i] = l.HE
		}
	}
	if c.MaxHE > 0 {
		for i := range he {
			if he[i] == 0 || he[i] > c.MaxHE {
				he[i] = c.MaxHE
			}
		}
	}
	return he, nil
}

// Config is the parsed configuration file.
type Config struct {
	Chains map[string]*Chain
	// Order preserves declaration order for reporting.
	Order []string
}

// Get returns the configuration of the named chain, or nil.
func (c *Config) Get(name string) *Chain {
	if c == nil {
		return nil
	}
	return c.Chains[name]
}

// Parse reads a configuration file.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{Chains: map[string]*Chain{}}
	var cur *Chain
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "chain":
			if len(fields) < 2 {
				return nil, fmt.Errorf("chaincfg: line %d: chain needs a name", lineNo)
			}
			name := fields[1]
			if _, dup := cfg.Chains[name]; dup {
				return nil, fmt.Errorf("chaincfg: line %d: duplicate chain %q", lineNo, name)
			}
			cur = &Chain{Name: name}
			for _, f := range fields[2:] {
				switch {
				case f == "disable":
					cur.Disabled = true
				case f == "auto":
					cur.Auto = true
				case f == "overlap":
					cur.Overlap = true
				case strings.HasPrefix(f, "maxhe="):
					v, err := strconv.Atoi(strings.TrimPrefix(f, "maxhe="))
					if err != nil || v < 1 {
						return nil, fmt.Errorf("chaincfg: line %d: bad maxhe %q", lineNo, f)
					}
					cur.MaxHE = v
				case strings.HasPrefix(f, "maxretries="):
					v, err := strconv.Atoi(strings.TrimPrefix(f, "maxretries="))
					if err != nil || v < 1 {
						return nil, fmt.Errorf("chaincfg: line %d: bad maxretries %q", lineNo, f)
					}
					cur.MaxRetries = v
				default:
					return nil, fmt.Errorf("chaincfg: line %d: unknown chain option %q", lineNo, f)
				}
			}
			if cur.Auto && cur.Disabled {
				return nil, fmt.Errorf("chaincfg: line %d: chain %q cannot be both auto and disable", lineNo, name)
			}
			cfg.Chains[name] = cur
			cfg.Order = append(cfg.Order, name)
		case "loop":
			if cur == nil {
				return nil, fmt.Errorf("chaincfg: line %d: loop outside a chain", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("chaincfg: line %d: loop needs a name", lineNo)
			}
			lc := LoopCfg{Name: fields[1]}
			for _, prev := range cur.Loops {
				if prev.Name == lc.Name {
					return nil, fmt.Errorf("chaincfg: line %d: duplicate loop %q in chain %q", lineNo, lc.Name, cur.Name)
				}
			}
			for _, f := range fields[2:] {
				if strings.HasPrefix(f, "he=") {
					v, err := strconv.Atoi(strings.TrimPrefix(f, "he="))
					if err != nil || v < 1 {
						return nil, fmt.Errorf("chaincfg: line %d: bad he %q", lineNo, f)
					}
					lc.HE = v
				} else {
					return nil, fmt.Errorf("chaincfg: line %d: unknown loop option %q", lineNo, f)
				}
			}
			cur.Loops = append(cur.Loops, lc)
		default:
			return nil, fmt.Errorf("chaincfg: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("chaincfg: %w", err)
	}
	return cfg, nil
}

// ParseString parses a configuration from a string.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

// String renders the configuration back into the file format; the result
// round-trips through Parse.
func (c *Config) String() string {
	var b strings.Builder
	for _, name := range c.Order {
		ch := c.Chains[name]
		fmt.Fprintf(&b, "chain %s", ch.Name)
		if ch.MaxHE > 0 {
			fmt.Fprintf(&b, " maxhe=%d", ch.MaxHE)
		}
		if ch.MaxRetries > 0 {
			fmt.Fprintf(&b, " maxretries=%d", ch.MaxRetries)
		}
		if ch.Overlap {
			b.WriteString(" overlap")
		}
		if ch.Disabled {
			b.WriteString(" disable")
		}
		if ch.Auto {
			b.WriteString(" auto")
		}
		b.WriteByte('\n')
		for _, l := range ch.Loops {
			fmt.Fprintf(&b, "  loop %s", l.Name)
			if l.HE > 0 {
				fmt.Fprintf(&b, " he=%d", l.HE)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
