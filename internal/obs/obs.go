// Package obs is the observability layer of the simulated runtime: typed
// spans recorded on per-rank virtual-time tracks by the cluster back-end,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and Prometheus-style text metrics.
//
// The span taxonomy follows the per-phase breakdown the paper's evaluation
// rests on (pack, send, wait, unpack, core compute, redundant halo compute,
// reduce), plus a separate staging track for host<->device PCIe transfers
// on GPU machines (Section 3.3).
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op with
// no allocations, so the execution path is instrumented unconditionally and
// pays nearly nothing unless a trace was requested. Emission only ever
// reads the virtual-time arithmetic — it never feeds back into it — so a
// traced run and an untraced run produce bit-identical simulation results.
package obs

import (
	"sort"
	"sync"
)

// Kind classifies a span: one phase of the loop-execution timeline of the
// paper's Algorithms 1 (per-loop exchanges) and 2 (CA chains).
type Kind uint8

const (
	// Compute is core iterations: owned work overlappable with
	// communication (Algorithm 2 lines 8-12).
	Compute Kind = iota
	// Pack is gathering export elements into send buffers.
	Pack
	// Send is one message occupying the sender's NIC (netsim serialises
	// messages per sender, so send spans on one rank abut).
	Send
	// Wait is a receiver blocked on one inbound message beyond its core
	// computation (zero-length when the message arrived early enough to
	// be fully hidden).
	Wait
	// Unpack is scattering a received grouped message into the per-dat
	// arrays (the c term of Equation (3); per-dat messages land directly
	// and have no unpack span).
	Unpack
	// Redundant is halo-region iterations after the wait: boundary owned
	// elements plus the redundantly computed halo shells CA trades for
	// messages (Algorithm 2 lines 14-18).
	Redundant
	// Reduce is a rank participating in a global allreduce.
	Reduce
	// Stage is one host<->device PCIe staging transfer (GPU machines
	// only; lives on TrackStage).
	Stage
	// Retry is one retransmission interval on the sender's track: from
	// the failed attempt's (non-)arrival, through the detection timeout
	// and exponential backoff, to the retransmission post (fault
	// injection only).
	Retry
	// Giveup marks a message that exhausted its retransmission budget;
	// the runtime degrades the surrounding exchange instead of dying.
	Giveup
	// Tune marks an autotuner decision point: the span name carries the
	// chain and the chosen policy. Zero-length — the tuner runs in the
	// inspector, off the virtual-time critical path.
	Tune
	// Checkpoint marks a state snapshot being written; the span name
	// carries the checkpoint note. Zero-length — checkpointing is host
	// I/O, off the virtual-time critical path.
	Checkpoint
	// Restore marks a backend resuming from a snapshot.
	Restore

	numKinds
)

var kindNames = [numKinds]string{
	"compute", "pack", "send", "wait", "unpack", "redundant", "reduce", "stage",
	"retry", "giveup", "tune", "checkpoint", "restore",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds lists every span kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Tracks within one rank's timeline.
const (
	// TrackExec is the rank's main execution track.
	TrackExec int8 = 0
	// TrackStage is the rank's PCIe staging engine (GPU machines).
	TrackStage int8 = 1
)

// Span is one interval on a rank's virtual timeline.
type Span struct {
	// Epoch groups the spans of one backend instance (one simulated
	// run); each epoch starts its virtual clock at zero.
	Epoch int32
	Rank  int32
	Track int8
	Kind  Kind
	// Name identifies the work: the kernel name for compute/redundant
	// spans, and the exchange owner (the chain name for CA chains, the
	// kernel name for per-loop exchanges) for pack/send/wait/unpack.
	Name string
	// Begin and End are virtual seconds since the epoch's clock zero.
	Begin, End float64
	// Bytes is the payload of communication spans (0 otherwise).
	Bytes int64
}

// Dur returns the span's duration in virtual seconds.
func (s Span) Dur() float64 { return s.End - s.Begin }

// Tracer records spans. The zero value is ready to use; a nil *Tracer is a
// disabled tracer whose methods all no-op.
type Tracer struct {
	mu     sync.Mutex
	labels []string
	spans  []Span
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether spans are recorded; callers may use it to skip
// preparing emission inputs entirely.
func (t *Tracer) Enabled() bool { return t != nil }

// NewEpoch opens a new span group — one simulated backend run — and makes
// it current. The cluster back-end calls it once per construction, so a
// tracer shared across runs (e.g. a benchmark sweep) keeps them apart.
func (t *Tracer) NewEpoch(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.labels = append(t.labels, label)
	t.mu.Unlock()
}

// Emit records one span in the current epoch. On a nil tracer it returns
// immediately without allocating. Spans may be emitted in any order;
// exporters sort into a canonical, deterministic order.
func (t *Tracer) Emit(rank int32, track int8, kind Kind, name string, begin, end float64, bytes int64) {
	if t == nil {
		return
	}
	if end < begin {
		end = begin
	}
	t.mu.Lock()
	epoch := int32(len(t.labels)) - 1
	if epoch < 0 {
		epoch = 0
	}
	t.spans = append(t.spans, Span{
		Epoch: epoch, Rank: rank, Track: track, Kind: kind,
		Name: name, Begin: begin, End: end, Bytes: bytes,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in canonical order: by epoch,
// rank, track, begin, end, kind, name. Because span contents are fully
// determined by the deterministic simulation, identical runs yield
// identical slices regardless of host-thread scheduling.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End > b.End // longer first: containment order for nesting
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return out
}

// EpochLabel returns the label of epoch i, or a generated placeholder when
// spans were emitted before any NewEpoch call.
func (t *Tracer) EpochLabel(i int32) string {
	if t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if int(i) < len(t.labels) {
			return t.labels[i]
		}
	}
	return "run"
}
