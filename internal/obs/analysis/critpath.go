package analysis

import (
	"math"
	"sort"

	"op2ca/internal/obs"
)

// Segment is one interval of the critical path on one rank's timeline.
type Segment struct {
	Rank int32
	Kind obs.Kind
	// Name is the span or exchange name the interval is attributed to
	// (empty for synthesised Idle segments).
	Name       string
	Begin, End float64
}

// Dur returns the segment's duration in virtual seconds.
func (s Segment) Dur() float64 { return s.End - s.Begin }

// PathEdge is one causal edge the critical path traversed.
type PathEdge struct {
	Kind     obs.EdgeKind
	From, To int32
	Name     string
	Bytes    int64
	// Begin and End are the edge's occupancy window (see obs.Edge).
	Begin, End float64
}

// Dur returns the edge's occupancy duration in virtual seconds.
func (e PathEdge) Dur() float64 { return e.End - e.Begin }

// CritPath is the longest virtual-time path through one epoch's span DAG.
type CritPath struct {
	// Length is the summed duration of Segments. Because the backward walk
	// tiles [0, makespan] exactly — every instant lands in a span, an edge
	// slice, or a synthesised Idle gap — Length equals the epoch's
	// makespan up to float tolerance.
	Length float64
	// Sink is the rank whose timeline ends last (where the walk starts).
	Sink int32
	// Segments is the path in forward time order; consecutive segments
	// either abut on one rank or are connected by an edge in Edges.
	Segments []Segment
	// Edges lists the traversed causal edges, longest occupancy first:
	// the top blocking dependencies of the run.
	Edges []PathEdge
	// ByKind, ByRank and ByName attribute Length (each sums to it; ByName
	// omits unnamed Idle segments).
	ByKind map[obs.Kind]float64
	ByRank map[int32]float64
	ByName map[string]float64
}

// relTol scales the time-matching tolerance of the walk: two instants
// within relTol * makespan are the same instant. The simulation's clock
// arithmetic reuses the exact values it traced, so matches are typically
// exact; the tolerance only absorbs benign float noise.
const relTol = 1e-9

// criticalPath walks the span DAG backward from the epoch's last span end,
// preferring causal edges (message arrivals, reduction stragglers) over
// same-rank program order, and synthesising Idle segments for gaps no span
// or edge explains.
func criticalPath(spans []obs.Span, edges []obs.Edge) CritPath {
	cp := CritPath{
		ByKind: map[obs.Kind]float64{},
		ByRank: map[int32]float64{},
		ByName: map[string]float64{},
	}
	if len(spans) == 0 {
		return cp
	}

	byRank := map[int32][]obs.Span{}
	for _, s := range spans {
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	edgesTo := map[int32][]obs.Edge{}
	var retries []obs.Edge
	for _, e := range edges {
		if e.Kind == obs.EdgeRetry {
			retries = append(retries, e)
			continue
		}
		edgesTo[e.To] = append(edgesTo[e.To], e)
	}
	sort.SliceStable(retries, func(i, j int) bool { return retries[i].Begin < retries[j].Begin })

	sink, T := spans[0].Rank, spans[0].End
	for _, s := range spans[1:] {
		if s.End > T || (s.End == T && s.Rank < sink) {
			sink, T = s.Rank, s.End
		}
	}
	tol := relTol * math.Max(T, 1)

	var segs []Segment // built backward, reversed at the end
	r, t := sink, T
	// Each step strictly decreases t, so the walk terminates; the step cap
	// is a belt-and-braces guard against a malformed hand-built DAG.
	for steps, maxSteps := 0, 4*(len(spans)+len(edges))+16; t > tol && steps < maxSteps; steps++ {
		if e, ok := bestEdge(edgesTo[r], t, tol); ok {
			segs = appendEdgeSegments(segs, e, t, retries, tol)
			cp.Edges = append(cp.Edges, PathEdge{
				Kind: e.Kind, From: e.From, To: e.To, Name: e.Name,
				Bytes: e.Bytes, Begin: e.Begin, End: e.End,
			})
			r, t = e.From, e.Begin
			continue
		}
		if s, ok := bestSpan(byRank[r], t, tol); ok {
			segs = append(segs, Segment{Rank: r, Kind: s.Kind, Name: s.Name, Begin: s.Begin, End: t})
			t = s.Begin
			continue
		}
		// Nothing ends here: the rank was idle. Fall back to the latest
		// instant before t that a span or inbound edge on r does explain.
		prev := 0.0
		for _, s := range byRank[r] {
			if s.End < t-tol && s.End > prev {
				prev = s.End
			}
		}
		for _, e := range edgesTo[r] {
			if e.End < t-tol && e.End > prev {
				prev = e.End
			}
		}
		segs = append(segs, Segment{Rank: r, Kind: obs.Idle, Begin: prev, End: t})
		t = prev
	}

	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	cp.Segments = segs
	cp.Sink = sink
	for _, s := range segs {
		d := s.Dur()
		cp.Length += d
		cp.ByKind[s.Kind] += d
		cp.ByRank[s.Rank] += d
		if s.Name != "" {
			cp.ByName[s.Name] += d
		}
	}
	sort.SliceStable(cp.Edges, func(i, j int) bool {
		a, b := cp.Edges[i], cp.Edges[j]
		if a.Dur() != b.Dur() {
			return a.Dur() > b.Dur()
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		return a.From < b.From
	})
	return cp
}

// bestEdge picks the causal edge into rank r ending at t: the longest one
// (earliest Begin), ties broken deterministically.
func bestEdge(candidates []obs.Edge, t, tol float64) (obs.Edge, bool) {
	var best obs.Edge
	found := false
	for _, e := range candidates {
		if math.Abs(e.End-t) > tol || e.Begin >= t-tol {
			continue
		}
		if !found || e.Begin < best.Begin ||
			(e.Begin == best.Begin && (e.From < best.From ||
				(e.From == best.From && (e.Kind < best.Kind ||
					(e.Kind == best.Kind && e.Name < best.Name))))) {
			best, found = e, true
		}
	}
	return best, found
}

// bestSpan picks the span on the current rank ending at t: the longest one
// (earliest Begin), ties broken deterministically. Zero-length spans never
// qualify (Begin must precede t).
func bestSpan(candidates []obs.Span, t, tol float64) (obs.Span, bool) {
	var best obs.Span
	found := false
	for _, s := range candidates {
		if math.Abs(s.End-t) > tol || s.Begin >= t-tol {
			continue
		}
		if !found || s.Begin < best.Begin ||
			(s.Begin == best.Begin && (s.Kind < best.Kind ||
				(s.Kind == best.Kind && s.Name < best.Name))) {
			best, found = s, true
		}
	}
	return best, found
}

// appendEdgeSegments attributes the traversed edge's window [e.Begin, upTo]
// on the sender's timeline. Message windows are sliced by the sender's
// retry edges for the same exchange, so retransmission backoff shows up as
// Retry rather than inflating Send; reduce edges attribute as Reduce.
// Segments are appended in backward (walk) order.
func appendEdgeSegments(segs []Segment, e obs.Edge, upTo float64, retries []obs.Edge, tol float64) []Segment {
	if e.Kind == obs.EdgeReduce {
		return append(segs, Segment{Rank: e.From, Kind: obs.Reduce, Name: e.Name, Begin: e.Begin, End: upTo})
	}
	var fwd []Segment
	cur := e.Begin
	for _, re := range retries {
		if re.From != e.From || re.Name != e.Name || re.End <= e.Begin+tol || re.Begin >= upTo-tol {
			continue
		}
		b, end := math.Max(re.Begin, cur), math.Min(re.End, upTo)
		if end <= b {
			continue
		}
		if b > cur {
			fwd = append(fwd, Segment{Rank: e.From, Kind: obs.Send, Name: e.Name, Begin: cur, End: b})
		}
		fwd = append(fwd, Segment{Rank: e.From, Kind: obs.Retry, Name: e.Name, Begin: b, End: end})
		cur = end
	}
	if upTo > cur {
		fwd = append(fwd, Segment{Rank: e.From, Kind: obs.Send, Name: e.Name, Begin: cur, End: upTo})
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		segs = append(segs, fwd[i])
	}
	return segs
}
