package partition

import (
	"testing"

	"op2ca/internal/mesh"
)

func TestCSRConversion(t *testing.T) {
	// Duplicate edges (0-1 twice) must merge into edge weight 2.
	adj := [][]int32{{1, 1, 2}, {0, 0}, {0}}
	g := toCSR(adj)
	if g.nv() != 3 {
		t.Fatalf("nv = %d", g.nv())
	}
	if g.xadj[1]-g.xadj[0] != 2 {
		t.Fatalf("vertex 0 should have 2 merged neighbours")
	}
	foundHeavy := false
	for e := g.xadj[0]; e < g.xadj[1]; e++ {
		if g.adjncy[e] == 1 && g.adjwgt[e] == 2 {
			foundHeavy = true
		}
	}
	if !foundHeavy {
		t.Fatal("duplicate edge not merged into weight 2")
	}
	// Self-loops are dropped.
	g2 := toCSR([][]int32{{0, 1}, {0}})
	if g2.xadj[1]-g2.xadj[0] != 1 {
		t.Fatal("self-loop not dropped")
	}
}

func TestMatchingAndCoarsening(t *testing.T) {
	// A path 0-1-2-3: matching pairs vertices, coarse graph keeps the
	// total vertex weight and stays connected.
	g := toCSR([][]int32{{1}, {0, 2}, {1, 3}, {2}})
	cmap, nc := matchHeavyEdge(g)
	if nc >= g.nv() {
		t.Fatalf("matching did not shrink: %d -> %d", g.nv(), nc)
	}
	c := coarsen(g, cmap, nc)
	var wFine, wCoarse int32
	for _, w := range g.vwgt {
		wFine += w
	}
	for _, w := range c.vwgt {
		wCoarse += w
	}
	if wFine != wCoarse {
		t.Fatalf("coarsening lost vertex weight: %d -> %d", wFine, wCoarse)
	}
}

func TestMultilevelBeatsGreedy(t *testing.T) {
	m := mesh.RotorForNodes(20000)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{8, 24} {
		ml := Evaluate(adj, multilevelKWay(adj, nparts), nparts)
		gr := Evaluate(adj, greedyKWay(adj, nparts), nparts)
		if ml.Imbalance > 1.06 {
			t.Errorf("nparts=%d: multilevel imbalance %.3f", nparts, ml.Imbalance)
		}
		// Multilevel must not be clearly worse than flat greedy.
		if float64(ml.EdgeCut) > 1.1*float64(gr.EdgeCut) {
			t.Errorf("nparts=%d: multilevel cut %d vs greedy %d", nparts, ml.EdgeCut, gr.EdgeCut)
		}
	}
}

func TestMultilevelCoversAllParts(t *testing.T) {
	m := mesh.RotorForNodes(8000)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{2, 13, 40} {
		a := multilevelKWay(adj, nparts)
		sizes := a.PartSizes(nparts)
		for p, s := range sizes {
			if s == 0 {
				t.Fatalf("nparts=%d: part %d empty", nparts, p)
			}
		}
		if len(a) != m.NNodes {
			t.Fatalf("wrong assignment length")
		}
	}
}

func TestCutWeight(t *testing.T) {
	g := toCSR([][]int32{{1}, {0, 2}, {1, 3}, {2}})
	if c := cutWeight(g, Assignment{0, 0, 1, 1}); c != 1 {
		t.Errorf("cut = %d, want 1", c)
	}
	if c := cutWeight(g, Assignment{0, 1, 0, 1}); c != 3 {
		t.Errorf("alternating cut = %d, want 3", c)
	}
}
