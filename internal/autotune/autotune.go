// Package autotune closes the loop between the paper's analytic model
// (Section 3.2, Equations (1)-(4)) and the execution back-end: it
// calibrates the model's free parameters from short measured probe
// executions, enumerates the candidate execution policies for a loop-chain
// (standard OP2, communication-avoiding at every feasible halo depth,
// grouped or per-dat messages), scores each with TOp2Chain/TCAChain, and
// emits a concrete decision. All candidates are policies the equivalence
// tests already prove bit-identical, so the tuner is pure
// performance/robustness surface: it can never change results, only
// virtual time.
//
// The package is deliberately free of cluster dependencies — it consumes
// model.LoopParams/model.ChainParams the back-end derives from its halo
// layouts — so it can be unit-tested against hand-built workloads.
package autotune

import (
	"fmt"
	"math"
	"slices"

	"op2ca/internal/model"
)

// Config holds the tuner knobs. The zero value selects defaults via
// WithDefaults.
type Config struct {
	// ProbeWindows is how many chain windows run per-loop (standard OP2)
	// while the calibrator collects samples before the first decision.
	// At least one probe window is required — the tuner's per-loop
	// parameters and dirty-dat observations come from probes — so values
	// below 1 (including the zero default) resolve to 1.
	ProbeWindows int
	// ReplanPct is the predicted-vs-measured absolute percent error above
	// which a chain is re-tuned at the next window boundary. 0 selects
	// the default (25); negative disables re-planning.
	ReplanPct float64
}

// WithDefaults resolves zero fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.ProbeWindows < 1 {
		c.ProbeWindows = 1
	}
	if c.ReplanPct == 0 {
		c.ReplanPct = 25
	}
	return c
}

// Policy is one executable configuration for a chain.
type Policy struct {
	// CA selects the communication-avoiding chain execution; false is the
	// standard per-loop OP2 baseline.
	CA bool `json:"ca"`
	// Depth is the deepest halo shell any loop executes under this policy
	// (display only; HE carries the per-loop values).
	Depth int `json:"depth,omitempty"`
	// HE is the per-loop halo-extension override slice handed to the
	// inspector; nil means Algorithm 3's own choice.
	HE []int `json:"he,omitempty"`
	// Grouped selects one aggregated message per neighbour (Equation (4));
	// false sends one message per dat and shell.
	Grouped bool `json:"grouped,omitempty"`
	// Overlap selects the pipelined task-graph exchange (post/complete
	// delivery overlapping core compute); false is bulk-synchronous. Only
	// meaningful with CA — the per-loop baseline always delivers bulk.
	Overlap bool `json:"overlap,omitempty"`
}

// Key renders the policy as a short stable identifier: "op2",
// "ca:he=2:grouped", "ca:he=3:ungrouped", "ca:he=2:grouped:ov".
func (p Policy) Key() string {
	if !p.CA {
		return "op2"
	}
	g := "grouped"
	if !p.Grouped {
		g = "ungrouped"
	}
	if p.Overlap {
		g += ":ov"
	}
	return fmt.Sprintf("ca:he=%d:%s", p.Depth, g)
}

// Equal reports whether two policies select the same execution.
func (p Policy) Equal(q Policy) bool {
	return p.CA == q.CA && p.Depth == q.Depth && p.Grouped == q.Grouped &&
		p.Overlap == q.Overlap && slices.Equal(p.HE, q.HE)
}

// CACandidate is one communication-avoiding policy with the Equation (3)
// parameters the back-end derived for it from its halo layouts.
type CACandidate struct {
	Policy Policy
	Params model.ChainParams
	// PackBytes is the largest grouped payload one rank must unpack
	// (feeds Equation (3)'s c term); zero for ungrouped candidates.
	PackBytes float64
}

// ChainInputs is everything Score needs for one chain.
type ChainInputs struct {
	Chain string
	// Op2 holds Equation (1) parameters for each loop execution of one
	// window under the standard back-end.
	Op2 []model.LoopParams
	// CA holds the feasible communication-avoiding candidates; empty when
	// the chain cannot run CA (infeasible analysis, depth or length
	// limits) — Score then picks OP2 and the caller records why in Reason.
	CA []CACandidate
}

// ScoredCandidate is one policy with its model prediction, as recorded in
// decisions (and op2ca-bench JSON).
type ScoredCandidate struct {
	Policy    string  `json:"policy"`
	Predicted float64 `json:"predicted_seconds"`
}

// Decision is the tuner's verdict for one chain.
type Decision struct {
	Chain string `json:"chain"`
	// Candidates lists every scored policy, OP2 first then CA candidates
	// in enumeration order (depth ascending, grouped before ungrouped).
	Candidates []ScoredCandidate `json:"candidates"`
	// Chosen is the winning policy's Key(); ChosenPolicy the executable form.
	Chosen       string `json:"chosen"`
	ChosenPolicy Policy `json:"chosen_policy"`
	// Predicted is the chosen policy's per-window model time; PredictedOp2
	// the baseline's, so the expected gain is grep-able.
	Predicted    float64 `json:"predicted_seconds"`
	PredictedOp2 float64 `json:"predicted_op2_seconds"`
	// Measured is the most recent decided window's measured virtual time;
	// Windows counts decided (non-probe) windows; Replans counts re-tunes.
	Measured float64 `json:"measured_seconds"`
	Windows  int     `json:"windows"`
	Replans  int     `json:"replans"`
	// Reason notes why the candidate space was restricted (e.g. the chain
	// is CA-infeasible), empty when all policies were enumerable.
	Reason string `json:"reason,omitempty"`
}

// Score validates the calibrated parameters, prices every candidate with
// Equations (1)-(3) and returns the decision. A CA candidate wins only
// when strictly cheaper than the OP2 baseline, so ties keep the simpler
// policy (and match jq's min_by, which also keeps the first of equals).
func Score(in ChainInputs, cal Calib) (Decision, error) {
	d := Decision{Chain: in.Chain}
	if err := cal.Net(0).Validate(); err != nil {
		return d, fmt.Errorf("autotune: chain %s: %w", in.Chain, err)
	}
	for i, lp := range in.Op2 {
		if err := lp.Validate(); err != nil {
			return d, fmt.Errorf("autotune: chain %s op2 loop %d: %w", in.Chain, i, err)
		}
	}
	op2 := model.TOp2Chain(in.Op2, cal.Net(0))
	d.Candidates = append(d.Candidates, ScoredCandidate{Policy: Policy{}.Key(), Predicted: op2})
	d.PredictedOp2 = op2
	d.Chosen = Policy{}.Key()
	d.ChosenPolicy = Policy{}
	d.Predicted = op2

	for i, c := range in.CA {
		net := cal.Net(c.PackBytes)
		net.Overlap = c.Policy.Overlap
		if err := net.Validate(); err != nil {
			return d, fmt.Errorf("autotune: chain %s candidate %s: %w", in.Chain, c.Policy.Key(), err)
		}
		for j, lp := range c.Params.Loops {
			if err := lp.Validate(); err != nil {
				return d, fmt.Errorf("autotune: chain %s candidate %s loop %d: %w", in.Chain, c.Policy.Key(), j, err)
			}
		}
		t := model.TCAChain(c.Params, net)
		d.Candidates = append(d.Candidates, ScoredCandidate{Policy: c.Policy.Key(), Predicted: t})
		if t < d.Predicted {
			d.Predicted = t
			d.Chosen = c.Policy.Key()
			d.ChosenPolicy = in.CA[i].Policy
		}
	}
	return d, nil
}

// ShouldReplan reports whether a decided window's measured time diverged
// from the prediction by more than thresholdPct percent.
func ShouldReplan(predicted, measured, thresholdPct float64) bool {
	if thresholdPct < 0 || measured <= 0 {
		return false
	}
	return math.Abs(predicted-measured)/measured*100 > thresholdPct
}
