package halo

import (
	"fmt"
	"strings"

	"op2ca/internal/core"
)

// SetProfile summarises one set's halo shells across ranks: the quantities
// that determine communication-avoiding profitability in the paper's
// Section 3.2 (core sizes shrink and shell sizes grow with depth; the
// exec-shell growth ratio bounds the redundant-computation cost of each
// extra halo layer).
type SetProfile struct {
	Set *core.Set
	// AvgOwned is the mean owned elements per rank.
	AvgOwned float64
	// AvgCore is the mean level-0 core prefix (iterations overlappable
	// with communication by a standalone loop).
	AvgCore float64
	// AvgExec[d-1] and AvgNonexec[d-1] are the mean shell-d sizes.
	AvgExec    []float64
	AvgNonexec []float64
	// MaxExec[d-1] is the largest shell-d execute halo on any rank.
	MaxExec []int
}

// Profile computes per-set shell statistics over all ranks' layouts.
func Profile(prog *core.Program, layouts []*Layout) []SetProfile {
	if len(layouts) == 0 {
		return nil
	}
	depth := layouts[0].Depth
	profiles := make([]SetProfile, 0, len(prog.Sets))
	for _, set := range prog.Sets {
		p := SetProfile{
			Set:        set,
			AvgExec:    make([]float64, depth),
			AvgNonexec: make([]float64, depth),
			MaxExec:    make([]int, depth),
		}
		for _, l := range layouts {
			sl := l.Sets[set.ID]
			p.AvgOwned += float64(sl.NOwned)
			p.AvgCore += float64(sl.CorePrefix(0))
			for d := 1; d <= depth; d++ {
				e := sl.NExec(d) - sl.NExec(d-1)
				p.AvgExec[d-1] += float64(e)
				if e > p.MaxExec[d-1] {
					p.MaxExec[d-1] = e
				}
				p.AvgNonexec[d-1] += float64(sl.NNonexec(d) - sl.NNonexec(d-1))
			}
		}
		n := float64(len(layouts))
		p.AvgOwned /= n
		p.AvgCore /= n
		for d := 0; d < depth; d++ {
			p.AvgExec[d] /= n
			p.AvgNonexec[d] /= n
		}
		profiles = append(profiles, p)
	}
	return profiles
}

// GrowthRatio returns the shell-d to shell-(d-1) execute-halo size ratio
// (d >= 2), the redundancy growth factor of each extra halo layer; 0 when
// the shallower shell is empty.
func (p SetProfile) GrowthRatio(d int) float64 {
	if d < 2 || d > len(p.AvgExec) || p.AvgExec[d-2] == 0 {
		return 0
	}
	return p.AvgExec[d-1] / p.AvgExec[d-2]
}

// String renders the profile as one line per depth.
func (p SetProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: owned %.0f (core %.0f)", p.Set.Name, p.AvgOwned, p.AvgCore)
	for d := 0; d < len(p.AvgExec); d++ {
		fmt.Fprintf(&b, " | d%d exec %.0f nonexec %.0f", d+1, p.AvgExec[d], p.AvgNonexec[d])
	}
	return b.String()
}
