package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteChromeTrace writes the recorded spans in Chrome trace-event JSON
// (the "Trace Event Format"), loadable in Perfetto or chrome://tracing.
//
// Mapping: each epoch becomes one process (pid = epoch index, named after
// its label); each rank becomes a thread (tid = 2*rank for the execution
// track, 2*rank+1 for the PCIe staging track); virtual seconds map to
// trace microseconds with nanosecond resolution. Span kinds become event
// categories, so Perfetto can filter compute vs pack vs send vs wait vs
// redundant individually.
//
// The output is deterministic: identical simulations produce byte-identical
// files.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	item := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	spans := t.Spans()
	type track struct {
		epoch int32
		rank  int32
		trk   int8
	}
	seenEpoch := map[int32]bool{}
	seenTrack := map[track]bool{}
	for _, s := range spans {
		if !seenEpoch[s.Epoch] {
			seenEpoch[s.Epoch] = true
			item(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
				s.Epoch, strconv.Quote(t.EpochLabel(s.Epoch)))
			item(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`,
				s.Epoch, s.Epoch)
		}
		k := track{s.Epoch, s.Rank, s.Track}
		if !seenTrack[k] {
			seenTrack[k] = true
			name := fmt.Sprintf("rank %d", s.Rank)
			if s.Track == TrackStage {
				name = fmt.Sprintf("rank %d pcie", s.Rank)
			}
			tid := 2*int(s.Rank) + int(s.Track)
			item(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				s.Epoch, tid, strconv.Quote(name))
			item(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				s.Epoch, tid, tid)
		}
		item(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"%s","ts":%s,"dur":%s,"args":{"bytes":%d}}`,
			s.Epoch, 2*int(s.Rank)+int(s.Track), strconv.Quote(s.Name), s.Kind,
			us(s.Begin), us(s.Dur()), s.Bytes)
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// us formats virtual seconds as trace microseconds with fixed nanosecond
// precision (deterministic across runs and platforms).
func us(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', 3, 64)
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
