package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// propApp builds random loop-chains from a family of access-pattern
// templates over a rotor mesh and checks that CA execution matches the
// sequential reference exactly (integer-valued data keeps float64 exact).
type propApp struct {
	p             *core.Program
	nodes, edges  *core.Set
	pedges, bnd   *core.Set
	e2n, p2n, b2n *core.Map
	q             []*core.Dat // node dats
	w             *core.Dat   // edge dat
}

func newPropApp(m *mesh.FV3D) *propApp {
	a := &propApp{p: core.NewProgram()}
	a.nodes = a.p.DeclSet(m.NNodes, "nodes")
	a.edges = a.p.DeclSet(m.NEdges, "edges")
	a.pedges = a.p.DeclSet(m.NPedges, "pedges")
	a.bnd = a.p.DeclSet(m.NBedges, "bnd")
	a.e2n = a.p.DeclMap(a.edges, a.nodes, 2, m.EdgeNodes, "e2n")
	a.p2n = a.p.DeclMap(a.pedges, a.nodes, 2, m.PedgeNodes, "p2n")
	a.b2n = a.p.DeclMap(a.bnd, a.nodes, 1, m.BedgeNodes, "b2n")
	for i := 0; i < 4; i++ {
		d := a.p.DeclDat(a.nodes, 1, nil, fmt.Sprintf("q%d", i))
		for j := range d.Data {
			d.Data[j] = float64((j+3*i)%7 - 3)
		}
		a.q = append(a.q, d)
	}
	a.w = a.p.DeclDat(a.edges, 1, nil, "w")
	for j := range a.w.Data {
		a.w.Data[j] = float64(j%3 + 1)
	}
	return a
}

var (
	kInc = &core.Kernel{Name: "p_inc", Fn: func(a [][]float64) {
		a[0][0] += a[2][0] - a[3][0]
		a[1][0] += a[3][0] + a[2][0]
	}}
	kIncW = &core.Kernel{Name: "p_incw", Fn: func(a [][]float64) {
		a[0][0] += a[1][0] * a[2][0]
		_ = a
	}}
	kPerRW = &core.Kernel{Name: "p_period", Fn: func(a [][]float64) {
		s := a[0][0] + a[1][0]
		a[0][0], a[1][0] = s, s
	}}
	kDirW = &core.Kernel{Name: "p_init", Fn: func(a [][]float64) {
		a[0][0] = a[1][0] * 2
	}}
	kDirRW = &core.Kernel{Name: "p_scale", Fn: func(a [][]float64) {
		a[0][0] = 2*a[0][0] + 1
	}}
	kEdgeRW = &core.Kernel{Name: "p_edge", Fn: func(a [][]float64) {
		a[0][0] = a[0][0] + a[1][0] - a[2][0]
	}}
)

var (
	kVecInc = &core.Kernel{Name: "p_vecinc", Fn: func(a [][]float64) {
		// Vector args: a[0],a[1] dst slots; a[2],a[3] src slots.
		a[0][0] += a[2][0] - a[3][0]
		a[1][0] += a[3][0] + a[2][0]
	}}
	kBndInc = &core.Kernel{Name: "p_bnd", Fn: func(a [][]float64) {
		a[0][0] += 2 * a[1][0]
	}}
)

// randomLoop picks one loop template with random dat choices.
func (a *propApp) randomLoop(rng *rand.Rand) core.Loop {
	dst := a.q[rng.Intn(len(a.q))]
	src := a.q[rng.Intn(len(a.q))]
	for src == dst {
		src = a.q[(rng.Intn(len(a.q)))]
	}
	switch rng.Intn(8) {
	case 0: // indirect increment reading another node dat
		return core.NewLoop(kInc, a.edges,
			core.ArgDat(dst, 0, a.e2n, core.Inc), core.ArgDat(dst, 1, a.e2n, core.Inc),
			core.ArgDat(src, 0, a.e2n, core.Read), core.ArgDat(src, 1, a.e2n, core.Read))
	case 1: // indirect increment reading an edge dat directly
		return core.NewLoop(kIncW, a.edges,
			core.ArgDat(dst, 0, a.e2n, core.Inc),
			core.ArgDatDirect(a.w, core.Read),
			core.ArgDat(src, 1, a.e2n, core.Read))
	case 2: // periodic read-write
		return core.NewLoop(kPerRW, a.pedges,
			core.ArgDat(dst, 0, a.p2n, core.ReadWrite), core.ArgDat(dst, 1, a.p2n, core.ReadWrite))
	case 3: // direct write from another node dat
		return core.NewLoop(kDirW, a.nodes,
			core.ArgDatDirect(dst, core.Write), core.ArgDatDirect(src, core.Read))
	case 4: // direct read-modify-write
		return core.NewLoop(kDirRW, a.nodes, core.ArgDatDirect(dst, core.ReadWrite))
	case 5: // edge dat updated from node dats
		return core.NewLoop(kEdgeRW, a.edges,
			core.ArgDatDirect(a.w, core.ReadWrite),
			core.ArgDat(dst, 0, a.e2n, core.Read), core.ArgDat(src, 1, a.e2n, core.Read))
	case 6: // vector arguments (OP_ALL over both slots)
		return core.NewLoop(kVecInc, a.edges,
			core.ArgDatVec(dst, a.e2n, core.Inc),
			core.ArgDatVec(src, a.e2n, core.Read))
	default: // boundary-face increment reading another node dat
		return core.NewLoop(kBndInc, a.bnd,
			core.ArgDat(dst, 0, a.b2n, core.Inc),
			core.ArgDat(src, 0, a.b2n, core.Read))
	}
}

func TestRandomChainsCAMatchesSeq(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ni, nj, nk := rng.Intn(4)+3, rng.Intn(4)+3, rng.Intn(3)+3
		m := mesh.Rotor(ni, nj, nk)
		nparts := rng.Intn(5) + 1
		if nparts > m.NNodes {
			nparts = m.NNodes
		}
		nloops := rng.Intn(4) + 2

		// Template sequence must be identical for both backends; loops
		// reference dats by object, so build each program's loops from
		// the same random decisions.
		seed := rng.Int63()
		buildLoops := func(a *propApp) []core.Loop {
			r := rand.New(rand.NewSource(seed))
			loops := make([]core.Loop, nloops)
			for i := range loops {
				loops[i] = a.randomLoop(r)
			}
			return loops
		}

		// Sequential reference. The chain runs twice: the second
		// execution starts from dirty halos, exercising the grouped
		// exchange path.
		ref := newPropApp(m)
		refLoops := buildLoops(ref)
		seq := core.NewSeq()
		for rep := 0; rep < 2; rep++ {
			seq.ChainBegin("prop")
			for _, l := range refLoops {
				seq.ParLoop(l)
			}
			seq.ChainEnd()
		}

		// CA run.
		var assign partition.Assignment
		switch trial % 3 {
		case 0:
			assign = partition.KWay(m.NodeAdjacency(), nparts)
		case 1:
			assign = partition.Block(m.NNodes, nparts)
		default:
			assign = partition.Random(m.NNodes, nparts, seed)
		}
		ca := newPropApp(m)
		caLoops := buildLoops(ca)
		b, err := New(Config{
			Prog: ca.p, Primary: ca.nodes, Assign: assign, NParts: nparts,
			Depth: nloops + 1, MaxChainLen: nloops, CA: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			b.ChainBegin("prop")
			for _, l := range caLoops {
				b.ParLoop(l)
			}
			b.ChainEnd()
		}

		for i := range ref.q {
			got := b.GatherDat(ca.q[i])
			want := ref.q[i].Data
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d (mesh %dx%dx%d, %d parts, %d loops): q%d[%d] = %g, want %g",
						trial, ni, nj, nk, nparts, nloops, i, j, got[j], want[j])
				}
			}
		}
		gotW := b.GatherDat(ca.w)
		for j := range ref.w.Data {
			if gotW[j] != ref.w.Data[j] {
				t.Fatalf("trial %d: w[%d] = %g, want %g", trial, j, gotW[j], ref.w.Data[j])
			}
		}
	}
}
