package checkpoint

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleState() *State {
	return &State{
		Fingerprint:  []byte(`{"depth":2}`),
		Note:         "iter=3",
		FaultSeq:     41,
		Clocks:       []float64{0.25, 1.0 / 3.0, math.Pi},
		ValidExec:    []int64{2, 0, -1},
		ValidNonexec: []int64{2, 1, 0},
		Dats: [][][]float64{
			{{1, 2, 3}, {}},
			{{-0.5, 1e-300}, {4}},
		},
		Meta: []byte(`{"stats":null}`),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	n, err := Encode(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped)); err == nil {
		t.Error("bit flip not detected")
	}

	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncation not detected")
	}

	bad := append([]byte("NOTACKPT"), raw[8:]...)
	if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic = %v, want magic error", err)
	}

	wrongVer := append([]byte(nil), raw...)
	wrongVer[8] = 99
	if _, err := Decode(bytes.NewReader(wrongVer)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version = %v, want version error", err)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("every=5,path=ck.bin")
	if err != nil || spec.Every != 5 || spec.Path != "ck.bin" {
		t.Fatalf("ParseSpec = %+v, %v", spec, err)
	}
	if spec, err = ParseSpec("path=x, every=1"); err != nil || spec.Every != 1 || spec.Path != "x" {
		t.Fatalf("order/space variant = %+v, %v", spec, err)
	}
	for _, bad := range []string{
		"", "every=5", "path=x", "every=0,path=x", "every=a,path=x", "bogus=1", "every",
		"every=-2,path=x",              // negative period
		"every=1,path=x,keep=-1",       // negative generation count
		"every=1,every=2,path=x",       // duplicate key
		"every=1,path=x,path=y",        // duplicate path
		"every=1,path=x,keep=2,keep=2", // duplicate keep, even with equal values
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestAtomicWriteAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	s := sampleState()
	err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := Encode(w, s)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("file round trip diverged")
	}
}
