package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Spec is the parsed form of the -checkpoint command-line flag:
// "every=N,path=P,keep=K" requests a snapshot after every N measured
// iterations. With keep=1 (the default) the same file P is overwritten each
// time (atomically), so a crash always finds the most recent complete
// snapshot; with keep=K > 1 snapshots rotate through a generation ring of K
// numbered files (see Ring), so recovery can fall back past a corrupt
// newest generation.
type Spec struct {
	Every int
	Path  string
	// Keep is the number of snapshot generations retained. 0 and 1 both
	// mean the legacy single-file behaviour.
	Keep int
}

// Enabled reports whether the spec requests periodic snapshots.
func (s Spec) Enabled() bool { return s.Every > 0 && s.Path != "" }

// ParseSpec parses "every=N,path=P[,keep=K]" (every and path required, any
// order; keep defaults to 1). Each key may appear at most once — a
// duplicate is almost always a copy-paste error, and silently letting the
// last occurrence win would mask it.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	seen := make(map[string]bool, 3)
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Spec{}, fmt.Errorf("checkpoint spec: %q is not key=value", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("checkpoint spec: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("checkpoint spec: every=%q must be a positive integer", val)
			}
			spec.Every = n
		case "path":
			if val == "" {
				return Spec{}, fmt.Errorf("checkpoint spec: path must not be empty")
			}
			spec.Path = val
		case "keep":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("checkpoint spec: keep=%q must be a positive integer", val)
			}
			spec.Keep = n
		default:
			return Spec{}, fmt.Errorf("checkpoint spec: unknown key %q (want every, path, keep)", key)
		}
	}
	if !spec.Enabled() {
		return Spec{}, fmt.Errorf("checkpoint spec: both every=N and path=P are required")
	}
	return spec, nil
}

// AtomicWriteFile writes a snapshot produced by write to path via a
// temporary file and rename. The temp file is fsynced before the rename and
// the parent directory after it, so neither a process crash mid-write nor a
// host crash shortly after the rename can leave a truncated or
// empty-but-renamed file where a complete snapshot stood.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives a host crash.
// Filesystems that cannot sync directories (some CI tmpfs setups) are not
// an error: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// ReadFile decodes the snapshot stored at path.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
