package cluster

// checkpoint.go wires the backend into package checkpoint: Checkpoint
// snapshots the complete simulation state — per-rank dat values, halo
// validity, virtual clocks, the fault/exchange sequence counter, stats,
// plan-cache fingerprints and autotuner state — and Restore rebuilds a
// process-equivalent backend that continues exactly where the snapshot left
// off. The restore invariant: crash -> restore-from-last-checkpoint ->
// completion yields dat checksums bitwise identical to the uninterrupted
// run, under every execution policy (per-loop OP2, CA at any depth, grouped
// or ungrouped messages, lazy chains, parallel ranks, autotune mid-switch).
//
// What makes the invariant hold:
//   - Dat values and clocks are stored as IEEE-754 bit patterns (package
//     checkpoint), so no value changes in transit.
//   - FaultSeq keeps the deterministic fault schedule aligned: the resumed
//     run's exchanges draw the same verdicts as the uninterrupted run's.
//   - Plan-cache keys are restored as "warm" entries: the cached inspection
//     is rebuilt on first use (inspection is deterministic) but accounted as
//     a cache hit, so PlanCacheStats continue exactly.
//   - The autotuner's calibrator samples, probe counts, dirty-dat
//     observations, per-window parameters and committed decision are all
//     restored, so the tuner's future decisions match the uninterrupted
//     run's.
//   - The crash fault is disarmed on restore: the resumed run replays the
//     pre-crash exchange sequence numbers without dying again (the simulated
//     analogue of restarting on a replacement node).

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"op2ca/internal/autotune"
	"op2ca/internal/checkpoint"
	"op2ca/internal/model"
	"op2ca/internal/obs"
)

// configFingerprint is the canonical identity of a backend configuration:
// everything that shapes partitioning, halo layouts, execution policy or the
// virtual-time arithmetic. Restore refuses a snapshot whose fingerprint does
// not match the restoring configuration — resuming into a different mesh,
// machine or policy would silently break the restore invariant. Tracing and
// checkpointing knobs are deliberately excluded: they never feed back into
// results.
type configFingerprint struct {
	Version     int    `json:"version"`
	NParts      int    `json:"nparts"`
	Depth       int    `json:"depth"`
	MaxChainLen int    `json:"max_chain_len"`
	CA          bool   `json:"ca"`
	Lazy        bool   `json:"lazy"`
	AutoTune    bool   `json:"autotune"`
	Parallel    bool   `json:"parallel"`
	GPUDirect   bool   `json:"gpudirect"`
	NoGrouped   bool   `json:"no_grouped_msgs"`
	NoPlanCache bool   `json:"no_plan_cache"`
	Overlap     bool   `json:"overlap,omitempty"`
	Machine     string `json:"machine"`
	// The machine's cost-model scalars guard against two custom machines
	// sharing a name.
	Latency        float64 `json:"latency"`
	Bandwidth      float64 `json:"bandwidth"`
	PackRate       float64 `json:"pack_rate"`
	EagerThreshold int64   `json:"eager_threshold"`
	Handshake      float64 `json:"handshake,omitempty"`
	GPU            bool    `json:"gpu"`
	// Faults is the plan spec normalised to its message-fault content: the
	// crash clause is stripped (a resume must not require re-specifying the
	// crash that killed the original run), and a plan left injecting
	// nothing renders as "".
	Faults string `json:"faults"`
	// Resolved retry knobs (defaults applied), not the raw Config values:
	// a crash-only plan carrying maxretries would otherwise fingerprint
	// equal to a no-fault resume config with a different effective budget.
	MaxRetries   int     `json:"max_retries"`
	RetryTimeout float64 `json:"retry_timeout"`
	RetryBackoff float64 `json:"retry_backoff"`
	Chains       string  `json:"chains"`
	ProbeWindows int     `json:"probe_windows"`
	ReplanPct    float64 `json:"replan_pct"`
	// Mesh and data identity: sets, dats and the partition assignment.
	Primary    string  `json:"primary"`
	Sets       []fpSet `json:"sets"`
	Dats       []fpDat `json:"dats"`
	AssignHash string  `json:"assign_hash"`
}

type fpSet struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

type fpDat struct {
	Name string `json:"name"`
	Set  string `json:"set"`
	Dim  int    `json:"dim"`
}

func (b *Backend) configFingerprint() ([]byte, error) {
	cfg := b.cfg
	fp := configFingerprint{
		Version:        checkpoint.Version,
		NParts:         cfg.NParts,
		Depth:          cfg.Depth,
		MaxChainLen:    cfg.MaxChainLen,
		CA:             cfg.CA,
		Lazy:           cfg.Lazy,
		AutoTune:       cfg.AutoTune,
		Parallel:       cfg.Parallel,
		GPUDirect:      cfg.GPUDirect,
		NoGrouped:      cfg.NoGroupedMsgs,
		NoPlanCache:    cfg.NoPlanCache,
		Overlap:        cfg.Overlap,
		Machine:        cfg.Machine.Name,
		Latency:        cfg.Machine.Latency,
		Bandwidth:      cfg.Machine.Bandwidth,
		PackRate:       cfg.Machine.PackRate,
		EagerThreshold: cfg.Machine.EagerThreshold,
		Handshake:      cfg.Machine.Handshake,
		GPU:            cfg.Machine.GPU != nil,
		Faults:         normalizedFaultSpec(cfg),
		MaxRetries:     b.maxRetries,
		RetryTimeout:   b.retryTimeout,
		RetryBackoff:   b.retryBackoff,
		ProbeWindows:   cfg.Tune.WithDefaults().ProbeWindows,
		ReplanPct:      cfg.Tune.WithDefaults().ReplanPct,
		Primary:        cfg.Primary.Name,
	}
	if cfg.Chains != nil {
		fp.Chains = cfg.Chains.String()
	}
	for _, s := range cfg.Prog.Sets {
		fp.Sets = append(fp.Sets, fpSet{Name: s.Name, Size: s.Size})
	}
	for _, d := range cfg.Prog.Dats {
		fp.Dats = append(fp.Dats, fpDat{Name: d.Name, Set: d.Set.Name, Dim: d.Dim})
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, a := range cfg.Assign {
		binary.LittleEndian.PutUint32(buf[:], uint32(a))
		h.Write(buf[:])
	}
	fp.AssignHash = fmt.Sprintf("%016x", h.Sum64())
	return checkpoint.MarshalFingerprint(fp)
}

// normalizedFaultSpec renders the fault plan with the crash clauses
// stripped; a plan left injecting no message faults renders as "", so a
// crash-only plan fingerprints equal to no plan at all (the resume
// configuration).
func normalizedFaultSpec(cfg Config) string {
	p := cfg.Faults
	if p == nil {
		return ""
	}
	stripped := *p
	stripped.Crashes = nil
	if !stripped.Enabled() {
		return ""
	}
	return stripped.String()
}

// ckptMeta is the backend-defined continuation blob of a snapshot: stats,
// plan-cache state and autotuner state, JSON-encoded (encoding/json sorts
// map keys, so equal states produce equal bytes).
type ckptMeta struct {
	Stats             *Stats        `json:"stats"`
	PlanHits          int64         `json:"plan_hits"`
	PlanMisses        int64         `json:"plan_misses"`
	PlanInvalidations int64         `json:"plan_invalidations"`
	Plans             []ckptPlanKey `json:"plans,omitempty"`
	Tunes             []ckptTune    `json:"tunes,omitempty"`
}

type ckptPlanKey struct {
	Chain string `json:"chain"`
	Sig   string `json:"sig"`
}

// ckptTune is one chain's serialised autotuner state.
type ckptTune struct {
	Chain     string                   `json:"chain"`
	Sig       string                   `json:"sig"`
	Skip      bool                     `json:"skip,omitempty"`
	Probes    int                      `json:"probes"`
	Dirty     []int                    `json:"dirty,omitempty"`
	Op2Params []ckptTunedLoop          `json:"op2_params,omitempty"`
	Decision  *autotune.Decision       `json:"decision,omitempty"`
	Cal       autotune.CalibratorState `json:"cal"`
}

type ckptTunedLoop struct {
	Kernel string           `json:"kernel"`
	Params model.LoopParams `json:"params"`
}

// Checkpoint writes a complete snapshot of the backend's state to w. Lazily
// queued loops are flushed first (the snapshot captures a well-defined
// synchronisation point); an open explicit chain is an error — there is no
// mid-chain state a restore could resume into. note is caller-defined resume
// context returned verbatim by Restore.
func (b *Backend) Checkpoint(w io.Writer, note string) error {
	if b.rec != nil {
		return fmt.Errorf("cluster: cannot checkpoint inside open chain %q", b.rec.name)
	}
	b.FlushLazy()
	fp, err := b.configFingerprint()
	if err != nil {
		return err
	}
	st := &checkpoint.State{
		Fingerprint:  fp,
		Note:         note,
		FaultSeq:     b.faultSeq,
		Clocks:       b.clock,
		ValidExec:    make([]int64, len(b.valid)),
		ValidNonexec: make([]int64, len(b.valid)),
		Dats:         b.dats,
	}
	for i, v := range b.valid {
		st.ValidExec[i] = int64(v.exec)
		st.ValidNonexec[i] = int64(v.nonexec)
	}
	meta := ckptMeta{
		Stats:             b.stats,
		PlanHits:          b.planHits,
		PlanMisses:        b.planMisses,
		PlanInvalidations: b.planInvalidations,
	}
	for _, e := range b.plans {
		meta.Plans = append(meta.Plans, ckptPlanKey{Chain: e.key.chain, Sig: e.key.sig})
	}
	for key := range b.warmPlans {
		// Warm keys not yet rebuilt carry over: the uninterrupted run still
		// holds their entries.
		meta.Plans = append(meta.Plans, ckptPlanKey{Chain: key.chain, Sig: key.sig})
	}
	sort.Slice(meta.Plans, func(i, j int) bool {
		if meta.Plans[i].Chain != meta.Plans[j].Chain {
			return meta.Plans[i].Chain < meta.Plans[j].Chain
		}
		return meta.Plans[i].Sig < meta.Plans[j].Sig
	})
	for key, ct := range b.tunes {
		t := ckptTune{
			Chain:  key.chain,
			Sig:    key.sig,
			Skip:   ct.skip,
			Probes: ct.probes,
			Cal:    ct.cal.State(),
		}
		for id := range ct.dirty {
			t.Dirty = append(t.Dirty, id)
		}
		sort.Ints(t.Dirty)
		for _, tl := range ct.op2Params {
			t.Op2Params = append(t.Op2Params, ckptTunedLoop{Kernel: tl.kernel, Params: tl.p})
		}
		t.Decision = ct.decision
		meta.Tunes = append(meta.Tunes, t)
	}
	sort.Slice(meta.Tunes, func(i, j int) bool {
		if meta.Tunes[i].Chain != meta.Tunes[j].Chain {
			return meta.Tunes[i].Chain < meta.Tunes[j].Chain
		}
		return meta.Tunes[i].Sig < meta.Tunes[j].Sig
	})
	st.Meta, err = checkpoint.MarshalFingerprint(meta)
	if err != nil {
		return err
	}
	n, err := checkpoint.Encode(w, st)
	if err != nil {
		return err
	}
	b.stats.Ckpt.Checkpoints++
	b.stats.Ckpt.CheckpointBytes += n
	if b.tracer.Enabled() {
		t := b.maxClock()
		b.tracer.Emit(0, obs.TrackExec, obs.Checkpoint, note, t, t, n)
	}
	return nil
}

// Restore decodes one snapshot from r and rebuilds a backend from it under
// cfg, returning the backend and the snapshot's note. cfg must be
// process-equivalent to the checkpointing configuration (same mesh,
// partition, machine, policies and retry knobs — verified against the
// snapshot's fingerprint); the fault plan may differ only by the crash
// clause, which a resumed run drops.
func Restore(r io.Reader, cfg Config) (*Backend, string, error) {
	st, err := checkpoint.Decode(r)
	if err != nil {
		return nil, "", err
	}
	b, err := RestoreState(st, cfg)
	if err != nil {
		return nil, "", err
	}
	return b, st.Note, nil
}

// RestoreState rebuilds a backend from an already-decoded snapshot.
func RestoreState(st *checkpoint.State, cfg Config) (*Backend, error) {
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}
	fp, err := b.configFingerprint()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(fp, st.Fingerprint) {
		return nil, fmt.Errorf("cluster: checkpoint fingerprint mismatch:\n  snapshot: %s\n  config:   %s",
			st.Fingerprint, fp)
	}
	if len(st.Clocks) != len(b.clock) {
		return nil, fmt.Errorf("cluster: checkpoint has %d clocks, config builds %d", len(st.Clocks), len(b.clock))
	}
	copy(b.clock, st.Clocks)
	if len(st.ValidExec) != len(b.valid) {
		return nil, fmt.Errorf("cluster: checkpoint has %d validity entries, config builds %d", len(st.ValidExec), len(b.valid))
	}
	for i := range b.valid {
		b.valid[i] = validity{exec: int(st.ValidExec[i]), nonexec: int(st.ValidNonexec[i])}
	}
	b.faultSeq = st.FaultSeq
	if len(st.Dats) != len(b.dats) {
		return nil, fmt.Errorf("cluster: checkpoint has %d ranks of data, config builds %d", len(st.Dats), len(b.dats))
	}
	for r := range b.dats {
		if len(st.Dats[r]) != len(b.dats[r]) {
			return nil, fmt.Errorf("cluster: checkpoint rank %d has %d dats, config builds %d", r, len(st.Dats[r]), len(b.dats[r]))
		}
		for d := range b.dats[r] {
			if len(st.Dats[r][d]) != len(b.dats[r][d]) {
				return nil, fmt.Errorf("cluster: checkpoint rank %d dat %d has %d values, config builds %d",
					r, d, len(st.Dats[r][d]), len(b.dats[r][d]))
			}
			copy(b.dats[r][d], st.Dats[r][d])
		}
	}
	var meta ckptMeta
	if err := json.Unmarshal(st.Meta, &meta); err != nil {
		return nil, fmt.Errorf("cluster: checkpoint meta: %w", err)
	}
	if meta.Stats != nil {
		b.stats = meta.Stats
		if b.stats.Loops == nil {
			b.stats.Loops = map[string]*LoopStats{}
		}
		if b.stats.Chains == nil {
			b.stats.Chains = map[string]*ChainStats{}
		}
		if b.stats.AutoTune.Decisions == nil {
			b.stats.AutoTune.Decisions = map[string]*autotune.Decision{}
		}
		if b.stats.AutoTune.Skipped == nil {
			b.stats.AutoTune.Skipped = map[string]string{}
		}
	}
	b.planHits = meta.PlanHits
	b.planMisses = meta.PlanMisses
	b.planInvalidations = meta.PlanInvalidations
	for _, k := range meta.Plans {
		b.warmPlans[planKey{chain: k.Chain, sig: k.Sig}] = true
	}
	for _, t := range meta.Tunes {
		ct := &chainTune{
			chain:  t.Chain,
			cfg:    b.cfg.Tune.WithDefaults(),
			cal:    autotune.NewCalibratorFromState(t.Cal),
			skip:   t.Skip,
			probes: t.Probes,
			dirty:  map[int]bool{},
		}
		for _, id := range t.Dirty {
			ct.dirty[id] = true
		}
		for _, tl := range t.Op2Params {
			ct.op2Params = append(ct.op2Params, tunedLoop{kernel: tl.Kernel, p: tl.Params})
		}
		ct.decision = t.Decision
		if ct.decision != nil {
			// Re-establish pointer identity with the stats map, so in-place
			// window/measurement updates keep showing in AutoTuneStats as
			// they do in an uninterrupted run.
			b.stats.AutoTune.Decisions[ct.chain] = ct.decision
		}
		b.tunes[tuneKey{chain: t.Chain, sig: t.Sig}] = ct
	}
	// A restored backend never re-fires the crash that produced it: the
	// resumed run replays the pre-crash exchange sequence without dying.
	// Disarm every clause; a supervisor re-arms the unfired ones via
	// ArmCrashes so the rest of a multi-crash schedule still fires.
	b.crashArmed = nil
	b.stats.Ckpt.Restores++
	if b.tracer.Enabled() {
		t := b.maxClock()
		b.tracer.Emit(0, obs.TrackExec, obs.Restore, st.Note, t, t, 0)
	}
	return b, nil
}
