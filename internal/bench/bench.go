// Package bench regenerates every table and figure of the paper's
// evaluation (Section 4): Table 2 and Figures 10-11 for MG-CFD's synthetic
// loop-chains, Tables 3-5 and Figures 12-13 for the Hydra-proxy chains, on
// the ARCHER2 (CPU) and Cirrus (GPU) machine models.
//
// # Scaling
//
// The paper runs 8M/24M-node NASA Rotor 37 meshes on up to 16k cores; this
// reproduction emulates strong scaling at laptop scale: each "8M"/"24M"
// experiment uses a synthetic rotor mesh of Config.Nodes8M/Nodes24M nodes,
// and a paper point of N cluster nodes maps to round(N * RankScale *
// machine ranks-per-node) simulated ranks (at least 2). Per-rank partition
// sizes, neighbour counts and message sizes therefore follow the paper's
// strong-scaling trajectory at a reduced absolute scale; reported times are
// virtual (netsim clocks under the machine model). EXPERIMENTS.md records
// paper-vs-measured shapes.
package bench

import (
	"fmt"
	"math"
	"strings"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/obs"
)

// Config scales the experiments.
type Config struct {
	// Nodes8M and Nodes24M are the synthetic stand-ins for the paper's
	// 8M- and 24M-node meshes (the 1:3 ratio should be kept).
	Nodes8M  int
	Nodes24M int
	// RankScale converts paper cluster nodes to simulated ranks:
	// ranks = max(2, round(N * RankScale * ranksPerNode)).
	RankScale float64
	// Iters is the number of main-loop iterations measured per point.
	Iters int
	// Parallel executes simulated ranks on multiple host threads.
	Parallel bool
	// Tracer, when non-nil, records virtual-time spans of every backend
	// the experiments construct; each backend opens its own trace epoch
	// (pid in the Chrome export), keeping timelines separate.
	Tracer *obs.Tracer
	// Observe, when non-nil, is called after each measured backend run
	// with a label identifying the configuration — the hook behind
	// op2ca-bench's -model-check and -metrics flags.
	Observe func(label string, b *cluster.Backend)
	// Faults, when non-nil, injects the deterministic fault plan into
	// every backend the experiments construct (the -faults flag). Results
	// stay bit-identical to the fault-free run; virtual times include
	// retransmission and degradation costs.
	Faults *faults.Plan
	// AutoTune lets the model-driven autotuner pick each chain's execution
	// policy in the CA runs of the paper experiments (the -autotune flag).
	// Results stay bit-identical to the static configuration. Ablations are
	// deliberately excluded: they study pinned static knobs (fixed depth,
	// grouping, partitioner, GPUDirect) that the tuner would override.
	AutoTune bool
	// Overlap runs the CA back-ends of the paper experiments on the
	// overlap-capable task-graph chain executor (the -overlap flag). Results
	// stay bit-identical; virtual times drop by the pipelined latency and
	// handshake savings. The dedicated overlap experiment measures both
	// modes regardless of this knob.
	Overlap bool
	// OverlapSink, when non-nil, receives the overlap experiment's
	// machine-readable record (the -json document's overlap field).
	OverlapSink func(*OverlapRecord)
	// CheckpointEvery and Ring, when both set, snapshot each measured
	// run's backend through the verified checkpoint ring after every
	// CheckpointEvery measured iterations (the -checkpoint flag); every
	// generation is written atomically and read back, so a crash always
	// finds the most recent complete snapshot.
	CheckpointEvery int
	Ring            *checkpoint.Ring
	// Resume, when non-nil, is a snapshot a previous (crashed) invocation
	// wrote: the run whose label matches the snapshot's resume point
	// restores mid-measurement, all other runs re-execute deterministically,
	// and the invocation's final checksums equal an uninterrupted run's.
	Resume *checkpoint.State
	// ArmedCrashes, when non-nil, is the supervisor's per-clause arming
	// mask for the fault plan's crash schedule, applied to every backend
	// the experiments construct or restore (see internal/supervise). Nil
	// leaves fresh backends fully armed and restored backends disarmed.
	ArmedCrashes []bool
	// Watchdog, when positive, sets the no-progress deadline (virtual
	// seconds between exchanges) on every backend the experiments build.
	Watchdog float64
}

// adopt applies the supervisor-owned knobs — the crash-arming mask and the
// watchdog deadline — to a backend an experiment constructed or restored,
// and returns it for call-site brevity.
func (c Config) adopt(b *cluster.Backend) *cluster.Backend {
	if c.ArmedCrashes != nil {
		b.ArmCrashes(c.ArmedCrashes)
	}
	if c.Watchdog > 0 {
		b.SetWatchdog(c.Watchdog)
	}
	return b
}

// observe invokes the Observe hook if one is configured.
func (c Config) observe(label string, b *cluster.Backend) {
	if c.Observe != nil {
		c.Observe(label, b)
	}
}

// Default returns a configuration sized for interactive runs (a few
// minutes per experiment on a laptop). RankScale is calibrated so the
// paper's 64-node ARCHER2 points land in the same per-rank partition-size
// regime (hundreds of mesh nodes per rank) where the published crossovers
// occur.
func Default() Config {
	return Config{Nodes8M: 60000, Nodes24M: 180000, RankScale: 0.012, Iters: 3, Parallel: true}
}

// Quick returns a configuration sized for go test / CI.
func Quick() Config {
	return Config{Nodes8M: 16000, Nodes24M: 48000, RankScale: 0.006, Iters: 2, Parallel: true}
}

// ranksFor maps a paper node count to a simulated rank count.
func (c Config) ranksFor(paperNodes int, ranksPerNode int) int {
	r := int(math.Round(float64(paperNodes) * c.RankScale * float64(ranksPerNode)))
	if r < 2 {
		r = 2
	}
	return r
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries scaling caveats and measurement definitions.
	Notes []string
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as machine-readable CSV (header row first; notes
// omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
func gain(op2, ca float64) float64 {
	if op2 <= 0 {
		return 0
	}
	return (op2 - ca) / op2 * 100
}

// archer and cirrus are internal shorthands for the machine presets.
func archer() *machine.Machine { return machine.ARCHER2() }
func cirrus() *machine.Machine { return machine.Cirrus() }
