package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"op2ca/internal/service"
)

// ---- small HTTP helpers -------------------------------------------------

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, b, err)
		}
	}
	return resp
}

func submit(t *testing.T, base string, spec service.JobSpec) service.JobView {
	t.Helper()
	resp, b := postJSON(t, base+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var v service.JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func await(t *testing.T, base, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v service.JobView
		if resp := getJSON(t, base+"/v1/jobs/"+id, &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s: status %d", id, resp.StatusCode)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func result(t *testing.T, base, id string) *service.Result {
	t.Helper()
	var r service.Result
	if resp := getJSON(t, base+"/v1/jobs/"+id+"/result", &r); resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	return &r
}

func distinct(ws []string) int {
	seen := map[string]bool{}
	for _, w := range ws {
		seen[w] = true
	}
	return len(seen)
}

// oracle runs the spec directly (no queue, no preemption, no migration)
// and asserts the served result's determinism-bearing fields match it
// bitwise — the acceptance oracle for the whole service path.
func oracle(t *testing.T, spec service.JobSpec, got *service.Result, label string) {
	t.Helper()
	want, err := service.RunDirect(spec, "")
	if err != nil {
		t.Fatalf("%s: direct oracle: %v", label, err)
	}
	if got.Checksum != want.Checksum {
		t.Errorf("%s: checksum %s != direct %s", label, got.Checksum, want.Checksum)
	}
	if got.Residual != want.Residual {
		t.Errorf("%s: residual %g != direct %g", label, got.Residual, want.Residual)
	}
	if got.MaxClockSeconds != want.MaxClockSeconds {
		t.Errorf("%s: max clock %g != direct %g", label, got.MaxClockSeconds, want.MaxClockSeconds)
	}
}

// ---- the end-to-end acceptance test -------------------------------------

// TestServiceE2EOverHTTP drives the full acceptance scenario through the
// HTTP API: concurrent jobs from two tenants, one worker killed mid-job
// by an injected crash clause (supervised restart migrates the job), two
// preemptions resumed on different workers, all results bitwise
// identical to direct runs of the same specs.
func TestServiceE2EOverHTTP(t *testing.T) {
	dataDir := t.TempDir()
	svc, err := service.New(service.Config{Workers: 3, QueueCap: 32, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	specs := map[string]service.JobSpec{}

	// Three clean jobs saturate the three workers.
	clean1 := smallMGCFD("acme")
	clean2 := smallMGCFD("zeta")
	clean2.NChains = 3
	clean3 := smallHydra("acme")
	var ids []string
	for _, sp := range []service.JobSpec{clean1, clean2, clean3} {
		v := submit(t, ts.URL, sp)
		specs[v.ID] = sp
		ids = append(ids, v.ID)
	}

	// A worker "dies" mid-job: an injected crash clause kills rank 0 at
	// its 40th exchange. The supervisor restores from the ring and the
	// dispatcher must place the retry on a different worker.
	crash := smallMGCFD("zeta")
	crash.Faults = "crash=rank0@40,seed=1"
	crashID := submit(t, ts.URL, crash).ID
	specs[crashID] = crash
	ids = append(ids, crashID)

	// Preemption with the intent set while queued: the first attempt
	// yields at its first exchange boundary and migrates.
	pre1 := smallMGCFD("acme")
	pre1.Iters = 5
	pre1ID := submit(t, ts.URL, pre1).ID
	specs[pre1ID] = pre1
	ids = append(ids, pre1ID)
	if resp, b := postJSON(t, ts.URL+"/v1/jobs/"+pre1ID+"/preempt", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("preempt: status %d: %s", resp.StatusCode, b)
	}

	// Preemption mid-run: wait until the job has committed a checkpoint
	// generation, then vacate it — the resumed attempt starts from that
	// snapshot on another worker.
	pre2 := service.JobSpec{
		Tenant: "zeta", App: "mgcfd",
		MeshNodes: 6000, Ranks: 3, Iters: 12, NChains: 2, Machine: "laptop",
	}
	pre2ID := submit(t, ts.URL, pre2).ID
	specs[pre2ID] = pre2
	ids = append(ids, pre2ID)
	genGlob := filepath.Join(dataDir, pre2ID+".ck.g*")
	for deadline := time.Now().Add(60 * time.Second); ; {
		if m, _ := filepath.Glob(genGlob); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never wrote a checkpoint generation", pre2ID)
		}
		time.Sleep(time.Millisecond)
	}
	if resp, b := postJSON(t, ts.URL+"/v1/jobs/"+pre2ID+"/preempt", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("preempt: status %d: %s", resp.StatusCode, b)
	}

	// Every job completes, and every result matches its direct oracle.
	for _, id := range ids {
		v := await(t, ts.URL, id)
		if v.State != service.StateDone {
			t.Fatalf("job %s: state %s (error %q)", id, v.State, v.Error)
		}
		oracle(t, specs[id], result(t, ts.URL, id), id+"/"+specs[id].App)
	}

	// The crashed job migrated: supervised restart(s), >= 2 distinct
	// workers touched.
	cr := result(t, ts.URL, crashID)
	if cr.Restarts < 1 || cr.Supervise == nil || cr.Supervise.CrashRestarts < 1 {
		t.Errorf("crash job: no supervised restart recorded: %+v", cr.Supervise)
	}
	if distinct(cr.Workers) < 2 {
		t.Errorf("crash job stayed on one worker: %v", cr.Workers)
	}
	if cr.Preemptions != 0 {
		t.Errorf("crash job recorded %d preemptions", cr.Preemptions)
	}

	// Both preempted jobs vacated and resumed elsewhere, without
	// charging the supervise budget.
	for _, id := range []string{pre1ID, pre2ID} {
		r := result(t, ts.URL, id)
		if r.Preemptions < 1 || r.Attempts < 2 {
			t.Errorf("job %s: preemptions %d, attempts %d; want >= 1, >= 2", id, r.Preemptions, r.Attempts)
		}
		if distinct(r.Workers) < 2 {
			t.Errorf("preempted job %s stayed on one worker: %v", id, r.Workers)
		}
		if r.Supervise != nil && r.Supervise.Restarts > 0 {
			t.Errorf("job %s: preemption charged the supervise budget: %+v", id, r.Supervise)
		}
	}

	// The events stream replays the lifecycle and terminates.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + crashID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var states []service.State
	for _, line := range strings.Split(strings.TrimSpace(string(evBody)), "\n") {
		var e service.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("events line %q: %v", line, err)
		}
		states = append(states, e.State)
	}
	joined := fmt.Sprint(states)
	for _, want := range []service.State{service.StateQueued, service.StateRunning, service.StateDone} {
		if !strings.Contains(joined, string(want)) {
			t.Errorf("event stream missing state %s: %v", want, states)
		}
	}

	// Listing and tenant filtering.
	var all, acme []service.JobView
	getJSON(t, ts.URL+"/v1/jobs", &all)
	getJSON(t, ts.URL+"/v1/jobs?tenant=acme", &acme)
	if len(all) != len(ids) {
		t.Errorf("list: %d jobs, want %d", len(all), len(ids))
	}
	for _, v := range acme {
		if v.Tenant != "acme" {
			t.Errorf("tenant filter leaked %s/%s", v.ID, v.Tenant)
		}
	}
	if len(acme) == 0 || len(acme) >= len(all) {
		t.Errorf("tenant filter: %d of %d", len(acme), len(all))
	}

	// Metrics expose the whole story.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		fmt.Sprintf(`op2ca_service_jobs_completed_total{state="done"} %d`, len(ids)),
		`op2ca_service_jobs_submitted_total{tenant="acme"}`,
		`op2ca_service_jobs_submitted_total{tenant="zeta"}`,
		`op2ca_service_preemptions_total 2`,
		`op2ca_service_worker_virtual_seconds_total{worker="w00"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "op2ca_service_restarts_total 1") &&
		!strings.Contains(metrics, "op2ca_service_restarts_total 2") {
		t.Errorf("metrics missing restarts in:\n%s", metrics)
	}

	var h service.Health
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Workers != 3 {
		t.Errorf("healthz = %+v", h)
	}
}

// TestAdmissionControlOverHTTP fills the queue and a tenant quota and
// asserts overload is shed with 429 + Retry-After while the in-flight
// jobs still finish.
func TestAdmissionControlOverHTTP(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueCap: 2, TenantCap: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	// A long-enough job occupies the only worker...
	busy := service.JobSpec{Tenant: "acme", App: "mgcfd", MeshNodes: 6000, Ranks: 3, Iters: 10, Machine: "laptop"}
	busyID := submit(t, ts.URL, busy).ID
	// ...so this one queues: tenant hog takes its whole quota (1).
	hogID := submit(t, ts.URL, smallMGCFD("hog")).ID

	// Tenant quota shed (the queue itself still has room).
	resp, body := postJSON(t, ts.URL+"/v1/jobs", smallMGCFD("hog"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant overload: status %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("tenant overload: no Retry-After header")
	}
	if !strings.Contains(string(body), "quota") {
		t.Errorf("tenant overload body: %s", body)
	}

	// A second tenant fills the queue to its cap (2)...
	otherID := submit(t, ts.URL, smallMGCFD("acme")).ID
	// ...so the next submission is shed whole-queue (fresh tenant, only
	// the queue cap applies).
	resp, body = postJSON(t, ts.URL+"/v1/jobs", smallMGCFD("late"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue overload: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("queue overload body: %s", body)
	}

	// The admitted jobs are unaffected: all three finish and validate.
	for _, id := range []string{busyID, hogID, otherID} {
		if v := await(t, ts.URL, id); v.State != service.StateDone {
			t.Fatalf("admitted job %s: state %s (error %q)", id, v.State, v.Error)
		}
	}
	mresp, _ := http.Get(ts.URL + "/metrics")
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`op2ca_service_jobs_rejected_total{reason="queue_full"} 1`,
		`op2ca_service_jobs_rejected_total{reason="tenant_quota"} 1`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCancelAndErrorsOverHTTP covers cancellation of queued and running
// jobs and the HTTP error mapping (400/404/409).
func TestCancelAndErrorsOverHTTP(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueCap: 8, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	running := service.JobSpec{Tenant: "acme", App: "mgcfd", MeshNodes: 6000, Ranks: 3, Iters: 10, Machine: "laptop"}
	runningID := submit(t, ts.URL, running).ID
	queuedID := submit(t, ts.URL, smallMGCFD("acme")).ID

	// Result of an unfinished job: 409.
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+runningID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running: status %d", resp.StatusCode)
	}

	// Cancel the queued job: settles immediately.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queuedID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v service.JobView
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	json.Unmarshal(b, &v)
	if resp.StatusCode != http.StatusAccepted || v.State != service.StateCancelled {
		t.Errorf("cancel queued: status %d, state %s", resp.StatusCode, v.State)
	}

	// Cancel the running job: observed at the next exchange boundary.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+runningID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := await(t, ts.URL, runningID); got.State != service.StateCancelled {
		t.Errorf("cancel running: state %s", got.State)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+runningID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d", resp.StatusCode)
	}

	// Error mapping.
	if resp := getJSON(t, ts.URL+"/v1/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	for _, bad := range []string{
		`{"tenant":"acme","app":"mgcfd","bogus":1}`, // unknown field
		`{"tenant":"acme","app":"nekbone"}`,         // unknown app
		`{"tenant":"acme","app":"mgcfd","faults":"drop=2"}`,
		`not json`,
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/jobs", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
