package faults

import (
	"math"
	"strings"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("drop=0.01,corrupt=0.002,delay=5x@0.01,straggler=rank3:10x,seed=42,maxretries=6")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.01 || p.Corrupt != 0.002 {
		t.Errorf("drop/corrupt = %g/%g", p.Drop, p.Corrupt)
	}
	if p.DelayFactor != 5 || p.DelayProb != 0.01 {
		t.Errorf("delay = %gx@%g", p.DelayFactor, p.DelayProb)
	}
	if p.Stragglers[3] != 10 {
		t.Errorf("straggler = %v", p.Stragglers)
	}
	if p.Seed != 42 || p.MaxRetries != 6 {
		t.Errorf("seed/maxretries = %d/%d", p.Seed, p.MaxRetries)
	}
	if !p.Enabled() {
		t.Error("full spec should be enabled")
	}
}

func TestParseEmptyAndDefaults(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() {
		t.Error("empty spec must inject nothing")
	}
	if p.Seed != 1 {
		t.Errorf("default seed = %d, want 1", p.Seed)
	}
	v := p.Judge(Attempt{Exchange: 7, Msg: 3, Try: 0, From: 1, To: 2})
	if v.Failed() || v.Delay != 1 || v.Slow != 1 {
		t.Errorf("clean plan returned %+v", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"drop=1.5",            // probability out of range
		"drop=-0.1",           // negative probability
		"corrupt=abc",         // not a number
		"delay=5x",            // missing probability
		"delay=0.5x@0.1",      // factor < 1
		"delay=5@0.1",         // missing x suffix
		"straggler=3:10x",     // missing rank prefix
		"straggler=rank3:0x",  // factor < 1
		"straggler=rank-1:2x", // negative rank
		"seed=abc",
		"maxretries=0",
		"maxretries=-3", // negative budget
		"bogus=1",
		"dangling",
		"drop=0.1,drop=0.2",                     // duplicate scalar clause
		"corrupt=0.1,corrupt=0.1",               // duplicate, even with equal values
		"delay=2x@0.1,delay=3x@0.2",             // duplicate delay
		"seed=1,seed=2",                         // duplicate seed
		"maxretries=3,maxretries=4",             // duplicate retry budget
		"straggler=rank1:2x,straggler=rank1:3x", // duplicate straggler rank
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"drop=0.01,corrupt=0.002,delay=5x@0.01,straggler=rank3:10x,seed=42,maxretries=6",
		"drop=0.05,seed=1",
		"straggler=rank0:2x,straggler=rank5:3x,seed=9",
	}
	for _, spec := range specs {
		p := MustParse(spec)
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if p.String() != q.String() {
			t.Errorf("round trip: %q -> %q", p.String(), q.String())
		}
	}
}

// TestJudgeDeterministic: identical attempts always receive identical
// verdicts — the property the simulator's reproducibility rests on.
func TestJudgeDeterministic(t *testing.T) {
	p := MustParse("drop=0.3,corrupt=0.1,delay=4x@0.2,straggler=rank1:3x,seed=7")
	for i := 0; i < 1000; i++ {
		a := Attempt{Exchange: uint64(i % 17), Msg: i % 29, Try: i % 5,
			From: int32(i % 3), To: int32((i + 1) % 3)}
		v1, v2 := p.Judge(a), p.Judge(a)
		if v1 != v2 {
			t.Fatalf("attempt %+v: verdicts differ: %+v vs %+v", a, v1, v2)
		}
	}
}

// TestJudgeRates: observed drop frequency tracks the configured probability
// over many independent attempts.
func TestJudgeRates(t *testing.T) {
	p := MustParse("drop=0.2,seed=3")
	n, drops := 20000, 0
	for i := 0; i < n; i++ {
		if p.Judge(Attempt{Exchange: uint64(i), Msg: 0, Try: 0, From: 0, To: 1}).Drop {
			drops++
		}
	}
	rate := float64(drops) / float64(n)
	if math.Abs(rate-0.2) > 0.02 {
		t.Errorf("observed drop rate %.3f, want ~0.2", rate)
	}
}

// TestJudgeSeedIndependence: different seeds give different schedules;
// different retry numbers of the same message re-roll the dice.
func TestJudgeSeedIndependence(t *testing.T) {
	p1 := MustParse("drop=0.5,seed=1")
	p2 := MustParse("drop=0.5,seed=2")
	same, retryVaries := 0, false
	for i := 0; i < 200; i++ {
		a := Attempt{Exchange: uint64(i), Msg: 1, Try: 0, From: 0, To: 1}
		if p1.Judge(a).Drop == p2.Judge(a).Drop {
			same++
		}
		b := a
		b.Try = 1
		if p1.Judge(a).Drop != p1.Judge(b).Drop {
			retryVaries = true
		}
	}
	if same == 200 {
		t.Error("seeds 1 and 2 produced identical drop schedules")
	}
	if !retryVaries {
		t.Error("retry attempts never re-rolled the drop decision")
	}
}

func TestStragglerAppliesToSenderOnly(t *testing.T) {
	p := MustParse("straggler=rank2:8x,seed=1")
	if v := p.Judge(Attempt{From: 2, To: 0}); v.Slow != 8 {
		t.Errorf("sender 2 slow = %g, want 8", v.Slow)
	}
	if v := p.Judge(Attempt{From: 0, To: 2}); v.Slow != 1 {
		t.Errorf("receiver-side attempt slowed: %g", v.Slow)
	}
}

func TestNilPlan(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Error("nil plan enabled")
	}
	if v := p.Judge(Attempt{}); v.Failed() || v.Delay != 1 || v.Slow != 1 {
		t.Errorf("nil plan verdict %+v", v)
	}
	if p.String() != "" {
		t.Errorf("nil plan String = %q", p.String())
	}
}

func TestParseRejectsMalformedClauses(t *testing.T) {
	if _, err := Parse("drop=0.1,,seed=2"); err != nil {
		t.Errorf("empty clauses should be skipped: %v", err)
	}
	_, err := Parse("drop")
	if err == nil || !strings.Contains(err.Error(), "key=value") {
		t.Errorf("want key=value error, got %v", err)
	}
}

func TestCrashParseAndString(t *testing.T) {
	p, err := Parse("crash=rank2@77,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	cs := p.CrashSchedule()
	if len(cs) != 1 || cs[0].Rank != 2 || cs[0].Exchange != 77 {
		t.Fatalf("CrashSchedule = %+v, want one clause rank 2 exchange 77", cs)
	}
	if p.Enabled() {
		t.Error("a crash-only plan injects no message faults; Enabled must stay false")
	}
	s := p.String()
	if !strings.Contains(s, "crash=rank2@77") {
		t.Errorf("String() = %q, missing crash clause", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("String round trip: %v", err)
	}
	bc := back.CrashSchedule()
	if len(bc) != 1 || bc[0] != cs[0] || back.Seed != p.Seed {
		t.Errorf("round trip %q -> %+v seed %d, want %+v seed %d", s, bc, back.Seed, cs, p.Seed)
	}
}

func TestMultiCrashSchedule(t *testing.T) {
	p, err := Parse("crash=rank0@120,crash=rank2@400,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Crash{{Rank: 0, Exchange: 120}, {Rank: 2, Exchange: 400}}
	got := p.CrashSchedule()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("CrashSchedule = %+v, want %+v", got, want)
	}
	s := p.String()
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("String round trip of %q: %v", s, err)
	}
	bc := back.CrashSchedule()
	if len(bc) != 2 || bc[0] != want[0] || bc[1] != want[1] {
		t.Errorf("round trip %q -> %+v, want %+v", s, bc, want)
	}
	if _, err := Parse("crash=rank0@120,crash=rank1@120"); err == nil {
		t.Error("duplicate crash exchanges accepted; only the first could ever fire")
	}
}

func TestCrashParseErrors(t *testing.T) {
	for _, bad := range []string{"crash=77", "crash=rank1", "crash=rank-1@5", "crash=rankx@5", "crash=rank1@", "crash=rank1@-2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestCrashScheduleNilPlan(t *testing.T) {
	var p *Plan
	if p.CrashSchedule() != nil {
		t.Error("nil plan must report no crash schedule")
	}
}

func TestCrashErrorMessage(t *testing.T) {
	e := &CrashError{Rank: 3, Exchange: 9}
	if msg := e.Error(); !strings.Contains(msg, "3") || !strings.Contains(msg, "9") {
		t.Errorf("CrashError message %q should carry rank and exchange", msg)
	}
}
