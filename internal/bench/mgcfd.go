package bench

import (
	"fmt"

	"op2ca/internal/cluster"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/partition"
)

// gpuRanksFor maps paper Cirrus nodes (4 GPUs each, one rank per GPU) to
// simulated ranks: GPU clusters are small enough to simulate at full rank
// count, capped for host-memory sanity.
func gpuRanksFor(paperNodes int) int {
	r := paperNodes * 4
	if r > 64 {
		r = 64
	}
	if r < 2 {
		r = 2
	}
	return r
}

// mgSnapshot captures the counters the Table 2 columns are computed from.
type mgSnapshot struct {
	loopBytes  int64
	loopCore   int64
	loopHalo   int64
	chainBytes int64
	chainCore  int64
	chainHalo  int64
}

func snapshotMG(b *cluster.Backend) mgSnapshot {
	var s mgSnapshot
	for _, name := range []string{"update", "edge_flux"} {
		if ls := b.Stats().Loops[name]; ls != nil {
			s.loopBytes += ls.Bytes
			s.loopCore += ls.CoreIters
			s.loopHalo += ls.HaloIters
		}
	}
	if cs := b.Stats().Chains["synthetic"]; cs != nil {
		s.chainBytes += cs.Bytes
		s.chainCore += cs.CoreIters
		s.chainHalo += cs.HaloIters
	}
	return s
}

// mgPoint is one measured (mesh, machine, nodes, loop-count) configuration.
type mgPoint struct {
	op2Time, caTime  float64
	op2Comm, caComm  float64 // Σ(2dpm¹) and p*m^r, bytes per rank
	op2Core, op2Halo float64 // per-rank per-iteration iteration counts
	caCore, caHalo   float64
	ranks            int
}

// runMGPoint measures one configuration under both back-ends.
func (c Config) runMGPoint(meshNodes, paperNodes, nchains int, mach *machine.Machine) mgPoint {
	var ranks int
	if mach.GPU != nil {
		ranks = gpuRanksFor(paperNodes)
	} else {
		ranks = c.ranksFor(paperNodes, mach.RanksPerNode)
	}
	m := mesh.RotorForNodes(meshNodes)
	h := mesh.NewHierarchy(m, 3, true)
	assign := partition.KWay(m.NodeAdjacency(), ranks) // the paper uses ParMETIS k-way for MG-CFD

	var pt mgPoint
	pt.ranks = ranks
	for _, caMode := range []bool{false, true} {
		mode := "op2"
		if caMode {
			mode = "ca"
		}
		label := fmt.Sprintf("mgcfd %s mesh=%d paper-nodes=%d loops=%d ranks=%d",
			mode, meshNodes, paperNodes, 2*nchains, ranks)
		app := mgcfd.New(h)
		syn := mgcfd.NewSynthetic(app)
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: ranks,
			Depth: 2, MaxChainLen: 2 * nchains, CA: caMode,
			Machine: mach, Parallel: c.Parallel, Tracer: c.Tracer, Faults: c.Faults,
			AutoTune: c.AutoTune && caMode, Overlap: c.Overlap && caMode,
		}
		var rctx mgResumeCtx
		b, start := c.resume(label, ccfg, &rctx)
		if b == nil {
			var err error
			b, err = cluster.New(ccfg)
			if err != nil {
				panic("bench: " + err.Error())
			}
			c.adopt(b)
			app.Init(b)
			// Warm-up (dirties halos, amortises nothing else); excluded from
			// the measurement like the paper's inspection phase.
			syn.Run(b, nchains, caMode)
			app.Cycle(b)
			rctx = mgCtxOf(b.MaxClock(), snapshotMG(b))
		}
		before := rctx.snapshot()
		t0 := rctx.T0
		for it := start; it < c.Iters; it++ {
			syn.Run(b, nchains, caMode)
			app.Cycle(b)
			c.tick(b, label, it+1, rctx)
		}
		elapsed := (b.MaxClock() - t0) / float64(c.Iters)
		after := snapshotMG(b)
		perIter := float64(c.Iters)
		perRank := perIter * float64(ranks)

		if caMode {
			pt.caTime = elapsed
			cs := b.Stats().Chains["synthetic"]
			pt.caComm = float64(cs.MaxNeighbours) * float64(cs.MaxMsgBytes)
			pt.caCore = float64(after.chainCore-before.chainCore) / perRank
			pt.caHalo = float64(after.chainHalo-before.chainHalo) / perRank
		} else {
			pt.op2Time = elapsed
			// Σ(2dpm¹): measured per-loop maxima; the factor 2 (separate
			// eeh and enh messages) is already in the per-message count,
			// so use the byte total per rank per iteration.
			pt.op2Comm = float64(after.loopBytes-before.loopBytes) / perRank
			pt.op2Core = float64(after.loopCore-before.loopCore) / perRank
			pt.op2Halo = float64(after.loopHalo-before.loopHalo) / perRank
		}
		c.observe(label, b)
	}
	return pt
}

var (
	table2Nodes = []int{4, 16, 64}
	table2Loops = []int{2, 8, 32}
	fig10Nodes  = []int{1, 4, 16, 64}
	fig10Loops  = []int{2, 8, 32}
	fig11Nodes  = []int{1, 2, 4, 8, 16}
)

// Table2 regenerates the paper's Table 2: MG-CFD model components on
// ARCHER2 for the 8M- and 24M-class meshes.
func Table2(c Config) *Table {
	t := &Table{
		Title: "Table 2: MG-CFD on ARCHER2 - model components (per rank, per iteration)",
		Header: []string{"Mesh", "#Nodes", "#Loops", "OP2 comm B", "OP2 S^c", "OP2 S^1",
			"CA comm B", "CA S^c", "CA S^h", "Gain%"},
		Notes: []string{
			fmt.Sprintf("scaled meshes: 8M->%d nodes, 24M->%d nodes; ranks = paper nodes x 128 x %g",
				c.Nodes8M, c.Nodes24M, c.RankScale),
			"OP2 comm = measured per-rank halo bytes (the 2dpm^1 volume); CA comm = p*m^r of the grouped message",
		},
	}
	for _, mesh := range []struct {
		name  string
		nodes int
	}{{"8M", c.Nodes8M}, {"24M", c.Nodes24M}} {
		for _, nodes := range table2Nodes {
			for _, loops := range table2Loops {
				pt := c.runMGPoint(mesh.nodes, nodes, loops/2, machine.ARCHER2())
				t.Rows = append(t.Rows, []string{
					mesh.name, fmt.Sprint(nodes), fmt.Sprint(loops),
					f2(pt.op2Comm), f2(pt.op2Core), f2(pt.op2Halo),
					f2(pt.caComm), f2(pt.caCore), f2(pt.caHalo),
					f2(gain(pt.op2Time, pt.caTime)),
				})
			}
		}
	}
	return t
}

// figMG regenerates Figure 10 (ARCHER2) or Figure 11 (Cirrus): OP2 vs CA
// main-loop runtimes over node counts and loop counts, both meshes.
func figMG(c Config, mach *machine.Machine, nodes, loops []int, title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Mesh", "#Nodes", "#Ranks", "#Loops", "OP2 t(s)", "CA t(s)", "Gain%"},
		Notes: []string{
			"virtual times per main-loop iteration under the machine model; inspection excluded (amortised)",
		},
	}
	for _, mesh := range []struct {
		name string
		n    int
	}{{"8M", c.Nodes8M}, {"24M", c.Nodes24M}} {
		for _, nn := range nodes {
			for _, nl := range loops {
				pt := c.runMGPoint(mesh.n, nn, nl/2, mach)
				t.Rows = append(t.Rows, []string{
					mesh.name, fmt.Sprint(nn), fmt.Sprint(pt.ranks), fmt.Sprint(nl),
					f6(pt.op2Time), f6(pt.caTime), f2(gain(pt.op2Time, pt.caTime)),
				})
			}
		}
	}
	return t
}

// Fig10 regenerates Figure 10: MG-CFD CA performance on ARCHER2.
func Fig10(c Config) *Table {
	return figMG(c, machine.ARCHER2(), fig10Nodes, fig10Loops,
		"Figure 10: MG-CFD synthetic loop-chains on ARCHER2 (8M and 24M class meshes)")
}

// Fig11 regenerates Figure 11: MG-CFD CA performance on the Cirrus GPU
// cluster (4 V100 per node, one rank per GPU).
func Fig11(c Config) *Table {
	return figMG(c, machine.Cirrus(), fig11Nodes, fig10Loops,
		"Figure 11: MG-CFD synthetic loop-chains on Cirrus V100 cluster (8M and 24M class meshes)")
}
