// Package cmdutil is the shared command-line wiring of the op2ca binaries:
// the -trace/-metrics/-faults/-checkpoint/-restore/-supervise/-autotune
// flag set, its validation rules (distributed-backend requirements, the
// supervise/restore conflict), machine and partitioner resolution, the
// iteration-marker checkpoint note convention, observability export, and
// the exit-code conventions. mgcfd, hydra and op2ca-server all build on
// it, so a flag behaves identically everywhere it appears.
package cmdutil

import (
	"flag"
	"fmt"
	"os"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
	"op2ca/internal/supervise"
)

// Exit codes shared by every op2ca command. 0 is success; 1 is the
// catch-all fatal error; 2 is flag.Parse's own usage failure.
const (
	ExitFatal = 1
	// ExitCrash reports an injected crash fault that terminated an
	// unsupervised run; the process prints a -restore / -supervise hint
	// first, so an operator (or the job service) can resume it.
	ExitCrash = 3
	// ExitProfileCheck reports a failed profile self-check (op2ca-bench).
	ExitProfileCheck = 4
)

// Fatal prints err prefixed with the program name and exits with ExitFatal.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(ExitFatal)
}

// MachineByName resolves the -machine flag.
func MachineByName(name string) (*machine.Machine, error) {
	switch name {
	case "archer2":
		return machine.ARCHER2(), nil
	case "cirrus":
		return machine.Cirrus(), nil
	case "laptop":
		return machine.Laptop(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

// Assignment resolves the -partitioner flag over mesh m.
func Assignment(m *mesh.FV3D, partitioner string, ranks int) (partition.Assignment, error) {
	switch partitioner {
	case "kway":
		return partition.KWay(m.NodeAdjacency(), ranks), nil
	case "rib":
		return partition.RIB(m.Coords, 3, ranks), nil
	case "rcb":
		return partition.RCB(m.Coords, 3, ranks), nil
	case "block":
		return partition.Block(m.NNodes, ranks), nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", partitioner)
}

// IterNote renders the checkpoint note marking n completed iterations; it
// is the convention every command writes and ParseIterNote reads back, so
// a snapshot taken by one binary resumes under another.
func IterNote(n int) string { return fmt.Sprintf("iter=%d", n) }

// ParseIterNote decodes an IterNote.
func ParseIterNote(note string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(note, "iter=%d", &n); err != nil {
		return 0, fmt.Errorf("checkpoint note %q is not an iteration marker: %w", note, err)
	}
	return n, nil
}

// RunFlags is the raw shared flag set. Register binds it to the process
// flag set; Resolve validates the combination and produces a Run.
type RunFlags struct {
	Trace      string
	Metrics    string
	ModelCheck bool
	Profile    bool
	AutoTune   bool
	Faults     string
	Checkpoint string
	Restore    string
	Supervise  string
}

// Register declares the shared flags on the default flag set with the
// canonical help text.
func (f *RunFlags) Register() {
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON timeline to this file")
	flag.StringVar(&f.Metrics, "metrics", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
	flag.BoolVar(&f.ModelCheck, "model-check", false, "print Equation (1)/(3) predictions next to measured virtual times")
	flag.BoolVar(&f.Profile, "profile", false,
		"print the critical-path / communication-matrix / imbalance report (forces tracing; the run stays bit-identical)")
	flag.BoolVar(&f.AutoTune, "autotune", false,
		"let the model-driven autotuner pick each chain's execution policy (requires -backend ca); results stay bit-identical to any static configuration")
	flag.StringVar(&f.Faults, "faults", "",
		"deterministic fault-injection spec, e.g. drop=0.01,corrupt=0.002,seed=42 (see internal/faults); results stay bit-identical, virtual times include recovery")
	flag.StringVar(&f.Checkpoint, "checkpoint", "",
		"periodic snapshots, e.g. every=5,path=ck.bin,keep=3: checkpoint the backend after every N iterations, rotating keep=K verified generations (requires -backend op2 or ca)")
	flag.StringVar(&f.Restore, "restore", "",
		"resume from a checkpoint file instead of initialising; completed iterations are skipped (requires -backend op2 or ca)")
	flag.StringVar(&f.Supervise, "supervise", "",
		"self-healing supervised execution, e.g. on or budget=8,backoff=1,watchdog=50: catch injected crashes, exchange failures and no-progress stalls, restore from the newest valid checkpoint generation and resume (requires -backend op2 or ca; incompatible with -restore)")
}

// Run is the resolved shared configuration: parsed specs, the shared
// tracer and checkpoint ring, and the validated flag combination.
type Run struct {
	Prog       string
	Ckpt       checkpoint.Spec
	Ring       *checkpoint.Ring
	Supervise  supervise.Spec
	Plan       *faults.Plan
	Tracer     *obs.Tracer
	Trace      string
	Metrics    string
	ModelCheck bool
	Profile    bool
	AutoTune   bool
	Restore    string
}

// Resolve validates the flag combination against the chosen backend and
// builds the derived objects (fault plan, tracer, checkpoint ring). prog
// prefixes warnings; backendName is the -backend value.
func (f *RunFlags) Resolve(prog, backendName string) (*Run, error) {
	r := &Run{
		Prog: prog, Trace: f.Trace, Metrics: f.Metrics,
		ModelCheck: f.ModelCheck, Profile: f.Profile, AutoTune: f.AutoTune,
		Restore: f.Restore,
	}
	if f.Checkpoint != "" {
		s, err := checkpoint.ParseSpec(f.Checkpoint)
		if err != nil {
			return nil, err
		}
		r.Ckpt = s
	}
	sv, err := supervise.ParseSpec(f.Supervise)
	if err != nil {
		return nil, err
	}
	r.Supervise = sv
	if (f.Checkpoint != "" || f.Restore != "" || sv.Enabled) && backendName == "seq" {
		return nil, fmt.Errorf("-checkpoint/-restore/-supervise need a distributed backend (op2 or ca)")
	}
	if sv.Enabled && f.Restore != "" {
		return nil, fmt.Errorf("-supervise and -restore are incompatible: the supervisor recovers from the checkpoint ring itself")
	}
	if f.Trace != "" || f.Profile {
		r.Tracer = obs.New()
	}
	if f.Faults != "" {
		p, err := faults.Parse(f.Faults)
		if err != nil {
			return nil, err
		}
		r.Plan = p
	}
	if f.AutoTune && backendName != "ca" {
		fmt.Fprintf(os.Stderr, "%s: -autotune requires -backend ca; ignored\n", prog)
		r.AutoTune = false
	}
	if r.Ckpt.Enabled() {
		ring, err := checkpoint.NewRing(r.Ckpt)
		if err != nil {
			return nil, err
		}
		r.Ring = ring
	}
	return r, nil
}

// CrashExit reports an injected crash that killed an unsupervised run,
// prints the resume hint when a checkpoint generation survives, and exits
// with ExitCrash.
func (r *Run) CrashExit(crash *faults.CrashError) {
	fmt.Fprintf(os.Stderr, "%s: injected crash of rank %d at exchange %d\n", r.Prog, crash.Rank, crash.Exchange)
	if r.Ring != nil {
		if gens, err := r.Ring.Generations(); err == nil && len(gens) > 0 {
			fmt.Fprintf(os.Stderr, "%s: resume with -restore %s (drop the crash= clause), or rerun with -supervise on\n",
				r.Prog, gens[0].Path)
		}
	}
	os.Exit(ExitCrash)
}

// PrintRunSummary prints the post-run fault and supervision recovery lines
// both demo commands share (nothing when neither applies).
func (r *Run) PrintRunSummary(cb *cluster.Backend) {
	if r.Plan != nil {
		fs := cb.Stats().Faults
		fmt.Printf("faults: %s -> drops %d corrupts %d delays %d retries %d giveups %d fallback_ungrouped %d fallback_perloop %d\n",
			r.Plan.String(), fs.Drops, fs.Corrupts, fs.Delays, fs.Retries, fs.Giveups,
			fs.FallbackUngrouped, fs.FallbackPerLoop)
	}
	if sv := cb.Stats().Supervise; sv.Enabled && sv.Restarts > 0 {
		fmt.Printf("supervise: recovered from %d failures (crash %d exchange %d watchdog %d), %d generations quarantined\n",
			sv.Restarts, sv.CrashRestarts, sv.ExchangeRestarts, sv.WatchdogTrips, sv.Quarantined)
	}
}

// WriteObservability exports the trace and metrics files requested on the
// command line.
func (r *Run) WriteObservability(cb *cluster.Backend) error {
	if r.Trace != "" {
		if err := r.Tracer.WriteChromeTraceFile(r.Trace); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s (open in Perfetto or chrome://tracing)\n", r.Tracer.Len(), r.Trace)
	}
	if r.Metrics != "" {
		w := os.Stdout
		if r.Metrics != "-" {
			f, err := os.Create(r.Metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		mw := obs.NewMetricsWriter(w)
		cb.Stats().WriteMetrics(mw)
		if r.Tracer != nil {
			r.Tracer.WriteSpanMetrics(mw)
		}
		return mw.Flush()
	}
	return nil
}
