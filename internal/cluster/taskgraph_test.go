package cluster

import (
	"math"
	"testing"

	"op2ca/internal/chaincfg"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// TestOverlapReducesMakespanCommBound is the executor's raison d'être on a
// communication-bound fixture: the overlapped run's makespan must land
// strictly below the bulk-synchronous run's (each multi-message exchange
// hides (k-1) latencies and rendezvous handshakes), while results remain
// bit-identical — the pipeline moves virtual time only.
func TestOverlapReducesMakespanCommBound(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	bulkRes, bulkB := faultyResult(t, m, 2, nil, "ca")
	ovRes, ovB := faultyResult(t, m, 2, nil, "ca-overlap")
	compareExact(t, "overlap-vs-bulk", ovRes, bulkRes)
	if ovB.MaxClock() >= bulkB.MaxClock() {
		t.Errorf("overlapped makespan %v not strictly below bulk %v",
			ovB.MaxClock(), bulkB.MaxClock())
	}
	// Per-rank clocks must never regress: the overlapped delivery is a
	// pointwise lower bound on the bulk arrivals.
	bc, oc := bulkB.Clocks(), ovB.Clocks()
	for r := range bc {
		if oc[r] > bc[r] {
			t.Errorf("rank %d: overlapped clock %v above bulk %v", r, oc[r], bc[r])
		}
	}
}

// TestOverlapDeterministic: two identical overlapped runs agree on every
// clock and counter — the pipeline arithmetic is as replayable as bulk's.
func TestOverlapDeterministic(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	_, b1 := faultyResult(t, m, 2, nil, "ca-overlap")
	_, b2 := faultyResult(t, m, 2, nil, "ca-overlap")
	c1, c2 := b1.Clocks(), b2.Clocks()
	for r := range c1 {
		if c1[r] != c2[r] {
			t.Fatalf("rank %d clock differs between identical overlapped runs: %v vs %v", r, c1[r], c2[r])
		}
	}
	if s1, s2 := b1.Stats().String(), b2.Stats().String(); s1 != s2 {
		t.Errorf("stats differ between identical overlapped runs:\n%s\nvs\n%s", s1, s2)
	}
}

// TestOverlapProfile: the critical-path self-check must keep tiling the
// makespan through the task-graph executor — hidden in-flight time is
// charged to no wait cause, it simply never appears on the path — and the
// analysis must report a positive WaitHidden for the chain (the quantity
// the executor exists to grow).
func TestOverlapProfile(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	run := func(overlap bool) *Backend {
		a := newMiniApp(m)
		a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
		b, err := New(Config{
			Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
			Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
			Overlap: overlap, Tracer: obs.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		a.run(b, 2, true)
		return b
	}
	ovB := run(true)
	checkPathTilesMakespan(t, "overlap", ovB)
	var ovHidden, bulkHidden float64
	for _, cc := range ovB.Profile().Comm {
		ovHidden += cc.WaitHidden
	}
	if ovHidden <= 0 {
		t.Error("overlapped run hides no in-flight time")
	}
	bulkB := run(false)
	checkPathTilesMakespan(t, "bulk", bulkB)
	for _, cc := range bulkB.Profile().Comm {
		bulkHidden += cc.WaitHidden
	}
	if ovHidden <= bulkHidden {
		t.Errorf("overlapped hidden time %v not above bulk %v", ovHidden, bulkHidden)
	}
}

// TestOverlapChaincfgToken: the per-chain "overlap" token is equivalent to
// the backend-wide Overlap flag for that chain — same clocks to the bit —
// and a config without the token stays on bulk delivery.
func TestOverlapChaincfgToken(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	run := func(cc *chaincfg.Config, overlap bool) *Backend {
		a := newMiniApp(m)
		a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
		b, err := New(Config{
			Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
			Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
			Chains: cc, Overlap: overlap,
		})
		if err != nil {
			t.Fatal(err)
		}
		a.run(b, 2, true)
		return b
	}
	tok, err := chaincfg.ParseString("chain synth overlap\n")
	if err != nil {
		t.Fatal(err)
	}
	byToken := run(tok, false)
	byFlag := run(nil, true)
	plain := run(nil, false)
	tc, fc := byToken.Clocks(), byFlag.Clocks()
	for r := range tc {
		if tc[r] != fc[r] {
			t.Errorf("rank %d: token clock %v != flag clock %v", r, tc[r], fc[r])
		}
	}
	if byToken.MaxClock() >= plain.MaxClock() {
		t.Errorf("token run %v not below bulk run %v", byToken.MaxClock(), plain.MaxClock())
	}
}

// TestOverlapModelPrediction: the chain stats' model prediction must use
// the overlapped communication term when the executor overlaps — the
// prediction error against the measured chain time stays small in both
// modes, keeping the built-in model-validation experiment honest.
func TestOverlapModelPrediction(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	for _, mode := range []string{"ca", "ca-overlap"} {
		_, b := faultyResult(t, m, 2, nil, mode)
		cs := b.Stats().Chains["synth"]
		if cs == nil || cs.CAExecutions == 0 {
			t.Fatalf("%s: chain synth did not run CA: %+v", mode, cs)
		}
		if cs.Predicted <= 0 {
			t.Fatalf("%s: no model prediction accumulated", mode)
		}
		errPct := math.Abs(cs.Predicted-cs.Time) / cs.Time * 100
		if errPct > 35 {
			t.Errorf("%s: model prediction off by %.1f%% (predicted %g, measured %g)",
				mode, errPct, cs.Predicted, cs.Time)
		}
	}
}
