// Airfoil: the classic OP2 demonstration application (2-D cell-centred
// finite-volume Euler solver with Scree-style update), written against the
// op2ca DSL: sets nodes/edges/cells, maps edge->node, edge->cell and
// cell->node, a save/adt/res/update loop structure with a global RMS
// reduction.
//
// The example also demonstrates two properties of the CA back-end on
// applications without the paper's increment-then-read chain pattern:
//
//   - a chain whose dependencies cannot be satisfied by redundant
//     computation (adt_calc writes adt directly, res_calc reads it through
//     edge->cell) automatically falls back to per-loop execution, and
//
//   - global reductions (the RMS monitor) work identically on all
//     back-ends.
//
//     go run ./examples/airfoil
package main

import (
	"fmt"
	"math"
	"os"

	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

const (
	gam   = 1.4
	gm1   = 0.4
	cflen = 0.9
	eps   = 0.05
)

// airfoil holds the program and the data handles.
type airfoil struct {
	p                    *core.Program
	nodes, edges, cells  *core.Set
	e2n, e2c, c2n        *core.Map
	x, q, qold, adt, res *core.Dat
}

var (
	kSave = &core.Kernel{Name: "save_soln", Flops: 0, MemBytes: 64,
		Fn: func(a [][]float64) { copy(a[1], a[0]) }}

	kAdt = &core.Kernel{Name: "adt_calc", Flops: 40, MemBytes: 200,
		Fn: func(a [][]float64) {
			x1, x2, x3, x4, q, adt := a[0], a[1], a[2], a[3], a[4], a[5]
			ri := 1 / q[0]
			u, v := q[1]*ri, q[2]*ri
			c2 := gam * gm1 * (q[3]*ri - 0.5*(u*u+v*v))
			if c2 < 1e-12 {
				c2 = 1e-12
			}
			c := math.Sqrt(c2)
			dx, dy := x2[0]-x1[0], x2[1]-x1[1]
			adt[0] = math.Abs(u*dy-v*dx) + c*math.Sqrt(dx*dx+dy*dy)
			dx, dy = x3[0]-x2[0], x3[1]-x2[1]
			adt[0] += math.Abs(u*dy-v*dx) + c*math.Sqrt(dx*dx+dy*dy)
			dx, dy = x4[0]-x3[0], x4[1]-x3[1]
			adt[0] += math.Abs(u*dy-v*dx) + c*math.Sqrt(dx*dx+dy*dy)
			dx, dy = x1[0]-x4[0], x1[1]-x4[1]
			adt[0] += math.Abs(u*dy-v*dx) + c*math.Sqrt(dx*dx+dy*dy)
			adt[0] /= cflen
		}}

	kRes = &core.Kernel{Name: "res_calc", Flops: 80, MemBytes: 320,
		Fn: func(a [][]float64) {
			x1, x2 := a[0], a[1]
			q1, q2 := a[2], a[3]
			adt1, adt2 := a[4], a[5]
			res1, res2 := a[6], a[7]
			dx, dy := x1[0]-x2[0], x1[1]-x2[1]
			ri := 1 / q1[0]
			p1 := gm1 * (q1[3] - 0.5*ri*(q1[1]*q1[1]+q1[2]*q1[2]))
			vol1 := ri * (q1[1]*dy - q1[2]*dx)
			ri = 1 / q2[0]
			p2 := gm1 * (q2[3] - 0.5*ri*(q2[1]*q2[1]+q2[2]*q2[2]))
			vol2 := ri * (q2[1]*dy - q2[2]*dx)
			mu := 0.5 * (adt1[0] + adt2[0]) * eps
			var f float64
			f = 0.5*(vol1*q1[0]+vol2*q2[0]) + mu*(q1[0]-q2[0])
			res1[0] += f
			res2[0] -= f
			f = 0.5*(vol1*q1[1]+p1*dy+vol2*q2[1]+p2*dy) + mu*(q1[1]-q2[1])
			res1[1] += f
			res2[1] -= f
			f = 0.5*(vol1*q1[2]-p1*dx+vol2*q2[2]-p2*dx) + mu*(q1[2]-q2[2])
			res1[2] += f
			res2[2] -= f
			f = 0.5*(vol1*(q1[3]+p1)+vol2*(q2[3]+p2)) + mu*(q1[3]-q2[3])
			res1[3] += f
			res2[3] -= f
		}}

	kUpdate = &core.Kernel{Name: "update", Flops: 20, MemBytes: 200,
		Fn: func(a [][]float64) {
			qold, q, res, adt, rms := a[0], a[1], a[2], a[3], a[4]
			// Under-relaxed explicit update (a single stage of the real
			// airfoil's two-stage scheme, damped for the crude mesh here).
			adti := 0.05 / adt[0]
			for n := 0; n < 4; n++ {
				del := adti * res[n]
				q[n] = qold[n] - del
				res[n] = 0
				rms[0] += del * del
			}
		}}
)

func newAirfoil(m *mesh.Quad2D) *airfoil {
	a := &airfoil{p: core.NewProgram()}
	a.nodes = a.p.DeclSet(m.NNodes, "nodes")
	a.edges = a.p.DeclSet(m.NEdges, "edges")
	a.cells = a.p.DeclSet(m.NCells, "cells")
	a.e2n = a.p.DeclMap(a.edges, a.nodes, 2, m.EdgeNodes, "e2n")
	a.e2c = a.p.DeclMap(a.edges, a.cells, 2, m.EdgeCells, "e2c")
	a.c2n = a.p.DeclMap(a.cells, a.nodes, 4, m.CellNodes, "c2n")
	a.x = a.p.DeclDat(a.nodes, 2, m.Coords, "x")
	a.q = a.p.DeclDat(a.cells, 4, nil, "q")
	a.qold = a.p.DeclDat(a.cells, 4, nil, "qold")
	a.adt = a.p.DeclDat(a.cells, 1, nil, "adt")
	a.res = a.p.DeclDat(a.cells, 4, nil, "res")
	// Freestream initial condition with a small perturbation.
	for c := 0; c < a.cells.Size; c++ {
		a.q.Data[c*4+0] = 1
		a.q.Data[c*4+1] = 0.5 + 0.01*float64(c%13)
		a.q.Data[c*4+2] = 0
		a.q.Data[c*4+3] = 2.5
	}
	return a
}

// step runs one time iteration and returns the RMS residual.
func (a *airfoil) step(b core.Backend) float64 {
	b.ParLoop(core.NewLoop(kSave, a.cells,
		core.ArgDatDirect(a.q, core.Read), core.ArgDatDirect(a.qold, core.Write)))
	// adt_calc + res_calc demarcated as a chain: the CA inspector rejects
	// it (adt is written directly but read through e2c) and the back-end
	// falls back to per-loop execution automatically.
	b.ChainBegin("adt_res")
	b.ParLoop(core.NewLoop(kAdt, a.cells,
		core.ArgDat(a.x, 0, a.c2n, core.Read), core.ArgDat(a.x, 1, a.c2n, core.Read),
		core.ArgDat(a.x, 2, a.c2n, core.Read), core.ArgDat(a.x, 3, a.c2n, core.Read),
		core.ArgDatDirect(a.q, core.Read), core.ArgDatDirect(a.adt, core.Write)))
	b.ParLoop(core.NewLoop(kRes, a.edges,
		core.ArgDat(a.x, 0, a.e2n, core.Read), core.ArgDat(a.x, 1, a.e2n, core.Read),
		core.ArgDat(a.q, 0, a.e2c, core.Read), core.ArgDat(a.q, 1, a.e2c, core.Read),
		core.ArgDat(a.adt, 0, a.e2c, core.Read), core.ArgDat(a.adt, 1, a.e2c, core.Read),
		core.ArgDat(a.res, 0, a.e2c, core.Inc), core.ArgDat(a.res, 1, a.e2c, core.Inc)))
	b.ChainEnd()
	rms := []float64{0}
	b.ParLoop(core.NewLoop(kUpdate, a.cells,
		core.ArgDatDirect(a.qold, core.Read), core.ArgDatDirect(a.q, core.Write),
		core.ArgDatDirect(a.res, core.ReadWrite), core.ArgDatDirect(a.adt, core.Read),
		core.ArgGbl(rms, core.Inc)))
	return math.Sqrt(rms[0] / float64(a.cells.Size))
}

func main() {
	const iters = 20
	m := mesh.NewQuad2D(60, 40)
	fmt.Printf("airfoil: %d cells, %d edges, %d nodes\n", m.NCells, m.NEdges, m.NNodes)

	ref := newAirfoil(m)
	seq := core.NewSeq()
	var rmsSeq float64
	for i := 0; i < iters; i++ {
		rmsSeq = ref.step(seq)
	}

	a := newAirfoil(m)
	b, err := cluster.New(cluster.Config{
		Prog: a.p, Primary: a.nodes,
		Assign: partition.RCB(m.Coords, 2, 6), NParts: 6,
		Depth: 2, MaxChainLen: 2, CA: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rmsDist float64
	for i := 0; i < iters; i++ {
		rmsDist = a.step(b)
		if (i+1)%5 == 0 {
			fmt.Printf("iteration %3d: rms %.10e\n", i+1, rmsDist)
		}
	}

	if rel := math.Abs(rmsDist-rmsSeq) / rmsSeq; rel > 1e-9 {
		fmt.Printf("MISMATCH: distributed rms %.12e vs sequential %.12e\n", rmsDist, rmsSeq)
		os.Exit(1)
	}
	cs := b.Stats().Chains["adt_res"]
	fmt.Printf("chain adt_res: %d executions, %d with CA (inspector falls back: adt is "+
		"written directly but read indirectly)\n", cs.Executions, cs.CAExecutions)
	fmt.Printf("distributed rms matches sequential: %.10e\n", rmsDist)
}
