// Package mesh generates synthetic unstructured meshes for the
// communication-avoiding OP2 reproduction.
//
// The paper evaluates on NASA Rotor 37 meshes (8M and 24M nodes), which are
// not redistributable. This package substitutes annular-sector curvilinear
// meshes of the same topology class: node-centred finite-volume duals of
// structured hex grids wrapped around an axis, with hub/casing/inflow/
// outflow boundary patches and periodic matching faces in the
// circumferential direction. Communication-avoiding behaviour depends on
// partition surface-to-volume ratios, neighbour counts and map arities, all
// of which the synthetic meshes reproduce; absolute element counts are
// scaled by the caller.
//
// Generators:
//   - Quad2D: the small node/edge/cell quadrilateral mesh of the paper's
//     Figure 1, for examples and unit tests.
//   - Box: a rectilinear 3-D finite-volume mesh (all six faces are solid
//     boundaries).
//   - Rotor: the rotor-like annular sector with periodic faces, used by the
//     MG-CFD and Hydra-proxy applications.
//   - NewHierarchy: a multigrid hierarchy of FV3D meshes with fine-to-coarse
//     node maps, used by MG-CFD.
package mesh
