package core

import "fmt"

// Program collects the declarations of an OP2 application: the sets, maps
// and dats that describe the unstructured mesh and the data defined on it.
// It is the global (unpartitioned) view; distributed back-ends derive
// per-rank local views from it.
type Program struct {
	Sets []*Set
	Maps []*Map
	Dats []*Dat

	setByName map[string]*Set
	mapByName map[string]*Map
	datByName map[string]*Dat
}

// NewProgram returns an empty Program ready for declarations.
func NewProgram() *Program {
	return &Program{
		setByName: make(map[string]*Set),
		mapByName: make(map[string]*Map),
		datByName: make(map[string]*Dat),
	}
}

// DeclSet declares a set of size mesh elements (op_decl_set).
// It panics if the name is already declared or size is negative.
func (p *Program) DeclSet(size int, name string) *Set {
	if size < 0 {
		panic(fmt.Sprintf("core: set %q declared with negative size %d", name, size))
	}
	if _, dup := p.setByName[name]; dup {
		panic(fmt.Sprintf("core: duplicate set name %q", name))
	}
	s := &Set{ID: len(p.Sets), Name: name, Size: size}
	p.Sets = append(p.Sets, s)
	p.setByName[name] = s
	return s
}

// DeclMap declares a connectivity map from each element of `from` to `arity`
// elements of `to` (op_decl_map). values holds from.Size*arity indices into
// `to` and is retained, not copied. It panics on malformed input.
func (p *Program) DeclMap(from, to *Set, arity int, values []int32, name string) *Map {
	if from == nil || to == nil {
		panic(fmt.Sprintf("core: map %q declared with nil set", name))
	}
	if arity <= 0 {
		panic(fmt.Sprintf("core: map %q declared with non-positive arity %d", name, arity))
	}
	if len(values) != from.Size*arity {
		panic(fmt.Sprintf("core: map %q has %d values, want %d (%d elements x arity %d)",
			name, len(values), from.Size*arity, from.Size, arity))
	}
	for i, v := range values {
		if v < 0 || int(v) >= to.Size {
			panic(fmt.Sprintf("core: map %q entry %d = %d out of range [0,%d)", name, i, v, to.Size))
		}
	}
	if _, dup := p.mapByName[name]; dup {
		panic(fmt.Sprintf("core: duplicate map name %q", name))
	}
	m := &Map{ID: len(p.Maps), Name: name, From: from, To: to, Arity: arity, Values: values}
	p.Maps = append(p.Maps, m)
	p.mapByName[name] = m
	return m
}

// DeclDat declares data of dim float64 values per element of set
// (op_decl_dat). data holds set.Size*dim values and is retained, not copied;
// pass nil to allocate zeroed storage. It panics on malformed input.
func (p *Program) DeclDat(set *Set, dim int, data []float64, name string) *Dat {
	if set == nil {
		panic(fmt.Sprintf("core: dat %q declared with nil set", name))
	}
	if dim <= 0 {
		panic(fmt.Sprintf("core: dat %q declared with non-positive dim %d", name, dim))
	}
	if data == nil {
		data = make([]float64, set.Size*dim)
	}
	if len(data) != set.Size*dim {
		panic(fmt.Sprintf("core: dat %q has %d values, want %d (%d elements x dim %d)",
			name, len(data), set.Size*dim, set.Size, dim))
	}
	if _, dup := p.datByName[name]; dup {
		panic(fmt.Sprintf("core: duplicate dat name %q", name))
	}
	d := &Dat{ID: len(p.Dats), Name: name, Set: set, Dim: dim, Data: data}
	p.Dats = append(p.Dats, d)
	p.datByName[name] = d
	return d
}

// SetByName returns the set declared under name, or nil.
func (p *Program) SetByName(name string) *Set { return p.setByName[name] }

// MapByName returns the map declared under name, or nil.
func (p *Program) MapByName(name string) *Map { return p.mapByName[name] }

// DatByName returns the dat declared under name, or nil.
func (p *Program) DatByName(name string) *Dat { return p.datByName[name] }

// Set is a collection of mesh elements of one kind (nodes, edges, cells...),
// the analogue of op_set. Elements are identified by index in [0, Size).
type Set struct {
	ID   int
	Name string
	Size int
}

func (s *Set) String() string { return fmt.Sprintf("set(%s,%d)", s.Name, s.Size) }

// Map is explicit connectivity from one set to another, the analogue of
// op_map. Element e of From maps to Values[e*Arity : (e+1)*Arity] in To.
type Map struct {
	ID     int
	Name   string
	From   *Set
	To     *Set
	Arity  int
	Values []int32
}

func (m *Map) String() string {
	return fmt.Sprintf("map(%s:%s->%s^%d)", m.Name, m.From.Name, m.To.Name, m.Arity)
}

// Targets returns the map row for element e of the From set.
func (m *Map) Targets(e int) []int32 { return m.Values[e*m.Arity : (e+1)*m.Arity] }

// Dat is data defined on a set, Dim float64 values per element, the analogue
// of op_dat.
type Dat struct {
	ID   int
	Name string
	Set  *Set
	Dim  int
	Data []float64
}

func (d *Dat) String() string { return fmt.Sprintf("dat(%s on %s dim %d)", d.Name, d.Set.Name, d.Dim) }

// Elem returns the data slice for element e.
func (d *Dat) Elem(e int) []float64 { return d.Data[e*d.Dim : (e+1)*d.Dim] }

// ElemSize returns the size in bytes of one element of the dat, the
// delta term of the paper's Equation (4).
func (d *Dat) ElemSize() int { return d.Dim * 8 }
