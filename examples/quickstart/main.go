// Quickstart: the paper's Figures 1-3 end to end.
//
// Builds the small quadrilateral mesh of Figure 1 (nodes, edges, cells),
// declares the update/edge_flux two-loop chain of Figures 2-3 through the
// OP2-style API, and executes it three ways: sequentially, distributed with
// per-loop halo exchanges (standard OP2, Algorithm 1), and distributed with
// the communication-avoiding back-end (Algorithm 2). It prints the message
// counters of both distributed runs and verifies all three agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// update and edgeFlux are the elemental kernels of Figure 3.
var update = &core.Kernel{Name: "update", Flops: 8, MemBytes: 64,
	Fn: func(a [][]float64) {
		res1, res2, pres1, pres2 := a[0], a[1], a[2], a[3]
		res1[0] += pres1[0] - pres1[1]
		res1[1] += pres2[0] - pres2[1]
		res2[0] += pres2[1] - pres2[0]
		res2[1] += pres1[1] - pres1[0]
	}}

var edgeFlux = &core.Kernel{Name: "edge_flux", Flops: 16, MemBytes: 144,
	Fn: func(a [][]float64) {
		flux1, flux2, res1, res2, cw1, cw2 := a[0], a[1], a[2], a[3], a[4], a[5]
		flux1[0] += res1[0]*cw1[0] - res1[1]*cw1[1]
		flux1[1] += res2[1]*cw1[2] - res2[0]*cw1[3]
		flux2[0] += res2[1]*cw2[2] - res1[1]*cw2[3]
		flux2[1] += res1[0]*cw2[0] - res1[1]*cw2[1]
	}}

// program declares the Figure 3 sets, maps and dats over the mesh.
func program(m *mesh.Quad2D) (*core.Program, func(b core.Backend, tmax int), *core.Dat) {
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	cells := p.DeclSet(m.NCells, "cells")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	e2c := p.DeclMap(edges, cells, 2, m.EdgeCells, "e2c")
	dres := p.DeclDat(nodes, 2, nil, "res")
	dpres := p.DeclDat(nodes, 2, nil, "pres")
	dcw := p.DeclDat(cells, 4, nil, "cw")
	dflux := p.DeclDat(nodes, 2, nil, "flux")
	for i := range dpres.Data {
		dpres.Data[i] = float64(i%7) - 3
	}
	for i := range dcw.Data {
		dcw.Data[i] = 0.25 * float64(i%5)
	}
	run := func(b core.Backend, tmax int) {
		for t := 0; t < tmax; t++ {
			b.ChainBegin("fig3")
			b.ParLoop(core.NewLoop(update, edges,
				core.ArgDat(dres, 0, e2n, core.Inc), core.ArgDat(dres, 1, e2n, core.Inc),
				core.ArgDat(dpres, 0, e2n, core.Read), core.ArgDat(dpres, 1, e2n, core.Read)))
			b.ParLoop(core.NewLoop(edgeFlux, edges,
				core.ArgDat(dflux, 0, e2n, core.Inc), core.ArgDat(dflux, 1, e2n, core.Inc),
				core.ArgDat(dres, 0, e2n, core.Read), core.ArgDat(dres, 1, e2n, core.Read),
				core.ArgDat(dcw, 0, e2c, core.Read), core.ArgDat(dcw, 1, e2c, core.Read)))
			b.ChainEnd()
		}
	}
	return p, run, dflux
}

func main() {
	const tmax = 4
	m := mesh.NewQuad2D(24, 18)
	fmt.Printf("mesh: %d nodes, %d edges, %d cells (Figure 1 topology)\n",
		m.NNodes, m.NEdges, m.NCells)

	// Sequential reference.
	pSeq, runSeq, fluxSeq := program(m)
	runSeq(core.NewSeq(), tmax)
	_ = pSeq

	// Distributed runs, 4 ranks.
	results := map[string][]float64{}
	for _, caMode := range []bool{false, true} {
		p, run, flux := program(m)
		nodes := p.SetByName("nodes")
		b, err := cluster.New(cluster.Config{
			Prog: p, Primary: nodes,
			Assign: partition.KWay(quadAdjacency(m), 4), NParts: 4,
			Depth: 2, MaxChainLen: 2, CA: caMode,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(b, tmax)
		results[b.Name()] = b.GatherDat(flux)
		msgs, bytes := int64(0), int64(0)
		for _, ls := range b.Stats().Loops {
			msgs += ls.Msgs
			bytes += ls.Bytes
		}
		for _, cs := range b.Stats().Chains {
			msgs += cs.Msgs
			bytes += cs.Bytes
		}
		fmt.Printf("%-12s: %3d messages, %6d bytes, virtual time %.6fs\n",
			b.Name(), msgs, bytes, b.MaxClock())
	}

	for name, got := range results {
		for i := range fluxSeq.Data {
			if got[i] != fluxSeq.Data[i] {
				fmt.Printf("MISMATCH: %s flux[%d] = %g, want %g\n", name, i, got[i], fluxSeq.Data[i])
				os.Exit(1)
			}
		}
	}
	fmt.Println("all back-ends agree with the sequential reference, bit for bit")
}

// quadAdjacency builds the node adjacency of the quad mesh for partitioning.
func quadAdjacency(m *mesh.Quad2D) [][]int32 {
	adj := make([][]int32, m.NNodes)
	for e := 0; e < m.NEdges; e++ {
		a, b := m.EdgeNodes[2*e], m.EdgeNodes[2*e+1]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}
