// Package partition assigns mesh elements to ranks for distributed
// execution. It provides the two partitioner families used in the paper's
// evaluation — a k-way graph partitioner in the spirit of ParMETIS k-way
// (greedy graph growing plus Fiduccia–Mattheyses-style boundary refinement),
// used for MG-CFD, and recursive inertial bisection on element coordinates,
// Hydra's default — along with simpler block and random partitioners and
// partition-quality metrics.
package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Assignment maps each element of the partitioned (primary) set to a rank.
type Assignment []int32

// NumParts returns the number of parts (max rank + 1, or 0 when empty).
func (a Assignment) NumParts() int {
	n := int32(-1)
	for _, p := range a {
		if p > n {
			n = p
		}
	}
	return int(n + 1)
}

// PartSizes returns the element count of each of nparts parts.
func (a Assignment) PartSizes(nparts int) []int {
	sizes := make([]int, nparts)
	for _, p := range a {
		sizes[p]++
	}
	return sizes
}

// Block assigns contiguous index ranges of nearly equal size to each rank.
func Block(n, nparts int) Assignment {
	checkArgs(n, nparts)
	a := make(Assignment, n)
	for i := range a {
		a[i] = int32(i * nparts / n)
	}
	return a
}

// Random assigns elements to ranks pseudo-randomly (balanced in
// expectation), deterministically from seed. It exists to stress halo
// construction with worst-case fragmentation, not for performance runs.
func Random(n, nparts int, seed int64) Assignment {
	checkArgs(n, nparts)
	rng := rand.New(rand.NewSource(seed))
	a := make(Assignment, n)
	for i := range a {
		a[i] = int32(rng.Intn(nparts))
	}
	return a
}

func checkArgs(n, nparts int) {
	if n <= 0 {
		panic(fmt.Sprintf("partition: no elements to partition (n=%d)", n))
	}
	if nparts <= 0 || nparts > n {
		panic(fmt.Sprintf("partition: invalid part count %d for %d elements", nparts, n))
	}
}

// KWay partitions the graph given by the symmetric adjacency lists into
// nparts balanced parts, minimising edge cut. Large graphs go through the
// multilevel pipeline (heavy-edge-matching coarsening, coarse partitioning,
// projected FM refinement — the METIS recipe); small graphs are partitioned
// directly by greedy growing.
func KWay(adj [][]int32, nparts int) Assignment {
	checkArgs(len(adj), nparts)
	if len(adj) > maxIntP(256, 16*nparts) {
		return multilevelKWay(adj, nparts)
	}
	return greedyKWay(adj, nparts)
}

// greedyKWay is the direct partitioner: multi-seed greedy graph growing
// followed by refinement passes.
func greedyKWay(adj [][]int32, nparts int) Assignment {
	n := len(adj)
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	target := (n + nparts - 1) / nparts

	seeds := spreadSeeds(adj, nparts)
	sizes := make([]int, nparts)
	frontiers := make([][]int32, nparts)
	for p, s := range seeds {
		a[s] = int32(p)
		sizes[p] = 1
		frontiers[p] = append(frontiers[p], s)
	}
	// Round-robin frontier growth: each part claims one layer step at a
	// time until it reaches its target size or its frontier empties.
	active := nparts
	for active > 0 {
		active = 0
		for p := 0; p < nparts; p++ {
			if sizes[p] >= target || len(frontiers[p]) == 0 {
				continue
			}
			var next []int32
			for _, v := range frontiers[p] {
				for _, w := range adj[v] {
					if a[w] == -1 && sizes[p] < target {
						a[w] = int32(p)
						sizes[p]++
						next = append(next, w)
					}
				}
				if sizes[p] >= target {
					break
				}
			}
			frontiers[p] = next
			if sizes[p] < target && len(next) > 0 {
				active++
			}
		}
	}
	// Unclaimed vertices (disconnected or squeezed out): assign each to
	// the smallest part among its neighbours' parts, else globally
	// smallest.
	for v := range a {
		if a[v] != -1 {
			continue
		}
		best := -1
		for _, w := range adj[v] {
			if a[w] >= 0 && (best == -1 || sizes[a[w]] < sizes[best]) {
				best = int(a[w])
			}
		}
		if best == -1 {
			best = 0
			for p := 1; p < nparts; p++ {
				if sizes[p] < sizes[best] {
					best = p
				}
			}
		}
		a[v] = int32(best)
		sizes[best]++
	}
	refine(adj, a, sizes, target, 4)
	return a
}

// refine runs FM-style boundary passes: move a vertex to the neighbouring
// part with the highest connectivity gain, while keeping every part within
// maxSize. Moves with zero gain are allowed only when they improve balance.
func refine(adj [][]int32, a Assignment, sizes []int, target, passes int) {
	nparts := len(sizes)
	maxSize := target + target/20 + 1
	counts := make([]int, nparts)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := range adj {
			if len(adj[v]) == 0 {
				continue
			}
			own := a[v]
			if sizes[own] <= 1 {
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, w := range adj[v] {
				counts[a[w]]++
			}
			best, bestGain := own, 0
			for p := 0; p < nparts; p++ {
				if int32(p) == own || sizes[p] >= maxSize {
					continue
				}
				gain := counts[p] - counts[own]
				if gain > bestGain ||
					(gain == bestGain && gain > 0 && sizes[p] < sizes[best]) ||
					(gain == 0 && bestGain == 0 && counts[p] > 0 && sizes[p]+1 < sizes[own]) {
					best, bestGain = int32(p), gain
				}
			}
			if best != own {
				sizes[own]--
				sizes[best]++
				a[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// spreadSeeds picks nparts mutually distant vertices by repeated
// farthest-point BFS from the previous seed set.
func spreadSeeds(adj [][]int32, nparts int) []int32 {
	return spreadSeedsFrom(adj, nparts, 0)
}

// spreadSeedsFrom is spreadSeeds with a chosen starting vertex, letting
// multi-start partitioners explore different seed placements.
func spreadSeedsFrom(adj [][]int32, nparts int, start int32) []int32 {
	n := len(adj)
	seeds := make([]int32, 0, nparts)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	// Seed with the BFS-farthest vertex from start: a stable boundary seed.
	seeds = append(seeds, bfsFarthest(adj, []int32{start}, dist, queue))
	for len(seeds) < nparts {
		far := bfsFarthest(adj, seeds, dist, queue)
		seeds = append(seeds, far)
	}
	return seeds
}

// bfsFarthest returns a vertex at maximum BFS distance from the source set.
// Unreachable vertices are preferred (they seed disconnected components).
func bfsFarthest(adj [][]int32, sources []int32, dist []int32, queue []int32) int32 {
	for i := range dist {
		dist[i] = -1
	}
	queue = queue[:0]
	for _, s := range sources {
		dist[s] = 0
		queue = append(queue, s)
	}
	last := sources[0]
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
				last = w
			}
		}
	}
	for v := range dist {
		if dist[v] == -1 {
			return int32(v)
		}
	}
	return last
}

// RIB partitions elements by recursive inertial bisection of their
// coordinates (dim values per element): project onto the principal axis of
// the point set and split at the weighted median, recursing until nparts
// parts exist. This is the default partitioner of Hydra in the paper.
func RIB(coords []float64, dim, nparts int) Assignment {
	return recursiveBisect(coords, dim, nparts, true)
}

// RCB partitions elements by recursive coordinate bisection: like RIB but
// splitting along the coordinate axis of largest extent.
func RCB(coords []float64, dim, nparts int) Assignment {
	return recursiveBisect(coords, dim, nparts, false)
}

func recursiveBisect(coords []float64, dim, nparts int, inertial bool) Assignment {
	if dim <= 0 || len(coords)%dim != 0 {
		panic(fmt.Sprintf("partition: coords length %d not divisible by dim %d", len(coords), dim))
	}
	n := len(coords) / dim
	checkArgs(n, nparts)
	a := make(Assignment, n)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	bisect(coords, dim, idx, 0, nparts, a, inertial)
	return a
}

// bisect assigns parts [base, base+nparts) to the elements in idx.
func bisect(coords []float64, dim int, idx []int32, base, nparts int, a Assignment, inertial bool) {
	if nparts == 1 {
		for _, e := range idx {
			a[e] = int32(base)
		}
		return
	}
	leftParts := nparts / 2
	rightParts := nparts - leftParts
	// Element split proportional to part counts.
	nLeft := len(idx) * leftParts / nparts

	var axis []float64
	if inertial {
		axis = principalAxis(coords, dim, idx)
	} else {
		axis = widestAxis(coords, dim, idx)
	}
	sort.Slice(idx, func(i, j int) bool {
		return project(coords, dim, idx[i], axis) < project(coords, dim, idx[j], axis)
	})
	bisect(coords, dim, idx[:nLeft], base, leftParts, a, inertial)
	bisect(coords, dim, idx[nLeft:], base+leftParts, rightParts, a, inertial)
}

func project(coords []float64, dim int, e int32, axis []float64) float64 {
	s := 0.0
	for d := 0; d < dim; d++ {
		s += coords[int(e)*dim+d] * axis[d]
	}
	return s
}

// principalAxis computes the dominant eigenvector of the covariance matrix
// of the selected points by power iteration.
func principalAxis(coords []float64, dim int, idx []int32) []float64 {
	mean := make([]float64, dim)
	for _, e := range idx {
		for d := 0; d < dim; d++ {
			mean[d] += coords[int(e)*dim+d]
		}
	}
	for d := range mean {
		mean[d] /= float64(len(idx))
	}
	cov := make([]float64, dim*dim)
	for _, e := range idx {
		for d1 := 0; d1 < dim; d1++ {
			v1 := coords[int(e)*dim+d1] - mean[d1]
			for d2 := 0; d2 < dim; d2++ {
				cov[d1*dim+d2] += v1 * (coords[int(e)*dim+d2] - mean[d2])
			}
		}
	}
	v := make([]float64, dim)
	w := make([]float64, dim)
	for d := range v {
		v[d] = 1 / float64(d+1) // deterministic non-degenerate start
	}
	for it := 0; it < 32; it++ {
		norm := 0.0
		for d1 := 0; d1 < dim; d1++ {
			w[d1] = 0
			for d2 := 0; d2 < dim; d2++ {
				w[d1] += cov[d1*dim+d2] * v[d2]
			}
			norm += w[d1] * w[d1]
		}
		if norm == 0 {
			break // degenerate (all points coincident): keep start vector
		}
		inv := 1 / math.Sqrt(norm)
		for d := range v {
			v[d] = w[d] * inv
		}
	}
	return v
}

func widestAxis(coords []float64, dim int, idx []int32) []float64 {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, coords[int(idx[0])*dim:int(idx[0])*dim+dim])
	copy(hi, lo)
	for _, e := range idx {
		for d := 0; d < dim; d++ {
			c := coords[int(e)*dim+d]
			if c < lo[d] {
				lo[d] = c
			}
			if c > hi[d] {
				hi[d] = c
			}
		}
	}
	best := 0
	for d := 1; d < dim; d++ {
		if hi[d]-lo[d] > hi[best]-lo[best] {
			best = d
		}
	}
	axis := make([]float64, dim)
	axis[best] = 1
	return axis
}
