package cluster

import (
	"strings"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// failureFixture builds a 2-rank backend with a node dat whose halo is
// dirty, ready for exchange-layer fault injection.
func failureFixture(t *testing.T) (*Backend, []exchangeSpec) {
	t.Helper()
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 2), NParts: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = e2n
	specs := []exchangeSpec{{dat: x, execDepth: 1, nonexecDepth: 1}}
	return b, specs
}

// expectExchangeError runs f expecting a panic carrying a typed
// *ExchangeError of the given kind, and hands the error to check for
// field-level assertions.
func expectExchangeError(t *testing.T, kind ExchangeErrorKind, f func(), check func(*ExchangeError)) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic with *ExchangeError kind %v", kind)
		}
		e, ok := r.(*ExchangeError)
		if !ok {
			t.Fatalf("panic value %v (%T) is not a *ExchangeError", r, r)
		}
		if e.Kind != kind {
			t.Fatalf("ExchangeError kind = %v, want %v (error: %v)", e.Kind, kind, e)
		}
		if e.Error() == "" || !strings.HasPrefix(e.Error(), "cluster:") {
			t.Errorf("ExchangeError message %q should carry the cluster: prefix", e.Error())
		}
		if check != nil {
			check(e)
		}
	}()
	f()
}

// TestTruncatedGroupedMessage: a grouped message shorter than the
// importer's layout implies must be detected, not silently mis-unpacked.
func TestTruncatedGroupedMessage(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	if len(res.bufs) == 0 {
		t.Fatal("fixture produced no messages")
	}
	buf := res.bufs[0]
	truncated := &sendBuf{from: buf.from, to: buf.to, datID: -1,
		vals: buf.vals[:len(buf.vals)-1]}
	expectExchangeError(t, ErrTruncated, func() {
		b.unpackGrouped(int(truncated.to), specs, []*sendBuf{truncated})
	}, func(e *ExchangeError) {
		if e.Rank != int(buf.to) || e.From != buf.from {
			t.Errorf("rank pair = (%d <- %d), want (%d <- %d)", e.Rank, e.From, buf.to, buf.from)
		}
		if e.Got >= e.Want {
			t.Errorf("truncation got %d >= want %d", e.Got, e.Want)
		}
	})
}

// TestOversizedGroupedMessage: trailing bytes mean sender and receiver
// disagree about the halo layout.
func TestOversizedGroupedMessage(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	buf := res.bufs[0]
	oversized := &sendBuf{from: buf.from, to: buf.to, datID: -1,
		vals: append(append([]float64(nil), buf.vals...), 1.0)}
	expectExchangeError(t, ErrTrailing, func() {
		b.unpackGrouped(int(oversized.to), specs, []*sendBuf{oversized})
	}, func(e *ExchangeError) {
		if e.Got != 1 {
			t.Errorf("trailing values = %d, want 1", e.Got)
		}
	})
}

// TestMissingGroupedMessage: an expected neighbour that never sends.
func TestMissingGroupedMessage(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	to := int(res.bufs[0].to)
	expectExchangeError(t, ErrMissing, func() {
		b.unpackGrouped(to, specs, nil)
	}, func(e *ExchangeError) {
		if e.Rank != to {
			t.Errorf("detecting rank = %d, want %d", e.Rank, to)
		}
	})
}

// TestWrongSizeSingleMessage: a per-dat message whose payload does not
// match the import range.
func TestWrongSizeSingleMessage(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, false)
	if len(res.bufs) == 0 {
		t.Fatal("fixture produced no messages")
	}
	var target *sendBuf
	for _, buf := range res.bufs {
		if len(buf.vals) > 1 {
			target = buf
			break
		}
	}
	if target == nil {
		t.Skip("no multi-value message to corrupt")
	}
	bad := &sendBuf{from: target.from, to: target.to, datID: target.datID,
		kind: target.kind, depth: target.depth, vals: target.vals[:len(target.vals)-1]}
	expectExchangeError(t, ErrSizeMismatch, func() {
		b.unpackSingle(int(bad.to), bad)
	}, func(e *ExchangeError) {
		if e.Dat != "x" {
			t.Errorf("dat = %q, want x", e.Dat)
		}
		if e.Got != e.Want-1 {
			t.Errorf("got %d values, want field says %d", e.Got, e.Want)
		}
	})
}

// TestForeignSingleMessage: a message from a rank the receiver does not
// import from.
func TestForeignSingleMessage(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, false)
	buf := res.bufs[0]
	foreign := &sendBuf{from: buf.to, to: buf.to, datID: buf.datID,
		kind: buf.kind, depth: buf.depth, vals: buf.vals}
	expectExchangeError(t, ErrUnexpected, func() {
		b.unpackSingle(int(foreign.to), foreign)
	}, func(e *ExchangeError) {
		if e.From != buf.to {
			t.Errorf("offending sender = %d, want %d", e.From, buf.to)
		}
	})
}

// TestBeyondHaloDereferencePanics: executing an iteration whose map row
// reaches beyond the built halo must panic with a diagnostic rather than
// corrupt memory.
func TestBeyondHaloDereferencePanics(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Random(m.NNodes, 3, 5), NParts: 3, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := &core.Kernel{Name: "k", Fn: func(a [][]float64) {}}
	l := core.NewLoop(k, edges, core.ArgDat(x, 0, e2n, core.Read), core.ArgDat(x, 1, e2n, core.Read))
	// Find a rank with non-execute edges (never executed normally) and
	// force execution into that region.
	for r := 0; r < 3; r++ {
		sl := b.layouts[r].SetL(edges)
		if sl.NNonexec(1) == 0 {
			continue
		}
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("expected panic for beyond-halo dereference")
			}
			if msg, ok := rec.(string); !ok || !strings.Contains(msg, "beyond halo depth") {
				t.Fatalf("panic %v does not mention beyond halo depth", rec)
			}
		}()
		b.runLoopOnRank(0, r, l, int(sl.NonexecStart[0]), int(sl.NonexecStart[1]), nil)
		return
	}
	t.Skip("no rank with non-execute edges in this partition")
}
