// Command meshgen generates, inspects and partitions the synthetic rotor
// meshes used by the reproduction, and saves/loads them in the op2ca binary
// format.
//
// Usage:
//
//	meshgen -nodes 100000 -o rotor100k.op2ca       # generate and save
//	meshgen -i rotor100k.op2ca -stats              # inspect a saved mesh
//	meshgen -nodes 50000 -partition 16 -stats      # partition quality report
package main

import (
	"flag"
	"fmt"
	"os"

	"op2ca/internal/faults"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 60000, "approximate node count to generate")
		box    = flag.Bool("box", false, "generate a box mesh instead of a periodic rotor")
		in     = flag.String("i", "", "load a mesh file instead of generating")
		out    = flag.String("o", "", "save the mesh to this file")
		nparts = flag.Int("partition", 0, "report partition quality for this many parts")
		stats  = flag.Bool("stats", false, "print mesh statistics")
		lint   = flag.String("faults", "",
			"lint a fault-injection spec: parse it and print the normalised form (meshgen runs no backend; use the spec with mgcfd/hydra/op2ca-bench)")
	)
	flag.Parse()

	if *lint != "" {
		p, err := faults.Parse(*lint)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("faults: %s\n", p.String())
	}

	var m *mesh.FV3D
	var err error
	switch {
	case *in != "":
		m, err = mesh.LoadFile(*in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s\n", *in)
	case *box:
		r := mesh.RotorForNodes(*nodes) // reuse the aspect heuristic
		m = mesh.Box(r.NI, r.NJ, r.NK)
	default:
		m = mesh.RotorForNodes(*nodes)
	}

	fmt.Printf("mesh: %d nodes (%dx%dx%d), %d edges, %d bedges, %d pedges, %d cbnd\n",
		m.NNodes, m.NI, m.NJ, m.NK, m.NEdges, m.NBedges, m.NPedges, m.NCbnd)

	if *stats {
		adj := m.NodeAdjacency()
		minDeg, maxDeg, sum := 1<<30, 0, 0
		for _, a := range adj {
			d := len(a)
			sum += d
			if d < minDeg {
				minDeg = d
			}
			if d > maxDeg {
				maxDeg = d
			}
		}
		fmt.Printf("degree: min %d, max %d, mean %.2f\n",
			minDeg, maxDeg, float64(sum)/float64(len(adj)))
		vol := 0.0
		for _, v := range m.Volumes {
			vol += v
		}
		fmt.Printf("total control volume: %.4f\n", vol)
	}

	if *nparts > 1 {
		adj := m.NodeAdjacency()
		fmt.Printf("partition quality for %d parts:\n", *nparts)
		fmt.Printf("  %-7s  %-9s  %-9s  %-6s\n", "method", "edge cut", "max neigh", "imbal")
		for _, pc := range []struct {
			name   string
			assign partition.Assignment
		}{
			{"kway", partition.KWay(adj, *nparts)},
			{"rib", partition.RIB(m.Coords, 3, *nparts)},
			{"rcb", partition.RCB(m.Coords, 3, *nparts)},
			{"block", partition.Block(m.NNodes, *nparts)},
		} {
			q := partition.Evaluate(adj, pc.assign, *nparts)
			fmt.Printf("  %-7s  %-9d  %-9d  %-6.3f\n", pc.name, q.EdgeCut, q.MaxNeighbours, q.Imbalance)
		}
	}

	if *out != "" {
		if err := m.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshgen:", err)
	os.Exit(1)
}
