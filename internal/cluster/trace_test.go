package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// runTraced runs the mini-app on a 4-rank backend with the given machine and
// tracer, returning the backend.
func runTraced(t *testing.T, mach *machine.Machine, tracer *obs.Tracer,
	caMode, chain, parallel, gpuDirect bool) *Backend {
	t.Helper()
	m := mesh.Rotor(8, 6, 5)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	assign := partition.KWay(m.NodeAdjacency(), 4)
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: assign, NParts: 4,
		Depth: 2, MaxChainLen: 4, CA: caMode, Parallel: parallel,
		Machine: mach, Tracer: tracer, GPUDirect: gpuDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 2, chain)
	return b
}

// TestTraceDeterminism: two identical runs must produce byte-identical
// Chrome trace JSON, even with parallel rank execution — span emission
// happens in the sequential post-processing code, and the export is
// canonically sorted and formatted.
func TestTraceDeterminism(t *testing.T) {
	export := func() []byte {
		tr := obs.New()
		runTraced(t, machine.ARCHER2(), tr, true, true, true, false)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 || a[0] != '{' {
		t.Fatalf("trace export does not look like JSON: %q", a[:min(len(a), 40)])
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTracingDoesNotPerturbClocks: enabling the tracer must leave every
// virtual clock bit-identical — tracing observes the arithmetic, never
// participates in it.
func TestTracingDoesNotPerturbClocks(t *testing.T) {
	cases := []struct {
		name      string
		mach      func() *machine.Machine
		gpuDirect bool
	}{
		{"archer2", machine.ARCHER2, false},
		{"cirrus-staged", machine.Cirrus, false},
		{"cirrus-gpudirect", machine.Cirrus, true},
	}
	for _, tc := range cases {
		for _, caMode := range []bool{false, true} {
			off := runTraced(t, tc.mach(), nil, caMode, true, false, tc.gpuDirect)
			on := runTraced(t, tc.mach(), obs.New(), caMode, true, false, tc.gpuDirect)
			if off.MaxClock() != on.MaxClock() {
				t.Errorf("%s ca=%v: MaxClock differs with tracing: %v vs %v",
					tc.name, caMode, off.MaxClock(), on.MaxClock())
			}
			co, cn := off.Clocks(), on.Clocks()
			for r := range co {
				if co[r] != cn[r] {
					t.Errorf("%s ca=%v: rank %d clock differs: %v vs %v",
						tc.name, caMode, r, co[r], cn[r])
				}
			}
		}
	}
}

// spanCounts tallies spans of one kind by name.
func spanCounts(tr *obs.Tracer, kind obs.Kind) map[string]int {
	counts := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Kind == kind {
			counts[s.Name]++
		}
	}
	return counts
}

// TestChainGroupedSendSpans is the paper's Figure 5 vs Figure 8 contrast
// made structural: the CA chain sends exactly one grouped message per
// neighbour at chain start (send and wait spans named after the chain, one
// per message), while per-loop execution sends one message per loop per
// neighbour (spans named after each loop).
func TestChainGroupedSendSpans(t *testing.T) {
	// CA on: the chain's exchanges are grouped under the chain's name.
	tr := obs.New()
	b := runTraced(t, machine.ARCHER2(), tr, true, true, false, false)
	cs := b.Stats().Chains["synth"]
	if cs == nil || cs.CAExecutions == 0 {
		t.Fatalf("chain did not run CA: %+v", cs)
	}
	sends := spanCounts(tr, obs.Send)
	waits := spanCounts(tr, obs.Wait)
	if int64(sends["synth"]) != cs.Msgs {
		t.Errorf("CA chain: %d grouped send spans, want one per message (%d)", sends["synth"], cs.Msgs)
	}
	if int64(waits["synth"]) != cs.Msgs {
		t.Errorf("CA chain: %d wait spans, want one per message (%d)", waits["synth"], cs.Msgs)
	}
	if sends["update"] != 0 || sends["edge_flux"] != 0 ||
		sends["synth/update"] != 0 || sends["synth/edge_flux"] != 0 {
		t.Errorf("CA chain: chained loops must not send individually: %v", sends)
	}

	// CA off: the same chain falls back to per-loop exchanges, one message
	// stream per loop, attributed to chain-prefixed loop names.
	tr2 := obs.New()
	b2 := runTraced(t, machine.ARCHER2(), tr2, false, true, false, false)
	sends2 := spanCounts(tr2, obs.Send)
	if sends2["synth"] != 0 {
		t.Errorf("per-loop path must not emit grouped sends: %v", sends2)
	}
	var perLoop int64
	for key, ls := range b2.Stats().Loops {
		if strings.HasPrefix(key, "synth/") {
			perLoop += ls.Msgs
			if int64(sends2[key]) != ls.Msgs {
				t.Errorf("per-loop path: %d send spans for %s, want %d", sends2[key], key, ls.Msgs)
			}
		}
	}
	if perLoop <= cs.Msgs {
		t.Errorf("per-loop execution should send more messages than the grouped chain: %d vs %d",
			perLoop, cs.Msgs)
	}
}

// TestStageSpansOnGPU: staged GPU machines put PCIe transfers on the
// per-rank staging track; CPU machines and GPUDirect runs have none.
func TestStageSpansOnGPU(t *testing.T) {
	count := func(mach *machine.Machine, gpuDirect bool) int {
		tr := obs.New()
		runTraced(t, mach, tr, true, true, false, gpuDirect)
		n := 0
		for _, s := range tr.Spans() {
			if s.Track == obs.TrackStage {
				if s.Kind != obs.Stage {
					t.Errorf("non-stage span on staging track: %+v", s)
				}
				n++
			}
		}
		return n
	}
	if n := count(machine.Cirrus(), false); n == 0 {
		t.Error("staged GPU run produced no stage spans")
	}
	if n := count(machine.ARCHER2(), false); n != 0 {
		t.Errorf("CPU run produced %d stage spans", n)
	}
	if n := count(machine.Cirrus(), true); n != 0 {
		t.Errorf("GPUDirect run produced %d stage spans", n)
	}
}

// TestModelReport: the report pairs non-zero predictions with measurements
// for every loop and chain the backend executed.
func TestModelReport(t *testing.T) {
	b := runTraced(t, machine.ARCHER2(), nil, true, true, false, false)
	rep := b.ModelReport()
	if !strings.Contains(rep, "chain synth") {
		t.Fatalf("report missing chain line:\n%s", rep)
	}
	for _, name := range []string{"scale", "bnd_inc"} {
		if !strings.Contains(rep, "loop  "+name) {
			t.Errorf("report missing loop %s:\n%s", name, rep)
		}
	}
	cs := b.Stats().Chains["synth"]
	if cs.Predicted <= 0 {
		t.Errorf("chain prediction not accumulated: %+v", cs)
	}
	// The analytic model and the simulator share their cost terms; on this
	// small CPU mesh the prediction must land in the right ballpark.
	if ratio := cs.Predicted / cs.Time; ratio < 0.5 || ratio > 2 {
		t.Errorf("chain prediction off by more than 2x: predicted %v measured %v", cs.Predicted, cs.Time)
	}
	if !strings.Contains(rep, "aggregate over ") ||
		!strings.Contains(rep, "mean |err|") || !strings.Contains(rep, "max |err|") {
		t.Errorf("report missing aggregate error row:\n%s", rep)
	}
	// The aggregate must cover every loop and chain row printed above it.
	rows := 0
	for _, line := range strings.Split(rep, "\n") {
		if strings.HasPrefix(line, "loop ") || strings.HasPrefix(line, "chain ") {
			rows++
		}
	}
	if !strings.Contains(rep, fmt.Sprintf("aggregate over %d rows", rows)) {
		t.Errorf("aggregate row count != %d printed rows:\n%s", rows, rep)
	}
}

// TestStatsStringRendersExchangeFields: the compact report must include the
// exchange-shape counters (dats, neighbour and message maxima) that the
// model consumes.
func TestStatsStringRendersExchangeFields(t *testing.T) {
	b := runTraced(t, machine.ARCHER2(), nil, true, true, false, false)
	s := b.Stats().String()
	for _, want := range []string{"dats ", "nbmax ", "msgmax ", "rankmax "} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, s)
		}
	}
	cs := b.Stats().Chains["synth"]
	if cs.MaxMsgBytes == 0 || cs.MaxNeighbours == 0 || cs.MaxRankBytes == 0 || cs.DatsExchanged == 0 {
		t.Fatalf("chain exchange counters not populated: %+v", cs)
	}
}

// TestStatsWriteMetrics: the Prometheus exposition carries the loop and
// chain counters with their name labels.
func TestStatsWriteMetrics(t *testing.T) {
	b := runTraced(t, machine.ARCHER2(), nil, true, true, false, false)
	var buf bytes.Buffer
	mw := obs.NewMetricsWriter(&buf)
	b.Stats().WriteMetrics(mw, obs.Label{Key: "run", Value: "t"})
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`op2ca_chain_executions_total{chain="synth",run="t"} 2`,
		`op2ca_chain_model_seconds_total{chain="synth",run="t"}`,
		`op2ca_loop_executions_total{loop="scale",run="t"} 2`,
		"# TYPE op2ca_chain_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
