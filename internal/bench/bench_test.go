package bench

import (
	"strings"
	"testing"
)

// tiny is a configuration small enough for unit tests while keeping
// partitions at >= ~1000 nodes per rank (the paper's strong-scaling
// regime; smaller partitions make 2-layer halos engulf whole neighbour
// partitions and distort the computation/communication balance).
func tiny() Config {
	return Config{Nodes8M: 16000, Nodes24M: 48000, RankScale: 0.004, Iters: 2, Parallel: true}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,5", `say "hi"`}, {"2", "3"}},
	}
	got := tab.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestRanksFor(t *testing.T) {
	c := Default()
	if r := c.ranksFor(1, 128); r < 2 {
		t.Errorf("ranksFor(1) = %d, want >= 2", r)
	}
	if a, b := c.ranksFor(4, 128), c.ranksFor(64, 128); b <= a {
		t.Errorf("ranks must grow with node count: %d vs %d", a, b)
	}
	if gpuRanksFor(1) != 4 || gpuRanksFor(16) != 64 || gpuRanksFor(32) != 64 {
		t.Error("gpuRanksFor wrong")
	}
}

func TestRunMGPointShape(t *testing.T) {
	c := tiny()
	pt := c.runMGPoint(c.Nodes8M, 16, 4, archer())
	if pt.op2Time <= 0 || pt.caTime <= 0 {
		t.Fatalf("times not positive: %+v", pt)
	}
	if pt.op2Comm <= 0 || pt.caComm <= 0 {
		t.Fatalf("communication not measured: %+v", pt)
	}
	if pt.caHalo <= pt.op2Halo {
		t.Errorf("CA must do more redundant halo work: %g vs %g", pt.caHalo, pt.op2Halo)
	}
	if pt.caCore > pt.op2Core {
		t.Errorf("CA core cannot exceed OP2 core: %g vs %g", pt.caCore, pt.op2Core)
	}
}

// TestMGCAVolumeConstantInLoops is the headline Table 2 shape: OP2 per-rank
// communication grows with the loop count, the CA grouped volume does not.
func TestMGCAVolumeConstantInLoops(t *testing.T) {
	c := tiny()
	p2 := c.runMGPoint(c.Nodes8M, 16, 1, archer())
	p32 := c.runMGPoint(c.Nodes8M, 16, 16, archer())
	// With 2 dats exchanged once at 2 loops and one dat re-exchanged per
	// pair at 32 loops the growth is ~(16+1)/2 = 8.5x; allow headroom for
	// partition-shape variation.
	if p32.op2Comm < 6*p2.op2Comm {
		t.Errorf("OP2 comm should grow strongly from 2 to 32 loops: %g -> %g", p2.op2Comm, p32.op2Comm)
	}
	ratio := p32.caComm / p2.caComm
	if ratio > 1.5 {
		t.Errorf("CA grouped volume should stay ~constant: %g -> %g", p2.caComm, p32.caComm)
	}
}

// TestMGGainGrowsWithLoops: the Figure 10/11 shape at a fixed node count.
func TestMGGainGrowsWithLoops(t *testing.T) {
	c := tiny()
	g2 := func(nchains int) float64 {
		pt := c.runMGPoint(c.Nodes8M, 64, nchains, archer())
		return gain(pt.op2Time, pt.caTime)
	}
	lo, hi := g2(1), g2(16)
	if hi <= lo {
		t.Errorf("CA gain should grow with loop count: %g%% (2 loops) vs %g%% (32 loops)", lo, hi)
	}
	if hi <= 0 {
		t.Errorf("32-loop chain at high node count should profit: %g%%", hi)
	}
}

func TestRunHydraPoint(t *testing.T) {
	c := tiny()
	pt := c.runHydraPoint(c.Nodes8M, 16, archer())
	for _, chain := range []string{"weight", "period", "gradl", "vflux", "iflux", "jacob"} {
		o, a := pt.op2[chain], pt.cab[chain]
		if o.time <= 0 || a.time <= 0 {
			t.Errorf("%s: times %g / %g", chain, o.time, a.time)
		}
		if o.execs == 0 || a.execs == 0 {
			t.Errorf("%s: not executed", chain)
		}
	}
	// The period chain has the paper's highest communication reduction.
	o, a := pt.op2["period"], pt.cab["period"]
	if a.comm >= o.comm {
		t.Errorf("period: CA comm %g should be below OP2 comm %g", a.comm, o.comm)
	}
	// gradl increases communication under CA (the paper's negative case).
	o, a = pt.op2["gradl"], pt.cab["gradl"]
	if a.comm <= o.comm {
		t.Errorf("gradl: CA comm %g should exceed OP2 comm %g (deeper halos)", a.comm, o.comm)
	}
}

func TestTable3and4Published(t *testing.T) {
	tab := Table3and4(tiny())
	// Spot-check the published extensions appear for key loops.
	find := func(chain, loop string) []string {
		for _, r := range tab.Rows {
			if r[0] == chain && r[1] == loop {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", chain, loop)
		return nil
	}
	if r := find("gradl", "edgecon"); r[4] != "2" {
		t.Errorf("gradl/edgecon configured HE = %s, want 2", r[4])
	}
	if r := find("vflux", "vflux_edge"); r[4] != "1" {
		t.Errorf("vflux/vflux_edge configured HE = %s, want 1", r[4])
	}
	if r := find("weight", "centreline"); r[4] != "2" {
		t.Errorf("weight/centreline configured HE = %s, want 2", r[4])
	}
	if r := find("period", "limxp"); r[3] != "2" {
		t.Errorf("period/limxp Algorithm 3 HE = %s, want 2", r[3])
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	for _, name := range ExperimentOrder() {
		if exps[name] == nil {
			t.Errorf("experiment %s not registered", name)
		}
	}
	if len(exps) != len(ExperimentOrder()) {
		t.Error("registry and order disagree")
	}
}
