// Command op2ca-bench regenerates the tables and figures of the paper's
// evaluation section (Ekanayake et al., ICPP 2023). Each experiment runs
// both the standard OP2 back-end and the communication-avoiding back-end
// over scaled synthetic rotor meshes under the ARCHER2/Cirrus machine
// models, and prints a paper-style table.
//
// Usage:
//
//	op2ca-bench                         # all experiments, default scale
//	op2ca-bench -experiment fig10,table5
//	op2ca-bench -quick                  # CI-sized scale
//	op2ca-bench -nodes8m 120000 -rankscale 0.02 -iters 5
//	op2ca-bench -quick -json results.json -trace trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"op2ca/internal/bench"
	"op2ca/internal/cluster"
	"op2ca/internal/obs"
)

// jsonResult is one experiment's table plus its wall time, for -json.
type jsonResult struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Seconds float64    `json:"seconds"`
}

// jsonOutput is the -json document: the effective configuration and every
// experiment's result, machine-readable for plotting or regression checks.
type jsonOutput struct {
	Nodes8M   int          `json:"nodes8m"`
	Nodes24M  int          `json:"nodes24m"`
	RankScale float64      `json:"rankscale"`
	Iters     int          `json:"iters"`
	Results   []jsonResult `json:"results"`
}

func main() {
	var (
		experiments = flag.String("experiment", "all",
			"comma-separated experiments: "+strings.Join(bench.ExperimentOrder(), ",")+" or all")
		quick       = flag.Bool("quick", false, "CI-sized configuration")
		nodes8m     = flag.Int("nodes8m", 0, "override scaled 8M-class mesh node count")
		nodes24m    = flag.Int("nodes24m", 0, "override scaled 24M-class mesh node count")
		rankScale   = flag.Float64("rankscale", 0, "override paper-nodes -> ranks scale factor")
		iters       = flag.Int("iters", 0, "override measured main-loop iterations")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		out         = flag.String("o", "", "also write results to this file")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonPath    = flag.String("json", "", "write machine-readable results to this JSON file")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline of every run (one pid per backend)")
		metricsPath = flag.String("metrics", "", "write Prometheus text metrics for every run to this file (\"-\" for stdout)")
		modelCheck  = flag.Bool("model-check", false, "print Equation (1)/(3) predictions vs measured time after each run")
	)
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *nodes8m > 0 {
		cfg.Nodes8M = *nodes8m
	}
	if *nodes24m > 0 {
		cfg.Nodes24M = *nodes24m
	}
	if *rankScale > 0 {
		cfg.RankScale = *rankScale
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *serial {
		cfg.Parallel = false
	}
	if *tracePath != "" {
		cfg.Tracer = obs.New()
	}

	// The metrics file accumulates every run under a distinct run label;
	// HELP/TYPE lines are deduplicated so the exposition stays valid.
	var metricsFile *os.File
	var mw *obs.MetricsWriter
	if *metricsPath != "" {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			metricsFile = f
			w = f
		}
		mw = obs.NewMetricsWriter(w)
	}
	if *modelCheck || mw != nil {
		cfg.Observe = func(label string, b *cluster.Backend) {
			if *modelCheck {
				fmt.Printf("-- %s --\n%s", label, b.ModelReport())
			}
			if mw != nil {
				b.Stats().WriteMetrics(mw, obs.Label{Key: "run", Value: label})
			}
		}
	}

	var names []string
	if *experiments == "all" {
		names = bench.ExperimentOrder()
	} else {
		names = strings.Split(*experiments, ",")
	}
	registry := bench.Experiments()

	var sink *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	jout := jsonOutput{Nodes8M: cfg.Nodes8M, Nodes24M: cfg.Nodes24M,
		RankScale: cfg.RankScale, Iters: cfg.Iters}
	emit(fmt.Sprintf("op2ca-bench: meshes %d/%d nodes, rank scale %g, %d iterations\n\n",
		cfg.Nodes8M, cfg.Nodes24M, cfg.RankScale, cfg.Iters))
	for _, name := range names {
		name = strings.TrimSpace(name)
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "op2ca-bench: unknown experiment %q (have %s)\n",
				name, strings.Join(bench.ExperimentOrder(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		table := run(cfg)
		elapsed := time.Since(start).Seconds()
		if *csv {
			emit(fmt.Sprintf("# %s\n%s\n", table.Title, table.CSV()))
		} else {
			emit(table.String())
			emit(fmt.Sprintf("(%s took %.1fs)\n\n", name, elapsed))
		}
		jout.Results = append(jout.Results, jsonResult{
			Name: name, Title: table.Title, Header: table.Header,
			Rows: table.Rows, Notes: table.Notes, Seconds: elapsed,
		})
	}

	if mw != nil {
		if err := mw.Flush(); err != nil {
			fatal(err)
		}
		if metricsFile != nil {
			fmt.Printf("metrics: written to %s\n", *metricsPath)
		}
	}
	if *tracePath != "" {
		if err := cfg.Tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d spans written to %s (open in Perfetto or chrome://tracing)\n",
			cfg.Tracer.Len(), *tracePath)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&jout, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("json: results written to %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "op2ca-bench:", err)
	os.Exit(1)
}
