package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// ckptWorkload builds the deterministic chain workload the checkpoint tests
// run: a fixed random loop sequence over the rotor mesh (integer-valued
// data, so float64 results are exact and checksums are meaningful bitwise).
type ckptWorkload struct {
	app   *propApp
	loops []core.Loop
}

func newCkptWorkload(m *mesh.FV3D, seed int64, nloops int) ckptWorkload {
	app := newPropApp(m)
	rng := rand.New(rand.NewSource(seed))
	loops := make([]core.Loop, nloops)
	for i := range loops {
		loops[i] = app.randomLoop(rng)
	}
	return ckptWorkload{app: app, loops: loops}
}

// run executes chain repetitions [from, to). Lazy mode queues the loops
// without explicit chain markers, exercising the lazy fuser instead.
func (w ckptWorkload) run(b *Backend, from, to int, lazy bool) {
	for it := from; it < to; it++ {
		if lazy {
			for _, l := range w.loops {
				b.ParLoop(l)
			}
			continue
		}
		b.ChainBegin("prop")
		for _, l := range w.loops {
			b.ParLoop(l)
		}
		b.ChainEnd()
	}
}

// TestCheckpointRoundTrip is the restore-invariant property test: snapshot
// mid-run under every backend mode, restore into a fresh process-equivalent
// backend, and the completed run must be bitwise identical to the
// uninterrupted one — dat checksums always, virtual clocks and
// fault/plan-cache counters in every mode with deterministic chain
// boundaries (lazy flushing at the snapshot is a sync point the clean run
// does not have, so only its data values are required to match).
func TestCheckpointRoundTrip(t *testing.T) {
	const (
		seed   = 42
		nloops = 4
		iters  = 6
		cut    = 3 // checkpoint after this many repetitions
		nparts = 3
	)
	m := mesh.Rotor(6, 5, 4)
	assign := partition.KWay(m.NodeAdjacency(), nparts)
	modes := []struct {
		name       string
		mut        func(*Config)
		lazy       bool
		statsExact bool
	}{
		{"op2", func(c *Config) { c.CA = false }, false, true},
		{"ca", func(c *Config) {}, false, true},
		{"ca-parallel", func(c *Config) { c.Parallel = true }, false, true},
		{"ca-ungrouped", func(c *Config) { c.NoGroupedMsgs = true }, false, true},
		{"ca-lazy", func(c *Config) { c.Lazy = true }, true, false},
		{"ca-autotune", func(c *Config) { c.AutoTune = true }, false, true},
		{"ca-overlap", func(c *Config) { c.Overlap = true }, false, true},
	}
	plans := []struct {
		name string
		plan *faults.Plan
	}{
		{"clean", nil},
		{"faulted", faults.MustParse("drop=0.05,delay=3x@0.1,seed=7")},
	}
	for _, mode := range modes {
		for _, pl := range plans {
			t.Run(mode.name+"/"+pl.name, func(t *testing.T) {
				mkCfg := func(w ckptWorkload) Config {
					cfg := Config{
						Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: nparts,
						Depth: nloops + 1, MaxChainLen: nloops, CA: true, Faults: pl.plan,
					}
					mode.mut(&cfg)
					return cfg
				}

				// Uninterrupted reference run.
				cleanW := newCkptWorkload(m, seed, nloops)
				clean, err := New(mkCfg(cleanW))
				if err != nil {
					t.Fatal(err)
				}
				cleanW.run(clean, 0, iters, mode.lazy)
				wantSum := clean.ChecksumDats()
				wantClock := clean.MaxClock()
				wantFaults := clean.Stats().Faults
				wantH, wantM, wantI := clean.PlanCacheStats()

				// Interrupted run: snapshot at the cut, then throw the
				// backend away.
				firstW := newCkptWorkload(m, seed, nloops)
				first, err := New(mkCfg(firstW))
				if err != nil {
					t.Fatal(err)
				}
				firstW.run(first, 0, cut, mode.lazy)
				var snap bytes.Buffer
				if err := first.Checkpoint(&snap, "cut"); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
				if ck := first.Stats().Ckpt; ck.Checkpoints != 1 || ck.CheckpointBytes != int64(snap.Len()) {
					t.Errorf("CkptStats = %+v, want 1 checkpoint of %d bytes", ck, snap.Len())
				}

				// Restore into a fresh process-equivalent backend and finish.
				resumedW := newCkptWorkload(m, seed, nloops)
				resumed, note, err := Restore(bytes.NewReader(snap.Bytes()), mkCfg(resumedW))
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				if note != "cut" {
					t.Errorf("note = %q, want %q", note, "cut")
				}
				resumedW.run(resumed, cut, iters, mode.lazy)

				if got := resumed.ChecksumDats(); got != wantSum {
					t.Errorf("checksums diverge: resumed %s, uninterrupted %s", got, wantSum)
				}
				if resumed.Stats().Ckpt.Restores != 1 {
					t.Errorf("Restores = %d, want 1", resumed.Stats().Ckpt.Restores)
				}
				if !mode.statsExact {
					return
				}
				if got := resumed.MaxClock(); got != wantClock {
					t.Errorf("virtual clock diverges: resumed %v, uninterrupted %v", got, wantClock)
				}
				if got := resumed.Stats().Faults; got != wantFaults {
					t.Errorf("FaultStats diverge: resumed %+v, uninterrupted %+v", got, wantFaults)
				}
				gotH, gotM, gotI := resumed.PlanCacheStats()
				if gotH != wantH || gotM != wantM || gotI != wantI {
					t.Errorf("PlanCacheStats diverge: resumed %d/%d/%d, uninterrupted %d/%d/%d",
						gotH, gotM, gotI, wantH, wantM, wantI)
				}
			})
		}
	}
}

// TestCrashDeterministicAndResume: crash=rankN@E kills the run at exactly
// exchange E on every invocation, and crash -> restore-from-last-checkpoint
// -> completion reproduces the uninterrupted run's checksums bitwise.
func TestCrashDeterministicAndResume(t *testing.T) {
	const (
		seed   = 11
		nloops = 3
		iters  = 6
		nparts = 3
	)
	m := mesh.Rotor(6, 5, 4)
	assign := partition.KWay(m.NodeAdjacency(), nparts)
	mkCfg := func(w ckptWorkload, plan *faults.Plan) Config {
		return Config{
			Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: nparts,
			Depth: nloops + 1, MaxChainLen: nloops, CA: true, Faults: plan,
		}
	}

	// Uninterrupted, fault-free reference.
	cleanW := newCkptWorkload(m, seed, nloops)
	clean, err := New(mkCfg(cleanW, nil))
	if err != nil {
		t.Fatal(err)
	}
	cleanW.run(clean, 0, iters, false)
	wantSum := clean.ChecksumDats()

	plan := faults.MustParse("crash=rank1@3,seed=3")
	crashRun := func() (lastCkpt []byte, done int, crash *faults.CrashError) {
		w := newCkptWorkload(m, seed, nloops)
		b, err := New(mkCfg(w, plan))
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					c, ok := r.(*faults.CrashError)
					if !ok {
						panic(r)
					}
					crash = c
				}
			}()
			for it := 0; it < iters; it++ {
				w.run(b, it, it+1, false)
				var buf bytes.Buffer
				if err := b.Checkpoint(&buf, fmt.Sprintf("%d", it+1)); err != nil {
					t.Fatal(err)
				}
				lastCkpt = buf.Bytes()
				done = it + 1
			}
		}()
		return lastCkpt, done, crash
	}

	ck1, done1, crash1 := crashRun()
	if crash1 == nil {
		t.Fatal("crash plan did not fire; pick a smaller exchange number")
	}
	if crash1.Rank != 1 || crash1.Exchange != 3 {
		t.Fatalf("crashed at rank %d exchange %d, want rank 1 exchange 3", crash1.Rank, crash1.Exchange)
	}
	if !strings.Contains(crash1.Error(), "rank 1") {
		t.Errorf("CrashError message %q should name the rank", crash1.Error())
	}
	ck2, done2, crash2 := crashRun()
	if crash2 == nil || *crash2 != *crash1 || done2 != done1 {
		t.Fatalf("crash not deterministic: first (%+v after %d), second (%+v after %d)",
			crash1, done1, crash2, done2)
	}
	if !bytes.Equal(ck1, ck2) {
		t.Fatal("checkpoints of two identical crashed runs differ")
	}
	if done1 >= iters {
		t.Fatalf("crash fired after all %d iterations; pick a smaller exchange number", iters)
	}

	// Resume from the last checkpoint without any fault plan (the crash
	// clause is normalised out of the fingerprint) and finish the run.
	resumedW := newCkptWorkload(m, seed, nloops)
	resumed, note, err := Restore(bytes.NewReader(ck1), mkCfg(resumedW, nil))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var resumeFrom int
	if _, err := fmt.Sscanf(note, "%d", &resumeFrom); err != nil || resumeFrom != done1 {
		t.Fatalf("note %q, want %d", note, done1)
	}
	resumedW.run(resumed, resumeFrom, iters, false)
	if got := resumed.ChecksumDats(); got != wantSum {
		t.Errorf("crash/restore checksums %s, uninterrupted %s", got, wantSum)
	}

	// Resuming with the crash plan still present must not re-fire: the
	// restored backend is disarmed, and the fingerprint treats a crash-only
	// plan as no plan at all.
	armedW := newCkptWorkload(m, seed, nloops)
	armed, _, err := Restore(bytes.NewReader(ck1), mkCfg(armedW, plan))
	if err != nil {
		t.Fatalf("restore with crash plan: %v", err)
	}
	armedW.run(armed, resumeFrom, iters, false)
	if got := armed.ChecksumDats(); got != wantSum {
		t.Errorf("disarmed resume checksums %s, uninterrupted %s", got, wantSum)
	}
}

// TestCheckpointFingerprintMismatch: restoring a snapshot under a different
// configuration must be refused, not silently resumed.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	const nloops = 2
	m := mesh.Rotor(6, 5, 4)
	assign := partition.Block(m.NNodes, 2)
	w := newCkptWorkload(m, 1, nloops)
	cfg := Config{Prog: w.app.p, Primary: w.app.nodes, Assign: assign, NParts: 2,
		Depth: nloops + 1, MaxChainLen: nloops, CA: true}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.run(b, 0, 2, false)
	var snap bytes.Buffer
	if err := b.Checkpoint(&snap, ""); err != nil {
		t.Fatal(err)
	}
	other := newCkptWorkload(m, 1, nloops)
	badCfg := cfg
	badCfg.Prog = other.app.p
	badCfg.Primary = other.app.nodes
	badCfg.Depth = nloops + 2
	if _, _, err := Restore(bytes.NewReader(snap.Bytes()), badCfg); err == nil ||
		!strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("restore under different depth = %v, want fingerprint mismatch", err)
	}
	// The delivery mode is part of the fingerprint: a bulk snapshot must
	// not restore into an overlapped config (clock arithmetic would change
	// mid-run without the stats reflecting it).
	ovW := newCkptWorkload(m, 1, nloops)
	ovCfg := cfg
	ovCfg.Prog = ovW.app.p
	ovCfg.Primary = ovW.app.nodes
	ovCfg.Overlap = true
	if _, _, err := Restore(bytes.NewReader(snap.Bytes()), ovCfg); err == nil ||
		!strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("restore under different delivery mode = %v, want fingerprint mismatch", err)
	}
}

// TestCheckpointInsideChainRefused: there is no mid-chain state a restore
// could resume into.
func TestCheckpointInsideChainRefused(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	w := newCkptWorkload(m, 1, 2)
	b, err := New(Config{Prog: w.app.p, Primary: w.app.nodes,
		Assign: partition.Block(m.NNodes, 2), NParts: 2, Depth: 3, MaxChainLen: 2, CA: true})
	if err != nil {
		t.Fatal(err)
	}
	b.ChainBegin("open")
	var buf bytes.Buffer
	if err := b.Checkpoint(&buf, ""); err == nil || !strings.Contains(err.Error(), "open chain") {
		t.Fatalf("Checkpoint inside chain = %v, want open-chain error", err)
	}
}
