package cluster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
)

// pathTol is the float tolerance for "critical path length == makespan":
// the walk reuses the exact values the clock arithmetic traced, so the
// comparison is near-exact.
const pathTol = 1e-9

func checkPathTilesMakespan(t *testing.T, name string, b *Backend) {
	t.Helper()
	p := b.Profile()
	if p == nil {
		t.Fatalf("%s: Profile() = nil on a traced backend", name)
	}
	mc := b.MaxClock()
	if math.Abs(p.Makespan-mc) > pathTol*mc {
		t.Errorf("%s: profile makespan %v, MaxClock %v", name, p.Makespan, mc)
	}
	if math.Abs(p.Path.Length-mc) > pathTol*math.Max(mc, 1) {
		t.Errorf("%s: critical path length %v != makespan %v", name, p.Path.Length, mc)
	}
	var byKind, byRank float64
	for _, v := range p.Path.ByKind {
		byKind += v
	}
	for _, v := range p.Path.ByRank {
		byRank += v
	}
	if math.Abs(byKind-p.Path.Length) > pathTol*math.Max(mc, 1) {
		t.Errorf("%s: by-kind attribution sums to %v, path length %v", name, byKind, p.Path.Length)
	}
	if math.Abs(byRank-p.Path.Length) > pathTol*math.Max(mc, 1) {
		t.Errorf("%s: by-rank attribution sums to %v, path length %v", name, byRank, p.Path.Length)
	}
	// Segments must tile forward: each begins where the previous ended or
	// where a traversed edge started.
	prev := 0.0
	for i, s := range p.Path.Segments {
		if s.Begin < prev-pathTol*math.Max(mc, 1) || s.End < s.Begin {
			t.Fatalf("%s: segment %d [%v, %v] overlaps previous end %v", name, i, s.Begin, s.End, prev)
		}
		prev = s.End
	}
}

// TestProfilePathMatchesMakespan is the tentpole invariant: on every
// machine and execution mode, the critical path through the span DAG tiles
// exactly the run's virtual makespan, and the per-kind/per-rank attribution
// partitions it.
func TestProfilePathMatchesMakespan(t *testing.T) {
	cases := []struct {
		name      string
		mach      func() *machine.Machine
		gpuDirect bool
	}{
		{"archer2", machine.ARCHER2, false},
		{"cirrus-staged", machine.Cirrus, false},
		{"cirrus-gpudirect", machine.Cirrus, true},
	}
	for _, tc := range cases {
		for _, caMode := range []bool{false, true} {
			name := tc.name
			if caMode {
				name += "/ca"
			} else {
				name += "/op2"
			}
			b := runTraced(t, tc.mach(), obs.New(), caMode, caMode, false, tc.gpuDirect)
			checkPathTilesMakespan(t, name, b)
			p := b.stats.Profile
			if caMode {
				found := false
				for _, cc := range p.Comm {
					if cc.Name == "synth" {
						found = true
						if cc.Msgs == 0 || cc.Bytes == 0 {
							t.Errorf("%s: chain comm matrix empty: %+v", name, cc)
						}
						var matBytes int64
						for _, v := range cc.BytesMat {
							matBytes += v
						}
						if matBytes != cc.Bytes {
							t.Errorf("%s: bytes matrix sums to %d, total %d", name, matBytes, cc.Bytes)
						}
					}
				}
				if !found {
					t.Errorf("%s: no comm profile for chain synth (have %d entries)", name, len(p.Comm))
				}
			}
			if p.Imbalance.Ratio < 1 {
				t.Errorf("%s: imbalance ratio %v < 1", name, p.Imbalance.Ratio)
			}
			for _, cc := range p.Comm {
				sum := cc.WaitLate + cc.WaitNIC + cc.WaitRetry + cc.WaitTransit
				if math.Abs(sum-cc.Wait) > pathTol*math.Max(cc.Wait, 1) {
					t.Errorf("%s: %s wait components sum to %v, wait %v", name, cc.Name, sum, cc.Wait)
				}
			}
		}
	}
}

// TestProfileWithReduction: a global reduction's straggler edge keeps the
// path tiling the makespan, with Reduce time attributed.
func TestProfileWithReduction(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	x := p.DeclDat(nodes, 1, nil, "x")
	for i := range x.Data {
		x.Data[i] = float64(i%11 - 5)
	}
	k := &core.Kernel{Name: "sumsq", Flops: 2, MemBytes: 16, Fn: func(a [][]float64) {
		a[1][0] += a[0][0] * a[0][0]
	}}
	tr := obs.New()
	b, err := New(Config{
		Prog: p, Primary: nodes, Assign: partition.Block(m.NNodes, 4), NParts: 4,
		Machine: machine.ARCHER2(), Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := []float64{0}
	b.ParLoop(core.NewLoop(k, nodes, core.ArgDatDirect(x, core.Read), core.ArgGbl(sum, core.Inc)))
	checkPathTilesMakespan(t, "reduction", b)
	if b.stats.Profile.Path.ByKind[obs.Reduce] <= 0 {
		t.Errorf("reduction run attributes no Reduce time: %v", b.stats.Profile.Path.ByKind)
	}
}

// TestProfileUnderFaults: retransmissions (retry edges) and degradations
// keep the invariant, and the wait attribution surfaces a retry component.
func TestProfileUnderFaults(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	plan := faults.MustParse("drop=0.2,corrupt=0.1,seed=7")
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	tr := obs.New()
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
		Depth: 2, MaxChainLen: 4, CA: true, Machine: machine.ARCHER2(),
		Faults: plan, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 2, true)
	checkPathTilesMakespan(t, "faults", b)
	if b.Stats().Faults.Retries == 0 {
		t.Fatal("plan injected no retries; retry attribution check is vacuous")
	}
	var retryWait float64
	for _, cc := range b.stats.Profile.Comm {
		retryWait += cc.WaitRetry
	}
	if retryWait <= 0 {
		t.Error("faulted run attributes no wait time to retries")
	}
}

// TestProfileDoesNotPerturbRun mirrors the PR 1 tracer no-perturbation
// test at the -profile level: enabling tracing and running the analysis
// must leave clocks and gathered results bit-identical.
func TestProfileDoesNotPerturbRun(t *testing.T) {
	for _, caMode := range []bool{false, true} {
		off := runTraced(t, machine.ARCHER2(), nil, caMode, caMode, false, false)
		on := runTraced(t, machine.ARCHER2(), obs.New(), caMode, caMode, false, false)
		if on.Profile() == nil {
			t.Fatal("Profile() = nil on traced backend")
		}
		if off.Profile() != nil {
			t.Fatal("Profile() non-nil without a tracer")
		}
		if off.MaxClock() != on.MaxClock() {
			t.Errorf("ca=%v: MaxClock differs under -profile: %v vs %v", caMode, off.MaxClock(), on.MaxClock())
		}
		if oc, nc := off.ChecksumDats(), on.ChecksumDats(); oc != nc {
			t.Errorf("ca=%v: checksums differ under -profile: %x vs %x", caMode, oc, nc)
		}
	}
}

// TestProfileInReports: the profile shows up in Stats.String, WriteMetrics
// and ModelReport once Profile has run.
func TestProfileInReports(t *testing.T) {
	b := runTraced(t, machine.ARCHER2(), obs.New(), true, true, false, false)
	if got := b.Stats().String(); strings.Contains(got, "critical path:") {
		t.Error("Stats.String reports a profile before Profile() ran")
	}
	b.Profile()
	got := b.Stats().String()
	for _, want := range []string{"critical path:", "imbalance:", "comm synth"} {
		if !strings.Contains(got, want) {
			t.Errorf("Stats.String missing %q:\n%s", want, got)
		}
	}
	var buf bytes.Buffer
	mw := obs.NewMetricsWriter(&buf)
	b.Stats().WriteMetrics(mw, obs.Label{Key: "run", Value: "r1"})
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"op2ca_critpath_seconds{run=\"r1\"}",
		"op2ca_critpath_kind_seconds{kind=\"compute\",run=\"r1\"}",
		"op2ca_imbalance_ratio{run=\"r1\"}",
		"op2ca_comm_wait_seconds{owner=\"synth\",cause=\"nic\",run=\"r1\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	mr := b.ModelReport()
	if !strings.Contains(mr, "crit  path(makespan)") {
		t.Errorf("ModelReport missing critical-path row:\n%s", mr)
	}
}

// TestProfileDeterministic: identical runs produce identical reports.
func TestProfileDeterministic(t *testing.T) {
	render := func() string {
		b := runTraced(t, machine.ARCHER2(), obs.New(), true, true, true, false)
		return b.Profile().Report()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("identical runs produced different profile reports:\n%s\nvs\n%s", a, b)
	}
}
