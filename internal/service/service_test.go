package service_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"op2ca/internal/service"
)

// smallMGCFD is the test workhorse: big enough to exercise multi-rank
// exchanges and checkpointing, small enough to run in milliseconds.
func smallMGCFD(tenant string) service.JobSpec {
	return service.JobSpec{
		Tenant: tenant, App: "mgcfd",
		MeshNodes: 800, Ranks: 3, Iters: 4, NChains: 2, Machine: "laptop",
	}
}

func smallHydra(tenant string) service.JobSpec {
	return service.JobSpec{
		Tenant: tenant, App: "hydra",
		MeshNodes: 800, Ranks: 3, Iters: 3, Machine: "laptop",
	}
}

func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*service.JobSpec)
		want string
	}{
		{"no-tenant", func(s *service.JobSpec) { s.Tenant = "" }, "tenant"},
		{"bad-tenant", func(s *service.JobSpec) { s.Tenant = "a b" }, "tenant"},
		{"bad-app", func(s *service.JobSpec) { s.App = "nekbone" }, "app"},
		{"seq-backend", func(s *service.JobSpec) { s.Backend = "seq" }, "backend"},
		{"mesh-too-big", func(s *service.JobSpec) { s.MeshNodes = service.MaxMeshNodes + 1 }, "mesh_nodes"},
		{"one-rank", func(s *service.JobSpec) { s.Ranks = 1 }, "ranks"},
		{"neg-iters", func(s *service.JobSpec) { s.Iters = -1 }, "iters"},
		{"bad-machine", func(s *service.JobSpec) { s.Machine = "cray" }, "machine"},
		{"bad-partitioner", func(s *service.JobSpec) { s.Partitioner = "metis" }, "partitioner"},
		{"chains-on-mgcfd", func(s *service.JobSpec) { s.Chains = "chain weight\n" }, "hydra-only"},
		{"bad-faults", func(s *service.JobSpec) { s.Faults = "drop=2" }, "drop"},
		{"dup-faults", func(s *service.JobSpec) { s.Faults = "drop=0.1,drop=0.2" }, "duplicate"},
		{"bad-supervise", func(s *service.JobSpec) { s.Supervise = "budget=-1" }, "non-negative"},
	} {
		spec := smallMGCFD("acme")
		tc.mut(&spec)
		_, err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	levels := smallHydra("acme")
	levels.Levels = 2
	if _, err := levels.Validate(); err == nil || !strings.Contains(err.Error(), "mgcfd-only") {
		t.Errorf("levels on hydra: err = %v", err)
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	spec := service.JobSpec{Tenant: "acme", App: "hydra"}
	res, err := service.RunDirect(service.JobSpec{Tenant: "acme", App: "mgcfd", MeshNodes: 200, Ranks: 2, Iters: 1, Machine: "laptop"}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Spec
	if got.Backend != "ca" || got.Levels != 2 || got.Partitioner != "kway" ||
		got.CheckpointEvery != 1 || got.Supervise != "on" {
		t.Errorf("mgcfd defaults not filled: %+v", got)
	}
	if w, err := spec.Validate(); err != nil {
		t.Fatal(err)
	} else if _ = w; spec.Partitioner != "" {
		t.Error("Validate must not mutate its receiver's caller copy")
	}
}

// TestRunDirectDeterministic pins the oracle itself: two direct runs of
// one spec agree bitwise, and op2 vs ca backends of the same workload
// agree with each other (the repo-wide canonical-order guarantee).
func TestRunDirectDeterministic(t *testing.T) {
	for _, mk := range []func(string) service.JobSpec{smallMGCFD, smallHydra} {
		spec := mk("acme")
		a, err := service.RunDirect(spec, "")
		if err != nil {
			t.Fatal(err)
		}
		b, err := service.RunDirect(spec, "")
		if err != nil {
			t.Fatal(err)
		}
		if a.Checksum != b.Checksum || a.MaxClockSeconds != b.MaxClockSeconds ||
			a.Residual != b.Residual || a.Exchanges != b.Exchanges {
			t.Errorf("%s: direct runs disagree: %+v vs %+v", spec.App, a, b)
		}
		if a.Checksum == "" || a.MaxClockSeconds <= 0 || a.Exchanges == 0 {
			t.Errorf("%s: degenerate result %+v", spec.App, a)
		}
		op2 := spec
		op2.Backend = "op2"
		c, err := service.RunDirect(op2, "")
		if err != nil {
			t.Fatal(err)
		}
		if c.Checksum != a.Checksum {
			t.Errorf("%s: op2 checksum %s != ca %s", spec.App, c.Checksum, a.Checksum)
		}
	}
}

// TestRunDirectOverlap pins the overlap knob end to end through the job
// grammar: the task-graph executor moves virtual time only, so a job
// served with overlap=true answers bitwise what the bulk run answers,
// and never with a larger makespan.
func TestRunDirectOverlap(t *testing.T) {
	spec := smallMGCFD("acme")
	base, err := service.RunDirect(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	ov := spec
	ov.Overlap = true
	got, err := service.RunDirect(ov, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != base.Checksum || got.Residual != base.Residual {
		t.Errorf("overlap changed the answer: checksum %s vs %s, residual %v vs %v",
			got.Checksum, base.Checksum, got.Residual, base.Residual)
	}
	if got.MaxClockSeconds > base.MaxClockSeconds {
		t.Errorf("overlap raised the makespan: %v > %v", got.MaxClockSeconds, base.MaxClockSeconds)
	}
	if !got.Spec.Overlap {
		t.Error("result spec echo lost overlap=true")
	}
}

// TestRetryAfterScalesWithQueueDepth pins the overload hint derivation:
// Retry-After estimates the queue's drain time, so shedding against a
// deeper queue must return a larger hint than against a shallow one.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueCap: 6, TenantCap: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A long job pins the only worker so the queue keeps its depth while
	// the hints are sampled (Close cancels it cooperatively).
	busy := smallMGCFD("acme")
	busy.MeshNodes = 6000
	busy.Iters = 200
	if _, err := svc.Submit(busy); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(smallMGCFD("hog")); err != nil {
		t.Fatal(err)
	}

	shed := func() *service.OverloadError {
		t.Helper()
		_, err := svc.Submit(smallMGCFD("hog"))
		var oe *service.OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("want OverloadError, got %v", err)
		}
		return oe
	}
	shallow := shed() // tenant quota, queue depth 1
	if shallow.Scope != "tenant" || shallow.RetryAfter < 1 {
		t.Fatalf("shallow shed = %+v", shallow)
	}
	for i := 0; i < 4; i++ { // other tenants deepen the queue
		if _, err := svc.Submit(smallMGCFD(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deep := shed() // tenant quota again, queue depth 5
	if deep.Scope != "tenant" || deep.RetryAfter <= shallow.RetryAfter {
		t.Errorf("Retry-After did not grow with queue depth: %d then %d", shallow.RetryAfter, deep.RetryAfter)
	}
	if _, err := svc.Submit(smallMGCFD("t9")); err != nil { // fill to cap
		t.Fatal(err)
	}
	full := shed() // whole-queue shed outranks the tenant quota
	if full.Scope != "queue" || full.RetryAfter < deep.RetryAfter {
		t.Errorf("queue-full shed = %+v, want scope queue and Retry-After >= %d", full, deep.RetryAfter)
	}
}

// TestRunDirectSelfHeals pins that a crash clause plus supervision still
// converges to the clean answer — the property the service's
// crash-migration path builds on.
func TestRunDirectSelfHeals(t *testing.T) {
	clean := smallMGCFD("acme")
	want, err := service.RunDirect(clean, "")
	if err != nil {
		t.Fatal(err)
	}
	crashed := clean
	crashed.Faults = "crash=rank0@40,seed=1"
	got, err := service.RunDirect(crashed, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != want.Checksum || got.Residual != want.Residual {
		t.Errorf("supervised crash run diverged: %s vs %s", got.Checksum, want.Checksum)
	}
	if got.Supervise == nil || got.Supervise.CrashRestarts < 1 || got.Attempts < 2 {
		t.Errorf("crash not exercised: %+v", got.Supervise)
	}
}
