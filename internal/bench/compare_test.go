package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Nodes8M: 16, Nodes24M: 48, RankScale: 0.25, Iters: 4,
		Checksums: map[string]string{"table2/op2": "abc123", "table2/ca": "def456"},
		Profiles: []ProfileRecord{{
			Run: "table2/ca", Makespan: 10, CritPath: 10,
			ByKind:    map[string]float64{"compute": 6, "send": 4},
			Imbalance: 1.2,
			Comm: []CommRecord{{
				Owner: "synth", Msgs: 40, Bytes: 4096,
				WaitSeconds: 2, LateSeconds: 0.5, NICSeconds: 0.5, TransitSeconds: 1,
			}},
		}},
		Results: []Result{
			{
				Name:   "table2",
				Title:  "Table 2: runtimes",
				Header: []string{"loop", "op2 (s)", "ca (s)", "gain"},
				Rows: [][]string{
					{"total", "10.000", "8.000", "20.0%"},
					{"flux", "4.000", "3.000", "25.0%"},
				},
				Seconds: 1.5,
			},
			{
				Name:   "fig10",
				Title:  "Figure 10: messages",
				Header: []string{"config", "msgs"},
				Rows:   [][]string{{"op2", "1200"}, {"ca", "800"}},
			},
		},
	}
}

func TestParseThresholds(t *testing.T) {
	th, err := ParseThresholds("default=2%,table2=5%,fig10=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if th.Default != 0.02 {
		t.Errorf("Default = %v, want 0.02", th.Default)
	}
	if th.For("table2") != 0.05 || th.For("fig10") != 0.001 {
		t.Errorf("table thresholds wrong: %+v", th)
	}
	if th.For("other") != 0.02 {
		t.Errorf("For(other) = %v, want the default 0.02", th.For("other"))
	}
	if th, err = ParseThresholds(""); err != nil || th.Default != defaultTol {
		t.Errorf("empty spec: %+v, %v", th, err)
	}
	for _, bad := range []string{"nonsense", "a=%", "a=-1", "a=x%"} {
		if _, err := ParseThresholds(bad); err == nil {
			t.Errorf("ParseThresholds(%q) accepted", bad)
		}
	}
}

func TestCompareSelfIsOK(t *testing.T) {
	r := CompareSnapshots(sample(), sample(), Thresholds{})
	if !r.OK() {
		t.Fatalf("self-compare found regressions:\n%s", r)
	}
	if r.Compared == 0 {
		t.Fatal("self-compare checked nothing")
	}
	if !strings.Contains(r.String(), "no regressions") {
		t.Errorf("report: %q", r.String())
	}
}

func TestComparePerturbedCellFails(t *testing.T) {
	th, _ := ParseThresholds("default=2%")
	n := sample()
	n.Results[0].Rows[0][2] = "9.600" // +20% over 8.000
	r := CompareSnapshots(sample(), n, th)
	if r.OK() {
		t.Fatal("20% regression passed a 2% threshold")
	}
	found := false
	for _, reg := range r.Regressions {
		if reg.Table == "table2" && strings.Contains(reg.Where, "ca (s)") {
			found = true
			if reg.Delta < 0.19 || reg.Delta > 0.21 {
				t.Errorf("delta = %v, want ~0.20", reg.Delta)
			}
		}
	}
	if !found {
		t.Fatalf("regression not attributed to the perturbed cell:\n%s", r)
	}
	// The same perturbation passes once the table's threshold covers it.
	th, _ = ParseThresholds("default=2%,table2=25%")
	if r := CompareSnapshots(sample(), n, th); !r.OK() {
		t.Fatalf("25%% table threshold still failed:\n%s", r)
	}
}

func TestCompareSecondsIgnored(t *testing.T) {
	n := sample()
	n.Results[0].Seconds = 99.9
	if r := CompareSnapshots(sample(), n, Thresholds{}); !r.OK() {
		t.Fatalf("wall-clock seconds flagged as a regression:\n%s", r)
	}
}

func TestCompareExactFields(t *testing.T) {
	n := sample()
	n.Checksums["table2/ca"] = "beefbeef"
	r := CompareSnapshots(sample(), n, Thresholds{Default: 0.5})
	if r.OK() {
		t.Fatal("checksum change passed")
	}

	n = sample()
	n.Iters = 8
	if r := CompareSnapshots(sample(), n, Thresholds{Default: 0.5}); r.OK() {
		t.Fatal("config change passed")
	}

	n = sample()
	n.Results[0].Rows[1][0] = "renamed"
	if r := CompareSnapshots(sample(), n, Thresholds{Default: 0.5}); r.OK() {
		t.Fatal("non-numeric cell change passed")
	}
}

func TestCompareStructuralChanges(t *testing.T) {
	n := sample()
	n.Results = n.Results[:1] // drop fig10
	r := CompareSnapshots(sample(), n, Thresholds{})
	if r.OK() {
		t.Fatal("missing table passed")
	}

	// A table only in the new snapshot is reported, not failed.
	r = CompareSnapshots(n, sample(), Thresholds{})
	if !r.OK() {
		t.Fatalf("extra new table failed:\n%s", r)
	}
	if len(r.Skipped) == 0 {
		t.Error("extra new table not reported in Skipped")
	}
}

func TestCompareProfiles(t *testing.T) {
	n := sample()
	n.Profiles[0].CritPath = 13 // +30%
	th, _ := ParseThresholds("default=2%")
	r := CompareSnapshots(sample(), n, th)
	if r.OK() {
		t.Fatal("critpath regression passed")
	}
	found := false
	for _, reg := range r.Regressions {
		if reg.Table == "profiles" && strings.Contains(reg.Where, "critpath_seconds") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression not attributed to critpath:\n%s", r)
	}

	n = sample()
	n.Profiles[0].Comm[0].Msgs = 60 // message counts are exact
	if r := CompareSnapshots(sample(), n, Thresholds{Default: 0.9}); r.OK() {
		t.Fatal("message-count change passed")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s := sample()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if r := CompareSnapshots(s, got, Thresholds{}); !r.OK() {
		t.Fatalf("round-trip changed the snapshot:\n%s", r)
	}
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadSnapshot on a missing file succeeded")
	}
}
