package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"op2ca/internal/model"
)

// modelNet returns the network parameters of Equations (1)-(3) for this
// back-end's machine: L becomes the staged-exchange latency Λ on GPU
// machines that route halos through host memory, and c is the caller's
// per-neighbour grouped-message pack/unpack cost.
func (b *Backend) modelNet(c float64) model.Net {
	m := b.cfg.Machine
	l := m.Latency
	if m.GPU != nil && !b.cfg.GPUDirect {
		l = m.GPU.ExchangeLatency(m.Latency)
	}
	// The rendezvous handshake is the machine's resolved surcharge (an
	// explicit value, or the classic 2·Latency request/ack round trip) —
	// priced on the *network* latency even when L itself is the
	// staged-exchange Λ, because netsim charges the same resolved value.
	return model.Net{
		L: l, B: m.Bandwidth, C: c,
		EagerThreshold: float64(m.EagerThreshold), Handshake: m.HandshakeTime(),
	}
}

// ModelReport renders the analytic model's Equation (1)/(3) predictions next
// to the simulator's measured virtual times, with percent error, for every
// loop and chain this back-end executed. Predictions are accumulated per
// execution using that execution's own measured parameters (iteration
// splits, neighbour counts, message sizes), so the report isolates how well
// the closed-form model tracks the event-level simulation.
func (b *Backend) ModelReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "model check (%s, %d ranks)\n", b.cfg.Machine.Name, b.cfg.NParts)
	if err := b.modelNet(0).Validate(); err != nil {
		fmt.Fprintf(&sb, "model parameters invalid: %v\n", err)
	}
	fmt.Fprintf(&sb, "%-28s %14s %14s %8s\n", "", "predicted", "measured", "err")
	var absErrs []float64
	row := func(kind, name string, v model.Validation) {
		e := v.ErrPct()
		absErrs = append(absErrs, math.Abs(e))
		fmt.Fprintf(&sb, "%-5s %-22s %12.6fs %12.6fs %+7.1f%%\n", kind, name, v.Predicted, v.Measured, e)
	}
	var names []string
	for n := range b.stats.Loops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := b.stats.Loops[n]
		row("loop", n, model.Validation{Predicted: l.Predicted, Measured: l.Time})
	}
	names = names[:0]
	for n := range b.stats.Chains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := b.stats.Chains[n]
		row("chain", n, model.Validation{Predicted: c.Predicted, Measured: c.Time})
	}
	if n := len(absErrs); n > 0 {
		var sum, max float64
		for _, e := range absErrs {
			sum += e
			if e > max {
				max = e
			}
		}
		fmt.Fprintf(&sb, "aggregate over %d rows: mean |err| %.1f%% max |err| %.1f%%\n", n, sum/float64(n), max)
	}
	if p := b.stats.Profile; p != nil {
		// The whole-run cross-check: the per-row predictions above should,
		// summed, track the measured critical path (= the makespan, since
		// the path tiles it). Loops executed inside chains are already in
		// their chain's Predicted, so only top-level loop rows are summed.
		var pred float64
		for n, l := range b.stats.Loops {
			if !strings.Contains(n, "/") {
				pred += l.Predicted
			}
		}
		for _, c := range b.stats.Chains {
			pred += c.Predicted
		}
		v := model.Validation{Predicted: pred, Measured: p.Path.Length}
		fmt.Fprintf(&sb, "%-5s %-22s %12.6fs %12.6fs %+7.1f%%\n",
			"crit", "path(makespan)", v.Predicted, v.Measured, v.ErrPct())
	}
	return sb.String()
}
