package cluster

import (
	"strings"
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// failureFixture builds a 2-rank backend with a node dat whose halo is
// dirty, ready for exchange-layer fault injection.
func failureFixture(t *testing.T) (*Backend, []exchangeSpec) {
	t.Helper()
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Block(m.NNodes, 2), NParts: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = e2n
	specs := []exchangeSpec{{dat: x, execDepth: 1, nonexecDepth: 1}}
	return b, specs
}

func expectPanicContaining(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

// TestTruncatedGroupedMessagePanics: a grouped message shorter than the
// importer's layout implies must be detected, not silently mis-unpacked.
func TestTruncatedGroupedMessagePanics(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	if len(res.bufs) == 0 {
		t.Fatal("fixture produced no messages")
	}
	buf := res.bufs[0]
	truncated := &sendBuf{from: buf.from, to: buf.to, datID: -1,
		vals: buf.vals[:len(buf.vals)-1]}
	expectPanicContaining(t, "truncated", func() {
		b.unpackGrouped(int(truncated.to), specs, []*sendBuf{truncated})
	})
}

// TestOversizedGroupedMessagePanics: trailing bytes mean sender and
// receiver disagree about the halo layout.
func TestOversizedGroupedMessagePanics(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	buf := res.bufs[0]
	oversized := &sendBuf{from: buf.from, to: buf.to, datID: -1,
		vals: append(append([]float64(nil), buf.vals...), 1.0)}
	expectPanicContaining(t, "trailing", func() {
		b.unpackGrouped(int(oversized.to), specs, []*sendBuf{oversized})
	})
}

// TestMissingGroupedMessagePanics: an expected neighbour that never sends.
func TestMissingGroupedMessagePanics(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, true)
	to := int(res.bufs[0].to)
	expectPanicContaining(t, "missing grouped message", func() {
		b.unpackGrouped(to, specs, nil)
	})
}

// TestWrongSizeSingleMessagePanics: a per-dat message whose payload does
// not match the import range.
func TestWrongSizeSingleMessagePanics(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, false)
	if len(res.bufs) == 0 {
		t.Fatal("fixture produced no messages")
	}
	var target *sendBuf
	for _, buf := range res.bufs {
		if len(buf.vals) > 1 {
			target = buf
			break
		}
	}
	if target == nil {
		t.Skip("no multi-value message to corrupt")
	}
	bad := &sendBuf{from: target.from, to: target.to, datID: target.datID,
		kind: target.kind, depth: target.depth, vals: target.vals[:len(target.vals)-1]}
	expectPanicContaining(t, "values, want", func() {
		b.unpackSingle(int(bad.to), bad)
	})
}

// TestForeignSingleMessagePanics: a message from a rank the receiver does
// not import from.
func TestForeignSingleMessagePanics(t *testing.T) {
	b, specs := failureFixture(t)
	res := b.doExchange(specs, false)
	buf := res.bufs[0]
	foreign := &sendBuf{from: buf.to, to: buf.to, datID: buf.datID,
		kind: buf.kind, depth: buf.depth, vals: buf.vals}
	expectPanicContaining(t, "unexpected message", func() {
		b.unpackSingle(int(foreign.to), foreign)
	})
}

// TestBeyondHaloDereferencePanics: executing an iteration whose map row
// reaches beyond the built halo must panic with a diagnostic rather than
// corrupt memory.
func TestBeyondHaloDereferencePanics(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	p := core.NewProgram()
	nodes := p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	b, err := New(Config{Prog: p, Primary: nodes,
		Assign: partition.Random(m.NNodes, 3, 5), NParts: 3, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := &core.Kernel{Name: "k", Fn: func(a [][]float64) {}}
	l := core.NewLoop(k, edges, core.ArgDat(x, 0, e2n, core.Read), core.ArgDat(x, 1, e2n, core.Read))
	// Find a rank with non-execute edges (never executed normally) and
	// force execution into that region.
	for r := 0; r < 3; r++ {
		sl := b.layouts[r].SetL(edges)
		if sl.NNonexec(1) == 0 {
			continue
		}
		expectPanicContaining(t, "beyond halo depth", func() {
			b.runLoopOnRank(r, l, int(sl.NonexecStart[0]), int(sl.NonexecStart[1]), nil)
		})
		return
	}
	t.Skip("no rank with non-execute edges in this partition")
}
