package cluster

import (
	"testing"

	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestVectorArgsMatchPerSlot: a loop written with a vector argument
// (OP_ALL) must produce the same result as the per-slot formulation, on the
// sequential backend and under distributed CA execution.
func TestVectorArgsMatchPerSlot(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	build := func() (*core.Program, *core.Set, *core.Map, *core.Dat, *core.Dat) {
		p := core.NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		edges := p.DeclSet(m.NEdges, "edges")
		e2n := p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
		src := p.DeclDat(nodes, 2, nil, "src")
		dst := p.DeclDat(nodes, 2, nil, "dst")
		for i := range src.Data {
			src.Data[i] = float64(i%9 - 4)
		}
		return p, nodes, e2n, src, dst
	}

	perSlotKernel := &core.Kernel{Name: "ps", Flops: 8, MemBytes: 64, Fn: func(a [][]float64) {
		d1, d2, s1, s2 := a[0], a[1], a[2], a[3]
		d1[0] += s1[0] - s2[1]
		d2[1] += s2[0] + s1[1]
	}}
	vecKernel := &core.Kernel{Name: "vec", Flops: 8, MemBytes: 64, Fn: func(a [][]float64) {
		// Vector args expand in slot order: a[0],a[1] = dst slots,
		// a[2],a[3] = src slots.
		d1, d2, s1, s2 := a[0], a[1], a[2], a[3]
		d1[0] += s1[0] - s2[1]
		d2[1] += s2[0] + s1[1]
	}}

	// Sequential reference with per-slot args.
	pRef, _, e2nRef, srcRef, dstRef := build()
	_ = pRef
	seq := core.NewSeq()
	seq.ParLoop(core.NewLoop(perSlotKernel, e2nRef.From,
		core.ArgDat(dstRef, 0, e2nRef, core.Inc), core.ArgDat(dstRef, 1, e2nRef, core.Inc),
		core.ArgDat(srcRef, 0, e2nRef, core.Read), core.ArgDat(srcRef, 1, e2nRef, core.Read)))

	// Sequential with vector args.
	pVec, _, e2nVec, srcVec, dstVec := build()
	_ = pVec
	seq2 := core.NewSeq()
	seq2.ParLoop(core.NewLoop(vecKernel, e2nVec.From,
		core.ArgDatVec(dstVec, e2nVec, core.Inc),
		core.ArgDatVec(srcVec, e2nVec, core.Read)))
	for i := range dstRef.Data {
		if dstVec.Data[i] != dstRef.Data[i] {
			t.Fatalf("seq vec dst[%d] = %g, want %g", i, dstVec.Data[i], dstRef.Data[i])
		}
	}

	// Distributed CA with vector args, inside a chain with a reader.
	pCl, nodes, e2nCl, srcCl, dstCl := build()
	b, err := New(Config{
		Prog: pCl, Primary: nodes,
		Assign: partition.KWay(m.NodeAdjacency(), 4), NParts: 4,
		Depth: 2, MaxChainLen: 2, CA: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reader := &core.Kernel{Name: "rd", Flops: 4, MemBytes: 48, Fn: func(a [][]float64) {
		a[0][0] += a[1][1] + a[2][0]
	}}
	b.ChainBegin("vec")
	b.ParLoop(core.NewLoop(vecKernel, e2nCl.From,
		core.ArgDatVec(dstCl, e2nCl, core.Inc),
		core.ArgDatVec(srcCl, e2nCl, core.Read)))
	b.ParLoop(core.NewLoop(reader, e2nCl.From,
		core.ArgDat(srcCl, 0, e2nCl, core.Inc),
		core.ArgDat(dstCl, 0, e2nCl, core.Read),
		core.ArgDat(dstCl, 1, e2nCl, core.Read)))
	b.ChainEnd()

	// Matching sequential run of the same chain.
	seqChain := core.NewSeq()
	pS, _, e2nS, srcS, dstS := build()
	_ = pS
	seqChain.ParLoop(core.NewLoop(vecKernel, e2nS.From,
		core.ArgDatVec(dstS, e2nS, core.Inc),
		core.ArgDatVec(srcS, e2nS, core.Read)))
	seqChain.ParLoop(core.NewLoop(reader, e2nS.From,
		core.ArgDat(srcS, 0, e2nS, core.Inc),
		core.ArgDat(dstS, 0, e2nS, core.Read),
		core.ArgDat(dstS, 1, e2nS, core.Read)))

	gotDst := b.GatherDat(dstCl)
	gotSrc := b.GatherDat(srcCl)
	for i := range dstS.Data {
		if gotDst[i] != dstS.Data[i] {
			t.Fatalf("CA vec dst[%d] = %g, want %g", i, gotDst[i], dstS.Data[i])
		}
	}
	for i := range srcS.Data {
		if gotSrc[i] != srcS.Data[i] {
			t.Fatalf("CA vec src[%d] = %g, want %g", i, gotSrc[i], srcS.Data[i])
		}
	}
}

func TestVectorArgValidation(t *testing.T) {
	p := core.NewProgram()
	nodes := p.DeclSet(3, "nodes")
	edges := p.DeclSet(2, "edges")
	e2n := p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2}, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	k := &core.Kernel{Name: "k", Fn: func(a [][]float64) {}}
	l := core.NewLoop(k, edges, core.ArgDatVec(x, e2n, core.Read))
	if l.NumViews() != 2 {
		t.Errorf("NumViews = %d, want 2", l.NumViews())
	}
	if s := core.ArgDatVec(x, e2n, core.Read).String(); s != "<e2n[*],OP_READ>x" {
		t.Errorf("vec String = %q", s)
	}
}
