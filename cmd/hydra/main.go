// Command hydra runs the Hydra-proxy application: the six published
// loop-chains of the paper's Tables 3-4 (weight, period, gradl, vflux,
// iflux, jacob) inside a 5-stage Runge-Kutta time-marching skeleton, under
// the sequential reference, the standard distributed OP2 back-end, or the
// communication-avoiding back-end.
//
// By default the CA back-end runs the paper's configured halo extensions
// (the Section 3.4 configuration file); -safe lets the inspector choose
// conservative extensions instead, and -config loads a custom file.
//
// Usage:
//
//	hydra -mesh-nodes 60000 -ranks 16 -backend ca -iters 20 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"op2ca/internal/ca"
	"op2ca/internal/chaincfg"
	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/hydra"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/obs"
	"op2ca/internal/partition"
	"op2ca/internal/supervise"
)

func main() {
	var (
		meshNodes   = flag.Int("mesh-nodes", 60000, "approximate node count")
		ranks       = flag.Int("ranks", 8, "simulated MPI ranks (ignored for -backend seq)")
		backendName = flag.String("backend", "ca", "backend: seq, op2 or ca")
		iters       = flag.Int("iters", 20, "time-marching iterations (the paper measures 20)")
		partName    = flag.String("partitioner", "rib", "partitioner: rib, rcb, kway or block")
		machName    = flag.String("machine", "archer2", "machine model: archer2, cirrus or laptop")
		cfgPath     = flag.String("config", "", "CA chain configuration file (default: built-in paper config)")
		safe        = flag.Bool("safe", false, "let the inspector pick conservative halo extensions")
		stats       = flag.Bool("stats", false, "print per-loop/per-chain statistics")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		explain     = flag.Bool("explain", false, "print each chain's inspection plan and exit")
		verify      = flag.Bool("verify", false, "compare final state against the sequential reference")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
		metricsPath = flag.String("metrics", "", "write Prometheus text metrics to this file (\"-\" for stdout)")
		modelCheck  = flag.Bool("model-check", false, "print Equation (1)/(3) predictions next to measured virtual times")
		profile     = flag.Bool("profile", false,
			"print the critical-path / communication-matrix / imbalance report (forces tracing; the run stays bit-identical)")
		autoTune = flag.Bool("autotune", false,
			"let the model-driven autotuner pick each chain's execution policy (requires -backend ca); results stay bit-identical to any static configuration")
		faultSpec = flag.String("faults", "",
			"deterministic fault-injection spec, e.g. drop=0.01,straggler=rank3:10x,seed=42 (see internal/faults); results stay bit-identical, virtual times include recovery")
		ckptFlag = flag.String("checkpoint", "",
			"periodic snapshots, e.g. every=5,path=ck.bin,keep=3: checkpoint the backend after every N iterations, rotating keep=K verified generations (requires -backend op2 or ca)")
		restorePath = flag.String("restore", "",
			"resume from a checkpoint file instead of running setup; completed iterations are skipped (requires -backend op2 or ca)")
		superviseFlag = flag.String("supervise", "",
			"self-healing supervised execution, e.g. on or budget=8,backoff=1,watchdog=50: catch injected crashes, exchange failures and no-progress stalls, restore from the newest valid checkpoint generation and resume (requires -backend op2 or ca; incompatible with -restore)")
	)
	flag.Parse()

	var ckpt checkpoint.Spec
	if *ckptFlag != "" {
		s, err := checkpoint.ParseSpec(*ckptFlag)
		if err != nil {
			fatal(err)
		}
		ckpt = s
	}
	svSpec, err := supervise.ParseSpec(*superviseFlag)
	if err != nil {
		fatal(err)
	}
	if (*ckptFlag != "" || *restorePath != "" || svSpec.Enabled) && *backendName == "seq" {
		fatal(fmt.Errorf("-checkpoint/-restore/-supervise need a distributed backend (op2 or ca)"))
	}
	if svSpec.Enabled && *restorePath != "" {
		fatal(fmt.Errorf("-supervise and -restore are incompatible: the supervisor recovers from the checkpoint ring itself"))
	}

	var tracer *obs.Tracer
	if *tracePath != "" || *profile {
		tracer = obs.New()
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		p, err := faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		plan = p
	}

	m := mesh.RotorForNodes(*meshNodes)
	app := hydra.New(m)

	if *explain {
		chains, _, err := chainSetup(*cfgPath, *safe)
		if err != nil {
			fatal(err)
		}
		for _, name := range hydra.ChainNames() {
			loops := app.ChainLoops(name)
			var over []int
			if cc := chains.Get(name); cc != nil {
				if over, err = cc.HEOverrides(len(loops)); err != nil {
					fatal(err)
				}
			}
			plan, err := ca.Inspect(name, loops, over)
			if err != nil {
				fmt.Printf("chain %s: %v\n", name, err)
				continue
			}
			fmt.Print(plan.Describe(loops))
		}
		return
	}
	fmt.Printf("mesh: %d nodes, %d edges, %d pedges, %d bnd, %d cbnd\n",
		m.NNodes, m.NEdges, m.NPedges, m.NBedges, m.NCbnd)

	var ring *checkpoint.Ring
	if ckpt.Enabled() {
		r, err := checkpoint.NewRing(ckpt)
		if err != nil {
			fatal(err)
		}
		ring = r
	}

	var b core.Backend
	var cb *cluster.Backend
	startIter := 0
	switch *backendName {
	case "seq":
		b = core.NewSeq()
	case "op2", "ca":
		mach, err := machineByName(*machName)
		if err != nil {
			fatal(err)
		}
		assign, err := assignment(m, *partName, *ranks)
		if err != nil {
			fatal(err)
		}
		chains, depth, err := chainSetup(*cfgPath, *safe)
		if err != nil {
			fatal(err)
		}
		if *autoTune && *backendName != "ca" {
			fmt.Fprintln(os.Stderr, "hydra: -autotune requires -backend ca; ignored")
			*autoTune = false
		}
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Nodes, Assign: assign, NParts: *ranks,
			Depth: depth, MaxChainLen: 6, CA: *backendName == "ca",
			Chains: chains, Machine: mach, Parallel: !*serial, Tracer: tracer, Faults: plan,
			AutoTune: *autoTune,
		}
		if svSpec.Enabled {
			// Supervised self-healing execution: the supervisor owns the
			// whole construct/run loop, restoring from the newest valid
			// checkpoint generation after each caught failure.
			runner := &supervise.Runner{
				Spec: svSpec, Plan: plan, Ring: ring, Tracer: tracer,
				Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
					start := 0
					var err error
					if st == nil {
						cb, err = cluster.New(ccfg)
					} else {
						cb, err = cluster.RestoreState(st, ccfg)
					}
					if err != nil {
						return err
					}
					sup.Adopt(cb)
					if st != nil {
						if _, err := fmt.Sscanf(st.Note, "iter=%d", &start); err != nil {
							return fmt.Errorf("checkpoint note %q is not an iteration marker: %w", st.Note, err)
						}
					}
					b = cb
					return runIters(b, cb, app, start, *iters, *backendName == "ca", ckpt, ring)
				},
			}
			sup, err := runner.Run()
			if err != nil {
				fatal(err)
			}
			sup.Finish(cb.Stats())
			if sv := cb.Stats().Supervise; sv.Restarts > 0 {
				fmt.Printf("supervise: recovered from %d failures (crash %d exchange %d watchdog %d), %d generations quarantined\n",
					sv.Restarts, sv.CrashRestarts, sv.ExchangeRestarts, sv.WatchdogTrips, sv.Quarantined)
			}
			break
		}
		if *restorePath != "" {
			f, err := os.Open(*restorePath)
			if err != nil {
				fatal(err)
			}
			var note string
			cb, note, err = cluster.Restore(f, ccfg)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if _, err := fmt.Sscanf(note, "iter=%d", &startIter); err != nil {
				fatal(fmt.Errorf("checkpoint note %q is not an iteration marker: %w", note, err))
			}
			fmt.Printf("restored from %s: setup + %d iterations already complete\n", *restorePath, startIter)
		} else {
			cb, err = cluster.New(ccfg)
			if err != nil {
				fatal(err)
			}
		}
		b = cb
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}

	chained := *backendName == "ca"
	if !svSpec.Enabled {
		crash := supervise.CatchCrash(func() {
			if err := runIters(b, cb, app, startIter, *iters, chained, ckpt, ring); err != nil {
				fatal(err)
			}
		})
		if crash != nil {
			fmt.Fprintf(os.Stderr, "hydra: injected crash of rank %d at exchange %d\n", crash.Rank, crash.Exchange)
			if ring != nil {
				if gens, err := ring.Generations(); err == nil && len(gens) > 0 {
					fmt.Fprintf(os.Stderr, "hydra: resume with -restore %s (drop the crash= clause), or rerun with -supervise on\n", gens[0].Path)
				}
			}
			os.Exit(3)
		}
	}
	fmt.Printf("backend %s: setup + %d iterations complete\n", b.Name(), *iters)
	if cb != nil {
		fmt.Printf("virtual time (slowest rank): %.6fs over %d ranks\n", cb.MaxClock(), cb.NParts())
		if plan != nil {
			fs := cb.Stats().Faults
			fmt.Printf("faults: %s -> drops %d corrupts %d delays %d retries %d giveups %d fallback_ungrouped %d fallback_perloop %d\n",
				plan.String(), fs.Drops, fs.Corrupts, fs.Delays, fs.Retries, fs.Giveups,
				fs.FallbackUngrouped, fs.FallbackPerLoop)
		}
		if *profile {
			// Attach the analysis to Stats before any report renders; the
			// full report prints here unless -stats already includes it.
			if p := cb.Profile(); p != nil && !*stats {
				fmt.Print(p.Report())
			}
		}
		if *stats {
			fmt.Print(cb.Stats().String())
		}
		if *autoTune && !*stats {
			fmt.Print(cb.Stats().AutoTune.Report())
		}
		if *modelCheck {
			fmt.Print(cb.ModelReport())
		}
		if err := writeObservability(tracer, *tracePath, *metricsPath, cb); err != nil {
			fatal(err)
		}
		if *verify {
			verifyAgainstSeq(cb, m, app, *iters, chained, *safe)
		}
	} else if *tracePath != "" || *metricsPath != "" || *modelCheck || *profile || plan != nil {
		fmt.Fprintln(os.Stderr, "hydra: -trace/-metrics/-model-check/-profile/-faults need a distributed backend (op2 or ca); ignored for seq")
	}
}

// writeObservability exports the trace and metrics files requested on the
// command line.
func writeObservability(tracer *obs.Tracer, tracePath, metricsPath string, cb *cluster.Backend) error {
	if tracePath != "" {
		if err := tracer.WriteChromeTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s (open in Perfetto or chrome://tracing)\n", tracer.Len(), tracePath)
	}
	if metricsPath != "" {
		w := os.Stdout
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		mw := obs.NewMetricsWriter(w)
		cb.Stats().WriteMetrics(mw)
		tracer.WriteSpanMetrics(mw)
		return mw.Flush()
	}
	return nil
}

// verifyAgainstSeq reruns the identical program sequentially and reports the
// worst relative difference of the primary state. Under the paper's
// configured halo extensions a small boundary-local deviation is expected
// (DESIGN.md 5b); safe mode must match to rounding.
func verifyAgainstSeq(cb *cluster.Backend, m *mesh.FV3D, app *hydra.App,
	iters int, chained, safe bool) {
	ref := hydra.New(m)
	seq := core.NewSeq()
	ref.RunSetup(seq, chained)
	for it := 0; it < iters; it++ {
		ref.RunIteration(seq, chained)
	}
	worst := 0.0
	for _, pair := range [][2]*core.Dat{{app.Qp, ref.Qp}, {app.Qo, ref.Qo}, {app.Res, ref.Res}} {
		got := cb.GatherDat(pair[0])
		want := pair[1].Data
		for i := range want {
			d := got[i] - want[i]
			if d < 0 {
				d = -d
			}
			den := want[i]
			if den < 0 {
				den = -den
			}
			if rel := d / (den + 1e-30); rel > worst {
				worst = rel
			}
		}
	}
	tol := 0.02 // published extensions perturb boundary values slightly
	if safe {
		tol = 1e-9
	}
	fmt.Printf("verify: max relative difference vs sequential reference = %.3e (tolerance %.0e)\n", worst, tol)
	if worst > tol {
		fmt.Println("verify: FAILED")
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

// chainSetup resolves the CA chain configuration and the halo depth the
// back-end must build.
func chainSetup(path string, safe bool) (*chaincfg.Config, int, error) {
	if safe {
		// No configured extensions: the inspector's conservative analysis
		// chooses; the weight/period chains need up to 5 shells.
		return nil, 5, nil
	}
	if path == "" {
		return hydra.MustPaperConfig(), 2, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	cfg, err := chaincfg.Parse(f)
	if err != nil {
		return nil, 0, err
	}
	// A custom file may pin deeper extensions; build generously.
	depth := 2
	for _, name := range cfg.Order {
		c := cfg.Chains[name]
		if c.MaxHE > depth {
			depth = c.MaxHE
		}
		for _, l := range c.Loops {
			if l.HE > depth {
				depth = l.HE
			}
		}
	}
	return cfg, depth, nil
}

// runIters drives the time-marching loop from iteration start: run setup on
// a fresh run, march, and snapshot through the checkpoint ring at the
// configured cadence.
func runIters(b core.Backend, cb *cluster.Backend, app *hydra.App,
	start, iters int, chained bool, ckpt checkpoint.Spec, ring *checkpoint.Ring) error {
	if start == 0 {
		app.RunSetup(b, chained)
	}
	for it := start; it < iters; it++ {
		app.RunIteration(b, chained)
		if ring != nil && ckpt.Enabled() && (it+1)%ckpt.Every == 0 {
			note := fmt.Sprintf("iter=%d", it+1)
			if _, err := ring.Write(func(w io.Writer) error {
				return cb.Checkpoint(w, note)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func machineByName(name string) (*machine.Machine, error) {
	switch name {
	case "archer2":
		return machine.ARCHER2(), nil
	case "cirrus":
		return machine.Cirrus(), nil
	case "laptop":
		return machine.Laptop(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

func assignment(m *mesh.FV3D, partitioner string, ranks int) (partition.Assignment, error) {
	switch partitioner {
	case "kway":
		return partition.KWay(m.NodeAdjacency(), ranks), nil
	case "rib":
		return partition.RIB(m.Coords, 3, ranks), nil
	case "rcb":
		return partition.RCB(m.Coords, 3, ranks), nil
	case "block":
		return partition.Block(m.NNodes, ranks), nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", partitioner)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra:", err)
	os.Exit(1)
}
