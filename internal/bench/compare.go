package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Thresholds maps table names to the maximum relative delta tolerated for
// numeric cells of that table. The zero value tolerates only float-format
// jitter (defaultTol); ParseThresholds builds one from a spec like
// "default=2%,table2=5%".
type Thresholds struct {
	Default float64
	Tables  map[string]float64
}

// defaultTol absorbs formatting noise (a re-rendered float) without
// tolerating any real perf movement. Deterministic runs reproduce cells
// exactly, so this is effectively "equal".
const defaultTol = 1e-6

// ParseThresholds parses "name=val,name=val" where val is either a
// fraction ("0.05") or a percentage ("5%"), and the name "default" sets
// the fallback for tables not named. An empty spec yields the strict
// defaults.
func ParseThresholds(spec string) (Thresholds, error) {
	th := Thresholds{Default: defaultTol, Tables: map[string]float64{}}
	if strings.TrimSpace(spec) == "" {
		return th, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return th, fmt.Errorf("threshold %q: want name=value", part)
		}
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		pct := strings.HasSuffix(val, "%")
		f, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
		if err != nil || f < 0 {
			return th, fmt.Errorf("threshold %q: bad value %q", part, val)
		}
		if pct {
			f /= 100
		}
		if name == "default" {
			th.Default = f
		} else {
			th.Tables[name] = f
		}
	}
	return th, nil
}

// For returns the tolerance for a named table.
func (t Thresholds) For(name string) float64 {
	if v, ok := t.Tables[name]; ok {
		return v
	}
	if t.Default == 0 && t.Tables == nil {
		return defaultTol
	}
	return t.Default
}

// Regression is one comparison failure: a numeric cell moved past its
// table's threshold, or a structural/exact field changed.
type Regression struct {
	Table    string  // table name, or "config" / "checksums" / "profiles"
	Where    string  // human-readable location within the table
	Old, New string  // the two values
	Delta    float64 // relative delta for numeric mismatches, 0 otherwise
}

func (r Regression) String() string {
	if r.Delta != 0 {
		return fmt.Sprintf("%s %s: %s -> %s (%+.2f%%)", r.Table, r.Where, r.Old, r.New, r.Delta*100)
	}
	return fmt.Sprintf("%s %s: %s -> %s", r.Table, r.Where, r.Old, r.New)
}

// CompareReport is the outcome of CompareSnapshots: every regression found,
// how many values were checked, and anything skipped (tables or keys
// present on only one side — reported, not failed, so snapshots taken with
// different experiment sets still compare their overlap).
type CompareReport struct {
	Regressions []Regression
	Compared    int
	Skipped     []string
}

// OK reports whether the comparison found no regressions.
func (r *CompareReport) OK() bool { return len(r.Regressions) == 0 }

func (r *CompareReport) String() string {
	var sb strings.Builder
	for _, reg := range r.Regressions {
		fmt.Fprintf(&sb, "REGRESSION %s\n", reg)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&sb, "skipped: %s\n", s)
	}
	if r.OK() {
		fmt.Fprintf(&sb, "OK: %d values compared, no regressions\n", r.Compared)
	} else {
		fmt.Fprintf(&sb, "FAIL: %d regressions over %d values compared\n", len(r.Regressions), r.Compared)
	}
	return sb.String()
}

// numericCell parses a table cell as a number, tolerating the suffixes the
// renderers use ("1.23x" speed-ups, "4.5%" gains).
func numericCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// relDelta is (new-old)/|old|, with an absolute fallback when old == 0.
func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return newV - oldV
	}
	return (newV - oldV) / math.Abs(oldV)
}

// CompareSnapshots diffs two result snapshots. Configuration fields,
// checksums and non-numeric cells must match exactly; numeric table cells
// may move within their table's threshold; the wall-clock seconds field is
// ignored. Tables are matched by name, rows by index, profiles by run
// label.
func CompareSnapshots(oldS, newS *Snapshot, th Thresholds) *CompareReport {
	r := &CompareReport{}
	exact := func(table, where, a, b string) {
		r.Compared++
		if a != b {
			r.Regressions = append(r.Regressions, Regression{Table: table, Where: where, Old: a, New: b})
		}
	}
	numeric := func(table, where string, a, b float64) {
		r.Compared++
		if d := relDelta(a, b); math.Abs(d) > th.For(table) {
			r.Regressions = append(r.Regressions, Regression{
				Table: table, Where: where,
				Old: strconv.FormatFloat(a, 'g', -1, 64), New: strconv.FormatFloat(b, 'g', -1, 64),
				Delta: d,
			})
		}
	}

	exact("config", "nodes8m", strconv.Itoa(oldS.Nodes8M), strconv.Itoa(newS.Nodes8M))
	exact("config", "nodes24m", strconv.Itoa(oldS.Nodes24M), strconv.Itoa(newS.Nodes24M))
	exact("config", "rankscale", fmt.Sprint(oldS.RankScale), fmt.Sprint(newS.RankScale))
	exact("config", "iters", strconv.Itoa(oldS.Iters), strconv.Itoa(newS.Iters))
	exact("config", "fault_spec", oldS.FaultSpec, newS.FaultSpec)

	newTables := map[string]*Result{}
	for i := range newS.Results {
		newTables[newS.Results[i].Name] = &newS.Results[i]
	}
	seen := map[string]bool{}
	for i := range oldS.Results {
		ot := &oldS.Results[i]
		nt, ok := newTables[ot.Name]
		if !ok {
			r.Regressions = append(r.Regressions, Regression{
				Table: ot.Name, Where: "table", Old: "present", New: "missing",
			})
			continue
		}
		seen[ot.Name] = true
		compareTable(r, ot, nt, th)
	}
	for _, nt := range newS.Results {
		if !seen[nt.Name] {
			r.Skipped = append(r.Skipped, fmt.Sprintf("table %s only in new snapshot", nt.Name))
		}
	}

	compareStringMaps(r, "checksums", oldS.Checksums, newS.Checksums, exact)
	compareProfiles(r, oldS.Profiles, newS.Profiles, th, exact, numeric)

	sort.Strings(r.Skipped)
	return r
}

func compareTable(r *CompareReport, ot, nt *Result, th Thresholds) {
	tol := th.For(ot.Name)
	if oh, nh := strings.Join(ot.Header, "|"), strings.Join(nt.Header, "|"); oh != nh {
		r.Regressions = append(r.Regressions, Regression{Table: ot.Name, Where: "header", Old: oh, New: nh})
		return
	}
	if len(ot.Rows) != len(nt.Rows) {
		r.Regressions = append(r.Regressions, Regression{
			Table: ot.Name, Where: "rows",
			Old: strconv.Itoa(len(ot.Rows)), New: strconv.Itoa(len(nt.Rows)),
		})
		return
	}
	for ri := range ot.Rows {
		or, nr := ot.Rows[ri], nt.Rows[ri]
		if len(or) != len(nr) {
			r.Regressions = append(r.Regressions, Regression{
				Table: ot.Name, Where: fmt.Sprintf("row %d width", ri),
				Old: strconv.Itoa(len(or)), New: strconv.Itoa(len(nr)),
			})
			continue
		}
		for ci := range or {
			where := fmt.Sprintf("row %d col %d", ri, ci)
			if ci < len(ot.Header) && ot.Header[ci] != "" {
				where = fmt.Sprintf("row %d (%s) col %q", ri, or[0], ot.Header[ci])
			}
			ov, ook := numericCell(or[ci])
			nv, nok := numericCell(nr[ci])
			r.Compared++
			switch {
			case ook && nok:
				if d := relDelta(ov, nv); math.Abs(d) > tol {
					r.Regressions = append(r.Regressions, Regression{
						Table: ot.Name, Where: where, Old: or[ci], New: nr[ci], Delta: d,
					})
				}
			default:
				if or[ci] != nr[ci] {
					r.Regressions = append(r.Regressions, Regression{
						Table: ot.Name, Where: where, Old: or[ci], New: nr[ci],
					})
				}
			}
		}
	}
}

func compareStringMaps(r *CompareReport, table string, oldM, newM map[string]string, exact func(table, where, a, b string)) {
	var keys []string
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nv, ok := newM[k]
		if !ok {
			r.Skipped = append(r.Skipped, fmt.Sprintf("%s %s only in old snapshot", table, k))
			continue
		}
		exact(table, k, oldM[k], nv)
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			r.Skipped = append(r.Skipped, fmt.Sprintf("%s %s only in new snapshot", table, k))
		}
	}
}

func compareProfiles(r *CompareReport, oldP, newP []ProfileRecord, th Thresholds,
	exact func(table, where, a, b string), numeric func(table, where string, a, b float64)) {
	const table = "profiles"
	newByRun := map[string]*ProfileRecord{}
	for i := range newP {
		newByRun[newP[i].Run] = &newP[i]
	}
	seen := map[string]bool{}
	for i := range oldP {
		op := &oldP[i]
		np, ok := newByRun[op.Run]
		if !ok {
			r.Skipped = append(r.Skipped, fmt.Sprintf("profile %q only in old snapshot", op.Run))
			continue
		}
		seen[op.Run] = true
		numeric(table, op.Run+" makespan_seconds", op.Makespan, np.Makespan)
		numeric(table, op.Run+" critpath_seconds", op.CritPath, np.CritPath)
		numeric(table, op.Run+" imbalance_ratio", op.Imbalance, np.Imbalance)
		var kinds []string
		for k := range op.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			if nv, ok := np.ByKind[k]; ok {
				numeric(table, fmt.Sprintf("%s critpath[%s]", op.Run, k), op.ByKind[k], nv)
			} else {
				r.Skipped = append(r.Skipped, fmt.Sprintf("profile %q kind %s only in old snapshot", op.Run, k))
			}
		}
		newComm := map[string]CommRecord{}
		for _, cc := range np.Comm {
			newComm[cc.Owner] = cc
		}
		for _, oc := range op.Comm {
			nc, ok := newComm[oc.Owner]
			if !ok {
				r.Skipped = append(r.Skipped, fmt.Sprintf("profile %q comm %s only in old snapshot", op.Run, oc.Owner))
				continue
			}
			exact(table, fmt.Sprintf("%s comm[%s] msgs", op.Run, oc.Owner),
				strconv.FormatInt(oc.Msgs, 10), strconv.FormatInt(nc.Msgs, 10))
			exact(table, fmt.Sprintf("%s comm[%s] bytes", op.Run, oc.Owner),
				strconv.FormatInt(oc.Bytes, 10), strconv.FormatInt(nc.Bytes, 10))
			numeric(table, fmt.Sprintf("%s comm[%s] wait_seconds", op.Run, oc.Owner), oc.WaitSeconds, nc.WaitSeconds)
		}
	}
	for _, np := range newP {
		if !seen[np.Run] {
			r.Skipped = append(r.Skipped, fmt.Sprintf("profile %q only in new snapshot", np.Run))
		}
	}
}
