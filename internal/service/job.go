package service

import (
	"time"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/supervise"
)

// State is a job lifecycle state. The machine is
//
//	queued -> running -> done | failed | cancelled
//
// with two loops back into the queue: running -> preempted -> running
// (cooperative cancellation, no supervise budget charged) and
// running -> queued (supervised restart after a recoverable failure).
// Preempted jobs wait in the queue like queued ones, but keep the
// distinct state so a status poll shows why they left their worker.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePreempted State = "preempted"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's lifecycle log, streamed as NDJSON by the
// events endpoint.
type Event struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	State  State     `json:"state"`
	Worker string    `json:"worker,omitempty"`
	Msg    string    `json:"msg,omitempty"`
}

// job is the service-internal record. The supervisor and ring are owned
// exclusively by whichever worker is executing the job (a job is on at
// most one worker at a time); every other field is guarded by the
// service mutex, with mirrors (restarts) for values the view needs while
// an attempt is in flight.
type job struct {
	id   string
	w    *workload
	sup  *supervise.Supervisor
	ring *checkpoint.Ring

	state       State
	worker      string   // worker executing now, or last to execute
	workers     []string // every worker that started an attempt, in order
	attempts    int
	preemptions int
	restarts    int // mirror of sup.Restarts(), updated at attempt end
	errMsg      string
	result      *Result
	events      []Event
	cancelled   bool // cancel intent: observed at the next exchange boundary
	preempt     bool // preempt intent: like cancel, but requeues
	backend     *cluster.Backend
	submitted   time.Time
	finished    time.Time
}

// JobView is the wire form of a job's status.
type JobView struct {
	ID          string     `json:"id"`
	Tenant      string     `json:"tenant"`
	App         string     `json:"app"`
	State       State      `json:"state"`
	Worker      string     `json:"worker,omitempty"`
	Workers     []string   `json:"workers,omitempty"`
	Attempts    int        `json:"attempts"`
	Preemptions int        `json:"preemptions"`
	Restarts    int        `json:"restarts"`
	Error       string     `json:"error,omitempty"`
	Submitted   time.Time  `json:"submitted"`
	Finished    *time.Time `json:"finished,omitempty"`
	Events      []Event    `json:"events"`
}
