// Package halo constructs the distributed-memory halo data structures of
// the paper's Section 3: per-rank local views of an OP2 program with owned
// elements, import/export execute halos (redundantly computed foreign
// elements) and import/export non-execute halos (read-only foreign
// elements), at halo depths 1..r (Figures 4-7), together with the local
// renumbering of maps and the neighbour-wise export lists from which both
// per-loop messages and the CA back-end's grouped messages (Figure 8) are
// packed.
//
// # Shells
//
// Ownership of the primary set comes from a partitioner; every other set
// inherits ownership through a map (an element is owned by the owner of its
// first map target). For one rank, halo shells grow outward from the owned
// region through the union adjacency induced by all maps:
//
//   - execute shell d (eeh/ieh of depth d): foreign elements, not yet
//     included, with a forward map entry into the depth-(d-1) closure.
//     Executing them redundantly produces correct values on closure
//     elements.
//   - non-execute shell d (enh/inh): foreign elements, not yet included,
//     that are map targets of execute-shell-d elements (and of owned
//     elements for d = 1). They are only ever read.
//
// Executing owned plus execute shells 1..h makes increment-accumulated data
// valid on all elements of shells <= h-1; that is the invariant the CA
// back-end's inspector (package ca) relies on.
//
// # Local numbering
//
// Per set, local indices are ordered [owned | exec shells 1..r | non-exec
// shells 1..r]. Owned elements are sorted by decreasing interior level
// (union-graph distance from the partition boundary) so that the iterations
// safe to execute while halo exchanges are in flight — the paper's "core" —
// form a prefix; CorePrefix(l) gives the prefix executable before the wait
// by the l-th loop of a chain. Shell elements are grouped by owning rank so
// each import is a contiguous copy.
package halo
