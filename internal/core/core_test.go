package core

import (
	"math"
	"testing"
)

func TestAccessModeString(t *testing.T) {
	cases := map[AccessMode]string{
		Read: "OP_READ", Write: "OP_WRITE", ReadWrite: "OP_RW",
		Inc: "OP_INC", Min: "OP_MIN", Max: "OP_MAX",
		AccessMode(42): "AccessMode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestAccessModeReadsWrites(t *testing.T) {
	type rw struct{ r, w bool }
	cases := map[AccessMode]rw{
		Read:      {true, false},
		Write:     {false, true},
		ReadWrite: {true, true},
		Inc:       {true, true},
		Min:       {true, true},
		Max:       {true, true},
	}
	for m, want := range cases {
		if m.Reads() != want.r || m.Writes() != want.w {
			t.Errorf("%v: Reads=%v Writes=%v, want %v %v", m, m.Reads(), m.Writes(), want.r, want.w)
		}
		if !m.Valid() {
			t.Errorf("%v should be valid", m)
		}
	}
	if AccessMode(-1).Valid() || AccessMode(6).Valid() {
		t.Error("out-of-range modes should be invalid")
	}
}

func TestProgramDeclarations(t *testing.T) {
	p := NewProgram()
	nodes := p.DeclSet(4, "nodes")
	edges := p.DeclSet(3, "edges")
	if nodes.ID != 0 || edges.ID != 1 {
		t.Fatalf("set IDs = %d,%d, want 0,1", nodes.ID, edges.ID)
	}
	e2n := p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 3}, "e2n")
	if got := e2n.Targets(1); got[0] != 1 || got[1] != 2 {
		t.Errorf("Targets(1) = %v, want [1 2]", got)
	}
	d := p.DeclDat(nodes, 2, nil, "x")
	if len(d.Data) != 8 {
		t.Errorf("auto-allocated dat has %d values, want 8", len(d.Data))
	}
	if d.ElemSize() != 16 {
		t.Errorf("ElemSize = %d, want 16", d.ElemSize())
	}
	d.Elem(2)[1] = 7
	if d.Data[5] != 7 {
		t.Error("Elem must alias underlying storage")
	}
	if p.SetByName("nodes") != nodes || p.MapByName("e2n") != e2n || p.DatByName("x") != d {
		t.Error("lookup by name failed")
	}
	if p.SetByName("none") != nil {
		t.Error("lookup of undeclared name should be nil")
	}
}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestProgramDeclarationErrors(t *testing.T) {
	p := NewProgram()
	nodes := p.DeclSet(4, "nodes")
	edges := p.DeclSet(3, "edges")
	expectPanic(t, "negative set size", func() { p.DeclSet(-1, "bad") })
	expectPanic(t, "duplicate set", func() { p.DeclSet(4, "nodes") })
	expectPanic(t, "nil set in map", func() { p.DeclMap(nil, nodes, 2, nil, "m") })
	expectPanic(t, "bad arity", func() { p.DeclMap(edges, nodes, 0, nil, "m") })
	expectPanic(t, "short values", func() { p.DeclMap(edges, nodes, 2, []int32{0, 1}, "m") })
	expectPanic(t, "out-of-range value", func() {
		p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 9, 2, 3}, "m")
	})
	ok := p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 3}, "e2n")
	expectPanic(t, "duplicate map", func() {
		p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 3}, "e2n")
	})
	_ = ok
	expectPanic(t, "nil set in dat", func() { p.DeclDat(nil, 1, nil, "d") })
	expectPanic(t, "bad dim", func() { p.DeclDat(nodes, 0, nil, "d") })
	expectPanic(t, "short data", func() { p.DeclDat(nodes, 2, make([]float64, 3), "d") })
	p.DeclDat(nodes, 1, nil, "d")
	expectPanic(t, "duplicate dat", func() { p.DeclDat(nodes, 1, nil, "d") })
}

func TestLoopValidation(t *testing.T) {
	p := NewProgram()
	nodes := p.DeclSet(4, "nodes")
	edges := p.DeclSet(3, "edges")
	cells := p.DeclSet(2, "cells")
	e2n := p.DeclMap(edges, nodes, 2, []int32{0, 1, 1, 2, 2, 3}, "e2n")
	c2n := p.DeclMap(cells, nodes, 2, []int32{0, 1, 2, 3}, "c2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	w := p.DeclDat(edges, 1, nil, "w")
	k := &Kernel{Name: "k", Fn: func(a [][]float64) {}}

	bad := []struct {
		name string
		loop Loop
	}{
		{"nil kernel", Loop{Set: edges, Args: nil}},
		{"nil set", Loop{Kernel: k}},
		{"invalid mode", Loop{Kernel: k, Set: edges, Args: []Arg{{Dat: x, Map: e2n, Idx: 0, Mode: AccessMode(9)}}}},
		{"nil global buffer", Loop{Kernel: k, Set: edges, Args: []Arg{{Idx: -1, Mode: Inc}}}},
		{"global RW", Loop{Kernel: k, Set: edges, Args: []Arg{ArgGbl(make([]float64, 1), ReadWrite)}}},
		{"dat Min", Loop{Kernel: k, Set: edges, Args: []Arg{ArgDat(x, 0, e2n, Min)}}},
		{"map from wrong set", Loop{Kernel: k, Set: nodes, Args: []Arg{ArgDat(x, 0, e2n, Read)}}},
		{"map target mismatch", Loop{Kernel: k, Set: edges, Args: []Arg{ArgDat(w, 0, e2n, Read)}}},
		{"slot out of range", Loop{Kernel: k, Set: edges, Args: []Arg{ArgDat(x, 2, e2n, Read)}}},
		{"direct bad idx", Loop{Kernel: k, Set: edges, Args: []Arg{{Dat: w, Idx: 0, Mode: Read}}}},
		{"direct wrong set", Loop{Kernel: k, Set: edges, Args: []Arg{ArgDatDirect(x, Read)}}},
	}
	for _, c := range bad {
		if err := c.loop.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
	good := NewLoop(k, edges,
		ArgDat(x, 0, e2n, Inc), ArgDat(x, 1, e2n, Inc), ArgDatDirect(w, Read))
	if err := good.Validate(); err != nil {
		t.Errorf("valid loop rejected: %v", err)
	}
	if !good.HasIndirection() {
		t.Error("HasIndirection should be true")
	}
	if good.HasGlobalReduction() {
		t.Error("HasGlobalReduction should be false")
	}
	red := NewLoop(k, edges, ArgGbl(make([]float64, 1), Inc))
	if !red.HasGlobalReduction() {
		t.Error("HasGlobalReduction should be true")
	}
	if red.HasIndirection() {
		t.Error("HasIndirection should be false for global-only loop")
	}
	_ = c2n
}

func TestArgString(t *testing.T) {
	p := NewProgram()
	nodes := p.DeclSet(2, "nodes")
	edges := p.DeclSet(1, "edges")
	e2n := p.DeclMap(edges, nodes, 2, []int32{0, 1}, "e2n")
	x := p.DeclDat(nodes, 1, nil, "x")
	if s := ArgDat(x, 1, e2n, Read).String(); s != "<e2n[1],OP_READ>x" {
		t.Errorf("indirect String = %q", s)
	}
	if s := ArgDatDirect(x, Inc).String(); s != "<ID,OP_INC>x" {
		t.Errorf("direct String = %q", s)
	}
	if s := ArgGbl(make([]float64, 1), Max).String(); s != "<GBL,OP_MAX>" {
		t.Errorf("global String = %q", s)
	}
}

// TestSeqTwoLoopChain reproduces the paper's Figure 2/3 two-loop chain on the
// Figure 1 mesh shape and checks the DSL execution against a hand-rolled
// C-style implementation of the same loops.
func TestSeqTwoLoopChain(t *testing.T) {
	const nnode, nedge, ncell = 9, 12, 4
	en := []int32{
		0, 1, 1, 2, 3, 4, 4, 5, 6, 7, 7, 8, // horizontal edges
		0, 3, 3, 6, 1, 4, 4, 7, 2, 5, 5, 8, // vertical edges
	}
	ec := []int32{
		0, 0, 1, 1, 0, 2, 1, 3, 2, 2, 3, 3,
		0, 2, 0, 2, 0, 2, 1, 3, 1, 3, 1, 3,
	}
	res := make([]float64, 2*nnode)
	pres := make([]float64, 2*nnode)
	cw := make([]float64, 4*ncell)
	flux := make([]float64, 2*nnode)
	for i := range pres {
		pres[i] = float64(i%7) - 2.5
	}
	for i := range cw {
		cw[i] = 0.25 * float64(i%5)
	}

	// Hand-rolled reference (Figure 2).
	refRes := make([]float64, len(res))
	refFlux := make([]float64, len(flux))
	for it := 0; it < nedge; it++ {
		m1, m2 := en[it*2], en[it*2+1]
		refRes[2*m1+0] += pres[2*m1+0] - pres[2*m1+1]
		refRes[2*m1+1] += pres[2*m2+0] - pres[2*m2+1]
		refRes[2*m2+0] += pres[2*m2+1] - pres[2*m2+0]
		refRes[2*m2+1] += pres[2*m1+1] - pres[2*m1+0]
	}
	for it := 0; it < nedge; it++ {
		m1, m2 := en[it*2], en[it*2+1]
		m3, m4 := ec[it*2], ec[it*2+1]
		refFlux[2*m1+0] += refRes[2*m1+0]*cw[4*m3+0] - refRes[2*m1+1]*cw[4*m3+1]
		refFlux[2*m1+1] += refRes[2*m2+1]*cw[4*m3+2] - refRes[2*m2+0]*cw[4*m3+3]
		refFlux[2*m2+0] += refRes[2*m2+1]*cw[4*m4+2] - refRes[2*m1+1]*cw[4*m4+3]
		refFlux[2*m2+1] += refRes[2*m1+0]*cw[4*m4+0] - refRes[2*m1+1]*cw[4*m4+1]
	}

	// OP2 version (Figure 3).
	p := NewProgram()
	nodes := p.DeclSet(nnode, "nodes")
	edges := p.DeclSet(nedge, "edges")
	cells := p.DeclSet(ncell, "cells")
	e2n := p.DeclMap(edges, nodes, 2, en, "e2n")
	e2c := p.DeclMap(edges, cells, 2, ec, "e2c")
	dres := p.DeclDat(nodes, 2, res, "res")
	dpres := p.DeclDat(nodes, 2, pres, "pres")
	dcw := p.DeclDat(cells, 4, cw, "cw")
	dflux := p.DeclDat(nodes, 2, flux, "flux")

	update := &Kernel{Name: "update", Fn: func(a [][]float64) {
		res1, res2, pres1, pres2 := a[0], a[1], a[2], a[3]
		res1[0] += pres1[0] - pres1[1]
		res1[1] += pres2[0] - pres2[1]
		res2[0] += pres2[1] - pres2[0]
		res2[1] += pres1[1] - pres1[0]
	}}
	edgeFlux := &Kernel{Name: "edge_flux", Fn: func(a [][]float64) {
		flux1, flux2, res1, res2, cw1, cw2 := a[0], a[1], a[2], a[3], a[4], a[5]
		flux1[0] += res1[0]*cw1[0] - res1[1]*cw1[1]
		flux1[1] += res2[1]*cw1[2] - res2[0]*cw1[3]
		flux2[0] += res2[1]*cw2[2] - res1[1]*cw2[3]
		flux2[1] += res1[0]*cw2[0] - res1[1]*cw2[1]
	}}

	b := NewSeq()
	b.ChainBegin("fig3")
	b.ParLoop(NewLoop(update, edges,
		ArgDat(dres, 0, e2n, Inc), ArgDat(dres, 1, e2n, Inc),
		ArgDat(dpres, 0, e2n, Read), ArgDat(dpres, 1, e2n, Read)))
	b.ParLoop(NewLoop(edgeFlux, edges,
		ArgDat(dflux, 0, e2n, Inc), ArgDat(dflux, 1, e2n, Inc),
		ArgDat(dres, 0, e2n, Read), ArgDat(dres, 1, e2n, Read),
		ArgDat(dcw, 0, e2c, Read), ArgDat(dcw, 1, e2c, Read)))
	b.ChainEnd()

	for i := range refRes {
		if math.Abs(refRes[i]-dres.Data[i]) > 1e-12 {
			t.Fatalf("res[%d] = %g, want %g", i, dres.Data[i], refRes[i])
		}
	}
	for i := range refFlux {
		if math.Abs(refFlux[i]-dflux.Data[i]) > 1e-12 {
			t.Fatalf("flux[%d] = %g, want %g", i, dflux.Data[i], refFlux[i])
		}
	}
	if b.LoopsRun != 2 || b.ItersRun != 2*nedge {
		t.Errorf("counters = %d loops, %d iters", b.LoopsRun, b.ItersRun)
	}
}

func TestSeqGlobalReduction(t *testing.T) {
	p := NewProgram()
	nodes := p.DeclSet(10, "nodes")
	x := p.DeclDat(nodes, 1, nil, "x")
	for i := 0; i < 10; i++ {
		x.Data[i] = float64(i)
	}
	sum := []float64{0}
	mn := []float64{math.Inf(1)}
	mx := []float64{math.Inf(-1)}
	k := &Kernel{Name: "reduce", Fn: func(a [][]float64) {
		v := a[0][0]
		a[1][0] += v
		if v < a[2][0] {
			a[2][0] = v
		}
		if v > a[3][0] {
			a[3][0] = v
		}
	}}
	NewSeq().ParLoop(NewLoop(k, nodes,
		ArgDatDirect(x, Read), ArgGbl(sum, Inc), ArgGbl(mn, Min), ArgGbl(mx, Max)))
	if sum[0] != 45 || mn[0] != 0 || mx[0] != 9 {
		t.Errorf("sum=%g min=%g max=%g, want 45 0 9", sum[0], mn[0], mx[0])
	}
}

func TestSeqChainMisuse(t *testing.T) {
	b := NewSeq()
	expectPanic(t, "end without begin", func() { b.ChainEnd() })
	b.ChainBegin("c")
	expectPanic(t, "nested chain", func() { b.ChainBegin("d") })
	p := NewProgram()
	nodes := p.DeclSet(1, "nodes")
	k := &Kernel{Name: "k", Fn: func(a [][]float64) {}}
	expectPanic(t, "reduction in chain", func() {
		b.ParLoop(NewLoop(k, nodes, ArgGbl(make([]float64, 1), Inc)))
	})
	b.ChainEnd()
}
