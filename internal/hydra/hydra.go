// Package hydra is a proxy for OP2-Hydra, the Rolls-Royce production RANS
// solver of the paper's Section 4.2. The real application (~100k lines of
// Fortran, ~500 parallel loops) is proprietary; this proxy reproduces what
// the communication-avoiding results depend on — the six published
// loop-chains of Tables 3 and 4 with their exact iteration sets, access
// descriptors and halo extensions, embedded in a 5-stage Runge-Kutta
// time-marching skeleton whose per-chain cost fractions follow the paper
// (vflux 18%, iflux 5%, gradl 8%, jacob 2% of total runtime) — with
// synthetic flux-like kernel arithmetic.
//
// Two chain configurations are provided. PaperConfig pins the published
// per-loop halo extensions of Tables 3-4 and is used for the performance
// reproduction (the production app's numerics tolerate the shallow
// extensions; see DESIGN.md). Safe mode (no configuration) lets the
// inspector deepen the weight and period chains until results are exact,
// and is what the correctness tests run.
package hydra

import (
	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/mesh"
)

// App is the Hydra-proxy program over a rotor mesh.
type App struct {
	Prog *core.Program

	Nodes  *core.Set
	Edges  *core.Set
	Pedges *core.Set
	Bnd    *core.Set
	Cbnd   *core.Set

	E2N  *core.Map
	P2N  *core.Map
	B2N  *core.Map
	CB2N *core.Map

	// Node data.
	Qo      *core.Dat // weights / old state, dim 6
	Vol     *core.Dat // control volumes (RW in the period chain)
	Qp      *core.Dat // primary state, dim 5
	Ql      *core.Dat // limiter state, dim 5
	Qmu     *core.Dat // eddy viscosity
	Qrg     *core.Dat
	Xp      *core.Dat // coordinates, dim 3 (never dirty)
	Jac     *core.Dat // block-Jacobi diagonal, dim 5
	Jaca    *core.Dat
	Res     *core.Dat // vflux residual, dim 5
	ViscRes *core.Dat // iflux residual, dim 5

	// Edge / boundary data (constant).
	Ew *core.Dat // edge weights, dim 3
	Bw *core.Dat // boundary weights
	Cw *core.Dat // centreline weights
}

// New declares the Hydra-proxy program over the rotor mesh. The mesh must
// be periodic (pedges present).
func New(m *mesh.FV3D) *App {
	a := &App{Prog: core.NewProgram()}
	a.Nodes = a.Prog.DeclSet(m.NNodes, "nodes")
	a.Edges = a.Prog.DeclSet(m.NEdges, "edges")
	a.Pedges = a.Prog.DeclSet(m.NPedges, "pedges")
	a.Bnd = a.Prog.DeclSet(m.NBedges, "bnd")
	a.Cbnd = a.Prog.DeclSet(m.NCbnd, "cbnd")
	a.E2N = a.Prog.DeclMap(a.Edges, a.Nodes, 2, m.EdgeNodes, "e2n")
	a.P2N = a.Prog.DeclMap(a.Pedges, a.Nodes, 2, m.PedgeNodes, "p2n")
	a.B2N = a.Prog.DeclMap(a.Bnd, a.Nodes, 1, m.BedgeNodes, "b2n")
	a.CB2N = a.Prog.DeclMap(a.Cbnd, a.Nodes, 1, m.CbndNodes, "cb2n")

	a.Qo = a.Prog.DeclDat(a.Nodes, 6, nil, "qo")
	a.Vol = a.Prog.DeclDat(a.Nodes, 1, append([]float64(nil), m.Volumes...), "vol")
	a.Qp = a.Prog.DeclDat(a.Nodes, 5, nil, "qp")
	a.Ql = a.Prog.DeclDat(a.Nodes, 5, nil, "ql")
	a.Qmu = a.Prog.DeclDat(a.Nodes, 1, nil, "qmu")
	a.Qrg = a.Prog.DeclDat(a.Nodes, 1, nil, "qrg")
	a.Xp = a.Prog.DeclDat(a.Nodes, 3, append([]float64(nil), m.Coords...), "xp")
	a.Jac = a.Prog.DeclDat(a.Nodes, 5, nil, "jac")
	a.Jaca = a.Prog.DeclDat(a.Nodes, 5, nil, "jaca")
	a.Res = a.Prog.DeclDat(a.Nodes, 5, nil, "res")
	a.ViscRes = a.Prog.DeclDat(a.Nodes, 5, nil, "viscres")

	a.Ew = a.Prog.DeclDat(a.Edges, 3, append([]float64(nil), m.EdgeWeights...), "ew")
	a.Bw = a.Prog.DeclDat(a.Bnd, 3, append([]float64(nil), m.BedgeWeights...), "bw")
	cw := make([]float64, m.NCbnd)
	for i := range cw {
		cw[i] = 0.5 + 0.25*float64(i%3)
	}
	a.Cw = a.Prog.DeclDat(a.Cbnd, 1, cw, "cw")

	// Initial state: smooth fields derived from coordinates.
	for n := 0; n < m.NNodes; n++ {
		x, y, z := m.Coords[3*n], m.Coords[3*n+1], m.Coords[3*n+2]
		for c := 0; c < 5; c++ {
			a.Qp.Data[n*5+c] = 1 + 0.1*x + 0.05*y*float64(c) - 0.02*z
			a.Ql.Data[n*5+c] = 0.5 + 0.02*z*float64(c+1)
		}
		for c := 0; c < 6; c++ {
			a.Qo.Data[n*6+c] = 1 + 0.01*float64(c)*x
		}
		a.Qmu.Data[n] = 0.01 + 0.001*y
		a.Qrg.Data[n] = 1 + 0.05*x*z
	}
	return a
}

// PaperConfig returns the paper's CA configuration file content for the six
// Hydra chains: the published per-loop halo extensions of Tables 3 and 4.
func PaperConfig() string {
	return `# OP2-Hydra loop-chains, ICPP 2023 Tables 3 and 4
chain weight maxhe=2
  loop sumbwts he=2
  loop periodsym he=1
  loop centreline he=2
  loop edgelength he=2
  loop periodicity he=1
chain period maxhe=2
  loop negflag he=2
  loop limxp he=2
  loop periodicity he=1
  loop limxp2 he=2
  loop periodicity2 he=1
  loop negflag2 he=1
chain gradl maxhe=2
  loop edgecon he=2
  loop period he=1
chain vflux maxhe=1
chain iflux maxhe=1
chain jacob maxhe=1
`
}

// MustPaperConfig parses PaperConfig.
func MustPaperConfig() *chaincfg.Config {
	cfg, err := chaincfg.ParseString(PaperConfig())
	if err != nil {
		panic("hydra: bad built-in config: " + err.Error())
	}
	return cfg
}
