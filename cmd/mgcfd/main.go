// Command mgcfd runs the MG-CFD mini-app (3-D unstructured multigrid
// finite-volume Euler solver) on a synthetic rotor mesh, optionally with
// the paper's synthetic loop-chains, under the sequential reference, the
// standard distributed OP2 back-end, or the communication-avoiding
// back-end.
//
// Usage:
//
//	mgcfd -mesh-nodes 100000 -ranks 16 -backend ca -nchains 8 -iters 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"op2ca/internal/checkpoint"
	"op2ca/internal/cluster"
	"op2ca/internal/cmdutil"
	"op2ca/internal/core"
	"op2ca/internal/mesh"
	"op2ca/internal/mgcfd"
	"op2ca/internal/supervise"
)

func main() {
	var (
		meshNodes   = flag.Int("mesh-nodes", 60000, "approximate finest-level node count")
		levels      = flag.Int("levels", 3, "multigrid levels")
		ranks       = flag.Int("ranks", 8, "simulated MPI ranks (ignored for -backend seq)")
		backendName = flag.String("backend", "ca", "backend: seq, op2 or ca")
		nchains     = flag.Int("nchains", 4, "synthetic chain pairs per iteration (0 disables)")
		iters       = flag.Int("iters", 10, "main-loop iterations")
		partName    = flag.String("partitioner", "kway", "partitioner: kway, rib, rcb or block")
		machName    = flag.String("machine", "archer2", "machine model: archer2, cirrus or laptop")
		stats       = flag.Bool("stats", false, "print per-loop/per-chain statistics")
		serial      = flag.Bool("serial", false, "run simulated ranks on one host thread")
		overlap     = flag.Bool("overlap", false, "run CA chains on the overlap-capable task-graph executor (results are bit-identical; virtual time drops)")
		verify      = flag.Bool("verify", false, "compare final state against the sequential reference")
		shared      cmdutil.RunFlags
	)
	shared.Register()
	flag.Parse()

	run, err := shared.Resolve("mgcfd", *backendName)
	if err != nil {
		fatal(err)
	}

	m := mesh.RotorForNodes(*meshNodes)
	h := mesh.NewHierarchy(m, *levels, true)
	app := mgcfd.New(h)
	syn := mgcfd.NewSynthetic(app)
	fmt.Printf("mesh: %d nodes, %d edges, %d multigrid levels\n",
		m.NNodes, m.NEdges, len(h.Levels))

	var b core.Backend
	var cb *cluster.Backend
	startIter := 0
	switch *backendName {
	case "seq":
		b = core.NewSeq()
	case "op2", "ca":
		mach, err := cmdutil.MachineByName(*machName)
		if err != nil {
			fatal(err)
		}
		assign, err := cmdutil.Assignment(m, *partName, *ranks)
		if err != nil {
			fatal(err)
		}
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Primary, Assign: assign, NParts: *ranks,
			Depth: 2, MaxChainLen: 2 * maxInt(*nchains, 1), CA: *backendName == "ca",
			Machine: mach, Parallel: !*serial, Tracer: run.Tracer, Faults: run.Plan,
			AutoTune: run.AutoTune, Overlap: *overlap,
		}
		if run.Supervise.Enabled {
			// Supervised self-healing execution: the supervisor owns the
			// whole construct/run loop, restoring from the newest valid
			// checkpoint generation after each caught failure.
			runner := &supervise.Runner{
				Spec: run.Supervise, Plan: run.Plan, Ring: run.Ring, Tracer: run.Tracer,
				Body: func(st *checkpoint.State, sup *supervise.Supervisor) error {
					start := 0
					var err error
					if st == nil {
						cb, err = cluster.New(ccfg)
					} else {
						cb, err = cluster.RestoreState(st, ccfg)
					}
					if err != nil {
						return err
					}
					sup.Adopt(cb)
					if st != nil {
						if start, err = cmdutil.ParseIterNote(st.Note); err != nil {
							return err
						}
					}
					b = cb
					return runIters(b, cb, app, syn, start, *iters, *nchains, *backendName == "ca", run.Ckpt, run.Ring)
				},
			}
			sup, err := runner.Run()
			if err != nil {
				fatal(err)
			}
			sup.Finish(cb.Stats())
			break
		}
		if run.Restore != "" {
			f, err := os.Open(run.Restore)
			if err != nil {
				fatal(err)
			}
			var note string
			cb, note, err = cluster.Restore(f, ccfg)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if startIter, err = cmdutil.ParseIterNote(note); err != nil {
				fatal(err)
			}
			fmt.Printf("restored from %s: %d iterations already complete\n", run.Restore, startIter)
		} else {
			cb, err = cluster.New(ccfg)
			if err != nil {
				fatal(err)
			}
		}
		b = cb
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}

	if !run.Supervise.Enabled {
		crash := supervise.CatchCrash(func() {
			if err := runIters(b, cb, app, syn, startIter, *iters, *nchains, *backendName == "ca", run.Ckpt, run.Ring); err != nil {
				fatal(err)
			}
		})
		if crash != nil {
			run.CrashExit(crash)
		}
	}
	res := app.Residual(b)
	fmt.Printf("backend %s: %d iterations, density L1 residual %.6e\n", b.Name(), *iters, res)
	if cb != nil {
		fmt.Printf("virtual time (slowest rank): %.6fs over %d ranks\n", cb.MaxClock(), cb.NParts())
		run.PrintRunSummary(cb)
		if run.Profile {
			// Attach the analysis to Stats before any report renders; the
			// full report prints here unless -stats already includes it.
			if p := cb.Profile(); p != nil && !*stats {
				fmt.Print(p.Report())
			}
		}
		if *stats {
			fmt.Print(cb.Stats().String())
		}
		if run.AutoTune && !*stats {
			fmt.Print(cb.Stats().AutoTune.Report())
		}
		if run.ModelCheck {
			fmt.Print(cb.ModelReport())
		}
		if err := run.WriteObservability(cb); err != nil {
			fatal(err)
		}
		if *verify {
			verifyAgainstSeq(cb, h, app, syn, *iters, *nchains, *backendName == "ca")
		}
	} else if run.Trace != "" || run.Metrics != "" || run.ModelCheck || run.Profile || run.Plan != nil {
		fmt.Fprintln(os.Stderr, "mgcfd: -trace/-metrics/-model-check/-profile/-faults need a distributed backend (op2 or ca); ignored for seq")
	}
}

// verifyAgainstSeq reruns the identical program sequentially and reports the
// worst relative difference of the finest-level state.
func verifyAgainstSeq(cb *cluster.Backend, h *mesh.Hierarchy, app *mgcfd.App,
	syn *mgcfd.Synthetic, iters, nchains int, chained bool) {
	ref := mgcfd.New(h)
	refSyn := mgcfd.NewSynthetic(ref)
	seq := core.NewSeq()
	ref.Init(seq)
	for it := 0; it < iters; it++ {
		if nchains > 0 {
			refSyn.Run(seq, nchains, chained)
		}
		ref.Cycle(seq)
	}
	got := cb.GatherDat(app.Levels[0].Vars)
	want := ref.Levels[0].Vars.Data
	worst := 0.0
	for i := range want {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		den := want[i]
		if den < 0 {
			den = -den
		}
		if rel := d / (den + 1e-30); rel > worst {
			worst = rel
		}
	}
	fmt.Printf("verify: max relative difference vs sequential reference = %.3e\n", worst)
	if worst > 1e-9 {
		fmt.Println("verify: FAILED (difference exceeds 1e-9)")
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

// runIters drives the main loop from iteration start: initialise on a fresh
// run, interleave synthetic chains with multigrid cycles, and snapshot
// through the checkpoint ring at the configured cadence.
func runIters(b core.Backend, cb *cluster.Backend, app *mgcfd.App, syn *mgcfd.Synthetic,
	start, iters, nchains int, chained bool, ckpt checkpoint.Spec, ring *checkpoint.Ring) error {
	if start == 0 {
		app.Init(b)
	}
	for it := start; it < iters; it++ {
		if nchains > 0 {
			syn.Run(b, nchains, chained)
		}
		app.Cycle(b)
		if ring != nil && ckpt.Enabled() && (it+1)%ckpt.Every == 0 {
			note := cmdutil.IterNote(it + 1)
			if _, err := ring.Write(func(w io.Writer) error {
				return cb.Checkpoint(w, note)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	cmdutil.Fatal("mgcfd", err)
}
