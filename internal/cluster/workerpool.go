package cluster

// workerpool.go is the persistent fork/join executor behind forEachRank.
// Ranks are independent between exchanges (they only touch rank-local
// state), so every parallel region — loop bodies, pack, unpack, plan
// application — is a fork at a rank range and a join at the next
// synchronisation point, the shape HPX-OP2 (arXiv:1703.09264) gives OP2's
// bulk-synchronous loops. Two properties distinguish the pool from the
// naive goroutine-per-rank fan-out it replaced:
//
//   - Bounded concurrency. The pool owns min(GOMAXPROCS, NParts)-1
//     long-lived worker goroutines (the dispatching goroutine is the last
//     executor); a fork hands out contiguous rank chunks from an atomic
//     cursor, so 1024 simulated ranks on 8 cores run as 8 OS-schedulable
//     workers pulling 32-rank chunks instead of 1024 short-lived goroutines
//     churned per fork point.
//
//   - Panic transparency. A panic on a worker goroutine — a typed
//     *ExchangeError from an unpack invariant, the halo-depth dereference
//     panic in runLoopOnRank, a *faults.CrashError crossing a fork — cannot
//     be recovered by the caller's deferred recover and would abort the
//     process with a raw goroutine dump. The pool captures the first panic
//     (value and worker stack), lets the join complete, and re-raises the
//     original value on the dispatching goroutine, so recover-based callers
//     (catchCrash in cmd/mgcfd and cmd/hydra, tests asserting on typed
//     panics) behave identically in serial and parallel modes.
//
// The contract of a forked function is unchanged: it must only touch state
// owned by its rank argument (plus read-only shared state published before
// the fork; the channel handoff gives the happens-before edge).

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// rankPool is a persistent set of worker goroutines executing rank ranges.
// One pool serves one Backend; forks never nest, so the pool owns a single
// reusable run descriptor and dispatch allocates nothing.
type rankPool struct {
	// workers is the executor count including the dispatching goroutine;
	// the pool spawns workers-1 background goroutines.
	workers int
	work    chan *poolRun
	stop    chan struct{}
	once    sync.Once
	run     poolRun
}

// poolRun is one fork: the function, the rank range handed out in
// contiguous chunks via the atomic cursor, and the first captured panic.
type poolRun struct {
	f      func(w, r int)
	nparts int64
	chunk  int64
	next   atomic.Int64
	wg     sync.WaitGroup

	mu         sync.Mutex
	panicVal   any
	panicStack []byte
}

// newRankPool builds a pool of the given executor count (>= 1) and spawns
// its background workers. Worker 0 is the dispatching goroutine; background
// workers take ids 1..workers-1 (the id indexes per-worker scratch).
func newRankPool(workers int) *rankPool {
	p := &rankPool{
		workers: workers,
		work:    make(chan *poolRun),
		stop:    make(chan struct{}),
	}
	for w := 1; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// worker is one background executor: it blocks between forks and joins the
// runs handed to it.
func (p *rankPool) worker(w int) {
	for {
		select {
		case <-p.stop:
			return
		case run := <-p.work:
			run.chunks(w)
			run.wg.Done()
		}
	}
}

// close stops the background workers. Idempotent; in-flight forks complete
// first because the dispatcher holds no new sends after the join.
func (p *rankPool) close() {
	p.once.Do(func() { close(p.stop) })
}

// forEach executes f(w, r) for every rank r in [0, nparts), fanning
// contiguous chunks out to the pool and joining before returning. w is the
// executing worker's id, indexing per-worker scratch. If any invocation
// panics, the first panic value is re-raised here, on the caller's
// goroutine, after all workers have joined.
func (p *rankPool) forEach(nparts int, f func(w, r int)) {
	run := &p.run
	run.f = f
	run.nparts = int64(nparts)
	// Chunks ~4x finer than the worker count balance straggler ranks
	// (fault-injected or surface-heavy partitions) without measurable
	// cursor contention; each chunk claim is one atomic add.
	chunk := int64(nparts) / int64(4*p.workers)
	if chunk < 1 {
		chunk = 1
	}
	run.chunk = chunk
	run.next.Store(0)
	run.panicVal = nil
	run.panicStack = nil
	helpers := p.workers - 1
	if nparts-1 < helpers {
		helpers = nparts - 1
	}
	run.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.work <- run
	}
	run.chunks(0)
	run.wg.Wait()
	run.f = nil
	if pv := run.panicVal; pv != nil {
		// Re-raise the first worker panic with its original value, so
		// typed panics (*ExchangeError, *faults.CrashError) recover
		// identically to serial execution. The worker-side stack is kept
		// in run.panicStack for diagnostics.
		panic(pv)
	}
}

// chunks claims and executes rank chunks until the range is exhausted. A
// panic inside f stops this worker's participation (remaining chunks drain
// to the other workers), records the first panic, and lets the join
// proceed.
func (run *poolRun) chunks(w int) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			run.mu.Lock()
			if run.panicVal == nil {
				run.panicVal = r
				run.panicStack = stack
			}
			run.mu.Unlock()
		}
	}()
	for {
		start := run.next.Add(run.chunk) - run.chunk
		if start >= run.nparts {
			return
		}
		end := start + run.chunk
		if end > run.nparts {
			end = run.nparts
		}
		for r := start; r < end; r++ {
			run.f(w, int(r))
		}
	}
}
