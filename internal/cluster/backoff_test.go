package cluster

import (
	"math"
	"strings"
	"testing"

	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/faults"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// TestBackoffFactorSaturates: the naive 1<<try expression wraps negative at
// try 63 (and is undefined beyond), which would subtract from virtual time
// instead of backing off. The factor must stay positive, finite and
// non-decreasing for every try the retry budget allows.
func TestBackoffFactorSaturates(t *testing.T) {
	if f := backoffFactor(0); f != 1 {
		t.Errorf("backoffFactor(0) = %g, want 1", f)
	}
	if f := backoffFactor(10); f != 1024 {
		t.Errorf("backoffFactor(10) = %g, want 1024", f)
	}
	prev := 0.0
	for try := 0; try <= maxRetryBudget; try++ {
		f := backoffFactor(try)
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("backoffFactor(%d) = %g, want positive finite", try, f)
		}
		if f < prev {
			t.Fatalf("backoffFactor(%d) = %g < backoffFactor(%d) = %g", try, f, try-1, prev)
		}
		prev = f
	}
	if got, want := backoffFactor(63), backoffFactor(62); got != want {
		t.Errorf("backoffFactor(63) = %g, want the try-62 saturation value %g", got, want)
	}
	// The exact boundary the old expression got wrong.
	one := int64(1)
	if old := float64(one << uint(63)); old >= 0 {
		t.Fatalf("test premise broken: 1<<63 as int64 should be negative, got %g", old)
	}
}

// retryFixture is a minimal valid configuration for New validation tests.
func retryFixture() (m *mesh.FV3D, p *core.Program, nodes *core.Set, assign partition.Assignment) {
	m = mesh.Rotor(6, 5, 4)
	p = core.NewProgram()
	nodes = p.DeclSet(m.NNodes, "nodes")
	edges := p.DeclSet(m.NEdges, "edges")
	p.DeclMap(edges, nodes, 2, m.EdgeNodes, "e2n")
	p.DeclDat(nodes, 1, nil, "x")
	assign = partition.Block(m.NNodes, 2)
	return
}

// TestMaxRetriesValidation: every way of configuring a retry budget —
// Config, fault plan, per-chain override — is bounded, so an absurd budget
// fails fast instead of exponentiating virtual time.
func TestMaxRetriesValidation(t *testing.T) {
	m, p, nodes, assign := retryFixture()
	_ = m
	base := Config{Prog: p, Primary: nodes, Assign: assign, NParts: 2, Depth: 1}

	cfg := base
	cfg.MaxRetries = maxRetryBudget
	if _, err := New(cfg); err != nil {
		t.Errorf("MaxRetries at the budget should be accepted: %v", err)
	}
	cfg.MaxRetries = maxRetryBudget + 1
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "MaxRetries") {
		t.Errorf("MaxRetries over the budget = %v, want validation error", err)
	}

	cfg = base
	cfg.Faults = &faults.Plan{Drop: 0.1, MaxRetries: maxRetryBudget + 1}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "maxretries") {
		t.Errorf("fault-plan maxretries over the budget = %v, want validation error", err)
	}

	chains, err := chaincfg.ParseString("chain big maxretries=2000\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.Chains = chains
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "maxretries") {
		t.Errorf("per-chain maxretries over the budget = %v, want validation error", err)
	}
}
