package cluster

import (
	"fmt"
	"math"
	"testing"

	"op2ca/internal/chaincfg"
	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// miniApp is a small but representative application over a rotor mesh:
// node data incremented from edges, read back from edges, synchronised over
// periodic edges, accumulated from boundary faces, and scaled directly.
// All data is integer-valued so distributed execution must match the
// sequential reference bit for bit despite reordered increments.
type miniApp struct {
	p                    *core.Program
	nodes, edges         *core.Set
	bedges, pedges       *core.Set
	e2n, b2n, p2n        *core.Map
	res, pres, flux, vol *core.Dat
	ew                   *core.Dat
}

func newMiniApp(m *mesh.FV3D) *miniApp {
	a := &miniApp{p: core.NewProgram()}
	a.nodes = a.p.DeclSet(m.NNodes, "nodes")
	a.edges = a.p.DeclSet(m.NEdges, "edges")
	a.bedges = a.p.DeclSet(m.NBedges, "bedges")
	a.pedges = a.p.DeclSet(m.NPedges, "pedges")
	a.e2n = a.p.DeclMap(a.edges, a.nodes, 2, m.EdgeNodes, "e2n")
	a.b2n = a.p.DeclMap(a.bedges, a.nodes, 1, m.BedgeNodes, "b2n")
	if m.NPedges > 0 {
		a.p2n = a.p.DeclMap(a.pedges, a.nodes, 2, m.PedgeNodes, "p2n")
	}
	a.res = a.p.DeclDat(a.nodes, 2, nil, "res")
	a.pres = a.p.DeclDat(a.nodes, 2, nil, "pres")
	a.flux = a.p.DeclDat(a.nodes, 2, nil, "flux")
	a.vol = a.p.DeclDat(a.nodes, 1, nil, "vol")
	a.ew = a.p.DeclDat(a.edges, 1, nil, "ew")
	// Deterministic small-integer data: exact in float64 arithmetic.
	for i := range a.pres.Data {
		a.pres.Data[i] = float64(i%7 - 3)
	}
	for i := range a.vol.Data {
		a.vol.Data[i] = float64(i%5 + 1)
	}
	for i := range a.ew.Data {
		a.ew.Data[i] = float64(i%3 + 1)
	}
	return a
}

var (
	kUpdate = &core.Kernel{Name: "update", Flops: 8, MemBytes: 64, Fn: func(a [][]float64) {
		res1, res2, pres1, pres2 := a[0], a[1], a[2], a[3]
		res1[0] += pres1[0] - pres1[1]
		res1[1] += pres2[0] - pres2[1]
		res2[0] += pres2[1] - pres2[0]
		res2[1] += pres1[1] - pres1[0]
	}}
	kFlux = &core.Kernel{Name: "edge_flux", Flops: 12, MemBytes: 96, Fn: func(a [][]float64) {
		flux1, flux2, res1, res2, ew := a[0], a[1], a[2], a[3], a[4]
		flux1[0] += res1[0] * ew[0]
		flux1[1] += res2[1] * ew[0]
		flux2[0] += res2[0] - res1[1]*ew[0]
		flux2[1] += res1[1] + res2[0]
	}}
	kPeriodic = &core.Kernel{Name: "periodic", Flops: 4, MemBytes: 32, Fn: func(a [][]float64) {
		qa, qb := a[0], a[1]
		s0 := qa[0] + qb[0]
		s1 := qa[1] + qb[1]
		qa[0], qb[0] = s0, s0
		qa[1], qb[1] = s1, s1
	}}
	kBnd = &core.Kernel{Name: "bnd_inc", Flops: 2, MemBytes: 24, Fn: func(a [][]float64) {
		a[0][0] += 2 * a[1][0]
	}}
	kScale = &core.Kernel{Name: "scale", Flops: 4, MemBytes: 48, Fn: func(a [][]float64) {
		a[0][0] = 2*a[0][0] - a[1][0]
		a[0][1] = 2*a[0][1] + a[1][0]
	}}
)

// run executes the mini-app's loop sequence against any backend:
// two time steps of [chain(update, flux); periodic sync; boundary
// accumulation; direct scale].
func (a *miniApp) run(b core.Backend, steps int, chain bool) {
	for t := 0; t < steps; t++ {
		if chain {
			b.ChainBegin("synth")
		}
		b.ParLoop(core.NewLoop(kUpdate, a.edges,
			core.ArgDat(a.res, 0, a.e2n, core.Inc), core.ArgDat(a.res, 1, a.e2n, core.Inc),
			core.ArgDat(a.pres, 0, a.e2n, core.Read), core.ArgDat(a.pres, 1, a.e2n, core.Read)))
		b.ParLoop(core.NewLoop(kFlux, a.edges,
			core.ArgDat(a.flux, 0, a.e2n, core.Inc), core.ArgDat(a.flux, 1, a.e2n, core.Inc),
			core.ArgDat(a.res, 0, a.e2n, core.Read), core.ArgDat(a.res, 1, a.e2n, core.Read),
			core.ArgDatDirect(a.ew, core.Read)))
		if chain {
			b.ChainEnd()
		}
		if a.p2n != nil {
			b.ParLoop(core.NewLoop(kPeriodic, a.pedges,
				core.ArgDat(a.flux, 0, a.p2n, core.ReadWrite),
				core.ArgDat(a.flux, 1, a.p2n, core.ReadWrite)))
		}
		b.ParLoop(core.NewLoop(kBnd, a.bedges,
			core.ArgDat(a.res, 0, a.b2n, core.Inc),
			core.ArgDatDirect(a.p.DatByName("bw"), core.Read)))
		b.ParLoop(core.NewLoop(kScale, a.nodes,
			core.ArgDatDirect(a.flux, core.ReadWrite),
			core.ArgDatDirect(a.vol, core.Read)))
	}
}

// seqResult runs the mini-app sequentially and returns the final dats.
func seqResult(m *mesh.FV3D, steps int) map[string][]float64 {
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	a.run(core.NewSeq(), steps, false)
	return map[string][]float64{
		"res": a.res.Data, "flux": a.flux.Data,
	}
}

func makeBW(n int) []float64 {
	bw := make([]float64, n)
	for i := range bw {
		bw[i] = float64(i%4 - 1)
	}
	return bw
}

// clusterResult runs the mini-app on a distributed backend.
func clusterResult(t *testing.T, m *mesh.FV3D, steps, nparts int, caMode, chain, parallel bool,
	assign partition.Assignment) (map[string][]float64, *Backend) {
	t.Helper()
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{
		Prog: a.p, Primary: a.nodes, Assign: assign, NParts: nparts,
		Depth: 2, MaxChainLen: 4, CA: caMode, Parallel: parallel,
		Machine: machine.ARCHER2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, steps, chain)
	return map[string][]float64{
		"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux),
	}, b
}

func compareExact(t *testing.T, name string, got, want map[string][]float64) {
	t.Helper()
	for key, w := range want {
		g := got[key]
		if len(g) != len(w) {
			t.Fatalf("%s: %s length %d, want %d", name, key, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: %s[%d] = %g, want %g", name, key, i, g[i], w[i])
			}
		}
	}
}

func TestStandardMatchesSeq(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	want := seqResult(m, 2)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{1, 2, 4, 7} {
		for pname, assign := range map[string]partition.Assignment{
			"kway":   partition.KWay(adj, nparts),
			"block":  partition.Block(m.NNodes, nparts),
			"random": partition.Random(m.NNodes, nparts, 99),
		} {
			got, _ := clusterResult(t, m, 2, nparts, false, false, false, assign)
			compareExact(t, pname, got, want)
		}
	}
}

func TestCAChainMatchesSeq(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	want := seqResult(m, 2)
	adj := m.NodeAdjacency()
	for _, nparts := range []int{1, 2, 4, 7} {
		assign := partition.KWay(adj, nparts)
		got, b := clusterResult(t, m, 2, nparts, true, true, false, assign)
		compareExact(t, "ca", got, want)
		cs := b.Stats().Chains["synth"]
		if cs == nil || cs.CAExecutions != 2 {
			t.Fatalf("nparts=%d: chain stats = %+v", nparts, cs)
		}
		if he := cs.HE; len(he) != 2 || he[0] != 2 || he[1] != 1 {
			t.Fatalf("nparts=%d: HE = %v, want [2 1]", nparts, he)
		}
	}
}

func TestChainFallbackWithoutCA(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	want := seqResult(m, 1)
	assign := partition.Block(m.NNodes, 3)
	got, b := clusterResult(t, m, 1, 3, false, true, false, assign)
	compareExact(t, "fallback", got, want)
	cs := b.Stats().Chains["synth"]
	if cs == nil || cs.CAExecutions != 0 || cs.Executions != 1 {
		t.Fatalf("chain stats = %+v", cs)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	assign := partition.KWay(m.NodeAdjacency(), 5)
	serial, _ := clusterResult(t, m, 2, 5, true, true, false, assign)
	parallel, _ := clusterResult(t, m, 2, 5, true, true, true, assign)
	compareExact(t, "parallel", parallel, serial)
}

// TestCAReducesMessages checks the headline communication effect: a CA chain
// sends one grouped message per neighbour pair instead of several per-dat
// messages per loop.
func TestCAReducesMessages(t *testing.T) {
	m := mesh.Rotor(10, 8, 6)
	assign := partition.KWay(m.NodeAdjacency(), 6)
	_, op2 := clusterResult(t, m, 3, 6, false, false, false, assign)
	_, cab := clusterResult(t, m, 3, 6, true, true, false, assign)

	op2Msgs := int64(0)
	for _, ls := range op2.Stats().Loops {
		op2Msgs += ls.Msgs
	}
	caMsgs := int64(0)
	for _, ls := range cab.Stats().Loops {
		caMsgs += ls.Msgs
	}
	for _, cs := range cab.Stats().Chains {
		caMsgs += cs.Msgs
	}
	if caMsgs >= op2Msgs {
		t.Fatalf("CA sent %d messages, OP2 sent %d; CA should send fewer", caMsgs, op2Msgs)
	}
}

func TestDirtyBitAvoidsRedundantExchanges(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{Prog: a.p, Primary: a.nodes,
		Assign: partition.Block(m.NNodes, 4), NParts: 4, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	read := core.NewLoop(kFlux, a.edges,
		core.ArgDat(a.flux, 0, a.e2n, core.Inc), core.ArgDat(a.flux, 1, a.e2n, core.Inc),
		core.ArgDat(a.res, 0, a.e2n, core.Read), core.ArgDat(a.res, 1, a.e2n, core.Read),
		core.ArgDatDirect(a.ew, core.Read))
	// First execution: res and ew halos are still valid from the initial
	// scatter, so no messages at all.
	b.ParLoop(read)
	if msgs := b.Stats().Loops["edge_flux"].Msgs; msgs != 0 {
		t.Fatalf("first read sent %d messages, want 0 (halos valid from scatter)", msgs)
	}
	// Dirty res, then read again: now an exchange must happen.
	b.ParLoop(core.NewLoop(kUpdate, a.edges,
		core.ArgDat(a.res, 0, a.e2n, core.Inc), core.ArgDat(a.res, 1, a.e2n, core.Inc),
		core.ArgDat(a.pres, 0, a.e2n, core.Read), core.ArgDat(a.pres, 1, a.e2n, core.Read)))
	b.ParLoop(read)
	if msgs := b.Stats().Loops["edge_flux"].Msgs; msgs == 0 {
		t.Fatal("read after increment sent no messages; dirty res should force an exchange")
	}
}

func TestGlobalReductionMatchesSeq(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	build := func() (*core.Program, *core.Set, *core.Dat) {
		p := core.NewProgram()
		nodes := p.DeclSet(m.NNodes, "nodes")
		x := p.DeclDat(nodes, 1, nil, "x")
		for i := range x.Data {
			x.Data[i] = float64(i%11 - 5)
		}
		return p, nodes, x
	}
	k := &core.Kernel{Name: "reduce", Fn: func(a [][]float64) {
		v := a[0][0]
		a[1][0] += v * v
		if v < a[2][0] {
			a[2][0] = v
		}
		if v > a[3][0] {
			a[3][0] = v
		}
	}}
	runOn := func(b core.Backend, p *core.Program, nodes *core.Set, x *core.Dat) (float64, float64, float64) {
		sum := []float64{0}
		mn := []float64{math.Inf(1)}
		mx := []float64{math.Inf(-1)}
		b.ParLoop(core.NewLoop(k, nodes, core.ArgDatDirect(x, core.Read),
			core.ArgGbl(sum, core.Inc), core.ArgGbl(mn, core.Min), core.ArgGbl(mx, core.Max)))
		return sum[0], mn[0], mx[0]
	}
	p, nodes, x := build()
	wsum, wmn, wmx := runOn(core.NewSeq(), p, nodes, x)

	p2, nodes2, x2 := build()
	b, err := New(Config{Prog: p2, Primary: nodes2, Assign: partition.Block(m.NNodes, 5), NParts: 5})
	if err != nil {
		t.Fatal(err)
	}
	gsum, gmn, gmx := runOn(b, p2, nodes2, x2)
	if gsum != wsum || gmn != wmn || gmx != wmx {
		t.Fatalf("distributed reduction = (%g,%g,%g), want (%g,%g,%g)", gsum, gmn, gmx, wsum, wmn, wmx)
	}
	_ = x
}

func TestGatherScatterRoundtrip(t *testing.T) {
	m := mesh.Rotor(5, 4, 4)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{Prog: a.p, Primary: a.nodes,
		Assign: partition.Block(m.NNodes, 3), NParts: 3})
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]float64, len(a.res.Data))
	for i := range fresh {
		fresh[i] = float64(i)
	}
	b.ScatterDat(a.res, fresh)
	got := b.GatherDat(a.res)
	for i := range fresh {
		if got[i] != fresh[i] {
			t.Fatalf("roundtrip res[%d] = %g, want %g", i, got[i], fresh[i])
		}
	}
}

func TestVirtualClocksAdvance(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	assign := partition.KWay(m.NodeAdjacency(), 4)
	_, b := clusterResult(t, m, 1, 4, false, false, false, assign)
	if b.MaxClock() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	for _, c := range b.Clocks() {
		if c <= 0 {
			t.Fatal("some rank's clock did not advance")
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for missing program")
	}
	p := core.NewProgram()
	nodes := p.DeclSet(4, "nodes")
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: []int32{0, 0, 0, 0}, NParts: 0}); err == nil {
		t.Error("expected error for NParts 0")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: []int32{0}, NParts: 1}); err == nil {
		t.Error("expected error for assignment length mismatch")
	}
	good := []int32{0, 0, 0, 0}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: good, NParts: 1, Depth: -1}); err == nil {
		t.Error("expected error for negative Depth")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: good, NParts: 1, MaxChainLen: -3}); err == nil {
		t.Error("expected error for negative MaxChainLen")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: []int32{0, 2, 0, 0}, NParts: 2}); err == nil {
		t.Error("expected error for assignment outside [0, NParts)")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: []int32{0, -1, 0, 0}, NParts: 2}); err == nil {
		t.Error("expected error for negative assignment")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: good, NParts: 1, Lazy: true}); err == nil {
		t.Error("expected error for Lazy without CA")
	}
	if _, err := New(Config{Prog: p, Primary: nodes, Assign: good, NParts: 1, Lazy: true, CA: true}); err != nil {
		t.Errorf("Lazy with CA should be accepted: %v", err)
	}
}

func TestChainDepthPanic(t *testing.T) {
	m := mesh.Rotor(5, 4, 4)
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{Prog: a.p, Primary: a.nodes,
		Assign: partition.Block(m.NNodes, 2), NParts: 2, Depth: 1, CA: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: chain needs depth 2, backend built with 1")
		}
	}()
	a.run(b, 1, true)
}

func TestChainConfigDisable(t *testing.T) {
	m := mesh.Rotor(6, 5, 4)
	cfg, err := chaincfg.ParseString("chain synth disable")
	if err != nil {
		t.Fatal(err)
	}
	a := newMiniApp(m)
	a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
	b, err := New(Config{Prog: a.p, Primary: a.nodes,
		Assign: partition.Block(m.NNodes, 3), NParts: 3, Depth: 2, MaxChainLen: 4,
		CA: true, Chains: cfg})
	if err != nil {
		t.Fatal(err)
	}
	a.run(b, 1, true)
	cs := b.Stats().Chains["synth"]
	if cs.CAExecutions != 0 {
		t.Fatalf("disabled chain ran with CA: %+v", cs)
	}
	want := seqResult(m, 1)
	got := map[string][]float64{"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}
	compareExact(t, "disabled", got, want)
}

// TestFloatBitReproducible: with inputs that are not exactly representable
// in binary (so any reordered accumulation flips low-order bits), every
// execution policy must still match the sequential reference bit for bit —
// data effects apply in the canonical global element order regardless of
// partitioning, chaining, halo depth or a mid-run policy switch. The
// integer-valued mini-app cannot see this class of bug; this is the float
// stress case behind the autotune and fault-injection checksum invariants.
func TestFloatBitReproducible(t *testing.T) {
	m := mesh.Rotor(8, 6, 5)
	const steps, nparts = 4, 5
	build := func() *miniApp {
		a := newMiniApp(m)
		bw := a.p.DeclDat(a.bedges, 1, makeBW(m.NBedges), "bw")
		for _, d := range []*core.Dat{a.pres, a.vol, a.ew, bw} {
			for i := range d.Data {
				d.Data[i] = d.Data[i]*0.1 + 0.01
			}
		}
		return a
	}
	sa := build()
	sa.run(core.NewSeq(), steps, false)
	want := map[string][]float64{"res": sa.res.Data, "flux": sa.flux.Data}
	for _, tc := range []struct {
		name                     string
		ca, chain, tune, overlap bool
	}{
		{"op2", false, false, false, false},
		{"op2-chained", false, true, false, false},
		{"ca", true, true, false, false},
		{"autotune", true, true, true, false},
		// Overlapped delivery moves only virtual time; the bit-identity
		// invariant must hold through the task-graph executor too, and
		// through the tuner's mid-run policy switches with overlapped
		// candidates in the mix.
		{"ca-overlap", true, true, false, true},
		{"autotune-overlap", true, true, true, true},
	} {
		// Every policy runs serially and through a forced multi-worker
		// pool: host-parallel dispatch must not perturb a single bit
		// either (kernels keep the canonical data-effect order; the pool
		// only changes which OS thread applies it).
		for _, workers := range []int{1, 4} {
			a := build()
			b, err := New(Config{
				Prog: a.p, Primary: a.nodes, Assign: partition.KWay(m.NodeAdjacency(), nparts),
				NParts: nparts, Depth: 2, MaxChainLen: 4, CA: tc.ca, AutoTune: tc.tune,
				Overlap: tc.overlap, Parallel: workers > 1, Machine: machine.ARCHER2(),
			})
			if err != nil {
				t.Fatal(err)
			}
			b.installPool(workers)
			a.run(b, steps, tc.chain)
			name := fmt.Sprintf("%s w=%d vs seq", tc.name, workers)
			compareExact(t, name, map[string][]float64{
				"res": b.GatherDat(a.res), "flux": b.GatherDat(a.flux)}, want)
			b.Close()
		}
	}
}
