// Modelstudy: explore the paper's analytic loop-chain model (Section 3.2,
// Equations (1)-(4)) without running any mesh: where does a chain profit
// from communication avoidance?
//
// The study sweeps the determinants the paper identifies — loop count,
// neighbour count, core size (strong scaling), and the redundant-compute
// overhead of deeper halos — and prints the modelled gain surface plus the
// break-even grouped-message size for each point.
//
//	go run ./examples/modelstudy
package main

import (
	"fmt"
	"math"

	"op2ca/internal/machine"
	"op2ca/internal/model"
)

func main() {
	mach := machine.ARCHER2()
	net := model.Net{L: mach.Latency, B: mach.Bandwidth, C: 2e-6}
	g := 40e-9 // seconds per iteration (a flux-like kernel on one EPYC core)

	fmt.Printf("analytic model study (%s: L=%.1fus, B=%.0fMB/s)\n\n",
		mach.Name, net.L*1e6, net.B/1e6)

	// Gain vs loop count and core size (the strong-scaling axis).
	fmt.Println("modelled CA gain% by loop count and per-rank core size")
	fmt.Println("(surface-scaled messages; CA halo = 2.2x OP2 halo, grouped message = 3x per-loop message)")
	cores := []float64{50000, 10000, 3000, 1000, 300}
	loops := []int{2, 4, 8, 16, 32}
	fmt.Printf("%-12s", "core\\loops")
	for _, n := range loops {
		fmt.Printf("%8d", n)
	}
	fmt.Println()
	for _, core := range cores {
		fmt.Printf("%-12.0f", core)
		for _, n := range loops {
			comp := model.Compare(op2Chain(n, core, g), caChain(n, core, g), net)
			fmt.Printf("%8.1f", comp.GainPct)
		}
		fmt.Println()
	}

	// Gain vs neighbour count at a fixed small core: message-count
	// reduction is the CA win, so more neighbours help.
	fmt.Println("\nmodelled CA gain% by neighbour count (core 1000, 16 loops)")
	for _, p := range []float64{2, 4, 8, 16, 32} {
		op2 := op2Chain(16, 1000, g)
		ca := caChain(16, 1000, g)
		for i := range op2 {
			op2[i].Neighbours = p
		}
		ca.Neighbours = p
		comp := model.Compare(op2, ca, net)
		fmt.Printf("  p = %4.0f: gain %6.1f%%\n", p, comp.GainPct)
	}

	// Break-even message size: how much redundant halo data can the
	// grouped message carry before CA stops paying?
	fmt.Println("\nbreak-even grouped-message size per neighbour (16 loops)")
	for _, core := range cores {
		op2 := op2Chain(16, core, g)
		ca := caChain(16, core, g)
		be := model.BreakEvenNeighbourBytes(op2, ca, net)
		fmt.Printf("  core %7.0f: %12.0f bytes\n", core, be)
	}

	fmt.Println("\nreading: gains demand small cores (high rank counts), long chains and many")
	fmt.Println("neighbours; big cores hide communication behind computation and CA's")
	fmt.Println("redundant halo work then makes it slower - the paper's gradl case.")
}

// surfaceBytes scales the per-neighbour message with the partition surface
// (volume^(2/3)), as halo sizes do on 3-D meshes.
func surfaceBytes(core float64) float64 { return 8 * math.Pow(core, 2.0/3) }

// op2Chain builds n identical standard-OP2 loop parameter sets.
func op2Chain(n int, core, g float64) []model.LoopParams {
	loops := make([]model.LoopParams, n)
	for i := range loops {
		loops[i] = model.LoopParams{
			G: g, CoreIters: core, HaloIters: 0.2 * core,
			NDats: 1, Neighbours: 8, MsgBytes: surfaceBytes(core),
		}
	}
	return loops
}

// caChain builds the CA equivalent: smaller cores, multi-level halo work,
// one grouped message.
func caChain(n int, core, g float64) model.ChainParams {
	ca := model.ChainParams{Neighbours: 8, GroupedBytes: 3 * surfaceBytes(core)}
	for i := 0; i < n; i++ {
		// The CA core shrinks to the deep interior; everything else —
		// the former core's boundary part plus the multi-level execute
		// halos — runs after the wait.
		ca.Loops = append(ca.Loops, model.LoopParams{
			G: g, CoreIters: 0.7 * core, HaloIters: (0.3 + 0.44) * core,
		})
	}
	return ca
}
