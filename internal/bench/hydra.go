package bench

import (
	"fmt"
	"strings"

	"op2ca/internal/ca"
	"op2ca/internal/cluster"
	"op2ca/internal/hydra"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

// hydraMeas is one chain's measurement under one back-end: virtual time and
// per-rank communication/iteration counters, normalised per execution.
type hydraMeas struct {
	time  float64
	comm  float64 // bytes sent per rank per execution
	pmr   float64 // p*m^r (CA only)
	core  float64
	halo  float64
	execs int
}

// hydraPoint holds all chains' measurements for one configuration.
type hydraPoint struct {
	ranks    int
	op2, cab map[string]hydraMeas
}

func (c Config) runHydraPoint(meshNodes, paperNodes int, mach *machine.Machine) hydraPoint {
	var ranks int
	if mach.GPU != nil {
		ranks = gpuRanksFor(paperNodes)
	} else {
		ranks = c.ranksFor(paperNodes, mach.RanksPerNode)
	}
	m := mesh.RotorForNodes(meshNodes)
	assign := partition.RIB(m.Coords, 3, ranks) // Hydra's default partitioner

	pt := hydraPoint{ranks: ranks, op2: map[string]hydraMeas{}, cab: map[string]hydraMeas{}}
	for _, caMode := range []bool{false, true} {
		mode := "op2"
		if caMode {
			mode = "ca"
		}
		label := fmt.Sprintf("hydra %s mesh=%d paper-nodes=%d ranks=%d (%s)",
			mode, meshNodes, paperNodes, ranks, mach.Name)
		app := hydra.New(m)
		ccfg := cluster.Config{
			Prog: app.Prog, Primary: app.Nodes, Assign: assign, NParts: ranks,
			Depth: 2, MaxChainLen: 6, CA: caMode, Chains: hydra.MustPaperConfig(),
			Machine: mach, Parallel: c.Parallel, Tracer: c.Tracer, Faults: c.Faults,
			AutoTune: c.AutoTune && caMode, Overlap: c.Overlap && caMode,
		}
		var rctx hydraResumeCtx
		b, start := c.resume(label, ccfg, &rctx)
		before := map[string]hydraMeas{}
		if b == nil {
			var err error
			b, err = cluster.New(ccfg)
			if err != nil {
				panic("bench: " + err.Error())
			}
			c.adopt(b)
			// Setup chains (weight, period) execute once; measure them
			// cumulatively. Per-iteration chains are measured after a warm-up
			// iteration, so first-execution clean halos do not skew the
			// communication counters.
			app.RunSetup(b, true)
			app.RunIteration(b, true) // warm-up
			rctx.Before = map[string]hydraMeasJSON{}
			for _, name := range hydra.ChainNames() {
				before[name] = rawChain(b, name)
				rctx.Before[name] = measJSONOf(before[name])
			}
		} else {
			for name, mj := range rctx.Before {
				before[name] = mj.meas()
			}
		}
		for it := start; it < c.Iters; it++ {
			app.RunIteration(b, true)
			c.tick(b, label, it+1, rctx)
		}
		dst := pt.op2
		if caMode {
			dst = pt.cab
		}
		for _, name := range hydra.ChainNames() {
			after := rawChain(b, name)
			execs := after.execs - before[name].execs
			if execs == 0 { // setup chain: single execution, cumulative
				after.execs = rawChainExecs(b, name)
				dst[name] = normalise(after, after.execs, ranks)
				continue
			}
			delta := hydraMeas{
				time: after.time - before[name].time,
				comm: after.comm - before[name].comm,
				pmr:  after.pmr,
				core: after.core - before[name].core,
				halo: after.halo - before[name].halo,
			}
			dst[name] = normalise(delta, execs, ranks)
		}
		c.observe(label, b)
	}
	return pt
}

// rawChain reads one chain's cumulative counters (CA stats or, for per-loop
// fallback, the chain-prefixed loop stats).
func rawChain(b *cluster.Backend, name string) hydraMeas {
	cs := b.Stats().Chains[name]
	if cs == nil {
		return hydraMeas{}
	}
	meas := hydraMeas{execs: cs.Executions, time: cs.Time}
	if cs.CAExecutions > 0 {
		meas.comm = float64(cs.Bytes)
		meas.pmr = float64(cs.MaxNeighbours) * float64(cs.MaxMsgBytes)
		meas.core = float64(cs.CoreIters)
		meas.halo = float64(cs.HaloIters)
		return meas
	}
	prefix := name + "/"
	for key, ls := range b.Stats().Loops {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		meas.comm += float64(ls.Bytes)
		meas.core += float64(ls.CoreIters)
		meas.halo += float64(ls.HaloIters)
	}
	return meas
}

func rawChainExecs(b *cluster.Backend, name string) int {
	if cs := b.Stats().Chains[name]; cs != nil {
		return cs.Executions
	}
	return 0
}

// normalise converts cumulative counters to per-execution, per-rank values.
func normalise(m hydraMeas, execs, ranks int) hydraMeas {
	if execs <= 0 {
		return hydraMeas{}
	}
	perExec := float64(execs)
	perRank := perExec * float64(ranks)
	return hydraMeas{
		time:  m.time / perExec,
		comm:  m.comm / perRank,
		pmr:   m.pmr,
		core:  m.core / perRank,
		halo:  m.halo / perRank,
		execs: execs,
	}
}

var (
	fig12Nodes  = []int{4, 16, 64, 128}
	fig13Nodes  = []int{1, 2, 4, 8, 16}
	table5Nodes = []int{4, 16, 64}
	// table5Chains matches the paper's Table 5 rows.
	table5Chains = []string{"weight", "period", "vflux", "gradl", "jacob"}
)

// figHydra renders Figure 12 (ARCHER2) or Figure 13 (Cirrus): per-chain
// OP2 vs CA times over node counts for both mesh classes.
func figHydra(c Config, mach *machine.Machine, nodes []int, title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Mesh", "Chain", "#Nodes", "#Ranks", "OP2 t(s)", "CA t(s)", "Gain%"},
		Notes: []string{
			"virtual time per chain execution (setup chains execute once; others once per iteration)",
			"CA runs the paper's configured halo extensions (Tables 3-4)",
		},
	}
	for _, mesh := range []struct {
		name string
		n    int
	}{{"8M", c.Nodes8M}, {"24M", c.Nodes24M}} {
		for _, nn := range nodes {
			pt := c.runHydraPoint(mesh.n, nn, mach)
			for _, chain := range hydra.ChainNames() {
				o, a := pt.op2[chain], pt.cab[chain]
				t.Rows = append(t.Rows, []string{
					mesh.name, chain, fmt.Sprint(nn), fmt.Sprint(pt.ranks),
					f6(o.time), f6(a.time), f2(gain(o.time, a.time)),
				})
			}
		}
	}
	return t
}

// Fig12 regenerates Figure 12: Hydra chains on ARCHER2.
func Fig12(c Config) *Table {
	return figHydra(c, machine.ARCHER2(), fig12Nodes,
		"Figure 12: Hydra loop-chains on ARCHER2 (8M and 24M class meshes)")
}

// Fig13 regenerates Figure 13: Hydra chains on Cirrus.
func Fig13(c Config) *Table {
	return figHydra(c, machine.Cirrus(), fig13Nodes,
		"Figure 13: Hydra loop-chains on Cirrus V100 cluster (8M and 24M class meshes)")
}

// Table5 regenerates the paper's Table 5: Hydra model components on the
// 8M-class mesh on ARCHER2.
func Table5(c Config) *Table {
	t := &Table{
		Title: "Table 5: Hydra loop-chains on ARCHER2, 8M-class mesh - model components",
		Header: []string{"Chain", "#Nodes", "OP2 comm B", "OP2 S^c", "OP2 S^1",
			"CA p*m^r", "CA S^c", "CA S^h", "LC Gain%", "CommReduc%", "CompInc%"},
		Notes: []string{
			"per rank, per chain execution; comm = measured halo bytes sent",
		},
	}
	for _, nn := range table5Nodes {
		pt := c.runHydraPoint(c.Nodes8M, nn, machine.ARCHER2())
		for _, chain := range table5Chains {
			o, a := pt.op2[chain], pt.cab[chain]
			commRed := 0.0
			if o.comm > 0 {
				commRed = (o.comm - a.comm) / o.comm * 100
			}
			compInc := 0.0
			if tot := o.core + o.halo; tot > 0 {
				compInc = (a.core + a.halo - tot) / tot * 100
			}
			t.Rows = append(t.Rows, []string{
				chain, fmt.Sprint(nn),
				f2(o.comm), f2(o.core), f2(o.halo),
				f2(a.pmr), f2(a.core), f2(a.halo),
				f2(gain(o.time, a.time)), f2(commRed), f2(compInc),
			})
		}
	}
	return t
}

// Table3and4 regenerates Tables 3 and 4: the six chains' per-loop halo
// extensions, as the inspector computes them under the paper configuration.
func Table3and4(c Config) *Table {
	t := &Table{
		Title:  "Tables 3 and 4: Hydra loop-chain halo extensions (HE_l)",
		Header: []string{"Chain", "Loop", "Iteration set", "HE_l (Alg 3)", "HE_l (configured)"},
		Notes: []string{
			"configured values come from the paper's CA configuration file (Section 3.4)",
		},
	}
	app := hydra.New(mesh.Rotor(6, 5, 4))
	cfg := hydra.MustPaperConfig()
	for _, chain := range hydra.ChainNames() {
		loops := app.ChainLoops(chain)
		alg3 := ca.CalcHaloLayers(loops)
		he := alg3
		if cc := cfg.Get(chain); cc != nil {
			over, err := cc.HEOverrides(len(loops))
			if err != nil {
				panic("bench: " + err.Error())
			}
			plan, err := ca.Inspect(chain, loops, over)
			if err != nil {
				panic("bench: " + err.Error())
			}
			he = plan.HE
		}
		for i, l := range loops {
			t.Rows = append(t.Rows, []string{
				chain, l.Kernel.Name, l.Set.Name,
				fmt.Sprint(alg3[i]), fmt.Sprint(he[i]),
			})
		}
	}
	return t
}

// Experiments maps experiment names to their runners, for the CLI and
// benchmarks.
func Experiments() map[string]func(Config) *Table {
	return map[string]func(Config) *Table{
		"table2":              Table2,
		"fig10":               Fig10,
		"fig11":               Fig11,
		"table3-4":            Table3and4,
		"fig12":               Fig12,
		"fig13":               Fig13,
		"table5":              Table5,
		"ablation-depth":      AblationDepth,
		"ablation-group":      AblationGrouping,
		"ablation-partition":  AblationPartitioner,
		"ablation-gpu-launch": AblationGPULaunch,
		"ablation-gpudirect":  AblationGPUDirect,
		"halo-profile":        HaloProfile,
		"overlap":             OverlapStudy,
	}
}

// ExperimentOrder lists experiment names in paper order, ablations last.
func ExperimentOrder() []string {
	return []string{"table2", "fig10", "fig11", "table3-4", "fig12", "fig13", "table5",
		"ablation-depth", "ablation-group", "ablation-partition", "ablation-gpu-launch", "ablation-gpudirect", "halo-profile",
		"overlap"}
}
