// Lazy: automatic loop-chain detection — the paper's stated future work
// ("We will also move to further automate the code-gen process with
// lazy-evaluation").
//
// The application below issues plain op_par_loops with no chain
// annotations at all. In lazy mode the back-end queues loops until a
// synchronisation point (a global reduction, a data observation, or the
// queue capacity), inspects the queued sequence with Algorithm 3, and
// executes it as a communication-avoiding chain when the dependencies
// allow — falling back to per-loop execution otherwise. The example
// compares eager OP2, hand-chained CA, and lazy CA on the same program and
// verifies all three produce identical results.
//
//	go run ./examples/lazy
package main

import (
	"fmt"
	"os"

	"op2ca/internal/cluster"
	"op2ca/internal/core"
	"op2ca/internal/machine"
	"op2ca/internal/mesh"
	"op2ca/internal/partition"
)

var (
	kUpdate = &core.Kernel{Name: "update", Flops: 20, MemBytes: 240,
		Fn: func(a [][]float64) {
			res1, res2, pres1, pres2 := a[0], a[1], a[2], a[3]
			for i := range res1 {
				res1[i] += 0.05 * (pres1[i] - pres2[i])
				res2[i] += 0.05 * (pres2[i] - pres1[i])
			}
		}}
	kFlux = &core.Kernel{Name: "flux", Flops: 30, MemBytes: 280,
		Fn: func(a [][]float64) {
			flux1, flux2, res1, res2 := a[0], a[1], a[2], a[3]
			for i := range flux1 {
				f := 0.5 * (res1[i] + res2[i])
				flux1[i] -= f
				flux2[i] += f
			}
		}}
	kNorm = &core.Kernel{Name: "norm", Flops: 2, MemBytes: 48,
		Fn: func(a [][]float64) {
			for i := range a[0] {
				a[1][0] += a[0][i] * a[0][i]
			}
		}}
)

type app struct {
	p               *core.Program
	nodes, edges    *core.Set
	e2n             *core.Map
	res, pres, flux *core.Dat
}

func newApp(m *mesh.FV3D) *app {
	a := &app{p: core.NewProgram()}
	a.nodes = a.p.DeclSet(m.NNodes, "nodes")
	a.edges = a.p.DeclSet(m.NEdges, "edges")
	a.e2n = a.p.DeclMap(a.edges, a.nodes, 2, m.EdgeNodes, "e2n")
	a.res = a.p.DeclDat(a.nodes, 3, nil, "res")
	a.pres = a.p.DeclDat(a.nodes, 3, nil, "pres")
	a.flux = a.p.DeclDat(a.nodes, 3, nil, "flux")
	for i := range a.pres.Data {
		a.pres.Data[i] = float64(i%11 - 5)
	}
	return a
}

// run issues 3 iterations of [update, flux, update, flux, norm]: plain
// loops, no chain annotations. explicit=true wraps the four halo loops in
// a hand-written chain for the comparison run.
func (a *app) run(b core.Backend, explicit bool) float64 {
	var norm float64
	for t := 0; t < 3; t++ {
		if explicit {
			b.ChainBegin("hand")
		}
		for rep := 0; rep < 2; rep++ {
			b.ParLoop(core.NewLoop(kUpdate, a.edges,
				core.ArgDat(a.res, 0, a.e2n, core.Inc), core.ArgDat(a.res, 1, a.e2n, core.Inc),
				core.ArgDat(a.pres, 0, a.e2n, core.Read), core.ArgDat(a.pres, 1, a.e2n, core.Read)))
			b.ParLoop(core.NewLoop(kFlux, a.edges,
				core.ArgDat(a.flux, 0, a.e2n, core.Inc), core.ArgDat(a.flux, 1, a.e2n, core.Inc),
				core.ArgDat(a.res, 0, a.e2n, core.Read), core.ArgDat(a.res, 1, a.e2n, core.Read)))
		}
		if explicit {
			b.ChainEnd()
		}
		sum := []float64{0}
		b.ParLoop(core.NewLoop(kNorm, a.nodes,
			core.ArgDatDirect(a.flux, core.Read), core.ArgGbl(sum, core.Inc)))
		norm = sum[0]
	}
	return norm
}

func main() {
	m := mesh.RotorForNodes(24000)
	assign := partition.KWay(m.NodeAdjacency(), 32)
	fmt.Printf("lazy-evaluation demo: %d nodes, %d edges, 32 ranks\n\n", m.NNodes, m.NEdges)

	type mode struct {
		name     string
		cfg      cluster.Config
		explicit bool
	}
	modes := []mode{
		{"eager OP2", cluster.Config{}, false},
		{"hand-chained CA", cluster.Config{CA: true}, true},
		{"lazy CA", cluster.Config{CA: true, Lazy: true}, false},
	}
	var norms []float64
	for _, md := range modes {
		a := newApp(m)
		cfg := md.cfg
		cfg.Prog, cfg.Primary, cfg.Assign, cfg.NParts = a.p, a.nodes, assign, 32
		cfg.Depth, cfg.MaxChainLen = 2, 4
		cfg.Machine = machine.ARCHER2()
		cfg.Parallel = true
		b, err := cluster.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		norm := a.run(b, md.explicit)
		norms = append(norms, norm)
		msgs := int64(0)
		for _, ls := range b.Stats().Loops {
			msgs += ls.Msgs
		}
		for _, cs := range b.Stats().Chains {
			msgs += cs.Msgs
		}
		auto := ""
		if cs := b.Stats().Chains["lazy"]; cs != nil {
			auto = fmt.Sprintf("  (auto-detected %d CA chains)", cs.CAExecutions)
		}
		fmt.Printf("%-16s: norm %.9e, %4d messages, virtual time %.6fs%s\n",
			md.name, norm, msgs, b.MaxClock(), auto)
	}

	for _, n := range norms[1:] {
		if n != norms[0] {
			fmt.Println("MISMATCH between execution modes")
			os.Exit(1)
		}
	}
	fmt.Println("\nall three execution modes agree bit for bit")
}
