package analysis

import (
	"math"
	"strings"
	"testing"

	"op2ca/internal/obs"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }

// TestTwoRankTwoLoopChainKnownPath hand-builds the DAG of a two-rank CA
// chain "c" over loops k1, k2. Rank 0 packs, computes and sends two
// serialised messages to rank 1; rank 1 computes its core, waits on both
// messages and runs the redundant halo loops. The longest path is known
// exactly: r1's halo work <- the second message's arrival <- r0's NIC
// serialisation <- r0's pack.
func TestTwoRankTwoLoopChainKnownPath(t *testing.T) {
	spans := []obs.Span{
		{Rank: 0, Kind: obs.Pack, Name: "c", Begin: 0, End: 1, Bytes: 150},
		{Rank: 0, Kind: obs.Compute, Name: "k1", Begin: 1, End: 5},
		{Rank: 0, Kind: obs.Compute, Name: "k2", Begin: 5, End: 8},
		{Rank: 0, Kind: obs.Send, Name: "c", Begin: 1, End: 6, Bytes: 100},
		{Rank: 0, Kind: obs.Send, Name: "c", Begin: 6, End: 8, Bytes: 50},
		{Rank: 1, Kind: obs.Compute, Name: "k1", Begin: 1, End: 3},
		{Rank: 1, Kind: obs.Compute, Name: "k2", Begin: 3, End: 5},
		{Rank: 1, Kind: obs.Wait, Name: "c", Begin: 5, End: 6, Bytes: 100},
		{Rank: 1, Kind: obs.Wait, Name: "c", Begin: 5, End: 8, Bytes: 50},
		{Rank: 1, Kind: obs.Redundant, Name: "k1", Begin: 8, End: 9},
		{Rank: 1, Kind: obs.Redundant, Name: "k2", Begin: 9, End: 10},
	}
	edges := []obs.Edge{
		{Kind: obs.EdgeMsg, From: 0, To: 1, Name: "c", Post: 1, Begin: 1, End: 6, Ready: 5, Bytes: 100},
		{Kind: obs.EdgeMsg, From: 0, To: 1, Name: "c", Post: 1, Begin: 6, End: 8, Ready: 5, Bytes: 50},
	}
	p := New("test", spans, edges)
	if p == nil {
		t.Fatal("nil profile")
	}
	if p.Ranks != 2 || !approx(p.Makespan, 10) {
		t.Fatalf("ranks %d makespan %v", p.Ranks, p.Makespan)
	}
	if !approx(p.Path.Length, 10) || p.Path.Sink != 1 {
		t.Fatalf("path length %v sink %d, want 10 on sink 1", p.Path.Length, p.Path.Sink)
	}
	want := []Segment{
		{Rank: 0, Kind: obs.Pack, Name: "c", Begin: 0, End: 1},
		{Rank: 0, Kind: obs.Send, Name: "c", Begin: 1, End: 6},
		{Rank: 0, Kind: obs.Send, Name: "c", Begin: 6, End: 8},
		{Rank: 1, Kind: obs.Redundant, Name: "k1", Begin: 8, End: 9},
		{Rank: 1, Kind: obs.Redundant, Name: "k2", Begin: 9, End: 10},
	}
	if len(p.Path.Segments) != len(want) {
		t.Fatalf("got %d segments %+v, want %d", len(p.Path.Segments), p.Path.Segments, len(want))
	}
	for i, w := range want {
		g := p.Path.Segments[i]
		if g.Rank != w.Rank || g.Kind != w.Kind || g.Name != w.Name || !approx(g.Begin, w.Begin) || !approx(g.End, w.End) {
			t.Fatalf("segment %d = %+v, want %+v", i, g, w)
		}
	}
	if !approx(p.Path.ByKind[obs.Pack], 1) || !approx(p.Path.ByKind[obs.Send], 7) || !approx(p.Path.ByKind[obs.Redundant], 2) {
		t.Fatalf("by-kind attribution wrong: %v", p.Path.ByKind)
	}
	if !approx(p.Path.ByRank[0], 8) || !approx(p.Path.ByRank[1], 2) {
		t.Fatalf("by-rank attribution wrong: %v", p.Path.ByRank)
	}
	if !approx(p.Path.ByName["c"], 8) || !approx(p.Path.ByName["k1"], 1) || !approx(p.Path.ByName["k2"], 1) {
		t.Fatalf("by-name attribution wrong: %v", p.Path.ByName)
	}
	var sum float64
	for _, v := range p.Path.ByKind {
		sum += v
	}
	if !approx(sum, p.Path.Length) {
		t.Fatalf("by-kind sums to %v, path length %v", sum, p.Path.Length)
	}
	if len(p.Path.Edges) != 1 || p.Path.Edges[0].Bytes != 50 || !approx(p.Path.Edges[0].Dur(), 2) {
		t.Fatalf("traversed edges wrong: %+v", p.Path.Edges)
	}

	if len(p.Comm) != 1 {
		t.Fatalf("got %d comm entries", len(p.Comm))
	}
	cc := p.Comm[0]
	if cc.Name != "c" || cc.Msgs != 2 || cc.Bytes != 150 {
		t.Fatalf("comm totals wrong: %+v", cc)
	}
	if cc.BytesMat[0*2+1] != 150 || cc.MsgsMat[0*2+1] != 2 || !approx(cc.WaitMat[0*2+1], 4) {
		t.Fatalf("comm matrices wrong: %+v", cc)
	}
	// msg1 waits [5,6] all transit; msg2 waits [5,8]: 1s NIC (behind msg1),
	// 2s transit. Late sender and retry components are zero.
	if !approx(cc.Wait, 4) || !approx(cc.WaitLate, 0) || !approx(cc.WaitNIC, 1) ||
		!approx(cc.WaitRetry, 0) || !approx(cc.WaitTransit, 3) {
		t.Fatalf("wait attribution wrong: %+v", cc)
	}
	if !approx(cc.WaitLate+cc.WaitNIC+cc.WaitRetry+cc.WaitTransit, cc.Wait) {
		t.Fatal("wait components do not partition wait")
	}

	// r0 computes 4+3=7s, r1 computes 2+2 and redundantly 1+1 = 6s.
	if !approx(p.Imbalance.Max, 7) || !approx(p.Imbalance.Mean, 6.5) || !approx(p.Imbalance.Ratio, 7/6.5) {
		t.Fatalf("imbalance wrong: %+v", p.Imbalance)
	}

	rep := p.Report()
	for _, wantStr := range []string{"critical path:", "by kind:", "imbalance:", "comm c", "top blocking edges:"} {
		if !strings.Contains(rep, wantStr) {
			t.Fatalf("report missing %q:\n%s", wantStr, rep)
		}
	}
}

// TestRetrySlicing checks that a message edge traversed by the critical
// path is split into Send and Retry segments by the sender's retry edges,
// and that the comm wait decomposition charges the same intervals to
// WaitRetry.
func TestRetrySlicing(t *testing.T) {
	spans := []obs.Span{
		{Rank: 0, Kind: obs.Pack, Name: "x", Begin: 0, End: 1},
		{Rank: 0, Kind: obs.Send, Name: "x", Begin: 1, End: 9, Bytes: 10},
		{Rank: 0, Kind: obs.Retry, Name: "x", Begin: 2, End: 4, Bytes: 10},
		{Rank: 0, Kind: obs.Retry, Name: "x", Begin: 5, End: 6, Bytes: 10},
		{Rank: 1, Kind: obs.Wait, Name: "x", Begin: 0, End: 9, Bytes: 10},
		{Rank: 1, Kind: obs.Compute, Name: "k", Begin: 9, End: 10},
	}
	edges := []obs.Edge{
		{Kind: obs.EdgeMsg, From: 0, To: 1, Name: "x", Post: 1, Begin: 1, End: 9, Ready: 0, Bytes: 10},
		{Kind: obs.EdgeRetry, From: 0, To: 0, Name: "x", Begin: 2, End: 4, Bytes: 10},
		{Kind: obs.EdgeRetry, From: 0, To: 0, Name: "x", Begin: 5, End: 6, Bytes: 10},
	}
	p := New("test", spans, edges)
	if !approx(p.Path.Length, 10) {
		t.Fatalf("path length %v, want 10", p.Path.Length)
	}
	if !approx(p.Path.ByKind[obs.Retry], 3) || !approx(p.Path.ByKind[obs.Send], 5) ||
		!approx(p.Path.ByKind[obs.Pack], 1) || !approx(p.Path.ByKind[obs.Compute], 1) {
		t.Fatalf("retry slicing wrong: %v", p.Path.ByKind)
	}
	cc := p.Comm[0]
	// wait [0,9]: 1s late (sender packing), 3s retry, 5s transit.
	if !approx(cc.Wait, 9) || !approx(cc.WaitLate, 1) || !approx(cc.WaitNIC, 0) ||
		!approx(cc.WaitRetry, 3) || !approx(cc.WaitTransit, 5) {
		t.Fatalf("wait attribution wrong: %+v", cc)
	}
}

// TestIdleGap checks that stretches of the path no span or edge explains
// are attributed to the synthetic Idle kind — and still tile the makespan.
func TestIdleGap(t *testing.T) {
	spans := []obs.Span{
		{Rank: 0, Kind: obs.Compute, Name: "a", Begin: 0, End: 1},
		{Rank: 0, Kind: obs.Compute, Name: "b", Begin: 3, End: 4},
	}
	p := New("test", spans, nil)
	if !approx(p.Path.Length, 4) || !approx(p.Path.ByKind[obs.Idle], 2) {
		t.Fatalf("idle gap wrong: length %v by-kind %v", p.Path.Length, p.Path.ByKind)
	}
}

// TestReduceEdge checks that a reduction straggler's edge attributes the
// reduce interval to the straggler's timeline.
func TestReduceEdge(t *testing.T) {
	spans := []obs.Span{
		{Rank: 0, Kind: obs.Compute, Name: "k", Begin: 0, End: 5},
		{Rank: 0, Kind: obs.Reduce, Name: "k", Begin: 5, End: 7},
		{Rank: 1, Kind: obs.Compute, Name: "k", Begin: 0, End: 2},
		{Rank: 1, Kind: obs.Reduce, Name: "k", Begin: 2, End: 7},
	}
	edges := []obs.Edge{
		{Kind: obs.EdgeReduce, From: 0, To: 1, Name: "k", Post: 5, Begin: 5, End: 7, Ready: 2},
	}
	p := New("test", spans, edges)
	if !approx(p.Path.Length, 7) {
		t.Fatalf("path length %v, want 7", p.Path.Length)
	}
	if !approx(p.Path.ByKind[obs.Reduce], 2) || !approx(p.Path.ByKind[obs.Compute], 5) {
		t.Fatalf("reduce attribution wrong: %v", p.Path.ByKind)
	}
	// The path must run through the straggler (rank 0), whichever rank it
	// ends on.
	if !approx(p.Path.ByRank[0], 7) {
		t.Fatalf("by-rank attribution wrong: %v", p.Path.ByRank)
	}
}

// TestAnalyzeFiltersEpochs checks the Tracer entry point only sees the
// requested epoch.
func TestAnalyzeFiltersEpochs(t *testing.T) {
	tr := obs.New()
	e0 := tr.NewEpoch("first")
	tr.Emit(0, obs.TrackExec, obs.Compute, "k", 0, 1, 0)
	e1 := tr.NewEpoch("second")
	tr.Emit(0, obs.TrackExec, obs.Compute, "k", 0, 2, 0)
	tr.EmitEdge(obs.Edge{Kind: obs.EdgeMsg, From: 0, To: 0, Name: "k", Begin: 0, End: 1})
	p0, p1 := Analyze(tr, e0), Analyze(tr, e1)
	if !approx(p0.Makespan, 1) || p0.Label != "first" {
		t.Fatalf("epoch 0 profile wrong: %+v", p0)
	}
	if !approx(p1.Makespan, 2) || p1.Label != "second" || len(p1.Comm) != 1 {
		t.Fatalf("epoch 1 profile wrong: %+v", p1)
	}
	var nilTracer *obs.Tracer
	if Analyze(nilTracer, 0) != nil {
		t.Fatal("nil tracer should profile to nil")
	}
}
